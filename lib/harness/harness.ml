(** Experiment harness: capture EBM instances from the FSM-equivalence
    application ({!Capture}), aggregate ({!Stats}), render the paper's
    exhibits ({!Tables}), run the shared-store parallel-engine exhibit
    ({!Parbench}) and emit the machine-readable benchmark baseline
    ({!Bench_json}). *)

module Capture = Capture
module Stats = Stats
module Tables = Tables
module Bench_json = Bench_json
module Parbench = Parbench
