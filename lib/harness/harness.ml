(** Experiment harness: capture EBM instances from the FSM-equivalence
    application ({!Capture}), aggregate ({!Stats}), render the paper's
    exhibits ({!Tables}) and emit the machine-readable benchmark
    baseline ({!Bench_json}). *)

module Capture = Capture
module Stats = Stats
module Tables = Tables
module Bench_json = Bench_json
