(** Experiment harness: capture EBM instances from the FSM-equivalence
    application ({!Capture}), aggregate ({!Stats}) and render the paper's
    exhibits ({!Tables}). *)

module Capture = Capture
module Stats = Stats
module Tables = Tables
