(* The parallel-engine exhibit behind the JSON baseline's [parallel]
   section: run the same reachability workload twice on one shared node
   store — sequential, then with the image merges fanned out across a
   worker pool — check the results are the same canonical edges, and
   scrape the store's concurrency telemetry. *)

let default_benches = [ "tlc"; "gray6"; "minmax4"; "rnd344" ]

let run ?(jobs = 2) ?(benches = default_benches) ?(progress = fun _ -> ())
    () =
  let store = Bdd.Shared.create () in
  let man = Bdd.Shared.attach store in
  Exec.Pool.with_pool ~jobs @@ fun pool ->
  let par = Fsm.Image.par ~pool ~store in
  let machines =
    List.map
      (fun name ->
         match Circuits.Registry.find name with
         | Some b ->
           (name, Fsm.Symbolic.of_netlist man (b.Circuits.Registry.build ()))
         | None -> invalid_arg ("Parbench.run: unknown benchmark " ^ name))
      benches
  in
  let reach ?par sym =
    fst (Fsm.Reach.reachable ~strategy:Fsm.Image.Clustered ?par sym)
  in
  let seq_results, seq_seconds =
    Obs.Clock.timed (fun () -> List.map (fun (_, sym) -> reach sym) machines)
  in
  let par_results, par_seconds =
    Obs.Clock.timed (fun () ->
        List.map (fun (_, sym) -> reach ~par sym) machines)
  in
  let identical = List.for_all2 Bdd.equal seq_results par_results in
  List.iter2
    (fun (name, _) (s, p) ->
       progress
         (Printf.sprintf "%-10s |R| = %4d nodes   par %s" name
            (Bdd.Metric.nodes man s)
            (if Bdd.equal s p then "identical" else "DIVERGED")))
    machines
    (List.combine seq_results par_results);
  if not identical then
    failwith "Parbench.run: parallel engine diverged from sequential";
  let t = Bdd.Shared.telemetry store in
  {
    Bench_json.par_jobs = jobs;
    par_stripes = t.Bdd.Shared.stripes;
    par_views = t.Bdd.Shared.views;
    par_live_nodes = t.Bdd.Shared.live_nodes;
    par_interned_total = t.Bdd.Shared.interned_total;
    par_intern_retries = t.Bdd.Shared.intern_retries;
    par_gc_runs = t.Bdd.Shared.gc_runs;
    par_gc_reclaimed = t.Bdd.Shared.gc_reclaimed;
    par_barrier_waits = t.Bdd.Shared.barrier_waits;
    par_barrier_wait_ms = float_of_int t.Bdd.Shared.barrier_wait_ns /. 1e6;
    par_seq_seconds = seq_seconds;
    par_par_seconds = par_seconds;
    par_speedup = seq_seconds /. Float.max 1e-9 par_seconds;
    par_identical = identical;
  }
