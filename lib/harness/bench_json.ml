(* Machine-readable benchmark baseline (BENCH_engine.json). *)

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string b "\\\""
       | '\\' -> Buffer.add_string b "\\\\"
       | '\n' -> Buffer.add_string b "\\n"
       | c when Char.code c < 0x20 ->
         Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let num f = if Float.is_finite f then Printf.sprintf "%.6f" f else "null"

let opt_int = function None -> "null" | Some i -> string_of_int i
let opt_num = function None -> "null" | Some f -> num f

(* Plain record so the serve library (which depends on nothing here) can
   stay unreferenced: the caller copies its loadgen stats across. *)
type serve_telemetry = {
  serve_explained : int;
  serve_queue_us_mean : float;
  serve_exec_us_mean : float;
  serve_write_us_mean : float;
}

type serve_server = {
  serve_cache_hits : int;
  serve_cache_canonical_hits : int;
  serve_cache_misses : int;
  serve_cache_collapsed : int;
  serve_cache_evicted : int;
  serve_sessions_opened : int;
  serve_sessions_evicted : int;
  serve_batches : int;
  serve_batched_requests : int;
  serve_busy_replies : int;
}

type serve_stats = {
  serve_clients : int;
  serve_requests : int;
  serve_workers : int;
  serve_seconds : float;
  serve_rps : float;
  serve_p50_ms : float;
  serve_p95_ms : float;
  serve_p99_ms : float;
  serve_mean_ms : float;
  serve_ok : int;
  serve_dnf : int;
  serve_partial : int;
  serve_busy : int;
  serve_errors : int;
  serve_telemetry : serve_telemetry option;
  serve_server : serve_server option;
}

(* Shared-store parallel-engine phase: the concurrent manager tier's
   telemetry plus the seq-vs-par timing of the same workload and the
   canonical-identity verdict.  [par_speedup] on a single-CPU host sits
   near (or below) 1.0 — the section is still the record that the
   parallel engine ran and matched. *)
type parallel_stats = {
  par_jobs : int;
  par_stripes : int;
  par_views : int;
  par_live_nodes : int;
  par_interned_total : int;
  par_intern_retries : int;
  par_gc_runs : int;
  par_gc_reclaimed : int;
  par_barrier_waits : int;
  par_barrier_wait_ms : float;
  par_seq_seconds : float;
  par_par_seconds : float;
  par_speedup : float;
  par_identical : bool;  (** parallel results were the same canonical edges *)
}

let parallel_row = function
  | None -> "null"
  | Some p ->
    Printf.sprintf
      "{\"jobs\":%d,\"stripes\":%d,\"views\":%d,\"live_nodes\":%d,\
       \"interned_total\":%d,\"intern_retries\":%d,\"gc_runs\":%d,\
       \"gc_reclaimed\":%d,\"gc_barrier_waits\":%d,\
       \"gc_barrier_wait_ms\":%s,\"seq_seconds\":%s,\"par_seconds\":%s,\
       \"speedup\":%s,\"identical\":%b}"
      p.par_jobs p.par_stripes p.par_views p.par_live_nodes
      p.par_interned_total p.par_intern_retries p.par_gc_runs
      p.par_gc_reclaimed p.par_barrier_waits
      (num p.par_barrier_wait_ms)
      (num p.par_seq_seconds) (num p.par_par_seconds) (num p.par_speedup)
      p.par_identical

(* CBDD ablation: the quick capture suite re-run under `Cbdd, compared
   against the plain run of the same workload. *)
type cbdd_stats = {
  cbdd_calls : int;
  cbdd_plain_total : int;
  cbdd_chain_total : int;
  cbdd_seconds : float;
  cbdd_verdicts_identical : bool;
}

let cbdd_row = function
  | None -> "null"
  | Some a ->
    Printf.sprintf
      "{\"calls\":%d,\"plain_total\":%d,\"chain_total\":%d,\
       \"compression\":%s,\"seconds\":%s,\"verdicts_identical\":%b}"
      a.cbdd_calls a.cbdd_plain_total a.cbdd_chain_total
      (num
         (if a.cbdd_chain_total = 0 then 1.0
          else float_of_int a.cbdd_plain_total /. float_of_int a.cbdd_chain_total))
      (num a.cbdd_seconds) a.cbdd_verdicts_identical

let telemetry_row = function
  | None -> "null"
  | Some t ->
    Printf.sprintf
      "{\"explained\":%d,\"queue_us_mean\":%s,\"exec_us_mean\":%s,\
       \"write_us_mean\":%s}"
      t.serve_explained
      (num t.serve_queue_us_mean)
      (num t.serve_exec_us_mean)
      (num t.serve_write_us_mean)

let server_row = function
  | None -> "null"
  | Some c ->
    Printf.sprintf
      "{\"cache_hits\":%d,\"cache_canonical_hits\":%d,\"cache_misses\":%d,\
       \"cache_collapsed\":%d,\"cache_evicted\":%d,\"sessions_opened\":%d,\
       \"sessions_evicted\":%d,\"batches\":%d,\"batched_requests\":%d,\
       \"busy_replies\":%d}"
      c.serve_cache_hits c.serve_cache_canonical_hits c.serve_cache_misses
      c.serve_cache_collapsed c.serve_cache_evicted c.serve_sessions_opened
      c.serve_sessions_evicted c.serve_batches c.serve_batched_requests
      c.serve_busy_replies

let serve_row = function
  | None -> "null"
  | Some s ->
    Printf.sprintf
      "{\"clients\":%d,\"requests\":%d,\"workers\":%d,\"seconds\":%s,\
       \"requests_per_sec\":%s,\"p50_ms\":%s,\"p95_ms\":%s,\"p99_ms\":%s,\
       \"mean_ms\":%s,\"ok_replies\":%d,\"dnf_replies\":%d,\
       \"partial_replies\":%d,\"busy_replies\":%d,\"error_replies\":%d,\
       \"telemetry\":%s,\"server\":%s}"
      s.serve_clients s.serve_requests s.serve_workers (num s.serve_seconds)
      (num s.serve_rps) (num s.serve_p50_ms) (num s.serve_p95_ms)
      (num s.serve_p99_ms) (num s.serve_mean_ms) s.serve_ok s.serve_dnf
      s.serve_partial s.serve_busy s.serve_errors
      (telemetry_row s.serve_telemetry)
      (server_row s.serve_server)

let render ?serve ?parallel ?cbdd ?(repr : Bdd.repr = `Bdd) ~jobs ~quick
    ~max_calls ~image ~limits ~benches ~capture_seconds ~phases ~names
    ~(engine : Bdd.Stats.t) ~dnf (calls : Capture.call list) =
  let minimizer_rows =
    List.map
      (fun name ->
         let pick sel = List.assoc_opt name (sel : (string * _) list) in
         let total_size =
           List.fold_left
             (fun acc (c : Capture.call) ->
                acc + Option.value (pick c.sizes) ~default:0)
             0 calls
         and total_chain_size =
           List.fold_left
             (fun acc (c : Capture.call) ->
                acc + Option.value (pick c.chain_sizes) ~default:0)
             0 calls
         and total_seconds =
           List.fold_left
             (fun acc (c : Capture.call) ->
                acc +. Option.value (pick c.times) ~default:0.0)
             0.0 calls
         and dnf_calls =
           List.length
             (List.filter
                (fun (c : Capture.call) -> List.mem_assoc name c.dnf)
                calls)
         and hit_rates =
           List.filter_map (fun (c : Capture.call) -> pick c.hit_rates) calls
         in
         let mean_hit_rate =
           match hit_rates with
           | [] -> 0.0
           | hs -> List.fold_left ( +. ) 0.0 hs /. float_of_int (List.length hs)
         in
         Printf.sprintf
           "{\"name\":\"%s\",\"total_size\":%d,\"total_chain_size\":%d,\
            \"total_seconds\":%s,\"mean_hit_rate\":%s,\"dnf_calls\":%d}"
           (escape name) total_size total_chain_size (num total_seconds)
           (num mean_hit_rate) dnf_calls)
      names
  in
  let phase_rows =
    List.map
      (fun (name, dt) ->
         Printf.sprintf "{\"name\":\"%s\",\"seconds\":%s}" (escape name)
           (num dt))
      phases
  in
  let dnf_rows =
    List.map
      (fun (bench, reason) ->
         Printf.sprintf "{\"bench\":\"%s\",\"reason\":\"%s\"}" (escape bench)
           (escape reason))
      dnf
  in
  let limits_row =
    let l = (limits : Capture.limits_config) in
    Printf.sprintf
      "{\"node_budget\": %s, \"step_budget\": %s, \"time_budget\": %s, \
       \"fail_fast\": %b}"
      (opt_int l.Capture.node_budget)
      (opt_int l.Capture.step_budget)
      (opt_num l.Capture.time_budget)
      l.Capture.fail_fast
  in
  let s = engine in
  let engine_row =
    Printf.sprintf
      "{\"live_nodes\":%d,\"peak_live_nodes\":%d,\"interned_total\":%d,\
       \"unique_capacity\":%d,\"cache_entries\":%d,\"cache_capacity\":%d,\
       \"cache_lookups\":%d,\"cache_hits\":%d,\"cache_hit_rate\":%s,\
       \"cache_stores\":%d,\"cache_evictions\":%d,\"ite_recursions\":%d,\
       \"and_recursions\":%d,\"xor_recursions\":%d,\
       \"constrain_recursions\":%d,\"restrict_recursions\":%d,\
       \"quantify_recursions\":%d,\"and_exists_recursions\":%d,\
       \"interned_cubes\":%d,\"gc_runs\":%d,\"gc_reclaimed\":%d}"
      s.Bdd.Stats.live_nodes s.Bdd.Stats.peak_live_nodes
      s.Bdd.Stats.interned_total s.Bdd.Stats.unique_capacity
      s.Bdd.Stats.cache_entries s.Bdd.Stats.cache_capacity
      s.Bdd.Stats.cache_lookups s.Bdd.Stats.cache_hits
      (num (Bdd.Stats.hit_rate s))
      s.Bdd.Stats.cache_stores s.Bdd.Stats.cache_evictions
      s.Bdd.Stats.ite_recursions s.Bdd.Stats.and_recursions
      s.Bdd.Stats.xor_recursions s.Bdd.Stats.constrain_recursions
      s.Bdd.Stats.restrict_recursions s.Bdd.Stats.quantify_recursions
      s.Bdd.Stats.and_exists_recursions s.Bdd.Stats.interned_cubes
      s.Bdd.Stats.gc_runs s.Bdd.Stats.gc_reclaimed
  in
  Printf.sprintf
    "{\n\
    \  \"schema\": \"bddmin-bench-engine/8\",\n\
    \  \"repr\": \"%s\",\n\
    \  \"jobs\": %d,\n\
    \  \"quick\": %b,\n\
    \  \"max_calls\": %d,\n\
    \  \"image\": \"%s\",\n\
    \  \"limits\": %s,\n\
    \  \"suite\": {\"benches\": %d, \"calls\": %d, \"capture_seconds\": %s},\n\
    \  \"dnf\": [%s],\n\
    \  \"phases\": [%s],\n\
    \  \"minimizers\": [%s],\n\
    \  \"serve\": %s,\n\
    \  \"parallel\": %s,\n\
    \  \"cbdd\": %s,\n\
    \  \"engine\": %s\n\
     }\n"
    (Bdd.repr_label repr) jobs quick max_calls (escape image) limits_row
    benches (List.length calls)
    (num capture_seconds)
    (String.concat ", " dnf_rows)
    (String.concat ", " phase_rows)
    (String.concat ", " minimizer_rows)
    (serve_row serve) (parallel_row parallel) (cbdd_row cbdd) engine_row

let write ?serve ?parallel ?cbdd ?repr ~path ~jobs ~quick ~max_calls ~image
    ~limits ~benches ~capture_seconds ~phases ~names ~engine ~dnf calls =
  let doc =
    render ?serve ?parallel ?cbdd ?repr ~jobs ~quick ~max_calls ~image ~limits
      ~benches ~capture_seconds ~phases ~names ~engine ~dnf calls
  in
  let oc = open_out path in
  output_string oc doc;
  close_out oc
