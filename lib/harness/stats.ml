type bucket = All | Low | Mid | High

let bucket_name = function
  | All -> "all calls"
  | Low -> "c_onset_size < 5%"
  | Mid -> "5% <= c_onset_size <= 95%"
  | High -> "c_onset_size > 95%"

let buckets = [ All; Low; Mid; High ]

let in_bucket bucket (c : Capture.call) =
  match bucket with
  | All -> true
  | Low -> c.c_onset_fraction < 0.05
  | Mid -> c.c_onset_fraction >= 0.05 && c.c_onset_fraction <= 0.95
  | High -> c.c_onset_fraction > 0.95

type row = {
  name : string;
  total_size : int;
  pct_of_min : float;
  runtime : float;
  rank : int;
  dnf : int;
}

type table = {
  bucket : bucket;
  ncalls : int;
  min_total : int;
  low_bd_total : int;
  rows : row list;
}

let size_opt (c : Capture.call) name =
  match name with
  | "min" -> Some c.min_size
  | "low_bd" -> Some c.low_bd
  | _ -> (
      match List.assoc_opt name c.sizes with
      | Some s -> Some s
      | None ->
        if List.mem_assoc name c.dnf then None
        else invalid_arg ("Stats.size_of: unknown minimizer " ^ name))

let size_of (c : Capture.call) name =
  match size_opt c name with
  | Some s -> s
  | None ->
    invalid_arg ("Stats.size_of: minimizer did not finish: " ^ name)

let chain_size_opt (c : Capture.call) name =
  List.assoc_opt name c.chain_sizes

(* Plain vs chain-aware totals per minimizer — the dual size columns.
   Both sums run over exactly the calls the minimizer completed, so the
   pair is directly comparable row by row. *)
let chain_totals ~names calls =
  List.map
    (fun name ->
       List.fold_left
         (fun (plain, chain) c ->
            match (size_opt c name, chain_size_opt c name) with
            | Some s, Some cs -> (plain + s, chain + cs)
            | _ -> (plain, chain))
         (0, 0) calls
       |> fun (plain, chain) -> (name, plain, chain))
    names

let time_of (c : Capture.call) name =
  match List.assoc_opt name c.times with Some t -> t | None -> 0.0

let dnf_of (c : Capture.call) name = List.mem_assoc name c.dnf

let aggregate ~names bucket calls =
  let calls = List.filter (in_bucket bucket) calls in
  let ncalls = List.length calls in
  (* Calls a minimizer DNF'd on contribute nothing to its total (there is
     no size to add): totals are only comparable between rows with equal
     [dnf] counts.  Without budgets every [dnf] is 0 and the totals are
     the ungoverned ones. *)
  let total name =
    List.fold_left
      (fun acc c ->
         match size_opt c name with Some s -> acc + s | None -> acc)
      0 calls
  in
  let dnf_count name =
    List.fold_left
      (fun acc c -> if dnf_of c name then acc + 1 else acc)
      0 calls
  in
  let min_total = total "min" in
  let low_bd_total = total "low_bd" in
  let unranked =
    List.map
      (fun name ->
         let t = total name in
         let rt = List.fold_left (fun acc c -> acc +. time_of c name) 0.0 calls in
         (name, t, rt, dnf_count name))
      names
  in
  let sorted =
    List.stable_sort (fun (_, a, _, _) (_, b, _, _) -> compare a b) unranked
  in
  (* Competition ranking: equal totals share a rank. *)
  let rows =
    List.mapi
      (fun i (name, t, rt, dn) ->
         let rank =
           1 + List.length (List.filter (fun (_, t', _, _) -> t' < t) sorted)
         in
         ignore i;
         {
           name;
           total_size = t;
           pct_of_min =
             (if min_total = 0 then 0.0
              else 100.0 *. float_of_int t /. float_of_int min_total);
           runtime = rt;
           rank;
           dnf = dn;
         })
      sorted
  in
  { bucket; ncalls; min_total; low_bd_total; rows }

let head_to_head ~names calls =
  let n = List.length names in
  let arr = Array.of_list names in
  let ncalls = List.length calls in
  let m = Array.make_matrix n n 0.0 in
  if ncalls > 0 then
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        let wins =
          List.length
            (List.filter
               (fun c ->
                  match (size_opt c arr.(i), size_opt c arr.(j)) with
                  | Some si, Some sj -> si < sj
                  | _ -> false (* a DNF on either side is not a win *))
               calls)
        in
        m.(i).(j) <- 100.0 *. float_of_int wins /. float_of_int ncalls
      done
    done;
  m

let within_curve ~name ~percents calls =
  let ncalls = List.length calls in
  List.map
    (fun x ->
       let ok =
         List.length
           (List.filter
              (fun (c : Capture.call) ->
                 match size_opt c name with
                 | Some s ->
                   float_of_int s
                   <= float_of_int c.min_size
                      *. (1.0 +. (float_of_int x /. 100.0))
                 | None -> false)
              calls)
       in
       ( x,
         if ncalls = 0 then 0.0
         else 100.0 *. float_of_int ok /. float_of_int ncalls ))
    percents

let achieving_lower_bound ~name calls =
  let ncalls = List.length calls in
  if ncalls = 0 then 0.0
  else
    let hits =
      List.length
        (List.filter
           (fun (c : Capture.call) ->
              match size_opt c name with
              | Some s -> s <= c.Capture.low_bd
              | None -> false)
           calls)
    in
    100.0 *. float_of_int hits /. float_of_int ncalls
