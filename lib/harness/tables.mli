(** Text renderers for the paper's tables and figure.

    Each [render_*] returns the reproduction of one exhibit; CSV exports
    are provided for external plotting. *)

val render_table1 : unit -> string
(** Table 1: properties of the matching criteria (statically known,
    verified by the property-test suite). *)

val render_table2 : unit -> string
(** Table 2: the twelve sibling-heuristic parameter combinations and
    which rows coincide. *)

val render_table3 : names:string list -> Capture.call list -> string
(** Table 3: cumulative sizes, % of min, runtimes and ranks, for every
    [c_onset_size] bucket that is populated.  Rows for minimizers that
    DNF'd on some calls carry a trailing [DNF:n] marker (their totals
    then cover fewer calls). *)

val render_table4 : ?names:string list -> Capture.call list -> string
(** Table 4: head-to-head comparison over the paper's representative
    subset (default [f_orig const restr osm_bt tsm_td opt_lv min]). *)

val render_figure3 : ?names:string list -> Capture.call list -> string
(** Figure 3: robustness curves as an ASCII plot plus the underlying
    series (default heuristics as in the paper: [f_orig const restr
    tsm_td opt_lv]). *)

val render_per_bench :
  ?dnf:(string * string) list -> Capture.call list -> string
(** A per-machine summary (not in the paper, which aggregates): calls,
    bucket split, unminimized vs. best total, reduction factor.  [dnf]
    (a suite's driver-exhaustion rows, default none) appends a
    [DNF(reason)] line per exhausted machine, as in the paper's
    resource-limited tables. *)

val render_chain_summary : names:string list -> Capture.call list -> string
(** Dual size columns: per minimizer, the plain-equivalent total
    ({!Bdd.Metric.plain_equivalent}, what every verdict is judged on)
    next to the chain-aware physical total ({!Bdd.Metric.nodes}) and
    their compression ratio.  Callers render it only for [`Cbdd]
    captures, keeping plain output byte-identical. *)

val render_lower_bound_summary : names:string list -> Capture.call list -> string
(** The §4.2 lower-bound observations: min vs. bound ratio, and the
    percentage of calls where each heuristic meets the bound. *)

val calls_to_csv : names:string list -> Capture.call list -> string
(** One row per call: bench, iteration, [f] size, [c_onset], lower bound,
    each minimizer's size ([DNF] for a budget-exhausted run), and the
    mean computed-cache hit rate observed across the minimizers on that
    call. *)

val curve_to_csv : names:string list -> Capture.call list -> string
(** Figure 3 series as CSV (percent, one column per heuristic). *)
