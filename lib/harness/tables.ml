let bprintf = Printf.bprintf

(* Left-pad to width. *)
let pad w s =
  if String.length s >= w then s else String.make (w - String.length s) ' ' ^ s

let pad_left w s =
  if String.length s >= w then s else s ^ String.make (w - String.length s) ' '

let render_table1 () =
  let buf = Buffer.create 256 in
  bprintf buf "Table 1: Properties of the matching criteria.\n\n";
  bprintf buf "  %-10s %-10s %-10s %-10s\n" "Criterion" "Reflexive"
    "Symmetric" "Transitive";
  List.iter
    (fun crit ->
       let yn b = if b then "yes" else "no" in
       bprintf buf "  %-10s %-10s %-10s %-10s\n"
         (Minimize.Matching.name crit)
         (yn (Minimize.Matching.reflexive crit))
         (yn (Minimize.Matching.symmetric crit))
         (yn (Minimize.Matching.transitive crit)))
    Minimize.Matching.all;
  Buffer.contents buf

let render_table2 () =
  let buf = Buffer.create 512 in
  bprintf buf "Table 2: Heuristics based on matching siblings.\n\n";
  bprintf buf "  %-3s %-10s %-11s %-12s %s\n" "#" "Criterion" "match-compl"
    "no-new-vars" "Name/Comment";
  let rows =
    [
      (1, "osdm", false, false, "constrain");
      (2, "osdm", false, true, "restrict");
      (3, "osdm", true, false, "same as 1");
      (4, "osdm", true, true, "same as 2");
      (5, "osm", false, false, "osm_td");
      (6, "osm", false, true, "osm_nv");
      (7, "osm", true, false, "osm_cp");
      (8, "osm", true, true, "osm_bt");
      (9, "tsm", false, false, "tsm_td");
      (10, "tsm", false, true, "same as 9");
      (11, "tsm", true, false, "tsm_cp");
      (12, "tsm", true, true, "same as 11");
    ]
  in
  List.iter
    (fun (i, crit, compl, nnv, name) ->
       let yn b = if b then "yes" else "no" in
       bprintf buf "  %-3d %-10s %-11s %-12s %s\n" i crit (yn compl) (yn nnv)
         name)
    rows;
  Buffer.contents buf

let render_table3 ~names calls =
  let buf = Buffer.create 4096 in
  bprintf buf
    "Table 3: totals over all examples, split by c_onset_size bucket.\n";
  List.iter
    (fun bucket ->
       let t = Stats.aggregate ~names bucket calls in
       if t.Stats.ncalls > 0 then begin
         bprintf buf "\n-- %s (%d calls) --\n" (Stats.bucket_name bucket)
           t.Stats.ncalls;
         bprintf buf "  %-8s %12s %9s %10s %5s\n" "Heur." "Total Size"
           "% of min" "Runtime" "Rank";
         let pct_min v =
           if t.Stats.min_total = 0 then 0.0
           else 100.0 *. float_of_int v /. float_of_int t.Stats.min_total
         in
         bprintf buf "  %-8s %12d %9.0f %10s %5s\n" "low_bd"
           t.Stats.low_bd_total
           (pct_min t.Stats.low_bd_total)
           "-" "-";
         bprintf buf "  %-8s %12d %9.0f %10s %5s\n" "min" t.Stats.min_total
           100.0 "-" "-";
         List.iter
           (fun (r : Stats.row) ->
              (* the marker only appears under a budget, so unbudgeted
                 output stays byte-identical to the ungoverned harness *)
              let dnf_marker =
                if r.Stats.dnf > 0 then Printf.sprintf "  DNF:%d" r.Stats.dnf
                else ""
              in
              bprintf buf "  %-8s %12d %9.0f %9.2fs %5d%s\n" r.Stats.name
                r.Stats.total_size r.Stats.pct_of_min r.Stats.runtime
                r.Stats.rank dnf_marker)
           t.Stats.rows
       end)
    Stats.buckets;
  Buffer.contents buf

let render_per_bench ?(dnf = []) calls =
  let buf = Buffer.create 1024 in
  bprintf buf "Per-machine summary:\n\n";
  bprintf buf "  %-10s %6s %7s %7s %10s %10s %7s\n" "machine" "calls"
    "<5%" ">95%" "f total" "min total" "ratio";
  let benches =
    List.sort_uniq compare (List.map (fun (c : Capture.call) -> c.bench) calls)
  in
  List.iter
    (fun bench ->
       let mine =
         List.filter (fun (c : Capture.call) -> c.bench = bench) calls
       in
       let count p = List.length (List.filter p mine) in
       let f_total =
         List.fold_left (fun acc (c : Capture.call) -> acc + c.f_size) 0 mine
       in
       let min_total =
         List.fold_left (fun acc (c : Capture.call) -> acc + c.min_size) 0 mine
       in
       bprintf buf "  %-10s %6d %7d %7d %10d %10d %6.2fx\n" bench
         (List.length mine)
         (count (fun c -> c.Capture.c_onset_fraction < 0.05))
         (count (fun c -> c.Capture.c_onset_fraction > 0.95))
         f_total min_total
         (if min_total = 0 then 1.0
          else float_of_int f_total /. float_of_int min_total))
    benches;
  (* The paper's tables mark machines whose run blew the resource limit
     as DNF rows; same here, from the suite's driver-exhaustion list. *)
  List.iter
    (fun (bench, reason) -> bprintf buf "  %-10s DNF(%s)\n" bench reason)
    dnf;
  Buffer.contents buf

let default_h2h = [ "f_orig"; "const"; "restr"; "osm_bt"; "tsm_td"; "opt_lv"; "min" ]

let render_table4 ?(names = default_h2h) calls =
  let buf = Buffer.create 2048 in
  bprintf buf
    "Table 4: head-to-head comparisons (%% of calls where the row's result\n\
     is strictly smaller than the column's), over all examples.\n\n";
  let m = Stats.head_to_head ~names calls in
  let w = 8 in
  bprintf buf "  %s" (pad_left w "");
  List.iter (fun n -> bprintf buf "%s" (pad w n)) names;
  bprintf buf "\n";
  List.iteri
    (fun i n ->
       bprintf buf "  %s" (pad_left w n);
       Array.iter (fun v -> bprintf buf "%s" (pad w (Printf.sprintf "%.1f" v))) m.(i);
       bprintf buf "\n")
    names;
  Buffer.contents buf

let default_fig3 = [ "f_orig"; "opt_lv"; "const"; "restr"; "tsm_td" ]

let percents = List.init 21 (fun i -> 5 * i)

let render_figure3 ?(names = default_fig3) calls =
  let buf = Buffer.create 4096 in
  bprintf buf
    "Figure 3: %% of calls to a heuristic within which %% of the heuristic\n\
     min (robustness curves; y-intercept = how often the heuristic finds\n\
     the smallest result).\n\n";
  let curves =
    List.map (fun n -> (n, Stats.within_curve ~name:n ~percents calls)) names
  in
  (* Series table. *)
  bprintf buf "  %s" (pad 10 "within %");
  List.iter (fun (n, _) -> bprintf buf "%s" (pad 9 n)) curves;
  bprintf buf "\n";
  List.iter
    (fun x ->
       bprintf buf "  %s" (pad 10 (string_of_int x));
       List.iter
         (fun (_, series) ->
            let y = List.assoc x series in
            bprintf buf "%s" (pad 9 (Printf.sprintf "%.1f" y)))
         curves;
       bprintf buf "\n")
    percents;
  (* ASCII plot: y 0..100 in 5% rows, x = the percents. *)
  bprintf buf "\n  %% of calls\n";
  let symbol_of = List.mapi (fun i (n, _) -> (n, Char.chr (Char.code 'a' + i))) curves in
  for row = 20 downto 0 do
    let y = 5 * row in
    bprintf buf "  %s |" (pad 3 (string_of_int y));
    List.iter
      (fun x ->
         let marks =
           List.filter
             (fun (_, series) ->
                let v = List.assoc x series in
                (* Mark the row closest to the value. *)
                int_of_float ((v /. 5.0) +. 0.5) = row)
             curves
         in
         let ch =
           match marks with
           | [] -> ' '
           | [ (n, _) ] -> List.assoc n symbol_of
           | _ -> '*'
         in
         bprintf buf " %c  " ch)
      percents;
    bprintf buf "\n"
  done;
  bprintf buf "      +%s\n" (String.concat "" (List.map (fun _ -> "----") percents));
  bprintf buf "       ";
  List.iter (fun x -> bprintf buf "%s" (pad_left 4 (string_of_int x))) percents;
  bprintf buf " (within %% of min)\n\n  legend: ";
  List.iter (fun (n, c) -> bprintf buf "%c=%s  " c n) symbol_of;
  bprintf buf "(* = overlap)\n";
  Buffer.contents buf

(* Dual size columns: plain-equivalent vs chain-aware totals.  Only
   meaningful (and only rendered by callers) under `Cbdd — the plain
   pipeline's output stays byte-identical to the chain-free harness. *)
let render_chain_summary ~names calls =
  let buf = Buffer.create 1024 in
  bprintf buf
    "Chain-reduction summary (plain-equivalent vs chain-aware nodes):\n\n";
  bprintf buf "  %-8s %12s %12s %9s\n" "Heur." "Plain" "Chain" "ratio";
  List.iter
    (fun (name, plain, chain) ->
       bprintf buf "  %-8s %12d %12d %8.2fx\n" name plain chain
         (if chain = 0 then 1.0 else float_of_int plain /. float_of_int chain))
    (Stats.chain_totals ~names calls);
  Buffer.contents buf

let render_lower_bound_summary ~names calls =
  let buf = Buffer.create 1024 in
  let t = Stats.aggregate ~names Stats.All calls in
  bprintf buf "Lower-bound summary (over %d calls):\n" t.Stats.ncalls;
  if t.Stats.low_bd_total > 0 then
    bprintf buf "  min / lower-bound size ratio: %.2f\n"
      (float_of_int t.Stats.min_total /. float_of_int t.Stats.low_bd_total);
  List.iter
    (fun n ->
       bprintf buf "  %-8s achieves the lower bound on %5.1f%% of calls\n" n
         (Stats.achieving_lower_bound ~name:n calls))
    (names @ [ "min" ]);
  Buffer.contents buf

let calls_to_csv ~names calls =
  let buf = Buffer.create 4096 in
  bprintf buf "bench,iteration,f_size,c_onset_fraction,low_bd,min%s,avg_hit_rate\n"
    (String.concat "" (List.map (fun n -> "," ^ n) names));
  List.iter
    (fun (c : Capture.call) ->
       bprintf buf "%s,%d,%d,%.6f,%d,%d" c.bench c.iteration c.f_size
         c.c_onset_fraction c.low_bd c.min_size;
       List.iter
         (fun n ->
            match Stats.size_opt c n with
            | Some s -> bprintf buf ",%d" s
            | None -> bprintf buf ",DNF")
         names;
       let avg_hit_rate =
         match c.hit_rates with
         | [] -> 0.0
         | hs ->
           List.fold_left (fun acc (_, h) -> acc +. h) 0.0 hs
           /. float_of_int (List.length hs)
       in
       bprintf buf ",%.4f\n" avg_hit_rate)
    calls;
  Buffer.contents buf

let curve_to_csv ~names calls =
  let buf = Buffer.create 1024 in
  bprintf buf "within_pct%s\n"
    (String.concat "" (List.map (fun n -> "," ^ n) names));
  let curves =
    List.map (fun n -> Stats.within_curve ~name:n ~percents calls) names
  in
  List.iter
    (fun x ->
       bprintf buf "%d" x;
       List.iter (fun series -> bprintf buf ",%.2f" (List.assoc x series)) curves;
       bprintf buf "\n")
    percents;
  Buffer.contents buf
