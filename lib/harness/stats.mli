(** Aggregation of captured calls into the paper's summary statistics. *)

type bucket =
  | All
  | Low  (** [c_onset_size < 5 %] *)
  | Mid  (** 5–95 % (empty in the paper's runs) *)
  | High  (** [> 95 %] *)

val bucket_name : bucket -> string
val buckets : bucket list
val in_bucket : bucket -> Capture.call -> bool

type row = {
  name : string;
  total_size : int;
  (** sum over the calls the minimizer completed — calls it DNF'd on
      contribute nothing, so compare totals only between rows with equal
      [dnf] counts *)
  pct_of_min : float;  (** 100·total/min-total, the paper's "% of min" *)
  runtime : float;  (** cumulative seconds *)
  rank : int;  (** competition ranking by total size (1 = best) *)
  dnf : int;  (** calls in the bucket the minimizer did not finish *)
}

type table = {
  bucket : bucket;
  ncalls : int;
  min_total : int;
  low_bd_total : int;
  rows : row list;  (** sorted by total size *)
}

val aggregate : names:string list -> bucket -> Capture.call list -> table

val size_of : Capture.call -> string -> int
(** Result size of a minimizer on a call; ["min"] and ["low_bd"] resolve
    to the per-call best and lower bound.  @raise Invalid_argument for a
    name the call has no row for, including one it DNF'd on. *)

val size_opt : Capture.call -> string -> int option
(** Like {!size_of} but [None] when the minimizer DNF'd on the call
    (still raising on names that are not in the call at all). *)

val dnf_of : Capture.call -> string -> bool
(** Whether the named minimizer exhausted its budget on this call. *)

val chain_size_opt : Capture.call -> string -> int option
(** Physical (chain-aware) node count of a minimizer's result on a call
    ({!Bdd.Metric.nodes}); [None] when the call has no completed row
    under that name. *)

val chain_totals :
  names:string list -> Capture.call list -> (string * int * int) list
(** Per minimizer, [(name, plain_total, chain_total)] summed over the
    calls it completed — the dual size columns.  Equal components under
    [`Bdd]; [chain_total <= plain_total] under [`Cbdd]. *)

val head_to_head : names:string list -> Capture.call list -> float array array
(** Entry [(i, j)]: percentage of calls where minimizer [i]'s result is
    strictly smaller than [j]'s (the paper's Table 4). *)

val within_curve :
  name:string -> percents:int list -> Capture.call list -> (int * float) list
(** Figure 3 series: for each [x], the percentage of calls on which the
    minimizer's size is within [x] % of the call's [min]. *)

val achieving_lower_bound : name:string -> Capture.call list -> float
(** Percentage of calls where the minimizer meets the cube lower bound. *)
