type origin = Frontier | Image_cofactor

let src = Logs.Src.create "bddmin.capture" ~doc:"experiment capture"

module Log = (val Logs.src_log src)

type call = {
  bench : string;
  iteration : int;
  origin : origin;
  f_size : int;
  f_chain_size : int;
  c_onset_fraction : float;
  sizes : (string * int) list;
  chain_sizes : (string * int) list;
  times : (string * float) list;
  hit_rates : (string * float) list;
  dnf : (string * string) list;
  min_size : int;
  min_name : string;
  low_bd : int;
}

type engine_config = {
  entries : Minimize.Registry.entry list;
  repr : Bdd.repr;
  lower_bound_cubes : int;
  self_product : bool;
  flush_caches : bool;
  include_image_instances : bool;
  jobs : int;
}

type image_config = {
  strategy : Fsm.Image.strategy;
  cluster_bound : int option;
}

type limits_config = {
  max_iterations : int;
  max_calls : int;
  node_budget : int option;
  step_budget : int option;
  time_budget : float option;
  fail_fast : bool;
}

type config = {
  engine : engine_config;
  image : image_config;
  limits : limits_config;
}

let default_config =
  {
    engine =
      {
        entries = Minimize.Registry.all;
        repr = `Bdd;
        lower_bound_cubes = 1000;
        self_product = true;
        flush_caches = true;
        include_image_instances = true;
        jobs = 1;
      };
    image = { strategy = Fsm.Image.Partitioned; cluster_bound = None };
    limits =
      {
        max_iterations = 100_000;
        max_calls = 400;
        node_budget = None;
        step_budget = None;
        time_budget = None;
        fail_fast = false;
      };
  }

let with_entries entries c = { c with engine = { c.engine with entries } }
let with_repr repr c = { c with engine = { c.engine with repr } }

let with_lower_bound_cubes lower_bound_cubes c =
  { c with engine = { c.engine with lower_bound_cubes } }

let with_self_product self_product c =
  { c with engine = { c.engine with self_product } }

let with_flush_caches flush_caches c =
  { c with engine = { c.engine with flush_caches } }

let with_image_instances include_image_instances c =
  { c with engine = { c.engine with include_image_instances } }

let with_jobs jobs c = { c with engine = { c.engine with jobs } }
let with_image_strategy strategy c = { c with image = { c.image with strategy } }

let with_cluster_bound cluster_bound c =
  { c with image = { c.image with cluster_bound } }

let with_max_iterations max_iterations c =
  { c with limits = { c.limits with max_iterations } }

let with_max_calls max_calls c = { c with limits = { c.limits with max_calls } }

let with_node_budget node_budget c =
  { c with limits = { c.limits with node_budget } }

let with_step_budget step_budget c =
  { c with limits = { c.limits with step_budget } }

let with_time_budget time_budget c =
  { c with limits = { c.limits with time_budget } }

let with_fail_fast fail_fast c = { c with limits = { c.limits with fail_fast } }

let minimizer_names config = Minimize.Registry.names config.engine.entries

let origin_name = function
  | Frontier -> "frontier"
  | Image_cofactor -> "image_cofactor"

(* A budget value from optional limits: [None] when nothing is limited
   and no cancellation token is in play, so the unbudgeted path stays
   exactly the pre-governance one. *)
let opt_budget ?cancelled ~max_nodes ~max_steps ~timeout_s () =
  match (max_nodes, max_steps, timeout_s, cancelled) with
  | None, None, None, None -> None
  | _ ->
    Some (Bdd.Budget.create ?max_nodes ?max_steps ?timeout_s ?cancelled ())

let measure_call config ?cancelled man ~bench ~iteration ~origin
    (inst : Minimize.Ispec.t) =
  Obs.Trace.with_span "capture.call"
    ~attrs:
      [
        ("bench", Obs.Trace.Str bench);
        ("iteration", Obs.Trace.Int iteration);
        ("origin", Obs.Trace.Str (origin_name origin));
      ]
  @@ fun _call_sp ->
  (* Each minimizer runs under a fresh budget built from the limits —
     the budgets govern one operation each, so an expensive entry DNFs
     on its own while the cheap ones still produce their exact rows. *)
  let run_entry (e : Minimize.Registry.entry) =
    if config.engine.flush_caches then Bdd.clear_caches man;
    let budget =
      opt_budget ?cancelled ~max_nodes:config.limits.node_budget
        ~max_steps:config.limits.step_budget
        ~timeout_s:config.limits.time_budget ()
    in
    let ctx =
      match budget with
      | None -> Minimize.Ctx.of_man man
      | Some b -> Minimize.Ctx.make ~budget:b man
    in
    let s0 = Bdd.snapshot man in
    match
      Obs.Trace.with_span ("min:" ^ e.name) @@ fun sp ->
      let r =
        Obs.Clock.timed (fun () -> Minimize.Registry.run e ctx inst)
      in
      let s1 = Bdd.snapshot man in
      if Obs.Trace.enabled () then begin
        let d get = get s1 - get s0 in
        Obs.Trace.add sp "result_nodes"
          (Obs.Trace.Int (Bdd.Metric.nodes man (fst r)));
        Obs.Trace.add sp "cache_lookups"
          (Obs.Trace.Int (d (fun s -> s.Bdd.Stats.cache_lookups)));
        Obs.Trace.add sp "cache_hits"
          (Obs.Trace.Int (d (fun s -> s.Bdd.Stats.cache_hits)));
        Obs.Trace.add sp "interned_nodes"
          (Obs.Trace.Int (d (fun s -> s.Bdd.Stats.interned_total)));
        Obs.Trace.add sp "gc_runs"
          (Obs.Trace.Int (d (fun s -> s.Bdd.Stats.gc_runs)));
        Obs.Trace.add sp "cache_evictions"
          (Obs.Trace.Int (d (fun s -> s.Bdd.Stats.cache_evictions)))
      end;
      (r, s1)
    with
    | exception Bdd.Budget_exhausted reason ->
      Error (e.name, Bdd.Budget.reason_label reason)
    | (g, dt), s1 -> (
        match Option.map Bdd.Budget.exhausted budget with
        | Some (Some reason) ->
          (* anytime entries (the schedule) trap exhaustion internally
             and return a degraded cover; record them as DNF so budgeted
             rows never silently differ from unbudgeted ones *)
          Error (e.name, Bdd.Budget.reason_label reason)
        | _ ->
          let lookups =
            s1.Bdd.Stats.cache_lookups - s0.Bdd.Stats.cache_lookups
          in
          let hits = s1.Bdd.Stats.cache_hits - s0.Bdd.Stats.cache_hits in
          let hit_rate =
            if lookups = 0 then 0.0
            else float_of_int hits /. float_of_int lookups
          in
          (* Verdicts anchor on the representation-independent plain
             size (identical covers rank identically under either
             repr); the physical node count rides along so chain
             compression is visible without changing any winner. *)
          Ok
            ( e.name,
              Bdd.Metric.plain_equivalent man g,
              Bdd.Metric.nodes man g,
              dt,
              hit_rate ))
  in
  let results = List.map run_entry config.engine.entries in
  let completed =
    List.filter_map (function Ok r -> Some r | Error _ -> None) results
  in
  let dnf =
    List.filter_map (function Error d -> Some d | Ok _ -> None) results
  in
  match completed with
  | [] ->
    (* every minimizer exhausted its budget: there is no [min] to anchor
       a row, so the call is dropped (it still counts against
       [max_calls] at the call site) *)
    None
  | _ ->
    let min_name, min_size =
      List.fold_left
        (fun (bn, bs) (n, s, _, _, _) -> if s < bs then (n, s) else (bn, bs))
        ("", max_int) completed
    in
    let low_bd =
      Minimize.Lower_bound.compute man
        ~cube_limit:config.engine.lower_bound_cubes inst
    in
    Some
      {
        bench;
        iteration;
        origin;
        f_size = Bdd.Metric.plain_equivalent man inst.Minimize.Ispec.f;
        f_chain_size = Bdd.Metric.nodes man inst.Minimize.Ispec.f;
        c_onset_fraction = Minimize.Ispec.c_onset_fraction man inst;
        sizes = List.map (fun (n, s, _, _, _) -> (n, s)) completed;
        chain_sizes = List.map (fun (n, _, cs, _, _) -> (n, cs)) completed;
        times = List.map (fun (n, _, _, t, _) -> (n, t)) completed;
        hit_rates = List.map (fun (n, _, _, _, h) -> (n, h)) completed;
        dnf;
        min_size;
        min_name;
        low_bd;
      }

type bench_result = {
  calls : call list;
  stats : Bdd.Stats.t;
  reclaimed : int;
  dnf : string option;
}

let run_bench_stats ?(config = default_config) ?cancel
    (b : Circuits.Registry.bench) =
  let man = Bdd.create ~repr:config.engine.repr () in
  let cancelled =
    Option.map (fun t () -> Exec.Cancel.cancelled t) cancel
  in
  if match cancel with Some t -> Exec.Cancel.cancelled t | None -> false
  then
    (* a sibling already failed fast: don't even start *)
    { calls = []; stats = Bdd.snapshot man; reclaimed = 0; dnf = Some "cancelled" }
  else begin
    let nl = b.build () in
    let calls = ref [] in
    let ncalls = ref 0 in
    let consider ~iteration ~origin inst =
      (* §4.1.2 filter: skip cube care sets and care sets contained in f or
         its complement (most heuristics find a minimum there). *)
      if
        !ncalls < config.limits.max_calls
        && not (Minimize.Ispec.trivial man inst)
      then begin
        incr ncalls;
        match
          measure_call config ?cancelled man ~bench:b.name ~iteration ~origin
            inst
        with
        | Some call ->
          Log.debug (fun m ->
              m "%s call %d (iter %d): |f| = %d, c_onset = %.3f, min = %d (%s)"
                b.name !ncalls iteration call.f_size call.c_onset_fraction
                call.min_size call.min_name);
          calls := call :: !calls
        | None ->
          Log.debug (fun m ->
              m "%s call %d (iter %d): every minimizer DNF" b.name !ncalls
                iteration)
      end
    in
    let on_instance ~iteration inst =
      consider ~iteration ~origin:Frontier inst
    in
    let on_image_constrain ~iteration inst =
      if config.engine.include_image_instances then
        consider ~iteration ~origin:Image_cofactor inst
    in
    (* The driver (netlist elaboration + the reachability fixpoint) runs
       under its own budget.  The step limit is deliberately left out:
       it bounds a single operation, while the node ceiling and the
       deadline are manager- and wall-scale, i.e. benchmark-wide. *)
    let driver_budget =
      opt_budget ?cancelled ~max_nodes:config.limits.node_budget
        ~max_steps:None ~timeout_s:config.limits.time_budget ()
    in
    Bdd.set_budget man driver_budget;
    let dnf =
      match
        if config.engine.self_product then begin
          match
            Fsm.Equiv.check_self man ~strategy:config.image.strategy
              ?cluster_bound:config.image.cluster_bound
              ~max_iterations:config.limits.max_iterations ~on_instance
              ~on_image_constrain nl
          with
          | Fsm.Equiv.Equivalent _ -> ()
          | Fsm.Equiv.Not_equivalent _ ->
            failwith ("self-equivalence failed on " ^ b.name)
        end
        else begin
          let sym = Fsm.Symbolic.of_netlist man nl in
          let _, st =
            Fsm.Reach.reachable ~strategy:config.image.strategy
              ?cluster_bound:config.image.cluster_bound
              ~max_iterations:config.limits.max_iterations ~on_instance
              ~on_image_constrain sym
          in
          match st.Fsm.Reach.fixpoint with
          | Fsm.Reach.Partial { reason; _ } ->
            raise (Bdd.Budget_exhausted reason)
          | Fsm.Reach.Complete -> ()
        end
      with
      | () -> None
      | exception Bdd.Budget_exhausted reason ->
        Some (Bdd.Budget.reason_label reason)
    in
    Bdd.set_budget man None;
    (* The run is over and nothing is retained, so a collection from the
       permanent roots alone shows how much of the table was dead. *)
    let reclaimed = Bdd.gc man in
    { calls = List.rev !calls; stats = Bdd.snapshot man; reclaimed; dnf }
  end

let run_bench ?config b = (run_bench_stats ?config b).calls

let default_progress msg = Log.info (fun m -> m "%s" msg)

let summary_messages (b : Circuits.Registry.bench) (r : bench_result) =
  [
    Printf.sprintf "  %s: %d non-trivial calls" b.name (List.length r.calls);
    Printf.sprintf
      "  engine: %d peak nodes, cache hit rate %.1f%%, final gc reclaimed \
       %d dead nodes"
      r.stats.Bdd.Stats.peak_live_nodes
      (100.0 *. Bdd.Stats.hit_rate r.stats)
      r.reclaimed;
  ]
  @
  match r.dnf with
  | None -> []
  | Some reason -> [ Printf.sprintf "  DNF(%s)" reason ]

(* Field-wise sum of per-benchmark manager statistics: a totals view of
   the whole suite (occupancy figures add up because the managers are
   disjoint). *)
let add_stats (a : Bdd.Stats.t) (b : Bdd.Stats.t) : Bdd.Stats.t =
  {
    vars = a.vars + b.vars;
    live_nodes = a.live_nodes + b.live_nodes;
    peak_live_nodes = a.peak_live_nodes + b.peak_live_nodes;
    interned_total = a.interned_total + b.interned_total;
    unique_capacity = a.unique_capacity + b.unique_capacity;
    external_refs = a.external_refs + b.external_refs;
    cache_entries = a.cache_entries + b.cache_entries;
    cache_capacity = a.cache_capacity + b.cache_capacity;
    cache_lookups = a.cache_lookups + b.cache_lookups;
    cache_hits = a.cache_hits + b.cache_hits;
    cache_stores = a.cache_stores + b.cache_stores;
    cache_evictions = a.cache_evictions + b.cache_evictions;
    ite_recursions = a.ite_recursions + b.ite_recursions;
    and_recursions = a.and_recursions + b.and_recursions;
    xor_recursions = a.xor_recursions + b.xor_recursions;
    constrain_recursions = a.constrain_recursions + b.constrain_recursions;
    restrict_recursions = a.restrict_recursions + b.restrict_recursions;
    quantify_recursions = a.quantify_recursions + b.quantify_recursions;
    and_exists_recursions = a.and_exists_recursions + b.and_exists_recursions;
    interned_cubes = a.interned_cubes + b.interned_cubes;
    gc_runs = a.gc_runs + b.gc_runs;
    gc_reclaimed = a.gc_reclaimed + b.gc_reclaimed;
  }

let zero_stats : Bdd.Stats.t =
  {
    vars = 0;
    live_nodes = 0;
    peak_live_nodes = 0;
    interned_total = 0;
    unique_capacity = 0;
    external_refs = 0;
    cache_entries = 0;
    cache_capacity = 0;
    cache_lookups = 0;
    cache_hits = 0;
    cache_stores = 0;
    cache_evictions = 0;
    ite_recursions = 0;
    and_recursions = 0;
    xor_recursions = 0;
    constrain_recursions = 0;
    restrict_recursions = 0;
    quantify_recursions = 0;
    and_exists_recursions = 0;
    interned_cubes = 0;
    gc_runs = 0;
    gc_reclaimed = 0;
  }

type suite = {
  suite_calls : call list;
  engine : Bdd.Stats.t;
  suite_dnf : (string * string) list;
}

let run_suite_stats ?(config = default_config) ?(progress = default_progress)
    benches =
  let jobs = config.engine.jobs in
  let cancel =
    if config.limits.fail_fast then Some (Exec.Cancel.create ()) else None
  in
  let run (b : Circuits.Registry.bench) =
    let r = run_bench_stats ~config ?cancel b in
    (match cancel with
     | Some t
       when r.dnf <> None
            || List.exists (fun (c : call) -> c.dnf <> []) r.calls ->
       (* fail fast: the first DNF anywhere cancels every sibling *)
       Exec.Cancel.cancel t
     | _ -> ());
    r
  in
  let results =
    if jobs <= 1 then
      List.map
        (fun (b : Circuits.Registry.bench) ->
           progress b.name;
           let r = run b in
           List.iter progress (summary_messages b r);
           r)
        benches
    else begin
      (* One pool job per benchmark.  Every job builds its own manager
         (in [run_bench_stats]); nothing manager-related crosses domains,
         so the captured calls are element-wise identical to the
         sequential run's.  [Exec.map] returns in submission order and
         merges the workers' trace buffers in that same order, and
         progress messages are replayed here, also in submission order —
         the observable output is byte-identical to [jobs:1] (timings
         aside; and fail-fast cancellation, which depends on which
         sibling trips first, is inherently schedule-dependent). *)
      let results = Exec.map ~jobs run benches in
      List.iter2
        (fun (b : Circuits.Registry.bench) r ->
           progress b.name;
           List.iter progress (summary_messages b r))
        benches results;
      results
    end
  in
  {
    suite_calls = List.concat_map (fun r -> r.calls) results;
    engine =
      List.fold_left (fun acc r -> add_stats acc r.stats) zero_stats results;
    suite_dnf =
      List.concat
        (List.map2
           (fun (b : Circuits.Registry.bench) r ->
              match r.dnf with
              | Some reason -> [ (b.name, reason) ]
              | None -> [])
           benches results);
  }

let run_suite ?config ?progress benches =
  (run_suite_stats ?config ?progress benches).suite_calls
