type origin = Frontier | Image_cofactor

let src = Logs.Src.create "bddmin.capture" ~doc:"experiment capture"

module Log = (val Logs.src_log src)

type call = {
  bench : string;
  iteration : int;
  origin : origin;
  f_size : int;
  c_onset_fraction : float;
  sizes : (string * int) list;
  times : (string * float) list;
  hit_rates : (string * float) list;
  min_size : int;
  min_name : string;
  low_bd : int;
}

type config = {
  entries : Minimize.Registry.entry list;
  lower_bound_cubes : int;
  max_iterations : int;
  self_product : bool;
  flush_caches : bool;
  image_strategy : Fsm.Image.strategy;
  include_image_instances : bool;
  max_calls : int;
}

let default_config =
  {
    entries = Minimize.Registry.all;
    lower_bound_cubes = 1000;
    max_iterations = 100_000;
    self_product = true;
    flush_caches = true;
    image_strategy = Fsm.Image.Partitioned;
    include_image_instances = true;
    max_calls = 400;
  }

let minimizer_names config = Minimize.Registry.names config.entries

let origin_name = function
  | Frontier -> "frontier"
  | Image_cofactor -> "image_cofactor"

let measure_call config man ~bench ~iteration ~origin
    (inst : Minimize.Ispec.t) =
  Obs.Trace.with_span "capture.call"
    ~attrs:
      [
        ("bench", Obs.Trace.Str bench);
        ("iteration", Obs.Trace.Int iteration);
        ("origin", Obs.Trace.Str (origin_name origin));
      ]
  @@ fun _call_sp ->
  let results =
    List.map
      (fun (e : Minimize.Registry.entry) ->
         if config.flush_caches then Bdd.clear_caches man;
         let s0 = Bdd.snapshot man in
         let (g, dt), s1 =
           Obs.Trace.with_span ("min:" ^ e.name) @@ fun sp ->
           let r = Obs.Clock.timed (fun () -> e.run man inst) in
           let s1 = Bdd.snapshot man in
           if Obs.Trace.enabled () then begin
             let d get = get s1 - get s0 in
             Obs.Trace.add sp "result_nodes"
               (Obs.Trace.Int (Bdd.size man (fst r)));
             Obs.Trace.add sp "cache_lookups"
               (Obs.Trace.Int (d (fun s -> s.Bdd.Stats.cache_lookups)));
             Obs.Trace.add sp "cache_hits"
               (Obs.Trace.Int (d (fun s -> s.Bdd.Stats.cache_hits)));
             Obs.Trace.add sp "interned_nodes"
               (Obs.Trace.Int (d (fun s -> s.Bdd.Stats.interned_total)));
             Obs.Trace.add sp "gc_runs"
               (Obs.Trace.Int (d (fun s -> s.Bdd.Stats.gc_runs)));
             Obs.Trace.add sp "cache_evictions"
               (Obs.Trace.Int (d (fun s -> s.Bdd.Stats.cache_evictions)))
           end;
           (r, s1)
         in
         let lookups =
           s1.Bdd.Stats.cache_lookups - s0.Bdd.Stats.cache_lookups
         in
         let hits = s1.Bdd.Stats.cache_hits - s0.Bdd.Stats.cache_hits in
         let hit_rate =
           if lookups = 0 then 0.0
           else float_of_int hits /. float_of_int lookups
         in
         (e.name, Bdd.size man g, dt, hit_rate))
      config.entries
  in
  let min_name, min_size =
    List.fold_left
      (fun (bn, bs) (n, s, _, _) -> if s < bs then (n, s) else (bn, bs))
      ("", max_int) results
  in
  let low_bd =
    Minimize.Lower_bound.compute man ~cube_limit:config.lower_bound_cubes inst
  in
  {
    bench;
    iteration;
    origin;
    f_size = Bdd.size man inst.Minimize.Ispec.f;
    c_onset_fraction = Minimize.Ispec.c_onset_fraction man inst;
    sizes = List.map (fun (n, s, _, _) -> (n, s)) results;
    times = List.map (fun (n, _, t, _) -> (n, t)) results;
    hit_rates = List.map (fun (n, _, _, h) -> (n, h)) results;
    min_size;
    min_name;
    low_bd;
  }

let run_bench_stats ?(config = default_config) (b : Circuits.Registry.bench) =
  let man = Bdd.new_man () in
  let nl = b.build () in
  let calls = ref [] in
  let ncalls = ref 0 in
  let consider ~iteration ~origin inst =
    (* §4.1.2 filter: skip cube care sets and care sets contained in f or
       its complement (most heuristics find a minimum there). *)
    if
      !ncalls < config.max_calls
      && not (Minimize.Ispec.trivial man inst)
    then begin
      incr ncalls;
      let call = measure_call config man ~bench:b.name ~iteration ~origin inst in
      Log.debug (fun m ->
          m "%s call %d (iter %d): |f| = %d, c_onset = %.3f, min = %d (%s)"
            b.name !ncalls iteration call.f_size call.c_onset_fraction
            call.min_size call.min_name);
      calls := call :: !calls
    end
  in
  let on_instance ~iteration inst = consider ~iteration ~origin:Frontier inst in
  let on_image_constrain ~iteration inst =
    if config.include_image_instances then
      consider ~iteration ~origin:Image_cofactor inst
  in
  if config.self_product then begin
    match
      Fsm.Equiv.check_self man ~strategy:config.image_strategy
        ~max_iterations:config.max_iterations ~on_instance ~on_image_constrain
        nl
    with
    | Fsm.Equiv.Equivalent _ -> ()
    | Fsm.Equiv.Not_equivalent _ ->
      failwith ("self-equivalence failed on " ^ b.name)
  end
  else begin
    let sym = Fsm.Symbolic.of_netlist man nl in
    ignore
      (Fsm.Reach.reachable ~strategy:config.image_strategy
         ~max_iterations:config.max_iterations ~on_instance
         ~on_image_constrain sym)
  end;
  (* The run is over and nothing is retained, so a collection from the
     permanent roots alone shows how much of the table was dead. *)
  let reclaimed = Bdd.gc man in
  (List.rev !calls, Bdd.snapshot man, reclaimed)

let run_bench ?config b =
  let calls, _, _ = run_bench_stats ?config b in
  calls

let default_progress msg = Log.info (fun m -> m "%s" msg)

let run_suite ?(config = default_config) ?(progress = default_progress) benches =
  List.concat_map
    (fun (b : Circuits.Registry.bench) ->
       progress b.name;
       let calls, stats, reclaimed = run_bench_stats ~config b in
       progress
         (Printf.sprintf "  %s: %d non-trivial calls" b.name
            (List.length calls));
       progress
         (Printf.sprintf
            "  engine: %d peak nodes, cache hit rate %.1f%%, final gc \
             reclaimed %d dead nodes"
            stats.Bdd.Stats.peak_live_nodes
            (100.0 *. Bdd.Stats.hit_rate stats)
            reclaimed);
       calls)
    benches
