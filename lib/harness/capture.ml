type origin = Frontier | Image_cofactor

let src = Logs.Src.create "bddmin.capture" ~doc:"experiment capture"

module Log = (val Logs.src_log src)

type call = {
  bench : string;
  iteration : int;
  origin : origin;
  f_size : int;
  c_onset_fraction : float;
  sizes : (string * int) list;
  times : (string * float) list;
  min_size : int;
  min_name : string;
  low_bd : int;
}

type config = {
  entries : Minimize.Registry.entry list;
  lower_bound_cubes : int;
  max_iterations : int;
  self_product : bool;
  flush_caches : bool;
  image_strategy : Fsm.Image.strategy;
  include_image_instances : bool;
  max_calls : int;
}

let default_config =
  {
    entries = Minimize.Registry.all;
    lower_bound_cubes = 1000;
    max_iterations = 100_000;
    self_product = true;
    flush_caches = true;
    image_strategy = Fsm.Image.Partitioned;
    include_image_instances = true;
    max_calls = 400;
  }

let minimizer_names config = Minimize.Registry.names config.entries

let measure_call config man ~bench ~iteration ~origin
    (inst : Minimize.Ispec.t) =
  let results =
    List.map
      (fun (e : Minimize.Registry.entry) ->
         if config.flush_caches then Bdd.clear_caches man;
         let t0 = Unix.gettimeofday () in
         let g = e.run man inst in
         let dt = Unix.gettimeofday () -. t0 in
         (e.name, Bdd.size man g, dt))
      config.entries
  in
  let min_name, min_size =
    List.fold_left
      (fun (bn, bs) (n, s, _) -> if s < bs then (n, s) else (bn, bs))
      ("", max_int) results
  in
  let low_bd =
    Minimize.Lower_bound.compute man ~cube_limit:config.lower_bound_cubes inst
  in
  {
    bench;
    iteration;
    origin;
    f_size = Bdd.size man inst.Minimize.Ispec.f;
    c_onset_fraction = Minimize.Ispec.c_onset_fraction man inst;
    sizes = List.map (fun (n, s, _) -> (n, s)) results;
    times = List.map (fun (n, _, t) -> (n, t)) results;
    min_size;
    min_name;
    low_bd;
  }

let run_bench ?(config = default_config) (b : Circuits.Registry.bench) =
  let man = Bdd.new_man () in
  let nl = b.build () in
  let calls = ref [] in
  let ncalls = ref 0 in
  let consider ~iteration ~origin inst =
    (* §4.1.2 filter: skip cube care sets and care sets contained in f or
       its complement (most heuristics find a minimum there). *)
    if
      !ncalls < config.max_calls
      && not (Minimize.Ispec.trivial man inst)
    then begin
      incr ncalls;
      let call = measure_call config man ~bench:b.name ~iteration ~origin inst in
      Log.debug (fun m ->
          m "%s call %d (iter %d): |f| = %d, c_onset = %.3f, min = %d (%s)"
            b.name !ncalls iteration call.f_size call.c_onset_fraction
            call.min_size call.min_name);
      calls := call :: !calls
    end
  in
  let on_instance ~iteration inst = consider ~iteration ~origin:Frontier inst in
  let on_image_constrain ~iteration inst =
    if config.include_image_instances then
      consider ~iteration ~origin:Image_cofactor inst
  in
  if config.self_product then begin
    match
      Fsm.Equiv.check_self man ~strategy:config.image_strategy
        ~max_iterations:config.max_iterations ~on_instance ~on_image_constrain
        nl
    with
    | Fsm.Equiv.Equivalent _ -> ()
    | Fsm.Equiv.Not_equivalent _ ->
      failwith ("self-equivalence failed on " ^ b.name)
  end
  else begin
    let sym = Fsm.Symbolic.of_netlist man nl in
    ignore
      (Fsm.Reach.reachable ~strategy:config.image_strategy
         ~max_iterations:config.max_iterations ~on_instance
         ~on_image_constrain sym)
  end;
  List.rev !calls

let run_suite ?(config = default_config) ?(progress = fun _ -> ()) benches =
  List.concat_map
    (fun (b : Circuits.Registry.bench) ->
       progress b.name;
       let calls = run_bench ~config b in
       progress
         (Printf.sprintf "  %s: %d non-trivial calls" b.name
            (List.length calls));
       calls)
    benches
