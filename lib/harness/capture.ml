type origin = Frontier | Image_cofactor

let src = Logs.Src.create "bddmin.capture" ~doc:"experiment capture"

module Log = (val Logs.src_log src)

type call = {
  bench : string;
  iteration : int;
  origin : origin;
  f_size : int;
  c_onset_fraction : float;
  sizes : (string * int) list;
  times : (string * float) list;
  hit_rates : (string * float) list;
  min_size : int;
  min_name : string;
  low_bd : int;
}

type config = {
  entries : Minimize.Registry.entry list;
  lower_bound_cubes : int;
  max_iterations : int;
  self_product : bool;
  flush_caches : bool;
  image_strategy : Fsm.Image.strategy;
  cluster_bound : int option;
  include_image_instances : bool;
  max_calls : int;
}

let default_config =
  {
    entries = Minimize.Registry.all;
    lower_bound_cubes = 1000;
    max_iterations = 100_000;
    self_product = true;
    flush_caches = true;
    image_strategy = Fsm.Image.Partitioned;
    cluster_bound = None;
    include_image_instances = true;
    max_calls = 400;
  }

let minimizer_names config = Minimize.Registry.names config.entries

let origin_name = function
  | Frontier -> "frontier"
  | Image_cofactor -> "image_cofactor"

let measure_call config man ~bench ~iteration ~origin
    (inst : Minimize.Ispec.t) =
  Obs.Trace.with_span "capture.call"
    ~attrs:
      [
        ("bench", Obs.Trace.Str bench);
        ("iteration", Obs.Trace.Int iteration);
        ("origin", Obs.Trace.Str (origin_name origin));
      ]
  @@ fun _call_sp ->
  let results =
    List.map
      (fun (e : Minimize.Registry.entry) ->
         if config.flush_caches then Bdd.clear_caches man;
         let s0 = Bdd.snapshot man in
         let (g, dt), s1 =
           Obs.Trace.with_span ("min:" ^ e.name) @@ fun sp ->
           let r = Obs.Clock.timed (fun () -> e.run man inst) in
           let s1 = Bdd.snapshot man in
           if Obs.Trace.enabled () then begin
             let d get = get s1 - get s0 in
             Obs.Trace.add sp "result_nodes"
               (Obs.Trace.Int (Bdd.size man (fst r)));
             Obs.Trace.add sp "cache_lookups"
               (Obs.Trace.Int (d (fun s -> s.Bdd.Stats.cache_lookups)));
             Obs.Trace.add sp "cache_hits"
               (Obs.Trace.Int (d (fun s -> s.Bdd.Stats.cache_hits)));
             Obs.Trace.add sp "interned_nodes"
               (Obs.Trace.Int (d (fun s -> s.Bdd.Stats.interned_total)));
             Obs.Trace.add sp "gc_runs"
               (Obs.Trace.Int (d (fun s -> s.Bdd.Stats.gc_runs)));
             Obs.Trace.add sp "cache_evictions"
               (Obs.Trace.Int (d (fun s -> s.Bdd.Stats.cache_evictions)))
           end;
           (r, s1)
         in
         let lookups =
           s1.Bdd.Stats.cache_lookups - s0.Bdd.Stats.cache_lookups
         in
         let hits = s1.Bdd.Stats.cache_hits - s0.Bdd.Stats.cache_hits in
         let hit_rate =
           if lookups = 0 then 0.0
           else float_of_int hits /. float_of_int lookups
         in
         (e.name, Bdd.size man g, dt, hit_rate))
      config.entries
  in
  let min_name, min_size =
    List.fold_left
      (fun (bn, bs) (n, s, _, _) -> if s < bs then (n, s) else (bn, bs))
      ("", max_int) results
  in
  let low_bd =
    Minimize.Lower_bound.compute man ~cube_limit:config.lower_bound_cubes inst
  in
  {
    bench;
    iteration;
    origin;
    f_size = Bdd.size man inst.Minimize.Ispec.f;
    c_onset_fraction = Minimize.Ispec.c_onset_fraction man inst;
    sizes = List.map (fun (n, s, _, _) -> (n, s)) results;
    times = List.map (fun (n, _, t, _) -> (n, t)) results;
    hit_rates = List.map (fun (n, _, _, h) -> (n, h)) results;
    min_size;
    min_name;
    low_bd;
  }

let run_bench_stats ?(config = default_config) (b : Circuits.Registry.bench) =
  let man = Bdd.new_man () in
  let nl = b.build () in
  let calls = ref [] in
  let ncalls = ref 0 in
  let consider ~iteration ~origin inst =
    (* §4.1.2 filter: skip cube care sets and care sets contained in f or
       its complement (most heuristics find a minimum there). *)
    if
      !ncalls < config.max_calls
      && not (Minimize.Ispec.trivial man inst)
    then begin
      incr ncalls;
      let call = measure_call config man ~bench:b.name ~iteration ~origin inst in
      Log.debug (fun m ->
          m "%s call %d (iter %d): |f| = %d, c_onset = %.3f, min = %d (%s)"
            b.name !ncalls iteration call.f_size call.c_onset_fraction
            call.min_size call.min_name);
      calls := call :: !calls
    end
  in
  let on_instance ~iteration inst = consider ~iteration ~origin:Frontier inst in
  let on_image_constrain ~iteration inst =
    if config.include_image_instances then
      consider ~iteration ~origin:Image_cofactor inst
  in
  if config.self_product then begin
    match
      Fsm.Equiv.check_self man ~strategy:config.image_strategy
        ?cluster_bound:config.cluster_bound
        ~max_iterations:config.max_iterations ~on_instance ~on_image_constrain
        nl
    with
    | Fsm.Equiv.Equivalent _ -> ()
    | Fsm.Equiv.Not_equivalent _ ->
      failwith ("self-equivalence failed on " ^ b.name)
  end
  else begin
    let sym = Fsm.Symbolic.of_netlist man nl in
    ignore
      (Fsm.Reach.reachable ~strategy:config.image_strategy
         ?cluster_bound:config.cluster_bound
         ~max_iterations:config.max_iterations ~on_instance
         ~on_image_constrain sym)
  end;
  (* The run is over and nothing is retained, so a collection from the
     permanent roots alone shows how much of the table was dead. *)
  let reclaimed = Bdd.gc man in
  (List.rev !calls, Bdd.snapshot man, reclaimed)

let run_bench ?config b =
  let calls, _, _ = run_bench_stats ?config b in
  calls

let default_progress msg = Log.info (fun m -> m "%s" msg)

let summary_messages (b : Circuits.Registry.bench) calls stats reclaimed =
  [
    Printf.sprintf "  %s: %d non-trivial calls" b.name (List.length calls);
    Printf.sprintf
      "  engine: %d peak nodes, cache hit rate %.1f%%, final gc reclaimed \
       %d dead nodes"
      stats.Bdd.Stats.peak_live_nodes
      (100.0 *. Bdd.Stats.hit_rate stats)
      reclaimed;
  ]

(* Field-wise sum of per-benchmark manager statistics: a totals view of
   the whole suite (occupancy figures add up because the managers are
   disjoint). *)
let add_stats (a : Bdd.Stats.t) (b : Bdd.Stats.t) : Bdd.Stats.t =
  {
    vars = a.vars + b.vars;
    live_nodes = a.live_nodes + b.live_nodes;
    peak_live_nodes = a.peak_live_nodes + b.peak_live_nodes;
    interned_total = a.interned_total + b.interned_total;
    unique_capacity = a.unique_capacity + b.unique_capacity;
    external_refs = a.external_refs + b.external_refs;
    cache_entries = a.cache_entries + b.cache_entries;
    cache_capacity = a.cache_capacity + b.cache_capacity;
    cache_lookups = a.cache_lookups + b.cache_lookups;
    cache_hits = a.cache_hits + b.cache_hits;
    cache_stores = a.cache_stores + b.cache_stores;
    cache_evictions = a.cache_evictions + b.cache_evictions;
    ite_recursions = a.ite_recursions + b.ite_recursions;
    and_recursions = a.and_recursions + b.and_recursions;
    xor_recursions = a.xor_recursions + b.xor_recursions;
    constrain_recursions = a.constrain_recursions + b.constrain_recursions;
    restrict_recursions = a.restrict_recursions + b.restrict_recursions;
    quantify_recursions = a.quantify_recursions + b.quantify_recursions;
    and_exists_recursions = a.and_exists_recursions + b.and_exists_recursions;
    interned_cubes = a.interned_cubes + b.interned_cubes;
    gc_runs = a.gc_runs + b.gc_runs;
    gc_reclaimed = a.gc_reclaimed + b.gc_reclaimed;
  }

let zero_stats : Bdd.Stats.t =
  {
    vars = 0;
    live_nodes = 0;
    peak_live_nodes = 0;
    interned_total = 0;
    unique_capacity = 0;
    external_refs = 0;
    cache_entries = 0;
    cache_capacity = 0;
    cache_lookups = 0;
    cache_hits = 0;
    cache_stores = 0;
    cache_evictions = 0;
    ite_recursions = 0;
    and_recursions = 0;
    xor_recursions = 0;
    constrain_recursions = 0;
    restrict_recursions = 0;
    quantify_recursions = 0;
    and_exists_recursions = 0;
    interned_cubes = 0;
    gc_runs = 0;
    gc_reclaimed = 0;
  }

let run_suite_stats ?(config = default_config) ?(progress = default_progress)
    ?(jobs = 1) benches =
  let report (b : Circuits.Registry.bench) (calls, stats, reclaimed) =
    progress b.name;
    List.iter progress (summary_messages b calls stats reclaimed)
  in
  let results =
    if jobs <= 1 then
      List.map
        (fun (b : Circuits.Registry.bench) ->
           progress b.name;
           let ((calls, stats, reclaimed) as r) = run_bench_stats ~config b in
           List.iter progress (summary_messages b calls stats reclaimed);
           r)
        benches
    else begin
      (* One pool job per benchmark.  Every job builds its own manager
         (in [run_bench_stats]); nothing manager-related crosses domains,
         so the captured calls are element-wise identical to the
         sequential run's.  [Exec.map] returns in submission order and
         merges the workers' trace buffers in that same order, and
         progress messages are replayed here, also in submission order —
         the observable output is byte-identical to [jobs:1] (timings
         aside). *)
      let results =
        Exec.map ~jobs (fun b -> run_bench_stats ~config b) benches
      in
      List.iter2 report benches results;
      results
    end
  in
  let calls = List.concat_map (fun (calls, _, _) -> calls) results in
  let stats =
    List.fold_left (fun acc (_, s, _) -> add_stats acc s) zero_stats results
  in
  (calls, stats)

let run_suite ?config ?progress ?jobs benches =
  fst (run_suite_stats ?config ?progress ?jobs benches)
