(** The parallel-engine exhibit: seq-vs-par reachability on one shared
    node store, feeding the JSON baseline's [parallel] section. *)

val default_benches : string list
(** The workload machines ([tlc], [gray6], [minmax4], [rnd344]). *)

val run :
  ?jobs:int ->
  ?benches:string list ->
  ?progress:(string -> unit) ->
  unit ->
  Bench_json.parallel_stats
(** Run the workload on a fresh shared store with a pool of [jobs]
    (default 2) worker domains: once with sequential images, once with
    the parallel merge tree, verifying per machine that both return the
    same canonical edge.  [progress] receives one line per machine.
    @raise Failure if any parallel result diverges from sequential
    (that would be a concurrency bug — never expected).
    @raise Invalid_argument on an unknown benchmark name. *)
