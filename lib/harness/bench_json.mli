(** The machine-readable benchmark baseline ([BENCH_engine.json]).

    One JSON document per benchmark run, schema ["bddmin-bench-engine/8"],
    with every key always present:

    {v
    schema       string  "bddmin-bench-engine/8"
    repr         string  "bdd" | "cbdd" — node representation of the run
    jobs         int     worker domains used for the capture suite
    quick        bool    small sub-suite?
    max_calls    int     per-benchmark cap on measured calls
    image        string  image strategy used for capture
    limits       { node_budget, step_budget, time_budget, fail_fast }
                 (budgets are ints/seconds or null = unlimited)
    suite        { benches, calls, capture_seconds }
    dnf          [ { bench, reason } ]   benchmarks whose driver DNF'd
    phases       [ { name, seconds } ]   wall time, execution order
    minimizers   [ { name, total_size, total_chain_size, total_seconds,
                     mean_hit_rate, dnf_calls } ]
    serve        { clients, requests, workers, seconds, requests_per_sec,
                   p50_ms, p95_ms, p99_ms, mean_ms, ok_replies,
                   dnf_replies, partial_replies, busy_replies,
                   error_replies, telemetry, server }
                 or null when the serve phase was skipped
    parallel     { jobs, stripes, views, live_nodes, interned_total,
                   intern_retries, gc_runs, gc_reclaimed,
                   gc_barrier_waits, gc_barrier_wait_ms, seq_seconds,
                   par_seconds, speedup, identical }
                 or null when the parallel-engine phase was skipped
    cbdd         { calls, plain_total, chain_total, compression, seconds,
                   verdicts_identical }
                 — the CBDD ablation row (the quick suite re-captured
                 under the chain-reduced representation, compared to
                 the plain run) — or null when that phase was skipped
    engine       Bdd.Stats.t counters (summed over the suite's managers)
    v}

    The serve [telemetry] object is
    [{ explained, queue_us_mean, exec_us_mean, write_us_mean }] —
    server-reported phase means over replies that carried telemetry
    (loadgen run with [explain]) — or [null] when none did.

    The serve [server] object is the end-of-run scrape of the daemon's
    own counters —
    [{ cache_hits, cache_canonical_hits, cache_misses, cache_collapsed,
    cache_evicted, sessions_opened, sessions_evicted, batches,
    batched_requests, busy_replies }] — or [null] when the scrape
    connection failed.

    Schema history: [/2] added the [image] key and the
    [and_exists_recursions] / [interned_cubes] engine counters; [/3]
    added resource governance — the [limits] and [dnf] keys and the
    per-minimizer [dnf_calls] count; [/4] added the [serve] section —
    request throughput and tail latency of the [bddmin serve] load
    generator ([null] when that phase is disabled); [/5] split serve
    replies into per-status counts ([ok_replies] / [dnf_replies] /
    [partial_replies] / [error_replies]) and added the serve
    [telemetry] section of server-side phase timings; [/6] added the
    client-observed [busy_replies] count (backpressure refusals, not
    errors) and the [server] section of scraped daemon counters —
    result-cache traffic, session and batch activity, busy replies;
    [/7] added the [parallel] section — the shared-store concurrent
    manager tier's telemetry (unique-table stripes, intern lock
    retries, stop-the-world barrier waits) and the seq-vs-par timing
    and canonical-identity verdict of the parallel reachability
    workload ([null] when that phase is disabled); [/8] added the
    top-level [repr] field, the per-minimizer [total_chain_size]
    column (physical nodes — equal to [total_size] under ["bdd"]) and
    the [cbdd] ablation section.

    Committed snapshots of this file are the perf trajectory: every
    change regenerates it ([make bench-json] or [bddmin bench]) and
    diffs against the predecessor. *)

type serve_telemetry = {
  serve_explained : int;
  serve_queue_us_mean : float;
  serve_exec_us_mean : float;
  serve_write_us_mean : float;
}
(** Server-side phase means over explained replies, for the serve
    [telemetry] object. *)

type serve_server = {
  serve_cache_hits : int;
  serve_cache_canonical_hits : int;
  serve_cache_misses : int;
  serve_cache_collapsed : int;
  serve_cache_evicted : int;
  serve_sessions_opened : int;
  serve_sessions_evicted : int;
  serve_batches : int;
  serve_batched_requests : int;
  serve_busy_replies : int;
}
(** Scraped daemon counters for the serve [server] object. *)

type serve_stats = {
  serve_clients : int;
  serve_requests : int;
  serve_workers : int;
  serve_seconds : float;
  serve_rps : float;
  serve_p50_ms : float;
  serve_p95_ms : float;
  serve_p99_ms : float;
  serve_mean_ms : float;
  serve_ok : int;
  serve_dnf : int;
  serve_partial : int;
  serve_busy : int;
  serve_errors : int;
  serve_telemetry : serve_telemetry option;
  serve_server : serve_server option;
}
(** The [serve] section, as a plain record so this library needs no
    dependency on [serve] — callers copy the loadgen stats across. *)

type parallel_stats = {
  par_jobs : int;  (** worker domains of the parallel-engine phase *)
  par_stripes : int;  (** unique-table stripes of the shared store *)
  par_views : int;  (** views attached at scrape time *)
  par_live_nodes : int;
  par_interned_total : int;
  par_intern_retries : int;
      (** interns that found their stripe lock already held *)
  par_gc_runs : int;
  par_gc_reclaimed : int;
  par_barrier_waits : int;
      (** domains blocked at the stop-the-world GC barrier *)
  par_barrier_wait_ms : float;
  par_seq_seconds : float;  (** same workload, sequential, same store *)
  par_par_seconds : float;
  par_speedup : float;  (** seq / par; ≈ 1.0 on a single-CPU host *)
  par_identical : bool;
      (** parallel results were the same canonical edges as sequential *)
}
(** The [parallel] section — concurrent manager telemetry plus the
    seq-vs-par comparison of the phase's reachability workload. *)

type cbdd_stats = {
  cbdd_calls : int;  (** measured calls of the ablation capture *)
  cbdd_plain_total : int;
      (** total plain-equivalent [min] size over the ablation's calls *)
  cbdd_chain_total : int;
      (** total chain-aware (physical) [min] size over the same calls *)
  cbdd_seconds : float;  (** ablation capture wall time *)
  cbdd_verdicts_identical : bool;
      (** per-call [min_size]/[min_name] verdicts matched the plain run *)
}
(** The [cbdd] ablation section; [compression] is derived
    (plain/chain). *)

val render :
  ?serve:serve_stats ->
  ?parallel:parallel_stats ->
  ?cbdd:cbdd_stats ->
  ?repr:Bdd.repr ->
  jobs:int ->
  quick:bool ->
  max_calls:int ->
  image:string ->
  limits:Capture.limits_config ->
  benches:int ->
  capture_seconds:float ->
  phases:(string * float) list ->
  names:string list ->
  engine:Bdd.Stats.t ->
  dnf:(string * string) list ->
  Capture.call list ->
  string
(** Render the document.  [names] selects and orders the [minimizers]
    rows; [engine] and [dnf] are typically {!Capture.run_suite_stats}'s
    summed statistics and driver-exhaustion rows.  Non-finite floats
    render as JSON [null]; an omitted [serve] or [parallel] renders as
    [null]. *)

val write :
  ?serve:serve_stats ->
  ?parallel:parallel_stats ->
  ?cbdd:cbdd_stats ->
  ?repr:Bdd.repr ->
  path:string ->
  jobs:int ->
  quick:bool ->
  max_calls:int ->
  image:string ->
  limits:Capture.limits_config ->
  benches:int ->
  capture_seconds:float ->
  phases:(string * float) list ->
  names:string list ->
  engine:Bdd.Stats.t ->
  dnf:(string * string) list ->
  Capture.call list ->
  unit
(** {!render} to a file (truncating). *)
