(** Instance capture: run the FSM-equivalence application over the
    benchmark suite, intercept every frontier-minimization call, apply
    every catalogued minimizer to it, and record sizes and runtimes —
    the paper's §4.1 experimental procedure.

    As in the paper: the application itself proceeds with [constrain]'s
    answer; calls where the care set is a cube or contains/excludes the
    onset are filtered out; operation caches are flushed before timing
    each minimizer. *)

type origin =
  | Frontier  (** a frontier minimization instance [[U; U + ¬R]] *)
  | Image_cofactor
  (** a generalized-cofactor instance [[δ_j; S]] from the constrain-based
      image computation — the calls that dominate the paper's data and
      populate its [c_onset_size < 5 %] bucket *)

type call = {
  bench : string;
  iteration : int;
  origin : origin;
  f_size : int;  (** [|f|], the unminimized function *)
  c_onset_fraction : float;  (** the paper's [c_onset_size], in [0, 1] *)
  sizes : (string * int) list;  (** result size per minimizer *)
  times : (string * float) list;  (** seconds per minimizer *)
  hit_rates : (string * float) list;
  (** computed-cache hit rate ([0, 1]) observed while each minimizer ran
      (caches are flushed before each run when [flush_caches] is set, so
      this measures the heuristic's own locality) *)
  min_size : int;  (** the paper's [min]: best size over all minimizers *)
  min_name : string;
  low_bd : int;  (** the Theorem 7 cube lower bound *)
}

type config = {
  entries : Minimize.Registry.entry list;
  lower_bound_cubes : int;
  max_iterations : int;
  self_product : bool;
  (** intercept inside the product-machine self-equivalence check (the
      paper's setup) rather than plain reachability *)
  flush_caches : bool;
  image_strategy : Fsm.Image.strategy;
  cluster_bound : int option;
  (** node bound for the {!Fsm.Image.Clustered} strategy's schedule
      ([None] = {!Fsm.Qsched.default_cluster_bound}; ignored by the
      other strategies) *)
  include_image_instances : bool;
  (** also intercept the image computation's cofactor calls, as the
      paper's instrumented [constrain] does *)
  max_calls : int;  (** per-benchmark cap on measured calls *)
}

val default_config : config
(** All paper entries (plus the [sched] extension), 1000 lower-bound
    cubes, product-machine interception, the partitioned image strategy
    (the cofactor instances are emitted regardless of strategy), cache
    flushing on, at most 400 measured calls per benchmark. *)

val run_bench :
  ?config:config -> Circuits.Registry.bench -> call list
(** Capture all non-trivial minimization instances of one benchmark. *)

val run_bench_stats :
  ?config:config ->
  Circuits.Registry.bench ->
  call list * Bdd.Stats.t * int
(** Like {!run_bench}, but also return the engine statistics of the
    benchmark's manager and the node count reclaimed by a final garbage
    collection (everything the run interned is dead once it finishes). *)

val run_suite_stats :
  ?config:config ->
  ?progress:(string -> unit) ->
  ?jobs:int ->
  Circuits.Registry.bench list ->
  call list * Bdd.Stats.t
(** Like {!run_suite}, but also return the field-wise {e sum} of every
    benchmark manager's final statistics — a totals view of the engine
    work the whole suite did (managers are disjoint, so occupancy
    figures add up too).  This is what the bench baseline's [engine]
    section records. *)

val run_suite :
  ?config:config ->
  ?progress:(string -> unit) ->
  ?jobs:int ->
  Circuits.Registry.bench list ->
  call list
(** [progress] defaults to logging each message at [info] level on the
    ["bddmin.capture"] source.

    [jobs] (default 1) is the number of worker domains: with [jobs > 1]
    the benchmarks run concurrently on an [Exec.Pool], one private BDD
    manager per job, and the results are collected in submission order —
    the returned calls, the [progress] message stream and any merged
    trace are identical to the sequential run's (wall-clock readings in
    [times] aside).  Per-job trace buffers are forwarded to the calling
    domain's sink with worker domain ids as trace thread ids. *)

val origin_name : origin -> string
(** ["frontier"] or ["image_cofactor"] (table and trace labels). *)

val minimizer_names : config -> string list
(** The minimizer names of the configuration, in registry order. *)
