(** Instance capture: run the FSM-equivalence application over the
    benchmark suite, intercept every frontier-minimization call, apply
    every catalogued minimizer to it, and record sizes and runtimes —
    the paper's §4.1 experimental procedure.

    As in the paper: the application itself proceeds with [constrain]'s
    answer; calls where the care set is a cube or contains/excludes the
    onset are filtered out; operation caches are flushed before timing
    each minimizer.

    Resource governance: when the {!limits_config} carries budgets, each
    measured minimizer invocation runs under a fresh {!Bdd.Budget} and an
    exhausted run is recorded as a DNF entry instead of a size row, while
    the driving fixpoint itself runs under a benchmark-wide budget whose
    exhaustion yields a per-benchmark [DNF(reason)] row — the suite never
    aborts.  With no budgets configured, every code path and every
    recorded byte is identical to the ungoverned harness. *)

type origin =
  | Frontier  (** a frontier minimization instance [[U; U + ¬R]] *)
  | Image_cofactor
  (** a generalized-cofactor instance [[δ_j; S]] from the constrain-based
      image computation — the calls that dominate the paper's data and
      populate its [c_onset_size < 5 %] bucket *)

type call = {
  bench : string;
  iteration : int;
  origin : origin;
  f_size : int;
  (** [|f|], the unminimized function, as a plain-BDD node count
      ({!Bdd.Metric.plain_equivalent}) — representation-independent *)
  f_chain_size : int;
  (** physical node count of [f] ({!Bdd.Metric.nodes}); equals [f_size]
      under [`Bdd], smaller under [`Cbdd] when chains compress *)
  c_onset_fraction : float;  (** the paper's [c_onset_size], in [0, 1] *)
  sizes : (string * int) list;
  (** result size per minimizer that completed within budget, as
      plain-equivalent node counts, so verdicts and rankings are
      identical across representations *)
  chain_sizes : (string * int) list;
  (** physical (chain-aware) node count per completed minimizer *)
  times : (string * float) list;  (** seconds per completed minimizer *)
  hit_rates : (string * float) list;
  (** computed-cache hit rate ([0, 1]) observed while each minimizer ran
      (caches are flushed before each run when [flush_caches] is set, so
      this measures the heuristic's own locality) *)
  dnf : (string * string) list;
  (** minimizers that exhausted their budget on this call, with the
      {!Bdd.Budget.reason_label}; always [[]] when no budget is
      configured.  Names listed here are absent from [sizes], [times]
      and [hit_rates]. *)
  min_size : int;
  (** the paper's [min]: best size over the minimizers that completed *)
  min_name : string;
  low_bd : int;  (** the Theorem 7 cube lower bound *)
}

(** {1 Configuration}

    The configuration is three nested records — what to run ([engine]),
    how images are computed ([image]), and how much work is allowed
    ([limits]) — built by updating {!default_config} through the
    [with_*] builders:
    {[
      Capture.(default_config |> with_jobs 4 |> with_node_budget (Some 50_000))
    ]} *)

type engine_config = {
  entries : Minimize.Registry.entry list;
  repr : Bdd.repr;
  (** node representation of every benchmark manager (default [`Bdd]);
      under [`Cbdd] the [sizes]/[min] columns are unchanged (they are
      plain-equivalent counts) while [chain_sizes] shrinks *)
  lower_bound_cubes : int;
  self_product : bool;
  (** intercept inside the product-machine self-equivalence check (the
      paper's setup) rather than plain reachability *)
  flush_caches : bool;
  include_image_instances : bool;
  (** also intercept the image computation's cofactor calls, as the
      paper's instrumented [constrain] does *)
  jobs : int;
  (** worker domains for {!run_suite_stats}: with [jobs > 1] the
      benchmarks run concurrently on an [Exec.Pool], one private BDD
      manager per job, and the results are collected in submission
      order — the returned calls, the [progress] message stream and any
      merged trace are identical to the sequential run's (wall-clock
      readings in [times] aside).  Per-job trace buffers are forwarded
      to the calling domain's sink with worker domain ids as trace
      thread ids. *)
}

type image_config = {
  strategy : Fsm.Image.strategy;
  cluster_bound : int option;
  (** node bound for the {!Fsm.Image.Clustered} strategy's schedule
      ([None] = {!Fsm.Qsched.default_cluster_bound}; ignored by the
      other strategies) *)
}

type limits_config = {
  max_iterations : int;
  max_calls : int;  (** per-benchmark cap on measured calls *)
  node_budget : int option;
  (** per-manager live-node ceiling, enforced both on the driving
      fixpoint and on each measured minimizer run *)
  step_budget : int option;
  (** recursion-step ceiling for each measured minimizer run; the
      driving fixpoint is exempt (a per-operation bound makes no sense
      accumulated over a whole benchmark) *)
  time_budget : float option;
  (** wall-clock seconds, per measured minimizer run and per benchmark
      driver *)
  fail_fast : bool;
  (** cancel all remaining benchmarks after the first DNF anywhere in
      the suite (which sibling trips first under [jobs > 1] is
      schedule-dependent, so the cancelled tail is not deterministic) *)
}

type config = {
  engine : engine_config;
  image : image_config;
  limits : limits_config;
}

val default_config : config
(** All paper entries (plus the [sched] extension), 1000 lower-bound
    cubes, product-machine interception, the partitioned image strategy
    (the cofactor instances are emitted regardless of strategy), cache
    flushing on, sequential ([jobs = 1]), at most 400 measured calls per
    benchmark, and no budgets. *)

(** {2 Builders} *)

val with_entries : Minimize.Registry.entry list -> config -> config
val with_repr : Bdd.repr -> config -> config
val with_lower_bound_cubes : int -> config -> config
val with_self_product : bool -> config -> config
val with_flush_caches : bool -> config -> config
val with_image_instances : bool -> config -> config
val with_jobs : int -> config -> config
val with_image_strategy : Fsm.Image.strategy -> config -> config
val with_cluster_bound : int option -> config -> config
val with_max_iterations : int -> config -> config
val with_max_calls : int -> config -> config
val with_node_budget : int option -> config -> config
val with_step_budget : int option -> config -> config
val with_time_budget : float option -> config -> config
val with_fail_fast : bool -> config -> config

(** {1 Running} *)

type bench_result = {
  calls : call list;
  stats : Bdd.Stats.t;
  (** the engine statistics of the benchmark's manager *)
  reclaimed : int;
  (** node count reclaimed by a final garbage collection (everything
      the run interned is dead once it finishes) *)
  dnf : string option;
  (** [Some reason_label] when the benchmark's driving fixpoint
      exhausted the driver budget (or was cancelled): [calls] then holds
      the calls captured before exhaustion *)
}

val run_bench :
  ?config:config -> Circuits.Registry.bench -> call list
(** Capture all non-trivial minimization instances of one benchmark. *)

val run_bench_stats :
  ?config:config ->
  ?cancel:Exec.Cancel.t ->
  Circuits.Registry.bench ->
  bench_result
(** Like {!run_bench} with the full {!bench_result}.  [cancel] is a
    cooperative cancellation token polled by the budgets (a benchmark
    whose token is already cancelled returns immediately with
    [dnf = Some "cancelled"] and no calls). *)

type suite = {
  suite_calls : call list;
  engine : Bdd.Stats.t;
  (** the field-wise {e sum} of every benchmark manager's final
      statistics — a totals view of the engine work the whole suite did
      (managers are disjoint, so occupancy figures add up too).  This is
      what the bench baseline's [engine] section records. *)
  suite_dnf : (string * string) list;
  (** benchmarks whose driver DNF'd, as [(bench, reason_label)] rows in
      suite order; [[]] when every fixpoint completed *)
}

val run_suite_stats :
  ?config:config ->
  ?progress:(string -> unit) ->
  Circuits.Registry.bench list ->
  suite

val run_suite :
  ?config:config ->
  ?progress:(string -> unit) ->
  Circuits.Registry.bench list ->
  call list
(** [progress] defaults to logging each message at [info] level on the
    ["bddmin.capture"] source; parallelism comes from the configuration's
    [jobs] field. *)

val origin_name : origin -> string
(** ["frontier"] or ["image_cofactor"] (table and trace labels). *)

val minimizer_names : config -> string list
(** The minimizer names of the configuration, in registry order. *)
