type 'a state =
  | Pending
  | Done of 'a
  | Failed of exn * Printexc.raw_backtrace

type 'a t = {
  lock : Mutex.t;
  filled : Condition.t;
  mutable state : 'a state;
}

let create () =
  { lock = Mutex.create (); filled = Condition.create (); state = Pending }

let resolve fut state =
  Mutex.lock fut.lock;
  (match fut.state with
   | Pending ->
     fut.state <- state;
     Condition.broadcast fut.filled
   | Done _ | Failed _ ->
     Mutex.unlock fut.lock;
     invalid_arg "Exec.Future: already resolved");
  Mutex.unlock fut.lock

let fill fut v = resolve fut (Done v)
let fail fut e bt = resolve fut (Failed (e, bt))

let await fut =
  Mutex.lock fut.lock;
  while fut.state = Pending do
    Condition.wait fut.filled fut.lock
  done;
  let state = fut.state in
  Mutex.unlock fut.lock;
  match state with
  | Done v -> v
  | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
  | Pending -> assert false

let peek fut =
  Mutex.lock fut.lock;
  let state = fut.state in
  Mutex.unlock fut.lock;
  match state with Done v -> Some v | Pending | Failed _ -> None

let is_resolved fut =
  Mutex.lock fut.lock;
  let state = fut.state in
  Mutex.unlock fut.lock;
  state <> Pending

let spawn pool f =
  let fut = create () in
  Pool.submit pool
    ~on_abort:(fun () -> fail fut Pool.Aborted (Printexc.get_callstack 0))
    (fun () ->
      match f () with
      | v -> fill fut v
      | exception e -> fail fut e (Printexc.get_raw_backtrace ()));
  fut
