type t = bool Atomic.t

let create () = Atomic.make false
let cancel t = Atomic.set t true
let cancelled t = Atomic.get t
