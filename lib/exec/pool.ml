(* A fixed-size pool of worker domains draining one priority work queue.

   The queue is a binary min-heap ordered by an explicit 64-bit priority
   (lower runs first; the serve daemon passes deadlines, making the pool
   earliest-deadline-first) with a submission sequence number breaking
   ties, so equal-priority jobs — and all jobs submitted without a
   priority — still run in FIFO order.

   The heap is guarded by a single mutex; workers sleep on a condition
   variable.  A submit signals {e one} waiter, and only when at least
   one worker is actually idle — a busy worker re-checks the heap when
   its current job finishes, so waking it early would be a wasted
   syscall, and broadcasting would stampede every sleeper for a single
   job.  The idle count is exported ({!idle_workers}) for gauges.

   Jobs are opaque thunks: the pool runs them and swallows anything they
   raise (the [Future] layer converts a job's outcome — value or
   exception — into a state the submitter awaits, so a raising job can
   never take a worker down with it, let alone wedge the pool).

   Every queued job also carries an abort callback.  [shutdown
   ~mode:`Abort] discards the still-queued jobs instead of running them,
   and invokes each discarded job's callback exactly once — that is how
   the [Future] layer resolves abandoned futures with [Aborted], so an
   [await] on a discarded job raises instead of hanging forever. *)

exception Aborted

type job = unit -> unit

type queued = { run : job; on_abort : job; prio : int64; seq : int }

(* [a] precedes [b]: smaller priority first, submission order on ties. *)
let precedes a b =
  match Int64.compare a.prio b.prio with
  | 0 -> a.seq < b.seq
  | c -> c < 0

(* ----- binary min-heap on a growable array ----- *)

module Heap = struct
  type t = { mutable arr : queued array; mutable len : int }

  let dummy =
    { run = ignore; on_abort = ignore; prio = 0L; seq = 0 }

  let create () = { arr = Array.make 16 dummy; len = 0 }
  let length h = h.len
  let is_empty h = h.len = 0

  let push h x =
    if h.len = Array.length h.arr then begin
      let bigger = Array.make (2 * h.len) dummy in
      Array.blit h.arr 0 bigger 0 h.len;
      h.arr <- bigger
    end;
    (* sift up *)
    let i = ref h.len in
    h.len <- h.len + 1;
    h.arr.(!i) <- x;
    while
      !i > 0
      &&
      let p = (!i - 1) / 2 in
      precedes h.arr.(!i) h.arr.(p)
      && begin
        let tmp = h.arr.(p) in
        h.arr.(p) <- h.arr.(!i);
        h.arr.(!i) <- tmp;
        i := p;
        true
      end
    do
      ()
    done

  let pop h =
    let top = h.arr.(0) in
    h.len <- h.len - 1;
    h.arr.(0) <- h.arr.(h.len);
    h.arr.(h.len) <- dummy;
    (* sift down *)
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < h.len && precedes h.arr.(l) h.arr.(!smallest) then smallest := l;
      if r < h.len && precedes h.arr.(r) h.arr.(!smallest) then smallest := r;
      if !smallest = !i then continue := false
      else begin
        let tmp = h.arr.(!smallest) in
        h.arr.(!smallest) <- h.arr.(!i);
        h.arr.(!i) <- tmp;
        i := !smallest
      end
    done;
    top

  let drain h =
    let rec go acc = if is_empty h then List.rev acc else go (pop h :: acc) in
    go []
end

type t = {
  lock : Mutex.t;
  nonempty : Condition.t;
  q : Heap.t;
  mutable next_seq : int;
  mutable idle : int;
  mutable closed : bool;
  mutable workers : unit Domain.t list;
  size : int;
}

let size pool = pool.size

let queue_depth pool =
  Mutex.lock pool.lock;
  let n = Heap.length pool.q in
  Mutex.unlock pool.lock;
  n

let idle_workers pool =
  Mutex.lock pool.lock;
  let n = pool.idle in
  Mutex.unlock pool.lock;
  n

let rec worker_loop pool =
  Mutex.lock pool.lock;
  while Heap.is_empty pool.q && not pool.closed do
    pool.idle <- pool.idle + 1;
    Condition.wait pool.nonempty pool.lock;
    pool.idle <- pool.idle - 1
  done;
  if Heap.is_empty pool.q then
    (* closed and drained: exit *)
    Mutex.unlock pool.lock
  else begin
    let job = Heap.pop pool.q in
    Mutex.unlock pool.lock;
    (try job.run () with _ -> ());
    worker_loop pool
  end

let create ~jobs =
  if jobs < 1 then invalid_arg "Exec.Pool.create: jobs must be >= 1";
  let pool =
    {
      lock = Mutex.create ();
      nonempty = Condition.create ();
      q = Heap.create ();
      next_seq = 0;
      idle = 0;
      closed = false;
      workers = [];
      size = jobs;
    }
  in
  pool.workers <-
    List.init jobs (fun _ -> Domain.spawn (fun () -> worker_loop pool));
  pool

let submit ?(priority = Int64.max_int) ?(on_abort = fun () -> ()) pool run =
  Mutex.lock pool.lock;
  if pool.closed then begin
    Mutex.unlock pool.lock;
    invalid_arg "Exec.Pool.submit: pool is shut down"
  end;
  let seq = pool.next_seq in
  pool.next_seq <- seq + 1;
  Heap.push pool.q { run; on_abort; prio = priority; seq };
  (* one job, one waiter — and none at all if every worker is busy
     (they re-check the heap between jobs) *)
  if pool.idle > 0 then Condition.signal pool.nonempty;
  Mutex.unlock pool.lock

let shutdown ?(mode = `Drain) pool =
  Mutex.lock pool.lock;
  let was_closed = pool.closed in
  pool.closed <- true;
  (* In abort mode the heap is emptied under the lock, so no worker can
     pick a discarded job up; in-flight jobs (already popped) complete
     normally either way.  Discards run in priority order — the same
     order they would have executed in. *)
  let discarded =
    match mode with `Drain -> [] | `Abort -> Heap.drain pool.q
  in
  Condition.broadcast pool.nonempty;
  Mutex.unlock pool.lock;
  List.iter (fun j -> try j.on_abort () with _ -> ()) discarded;
  if not was_closed then begin
    List.iter Domain.join pool.workers;
    pool.workers <- []
  end

let with_pool ~jobs f =
  let pool = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)
