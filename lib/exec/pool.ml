(* A fixed-size pool of worker domains draining one FIFO work queue.

   The queue is guarded by a single mutex; workers sleep on a condition
   variable that is signaled once per submitted job and broadcast on
   shutdown.  Jobs are opaque thunks: the pool runs them and swallows
   anything they raise (the [Future] layer converts a job's outcome —
   value or exception — into a state the submitter awaits, so a raising
   job can never take a worker down with it, let alone wedge the pool).

   Every queued job also carries an abort callback.  [shutdown
   ~mode:`Abort] discards the still-queued jobs instead of running them,
   and invokes each discarded job's callback exactly once — that is how
   the [Future] layer resolves abandoned futures with [Aborted], so an
   [await] on a discarded job raises instead of hanging forever. *)

exception Aborted

type job = unit -> unit

type queued = { run : job; on_abort : job }

type t = {
  lock : Mutex.t;
  nonempty : Condition.t;
  q : queued Queue.t;
  mutable closed : bool;
  mutable workers : unit Domain.t list;
  size : int;
}

let size pool = pool.size

let queue_depth pool =
  Mutex.lock pool.lock;
  let n = Queue.length pool.q in
  Mutex.unlock pool.lock;
  n

let rec worker_loop pool =
  Mutex.lock pool.lock;
  while Queue.is_empty pool.q && not pool.closed do
    Condition.wait pool.nonempty pool.lock
  done;
  if Queue.is_empty pool.q then
    (* closed and drained: exit *)
    Mutex.unlock pool.lock
  else begin
    let job = Queue.pop pool.q in
    Mutex.unlock pool.lock;
    (try job.run () with _ -> ());
    worker_loop pool
  end

let create ~jobs =
  if jobs < 1 then invalid_arg "Exec.Pool.create: jobs must be >= 1";
  let pool =
    {
      lock = Mutex.create ();
      nonempty = Condition.create ();
      q = Queue.create ();
      closed = false;
      workers = [];
      size = jobs;
    }
  in
  pool.workers <-
    List.init jobs (fun _ -> Domain.spawn (fun () -> worker_loop pool));
  pool

let submit ?(on_abort = fun () -> ()) pool run =
  Mutex.lock pool.lock;
  if pool.closed then begin
    Mutex.unlock pool.lock;
    invalid_arg "Exec.Pool.submit: pool is shut down"
  end;
  Queue.push { run; on_abort } pool.q;
  Condition.signal pool.nonempty;
  Mutex.unlock pool.lock

let shutdown ?(mode = `Drain) pool =
  Mutex.lock pool.lock;
  let was_closed = pool.closed in
  pool.closed <- true;
  (* In abort mode the queue is emptied under the lock, so no worker can
     pick a discarded job up; in-flight jobs (already popped) complete
     normally either way. *)
  let discarded =
    match mode with
    | `Drain -> []
    | `Abort ->
      let js = List.of_seq (Queue.to_seq pool.q) in
      Queue.clear pool.q;
      js
  in
  Condition.broadcast pool.nonempty;
  Mutex.unlock pool.lock;
  List.iter (fun j -> try j.on_abort () with _ -> ()) discarded;
  if not was_closed then begin
    List.iter Domain.join pool.workers;
    pool.workers <- []
  end

let with_pool ~jobs f =
  let pool = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)
