(** A fixed-size pool of worker domains over one priority work queue.

    Workers are real [Domain]s (OCaml 5 parallelism), so jobs run truly
    concurrently — which also means a job must not touch domain-unsafe
    shared state.  In this codebase that chiefly means {e BDD managers
    are domain-local}: a [Core_dd.man] has no internal locking, so each
    job must build (and keep to) its own manager.  The [Obs] layer is
    safe to use from jobs (see its thread-safety contracts).

    Scheduling: jobs carry a 64-bit priority — {e lower runs first} —
    with submission order breaking ties, so jobs submitted without a
    priority (or with equal priorities) drain FIFO.  The serve daemon
    passes absolute deadlines as priorities, which makes the pool an
    earliest-deadline-first scheduler.  A submit wakes exactly one idle
    worker (never a broadcast), and no worker at all when every domain
    is already busy — busy workers re-check the queue between jobs.

    Jobs are opaque thunks; whatever they raise is swallowed by the
    worker, so a failing job can never wedge or shrink the pool.  Use
    {!Future.spawn} to get results and exceptions back. *)

type t

type job = unit -> unit

exception Aborted
(** The fate of a job discarded by {!shutdown} [~mode:`Abort]: the
    [Future] layer resolves the job's future with this exception, so an
    [await] raises instead of blocking forever. *)

val create : jobs:int -> t
(** Spawn [jobs] worker domains ([jobs >= 1]). *)

val size : t -> int
(** The number of worker domains. *)

val queue_depth : t -> int
(** Jobs submitted but not yet picked up by a worker — the scheduler
    backlog, distinct from "in flight" (which also counts running
    jobs).  Takes the queue mutex briefly; meant for gauges and
    backpressure decisions, not tight loops. *)

val idle_workers : t -> int
(** Workers currently parked on the condition variable waiting for
    work.  Same caveat as {!queue_depth}. *)

val submit : ?priority:int64 -> ?on_abort:job -> t -> job -> unit
(** Enqueue a job.  [priority] (default [Int64.max_int]) orders the
    queue — lower values run first, ties drain in submission order, so
    omitting it everywhere degenerates to plain FIFO.  [on_abort]
    (default a no-op) is invoked — instead of the job, exactly once, in
    the domain calling {!shutdown} — if the job is still queued when
    the pool is shut down in [`Abort] mode; use it to resolve whatever
    is awaiting the job.  Anything it raises is swallowed.
    @raise Invalid_argument after {!shutdown}. *)

val shutdown : ?mode:[ `Drain | `Abort ] -> t -> unit
(** Stop accepting jobs and join the workers.  Idempotent (a second
    call, in either mode, finds nothing queued).

    [`Drain] (the default) lets the workers finish everything already
    queued first.  [`Abort] discards the still-queued jobs without
    running them and invokes each one's [on_abort] callback, so their
    futures resolve with {!Aborted} rather than hang; jobs already
    running on a worker complete normally in both modes. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f] over a fresh pool and shuts it down on
    exit (also on exceptions — queued jobs still drain first). *)
