(** A fixed-size pool of worker domains over one FIFO work queue.

    Workers are real [Domain]s (OCaml 5 parallelism), so jobs run truly
    concurrently — which also means a job must not touch domain-unsafe
    shared state.  In this codebase that chiefly means {e BDD managers
    are domain-local}: a [Core_dd.man] has no internal locking, so each
    job must build (and keep to) its own manager.  The [Obs] layer is
    safe to use from jobs (see its thread-safety contracts).

    Jobs are opaque thunks; whatever they raise is swallowed by the
    worker, so a failing job can never wedge or shrink the pool.  Use
    {!Future.spawn} to get results and exceptions back. *)

type t

type job = unit -> unit

val create : jobs:int -> t
(** Spawn [jobs] worker domains ([jobs >= 1]). *)

val size : t -> int
(** The number of worker domains. *)

val submit : t -> job -> unit
(** Enqueue a job.  @raise Invalid_argument after {!shutdown}. *)

val shutdown : t -> unit
(** Stop accepting jobs, let the workers drain everything already
    queued, and join them.  Idempotent. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f] over a fresh pool and shuts it down on
    exit (also on exceptions — queued jobs still drain first). *)
