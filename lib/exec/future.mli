(** Single-assignment results bridging a pool worker back to the
    submitting domain. *)

type 'a t

val create : unit -> 'a t
(** A fresh pending future. *)

val fill : 'a t -> 'a -> unit
(** Resolve with a value, waking all waiters.
    @raise Invalid_argument if already resolved. *)

val fail : 'a t -> exn -> Printexc.raw_backtrace -> unit
(** Resolve with an exception; {!await} re-raises it (original
    backtrace preserved) in the awaiting domain. *)

val await : 'a t -> 'a
(** Block until resolved; return the value or re-raise the job's
    exception. *)

val peek : 'a t -> 'a option
(** [Some v] iff already resolved with a value (never blocks). *)

val is_resolved : 'a t -> bool

val spawn : Pool.t -> (unit -> 'a) -> 'a t
(** [spawn pool f] submits [f] and returns the future of its outcome.
    An exception raised by [f] is captured, not lost: it surfaces at
    {!await}.  If the pool is shut down in [`Abort] mode while the job
    is still queued, the future resolves with {!Pool.Aborted}. *)
