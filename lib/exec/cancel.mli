(** Cooperative cancellation tokens.

    A token is a shared flag, safe to read and set from any domain.
    Cancellation is {e cooperative}: setting the flag does nothing by
    itself — jobs opt in by polling {!cancelled} (typically through a
    [Bdd.Budget] cancellation callback, which the kernels poll at
    recursion boundaries) and winding down when it flips.  One token
    fanned out to every job of a batch lets a single failing job cancel
    all its siblings ([bddmin bench --fail-fast]). *)

type t

val create : unit -> t
(** A fresh, un-cancelled token. *)

val cancel : t -> unit
(** Set the flag.  Idempotent; never blocks. *)

val cancelled : t -> bool
(** Poll the flag. *)
