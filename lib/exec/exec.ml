(** Multicore execution: a fixed-size domain pool ({!Pool}), futures
    ({!Future}) and deterministic bounded fan-out ({!map}).

    The design target is the experiment harness's embarrassingly
    parallel shape — a matrix of independent jobs, each owning a private
    BDD manager — so the primitives deliberately stop short of work
    stealing or nested parallelism: one queue, [jobs] domains, results
    collected in submission order. *)

module Pool = Pool
module Future = Future
module Cancel = Cancel

let recommended_jobs () = Domain.recommended_domain_count ()

(* [map ~jobs f xs] runs [f] over every element on a fresh pool of
   [jobs] domains and returns the results in list order — determinism is
   the contract: modulo wall-clock readings, the result is element-wise
   identical to [List.map f xs], whatever the interleaving.

   Tracing: workers start with the domain-local null sink, so with
   [jobs > 1] each job is recorded into a private memory buffer and the
   buffers are forwarded to the caller's sink in submission order once
   each job is awaited.  Events keep their original timestamps and
   domain ids, so a chrome trace shows one lane per worker domain.

   If some [f x] raises, the first failing element (in list order)
   re-raises in the caller after the pool drains; later elements still
   run (their results are discarded), and the pool shuts down cleanly
   either way. *)
let map_futures pool f xs =
  (* tracing state is read in the caller's domain: workers start on the
     null sink, so they could not tell whether the caller traces *)
  let tracing = Obs.Trace.enabled () in
  let run x () =
    if tracing then begin
      let buf = Obs.Trace.memory () in
      let r = Obs.Trace.with_sink buf (fun () -> f x) in
      (Obs.Trace.events buf, r)
    end
    else ([], f x)
  in
  let futures = List.map (fun x -> Future.spawn pool (run x)) xs in
  List.map
    (fun fut ->
       let events, r = Future.await fut in
       List.iter Obs.Trace.forward events;
       r)
    futures

(* Same contract as [map], but over a caller-owned pool that stays up
   afterwards — for pipelines that fan out repeatedly (a reachability
   loop dispatching every image, a minimizer dispatching every output)
   and cannot afford a domain spawn per fan-out.  Beware that awaiting
   from inside a pool job would deadlock a single-worker pool; only call
   this from outside the pool's own workers. *)
let map_on pool f xs = map_futures pool f xs

let map ?(jobs = 1) f xs =
  if jobs <= 1 then List.map f xs
  else
    Pool.with_pool ~jobs:(min jobs (max 1 (List.length xs))) @@ fun pool ->
    map_futures pool f xs

let iter ?jobs f xs = ignore (map ?jobs (fun x -> f x; ()) xs)
