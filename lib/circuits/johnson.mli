(** Johnson (twisted-ring) counter: only [2·width] of the [2^width]
    states are reachable — a sparse reachable set whose complement is a
    rich don't-care set. *)

val make : width:int -> Fsm.Netlist.t
(** Inputs: [en].  Outputs: the ring bits [q0 … q{width-1}]. *)
