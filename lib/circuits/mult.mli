(** Serial shift-and-add multiplier — the analogue of the paper's
    [mult16b] benchmark (width-reduced for traversal runtime): shallow
    traversal depth, wide datapath state. *)

val make : width:int -> Fsm.Netlist.t
(** Multiplies a [width]-bit multiplicand (loaded when [start] is high)
    by a [width]-bit multiplier, one partial product per cycle.
    Inputs: [start], [a0 … a{width-1}] (multiplicand),
    [m0 … m{width-1}] (multiplier).  Outputs: [p0 … p{2·width-1}]
    (accumulated product), [busy]. *)
