(** Seeded random sparse-logic FSMs — stand-ins for the paper's
    ISCAS'89/MCNC controller benchmarks ([s344], [s386], [scf], [styr],
    [tbk], …), which are not redistributable.  Each latch's next-state
    function is a random expression tree over latches and inputs, so the
    reachable sets are irregular and the minimization instances
    unstructured, like synthesized control logic. *)

type params = {
  latches : int;
  inputs : int;
  depth : int;  (** expression-tree depth of each next-state function *)
  seed : int;
}

val make : ?name:string -> params -> Fsm.Netlist.t
(** Deterministic in [params] (self-seeded PRNG).  Outputs: one random
    observation function per latch ([o0 …]). *)
