(** Fault injection: single-gate mutations of a netlist.

    Used to validate the verification substrate — a mutated machine
    should (usually) be caught by both the symbolic equivalence checker
    and the simulation/explicit oracles, and the three must always agree.
    Mutations model classic design faults: wrong gate type, dropped
    inverter, stuck input, flipped reset value. *)

type kind =
  | Gate_swap  (** And↔Or, Xor→Or *)
  | Drop_inverter  (** a Not gate becomes a buffer *)
  | Stuck_input  (** one operand of a gate replaced by a constant *)
  | Flip_init  (** a latch's initial value inverted *)

val kind_name : kind -> string

type mutation = {
  kind : kind;
  gate_index : int;  (** which gate was altered *)
  description : string;
}

val mutate : seed:int -> Fsm.Netlist.t -> (Fsm.Netlist.t * mutation) option
(** Apply one pseudo-random applicable mutation; [None] when the netlist
    has no mutable gate (e.g. latch-free constant circuits).  The result
    has the same interface (inputs, outputs, latch names).  Mutations are
    deterministic in [seed]. *)

val all_single_mutations : Fsm.Netlist.t -> (Fsm.Netlist.t * mutation) list
(** Every applicable single mutation, for exhaustive fault campaigns on
    small circuits. *)
