type bench = {
  name : string;
  paper_analog : string;
  description : string;
  build : unit -> Fsm.Netlist.t;
}

let rnd name analog description latches inputs depth seed =
  {
    name;
    paper_analog = analog;
    description;
    build =
      (fun () ->
         Random_fsm.make ~name
           { Random_fsm.latches; inputs; depth; seed });
  }

let all =
  [
    {
      name = "counter8";
      paper_analog = "s820 (deep traversal)";
      description = "8-bit enabled binary counter";
      build = (fun () -> Counter.make ~width:8 ());
    };
    {
      name = "bcd2";
      paper_analog = "s386 (small controller)";
      description = "two cascaded mod-10 digits (one 4-bit shown)";
      build = (fun () -> Counter.modulo ~width:4 ~modulus:10);
    };
    {
      name = "gray6";
      paper_analog = "s510 (regular sequencing)";
      description = "6-bit Gray-code counter";
      build = (fun () -> Gray.make ~width:6);
    };
    {
      name = "johnson8";
      paper_analog = "s641 (sparse reachable set)";
      description = "8-bit Johnson counter (16 of 256 states reachable)";
      build = (fun () -> Johnson.make ~width:8);
    };
    rnd "rnd953" "s953" "random sparse FSM, 12 latches, deep logic" 12 4 5 953;
    {
      name = "lfsr10";
      paper_analog = "s1238 (larger pseudo-random)";
      description = "10-bit maximal-length LFSR";
      build = (fun () -> Lfsr.make ~width:10 ());
    };
    {
      name = "tlc";
      paper_analog = "tlc";
      description = "Mead-Conway traffic-light controller, 3-bit timer";
      build = (fun () -> Tlc.make ());
    };
    {
      name = "minmax4";
      paper_analog = "minmax5";
      description = "4-bit running min/max tracker";
      build = (fun () -> Minmax.make ~width:4);
    };
    {
      name = "mult4b";
      paper_analog = "mult16b";
      description = "4-bit serial shift-and-add multiplier";
      build = (fun () -> Mult.make ~width:4);
    };
    {
      name = "cbp.6.2";
      paper_analog = "cbp.32.4";
      description = "6-bit carry-propagate adder, 2 pipeline stages";
      build = (fun () -> Cbp.make ~width:6 ~stages:2);
    };
    {
      name = "arbiter4";
      paper_analog = "scf (control logic)";
      description = "4-client round-robin arbiter";
      build = (fun () -> Arbiter.make ~clients:4);
    };
    rnd "rnd344" "s344" "random sparse FSM, 9 latches" 9 4 3 344;
    rnd "rnd1488" "s1488" "random sparse FSM, 8 latches" 8 5 3 1488;
    rnd "rndstyr" "styr" "random sparse FSM, 7 latches" 7 5 4 977;
    rnd "rndtbk" "tbk" "random sparse FSM, 12 latches" 12 3 4 1066;
  ]

let quick =
  List.filter
    (fun b -> List.mem b.name [ "bcd2"; "gray6"; "johnson8"; "tlc"; "arbiter4" ])
    all

let find name = List.find_opt (fun b -> b.name = name) all
let names benches = List.map (fun b -> b.name) benches
