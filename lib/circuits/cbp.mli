(** Pipelined carry-propagate adder — the analogue of the paper's
    [cbp.32.4] benchmark: a [width]-bit ripple adder cut into [stages]
    register-separated pipeline stages.  The traversal depth equals the
    pipeline depth while the state is wide. *)

val make : width:int -> stages:int -> Fsm.Netlist.t
(** Inputs: [a0 …], [b0 …].  Outputs: [s0 … s{width-1}], [cout].
    Requires [stages ≥ 1] and [stages ≤ width]. *)
