(** Fibonacci linear feedback shift registers: pseudo-random dense
    reachable sets (a maximal-period LFSR reaches all non-zero states). *)

val make : ?taps:int list -> ?with_input:bool -> width:int -> unit -> Fsm.Netlist.t
(** [make ~width ()] builds an LFSR seeded at 1.  [taps] are the feedback
    bit positions (default: a maximal-length polynomial for widths up to
    16, else [[0; width-1]]).  With [with_input], an external input [d] is
    XORed into the feedback (a scrambler).  Outputs: [q0 … q{width-1}]. *)

val default_taps : int -> int list
