(** Binary up-counters: deep, regular reachable sets (every state
    reachable, diameter [2^width]), producing long breadth-first traversals
    with highly structured frontiers. *)

val make : ?with_enable:bool -> ?with_reset:bool -> width:int -> unit -> Fsm.Netlist.t
(** A [width]-bit synchronous up-counter.  Inputs: [en] (when
    [with_enable], default [true]) and [rst] (when [with_reset], default
    [false]).  Outputs: [carry] (all ones) and the counter bits
    [q0 … q{width-1}]. *)

val modulo : width:int -> modulus:int -> Fsm.Netlist.t
(** A counter that wraps at [modulus] (e.g. a BCD digit for
    [width = 4, modulus = 10]); part of the state space is unreachable,
    giving don't-care-rich instances. *)
