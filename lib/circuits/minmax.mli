(** Min/max tracker — the analogue of the paper's [minmax5] benchmark:
    registers holding the running minimum and maximum of an input
    stream. *)

val make : width:int -> Fsm.Netlist.t
(** Inputs: data word [d0 … d{width-1}], [clear].  Outputs:
    [min0 …], [max0 …], and [in_range] ([min ≤ d ≤ max]).  The min
    register initializes to all ones, the max register to zero. *)
