module N = Fsm.Netlist

let make ~clients =
  if clients < 2 then invalid_arg "Arbiter.make: need at least 2 clients";
  let b = N.create (Printf.sprintf "arbiter%d" clients) in
  let req =
    Array.init clients (fun i -> N.input b (Printf.sprintf "req%d" i))
  in
  (* One-hot token marking the highest-priority client. *)
  let token =
    Array.init clients (fun i ->
        N.latch b ~name:(Printf.sprintf "tok%d" i) ~init:(i = 0) ())
  in
  let tok = Array.map fst token in
  (* Grant: the first requesting client at or after the token position. *)
  let grant = Array.make clients (N.const_signal b false) in
  for i = 0 to clients - 1 do
    (* grant_i = OR over token positions t of: tok_t and req_i and no
       req_j for j between t and i (cyclically). *)
    let terms = ref [] in
    for t = 0 to clients - 1 do
      let blockers = ref [] in
      let j = ref t in
      while !j <> i do
        blockers := req.(!j) :: !blockers;
        j := (!j + 1) mod clients
      done;
      let none_before =
        N.not_gate b (N.or_list b !blockers)
      in
      terms := N.and_list b [ tok.(t); req.(i); none_before ] :: !terms
    done;
    grant.(i) <- N.or_list b !terms
  done;
  let any = N.or_list b (Array.to_list grant) in
  (* Token moves just past the granted client; otherwise it holds. *)
  Array.iteri
    (fun i (_, set) ->
       let gets_token = grant.((i + clients - 1) mod clients) in
       set (N.mux b ~sel:any ~t1:gets_token ~e0:tok.(i)))
    token;
  Array.iteri (fun i g -> N.output b (Printf.sprintf "gnt%d" i) g) grant;
  N.output b "any_grant" any;
  N.finalize b
