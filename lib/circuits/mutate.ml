module N = Fsm.Netlist

type kind = Gate_swap | Drop_inverter | Stuck_input | Flip_init

let kind_name = function
  | Gate_swap -> "gate-swap"
  | Drop_inverter -> "drop-inverter"
  | Stuck_input -> "stuck-input"
  | Flip_init -> "flip-init"

type mutation = { kind : kind; gate_index : int; description : string }

type action =
  | Rewrite of (N.builder -> N.gate -> (N.signal -> N.signal) -> N.signal)
  | Flip_latch_init

(* Rebuild [nl] applying [action] to the gate at [target]. *)
let copy_with nl ~target ~action =
  let b = N.create (N.name nl ^ ".mut") in
  let gates = N.gates nl in
  let map = Array.make (Array.length gates) (N.const_signal b false) in
  let latch_setters = ref [] in
  Array.iteri
    (fun i g ->
       let s x = map.(N.signal_index x) in
       let mutated = i = target in
       map.(i) <-
         (match g with
          | N.Input n -> N.input b n
          | N.Const v -> N.const_signal b v
          | (N.Not _ | N.And _ | N.Or _ | N.Xor _) when mutated -> begin
              match action with
              | Rewrite f -> f b g s
              | Flip_latch_init -> assert false
            end
          | N.Not a -> N.not_gate b (s a)
          | N.And (x, y) -> N.and_gate b (s x) (s y)
          | N.Or (x, y) -> N.or_gate b (s x) (s y)
          | N.Xor (x, y) -> N.xor_gate b (s x) (s y)
          | N.Latch { name; init; next } ->
            let init =
              if mutated then begin
                assert (action = Flip_latch_init);
                not init
              end
              else init
            in
            let q, set = N.latch b ~name ~init () in
            latch_setters := (set, next) :: !latch_setters;
            q))
    gates;
  List.iter (fun (set, next) -> set map.(N.signal_index next)) !latch_setters;
  List.iter (fun (n, sg) -> N.output b n map.(N.signal_index sg)) (N.outputs nl);
  N.finalize b

(* Applicable mutations for the gate at index [i]. *)
let candidates nl i =
  let describe kind what = { kind; gate_index = i; description = what } in
  match (N.gates nl).(i) with
  | N.Input _ | N.Const _ -> []
  | N.Not _ ->
    [
      ( describe Drop_inverter (Printf.sprintf "gate %d: NOT -> buffer" i),
        Rewrite
          (fun _b g s -> match g with N.Not a -> s a | _ -> assert false) );
    ]
  | N.And _ ->
    [
      ( describe Gate_swap (Printf.sprintf "gate %d: AND -> OR" i),
        Rewrite
          (fun b g s ->
             match g with
             | N.And (x, y) -> N.or_gate b (s x) (s y)
             | _ -> assert false) );
      ( describe Stuck_input (Printf.sprintf "gate %d: AND input stuck at 1" i),
        Rewrite
          (fun b g s ->
             match g with
             | N.And (_, y) -> N.and_gate b (N.const_signal b true) (s y)
             | _ -> assert false) );
    ]
  | N.Or _ ->
    [
      ( describe Gate_swap (Printf.sprintf "gate %d: OR -> AND" i),
        Rewrite
          (fun b g s ->
             match g with
             | N.Or (x, y) -> N.and_gate b (s x) (s y)
             | _ -> assert false) );
      ( describe Stuck_input (Printf.sprintf "gate %d: OR input stuck at 0" i),
        Rewrite
          (fun b g s ->
             match g with
             | N.Or (_, y) -> N.or_gate b (N.const_signal b false) (s y)
             | _ -> assert false) );
    ]
  | N.Xor _ ->
    [
      ( describe Gate_swap (Printf.sprintf "gate %d: XOR -> OR" i),
        Rewrite
          (fun b g s ->
             match g with
             | N.Xor (x, y) -> N.or_gate b (s x) (s y)
             | _ -> assert false) );
    ]
  | N.Latch { name; init; _ } ->
    [
      ( describe Flip_init
          (Printf.sprintf "latch %s: initial value %b -> %b" name init
             (not init)),
        Flip_latch_init );
    ]

let all_candidates nl =
  let gates = N.gates nl in
  List.concat (List.init (Array.length gates) (fun i -> candidates nl i))

let mutate ~seed nl =
  match all_candidates nl with
  | [] -> None
  | all ->
    let rng = Random.State.make [| seed; List.length all |] in
    let m, action = List.nth all (Random.State.int rng (List.length all)) in
    Some (copy_with nl ~target:m.gate_index ~action, m)

let all_single_mutations nl =
  List.map
    (fun (m, action) -> (copy_with nl ~target:m.gate_index ~action, m))
    (all_candidates nl)
