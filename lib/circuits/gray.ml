module N = Fsm.Netlist

let make ~width =
  if width <= 0 then invalid_arg "Gray.make: width must be positive";
  let b = N.create (Printf.sprintf "gray%d" width) in
  let en = N.input b "en" in
  let q, set_q = N.word_latch b ~name:"q" ~width ~init:0 () in
  let incremented, _ = N.word_inc b q in
  set_q (N.word_mux b ~sel:en ~t1:incremented ~e0:q);
  (* Gray encoding: g_i = q_i xor q_{i+1}. *)
  Array.iteri
    (fun i qi ->
       let g =
         if i + 1 < width then N.xor_gate b qi q.(i + 1) else qi
       in
       N.output b (Printf.sprintf "g%d" i) g)
    q;
  N.finalize b
