(** Gray-code counter: binary core with Gray-encoded outputs; one bit
    flips per step, giving frontiers that are single states with
    non-cube reached-set complements. *)

val make : width:int -> Fsm.Netlist.t
(** Inputs: [en].  Outputs: [g0 … g{width-1}] (Gray code of the count). *)
