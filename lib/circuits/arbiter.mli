(** Round-robin bus arbiter: a rotating priority token and per-client
    grant logic — a control-dominated benchmark in the spirit of the
    paper's [s*] controllers. *)

val make : clients:int -> Fsm.Netlist.t
(** Inputs: [req0 … req{clients-1}].  Outputs: [gnt0 …], [any_grant].
    The token advances past the granted client each cycle. *)
