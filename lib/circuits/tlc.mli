(** Traffic-light controller — the analogue of the paper's [tlc]
    benchmark (the classic Mead–Conway highway/farm-road controller):
    a small control FSM plus a timer, sensor-driven. *)

val make : ?timer_bits:int -> unit -> Fsm.Netlist.t
(** Inputs: [car] (farm-road car sensor).  Outputs: [hl_green], [hl_yellow],
    [hl_red], [fl_green], [fl_yellow], [fl_red].  [timer_bits] (default 3)
    sets the long-timeout counter width. *)
