module N = Fsm.Netlist

let make ~width =
  if width <= 0 then invalid_arg "Minmax.make: width must be positive";
  let b = N.create (Printf.sprintf "minmax%d" width) in
  let d = Array.init width (fun i -> N.input b (Printf.sprintf "d%d" i)) in
  let clear = N.input b "clear" in
  let all_ones = (1 lsl width) - 1 in
  let mn, set_mn = N.word_latch b ~name:"mn" ~width ~init:all_ones () in
  let mx, set_mx = N.word_latch b ~name:"mx" ~width ~init:0 () in
  let d_below = N.word_lt b d mn in
  let d_above = N.word_lt b mx d in
  let mn_upd = N.word_mux b ~sel:d_below ~t1:d ~e0:mn in
  let mx_upd = N.word_mux b ~sel:d_above ~t1:d ~e0:mx in
  set_mn (N.word_mux b ~sel:clear ~t1:(N.word_const b ~width all_ones) ~e0:mn_upd);
  set_mx (N.word_mux b ~sel:clear ~t1:(N.word_const b ~width 0) ~e0:mx_upd);
  Array.iteri (fun i s -> N.output b (Printf.sprintf "min%d" i) s) mn;
  Array.iteri (fun i s -> N.output b (Printf.sprintf "max%d" i) s) mx;
  let in_range =
    N.and_gate b (N.not_gate b d_below) (N.not_gate b d_above)
  in
  N.output b "in_range" in_range;
  N.finalize b
