module N = Fsm.Netlist

(* Stage k adds bit slice [k·width/stages, (k+1)·width/stages); operands
   for later stages and results of earlier stages travel through pipeline
   registers so that one addition completes per cycle after the fill. *)
let make ~width ~stages =
  if width <= 0 || stages <= 0 || stages > width then
    invalid_arg "Cbp.make: need 0 < stages <= width";
  let b = N.create (Printf.sprintf "cbp.%d.%d" width stages) in
  let a = Array.init width (fun i -> N.input b (Printf.sprintf "a%d" i)) in
  let bb = Array.init width (fun i -> N.input b (Printf.sprintf "b%d" i)) in
  let bound k = k * width / stages in
  (* Current pipeline contents: sum bits computed so far, remaining
     operand bits, and the carry. *)
  let sum_so_far = ref [||] in
  let a_rest = ref a in
  let b_rest = ref bb in
  let carry = ref (N.const_signal b false) in
  let rest_offset = ref 0 in
  for k = 0 to stages - 1 do
    let lo = bound k and hi = bound (k + 1) in
    let slice = hi - lo in
    (* Add the slice at the head of the remaining operands. *)
    let a_slice = Array.sub !a_rest 0 slice in
    let b_slice = Array.sub !b_rest 0 slice in
    let sum, cout = N.word_add b ~carry_in:!carry a_slice b_slice in
    let sums = Array.append !sum_so_far sum in
    let a_tail = Array.sub !a_rest slice (Array.length !a_rest - slice) in
    let b_tail = Array.sub !b_rest slice (Array.length !b_rest - slice) in
    rest_offset := hi;
    if k = stages - 1 then begin
      Array.iteri (fun i s -> N.output b (Printf.sprintf "s%d" i) s) sums;
      N.output b "cout" cout
    end
    else begin
      (* Register everything crossing into the next stage. *)
      let reg name word =
        let r, set = N.word_latch b ~name:(Printf.sprintf "%s%d" name k)
            ~width:(Array.length word) ~init:0 () in
        set word;
        r
      in
      sum_so_far := reg "ps" sums;
      a_rest := reg "pa" a_tail;
      b_rest := reg "pb" b_tail;
      let c, set_c = N.latch b ~name:(Printf.sprintf "pc%d" k) ~init:false () in
      set_c cout;
      carry := c
    end
  done;
  N.finalize b
