module N = Fsm.Netlist

(* States: 00 highway green, 01 highway yellow, 10 farm green,
   11 farm yellow.  The timer restarts on every state change; yellow
   phases last [short] ticks (timer low bits), green phases [2^timer_bits]
   ticks or until the sensor demands a switch. *)
let make ?(timer_bits = 3) () =
  if timer_bits < 1 then invalid_arg "Tlc.make: timer_bits must be >= 1";
  let b = N.create "tlc" in
  let car = N.input b "car" in
  let s1, set_s1 = N.latch b ~name:"s1" ~init:false () in
  let s0, set_s0 = N.latch b ~name:"s0" ~init:false () in
  let timer, set_timer = N.word_latch b ~name:"t" ~width:timer_bits ~init:0 () in
  let t_inc, _ = N.word_inc b timer in
  let timer_max =
    N.word_eq b timer (N.word_const b ~width:timer_bits ((1 lsl timer_bits) - 1))
  in
  let short_max =
    (* short timeout: low two bits (or one for 1-bit timers) saturated *)
    let low_width = min 2 timer_bits in
    N.word_eq b
      (Array.sub timer 0 low_width)
      (N.word_const b ~width:low_width ((1 lsl low_width) - 1))
  in
  let in_hg = N.and_gate b (N.not_gate b s1) (N.not_gate b s0) in
  let in_hy = N.and_gate b (N.not_gate b s1) s0 in
  let in_fg = N.and_gate b s1 (N.not_gate b s0) in
  let in_fy = N.and_gate b s1 s0 in
  (* Transitions. *)
  let hg_done = N.and_gate b in_hg (N.and_gate b car timer_max) in
  let hy_done = N.and_gate b in_hy short_max in
  let fg_done =
    N.and_gate b in_fg (N.or_gate b timer_max (N.not_gate b car))
  in
  let fy_done = N.and_gate b in_fy short_max in
  let advance = N.or_list b [ hg_done; hy_done; fg_done; fy_done ] in
  (* Next state encodes the 2-bit cycle HG -> HY -> FG -> FY -> HG. *)
  let next_s1 = N.xor_gate b s1 (N.and_gate b advance s0) in
  let next_s0 = N.xor_gate b s0 advance in
  set_s1 next_s1;
  set_s0 next_s0;
  let zero = N.word_const b ~width:timer_bits 0 in
  set_timer (N.word_mux b ~sel:advance ~t1:zero ~e0:t_inc);
  N.output b "hl_green" in_hg;
  N.output b "hl_yellow" in_hy;
  N.output b "hl_red" (N.or_gate b in_fg in_fy);
  N.output b "fl_green" in_fg;
  N.output b "fl_yellow" in_fy;
  N.output b "fl_red" (N.or_gate b in_hg in_hy);
  N.finalize b
