module N = Fsm.Netlist

let make ?(with_enable = true) ?(with_reset = false) ~width () =
  if width <= 0 then invalid_arg "Counter.make: width must be positive";
  let b = N.create (Printf.sprintf "counter%d" width) in
  let en = if with_enable then N.input b "en" else N.const_signal b true in
  let rst = if with_reset then N.input b "rst" else N.const_signal b false in
  let q, set_q = N.word_latch b ~name:"q" ~width ~init:0 () in
  let incremented, carry = N.word_inc b q in
  let held = N.word_mux b ~sel:en ~t1:incremented ~e0:q in
  let zero = N.word_const b ~width 0 in
  set_q (N.word_mux b ~sel:rst ~t1:zero ~e0:held);
  N.output b "carry" (N.and_gate b en carry);
  Array.iteri (fun i qi -> N.output b (Printf.sprintf "q%d" i) qi) q;
  N.finalize b

let modulo ~width ~modulus =
  if modulus <= 1 || modulus > 1 lsl width then
    invalid_arg "Counter.modulo: bad modulus";
  let b = N.create (Printf.sprintf "mod%d_counter%d" modulus width) in
  let en = N.input b "en" in
  let q, set_q = N.word_latch b ~name:"q" ~width ~init:0 () in
  let incremented, _ = N.word_inc b q in
  let at_top = N.word_eq b q (N.word_const b ~width (modulus - 1)) in
  let zero = N.word_const b ~width 0 in
  let next = N.word_mux b ~sel:at_top ~t1:zero ~e0:incremented in
  set_q (N.word_mux b ~sel:en ~t1:next ~e0:q);
  N.output b "wrap" (N.and_gate b en at_top);
  Array.iteri (fun i qi -> N.output b (Printf.sprintf "q%d" i) qi) q;
  N.finalize b
