module N = Fsm.Netlist

(* Maximal-length polynomial taps (bit positions of the shift register
   whose XOR feeds the input end), from standard tables. *)
let default_taps = function
  | 2 -> [ 0; 1 ]
  | 3 -> [ 1; 2 ]
  | 4 -> [ 2; 3 ]
  | 5 -> [ 2; 4 ]
  | 6 -> [ 4; 5 ]
  | 7 -> [ 5; 6 ]
  | 8 -> [ 3; 4; 5; 7 ]
  | 9 -> [ 4; 8 ]
  | 10 -> [ 6; 9 ]
  | 11 -> [ 8; 10 ]
  | 12 -> [ 0; 3; 5; 11 ]
  | 13 -> [ 0; 2; 3; 12 ]
  | 14 -> [ 0; 2; 4; 13 ]
  | 15 -> [ 13; 14 ]
  | 16 -> [ 3; 12; 14; 15 ]
  | w -> [ 0; w - 1 ]

let make ?taps ?(with_input = false) ~width () =
  if width < 2 then invalid_arg "Lfsr.make: width must be at least 2";
  let taps = match taps with Some t -> t | None -> default_taps width in
  if List.exists (fun t -> t < 0 || t >= width) taps then
    invalid_arg "Lfsr.make: tap out of range";
  let b = N.create (Printf.sprintf "lfsr%d" width) in
  let q, set_q = N.word_latch b ~name:"q" ~width ~init:1 () in
  let feedback =
    match List.map (fun t -> q.(t)) taps with
    | [] -> N.const_signal b false
    | t :: rest -> List.fold_left (N.xor_gate b) t rest
  in
  let feedback =
    if with_input then N.xor_gate b feedback (N.input b "d") else feedback
  in
  let shifted =
    Array.init width (fun i -> if i = 0 then feedback else q.(i - 1))
  in
  set_q shifted;
  Array.iteri (fun i qi -> N.output b (Printf.sprintf "q%d" i) qi) q;
  N.finalize b
