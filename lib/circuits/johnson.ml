module N = Fsm.Netlist

let make ~width =
  if width <= 0 then invalid_arg "Johnson.make: width must be positive";
  let b = N.create (Printf.sprintf "johnson%d" width) in
  let en = N.input b "en" in
  let q, set_q = N.word_latch b ~name:"q" ~width ~init:0 () in
  let shifted =
    Array.init width (fun i ->
        if i = 0 then N.not_gate b q.(width - 1) else q.(i - 1))
  in
  set_q (N.word_mux b ~sel:en ~t1:shifted ~e0:q);
  Array.iteri (fun i qi -> N.output b (Printf.sprintf "q%d" i) qi) q;
  N.finalize b
