module N = Fsm.Netlist

let make ~width =
  if width <= 0 then invalid_arg "Mult.make: width must be positive";
  let b = N.create (Printf.sprintf "mult%db" width) in
  let start = N.input b "start" in
  let a = Array.init width (fun i -> N.input b (Printf.sprintf "a%d" i)) in
  let m = Array.init width (fun i -> N.input b (Printf.sprintf "m%d" i)) in
  let pw = 2 * width in
  (* Registers: multiplicand (shifting left), multiplier (shifting right),
     accumulator, cycle countdown encoded one-hot in a shift register. *)
  let mc, set_mc = N.word_latch b ~name:"mc" ~width:pw ~init:0 () in
  let mp, set_mp = N.word_latch b ~name:"mp" ~width ~init:0 () in
  let acc, set_acc = N.word_latch b ~name:"acc" ~width:pw ~init:0 () in
  let busy, set_busy = N.word_latch b ~name:"busy" ~width ~init:0 () in
  let busy_any = N.or_list b (Array.to_list busy) in
  (* Shifted variants. *)
  let mc_shifted =
    Array.init pw (fun i -> if i = 0 then N.const_signal b false else mc.(i - 1))
  in
  let mp_shifted =
    Array.init width (fun i ->
        if i = width - 1 then N.const_signal b false else mp.(i + 1))
  in
  let busy_shifted =
    Array.init width (fun i ->
        if i = width - 1 then N.const_signal b false else busy.(i + 1))
  in
  let sum, _ = N.word_add b acc mc in
  let acc_step = N.word_mux b ~sel:mp.(0) ~t1:sum ~e0:acc in
  (* Loading on start, stepping while busy. *)
  let a_ext =
    Array.init pw (fun i -> if i < width then a.(i) else N.const_signal b false)
  in
  let step sel loaded stepped held =
    N.word_mux b ~sel:start ~t1:loaded
      ~e0:(N.word_mux b ~sel ~t1:stepped ~e0:held)
  in
  set_mc (step busy_any a_ext mc_shifted mc);
  set_mp (step busy_any m mp_shifted mp);
  set_acc (step busy_any (N.word_const b ~width:pw 0) acc_step acc);
  let busy_start =
    Array.init width (fun i ->
        if i = width - 1 then N.const_signal b true else N.const_signal b false)
  in
  set_busy (step busy_any busy_start busy_shifted busy);
  Array.iteri (fun i s -> N.output b (Printf.sprintf "p%d" i) s) acc;
  N.output b "busy" busy_any;
  N.finalize b
