(** The benchmark suite: synthetic analogues of the paper's circuits
    (§4.1.2 lists s344, s386, s510, s641, s820, s953, s1238, s1488, scf,
    styr, tbk, mult16b, cbp.32.4, minmax5, tlc).  See DESIGN.md §4 for the
    substitution rationale; widths are scaled so the full suite traverses
    in seconds rather than hours. *)

type bench = {
  name : string;
  paper_analog : string;  (** which paper benchmark this stands in for *)
  description : string;
  build : unit -> Fsm.Netlist.t;
}

val all : bench list
(** The full experimental suite (15 machines, as in the paper). *)

val quick : bench list
(** A small sub-suite for fast tests. *)

val find : string -> bench option
val names : bench list -> string list
