module N = Fsm.Netlist

type params = { latches : int; inputs : int; depth : int; seed : int }

let make ?name p =
  if p.latches <= 0 || p.inputs < 0 || p.depth < 0 then
    invalid_arg "Random_fsm.make: bad parameters";
  let name =
    match name with
    | Some n -> n
    | None -> Printf.sprintf "rnd_l%d_i%d_d%d_s%d" p.latches p.inputs p.depth p.seed
  in
  let rng = Random.State.make [| p.seed; p.latches; p.inputs; p.depth |] in
  let b = N.create name in
  let ins = Array.init p.inputs (fun i -> N.input b (Printf.sprintf "i%d" i)) in
  let lat =
    Array.init p.latches (fun i ->
        N.latch b ~name:(Printf.sprintf "x%d" i)
          ~init:(Random.State.bool rng) ())
  in
  let q = Array.map fst lat in
  let leaf () =
    let pool = Array.append q ins in
    let s = pool.(Random.State.int rng (Array.length pool)) in
    if Random.State.bool rng then s else N.not_gate b s
  in
  let rec tree depth =
    if depth = 0 || Random.State.int rng 5 = 0 then leaf ()
    else
      let l = tree (depth - 1) and r = tree (depth - 1) in
      match Random.State.int rng 3 with
      | 0 -> N.and_gate b l r
      | 1 -> N.or_gate b l r
      | _ -> N.xor_gate b l r
  in
  Array.iter (fun (_, set) -> set (tree p.depth)) lat;
  Array.iteri
    (fun i _ -> N.output b (Printf.sprintf "o%d" i) (tree (max 1 (p.depth - 1))))
    q;
  N.finalize b
