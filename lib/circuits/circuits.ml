(** Benchmark circuit generators: synthetic sequential machines standing
    in for the paper's benchmark suite (see {!Registry} and DESIGN.md). *)

module Counter = Counter
module Gray = Gray
module Johnson = Johnson
module Lfsr = Lfsr
module Tlc = Tlc
module Minmax = Minmax
module Mult = Mult
module Cbp = Cbp
module Arbiter = Arbiter
module Random_fsm = Random_fsm
module Mutate = Mutate
module Registry = Registry
