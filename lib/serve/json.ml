(* Minimal JSON: the wire layer's value type, a recursive-descent parser
   and a printer.  Self-contained on purpose — the toolchain constraint
   is no third-party JSON dependency, and the protocol needs only the
   scalar types, arrays and objects.

   The parser is total: any malformed input yields [Error], never an
   exception (the fuzz tests pin this).  Numbers are IEEE doubles, which
   covers every integer the protocol ships (ids, budgets, counters are
   all far below 2^53). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ----- accessors (all total) ----- *)

let mem key = function Obj kvs -> List.assoc_opt key kvs | _ -> None
let to_string = function Str s -> Some s | _ -> None
let to_float = function Num f -> Some f | _ -> None

let to_int = function
  | Num f when Float.is_integer f && Float.abs f <= 2.0 ** 53.0 ->
    Some (int_of_float f)
  | _ -> None

let to_bool = function Bool b -> Some b | _ -> None
let to_list = function Arr xs -> Some xs | _ -> None

let string_field key j = Option.bind (mem key j) to_string
let int_field key j = Option.bind (mem key j) to_int
let float_field key j = Option.bind (mem key j) to_float

(* ----- printing ----- *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string buf "\\\""
       | '\\' -> Buffer.add_string buf "\\\\"
       | '\n' -> Buffer.add_string buf "\\n"
       | '\r' -> Buffer.add_string buf "\\r"
       | '\t' -> Buffer.add_string buf "\\t"
       | c when Char.code c < 0x20 ->
         Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec print_to buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num f ->
    if Float.is_integer f && Float.abs f <= 2.0 ** 53.0 then
      Buffer.add_string buf (Printf.sprintf "%.0f" f)
    else if Float.is_finite f then
      Buffer.add_string buf (Printf.sprintf "%.17g" f)
    else Buffer.add_string buf "null"
  | Str s -> escape_to buf s
  | Arr xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
         if i > 0 then Buffer.add_char buf ',';
         print_to buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj kvs ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
         if i > 0 then Buffer.add_char buf ',';
         escape_to buf k;
         Buffer.add_char buf ':';
         print_to buf v)
      kvs;
    Buffer.add_char buf '}'

let print j =
  let buf = Buffer.create 256 in
  print_to buf j;
  Buffer.contents buf

let int n = Num (float_of_int n)
let of_option f = function None -> Null | Some v -> f v

(* ----- parsing ----- *)

exception Parse of string

let parse text =
  let n = String.length text in
  let pos = ref 0 in
  let fail msg = raise (Parse (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then Some text.[!pos] else None in
  let advance () = incr pos in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub text !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail ("bad literal (expected " ^ word ^ ")")
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = text.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' -> begin
          if !pos >= n then fail "unterminated escape";
          let e = text.[!pos] in
          advance ();
          (match e with
           | '"' -> Buffer.add_char buf '"'
           | '\\' -> Buffer.add_char buf '\\'
           | '/' -> Buffer.add_char buf '/'
           | 'b' -> Buffer.add_char buf '\b'
           | 'f' -> Buffer.add_char buf '\012'
           | 'n' -> Buffer.add_char buf '\n'
           | 'r' -> Buffer.add_char buf '\r'
           | 't' -> Buffer.add_char buf '\t'
           | 'u' ->
             if !pos + 4 > n then fail "truncated \\u escape";
             let hex = String.sub text !pos 4 in
             pos := !pos + 4;
             (match int_of_string_opt ("0x" ^ hex) with
              | None -> fail "bad \\u escape"
              | Some cp ->
                (* UTF-8 encode the code point (surrogate pairs are not
                   recombined; lone surrogates encode as-is). *)
                if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
                else if cp < 0x800 then begin
                  Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
                  Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
                end
                else begin
                  Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
                  Buffer.add_char buf
                    (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
                  Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
                end)
           | _ -> fail "bad escape");
          go ()
        end
      | c when Char.code c < 0x20 -> fail "control character in string"
      | c ->
        Buffer.add_char buf c;
        go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && num_char text.[!pos] do
      advance ()
    done;
    match float_of_string_opt (String.sub text start (!pos - start)) with
    | Some f when Float.is_finite f -> Num f
    | _ -> fail "bad number"
  in
  let rec parse_value depth =
    if depth > 64 then fail "nesting too deep";
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> Str (parse_string ())
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let rec items acc =
          let v = parse_value (depth + 1) in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        Arr (items [])
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value (depth + 1) in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((k, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((k, v) :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Obj (members [])
      end
    | Some ('0' .. '9' | '-') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected %C" c)
  in
  match
    let v = parse_value 0 in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse msg -> Error msg
  (* every other exception would be a parser bug; [Parse] is the only
     one raised on malformed input *)
