(* Warm-manager sessions for the serve daemon.

   A session pins one BDD manager — with the client's Store text
   interned into it exactly once — to the connection that opened it, so
   a stream of minimize calls against the same instance skips the
   per-request [new_man] + re-intern that dominates small-request
   latency.

   Ownership: a session is only visible to the connection that opened
   it ([owner] is the server's connection id); another connection
   presenting the same session id gets "unknown session".  All of a
   connection's sessions are torn down when it disconnects
   ({!drop_conn}).

   Concurrency: managers are domain-local by contract (no internal
   locking), but session requests run on whichever pool worker picks
   them up.  The per-session [lock] serializes every use of the
   manager, and the mutex acquire/release provides the happens-before
   edge that makes cross-domain sequential access safe.  A client
   pipelining several requests against one session simply runs them one
   at a time.

   Capacity: the registry LRU-evicts the stalest session when
   [max_sessions] is reached.  An evicted session that is mid-request
   finishes normally — eviction only unlinks it from the registry (the
   running job still holds the record); subsequent uses fail with
   "unknown session". *)

type session = {
  sid : string;
  man : Bdd.man;
  roots : (string * Bdd.t) list;  (* as named in the uploaded Store *)
  lock : Mutex.t;  (* serializes manager access across pool workers *)
  owner : int;  (* connection id *)
  baseline_nodes : int;  (* live nodes right after interning *)
  mutable last_used : int;  (* registry LRU clock value *)
}

type t = {
  reg_lock : Mutex.t;
  table : (string, session) Hashtbl.t;
  max_sessions : int;
  mutable clock : int;
  mutable next_sid : int;
  on_evict : string -> unit;
}

let create ?(max_sessions = 64) ?(on_evict = fun _ -> ()) () =
  if max_sessions < 1 then
    invalid_arg "Serve.Session.create: max_sessions must be >= 1";
  {
    reg_lock = Mutex.create ();
    table = Hashtbl.create 32;
    max_sessions;
    clock = 0;
    next_sid = 0;
    on_evict;
  }

let with_reg t f =
  Mutex.lock t.reg_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.reg_lock) (fun () -> f ())

let count t = with_reg t @@ fun () -> Hashtbl.length t.table

let evict_lru_locked t =
  let victim = ref None in
  Hashtbl.iter
    (fun _ s ->
       match !victim with
       | Some v when v.last_used <= s.last_used -> ()
       | _ -> victim := Some s)
    t.table;
  match !victim with
  | None -> None
  | Some s ->
    Hashtbl.remove t.table s.sid;
    Some s.sid

(* Intern [text] into a fresh manager and register the session.  The
   intern runs {e outside} the registry lock — it is the expensive part
   and must not serialize unrelated opens.  Evicted session ids are
   reported through [on_evict] after the lock drops. *)
let open_ t ~owner ~repr ~text =
  match
    let man = Bdd.create ~repr () in
    (man, Bdd.Store.load man text)
  with
  | _, Error msg -> Error ("bad bdd payload: " ^ msg)
  | man, Ok roots ->
    let baseline = (Bdd.snapshot man).Bdd.Stats.live_nodes in
    let evicted = ref [] in
    let session =
      with_reg t @@ fun () ->
      while Hashtbl.length t.table >= t.max_sessions do
        match evict_lru_locked t with
        | Some sid -> evicted := sid :: !evicted
        | None -> raise Exit (* unreachable: table non-empty *)
      done;
      t.next_sid <- t.next_sid + 1;
      t.clock <- t.clock + 1;
      let s =
        { sid = Printf.sprintf "s%d" t.next_sid;
          man; roots;
          lock = Mutex.create ();
          owner;
          baseline_nodes = baseline;
          last_used = t.clock }
      in
      Hashtbl.replace t.table s.sid s;
      s
    in
    List.iter t.on_evict (List.rev !evicted);
    Ok session

(* Look a session up for use: owner-checked, LRU-touched. *)
let find t ~owner sid =
  with_reg t @@ fun () ->
  match Hashtbl.find_opt t.table sid with
  | Some s when s.owner = owner ->
    t.clock <- t.clock + 1;
    s.last_used <- t.clock;
    Some s
  | Some _ | None -> None

(* Close one session; [false] if it wasn't the caller's to close. *)
let close t ~owner sid =
  with_reg t @@ fun () ->
  match Hashtbl.find_opt t.table sid with
  | Some s when s.owner = owner ->
    Hashtbl.remove t.table sid;
    true
  | Some _ | None -> false

(* Disconnect teardown: drop every session the connection owns.
   Returns how many were dropped. *)
let drop_conn t ~owner =
  with_reg t @@ fun () ->
  let mine =
    Hashtbl.fold
      (fun sid s acc -> if s.owner = owner then sid :: acc else acc)
      t.table []
  in
  List.iter (Hashtbl.remove t.table) mine;
  List.length mine

(* Run [f] with exclusive use of the session's manager.  Touches the
   GC opportunistically on the way out: a long-lived manager accretes
   garbage from every request, so once live nodes exceed 8x the
   post-intern baseline, collect down to the session roots plus
   whatever extra roots the request wants kept. *)
let with_session s f =
  Mutex.lock s.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock s.lock) @@ fun () ->
  let r = f s.man in
  let live = (Bdd.snapshot s.man).Bdd.Stats.live_nodes in
  if live > 8 * (max 256 s.baseline_nodes) then
    ignore (Bdd.gc ~roots:(List.map snd s.roots) s.man);
  r
