(* Synchronous client for the serve protocol.

   One outstanding request at a time: [request] writes a frame and
   blocks on the next reply frame, so replies can never interleave.
   (The server does answer pipelined requests in completion order — a
   client wanting that can speak [Protocol] directly.) *)

type addr = Tcp of string * int | Unix_path of string

type t = { fd : Unix.file_descr; mutable next_id : int }

let parse_addr s =
  (* "host:port" is TCP, anything else a unix-socket path *)
  match String.rindex_opt s ':' with
  | Some i -> begin
      match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
      | Some port -> Tcp (String.sub s 0 i, port)
      | None -> Unix_path s
    end
  | None -> Unix_path s

let addr_to_string = function
  | Tcp (host, port) -> Printf.sprintf "%s:%d" host port
  | Unix_path path -> path

let connect addr =
  let fd =
    match addr with
    | Tcp (host, port) ->
      let ip =
        try Unix.inet_addr_of_string host
        with Failure _ ->
          (match Unix.getaddrinfo host "" [ Unix.AI_FAMILY Unix.PF_INET ] with
           | { Unix.ai_addr = Unix.ADDR_INET (ip, _); _ } :: _ -> ip
           | _ -> failwith ("cannot resolve " ^ host))
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      (try Unix.connect fd (Unix.ADDR_INET (ip, port))
       with e -> (try Unix.close fd with Unix.Unix_error _ -> ()); raise e);
      fd
    | Unix_path path ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try Unix.connect fd (Unix.ADDR_UNIX path)
       with e -> (try Unix.close fd with Unix.Unix_error _ -> ()); raise e);
      fd
  in
  { fd; next_id = 1 }

let close c = try Unix.close c.fd with Unix.Unix_error _ -> ()

let request c ?budget ?trace ?explain fields =
  let id = c.next_id in
  c.next_id <- id + 1;
  let payload = Protocol.render_request ~id ?budget ?trace ?explain fields in
  match Protocol.write_frame c.fd payload with
  | () -> begin
      match Protocol.read_frame c.fd with
      | Ok (`Frame reply) -> Protocol.parse_reply reply
      | Ok `Eof -> Error "server closed the connection"
      | Error msg -> Error msg
    end
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)

let budget_json ?max_nodes ?max_steps ?timeout_ms () =
  Protocol.render_budget ?max_nodes ?max_steps ?timeout_ms ()

(* An omitted [?repr] sends no field at all, leaving the choice to the
   server's default. *)
let repr_fields = function
  | None -> []
  | Some r -> [ ("repr", Json.Str (Bdd.repr_label r)) ]

let minimize c ?max_nodes ?max_steps ?timeout_ms ?(heuristic = "sched") ?repr
    ?trace ?explain source =
  let budget = budget_json ?max_nodes ?max_steps ?timeout_ms () in
  let source_field =
    match source with
    | Protocol.Store_text text -> ("bdd", Json.Str text)
    | Protocol.Pla_text text -> ("pla", Json.Str text)
    | Protocol.Session_ref sid -> ("session", Json.Str sid)
  in
  request c ?budget ?trace ?explain
    ([ ("op", Json.Str "minimize"); source_field;
       ("heuristic", Json.Str heuristic) ]
     @ repr_fields repr)

(* Open a warm-manager session over [text] (Store format); the returned
   session id feeds [minimize (Session_ref sid)]. *)
let session_open c ?repr text =
  match
    request c
      ([ ("op", Json.Str "session_open"); ("bdd", Json.Str text) ]
       @ repr_fields repr)
  with
  | Error _ as e -> e
  | Ok r when r.Protocol.status = "ok" -> begin
      match Json.string_field "session" r.Protocol.result with
      | Some sid -> Ok (`Session sid)
      | None -> Error "session_open reply carried no session id"
    end
  | Ok r ->
    Error
      (Option.value r.Protocol.message
         ~default:("session_open failed: " ^ r.Protocol.status))

let session_close c sid =
  request c [ ("op", Json.Str "session_close"); ("session", Json.Str sid) ]

let machine_fields ~bench ~blif = function
  | Protocol.Bench name -> (bench, Json.Str name)
  | Protocol.Blif_text text -> (blif, Json.Str text)

let reach c ?max_nodes ?max_steps ?timeout_ms ?repr machine =
  let budget = budget_json ?max_nodes ?max_steps ?timeout_ms () in
  request c ?budget
    ([ ("op", Json.Str "reach");
       machine_fields ~bench:"bench" ~blif:"blif" machine ]
     @ repr_fields repr)

let equiv c ?max_nodes ?max_steps ?timeout_ms ?repr a b =
  let budget = budget_json ?max_nodes ?max_steps ?timeout_ms () in
  request c ?budget
    ([ ("op", Json.Str "equiv");
       machine_fields ~bench:"bench1" ~blif:"blif1" a;
       machine_fields ~bench:"bench2" ~blif:"blif2" b ]
     @ repr_fields repr)

let ping c = request c [ ("op", Json.Str "ping") ]
let metrics c = request c [ ("op", Json.Str "metrics") ]
let dump c = request c [ ("op", Json.Str "dump") ]
let shutdown c = request c [ ("op", Json.Str "shutdown") ]
