(** The [bddmin serve] daemon: a long-running request scheduler exposing
    minimization, reachability and equivalence checking over a
    length-prefixed JSON protocol.

    {!Protocol} defines the frames and message schema (including the
    optional per-request [trace] and [explain] telemetry fields),
    {!Server} the daemon (accept loop, per-connection readers, a shared
    [Exec.Pool] of compute workers scheduled earliest-deadline-first,
    bounded admission with [busy] backpressure replies, per-request
    budgets with arrival-time deadlines, an [Obs.Metrics]-backed
    telemetry surface with an optional Prometheus HTTP listener, and an
    [Obs.Flight] recorder of recent requests), {!Cache} the sharded
    single-flight result cache, {!Session} the warm-manager session
    registry, {!Client} a synchronous client, {!Loadgen} the
    throughput/latency load generator behind [bddmin serve-bench] and
    the bench harness's serve phase.  {!Json} is the self-contained
    JSON codec they share. *)

module Json = Json
module Protocol = Protocol
module Cache = Cache
module Session = Session
module Server = Server
module Client = Client
module Loadgen = Loadgen
