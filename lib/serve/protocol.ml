(* Wire protocol of [bddmin serve].

   Transport: length-prefixed JSON frames — a 4-byte big-endian payload
   length followed by that many bytes of UTF-8 JSON.  The prefix keeps
   the reader trivial (no streaming JSON); the 32 MiB cap keeps a
   hostile prefix from allocating the machine away.

   Requests:
     {"id": N, "op": "minimize", "bdd": <Store text>, "heuristic": "sched",
      "budget": {"max_nodes": N, "max_steps": N, "timeout_ms": N}}
     {"id": N, "op": "minimize", "session": "s3", "heuristic": "sched"}
     {"id": N, "op": "reach",  "bench": "tlc"}            (or "blif": <text>)
     {"id": N, "op": "equiv", "bench1": ..., "bench2": ...}
     {"id": N, "op": "session_open",  "bdd": <Store text>}
     {"id": N, "op": "session_close", "session": "s3"}
     {"id": N, "op": "ping" | "metrics" | "shutdown" | "dump"}

   [session_open] interns the Store text into a server-side manager
   once and replies {"session": "s3", "roots": [...], "nodes": N}; a
   minimize carrying "session" then runs against that warm manager
   without re-uploading or re-interning.  Sessions belong to the
   connection that opened them and die with it (or under the server's
   [--max-sessions] LRU).

   Every budget field is optional, as is "budget" itself.  [timeout_ms]
   is converted to an {e absolute} monotonic deadline when the request
   is parsed, i.e. on arrival — so time spent waiting in the scheduler
   queue counts against the request, and an expired request dies on its
   first kernel call (see the Budget entry-point poll).

   An optional "repr": "bdd" | "cbdd" field selects the node
   representation of the manager answering the request (defaulting to
   the server's [--repr]); under "cbdd" minimize replies carry an
   additional "chain_size" next to the representation-independent
   "size".

   Two optional telemetry fields ride on any request:

     "trace":   {"id": "<client-generated>", "sampled": true}
     "explain": true

   The trace id is an opaque client string carried through the server's
   span emission and flight-recorder records, and echoed nowhere else —
   it exists so one distributed trace can stitch client and server
   views together.  [sampled:false] asks the server not to emit spans
   for this request (it is still metered and flight-recorded).
   [explain] asks for a "telemetry" object on the reply: phase timings
   (queue/exec/write, microseconds), budget consumption, and the engine
   stats delta attributable to this request.

   Replies:
     {"id": N, "status": "ok",      "result": {...}}
     {"id": N, "status": "dnf",     "reason": "steps"|"nodes"|"time"|"cancelled",
      "message": "..."}
     {"id": N, "status": "partial", "reason": ..., "result": {...}}
     {"id": N, "status": "error",   "message": "..."}
     {"id": N, "status": "busy",    "retry_after_ms": N, "message": "..."}

   [busy] is the backpressure reply: the admission queue is at its
   bound, the request was {e not} enqueued, and the client should retry
   after roughly [retry_after_ms] (an estimate from the current backlog
   and recent execution times).
   plus, when the request said [explain]:
     {..., "telemetry": {"queue_us": N, "exec_us": N, "write_us": N,
                         "budget": {...}, "engine": {...}}}            *)

let max_frame = 32 * 1024 * 1024

(* ----- framing ----- *)

let rec really_write fd buf off len =
  if len > 0 then begin
    let n = Unix.write fd buf off len in
    really_write fd buf (off + n) (len - n)
  end

let write_frame fd payload =
  let len = String.length payload in
  if len > max_frame then invalid_arg "Serve.Protocol.write_frame: frame too large";
  let buf = Bytes.create (4 + len) in
  Bytes.set_int32_be buf 0 (Int32.of_int len);
  Bytes.blit_string payload 0 buf 4 len;
  really_write fd buf 0 (4 + len)

(* [`Frame payload | `Eof] on success; [Error] covers a torn frame, an
   oversized length prefix, or an I/O error.  [`Eof] is only reported at
   a frame boundary (no bytes of the next frame read). *)
let read_frame fd =
  let rec really_read buf off len =
    if len = 0 then `Done
    else
      match Unix.read fd buf off len with
      | 0 -> if off = 0 then `Eof else `Torn
      | n -> really_read buf (off + n) (len - n)
  in
  let hdr = Bytes.create 4 in
  match really_read hdr 0 4 with
  | `Eof -> Ok `Eof
  | `Torn -> Error "connection closed mid-frame"
  | `Done -> begin
      let len = Int32.to_int (Bytes.get_int32_be hdr 0) in
      if len < 0 || len > max_frame then
        Error (Printf.sprintf "frame length %d out of range" len)
      else begin
        let payload = Bytes.create len in
        match really_read payload 0 len with
        | `Eof | `Torn -> Error "connection closed mid-frame"
        | `Done -> Ok (`Frame (Bytes.unsafe_to_string payload))
      end
    end
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)

(* ----- requests ----- *)

type budget_spec = {
  max_nodes : int option;
  max_steps : int option;
  deadline_ns : int64 option;  (** absolute monotonic, fixed at arrival *)
  timeout_ms : int option;
      (** the raw wire value behind [deadline_ns] — kept because the
          result cache buckets budgets by requested timeout, and the
          absolute deadline differs between otherwise identical
          requests *)
}

let no_budget =
  { max_nodes = None; max_steps = None; deadline_ns = None; timeout_ms = None }

type source =
  | Store_text of string
  | Pla_text of string
  | Session_ref of string  (** minimize against a warm session manager *)

type machine = Bench of string | Blif_text of string

type trace_spec = { trace_id : string; sampled : bool }

type op =
  | Minimize of { source : source; heuristic : string }
  | Reach of machine
  | Equiv of machine * machine
  | Session_open of { bdd : string }
  | Session_close of { sid : string }
  | Ping
  | Metrics
  | Dump
  | Shutdown

type request = {
  id : int;
  op : op;
  budget : budget_spec;
  repr : Bdd.repr option;
      (** requested node representation ("repr": "bdd" | "cbdd");
          [None] = the server's default.  Folded into result-cache keys
          because chain-aware reply sizes differ between reprs. *)
  trace : trace_spec option;
  explain : bool;
}

let op_label = function
  | Minimize _ -> "minimize"
  | Reach _ -> "reach"
  | Equiv _ -> "equiv"
  | Session_open _ -> "session_open"
  | Session_close _ -> "session_close"
  | Ping -> "ping"
  | Metrics -> "metrics"
  | Dump -> "dump"
  | Shutdown -> "shutdown"

let parse_budget j =
  match Json.mem "budget" j with
  | None | Some Json.Null -> Ok no_budget
  | Some (Json.Obj _ as b) ->
    let pos name =
      match Json.int_field name b with
      | Some n when n <= 0 -> Error (Printf.sprintf "budget.%s must be positive" name)
      | v -> Ok v
    in
    Result.bind (pos "max_nodes") @@ fun max_nodes ->
    Result.bind (pos "max_steps") @@ fun max_steps ->
    Result.bind
      (match Json.int_field "timeout_ms" b with
       | Some ms when ms < 0 -> Error "budget.timeout_ms must be non-negative"
       | v -> Ok v)
    @@ fun timeout_ms ->
    let deadline_ns =
      Option.map
        (fun ms ->
           Int64.add (Obs.Clock.now_ns ()) (Int64.mul (Int64.of_int ms) 1_000_000L))
        timeout_ms
    in
    Ok { max_nodes; max_steps; deadline_ns; timeout_ms }
  | Some _ -> Error "budget must be an object"

(* The trace id round-trips the wire {e byte-identically}: it is
   carried as a plain JSON string, and the codec's escaping is an exact
   inverse of its parsing for every OCaml string. *)
let parse_trace j =
  match Json.mem "trace" j with
  | None | Some Json.Null -> Ok None
  | Some (Json.Obj _ as t) -> begin
      match Json.string_field "id" t with
      | None -> Error "trace.id must be a string"
      | Some trace_id ->
        let sampled =
          match Json.mem "sampled" t with
          | Some (Json.Bool b) -> b
          | _ -> true
        in
        Ok (Some { trace_id; sampled })
    end
  | Some _ -> Error "trace must be an object"

let machine_of ~bench ~blif j =
  match Json.string_field bench j, Json.string_field blif j with
  | Some name, None -> Ok (Bench name)
  | None, Some text -> Ok (Blif_text text)
  | Some _, Some _ -> Error (Printf.sprintf "give %s or %s, not both" bench blif)
  | None, None -> Error (Printf.sprintf "missing %s or %s" bench blif)

let parse_request payload =
  match Json.parse payload with
  | Error msg -> Error ("bad JSON: " ^ msg)
  | Ok j ->
    let id = Option.value ~default:0 (Json.int_field "id" j) in
    Result.bind (parse_budget j) @@ fun budget ->
    Result.bind (parse_trace j) @@ fun trace ->
    let explain =
      match Json.mem "explain" j with Some (Json.Bool b) -> b | _ -> false
    in
    Result.bind
      (match Json.mem "repr" j with
       | None | Some Json.Null -> Ok None
       | Some (Json.Str s) -> begin
           match Bdd.repr_of_string s with
           | Some r -> Ok (Some r)
           | None -> Error (Printf.sprintf "unknown repr %S" s)
         end
       | Some _ -> Error "repr must be \"bdd\" or \"cbdd\"")
    @@ fun repr ->
    let finish op = Ok { id; op; budget; repr; trace; explain } in
    (match Json.string_field "op" j with
     | None -> Error "missing op"
     | Some "ping" -> finish Ping
     | Some "metrics" -> finish Metrics
     | Some "dump" -> finish Dump
     | Some "shutdown" -> finish Shutdown
     | Some "minimize" ->
       let heuristic =
         Option.value ~default:"sched" (Json.string_field "heuristic" j)
       in
       (match
          ( Json.string_field "bdd" j,
            Json.string_field "pla" j,
            Json.string_field "session" j )
        with
        | Some text, None, None ->
          finish (Minimize { source = Store_text text; heuristic })
        | None, Some text, None ->
          finish (Minimize { source = Pla_text text; heuristic })
        | None, None, Some sid ->
          finish (Minimize { source = Session_ref sid; heuristic })
        | None, None, None -> Error "minimize needs a bdd, pla or session field"
        | _ -> Error "give exactly one of bdd, pla or session")
     | Some "session_open" -> begin
         match Json.string_field "bdd" j with
         | Some bdd -> finish (Session_open { bdd })
         | None -> Error "session_open needs a bdd field"
       end
     | Some "session_close" -> begin
         match Json.string_field "session" j with
         | Some sid -> finish (Session_close { sid })
         | None -> Error "session_close needs a session field"
       end
     | Some "reach" ->
       Result.bind (machine_of ~bench:"bench" ~blif:"blif" j) (fun m ->
           finish (Reach m))
     | Some "equiv" ->
       Result.bind (machine_of ~bench:"bench1" ~blif:"blif1" j) @@ fun a ->
       Result.bind (machine_of ~bench:"bench2" ~blif:"blif2" j) @@ fun b ->
       finish (Equiv (a, b))
     | Some op -> Error (Printf.sprintf "unknown op %S" op))

(* ----- request rendering (client side) ----- *)

let render_budget ?max_nodes ?max_steps ?timeout_ms () =
  let fields =
    List.filter_map
      (fun (k, v) -> Option.map (fun n -> (k, Json.int n)) v)
      [ ("max_nodes", max_nodes); ("max_steps", max_steps);
        ("timeout_ms", timeout_ms) ]
  in
  match fields with [] -> None | fs -> Some (Json.Obj fs)

let render_trace { trace_id; sampled } =
  Json.Obj [ ("id", Json.Str trace_id); ("sampled", Json.Bool sampled) ]

let render_request ~id ?budget ?repr ?trace ?(explain = false) fields =
  let budget_field =
    match budget with None -> [] | Some b -> [ ("budget", b) ]
  in
  let repr_field =
    match repr with
    | None -> []
    | Some r -> [ ("repr", Json.Str (Bdd.repr_label r)) ]
  in
  let trace_field =
    match trace with None -> [] | Some t -> [ ("trace", render_trace t) ]
  in
  let explain_field =
    if explain then [ ("explain", Json.Bool true) ] else []
  in
  Json.print
    (Json.Obj
       (("id", Json.int id)
        :: fields @ repr_field @ trace_field @ explain_field @ budget_field))

(* ----- replies ----- *)

let reply_base ~id ~status rest =
  Json.Obj (("id", Json.int id) :: ("status", Json.Str status) :: rest)

let ok_reply ~id result = reply_base ~id ~status:"ok" [ ("result", result) ]

let dnf_reply ~id reason =
  reply_base ~id ~status:"dnf"
    [ ("reason", Json.Str (Bdd.Budget.reason_label reason));
      ("message", Json.Str (Bdd.Budget.reason_message reason)) ]

let partial_reply ~id reason result =
  reply_base ~id ~status:"partial"
    [ ("reason", Json.Str (Bdd.Budget.reason_label reason));
      ("message", Json.Str (Bdd.Budget.reason_message reason));
      ("result", result) ]

let error_reply ~id message =
  reply_base ~id ~status:"error" [ ("message", Json.Str message) ]

(* Backpressure: the request was rejected without being enqueued. *)
let busy_reply ~id ~retry_after_ms =
  reply_base ~id ~status:"busy"
    [ ("retry_after_ms", Json.int retry_after_ms);
      ("message", Json.Str "admission queue full, retry later") ]

(* Appended last so a reply's non-telemetry prefix is byte-identical
   whether or not the client asked to be explained. *)
let with_telemetry reply telemetry =
  match reply with
  | Json.Obj kvs -> Json.Obj (kvs @ [ ("telemetry", telemetry) ])
  | other -> other

type reply = {
  reply_id : int;
  status : string;
      (** ["ok"], ["dnf"], ["partial"], ["error"] or ["busy"] *)
  reason : string option;
  message : string option;
  retry_after_ms : int option;  (** only on ["busy"] *)
  result : Json.t;  (** [Null] when absent *)
  telemetry : Json.t;  (** [Null] unless the request said [explain] *)
}

let parse_reply payload =
  match Json.parse payload with
  | Error msg -> Error ("bad JSON reply: " ^ msg)
  | Ok j ->
    (match Json.string_field "status" j with
     | None -> Error "reply missing status"
     | Some status ->
       Ok
         {
           reply_id = Option.value ~default:0 (Json.int_field "id" j);
           status;
           reason = Json.string_field "reason" j;
           message = Json.string_field "message" j;
           retry_after_ms = Json.int_field "retry_after_ms" j;
           result = Option.value ~default:Json.Null (Json.mem "result" j);
           telemetry = Option.value ~default:Json.Null (Json.mem "telemetry" j);
         })
