(* Wire protocol of [bddmin serve].

   Transport: length-prefixed JSON frames — a 4-byte big-endian payload
   length followed by that many bytes of UTF-8 JSON.  The prefix keeps
   the reader trivial (no streaming JSON); the 32 MiB cap keeps a
   hostile prefix from allocating the machine away.

   Requests:
     {"id": N, "op": "minimize", "bdd": <Store text>, "heuristic": "sched",
      "budget": {"max_nodes": N, "max_steps": N, "timeout_ms": N}}
     {"id": N, "op": "reach",  "bench": "tlc"}            (or "blif": <text>)
     {"id": N, "op": "equiv", "bench1": ..., "bench2": ...}
     {"id": N, "op": "ping" | "metrics" | "shutdown"}

   Every budget field is optional, as is "budget" itself.  [timeout_ms]
   is converted to an {e absolute} monotonic deadline when the request
   is parsed, i.e. on arrival — so time spent waiting in the scheduler
   queue counts against the request, and an expired request dies on its
   first kernel call (see the Budget entry-point poll).

   Replies:
     {"id": N, "status": "ok",      "result": {...}}
     {"id": N, "status": "dnf",     "reason": "steps"|"nodes"|"time"|"cancelled",
      "message": "..."}
     {"id": N, "status": "partial", "reason": ..., "result": {...}}
     {"id": N, "status": "error",   "message": "..."}                    *)

let max_frame = 32 * 1024 * 1024

(* ----- framing ----- *)

let rec really_write fd buf off len =
  if len > 0 then begin
    let n = Unix.write fd buf off len in
    really_write fd buf (off + n) (len - n)
  end

let write_frame fd payload =
  let len = String.length payload in
  if len > max_frame then invalid_arg "Serve.Protocol.write_frame: frame too large";
  let buf = Bytes.create (4 + len) in
  Bytes.set_int32_be buf 0 (Int32.of_int len);
  Bytes.blit_string payload 0 buf 4 len;
  really_write fd buf 0 (4 + len)

(* [`Frame payload | `Eof] on success; [Error] covers a torn frame, an
   oversized length prefix, or an I/O error.  [`Eof] is only reported at
   a frame boundary (no bytes of the next frame read). *)
let read_frame fd =
  let rec really_read buf off len =
    if len = 0 then `Done
    else
      match Unix.read fd buf off len with
      | 0 -> if off = 0 then `Eof else `Torn
      | n -> really_read buf (off + n) (len - n)
  in
  let hdr = Bytes.create 4 in
  match really_read hdr 0 4 with
  | `Eof -> Ok `Eof
  | `Torn -> Error "connection closed mid-frame"
  | `Done -> begin
      let len = Int32.to_int (Bytes.get_int32_be hdr 0) in
      if len < 0 || len > max_frame then
        Error (Printf.sprintf "frame length %d out of range" len)
      else begin
        let payload = Bytes.create len in
        match really_read payload 0 len with
        | `Eof | `Torn -> Error "connection closed mid-frame"
        | `Done -> Ok (`Frame (Bytes.unsafe_to_string payload))
      end
    end
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)

(* ----- requests ----- *)

type budget_spec = {
  max_nodes : int option;
  max_steps : int option;
  deadline_ns : int64 option;  (** absolute monotonic, fixed at arrival *)
}

let no_budget = { max_nodes = None; max_steps = None; deadline_ns = None }

type source = Store_text of string | Pla_text of string
type machine = Bench of string | Blif_text of string

type op =
  | Minimize of { source : source; heuristic : string }
  | Reach of machine
  | Equiv of machine * machine
  | Ping
  | Metrics
  | Shutdown

type request = { id : int; op : op; budget : budget_spec }

let op_label = function
  | Minimize _ -> "minimize"
  | Reach _ -> "reach"
  | Equiv _ -> "equiv"
  | Ping -> "ping"
  | Metrics -> "metrics"
  | Shutdown -> "shutdown"

let parse_budget j =
  match Json.mem "budget" j with
  | None | Some Json.Null -> Ok no_budget
  | Some (Json.Obj _ as b) ->
    let pos name =
      match Json.int_field name b with
      | Some n when n <= 0 -> Error (Printf.sprintf "budget.%s must be positive" name)
      | v -> Ok v
    in
    Result.bind (pos "max_nodes") @@ fun max_nodes ->
    Result.bind (pos "max_steps") @@ fun max_steps ->
    Result.bind
      (match Json.int_field "timeout_ms" b with
       | Some ms when ms < 0 -> Error "budget.timeout_ms must be non-negative"
       | v -> Ok v)
    @@ fun timeout_ms ->
    let deadline_ns =
      Option.map
        (fun ms ->
           Int64.add (Obs.Clock.now_ns ()) (Int64.mul (Int64.of_int ms) 1_000_000L))
        timeout_ms
    in
    Ok { max_nodes; max_steps; deadline_ns }
  | Some _ -> Error "budget must be an object"

let machine_of ~bench ~blif j =
  match Json.string_field bench j, Json.string_field blif j with
  | Some name, None -> Ok (Bench name)
  | None, Some text -> Ok (Blif_text text)
  | Some _, Some _ -> Error (Printf.sprintf "give %s or %s, not both" bench blif)
  | None, None -> Error (Printf.sprintf "missing %s or %s" bench blif)

let parse_request payload =
  match Json.parse payload with
  | Error msg -> Error ("bad JSON: " ^ msg)
  | Ok j ->
    let id = Option.value ~default:0 (Json.int_field "id" j) in
    Result.bind (parse_budget j) @@ fun budget ->
    let finish op = Ok { id; op; budget } in
    (match Json.string_field "op" j with
     | None -> Error "missing op"
     | Some "ping" -> finish Ping
     | Some "metrics" -> finish Metrics
     | Some "shutdown" -> finish Shutdown
     | Some "minimize" ->
       let heuristic =
         Option.value ~default:"sched" (Json.string_field "heuristic" j)
       in
       (match Json.string_field "bdd" j, Json.string_field "pla" j with
        | Some text, None -> finish (Minimize { source = Store_text text; heuristic })
        | None, Some text -> finish (Minimize { source = Pla_text text; heuristic })
        | Some _, Some _ -> Error "give bdd or pla, not both"
        | None, None -> Error "minimize needs a bdd or pla field")
     | Some "reach" ->
       Result.bind (machine_of ~bench:"bench" ~blif:"blif" j) (fun m ->
           finish (Reach m))
     | Some "equiv" ->
       Result.bind (machine_of ~bench:"bench1" ~blif:"blif1" j) @@ fun a ->
       Result.bind (machine_of ~bench:"bench2" ~blif:"blif2" j) @@ fun b ->
       finish (Equiv (a, b))
     | Some op -> Error (Printf.sprintf "unknown op %S" op))

(* ----- request rendering (client side) ----- *)

let render_budget ?max_nodes ?max_steps ?timeout_ms () =
  let fields =
    List.filter_map
      (fun (k, v) -> Option.map (fun n -> (k, Json.int n)) v)
      [ ("max_nodes", max_nodes); ("max_steps", max_steps);
        ("timeout_ms", timeout_ms) ]
  in
  match fields with [] -> None | fs -> Some (Json.Obj fs)

let render_request ~id ?budget fields =
  let budget_field =
    match budget with None -> [] | Some b -> [ ("budget", b) ]
  in
  Json.print (Json.Obj (("id", Json.int id) :: fields @ budget_field))

(* ----- replies ----- *)

let reply_base ~id ~status rest =
  Json.Obj (("id", Json.int id) :: ("status", Json.Str status) :: rest)

let ok_reply ~id result = reply_base ~id ~status:"ok" [ ("result", result) ]

let dnf_reply ~id reason =
  reply_base ~id ~status:"dnf"
    [ ("reason", Json.Str (Bdd.Budget.reason_label reason));
      ("message", Json.Str (Bdd.Budget.reason_message reason)) ]

let partial_reply ~id reason result =
  reply_base ~id ~status:"partial"
    [ ("reason", Json.Str (Bdd.Budget.reason_label reason));
      ("message", Json.Str (Bdd.Budget.reason_message reason));
      ("result", result) ]

let error_reply ~id message =
  reply_base ~id ~status:"error" [ ("message", Json.Str message) ]

type reply = {
  reply_id : int;
  status : string;  (** ["ok"], ["dnf"], ["partial"] or ["error"] *)
  reason : string option;
  message : string option;
  result : Json.t;  (** [Null] when absent *)
}

let parse_reply payload =
  match Json.parse payload with
  | Error msg -> Error ("bad JSON reply: " ^ msg)
  | Ok j ->
    (match Json.string_field "status" j with
     | None -> Error "reply missing status"
     | Some status ->
       Ok
         {
           reply_id = Option.value ~default:0 (Json.int_field "id" j);
           status;
           reason = Json.string_field "reason" j;
           message = Json.string_field "message" j;
           result = Option.value ~default:Json.Null (Json.mem "result" j);
         })
