(* Load generator for the serve daemon: [clients] synchronous client
   domains firing deterministic minimize requests, exact percentile
   latencies computed client-side from every observed round-trip.

   Default mode starts an in-process server on a throwaway unix socket
   (so `bddmin bench` and the tests need no process management); pass
   [~connect] to aim at an external daemon instead.

   Determinism: payloads come from a tiny LCG seeded by [seed] — same
   seed, same instance mix — and each client walks the payload ring from
   its own offset, so the work is identical across runs while the
   interleaving exercises the scheduler.  Two knobs aim traffic at the
   server's fast paths deterministically: [~duplicate_rate] replays one
   designated payload for that fraction of requests (exercising the
   result cache and single-flight collapse), and [~sessions] has each
   client open a warm-manager session once and run every minimize
   against it (exercising the re-intern-free path).

   After the clients finish, one extra connection scrapes the server's
   [metrics] op so the run's server-side counters — cache hits, session
   and batch activity, busy replies — land in {!stats.server} next to
   the client-side latencies they explain. *)

type telemetry = {
  explained : int;  (** replies that carried a telemetry object *)
  queue_us_mean : float;
  exec_us_mean : float;
  write_us_mean : float;
}

(* Server-side counters scraped once at the end of the run.  Totals
   since server start — when aiming at a shared external daemon they
   include whatever else it served. *)
type server_counters = {
  cache_hits : int;
  cache_canonical_hits : int;
  cache_misses : int;
  cache_collapsed : int;
  cache_evicted : int;
  sessions_opened : int;
  sessions_evicted : int;
  batches : int;
  batched_requests : int;
  busy_replies : int;
}

type stats = {
  clients : int;
  requests : int;
  workers : int;  (** 0 when driving an external server *)
  seconds : float;
  rps : float;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  mean_ms : float;
  ok : int;
  dnf : int;
  partial : int;
  busy : int;  (** backpressure refusals — not errors *)
  errors : int;
  telemetry : telemetry option;
      (** server-side phase means, when run with [~explain:true] *)
  server : server_counters option;
      (** end-of-run scrape of the server's cache/session/batch/busy
          counters; [None] if the scrape connection failed *)
}

(* A deterministic EBM instance over [nvars] variables, shipped as Store
   text with roots [f] and [c].  ~3n random binary ops give the sibling
   heuristics a real DAG to chew on; the care function mixes a random
   function with a complemented one so the don't-care set is dense
   enough to matter. *)
let build_payload ~nvars ~seed =
  let man = Bdd.create () in
  let state = ref ((seed + 0x9E3779B9) land 0x3FFFFFFF) in
  let rand n =
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    !state mod n
  in
  (* dense random truth tables: a truly random function has
     near-maximal BDD size, so the minimizers get real work (random
     combinations of literals collapse by absorption and do not) *)
  let tt density =
    Logic.Truth_table.create nvars (fun _ -> rand 100 < density)
  in
  let f = Logic.Truth_table.to_bdd man (tt 50) in
  let c = Logic.Truth_table.to_bdd man (tt 75) in
  Bdd.Store.save man [ ("f", f); ("c", c) ]

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else begin
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) rank))
  end

(* Pull the flat convenience counters out of a [metrics] op reply. *)
let scrape_server_counters addr =
  match Client.connect addr with
  | exception _ -> None
  | c ->
    Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
    (match Client.metrics c with
     | Error _ -> None
     | Ok r when r.Protocol.status <> "ok" -> None
     | Ok r ->
       let result = r.Protocol.result in
       let sub name field =
         match Json.mem name result with
         | Some obj -> Option.value ~default:0 (Json.int_field field obj)
         | None -> 0
       in
       Some
         {
           cache_hits = sub "cache" "hits";
           cache_canonical_hits = sub "cache" "canonical_hits";
           cache_misses = sub "cache" "misses";
           cache_collapsed = sub "cache" "collapsed";
           cache_evicted = sub "cache" "evicted";
           sessions_opened = sub "sessions" "opened";
           sessions_evicted = sub "sessions" "evicted";
           batches = sub "batch" "batches";
           batched_requests = sub "batch" "requests";
           busy_replies =
             Option.value ~default:0 (Json.int_field "busy_replies" result);
         })

let run ?(clients = 4) ?(requests = 100) ?connect ?workers
    ?(heuristic = "sched") ?(nvars = 12) ?(seed = 1) ?max_steps ?timeout_ms
    ?(explain = false) ?(sessions = false) ?(duplicate_rate = 0.0) ?repr () =
  if clients < 1 then invalid_arg "Serve.Loadgen.run: clients must be >= 1";
  if requests < 0 then invalid_arg "Serve.Loadgen.run: negative requests";
  if duplicate_rate < 0.0 || duplicate_rate > 1.0 then
    invalid_arg "Serve.Loadgen.run: duplicate_rate must be in [0, 1]";
  let payloads = Array.init 8 (fun i -> build_payload ~nvars ~seed:(seed + i)) in
  let server, addr, workers =
    match connect with
    | Some addr -> (None, addr, Option.value ~default:0 workers)
    | None ->
      let workers =
        match workers with
        | Some w -> w
        | None -> max 2 (Exec.recommended_jobs () / 2)
      in
      let path = Filename.temp_file "bddmin-serve" ".sock" in
      Sys.remove path;
      let srv = Server.start ~workers ?repr (Server.Unix_path path) in
      (Some srv, Client.Unix_path path, workers)
  in
  let per_client k =
    (requests / clients) + (if k < requests mod clients then 1 else 0)
  in
  (* the duplicate roll threshold on the LCG's 30-bit range *)
  let dup_threshold =
    int_of_float (duplicate_rate *. float_of_int 0x40000000)
  in
  let client_run k () =
    let n = per_client k in
    let lat = Array.make (max n 1) 0.0 in
    let ok = ref 0 and dnf = ref 0 and partial = ref 0 in
    let busy = ref 0 and errors = ref 0 in
    (* sums of server-reported phase timings, over explained replies *)
    let explained = ref 0 in
    let queue_us = ref 0 and exec_us = ref 0 and write_us = ref 0 in
    (* per-client deterministic roll stream for duplicate decisions *)
    let roll_state = ref (((seed * 31) + k + 0x5DEECE6) land 0x3FFFFFFF) in
    let duplicate_roll () =
      roll_state := ((!roll_state * 1103515245) + 12345) land 0x3FFFFFFF;
      !roll_state < dup_threshold
    in
    let c = Client.connect addr in
    Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
    let session =
      if not sessions then None
      else
        match
          Client.session_open c ?repr payloads.(k mod Array.length payloads)
        with
        | Ok (`Session sid) -> Some sid
        | Error _ ->
          (* fall back to sessionless so the run still completes *)
          incr errors;
          None
    in
    for j = 0 to n - 1 do
      let source =
        match session with
        | Some sid -> Protocol.Session_ref sid
        | None ->
          let payload =
            if duplicate_roll () then payloads.(0)
            else payloads.((k + j) mod Array.length payloads)
          in
          Protocol.Store_text payload
      in
      let t0 = Obs.Clock.now_ns () in
      let r =
        Client.minimize c ~heuristic ?max_steps ?timeout_ms ?repr ~explain
          source
      in
      lat.(j) <-
        Int64.to_float (Int64.sub (Obs.Clock.now_ns ()) t0) /. 1e6;
      (match r with
       | Ok reply -> begin
           (match reply.Protocol.status with
            | "ok" -> incr ok
            | "dnf" -> incr dnf
            | "partial" -> incr partial
            | "busy" -> incr busy
            | _ -> incr errors);
           let tel = reply.Protocol.telemetry in
           match
             ( Json.int_field "queue_us" tel,
               Json.int_field "exec_us" tel,
               Json.int_field "write_us" tel )
           with
           | Some q, Some e, Some w ->
             incr explained;
             queue_us := !queue_us + q;
             exec_us := !exec_us + e;
             write_us := !write_us + w
           | _ -> ()
         end
       | Error _ -> incr errors)
    done;
    ( Array.sub lat 0 n,
      (!ok, !dnf, !partial, !busy, !errors),
      (!explained, !queue_us, !exec_us, !write_us) )
  in
  let t0 = Obs.Clock.now_ns () in
  let domains = List.init clients (fun k -> Domain.spawn (client_run k)) in
  let results = List.map Domain.join domains in
  let seconds =
    Int64.to_float (Int64.sub (Obs.Clock.now_ns ()) t0) /. 1e9
  in
  (* scrape server counters before tearing the in-process server down *)
  let server_counters = scrape_server_counters addr in
  (match server with Some srv -> Server.stop srv | None -> ());
  let latencies = Array.concat (List.map (fun (l, _, _) -> l) results) in
  Array.sort compare latencies;
  let sum5 f = List.fold_left (fun acc (_, r, _) -> acc + f r) 0 results in
  let sumt f = List.fold_left (fun acc (_, _, t) -> acc + f t) 0 results in
  let explained = sumt (fun (n, _, _, _) -> n) in
  let total = Array.fold_left ( +. ) 0.0 latencies in
  {
    clients;
    requests;
    workers;
    seconds;
    rps = (if seconds > 0.0 then float_of_int requests /. seconds else 0.0);
    p50_ms = percentile latencies 50.0;
    p95_ms = percentile latencies 95.0;
    p99_ms = percentile latencies 99.0;
    mean_ms =
      (if Array.length latencies > 0 then
         total /. float_of_int (Array.length latencies)
       else 0.0);
    ok = sum5 (fun (ok, _, _, _, _) -> ok);
    dnf = sum5 (fun (_, dnf, _, _, _) -> dnf);
    partial = sum5 (fun (_, _, p, _, _) -> p);
    busy = sum5 (fun (_, _, _, b, _) -> b);
    errors = sum5 (fun (_, _, _, _, e) -> e);
    telemetry =
      (if explained = 0 then None
       else
         let mean sel =
           float_of_int (sumt sel) /. float_of_int explained
         in
         Some
           {
             explained;
             queue_us_mean = mean (fun (_, q, _, _) -> q);
             exec_us_mean = mean (fun (_, _, e, _) -> e);
             write_us_mean = mean (fun (_, _, _, w) -> w);
           });
    server = server_counters;
  }

let pp ppf s =
  Format.fprintf ppf
    "@[<v>clients %d  requests %d  workers %d@,\
     %.2f s  %.1f req/s@,\
     latency ms: p50 %.2f  p95 %.2f  p99 %.2f  mean %.2f@,\
     replies: %d ok, %d dnf, %d partial, %d busy, %d error%a%a@]"
    s.clients s.requests s.workers s.seconds s.rps s.p50_ms s.p95_ms s.p99_ms
    s.mean_ms s.ok s.dnf s.partial s.busy s.errors
    (fun ppf -> function
       | None -> ()
       | Some t ->
         Format.fprintf ppf
           "@,server phases us (over %d explained): queue %.0f  exec %.0f  \
            write %.0f"
           t.explained t.queue_us_mean t.exec_us_mean t.write_us_mean)
    s.telemetry
    (fun ppf -> function
       | None -> ()
       | Some c ->
         Format.fprintf ppf
           "@,server counters: cache %d hit / %d canonical / %d miss / %d \
            collapsed / %d evicted; sessions %d opened / %d evicted; \
            batches %d (%d reqs); busy %d"
           c.cache_hits c.cache_canonical_hits c.cache_misses
           c.cache_collapsed c.cache_evicted c.sessions_opened
           c.sessions_evicted c.batches c.batched_requests c.busy_replies)
    s.server
