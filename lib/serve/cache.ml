(* Canonical result cache for the serve daemon.

   A bounded, sharded LRU mapping request keys — op + heuristic +
   canonical Store text + budget class — to finished reply bodies
   (reply JSON with the per-requester "id" and "telemetry" fields
   stripped, so one cached value serves every requester).

   Single-flight: a key being computed holds a [Pending] entry carrying
   the followers' reply callbacks.  A duplicate request arriving while
   the leader runs {e joins} the entry instead of queueing its own
   compute; when the leader {!resolve}s, every follower's callback is
   handed the finished value.  Followers are plain closures, so no
   worker (and no reader) ever blocks on a cache entry.

   Sharding: keys are hashed onto [n] independent shards, each a mutex
   + hashtable + LRU clock, so concurrent workers touching different
   keys never contend on one lock.  Eviction is an O(shard) scan for
   the stalest [Done] entry — shards are small (capacity/shards) and
   eviction only runs on insert-at-capacity, so the scan never shows up
   next to an actual minimize call.  [Pending] entries are never
   evicted (their followers must be answered) and don't count against
   capacity.

   Thread-safety: every operation is safe from any domain.  Callbacks
   returned by {!resolve}/{!abandon} are invoked by the {e caller},
   outside all shard locks. *)

type follower = Json.t -> unit

type entry =
  | Done of { value : Json.t; mutable last_used : int }
  | Pending of { mutable followers : follower list }

type shard = {
  lock : Mutex.t;
  table : (string, entry) Hashtbl.t;
  mutable clock : int;  (* LRU timestamp source, monotone per shard *)
  mutable done_count : int;  (* [Done] entries only *)
}

type t = {
  shards : shard array;
  shard_capacity : int;
  on_evict : unit -> unit;
}

type outcome =
  | Hit of Json.t  (** finished value, serve it now *)
  | Joined  (** a leader is computing; your follower is registered *)
  | Lead  (** you are the leader: compute, then {!resolve} *)

let create ?(shards = 8) ~capacity ?(on_evict = fun () -> ()) () =
  if capacity < 1 then invalid_arg "Serve.Cache.create: capacity must be >= 1";
  let shards = max 1 shards in
  {
    shards =
      Array.init shards (fun _ ->
          { lock = Mutex.create ();
            table = Hashtbl.create 64;
            clock = 0;
            done_count = 0 });
    (* ceil-divide so total capacity is never below the ask *)
    shard_capacity = max 1 ((capacity + shards - 1) / shards);
    on_evict;
  }

let shard_of t key = t.shards.(Hashtbl.hash key mod Array.length t.shards)

let with_shard t key f =
  let s = shard_of t key in
  Mutex.lock s.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock s.lock) (fun () -> f s)

let touch s = function
  | Done d ->
    s.clock <- s.clock + 1;
    d.last_used <- s.clock
  | Pending _ -> ()

(* Evict the stalest [Done] entry; [Pending] entries are untouchable. *)
let evict_one s =
  let victim = ref None in
  Hashtbl.iter
    (fun key -> function
      | Done d -> begin
          match !victim with
          | Some (_, age) when age <= d.last_used -> ()
          | _ -> victim := Some (key, d.last_used)
        end
      | Pending _ -> ())
    s.table;
  match !victim with
  | None -> false
  | Some (key, _) ->
    Hashtbl.remove s.table key;
    s.done_count <- s.done_count - 1;
    true

let insert_done t s key value =
  let evicted = ref 0 in
  (match Hashtbl.find_opt s.table key with
   | Some (Done _) -> s.done_count <- s.done_count - 1
   | Some (Pending _) | None -> ());
  while s.done_count >= t.shard_capacity && evict_one s do incr evicted done;
  s.clock <- s.clock + 1;
  Hashtbl.replace s.table key (Done { value; last_used = s.clock });
  s.done_count <- s.done_count + 1;
  !evicted

(* Plain lookup: a finished value or nothing.  Does not join a pending
   computation — use {!find_or_join} for single-flight semantics. *)
let find t key =
  with_shard t key @@ fun s ->
  match Hashtbl.find_opt s.table key with
  | Some (Done d as e) ->
    touch s e;
    Some d.value
  | Some (Pending _) | None -> None

(* The single-flight entry point.  Exactly one concurrent caller per
   key gets [Lead] (and owes a {!resolve} or {!abandon}); the rest are
   [Joined] with their [follower] registered, or [Hit] if the value is
   already there. *)
let find_or_join t key ~follower =
  with_shard t key @@ fun s ->
  match Hashtbl.find_opt s.table key with
  | Some (Done d as e) ->
    touch s e;
    Hit d.value
  | Some (Pending p) ->
    p.followers <- follower :: p.followers;
    Joined
  | None ->
    Hashtbl.replace s.table key (Pending { followers = [] });
    Lead

(* take_pending: remove the Pending entry for [key] (if that is what's
   there) and return its followers, oldest first. *)
let take_pending s key =
  match Hashtbl.find_opt s.table key with
  | Some (Pending p) ->
    Hashtbl.remove s.table key;
    List.rev p.followers
  | Some (Done _) | None -> []

(* The leader finished.  Replaces the [Pending] entry with the value
   (when [store] — only "ok" replies are worth keeping) and returns the
   followers for the caller to answer, oldest first.  [aliases] are
   additional keys — e.g. the canonical-text key discovered after
   interning — that get [Done] entries of their own.  Evictions fire
   [on_evict] once each, outside the shard locks. *)
let resolve t ~key ?(aliases = []) ~store value =
  let evicted = ref 0 in
  let followers =
    with_shard t key @@ fun s ->
    let fs = take_pending s key in
    if store then evicted := !evicted + insert_done t s key value;
    fs
  in
  if store then
    List.iter
      (fun alias ->
         if alias <> key then
           with_shard t alias @@ fun s ->
           (* never clobber another leader's Pending: its followers
              would be orphaned *)
           match Hashtbl.find_opt s.table alias with
           | Some (Pending _) -> ()
           | Some (Done _) | None ->
             evicted := !evicted + insert_done t s alias value)
      aliases;
  for _ = 1 to !evicted do t.on_evict () done;
  followers

(* The leader cannot produce a value (rejected, crashed, aborted).
   Drops the [Pending] entry and returns the followers so the caller
   can answer them with whatever the failure reply is. *)
let abandon t ~key =
  with_shard t key @@ fun s -> take_pending s key

(* Done entries across all shards — for gauges. *)
let length t =
  Array.fold_left
    (fun acc s ->
       Mutex.lock s.lock;
       let n = s.done_count in
       Mutex.unlock s.lock;
       acc + n)
    0 t.shards
