(* The [bddmin serve] daemon core.

   Shape: one accept domain, one reader domain per connection, one
   shared [Exec.Pool] of compute workers scheduled {e earliest deadline
   first} — a job's pool priority is its request's absolute arrival-time
   deadline (no-deadline requests get arrival + a fixed horizon, which
   keeps them FIFO among themselves), plus a small per-connection
   fairness penalty proportional to how many jobs that connection
   already has queued, so one chatty client cannot starve the rest.

   The reader answers ping/metrics/dump/shutdown/session_close inline
   and pushes everything else through the admission path:

     1. {e result cache}: a bounded sharded LRU ({!Cache}) keyed on
        op + heuristic + payload text + budget class.  A finished entry
        is replied straight from the reader — no queue, no manager.
        Concurrent identical requests are single-flighted: one leader
        computes, followers are parked as reply closures and answered
        when the leader resolves.  Handlers additionally look the
        {e canonical} Store text up after interning (and store results
        under it), so differently-formatted uploads of the same
        function share entries.
     2. {e backpressure}: admission is bounded ([?queue_cap]); a
        request arriving at the bound is refused with a
        [busy {retry_after_ms}] reply (estimated from the backlog and a
        recent-execution-time EMA) instead of growing the queue.
     3. {e batching}: small sessionless minimize payloads are coalesced
        into a batch buffer drained by one pool job that runs the whole
        batch — sorted by deadline — on one shared manager (re-created
        every few items), amortizing the per-request [new_man] +
        re-intern cost.  Failures stay per-item: each batch member has
        its own budget, handler try/catch and reply.
     4. everything else is submitted directly with its EDF priority.

   Sessions ({!Session}) pin a warm manager to a connection:
   [session_open] interns the uploaded Store once, and subsequent
   minimize calls referencing the session skip setup entirely (they
   also skip the result cache — the warm path is the point).  Sessions
   are LRU-evicted under [?max_sessions] and torn down on disconnect.

   Replies are frames on the same socket, serialized by a per-connection
   write lock; a connection with several outstanding compute requests
   receives replies in completion order, matched by [id].  Shutdown
   aborts the queued (not yet running) jobs — including batch buffers
   and cache followers — with [dnf cancelled]/[busy] replies so no
   client hangs, drains the running ones, then joins every reader.

   Telemetry: every request is metered into the typed [Obs.Metrics]
   registry (counters by op and status, cache/session/batch event
   counters, log2 latency and phase histograms, gauges refreshed at
   scrape time) and appended to an [Obs.Flight] ring of recent request
   records; requests carrying a client trace id flow through
   [Obs.Trace] spans when the server was started with a sink. *)

let src = Logs.Src.create "bddmin.serve" ~doc:"request scheduler daemon"

module Log = (val Logs.src_log src)

type listen = Tcp of int | Unix_path of string

(* ----- metric families -----

   Registered (idempotently) at every [start] rather than at module
   init, so a test calling [Obs.Metrics.reset] between servers gets a
   freshly scrapable registry instead of orphaned handles. *)

module M = struct
  type t = {
    requests : Obs.Metrics.counter Obs.Metrics.family;
    malformed : Obs.Metrics.counter;
    replies : Obs.Metrics.counter Obs.Metrics.family;
    latency : Obs.Metrics.histogram Obs.Metrics.family;
    phase : Obs.Metrics.histogram Obs.Metrics.family;
    conn_errors : Obs.Metrics.counter Obs.Metrics.family;
    cache_events : Obs.Metrics.counter Obs.Metrics.family;
    session_events : Obs.Metrics.counter Obs.Metrics.family;
    batches : Obs.Metrics.counter;
    batched : Obs.Metrics.counter;
    queue_depth : Obs.Metrics.gauge;
    admission_queue : Obs.Metrics.gauge;
    cache_entries : Obs.Metrics.gauge;
    sessions_live : Obs.Metrics.gauge;
    workers_busy : Obs.Metrics.gauge;
    workers_idle : Obs.Metrics.gauge;
    workers : Obs.Metrics.gauge;
    in_flight : Obs.Metrics.gauge;
    connections : Obs.Metrics.gauge;
    manager_live : Obs.Metrics.gauge Obs.Metrics.family;
    uptime : Obs.Metrics.gauge;
    trace_dropped : Obs.Metrics.gauge;
    flight_dropped : Obs.Metrics.gauge;
  }

  let register () =
    let counter = Obs.Metrics.counter and gauge = Obs.Metrics.gauge in
    {
      requests =
        counter ~help:"Requests parsed, by operation" ~labels:[ "op" ]
          "bddmin_serve_requests_total";
      malformed =
        Obs.Metrics.handle
          (counter ~help:"Frames that failed request parsing"
             "bddmin_serve_malformed_total");
      replies =
        counter ~help:"Replies written, by operation and status"
          ~labels:[ "op"; "status" ] "bddmin_serve_replies_total";
      latency =
        Obs.Metrics.histogram
          ~help:"Worker-side request latency in microseconds (log2 buckets)"
          ~labels:[ "op" ] "bddmin_serve_latency_us";
      phase =
        Obs.Metrics.histogram
          ~help:
            "Per-phase request time in microseconds: queue wait, handler \
             execution, reply serialization + write"
          ~labels:[ "phase" ] "bddmin_serve_phase_us";
      conn_errors =
        counter ~help:"Connection-level failures, by kind" ~labels:[ "kind" ]
          "bddmin_serve_conn_errors_total";
      cache_events =
        counter
          ~help:
            "Result-cache events: hit (served from the reader), \
             canonical_hit (matched after interning), miss, collapsed \
             (joined an in-flight identical request), store, evicted"
          ~labels:[ "event" ] "bddmin_serve_cache_events_total";
      session_events =
        counter ~help:"Session lifecycle events: opened, closed, evicted"
          ~labels:[ "event" ] "bddmin_serve_session_events_total";
      batches =
        Obs.Metrics.handle
          (counter ~help:"Coalesced batches executed"
             "bddmin_serve_batches_total");
      batched =
        Obs.Metrics.handle
          (counter ~help:"Requests that ran inside a coalesced batch"
             "bddmin_serve_batched_requests_total");
      queue_depth =
        Obs.Metrics.handle
          (gauge ~help:"Compute jobs queued but not yet running"
             "bddmin_serve_queue_depth");
      admission_queue =
        Obs.Metrics.handle
          (gauge
             ~help:
               "Admitted compute requests not yet started (bounded by \
                --queue-cap)"
             "bddmin_serve_admission_queue");
      cache_entries =
        Obs.Metrics.handle
          (gauge ~help:"Finished entries resident in the result cache"
             "bddmin_serve_cache_entries");
      sessions_live =
        Obs.Metrics.handle
          (gauge ~help:"Open warm-manager sessions" "bddmin_serve_sessions");
      workers_busy =
        Obs.Metrics.handle
          (gauge ~help:"Pool workers currently executing a job"
             "bddmin_serve_workers_busy");
      workers_idle =
        Obs.Metrics.handle
          (gauge ~help:"Pool workers parked waiting for work"
             "bddmin_serve_workers_idle");
      workers =
        Obs.Metrics.handle
          (gauge ~help:"Pool worker domains" "bddmin_serve_workers");
      in_flight =
        Obs.Metrics.handle
          (gauge ~help:"Compute requests accepted and not yet replied"
             "bddmin_serve_in_flight");
      connections =
        Obs.Metrics.handle
          (gauge ~help:"Open client connections" "bddmin_serve_connections");
      manager_live =
        gauge
          ~help:
            "Live BDD nodes in the most recently completed request's \
             manager, by operation"
          ~labels:[ "op" ] "bddmin_serve_manager_live_nodes";
      uptime =
        Obs.Metrics.handle
          (gauge ~help:"Seconds since the server started"
             "bddmin_serve_uptime_seconds");
      trace_dropped =
        Obs.Metrics.handle
          (gauge ~help:"Trace events dropped by memory-sink rings"
             "bddmin_obs_trace_dropped_events");
      flight_dropped =
        Obs.Metrics.handle
          (gauge ~help:"Flight-recorder records evicted from the ring"
             "bddmin_serve_flight_dropped_records");
    }
end

type conn = {
  id : int;  (* server-unique; owns this connection's sessions *)
  fd : Unix.file_descr;
  wlock : Mutex.t;
  cancel : Exec.Cancel.t;
  peer : string;
  queued : int Atomic.t;  (* this connection's admitted-not-started jobs *)
  mutable refs : int;  (* reader + in-flight jobs; fd closes at 0 *)
}

(* An admitted compute request, on its way through queue / batch buffer
   to a worker.  [p_key] is the cache key this request {e leads} (it
   owes the cache a resolve or abandon); [None] when caching is off,
   the op is uncacheable, or the request joined another leader. *)
type pending = {
  p_req : Protocol.request;
  p_conn : conn;
  p_arrival : int64;
  p_bytes : int;
  p_key : string option;
  p_prio : int64;
}

type t = {
  listen_fd : Unix.file_descr;
  address : string;
  port : int option;  (** bound TCP port, for [Tcp 0] callers *)
  unix_path : string option;
  pool : Exec.Pool.t;
  workers : int;
  sessions : Session.t;
  cache : Cache.t option;
  queue_cap : int;  (* 0 = unbounded *)
  batch_threshold : int;  (* payload bytes; 0 disables batching *)
  default_repr : Bdd.repr;  (* for requests without a "repr" field *)
  stop_flag : bool Atomic.t;
  in_flight : int Atomic.t;
  admitted : int Atomic.t;  (* enqueued (incl. batch buffer), not started *)
  exec_ema_us : int Atomic.t;  (* recent handler time, for retry_after *)
  conn_count : int Atomic.t;
  conn_seq : int Atomic.t;
  started_ns : int64;
  m : M.t;
  flight : Obs.Flight.t;
  flight_dump : string option;
  trace_sink : Obs.Trace.sink option;
  metrics_address : string option;
  metrics_port : int option;
  metrics_unix_path : string option;
  batch_lock : Mutex.t;
  mutable batch_buf : pending list;
  mutable batch_scheduled : bool;
  lock : Mutex.t;
  finished : Condition.t;
  mutable accept_domain : unit Domain.t option;
  mutable metrics_domain : unit Domain.t option;
  mutable is_finished : bool;
}

(* ----- connection refcounting ----- *)

let conn_retain conn =
  Mutex.lock conn.wlock;
  conn.refs <- conn.refs + 1;
  Mutex.unlock conn.wlock

let conn_release conn =
  Mutex.lock conn.wlock;
  conn.refs <- conn.refs - 1;
  let close = conn.refs = 0 in
  Mutex.unlock conn.wlock;
  if close then try Unix.close conn.fd with Unix.Unix_error _ -> ()

let conn_send_payload conn payload =
  Mutex.lock conn.wlock;
  (if conn.refs > 0 then
     try Protocol.write_frame conn.fd payload
     with Unix.Unix_error _ | Invalid_argument _ -> ());
  Mutex.unlock conn.wlock

let conn_send conn json = conn_send_payload conn (Json.print json)

(* ----- timing helpers ----- *)

let now_ns = Obs.Clock.now_ns

let us_since t0 =
  Int64.to_int (Int64.div (Int64.sub (now_ns ()) t0) 1000L)

(* ----- EDF priorities ----- *)

(* Requests without a deadline schedule as "arrival + horizon": still
   strictly after anything with a real deadline inside the horizon, and
   FIFO among themselves. *)
let default_horizon_ns = 60_000_000_000L

(* Per-connection fairness: each job a connection already has waiting
   pushes its next one this much later, so interleaved clients with
   equal deadlines alternate instead of draining one connection first.
   Small enough (2 ms) never to reorder deadlines that differ by a
   scheduling-relevant amount. *)
let fairness_quantum_ns = 2_000_000L

let priority_of conn ~arrival_ns (b : Protocol.budget_spec) =
  let deadline =
    match b.deadline_ns with
    | Some d -> d
    | None -> Int64.add arrival_ns default_horizon_ns
  in
  Int64.add deadline
    (Int64.mul (Int64.of_int (Atomic.get conn.queued)) fairness_quantum_ns)

(* ----- cache keys ----- *)

(* Budgets enter the cache key as a class, not as raw values: the
   absolute deadline differs between otherwise identical requests, so
   the requested timeout is bucketed by log2 — a 900 ms and a 1000 ms
   request share an entry, a 10 ms and a 10 s one don't. *)
let budget_class (b : Protocol.budget_spec) =
  let opt = function None -> "-" | Some n -> string_of_int n in
  let tclass =
    match b.timeout_ms with
    | None -> "-"
    | Some ms when ms <= 0 -> "0"
    | Some ms ->
      let rec lg n acc = if n <= 1 then acc else lg (n lsr 1) (acc + 1) in
      string_of_int (lg ms 0)
  in
  Printf.sprintf "n%s/s%s/t%s" (opt b.max_nodes) (opt b.max_steps) tclass

let key_of ~kind ~extra ~bclass ~payload =
  String.concat "\x00" [ kind; extra; bclass; payload ]

let machine_key = function
  | Protocol.Bench name -> "bench:" ^ name
  | Protocol.Blif_text text -> "blif:" ^ text

(* The raw-payload cache key, computed at admission (before any
   interning).  Session ops and session-backed minimizes are never
   cached — the warm-manager path is the point of a session.
   [default_repr] is the server's; a chain-reduced run keys separately
   because its minimize replies carry the extra [chain_size] field. *)
let cache_key_of ~default_repr (req : Protocol.request) =
  let bclass =
    let b = budget_class req.budget in
    match Option.value req.Protocol.repr ~default:default_repr with
    | `Bdd -> b
    | `Cbdd -> b ^ "/cbdd"
  in
  match req.op with
  | Protocol.Minimize { source = Protocol.Store_text text; heuristic } ->
    Some (key_of ~kind:"minimize" ~extra:heuristic ~bclass ~payload:text)
  | Protocol.Minimize { source = Protocol.Pla_text text; heuristic } ->
    Some (key_of ~kind:"minimize-pla" ~extra:heuristic ~bclass ~payload:text)
  | Protocol.Reach m ->
    Some (key_of ~kind:"reach" ~extra:"" ~bclass ~payload:(machine_key m))
  | Protocol.Equiv (a, b) ->
    Some
      (key_of ~kind:"equiv" ~extra:(machine_key a) ~bclass
         ~payload:(machine_key b))
  | Protocol.Minimize { source = Protocol.Session_ref _; _ }
  | Protocol.Session_open _ | Protocol.Session_close _ | Protocol.Ping
  | Protocol.Metrics | Protocol.Dump | Protocol.Shutdown ->
    None

(* Cached values are reply bodies with the per-requester fields
   stripped; [with_id] puts a requester's id back on the way out. *)
let strip_for_cache = function
  | Json.Obj kvs ->
    Json.Obj (List.filter (fun (k, _) -> k <> "id" && k <> "telemetry") kvs)
  | other -> other

let with_id id = function
  | Json.Obj kvs -> Json.Obj (("id", Json.int id) :: kvs)
  | other -> other

(* ----- per-request budget ----- *)

(* Raised (and mapped to a [dnf time] reply) when the deadline passed
   while the request sat in the queue — the job dies without touching a
   manager. *)
let make_budget conn (b : Protocol.budget_spec) =
  let timeout_s =
    Option.map
      (fun deadline ->
         let rem =
           Int64.to_float (Int64.sub deadline (now_ns ())) /. 1e9
         in
         if rem <= 0.0 then
           raise (Bdd.Budget_exhausted (Bdd.Budget.Time { seconds = 0.0 }));
         rem)
      b.deadline_ns
  in
  Bdd.Budget.create ?max_nodes:b.max_nodes ?max_steps:b.max_steps ?timeout_s
    ~cancelled:(fun () -> Exec.Cancel.cancelled conn.cancel)
    ()

(* ----- per-request execution telemetry -----

   Handlers deposit what only they can see — the manager's footprint,
   the canonical cache key discovered after interning, and (under
   [explain]) the engine stats delta and budget consumption — into this
   accumulator; [run_item] owns the phase clocks. *)

type texec = {
  mutable live_nodes : int;
  mutable engine : (string * Json.t) list;
  mutable budget_used : (string * Json.t) list;
  mutable canonical_key : string option;
  mutable cache_note : string option;  (* "canonical-hit" etc, for explain *)
}

let stats_fields (d : Bdd.Stats.t) =
  Bdd.Stats.
    [ ("vars", Json.int d.vars);
      ("live_nodes", Json.int d.live_nodes);
      ("peak_live_nodes", Json.int d.peak_live_nodes);
      ("interned", Json.int d.interned_total);
      ("cache_lookups", Json.int d.cache_lookups);
      ("cache_hits", Json.int d.cache_hits);
      ("cache_hit_rate", Json.Num (Bdd.Stats.hit_rate d));
      ("cache_stores", Json.int d.cache_stores);
      ("cache_evictions", Json.int d.cache_evictions);
      ("ite_recursions", Json.int d.ite_recursions);
      ("and_recursions", Json.int d.and_recursions);
      ("xor_recursions", Json.int d.xor_recursions);
      ("constrain_recursions", Json.int d.constrain_recursions);
      ("restrict_recursions", Json.int d.restrict_recursions);
      ("quantify_recursions", Json.int d.quantify_recursions);
      ("and_exists_recursions", Json.int d.and_exists_recursions);
      ("gc_runs", Json.int d.gc_runs);
      ("gc_reclaimed", Json.int d.gc_reclaimed) ]

(* Bracket a handler's compute on one manager: take the "before"
   snapshot now, and on the way out — also when the budget fires —
   deposit the footprint and, under [explain], the delta and the steps
   consumed.  A dnf reply thus still explains the work done so far. *)
let with_engine_telemetry tx ~explain man budget f =
  let before = Bdd.snapshot man in
  let finish () =
    let after = Bdd.snapshot man in
    tx.live_nodes <- after.Bdd.Stats.live_nodes;
    if explain then begin
      tx.engine <- stats_fields (Bdd.Stats.delta ~before ~after);
      tx.budget_used <- [ ("steps", Json.int (Bdd.Budget.steps budget)) ]
    end
  in
  Fun.protect ~finally:finish f

(* ----- op handlers (run on pool workers) ----- *)

let load_ispec man = function
  | Protocol.Store_text text -> begin
      match Bdd.Store.load man text with
      | Error msg -> Error ("bad bdd payload: " ^ msg)
      | Ok roots ->
        (match List.assoc_opt "f" roots with
         | None -> Error "bdd payload has no root named \"f\""
         | Some f ->
           let c = Option.value ~default:(Bdd.one man) (List.assoc_opt "c" roots) in
           Ok (Minimize.Ispec.make ~f ~c))
    end
  | Protocol.Pla_text text -> begin
      match Logic.Pla.parse text with
      | Error msg -> Error ("bad pla payload: " ^ msg)
      | Ok pla ->
        (match Logic.Pla.functions man pla with
         | [] -> Error "pla has no outputs"
         | (_, (f, c)) :: _ -> Ok (Minimize.Ispec.make ~f ~c))
    end
  | Protocol.Session_ref _ ->
    Error "session minimize does not re-intern" (* handled elsewhere *)

let run_heuristic ctx ~heuristic spec =
  if heuristic = "best" then
    Minimize.Registry.best ctx Minimize.Registry.all spec
  else
    match Minimize.Registry.find heuristic with
    | None ->
      let names =
        String.concat ", "
          (Minimize.Registry.names Minimize.Registry.extended)
      in
      invalid_arg
        (Printf.sprintf "unknown heuristic %S (try one of: %s, best)"
           heuristic names)
    | Some entry -> (heuristic, Minimize.Registry.run entry ctx spec)

(* [size] and [input_size] are plain-equivalent node counts, so
   verdicts agree between representations; a chain-reduced manager
   additionally reports the physical [chain_size].  Plain replies carry
   no extra field and stay byte-identical to a plain-only server. *)
let minimize_result man ~name ~cover spec =
  Json.Obj
    ([ ("heuristic", Json.Str name);
       ("size", Json.int (Bdd.Metric.plain_equivalent man cover));
       ("input_size",
        Json.int (Bdd.Metric.plain_equivalent man spec.Minimize.Ispec.f)) ]
     @ (match Bdd.repr man with
        | `Bdd -> []
        | `Cbdd -> [ ("chain_size", Json.int (Bdd.Metric.nodes man cover)) ])
     @ [ ("cover", Json.Str (Bdd.Store.save man [ ("g", cover) ])) ])

(* Minimize against a warm session manager.  Owner-checked; the session
   lock serializes manager access across workers (managers have no
   internal locking).  Skips the result cache by design: the warm path
   is what the client asked to measure. *)
let handle_session_minimize srv conn tx ~explain budget_spec ~sid ~heuristic =
  match Session.find srv.sessions ~owner:conn.id sid with
  | None ->
    Error
      (Printf.sprintf
         "unknown session %S (evicted, closed, or not open on this \
          connection)" sid)
  | Some s ->
    Session.with_session s @@ fun man ->
    (match List.assoc_opt "f" s.Session.roots with
     | None -> Error "session has no root named \"f\""
     | Some f ->
       let c =
         Option.value ~default:(Bdd.one man)
           (List.assoc_opt "c" s.Session.roots)
       in
       let spec = Minimize.Ispec.make ~f ~c in
       let budget = make_budget conn budget_spec in
       with_engine_telemetry tx ~explain man budget @@ fun () ->
       let ctx = Minimize.Ctx.make ~budget man in
       let name, cover = run_heuristic ctx ~heuristic spec in
       Ok (minimize_result man ~name ~cover spec))

(* Sessionless minimize.  [?man] is the shared batch manager when this
   request rides in a coalesced batch; otherwise a private one is
   built.  After interning, the canonical Store text of the instance is
   (a) looked up in the cache — a differently-formatted upload of a
   function already served returns without running the minimizer — and
   (b) left in [tx.canonical_key] so the result is stored under both
   the raw and canonical keys. *)
let handle_minimize srv ?man ~repr conn tx ~explain budget_spec ~source
    ~heuristic =
  match source with
  | Protocol.Session_ref sid ->
    handle_session_minimize srv conn tx ~explain budget_spec ~sid ~heuristic
  | Protocol.Store_text _ | Protocol.Pla_text _ ->
    (* A batch's shared manager is only reusable when its representation
       matches the request's; a deviant request gets a private one. *)
    let man =
      match man with
      | Some m when Bdd.repr m = repr -> m
      | Some _ | None -> Bdd.create ~repr ()
    in
    (match load_ispec man source with
     | Error msg -> Error msg
     | Ok spec ->
       let canonical_value =
         match srv.cache with
         | None -> None
         | Some cache ->
           let canonical =
             Bdd.Store.save man
               [ ("f", spec.Minimize.Ispec.f); ("c", spec.Minimize.Ispec.c) ]
           in
           let bclass =
             match repr with
             | `Bdd -> budget_class budget_spec
             | `Cbdd -> budget_class budget_spec ^ "/cbdd"
           in
           let ckey =
             key_of ~kind:"minimize@canon" ~extra:heuristic ~bclass
               ~payload:canonical
           in
           tx.canonical_key <- Some ckey;
           Cache.find cache ckey
       in
       (match canonical_value with
        | Some value when Json.mem "result" value <> None ->
          Obs.Metrics.inc
            (Obs.Metrics.labels srv.m.M.cache_events [ "canonical_hit" ]);
          tx.cache_note <- Some "canonical-hit";
          Ok (Option.get (Json.mem "result" value))
        | _ ->
          let budget = make_budget conn budget_spec in
          with_engine_telemetry tx ~explain man budget @@ fun () ->
          let ctx = Minimize.Ctx.make ~budget man in
          let name, cover = run_heuristic ctx ~heuristic spec in
          Ok (minimize_result man ~name ~cover spec)))

let handle_session_open srv conn ~repr ~bdd =
  match Session.open_ srv.sessions ~owner:conn.id ~repr ~text:bdd with
  | Error msg -> Error msg
  | Ok s ->
    Obs.Metrics.inc (Obs.Metrics.labels srv.m.M.session_events [ "opened" ]);
    Ok
      (Json.Obj
         [ ("session", Json.Str s.Session.sid);
           ( "roots",
             Json.Arr (List.map (fun (n, _) -> Json.Str n) s.Session.roots) );
           ("nodes", Json.int s.Session.baseline_nodes) ])

let netlist_of = function
  | Protocol.Bench name -> begin
      match Circuits.Registry.find name with
      | None ->
        let names =
          String.concat ", " (Circuits.Registry.names Circuits.Registry.all)
        in
        Error (Printf.sprintf "unknown bench %S (have: %s)" name names)
      | Some b -> Ok (b.Circuits.Registry.build ())
    end
  | Protocol.Blif_text text -> begin
      match Fsm.Blif.parse text with
      | Error msg -> Error ("bad blif payload: " ^ msg)
      | Ok nl -> Ok nl
    end

let reach_result (stats : Fsm.Reach.stats) =
  Json.Obj
    [ ("iterations", Json.int stats.iterations);
      ("reached_states", Json.Num stats.reached_states);
      ("minimization_calls", Json.int stats.minimization_calls) ]

let handle_reach conn tx ~explain ~id ~repr budget_spec machine =
  match netlist_of machine with
  | Error msg -> Error (Protocol.error_reply ~id msg)
  | Ok nl ->
    let man = Bdd.create ~repr () in
    let budget = make_budget conn budget_spec in
    with_engine_telemetry tx ~explain man budget @@ fun () ->
    let sym = Fsm.Symbolic.of_netlist man nl in
    let _reached, stats =
      Bdd.with_budget man budget (fun () -> Fsm.Reach.reachable sym)
    in
    (match stats.Fsm.Reach.fixpoint with
     | Fsm.Reach.Complete -> Ok (Protocol.ok_reply ~id (reach_result stats))
     | Fsm.Reach.Partial { reason; _ } ->
       Ok (Protocol.partial_reply ~id reason (reach_result stats)))

let handle_equiv conn tx ~explain ~repr budget_spec a b =
  match netlist_of a, netlist_of b with
  | Error msg, _ | _, Error msg -> Error msg
  | Ok na, Ok nb ->
    let man = Bdd.create ~repr () in
    let budget = make_budget conn budget_spec in
    with_engine_telemetry tx ~explain man budget @@ fun () ->
    let verdict =
      Bdd.with_budget man budget (fun () -> Fsm.Equiv.check man na nb)
    in
    (match verdict with
     | Fsm.Equiv.Equivalent stats ->
       Ok
         (Json.Obj
            [ ("equivalent", Json.Bool true);
              ("iterations", Json.int stats.Fsm.Reach.iterations) ])
     | Fsm.Equiv.Not_equivalent { stats; _ } ->
       Ok
         (Json.Obj
            [ ("equivalent", Json.Bool false);
              ("iterations", Json.int stats.Fsm.Reach.iterations) ]))

(* ----- gauges and scraping ----- *)

(* Levels are refreshed on scrape rather than maintained event-by-event:
   the sources of truth (pool queue, atomics, ring counters) are always
   current, so a scrape-time read can never drift the way paired
   inc/dec instrumentation can. *)
let refresh_gauges srv =
  let set = Obs.Metrics.set in
  let m = srv.m in
  let depth = Exec.Pool.queue_depth srv.pool in
  let in_flight = Atomic.get srv.in_flight in
  set m.M.queue_depth depth;
  set m.M.admission_queue (Atomic.get srv.admitted);
  set m.M.in_flight in_flight;
  set m.M.workers_busy (min srv.workers (max 0 (in_flight - depth)));
  set m.M.workers_idle (Exec.Pool.idle_workers srv.pool);
  set m.M.workers srv.workers;
  set m.M.connections (Atomic.get srv.conn_count);
  set m.M.sessions_live (Session.count srv.sessions);
  set m.M.cache_entries
    (match srv.cache with None -> 0 | Some c -> Cache.length c);
  set m.M.uptime
    (Int64.to_int
       (Int64.div (Int64.sub (now_ns ()) srv.started_ns) 1_000_000_000L));
  set m.M.trace_dropped (Obs.Trace.total_dropped ());
  set m.M.flight_dropped (Obs.Flight.dropped srv.flight)

let metrics_exposition srv =
  refresh_gauges srv;
  Obs.Metrics.expose ()

let kind_str = function
  | Obs.Metrics.Counter -> "counter"
  | Obs.Metrics.Gauge -> "gauge"
  | Obs.Metrics.Histogram -> "histogram"

let families_json () =
  Json.Arr
    (List.map
       (fun (f : Obs.Metrics.family_snapshot) ->
          Json.Obj
            [ ("name", Json.Str f.name);
              ("kind", Json.Str (kind_str f.kind));
              ("help", Json.Str f.help);
              ( "series",
                Json.Arr
                  (List.map
                     (fun (s : Obs.Metrics.series) ->
                        Json.Obj
                          (( "labels",
                             Json.Obj
                               (List.map (fun (k, v) -> (k, Json.Str v))
                                  s.labels) )
                           ::
                           (match s.value with
                            | Obs.Metrics.Counter_v v
                            | Obs.Metrics.Gauge_v v ->
                              [ ("value", Json.int v) ]
                            | Obs.Metrics.Histogram_v { buckets; sum; count }
                              ->
                              [ ( "buckets",
                                  Json.Arr
                                    (List.map Json.int
                                       (Array.to_list buckets)) );
                                ("sum", Json.int sum);
                                ("count", Json.int count) ])))
                     f.series) ) ])
       (Obs.Metrics.snapshot ()))

(* Sum a counter family's series, keeping those where [pick labels]
   holds — so the wire metrics op can export flat convenience numbers
   (cache hits, busy replies) without clients parsing the registry. *)
let counter_total ~name ~pick =
  List.fold_left
    (fun acc (f : Obs.Metrics.family_snapshot) ->
       if f.name <> name then acc
       else
         List.fold_left
           (fun acc (s : Obs.Metrics.series) ->
              match s.value with
              | Obs.Metrics.Counter_v v when pick s.labels -> acc + v
              | _ -> acc)
           acc f.series)
    0 (Obs.Metrics.snapshot ())

let cache_event_total event =
  counter_total ~name:"bddmin_serve_cache_events_total"
    ~pick:(fun labels -> List.assoc_opt "event" labels = Some event)

let session_event_total event =
  counter_total ~name:"bddmin_serve_session_events_total"
    ~pick:(fun labels -> List.assoc_opt "event" labels = Some event)

let status_reply_total status =
  counter_total ~name:"bddmin_serve_replies_total"
    ~pick:(fun labels -> List.assoc_opt "status" labels = Some status)

let metrics_json srv =
  let uptime_s =
    Int64.to_float (Int64.sub (now_ns ()) srv.started_ns) /. 1e9
  in
  refresh_gauges srv;
  Json.Obj
    [ ("uptime_s", Json.Num uptime_s);
      ("workers", Json.int srv.workers);
      ("in_flight", Json.int (Atomic.get srv.in_flight));
      ("queue_depth", Json.int (Exec.Pool.queue_depth srv.pool));
      ("admission_queue", Json.int (Atomic.get srv.admitted));
      ("queue_cap", Json.int srv.queue_cap);
      ("workers_idle", Json.int (Exec.Pool.idle_workers srv.pool));
      ("connections", Json.int (Atomic.get srv.conn_count));
      ("busy_replies", Json.int (status_reply_total "busy"));
      ( "cache",
        Json.Obj
          [ ("entries",
             Json.int
               (match srv.cache with None -> 0 | Some c -> Cache.length c));
            ("hits", Json.int (cache_event_total "hit"));
            ("canonical_hits", Json.int (cache_event_total "canonical_hit"));
            ("misses", Json.int (cache_event_total "miss"));
            ("collapsed", Json.int (cache_event_total "collapsed"));
            ("evicted", Json.int (cache_event_total "evicted")) ] );
      ( "sessions",
        Json.Obj
          [ ("live", Json.int (Session.count srv.sessions));
            ("opened", Json.int (session_event_total "opened"));
            ("closed", Json.int (session_event_total "closed"));
            ("evicted", Json.int (session_event_total "evicted")) ] );
      ( "batch",
        Json.Obj
          [ ( "batches",
              Json.int
                (counter_total ~name:"bddmin_serve_batches_total"
                   ~pick:(fun _ -> true)) );
            ( "requests",
              Json.int
                (counter_total ~name:"bddmin_serve_batched_requests_total"
                   ~pick:(fun _ -> true)) ) ] );
      ("trace_dropped", Json.int (Obs.Trace.total_dropped ()));
      ( "flight",
        Json.Obj
          [ ("capacity", Json.int (Obs.Flight.capacity srv.flight));
            ("written", Json.int (Obs.Flight.written srv.flight));
            ("dropped", Json.int (Obs.Flight.dropped srv.flight)) ] );
      ("families", families_json ());
      ("prometheus", Json.Str (Obs.Metrics.expose ())) ]

(* ----- flight recorder ----- *)

let flight_json srv = Obs.Flight.to_json srv.flight

(* Write the ring to the configured dump path (atomically, via rename);
   [None] when no path was configured or the write failed. *)
let dump_flight srv =
  match srv.flight_dump with
  | None -> None
  | Some path -> begin
      match
        let tmp = path ^ ".tmp" in
        let oc = open_out tmp in
        Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () ->
            output_string oc (flight_json srv));
        Sys.rename tmp path
      with
      | () ->
        Log.info (fun k -> k "flight recorder dumped to %s" path);
        Some path
      | exception Sys_error msg ->
        Log.err (fun k -> k "flight dump to %s failed: %s" path msg);
        None
    end

(* ----- request execution ----- *)

let reply_status j =
  match Json.string_field "status" j with Some s -> s | None -> "error"

let trace_id_of (req : Protocol.request) =
  match req.trace with Some t -> t.Protocol.trace_id | None -> ""

let sampled (req : Protocol.request) =
  match req.trace with Some t -> t.Protocol.sampled | None -> true

(* Run [f span] under the server's trace sink (if any and the request
   is sampled) inside a [serve.request] span carrying the request and
   client trace ids; otherwise under an inert span. *)
let in_request_span srv (req : Protocol.request) f =
  let attrs =
    [ ("id", Obs.Trace.Int req.id);
      ("op", Obs.Trace.Str (Protocol.op_label req.op)) ]
    @
    match req.trace with
    | Some t -> [ ("trace_id", Obs.Trace.Str t.Protocol.trace_id) ]
    | None -> []
  in
  match srv.trace_sink with
  | Some sink when sampled req ->
    Obs.Trace.with_sink sink (fun () ->
        Obs.Trace.with_span "serve.request" ~attrs f)
  | _ -> Obs.Trace.with_span "serve.request" ~attrs f

(* Serve a cached value: re-key it with the requester's id, note the
   provenance in telemetry under [explain], meter and flight-record.
   [via] is "hit" (found finished at admission) or "collapsed" (parked
   behind a leader and answered at its resolve). *)
let send_cached srv conn (req : Protocol.request) ~via value =
  let reply = with_id req.id value in
  let payload =
    if not req.explain then Json.print reply
    else
      Json.print
        (Protocol.with_telemetry reply (Json.Obj [ ("cache", Json.Str via) ]))
  in
  let op = Protocol.op_label req.op in
  let status = reply_status reply in
  Obs.Flight.record srv.flight ~trace_id:(trace_id_of req)
    ~sizes:[ ("reply_bytes", String.length payload) ]
    ~id:req.id ~op ~outcome:status ();
  Obs.Metrics.inc (Obs.Metrics.labels srv.m.M.replies [ op; status ]);
  conn_send_payload conn payload

(* ----- pending-item accounting -----

   Every admitted item holds: one connection ref, one [in_flight]
   slot (both taken at admission, released by [finish_item]) and one
   [admitted] slot (released by [start_item] when a worker picks the
   item up, or by the abort path). *)

let start_item srv p =
  Atomic.decr srv.admitted;
  Atomic.decr p.p_conn.queued

let finish_item srv p =
  Atomic.decr srv.in_flight;
  conn_release p.p_conn

(* Answer the followers parked behind [p]'s cache key (if it leads one)
   with [reply]'s body.  Used by the failure paths; the success path
   goes through [Cache.resolve] in [run_item] instead. *)
let abandon_followers srv p reply =
  match p.p_key, srv.cache with
  | Some key, Some cache ->
    let value = strip_for_cache reply in
    List.iter (fun f -> f value) (Cache.abandon cache ~key)
  | _ -> ()

(* An item discarded without running (pool abort at shutdown, or the
   pool closed before submit): answer the client and any followers with
   [dnf cancelled], settle the accounting. *)
let abort_item srv ~started p =
  let req = p.p_req in
  let reply = Protocol.dnf_reply ~id:req.Protocol.id Bdd.Budget.Cancelled in
  Obs.Metrics.inc
    (Obs.Metrics.labels srv.m.M.replies
       [ Protocol.op_label req.Protocol.op; "dnf" ]);
  Obs.Flight.record srv.flight ~trace_id:(trace_id_of req)
    ~id:req.Protocol.id
    ~op:(Protocol.op_label req.Protocol.op)
    ~outcome:"dnf" ();
  conn_send p.p_conn reply;
  abandon_followers srv p reply;
  if not started then start_item srv p;
  finish_item srv p

(* The worker-side execution of one admitted item.  [?man] is the
   shared manager when the item rides in a batch. *)
let run_item srv ?man (p : pending) =
  let conn = p.p_conn and req = p.p_req in
  Fun.protect ~finally:(fun () -> finish_item srv p) @@ fun () ->
  in_request_span srv req @@ fun span ->
  let t_start = now_ns () in
  let queue_us =
    Int64.to_int (Int64.div (Int64.sub t_start p.p_arrival) 1000L)
  in
  let id = req.id in
  let op = Protocol.op_label req.op in
  let tx =
    { live_nodes = 0; engine = []; budget_used = [];
      canonical_key = None; cache_note = None }
  in
  let explain = req.explain in
  let repr = Option.value req.Protocol.repr ~default:srv.default_repr in
  let reply =
    try
      match req.op with
      | Protocol.Minimize { source; heuristic } -> begin
          match
            handle_minimize srv ?man ~repr conn tx ~explain req.budget ~source
              ~heuristic
          with
          | Ok result -> Protocol.ok_reply ~id result
          | Error msg -> Protocol.error_reply ~id msg
        end
      | Protocol.Reach machine -> begin
          match handle_reach conn tx ~explain ~id ~repr req.budget machine with
          | Ok reply -> reply
          | Error reply -> reply
        end
      | Protocol.Equiv (a, b) -> begin
          match handle_equiv conn tx ~explain ~repr req.budget a b with
          | Ok result -> Protocol.ok_reply ~id result
          | Error msg -> Protocol.error_reply ~id msg
        end
      | Protocol.Session_open { bdd } -> begin
          match handle_session_open srv conn ~repr ~bdd with
          | Ok result -> Protocol.ok_reply ~id result
          | Error msg -> Protocol.error_reply ~id msg
        end
      | Protocol.Session_close _ | Protocol.Ping | Protocol.Metrics
      | Protocol.Dump | Protocol.Shutdown ->
        assert false (* handled inline by the reader *)
    with
    | Bdd.Budget_exhausted reason -> Protocol.dnf_reply ~id reason
    | e -> Protocol.error_reply ~id (Printexc.to_string e)
  in
  let exec_us = us_since t_start in
  let status = reply_status reply in
  (* feed the retry_after estimator (racy read-modify-write is fine for
     an EMA used as a hint) *)
  let old_ema = Atomic.get srv.exec_ema_us in
  Atomic.set srv.exec_ema_us
    (if old_ema = 0 then exec_us else ((7 * old_ema) + exec_us) / 8);
  (* resolve the cache entry this item leads: store ok results, answer
     followers with whatever the outcome was either way *)
  (match p.p_key, srv.cache with
   | Some key, Some cache ->
     let value = strip_for_cache reply in
     let store = status = "ok" in
     if store then
       Obs.Metrics.inc (Obs.Metrics.labels srv.m.M.cache_events [ "store" ]);
     let aliases = Option.to_list tx.canonical_key in
     let followers = Cache.resolve cache ~key ~aliases ~store value in
     List.iter (fun f -> f value) followers
   | _ -> ());
  (* [write_us] is the cost of serializing the reply body: it has to be
     measured before it is shipped inside the bytes it describes, so
     the subsequent socket write can only appear in the flight record
     and the phase histogram, never in the reply itself.  Under
     [explain] the plain body is printed once to take the measurement
     and once more with the telemetry attached. *)
  let t_ser = now_ns () in
  let plain = Json.print reply in
  let write_us = us_since t_ser in
  let payload =
    if not explain then plain
    else
      Json.print
        (Protocol.with_telemetry reply
           (Json.Obj
              ([ ("queue_us", Json.int queue_us);
                 ("exec_us", Json.int exec_us);
                 ("write_us", Json.int write_us) ]
               @ (match tx.cache_note with
                  | None -> []
                  | Some note -> [ ("cache", Json.Str note) ])
               @ (match tx.budget_used with
                  | [] -> []
                  | b -> [ ("budget", Json.Obj b) ])
               @
               match tx.engine with
               | [] -> []
               | e -> [ ("engine", Json.Obj e) ])))
  in
  (* The flight record goes into the ring {e before} the reply leaves:
     a client holding a reply must find its request in a subsequent
     [dump], so the record cannot wait for the socket write (whose
     duration therefore only reaches the phase histogram below). *)
  Obs.Flight.record srv.flight ~trace_id:(trace_id_of req)
    ~sizes:
      [ ("req_bytes", p.p_bytes); ("reply_bytes", String.length payload) ]
    ~phases_us:[ ("queue", queue_us); ("exec", exec_us); ("write", write_us) ]
    ~id ~op ~outcome:status ();
  let t_send = now_ns () in
  conn_send_payload conn payload;
  let send_us = us_since t_send in
  let total_us = us_since t_start in
  Obs.Trace.add span "queue_us" (Obs.Trace.Int queue_us);
  Obs.Trace.add span "exec_us" (Obs.Trace.Int exec_us);
  Obs.Trace.add span "write_us" (Obs.Trace.Int write_us);
  Obs.Trace.add span "status" (Obs.Trace.Str status);
  let m = srv.m in
  Obs.Metrics.observe (Obs.Metrics.labels m.M.latency [ op ]) total_us;
  Obs.Metrics.observe (Obs.Metrics.labels m.M.phase [ "queue" ]) queue_us;
  Obs.Metrics.observe (Obs.Metrics.labels m.M.phase [ "exec" ]) exec_us;
  Obs.Metrics.observe
    (Obs.Metrics.labels m.M.phase [ "write" ])
    (write_us + send_us);
  Obs.Metrics.inc (Obs.Metrics.labels m.M.replies [ op; status ]);
  Obs.Metrics.set (Obs.Metrics.labels m.M.manager_live [ op ]) tx.live_nodes;
  if status = "error" then begin
    Log.debug (fun k -> k "request %d (%s) from %s errored" id op conn.peer);
    ignore (dump_flight srv)
  end

(* ----- batching -----

   Small sessionless minimizes accumulate in a buffer; the first one in
   an empty buffer also submits a single drainer job (at that item's
   priority).  When a worker runs the drainer it takes the whole
   buffer, sorts it by deadline — EDF continues inside the batch — and
   runs the items sequentially on one shared manager, re-created every
   [batch_chunk] items so a long batch cannot bloat one unique table.
   Items arriving while a drainer runs find the buffer unscheduled
   again and submit the next drainer: batch boundaries are simply
   "whatever queued up while the previous batch ran". *)

let batch_chunk = 16

let take_batch srv =
  Mutex.lock srv.batch_lock;
  let items = srv.batch_buf in
  srv.batch_buf <- [];
  srv.batch_scheduled <- false;
  Mutex.unlock srv.batch_lock;
  List.sort (fun a b -> Int64.compare a.p_prio b.p_prio) items

(* Split [xs] into chunks of at most [k], preserving order. *)
let chunks_of k xs =
  let rec take n acc = function
    | rest when n = 0 -> (List.rev acc, rest)
    | [] -> (List.rev acc, [])
    | x :: rest -> take (n - 1) (x :: acc) rest
  in
  let rec go = function
    | [] -> []
    | xs ->
      let c, rest = take k [] xs in
      c :: go rest
  in
  go xs

(* One chunk runs on one fresh manager — the same manager-recycling
   boundary the sequential drainer used, so a long batch still cannot
   bloat one unique table. *)
let run_chunk srv items =
  (* Batch members requesting the non-default representation fall back
     to a private manager inside [handle_minimize]. *)
  let man = Bdd.create ~repr:srv.default_repr () in
  List.iter
    (fun p ->
       start_item srv p;
       run_item srv ~man p)
    items

let abort_chunk srv items = List.iter (abort_item srv ~started:false) items

let run_batch srv () =
  match take_batch srv with
  | [] -> ()
  | items ->
    Obs.Metrics.inc srv.m.M.batches;
    Obs.Metrics.add srv.m.M.batched (List.length items);
    match chunks_of batch_chunk items with
    | [] -> ()
    | [ only ] -> run_chunk srv only
    | first :: rest ->
      (* A large batch splits at the manager-recycling boundary and the
         surplus chunks ride to currently idle workers instead of
         serializing behind this drainer.  Deadline order is preserved
         within every chunk and each spread chunk is submitted at its
         earliest deadline, so EDF still governs it against the rest of
         the queue; per-item budgets and failure isolation are untouched
         ([run_item] handles each member separately either way). *)
      let idle = Exec.Pool.idle_workers srv.pool in
      let spread, inline =
        let rec split n = function
          | [] -> ([], [])
          | cs when n = 0 -> ([], cs)
          | c :: cs ->
            let s, i = split (n - 1) cs in
            (c :: s, i)
        in
        split (max 0 idle) rest
      in
      let inline = ref inline in
      List.iter
        (fun chunk ->
           match chunk with
           | [] -> ()
           | head :: _ -> (
             try
               Exec.Pool.submit srv.pool ~priority:head.p_prio
                 ~on_abort:(fun () -> abort_chunk srv chunk)
                 (fun () -> run_chunk srv chunk)
             with Invalid_argument _ ->
               (* pool shutting down: keep the chunk on this drainer *)
               inline := !inline @ [ chunk ]))
        spread;
      run_chunk srv first;
      List.iter (run_chunk srv) !inline

let abort_batch srv = List.iter (abort_item srv ~started:false) (take_batch srv)

let enqueue_batch srv p =
  Mutex.lock srv.batch_lock;
  srv.batch_buf <- p :: srv.batch_buf;
  let need_drainer = not srv.batch_scheduled in
  if need_drainer then srv.batch_scheduled <- true;
  Mutex.unlock srv.batch_lock;
  if need_drainer then begin
    try
      Exec.Pool.submit srv.pool ~priority:p.p_prio
        ~on_abort:(fun () -> abort_batch srv)
        (fun () -> run_batch srv ())
    with Invalid_argument _ ->
      (* pool already shut down: answer everything buffered *)
      abort_batch srv
  end

(* ----- admission ----- *)

let retry_after_ms srv =
  let backlog = Atomic.get srv.admitted in
  let ema = max 1000 (Atomic.get srv.exec_ema_us) in
  let est_ms = backlog * ema / max 1 srv.workers / 1000 in
  min 5000 (max 10 est_ms)

(* Reserve one admission slot, or refuse.  A CAS loop rather than a
   check-then-increment: readers run on independent domains, and the
   queue-depth bound is a hard invariant ("the gauge never exceeds the
   cap"), not a soft target. *)
let try_admit srv =
  if srv.queue_cap = 0 then begin
    Atomic.incr srv.admitted;
    true
  end
  else
    let rec go () =
      let cur = Atomic.get srv.admitted in
      if cur >= srv.queue_cap then false
      else if Atomic.compare_and_set srv.admitted cur (cur + 1) then true
      else go ()
    in
    go ()

(* Enqueue an admitted item (caller already holds the admission slot,
   the conn ref and the in_flight slot).  Small sessionless minimize
   payloads go to the batch buffer; everything else straight to the
   pool with its EDF priority. *)
let submit_item srv conn ~arrival_ns ~req_bytes ~key (req : Protocol.request) =
  let p =
    { p_req = req; p_conn = conn; p_arrival = arrival_ns;
      p_bytes = req_bytes; p_key = key;
      p_prio = priority_of conn ~arrival_ns req.Protocol.budget }
  in
  Atomic.incr conn.queued;
  match req.Protocol.op with
  | Protocol.Minimize { source = Protocol.Store_text text; _ }
    when srv.batch_threshold > 0
         && String.length text <= srv.batch_threshold ->
    enqueue_batch srv p
  | _ -> begin
      try
        Exec.Pool.submit srv.pool ~priority:p.p_prio
          ~on_abort:(fun () -> abort_item srv ~started:false p)
          (fun () ->
             start_item srv p;
             run_item srv p)
      with Invalid_argument _ -> abort_item srv ~started:false p
    end

(* The reader-side dispatch for compute ops: result cache, then
   backpressure, then single-flight join, then the queue. *)
let dispatch_compute srv conn ~arrival_ns ~req_bytes (req : Protocol.request) =
  let m = srv.m in
  let raw_key =
    match srv.cache with
    | None -> None
    | Some _ -> cache_key_of ~default_repr:srv.default_repr req
  in
  let cached =
    match raw_key, srv.cache with
    | Some key, Some cache -> Cache.find cache key
    | _ -> None
  in
  match cached with
  | Some value ->
    (* finished result: served straight from the reader, no queue *)
    Obs.Metrics.inc (Obs.Metrics.labels m.M.cache_events [ "hit" ]);
    send_cached srv conn req ~via:"hit" value
  | None ->
    if not (try_admit srv) then begin
      (* backpressure: refuse without enqueueing *)
      let retry = retry_after_ms srv in
      Obs.Metrics.inc
        (Obs.Metrics.labels m.M.replies [ Protocol.op_label req.op; "busy" ]);
      Obs.Flight.record srv.flight ~trace_id:(trace_id_of req) ~id:req.id
        ~op:(Protocol.op_label req.op) ~outcome:"busy" ();
      conn_send conn (Protocol.busy_reply ~id:req.id ~retry_after_ms:retry)
    end
    else begin
      (* the item below holds one conn ref + one in_flight slot,
         whether it becomes a follower or a leader *)
      conn_retain conn;
      Atomic.incr srv.in_flight;
      let joined =
        match raw_key, srv.cache with
        | Some key, Some cache ->
          let follower value =
            send_cached srv conn req ~via:"collapsed" value;
            Atomic.decr srv.in_flight;
            conn_release conn
          in
          Some (key, Cache.find_or_join cache key ~follower)
        | _ -> None
      in
      match joined with
      | Some (_, Cache.Hit value) ->
        (* resolved between the probe above and the join: a hit.
           Give the admission slot back — nothing was enqueued. *)
        Obs.Metrics.inc (Obs.Metrics.labels m.M.cache_events [ "hit" ]);
        send_cached srv conn req ~via:"hit" value;
        Atomic.decr srv.admitted;
        Atomic.decr srv.in_flight;
        conn_release conn
      | Some (_, Cache.Joined) ->
        (* parked behind the leader; the follower closure owns the
           ref + in_flight slot, and no queue slot is consumed *)
        Obs.Metrics.inc (Obs.Metrics.labels m.M.cache_events [ "collapsed" ]);
        Atomic.decr srv.admitted
      | Some (key, Cache.Lead) ->
        Obs.Metrics.inc (Obs.Metrics.labels m.M.cache_events [ "miss" ]);
        submit_item srv conn ~arrival_ns ~req_bytes ~key:(Some key) req
      | None -> submit_item srv conn ~arrival_ns ~req_bytes ~key:None req
    end

(* Inline ops complete on the reader domain; they are still metered and
   flight-recorded (with an empty phase list — there is no queue wait or
   compute to attribute). *)
let record_inline srv req ~outcome =
  Obs.Metrics.inc
    (Obs.Metrics.labels srv.m.M.replies
       [ Protocol.op_label req.Protocol.op; outcome ]);
  Obs.Flight.record srv.flight ~trace_id:(trace_id_of req)
    ~id:req.Protocol.id
    ~op:(Protocol.op_label req.Protocol.op)
    ~outcome ()

let reader_loop srv conn =
  let rec loop () =
    match Protocol.read_frame conn.fd with
    | Ok `Eof -> ()
    | Error msg ->
      (* torn frame, oversized prefix, or I/O failure mid-frame *)
      if not (Atomic.get srv.stop_flag) then begin
        Log.warn (fun k -> k "connection %s: %s" conn.peer msg);
        Obs.Metrics.inc
          (Obs.Metrics.labels srv.m.M.conn_errors [ "torn_frame" ])
      end
    | Ok (`Frame payload) ->
      let arrival_ns = now_ns () in
      (match Protocol.parse_request payload with
       | Error msg ->
         Obs.Metrics.inc srv.m.M.malformed;
         Log.info (fun k -> k "connection %s: malformed request: %s" conn.peer msg);
         Obs.Flight.record srv.flight ~id:0 ~op:"malformed" ~outcome:"error"
           ~sizes:[ ("req_bytes", String.length payload) ]
           ();
         conn_send conn (Protocol.error_reply ~id:0 msg)
       | Ok req ->
         Obs.Metrics.inc
           (Obs.Metrics.labels srv.m.M.requests
              [ Protocol.op_label req.op ]);
         (match srv.trace_sink with
          | Some sink when sampled req ->
            Obs.Trace.with_sink sink (fun () ->
                Obs.Trace.instant "serve.recv"
                  ~attrs:
                    [ ("id", Obs.Trace.Int req.id);
                      ("op", Obs.Trace.Str (Protocol.op_label req.op));
                      ("trace_id", Obs.Trace.Str (trace_id_of req)) ])
          | _ -> ());
         (match req.op with
          | Protocol.Ping ->
            conn_send conn
              (Protocol.ok_reply ~id:req.id (Json.Obj [ ("pong", Json.Bool true) ]));
            record_inline srv req ~outcome:"ok"
          | Protocol.Metrics ->
            conn_send conn (Protocol.ok_reply ~id:req.id (metrics_json srv));
            record_inline srv req ~outcome:"ok"
          | Protocol.Dump ->
            let dump =
              match Json.parse (flight_json srv) with
              | Ok j -> j
              | Error _ -> Json.Null (* unreachable: we rendered it *)
            in
            conn_send conn (Protocol.ok_reply ~id:req.id dump);
            record_inline srv req ~outcome:"ok"
          | Protocol.Shutdown ->
            Log.info (fun k -> k "shutdown requested by %s" conn.peer);
            conn_send conn
              (Protocol.ok_reply ~id:req.id
                 (Json.Obj [ ("stopping", Json.Bool true) ]));
            record_inline srv req ~outcome:"ok";
            Atomic.set srv.stop_flag true
          | Protocol.Session_close { sid } ->
            (* a registry removal: cheap enough for the reader *)
            let closed = Session.close srv.sessions ~owner:conn.id sid in
            if closed then
              Obs.Metrics.inc
                (Obs.Metrics.labels srv.m.M.session_events [ "closed" ]);
            conn_send conn
              (Protocol.ok_reply ~id:req.id
                 (Json.Obj [ ("closed", Json.Bool closed) ]));
            record_inline srv req ~outcome:"ok"
          | Protocol.Minimize _ | Protocol.Reach _ | Protocol.Equiv _
          | Protocol.Session_open _ ->
            dispatch_compute srv conn ~arrival_ns
              ~req_bytes:(String.length payload) req));
      if not (Atomic.get srv.stop_flag) then loop ()
      else () (* stop reading; teardown will half-close the socket *)
  in
  (try loop ()
   with e ->
     (* a reader must never die silently: the connection is torn down
        below either way, but the cause goes to the log *)
     Log.err (fun k ->
         k "reader for %s died: %s" conn.peer (Printexc.to_string e));
     Obs.Metrics.inc
       (Obs.Metrics.labels srv.m.M.conn_errors [ "reader_exception" ]));
  (* reader is done: cancel whatever this connection still has in
     flight, drop its sessions, then drop the reader's reference *)
  Log.debug (fun k -> k "connection %s closed" conn.peer);
  Atomic.decr srv.conn_count;
  Exec.Cancel.cancel conn.cancel;
  let dropped = Session.drop_conn srv.sessions ~owner:conn.id in
  if dropped > 0 then
    Obs.Metrics.add
      (Obs.Metrics.labels srv.m.M.session_events [ "closed" ])
      dropped;
  conn_release conn

(* ----- lifecycle ----- *)

let bind_listen = function
  | Tcp port ->
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
    Unix.listen fd 64;
    let bound =
      match Unix.getsockname fd with
      | Unix.ADDR_INET (_, p) -> p
      | _ -> port
    in
    (fd, Printf.sprintf "127.0.0.1:%d" bound, Some bound, None)
  | Unix_path path ->
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind fd (Unix.ADDR_UNIX path);
    Unix.listen fd 64;
    (fd, path, None, Some path)

let peer_string fd =
  match Unix.getpeername fd with
  | Unix.ADDR_INET (ip, port) ->
    Printf.sprintf "%s:%d" (Unix.string_of_inet_addr ip) port
  | Unix.ADDR_UNIX _ -> "unix"
  | exception Unix.Unix_error _ -> "?"

let accept_loop srv =
  let readers = ref [] in
  let conns = ref [] in
  while not (Atomic.get srv.stop_flag) do
    match Unix.select [ srv.listen_fd ] [] [] 0.2 with
    | [], _, _ -> ()
    | _ :: _, _, _ ->
      (match Unix.accept srv.listen_fd with
       | fd, _ ->
         let conn =
           { id = Atomic.fetch_and_add srv.conn_seq 1;
             fd; wlock = Mutex.create (); cancel = Exec.Cancel.create ();
             peer = peer_string fd; queued = Atomic.make 0; refs = 1 }
         in
         Log.debug (fun k -> k "connection %s accepted" conn.peer);
         Atomic.incr srv.conn_count;
         conns := conn :: !conns;
         readers := Domain.spawn (fun () -> reader_loop srv conn) :: !readers
       | exception Unix.Unix_error (e, _, _) ->
         Log.warn (fun k -> k "accept failed: %s" (Unix.error_message e));
         Obs.Metrics.inc
           (Obs.Metrics.labels srv.m.M.conn_errors [ "accept" ]))
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  (try Unix.close srv.listen_fd with Unix.Unix_error _ -> ());
  (match srv.unix_path with
   | Some path -> (try Unix.unlink path with Unix.Unix_error _ -> ())
   | None -> ());
  (* abort the queue (their on_abort replies dnf — including batch
     drainers, which answer their whole buffer), drain running jobs *)
  Exec.Pool.shutdown ~mode:`Abort srv.pool;
  (* belt and braces: a batch buffered after its drainer was aborted *)
  abort_batch srv;
  (* unblock readers stuck in read(2), then join them *)
  List.iter
    (fun conn ->
       try Unix.shutdown conn.fd Unix.SHUTDOWN_ALL
       with Unix.Unix_error _ -> ())
    !conns;
  List.iter Domain.join !readers;
  Log.info (fun k -> k "server on %s stopped" srv.address)

(* ----- metrics HTTP listener -----

   A deliberately tiny HTTP/1.0 responder: one request per connection,
   served serially on the metrics domain.  Scrapes are rare (seconds
   apart) and the exposition is small, so there is nothing to win from
   concurrency here — and a second listener socket keeps scrape traffic
   entirely off the wire-protocol port. *)

let http_request_path data =
  match String.index_opt data '\r' with
  | None -> None
  | Some i -> begin
      match String.split_on_char ' ' (String.sub data 0 i) with
      | [ "GET"; path; _version ] -> Some path
      | _ -> None
    end

let http_respond fd ~status ~content_type body =
  let payload =
    Printf.sprintf
      "HTTP/1.0 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: \
       close\r\n\r\n%s"
      status content_type (String.length body) body
  in
  Protocol.really_write fd (Bytes.of_string payload) 0 (String.length payload)

let metrics_loop srv fd unix_path =
  while not (Atomic.get srv.stop_flag) do
    match Unix.select [ fd ] [] [] 0.2 with
    | [], _, _ -> ()
    | _ :: _, _, _ ->
      (match Unix.accept fd with
       | cfd, _ ->
         (try
            Unix.setsockopt_float cfd Unix.SO_RCVTIMEO 2.0;
            let buf = Bytes.create 4096 in
            let n = try Unix.read cfd buf 0 4096 with Unix.Unix_error _ -> 0 in
            (match http_request_path (Bytes.sub_string buf 0 n) with
             | Some ("/metrics" | "/") ->
               http_respond cfd ~status:"200 OK"
                 ~content_type:"text/plain; version=0.0.4; charset=utf-8"
                 (metrics_exposition srv)
             | Some _ ->
               http_respond cfd ~status:"404 Not Found"
                 ~content_type:"text/plain" "not found\n"
             | None ->
               http_respond cfd ~status:"400 Bad Request"
                 ~content_type:"text/plain" "bad request\n")
          with Unix.Unix_error _ | Invalid_argument _ -> ());
         (try Unix.close cfd with Unix.Unix_error _ -> ())
       | exception Unix.Unix_error (e, _, _) ->
         Log.warn (fun k ->
             k "metrics accept failed: %s" (Unix.error_message e)))
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  (try Unix.close fd with Unix.Unix_error _ -> ());
  match unix_path with
  | Some path -> (try Unix.unlink path with Unix.Unix_error _ -> ())
  | None -> ()

let start ?(workers = Exec.recommended_jobs ()) ?trace ?metrics
    ?(flight_capacity = 256) ?flight_dump ?(queue_cap = 512)
    ?(max_sessions = 64) ?(batch_threshold = 4096) ?(cache_capacity = 1024)
    ?(repr = `Bdd) listen =
  if workers < 1 then invalid_arg "Serve.Server.start: workers must be >= 1";
  if queue_cap < 0 then invalid_arg "Serve.Server.start: queue_cap must be >= 0";
  (* a client vanishing mid-reply must not kill the daemon *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let listen_fd, address, port, unix_path = bind_listen listen in
  let metrics_fd, metrics_address, metrics_port, metrics_unix_path =
    match metrics with
    | None -> (None, None, None, None)
    | Some l ->
      let fd, addr, port, upath = bind_listen l in
      (Some fd, Some addr, port, upath)
  in
  let m = M.register () in
  let cache =
    if cache_capacity <= 0 then None
    else
      Some
        (Cache.create ~capacity:cache_capacity
           ~on_evict:(fun () ->
             Obs.Metrics.inc
               (Obs.Metrics.labels m.M.cache_events [ "evicted" ]))
           ())
  in
  let sessions =
    Session.create ~max_sessions:(max 1 max_sessions)
      ~on_evict:(fun sid ->
        Log.debug (fun k -> k "session %s evicted (LRU)" sid);
        Obs.Metrics.inc
          (Obs.Metrics.labels m.M.session_events [ "evicted" ]))
      ()
  in
  let srv =
    {
      listen_fd;
      address;
      port;
      unix_path;
      pool = Exec.Pool.create ~jobs:workers;
      workers;
      sessions;
      cache;
      queue_cap;
      batch_threshold;
      default_repr = repr;
      stop_flag = Atomic.make false;
      in_flight = Atomic.make 0;
      admitted = Atomic.make 0;
      exec_ema_us = Atomic.make 0;
      conn_count = Atomic.make 0;
      conn_seq = Atomic.make 1;
      started_ns = now_ns ();
      m;
      flight = Obs.Flight.create ~capacity:(max 1 flight_capacity) ();
      flight_dump;
      trace_sink = trace;
      metrics_address;
      metrics_port;
      metrics_unix_path;
      batch_lock = Mutex.create ();
      batch_buf = [];
      batch_scheduled = false;
      lock = Mutex.create ();
      finished = Condition.create ();
      accept_domain = None;
      metrics_domain = None;
      is_finished = false;
    }
  in
  Log.info (fun k ->
      k "serving on %s (%d workers, queue cap %d, batch <= %dB, cache %d, \
         repr %s%s)"
        address workers queue_cap batch_threshold cache_capacity
        (Bdd.repr_label repr)
        (match metrics_address with
         | Some a -> Printf.sprintf ", metrics on %s" a
         | None -> ""));
  srv.accept_domain <- Some (Domain.spawn (fun () -> accept_loop srv));
  (match metrics_fd with
   | Some fd ->
     srv.metrics_domain <-
       Some (Domain.spawn (fun () -> metrics_loop srv fd metrics_unix_path))
   | None -> ());
  srv

let address srv = srv.address
let port srv = srv.port
let metrics_address srv = srv.metrics_address
let metrics_port srv = srv.metrics_port
let in_flight srv = Atomic.get srv.in_flight
let connections srv = Atomic.get srv.conn_count

(* Async-signal-safe stop request: just flips the flag the accept loop
   polls (within ~0.2 s).  Pair with {!wait} to actually tear down. *)
let request_stop srv = Atomic.set srv.stop_flag true
let stopping srv = Atomic.get srv.stop_flag

(* First caller joins the accept and metrics domains (the former joins
   readers and the pool); latecomers block until that join completes. *)
let wait srv =
  Mutex.lock srv.lock;
  (match srv.accept_domain with
   | Some d ->
     srv.accept_domain <- None;
     let md = srv.metrics_domain in
     srv.metrics_domain <- None;
     Mutex.unlock srv.lock;
     Domain.join d;
     Option.iter Domain.join md;
     Mutex.lock srv.lock;
     srv.is_finished <- true;
     Condition.broadcast srv.finished;
     Mutex.unlock srv.lock
   | None ->
     while not srv.is_finished do
       Condition.wait srv.finished srv.lock
     done;
     Mutex.unlock srv.lock)

let stop srv =
  Atomic.set srv.stop_flag true;
  wait srv
