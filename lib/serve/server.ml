(* The [bddmin serve] daemon core.

   Shape: one accept domain, one reader domain per connection, one
   shared [Exec.Pool] of compute workers.  The reader parses frames and
   answers ping/metrics/dump/shutdown inline; minimize/reach/equiv jobs
   go to the pool, each under a fresh private manager (managers are
   domain-local by contract) with a per-request [Bdd.Budget] combining
   the request's limits, its arrival-time deadline and the connection's
   cancellation token — a client that disconnects cancels its in-flight
   work at the next kernel poll.

   Replies are frames on the same socket, serialized by a per-connection
   write lock; a connection with several outstanding compute requests
   receives replies in completion order, matched by [id].  Shutdown
   aborts the queued (not yet running) jobs — their futures' [on_abort]
   writes a [dnf cancelled] reply so no client hangs — drains the
   running ones, then unblocks and joins every reader.

   Telemetry: every request is metered into the typed [Obs.Metrics]
   registry (counters by op and status, log2 latency and phase
   histograms, gauges refreshed at scrape time) and appended to an
   [Obs.Flight] ring of recent request records; requests carrying a
   client trace id flow through [Obs.Trace] spans when the server was
   started with a sink.  The registry is scrapable three ways: the
   [metrics] wire op, an optional plaintext-HTTP listener
   ([?metrics] at {!start}), and {!metrics_exposition}. *)

let src = Logs.Src.create "bddmin.serve" ~doc:"request scheduler daemon"

module Log = (val Logs.src_log src)

type listen = Tcp of int | Unix_path of string

(* ----- metric families -----

   Registered (idempotently) at every [start] rather than at module
   init, so a test calling [Obs.Metrics.reset] between servers gets a
   freshly scrapable registry instead of orphaned handles. *)

module M = struct
  type t = {
    requests : Obs.Metrics.counter Obs.Metrics.family;
    malformed : Obs.Metrics.counter;
    replies : Obs.Metrics.counter Obs.Metrics.family;
    latency : Obs.Metrics.histogram Obs.Metrics.family;
    phase : Obs.Metrics.histogram Obs.Metrics.family;
    conn_errors : Obs.Metrics.counter Obs.Metrics.family;
    queue_depth : Obs.Metrics.gauge;
    workers_busy : Obs.Metrics.gauge;
    workers : Obs.Metrics.gauge;
    in_flight : Obs.Metrics.gauge;
    connections : Obs.Metrics.gauge;
    manager_live : Obs.Metrics.gauge Obs.Metrics.family;
    uptime : Obs.Metrics.gauge;
    trace_dropped : Obs.Metrics.gauge;
    flight_dropped : Obs.Metrics.gauge;
  }

  let register () =
    let counter = Obs.Metrics.counter and gauge = Obs.Metrics.gauge in
    {
      requests =
        counter ~help:"Requests parsed, by operation" ~labels:[ "op" ]
          "bddmin_serve_requests_total";
      malformed =
        Obs.Metrics.handle
          (counter ~help:"Frames that failed request parsing"
             "bddmin_serve_malformed_total");
      replies =
        counter ~help:"Replies written, by operation and status"
          ~labels:[ "op"; "status" ] "bddmin_serve_replies_total";
      latency =
        Obs.Metrics.histogram
          ~help:"Worker-side request latency in microseconds (log2 buckets)"
          ~labels:[ "op" ] "bddmin_serve_latency_us";
      phase =
        Obs.Metrics.histogram
          ~help:
            "Per-phase request time in microseconds: queue wait, handler \
             execution, reply serialization + write"
          ~labels:[ "phase" ] "bddmin_serve_phase_us";
      conn_errors =
        counter ~help:"Connection-level failures, by kind" ~labels:[ "kind" ]
          "bddmin_serve_conn_errors_total";
      queue_depth =
        Obs.Metrics.handle
          (gauge ~help:"Compute jobs queued but not yet running"
             "bddmin_serve_queue_depth");
      workers_busy =
        Obs.Metrics.handle
          (gauge ~help:"Pool workers currently executing a job"
             "bddmin_serve_workers_busy");
      workers =
        Obs.Metrics.handle
          (gauge ~help:"Pool worker domains" "bddmin_serve_workers");
      in_flight =
        Obs.Metrics.handle
          (gauge ~help:"Compute requests accepted and not yet replied"
             "bddmin_serve_in_flight");
      connections =
        Obs.Metrics.handle
          (gauge ~help:"Open client connections" "bddmin_serve_connections");
      manager_live =
        gauge
          ~help:
            "Live BDD nodes in the most recently completed request's \
             manager, by operation"
          ~labels:[ "op" ] "bddmin_serve_manager_live_nodes";
      uptime =
        Obs.Metrics.handle
          (gauge ~help:"Seconds since the server started"
             "bddmin_serve_uptime_seconds");
      trace_dropped =
        Obs.Metrics.handle
          (gauge ~help:"Trace events dropped by memory-sink rings"
             "bddmin_obs_trace_dropped_events");
      flight_dropped =
        Obs.Metrics.handle
          (gauge ~help:"Flight-recorder records evicted from the ring"
             "bddmin_serve_flight_dropped_records");
    }
end

type conn = {
  fd : Unix.file_descr;
  wlock : Mutex.t;
  cancel : Exec.Cancel.t;
  peer : string;
  mutable refs : int;  (* reader + in-flight jobs; fd closes at 0 *)
}

type t = {
  listen_fd : Unix.file_descr;
  address : string;
  port : int option;  (** bound TCP port, for [Tcp 0] callers *)
  unix_path : string option;
  pool : Exec.Pool.t;
  workers : int;
  stop_flag : bool Atomic.t;
  in_flight : int Atomic.t;
  conn_count : int Atomic.t;
  started_ns : int64;
  m : M.t;
  flight : Obs.Flight.t;
  flight_dump : string option;
  trace_sink : Obs.Trace.sink option;
  metrics_address : string option;
  metrics_port : int option;
  metrics_unix_path : string option;
  lock : Mutex.t;
  finished : Condition.t;
  mutable accept_domain : unit Domain.t option;
  mutable metrics_domain : unit Domain.t option;
  mutable is_finished : bool;
}

(* ----- connection refcounting ----- *)

let conn_retain conn =
  Mutex.lock conn.wlock;
  conn.refs <- conn.refs + 1;
  Mutex.unlock conn.wlock

let conn_release conn =
  Mutex.lock conn.wlock;
  conn.refs <- conn.refs - 1;
  let close = conn.refs = 0 in
  Mutex.unlock conn.wlock;
  if close then try Unix.close conn.fd with Unix.Unix_error _ -> ()

let conn_send_payload conn payload =
  Mutex.lock conn.wlock;
  (if conn.refs > 0 then
     try Protocol.write_frame conn.fd payload
     with Unix.Unix_error _ | Invalid_argument _ -> ());
  Mutex.unlock conn.wlock

let conn_send conn json = conn_send_payload conn (Json.print json)

(* ----- timing helpers ----- *)

let now_ns = Obs.Clock.now_ns

let us_since t0 =
  Int64.to_int (Int64.div (Int64.sub (now_ns ()) t0) 1000L)

(* ----- per-request budget ----- *)

(* Raised (and mapped to a [dnf time] reply) when the deadline passed
   while the request sat in the queue — the job dies without touching a
   manager. *)
let make_budget conn (b : Protocol.budget_spec) =
  let timeout_s =
    Option.map
      (fun deadline ->
         let rem =
           Int64.to_float (Int64.sub deadline (now_ns ())) /. 1e9
         in
         if rem <= 0.0 then
           raise (Bdd.Budget_exhausted (Bdd.Budget.Time { seconds = 0.0 }));
         rem)
      b.deadline_ns
  in
  Bdd.Budget.create ?max_nodes:b.max_nodes ?max_steps:b.max_steps ?timeout_s
    ~cancelled:(fun () -> Exec.Cancel.cancelled conn.cancel)
    ()

(* ----- per-request execution telemetry -----

   Handlers deposit what only they can see — the manager's footprint,
   and (under [explain]) the engine stats delta and budget consumption —
   into this accumulator; [run_compute] owns the phase clocks. *)

type texec = {
  mutable live_nodes : int;
  mutable engine : (string * Json.t) list;
  mutable budget_used : (string * Json.t) list;
}

let stats_fields (d : Bdd.Stats.t) =
  Bdd.Stats.
    [ ("vars", Json.int d.vars);
      ("live_nodes", Json.int d.live_nodes);
      ("peak_live_nodes", Json.int d.peak_live_nodes);
      ("interned", Json.int d.interned_total);
      ("cache_lookups", Json.int d.cache_lookups);
      ("cache_hits", Json.int d.cache_hits);
      ("cache_hit_rate", Json.Num (Bdd.Stats.hit_rate d));
      ("cache_stores", Json.int d.cache_stores);
      ("cache_evictions", Json.int d.cache_evictions);
      ("ite_recursions", Json.int d.ite_recursions);
      ("and_recursions", Json.int d.and_recursions);
      ("xor_recursions", Json.int d.xor_recursions);
      ("constrain_recursions", Json.int d.constrain_recursions);
      ("restrict_recursions", Json.int d.restrict_recursions);
      ("quantify_recursions", Json.int d.quantify_recursions);
      ("and_exists_recursions", Json.int d.and_exists_recursions);
      ("gc_runs", Json.int d.gc_runs);
      ("gc_reclaimed", Json.int d.gc_reclaimed) ]

(* Bracket a handler's compute on one manager: take the "before"
   snapshot now, and on the way out — also when the budget fires —
   deposit the footprint and, under [explain], the delta and the steps
   consumed.  A dnf reply thus still explains the work done so far. *)
let with_engine_telemetry tx ~explain man budget f =
  let before = Bdd.snapshot man in
  let finish () =
    let after = Bdd.snapshot man in
    tx.live_nodes <- after.Bdd.Stats.live_nodes;
    if explain then begin
      tx.engine <- stats_fields (Bdd.Stats.delta ~before ~after);
      tx.budget_used <- [ ("steps", Json.int (Bdd.Budget.steps budget)) ]
    end
  in
  Fun.protect ~finally:finish f

(* ----- op handlers (run on pool workers) ----- *)

let load_ispec man = function
  | Protocol.Store_text text -> begin
      match Bdd.Store.load man text with
      | Error msg -> Error ("bad bdd payload: " ^ msg)
      | Ok roots ->
        (match List.assoc_opt "f" roots with
         | None -> Error "bdd payload has no root named \"f\""
         | Some f ->
           let c = Option.value ~default:(Bdd.one man) (List.assoc_opt "c" roots) in
           Ok (Minimize.Ispec.make ~f ~c))
    end
  | Protocol.Pla_text text -> begin
      match Logic.Pla.parse text with
      | Error msg -> Error ("bad pla payload: " ^ msg)
      | Ok pla ->
        (match Logic.Pla.functions man pla with
         | [] -> Error "pla has no outputs"
         | (_, (f, c)) :: _ -> Ok (Minimize.Ispec.make ~f ~c))
    end

let handle_minimize conn tx ~explain budget_spec ~source ~heuristic =
  let man = Bdd.new_man () in
  match load_ispec man source with
  | Error msg -> Error msg
  | Ok spec ->
    let budget = make_budget conn budget_spec in
    with_engine_telemetry tx ~explain man budget @@ fun () ->
    let ctx = Minimize.Ctx.make ~budget man in
    let name, cover =
      if heuristic = "best" then
        Minimize.Registry.best ctx Minimize.Registry.all spec
      else
        match Minimize.Registry.find heuristic with
        | None ->
          let names =
            String.concat ", "
              (Minimize.Registry.names Minimize.Registry.extended)
          in
          invalid_arg
            (Printf.sprintf "unknown heuristic %S (try one of: %s, best)"
               heuristic names)
        | Some entry -> (heuristic, Minimize.Registry.run entry ctx spec)
    in
    Ok
      (Json.Obj
         [ ("heuristic", Json.Str name);
           ("size", Json.int (Bdd.size man cover));
           ("input_size", Json.int (Bdd.size man spec.Minimize.Ispec.f));
           ("cover", Json.Str (Bdd.Store.save man [ ("g", cover) ])) ])

let netlist_of = function
  | Protocol.Bench name -> begin
      match Circuits.Registry.find name with
      | None ->
        let names =
          String.concat ", " (Circuits.Registry.names Circuits.Registry.all)
        in
        Error (Printf.sprintf "unknown bench %S (have: %s)" name names)
      | Some b -> Ok (b.Circuits.Registry.build ())
    end
  | Protocol.Blif_text text -> begin
      match Fsm.Blif.parse text with
      | Error msg -> Error ("bad blif payload: " ^ msg)
      | Ok nl -> Ok nl
    end

let reach_result (stats : Fsm.Reach.stats) =
  Json.Obj
    [ ("iterations", Json.int stats.iterations);
      ("reached_states", Json.Num stats.reached_states);
      ("minimization_calls", Json.int stats.minimization_calls) ]

let handle_reach conn tx ~explain ~id budget_spec machine =
  match netlist_of machine with
  | Error msg -> Error (Protocol.error_reply ~id msg)
  | Ok nl ->
    let man = Bdd.new_man () in
    let budget = make_budget conn budget_spec in
    with_engine_telemetry tx ~explain man budget @@ fun () ->
    let sym = Fsm.Symbolic.of_netlist man nl in
    let _reached, stats =
      Bdd.with_budget man budget (fun () -> Fsm.Reach.reachable sym)
    in
    (match stats.Fsm.Reach.fixpoint with
     | Fsm.Reach.Complete -> Ok (Protocol.ok_reply ~id (reach_result stats))
     | Fsm.Reach.Partial { reason; _ } ->
       Ok (Protocol.partial_reply ~id reason (reach_result stats)))

let handle_equiv conn tx ~explain budget_spec a b =
  match netlist_of a, netlist_of b with
  | Error msg, _ | _, Error msg -> Error msg
  | Ok na, Ok nb ->
    let man = Bdd.new_man () in
    let budget = make_budget conn budget_spec in
    with_engine_telemetry tx ~explain man budget @@ fun () ->
    let verdict =
      Bdd.with_budget man budget (fun () -> Fsm.Equiv.check man na nb)
    in
    (match verdict with
     | Fsm.Equiv.Equivalent stats ->
       Ok
         (Json.Obj
            [ ("equivalent", Json.Bool true);
              ("iterations", Json.int stats.Fsm.Reach.iterations) ])
     | Fsm.Equiv.Not_equivalent { stats; _ } ->
       Ok
         (Json.Obj
            [ ("equivalent", Json.Bool false);
              ("iterations", Json.int stats.Fsm.Reach.iterations) ]))

(* ----- gauges and scraping ----- *)

(* Levels are refreshed on scrape rather than maintained event-by-event:
   the sources of truth (pool queue, atomics, ring counters) are always
   current, so a scrape-time read can never drift the way paired
   inc/dec instrumentation can. *)
let refresh_gauges srv =
  let set = Obs.Metrics.set in
  let m = srv.m in
  let depth = Exec.Pool.queue_depth srv.pool in
  let in_flight = Atomic.get srv.in_flight in
  set m.M.queue_depth depth;
  set m.M.in_flight in_flight;
  set m.M.workers_busy (min srv.workers (max 0 (in_flight - depth)));
  set m.M.workers srv.workers;
  set m.M.connections (Atomic.get srv.conn_count);
  set m.M.uptime
    (Int64.to_int
       (Int64.div (Int64.sub (now_ns ()) srv.started_ns) 1_000_000_000L));
  set m.M.trace_dropped (Obs.Trace.total_dropped ());
  set m.M.flight_dropped (Obs.Flight.dropped srv.flight)

let metrics_exposition srv =
  refresh_gauges srv;
  Obs.Metrics.expose ()

let kind_str = function
  | Obs.Metrics.Counter -> "counter"
  | Obs.Metrics.Gauge -> "gauge"
  | Obs.Metrics.Histogram -> "histogram"

let families_json () =
  Json.Arr
    (List.map
       (fun (f : Obs.Metrics.family_snapshot) ->
          Json.Obj
            [ ("name", Json.Str f.name);
              ("kind", Json.Str (kind_str f.kind));
              ("help", Json.Str f.help);
              ( "series",
                Json.Arr
                  (List.map
                     (fun (s : Obs.Metrics.series) ->
                        Json.Obj
                          (( "labels",
                             Json.Obj
                               (List.map (fun (k, v) -> (k, Json.Str v))
                                  s.labels) )
                           ::
                           (match s.value with
                            | Obs.Metrics.Counter_v v
                            | Obs.Metrics.Gauge_v v ->
                              [ ("value", Json.int v) ]
                            | Obs.Metrics.Histogram_v { buckets; sum; count }
                              ->
                              [ ( "buckets",
                                  Json.Arr
                                    (List.map Json.int
                                       (Array.to_list buckets)) );
                                ("sum", Json.int sum);
                                ("count", Json.int count) ])))
                     f.series) ) ])
       (Obs.Metrics.snapshot ()))

let metrics_json srv =
  let uptime_s =
    Int64.to_float (Int64.sub (now_ns ()) srv.started_ns) /. 1e9
  in
  refresh_gauges srv;
  Json.Obj
    [ ("uptime_s", Json.Num uptime_s);
      ("workers", Json.int srv.workers);
      ("in_flight", Json.int (Atomic.get srv.in_flight));
      ("queue_depth", Json.int (Exec.Pool.queue_depth srv.pool));
      ("connections", Json.int (Atomic.get srv.conn_count));
      ("trace_dropped", Json.int (Obs.Trace.total_dropped ()));
      ( "flight",
        Json.Obj
          [ ("capacity", Json.int (Obs.Flight.capacity srv.flight));
            ("written", Json.int (Obs.Flight.written srv.flight));
            ("dropped", Json.int (Obs.Flight.dropped srv.flight)) ] );
      ("families", families_json ());
      ("prometheus", Json.Str (Obs.Metrics.expose ())) ]

(* ----- flight recorder ----- *)

let flight_json srv = Obs.Flight.to_json srv.flight

(* Write the ring to the configured dump path (atomically, via rename);
   [None] when no path was configured or the write failed. *)
let dump_flight srv =
  match srv.flight_dump with
  | None -> None
  | Some path -> begin
      match
        let tmp = path ^ ".tmp" in
        let oc = open_out tmp in
        Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () ->
            output_string oc (flight_json srv));
        Sys.rename tmp path
      with
      | () ->
        Log.info (fun k -> k "flight recorder dumped to %s" path);
        Some path
      | exception Sys_error msg ->
        Log.err (fun k -> k "flight dump to %s failed: %s" path msg);
        None
    end

(* ----- request execution ----- *)

let reply_status j =
  match Json.string_field "status" j with Some s -> s | None -> "error"

let trace_id_of (req : Protocol.request) =
  match req.trace with Some t -> t.Protocol.trace_id | None -> ""

let sampled (req : Protocol.request) =
  match req.trace with Some t -> t.Protocol.sampled | None -> true

(* Run [f span] under the server's trace sink (if any and the request
   is sampled) inside a [serve.request] span carrying the request and
   client trace ids; otherwise under an inert span. *)
let in_request_span srv (req : Protocol.request) f =
  let attrs =
    [ ("id", Obs.Trace.Int req.id);
      ("op", Obs.Trace.Str (Protocol.op_label req.op)) ]
    @
    match req.trace with
    | Some t -> [ ("trace_id", Obs.Trace.Str t.Protocol.trace_id) ]
    | None -> []
  in
  match srv.trace_sink with
  | Some sink when sampled req ->
    Obs.Trace.with_sink sink (fun () ->
        Obs.Trace.with_span "serve.request" ~attrs f)
  | _ -> Obs.Trace.with_span "serve.request" ~attrs f

let run_compute srv conn ~arrival_ns ~req_bytes (req : Protocol.request) =
  in_request_span srv req @@ fun span ->
  let t_start = now_ns () in
  let queue_us =
    Int64.to_int (Int64.div (Int64.sub t_start arrival_ns) 1000L)
  in
  let id = req.id in
  let op = Protocol.op_label req.op in
  let tx = { live_nodes = 0; engine = []; budget_used = [] } in
  let explain = req.explain in
  let reply =
    try
      match req.op with
      | Protocol.Minimize { source; heuristic } -> begin
          match handle_minimize conn tx ~explain req.budget ~source ~heuristic with
          | Ok result -> Protocol.ok_reply ~id result
          | Error msg -> Protocol.error_reply ~id msg
        end
      | Protocol.Reach machine -> begin
          match handle_reach conn tx ~explain ~id req.budget machine with
          | Ok reply -> reply
          | Error reply -> reply
        end
      | Protocol.Equiv (a, b) -> begin
          match handle_equiv conn tx ~explain req.budget a b with
          | Ok result -> Protocol.ok_reply ~id result
          | Error msg -> Protocol.error_reply ~id msg
        end
      | Protocol.Ping | Protocol.Metrics | Protocol.Dump | Protocol.Shutdown
        ->
        assert false (* handled inline by the reader *)
    with
    | Bdd.Budget_exhausted reason -> Protocol.dnf_reply ~id reason
    | e -> Protocol.error_reply ~id (Printexc.to_string e)
  in
  let exec_us = us_since t_start in
  let status = reply_status reply in
  (* [write_us] is the cost of serializing the reply body: it has to be
     measured before it is shipped inside the bytes it describes, so
     the subsequent socket write can only appear in the flight record
     and the phase histogram, never in the reply itself.  Under
     [explain] the plain body is printed once to take the measurement
     and once more with the telemetry attached. *)
  let t_ser = now_ns () in
  let plain = Json.print reply in
  let write_us = us_since t_ser in
  let payload =
    if not explain then plain
    else
      Json.print
        (Protocol.with_telemetry reply
           (Json.Obj
              ([ ("queue_us", Json.int queue_us);
                 ("exec_us", Json.int exec_us);
                 ("write_us", Json.int write_us) ]
               @ (match tx.budget_used with
                  | [] -> []
                  | b -> [ ("budget", Json.Obj b) ])
               @
               match tx.engine with
               | [] -> []
               | e -> [ ("engine", Json.Obj e) ])))
  in
  (* The flight record goes into the ring {e before} the reply leaves:
     a client holding a reply must find its request in a subsequent
     [dump], so the record cannot wait for the socket write (whose
     duration therefore only reaches the phase histogram below). *)
  Obs.Flight.record srv.flight ~trace_id:(trace_id_of req)
    ~sizes:
      [ ("req_bytes", req_bytes); ("reply_bytes", String.length payload) ]
    ~phases_us:[ ("queue", queue_us); ("exec", exec_us); ("write", write_us) ]
    ~id ~op ~outcome:status ();
  let t_send = now_ns () in
  conn_send_payload conn payload;
  let send_us = us_since t_send in
  let total_us = us_since t_start in
  Obs.Trace.add span "queue_us" (Obs.Trace.Int queue_us);
  Obs.Trace.add span "exec_us" (Obs.Trace.Int exec_us);
  Obs.Trace.add span "write_us" (Obs.Trace.Int write_us);
  Obs.Trace.add span "status" (Obs.Trace.Str status);
  let m = srv.m in
  Obs.Metrics.observe (Obs.Metrics.labels m.M.latency [ op ]) total_us;
  Obs.Metrics.observe (Obs.Metrics.labels m.M.phase [ "queue" ]) queue_us;
  Obs.Metrics.observe (Obs.Metrics.labels m.M.phase [ "exec" ]) exec_us;
  Obs.Metrics.observe
    (Obs.Metrics.labels m.M.phase [ "write" ])
    (write_us + send_us);
  Obs.Metrics.inc (Obs.Metrics.labels m.M.replies [ op; status ]);
  Obs.Metrics.set (Obs.Metrics.labels m.M.manager_live [ op ]) tx.live_nodes;
  if status = "error" then begin
    Log.debug (fun k -> k "request %d (%s) from %s errored" id op conn.peer);
    ignore (dump_flight srv)
  end

let submit_compute srv conn ~arrival_ns ~req_bytes req =
  conn_retain conn;
  Atomic.incr srv.in_flight;
  let finish () =
    Atomic.decr srv.in_flight;
    conn_release conn
  in
  let submitted =
    try
      Exec.Pool.submit srv.pool
        ~on_abort:(fun () ->
          (* discarded at shutdown without running: tell the client *)
          Obs.Metrics.inc
            (Obs.Metrics.labels srv.m.M.replies
               [ Protocol.op_label req.Protocol.op; "dnf" ]);
          Obs.Flight.record srv.flight ~trace_id:(trace_id_of req)
            ~id:req.Protocol.id
            ~op:(Protocol.op_label req.Protocol.op)
            ~outcome:"dnf" ();
          conn_send conn (Protocol.dnf_reply ~id:req.Protocol.id Bdd.Budget.Cancelled);
          finish ())
        (fun () ->
           (try run_compute srv conn ~arrival_ns ~req_bytes req
            with _ -> () (* run_compute already catches; belt and braces *));
           finish ());
      true
    with Invalid_argument _ -> false (* pool already shut down *)
  in
  if not submitted then begin
    conn_send conn
      (Protocol.error_reply ~id:req.Protocol.id "server is shutting down");
    finish ()
  end

(* Inline ops complete on the reader domain; they are still metered and
   flight-recorded (with an empty phase list — there is no queue wait or
   compute to attribute). *)
let record_inline srv req ~outcome =
  Obs.Metrics.inc
    (Obs.Metrics.labels srv.m.M.replies
       [ Protocol.op_label req.Protocol.op; outcome ]);
  Obs.Flight.record srv.flight ~trace_id:(trace_id_of req)
    ~id:req.Protocol.id
    ~op:(Protocol.op_label req.Protocol.op)
    ~outcome ()

let reader_loop srv conn =
  let rec loop () =
    match Protocol.read_frame conn.fd with
    | Ok `Eof -> ()
    | Error msg ->
      (* torn frame, oversized prefix, or I/O failure mid-frame *)
      if not (Atomic.get srv.stop_flag) then begin
        Log.warn (fun k -> k "connection %s: %s" conn.peer msg);
        Obs.Metrics.inc
          (Obs.Metrics.labels srv.m.M.conn_errors [ "torn_frame" ])
      end
    | Ok (`Frame payload) ->
      let arrival_ns = now_ns () in
      (match Protocol.parse_request payload with
       | Error msg ->
         Obs.Metrics.inc srv.m.M.malformed;
         Log.info (fun k -> k "connection %s: malformed request: %s" conn.peer msg);
         Obs.Flight.record srv.flight ~id:0 ~op:"malformed" ~outcome:"error"
           ~sizes:[ ("req_bytes", String.length payload) ]
           ();
         conn_send conn (Protocol.error_reply ~id:0 msg)
       | Ok req ->
         Obs.Metrics.inc
           (Obs.Metrics.labels srv.m.M.requests
              [ Protocol.op_label req.op ]);
         (match srv.trace_sink with
          | Some sink when sampled req ->
            Obs.Trace.with_sink sink (fun () ->
                Obs.Trace.instant "serve.recv"
                  ~attrs:
                    [ ("id", Obs.Trace.Int req.id);
                      ("op", Obs.Trace.Str (Protocol.op_label req.op));
                      ("trace_id", Obs.Trace.Str (trace_id_of req)) ])
          | _ -> ());
         (match req.op with
          | Protocol.Ping ->
            conn_send conn
              (Protocol.ok_reply ~id:req.id (Json.Obj [ ("pong", Json.Bool true) ]));
            record_inline srv req ~outcome:"ok"
          | Protocol.Metrics ->
            conn_send conn (Protocol.ok_reply ~id:req.id (metrics_json srv));
            record_inline srv req ~outcome:"ok"
          | Protocol.Dump ->
            let dump =
              match Json.parse (flight_json srv) with
              | Ok j -> j
              | Error _ -> Json.Null (* unreachable: we rendered it *)
            in
            conn_send conn (Protocol.ok_reply ~id:req.id dump);
            record_inline srv req ~outcome:"ok"
          | Protocol.Shutdown ->
            Log.info (fun k -> k "shutdown requested by %s" conn.peer);
            conn_send conn
              (Protocol.ok_reply ~id:req.id
                 (Json.Obj [ ("stopping", Json.Bool true) ]));
            record_inline srv req ~outcome:"ok";
            Atomic.set srv.stop_flag true
          | Protocol.Minimize _ | Protocol.Reach _ | Protocol.Equiv _ ->
            submit_compute srv conn ~arrival_ns
              ~req_bytes:(String.length payload) req));
      if not (Atomic.get srv.stop_flag) then loop ()
      else () (* stop reading; teardown will half-close the socket *)
  in
  (try loop ()
   with e ->
     (* a reader must never die silently: the connection is torn down
        below either way, but the cause goes to the log *)
     Log.err (fun k ->
         k "reader for %s died: %s" conn.peer (Printexc.to_string e));
     Obs.Metrics.inc
       (Obs.Metrics.labels srv.m.M.conn_errors [ "reader_exception" ]));
  (* reader is done: cancel whatever this connection still has in
     flight, then drop the reader's reference *)
  Log.debug (fun k -> k "connection %s closed" conn.peer);
  Atomic.decr srv.conn_count;
  Exec.Cancel.cancel conn.cancel;
  conn_release conn

(* ----- lifecycle ----- *)

let bind_listen = function
  | Tcp port ->
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
    Unix.listen fd 64;
    let bound =
      match Unix.getsockname fd with
      | Unix.ADDR_INET (_, p) -> p
      | _ -> port
    in
    (fd, Printf.sprintf "127.0.0.1:%d" bound, Some bound, None)
  | Unix_path path ->
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind fd (Unix.ADDR_UNIX path);
    Unix.listen fd 64;
    (fd, path, None, Some path)

let peer_string fd =
  match Unix.getpeername fd with
  | Unix.ADDR_INET (ip, port) ->
    Printf.sprintf "%s:%d" (Unix.string_of_inet_addr ip) port
  | Unix.ADDR_UNIX _ -> "unix"
  | exception Unix.Unix_error _ -> "?"

let accept_loop srv =
  let readers = ref [] in
  let conns = ref [] in
  while not (Atomic.get srv.stop_flag) do
    match Unix.select [ srv.listen_fd ] [] [] 0.2 with
    | [], _, _ -> ()
    | _ :: _, _, _ ->
      (match Unix.accept srv.listen_fd with
       | fd, _ ->
         let conn =
           { fd; wlock = Mutex.create (); cancel = Exec.Cancel.create ();
             peer = peer_string fd; refs = 1 }
         in
         Log.debug (fun k -> k "connection %s accepted" conn.peer);
         Atomic.incr srv.conn_count;
         conns := conn :: !conns;
         readers := Domain.spawn (fun () -> reader_loop srv conn) :: !readers
       | exception Unix.Unix_error (e, _, _) ->
         Log.warn (fun k -> k "accept failed: %s" (Unix.error_message e));
         Obs.Metrics.inc
           (Obs.Metrics.labels srv.m.M.conn_errors [ "accept" ]))
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  (try Unix.close srv.listen_fd with Unix.Unix_error _ -> ());
  (match srv.unix_path with
   | Some path -> (try Unix.unlink path with Unix.Unix_error _ -> ())
   | None -> ());
  (* abort the queue (their on_abort replies dnf), drain running jobs *)
  Exec.Pool.shutdown ~mode:`Abort srv.pool;
  (* unblock readers stuck in read(2), then join them *)
  List.iter
    (fun conn ->
       try Unix.shutdown conn.fd Unix.SHUTDOWN_ALL
       with Unix.Unix_error _ -> ())
    !conns;
  List.iter Domain.join !readers;
  Log.info (fun k -> k "server on %s stopped" srv.address)

(* ----- metrics HTTP listener -----

   A deliberately tiny HTTP/1.0 responder: one request per connection,
   served serially on the metrics domain.  Scrapes are rare (seconds
   apart) and the exposition is small, so there is nothing to win from
   concurrency here — and a second listener socket keeps scrape traffic
   entirely off the wire-protocol port. *)

let http_request_path data =
  match String.index_opt data '\r' with
  | None -> None
  | Some i -> begin
      match String.split_on_char ' ' (String.sub data 0 i) with
      | [ "GET"; path; _version ] -> Some path
      | _ -> None
    end

let http_respond fd ~status ~content_type body =
  let payload =
    Printf.sprintf
      "HTTP/1.0 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: \
       close\r\n\r\n%s"
      status content_type (String.length body) body
  in
  Protocol.really_write fd (Bytes.of_string payload) 0 (String.length payload)

let metrics_loop srv fd unix_path =
  while not (Atomic.get srv.stop_flag) do
    match Unix.select [ fd ] [] [] 0.2 with
    | [], _, _ -> ()
    | _ :: _, _, _ ->
      (match Unix.accept fd with
       | cfd, _ ->
         (try
            Unix.setsockopt_float cfd Unix.SO_RCVTIMEO 2.0;
            let buf = Bytes.create 4096 in
            let n = try Unix.read cfd buf 0 4096 with Unix.Unix_error _ -> 0 in
            (match http_request_path (Bytes.sub_string buf 0 n) with
             | Some ("/metrics" | "/") ->
               http_respond cfd ~status:"200 OK"
                 ~content_type:"text/plain; version=0.0.4; charset=utf-8"
                 (metrics_exposition srv)
             | Some _ ->
               http_respond cfd ~status:"404 Not Found"
                 ~content_type:"text/plain" "not found\n"
             | None ->
               http_respond cfd ~status:"400 Bad Request"
                 ~content_type:"text/plain" "bad request\n")
          with Unix.Unix_error _ | Invalid_argument _ -> ());
         (try Unix.close cfd with Unix.Unix_error _ -> ())
       | exception Unix.Unix_error (e, _, _) ->
         Log.warn (fun k ->
             k "metrics accept failed: %s" (Unix.error_message e)))
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  (try Unix.close fd with Unix.Unix_error _ -> ());
  match unix_path with
  | Some path -> (try Unix.unlink path with Unix.Unix_error _ -> ())
  | None -> ()

let start ?(workers = Exec.recommended_jobs ()) ?trace ?metrics
    ?(flight_capacity = 256) ?flight_dump listen =
  if workers < 1 then invalid_arg "Serve.Server.start: workers must be >= 1";
  (* a client vanishing mid-reply must not kill the daemon *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let listen_fd, address, port, unix_path = bind_listen listen in
  let metrics_fd, metrics_address, metrics_port, metrics_unix_path =
    match metrics with
    | None -> (None, None, None, None)
    | Some l ->
      let fd, addr, port, upath = bind_listen l in
      (Some fd, Some addr, port, upath)
  in
  let srv =
    {
      listen_fd;
      address;
      port;
      unix_path;
      pool = Exec.Pool.create ~jobs:workers;
      workers;
      stop_flag = Atomic.make false;
      in_flight = Atomic.make 0;
      conn_count = Atomic.make 0;
      started_ns = now_ns ();
      m = M.register ();
      flight = Obs.Flight.create ~capacity:(max 1 flight_capacity) ();
      flight_dump;
      trace_sink = trace;
      metrics_address;
      metrics_port;
      metrics_unix_path;
      lock = Mutex.create ();
      finished = Condition.create ();
      accept_domain = None;
      metrics_domain = None;
      is_finished = false;
    }
  in
  Log.info (fun k ->
      k "serving on %s (%d workers%s)" address workers
        (match metrics_address with
         | Some a -> Printf.sprintf ", metrics on %s" a
         | None -> ""));
  srv.accept_domain <- Some (Domain.spawn (fun () -> accept_loop srv));
  (match metrics_fd with
   | Some fd ->
     srv.metrics_domain <-
       Some (Domain.spawn (fun () -> metrics_loop srv fd metrics_unix_path))
   | None -> ());
  srv

let address srv = srv.address
let port srv = srv.port
let metrics_address srv = srv.metrics_address
let metrics_port srv = srv.metrics_port
let in_flight srv = Atomic.get srv.in_flight
let connections srv = Atomic.get srv.conn_count

(* Async-signal-safe stop request: just flips the flag the accept loop
   polls (within ~0.2 s).  Pair with {!wait} to actually tear down. *)
let request_stop srv = Atomic.set srv.stop_flag true
let stopping srv = Atomic.get srv.stop_flag

(* First caller joins the accept and metrics domains (the former joins
   readers and the pool); latecomers block until that join completes. *)
let wait srv =
  Mutex.lock srv.lock;
  (match srv.accept_domain with
   | Some d ->
     srv.accept_domain <- None;
     let md = srv.metrics_domain in
     srv.metrics_domain <- None;
     Mutex.unlock srv.lock;
     Domain.join d;
     Option.iter Domain.join md;
     Mutex.lock srv.lock;
     srv.is_finished <- true;
     Condition.broadcast srv.finished;
     Mutex.unlock srv.lock
   | None ->
     while not srv.is_finished do
       Condition.wait srv.finished srv.lock
     done;
     Mutex.unlock srv.lock)

let stop srv =
  Atomic.set srv.stop_flag true;
  wait srv
