(* The [bddmin serve] daemon core.

   Shape: one accept domain, one reader domain per connection, one
   shared [Exec.Pool] of compute workers.  The reader parses frames and
   answers ping/metrics/shutdown inline; minimize/reach/equiv jobs go to
   the pool, each under a fresh private manager (managers are
   domain-local by contract) with a per-request [Bdd.Budget] combining
   the request's limits, its arrival-time deadline and the connection's
   cancellation token — a client that disconnects cancels its in-flight
   work at the next kernel poll.

   Replies are frames on the same socket, serialized by a per-connection
   write lock; a connection with several outstanding compute requests
   receives replies in completion order, matched by [id].  Shutdown
   aborts the queued (not yet running) jobs — their futures' [on_abort]
   writes a [dnf cancelled] reply so no client hangs — drains the
   running ones, then unblocks and joins every reader. *)

type listen = Tcp of int | Unix_path of string

type conn = {
  fd : Unix.file_descr;
  wlock : Mutex.t;
  cancel : Exec.Cancel.t;
  mutable refs : int;  (* reader + in-flight jobs; fd closes at 0 *)
}

type t = {
  listen_fd : Unix.file_descr;
  address : string;
  port : int option;  (** bound TCP port, for [Tcp 0] callers *)
  unix_path : string option;
  pool : Exec.Pool.t;
  workers : int;
  stop_flag : bool Atomic.t;
  in_flight : int Atomic.t;
  started_ns : int64;
  lock : Mutex.t;
  finished : Condition.t;
  mutable accept_domain : unit Domain.t option;
  mutable is_finished : bool;
}

(* ----- connection refcounting ----- *)

let conn_retain conn =
  Mutex.lock conn.wlock;
  conn.refs <- conn.refs + 1;
  Mutex.unlock conn.wlock

let conn_release conn =
  Mutex.lock conn.wlock;
  conn.refs <- conn.refs - 1;
  let close = conn.refs = 0 in
  Mutex.unlock conn.wlock;
  if close then try Unix.close conn.fd with Unix.Unix_error _ -> ()

let conn_send conn json =
  Mutex.lock conn.wlock;
  (if conn.refs > 0 then
     try Protocol.write_frame conn.fd (Json.print json)
     with Unix.Unix_error _ | Invalid_argument _ -> ());
  Mutex.unlock conn.wlock

(* ----- per-request budget ----- *)

(* Raised (and mapped to a [dnf time] reply) when the deadline passed
   while the request sat in the queue — the job dies without touching a
   manager. *)
let make_budget conn (b : Protocol.budget_spec) =
  let timeout_s =
    Option.map
      (fun deadline ->
         let rem =
           Int64.to_float (Int64.sub deadline (Obs.Clock.now_ns ())) /. 1e9
         in
         if rem <= 0.0 then
           raise (Bdd.Budget_exhausted (Bdd.Budget.Time { seconds = 0.0 }));
         rem)
      b.deadline_ns
  in
  Bdd.Budget.create ?max_nodes:b.max_nodes ?max_steps:b.max_steps ?timeout_s
    ~cancelled:(fun () -> Exec.Cancel.cancelled conn.cancel)
    ()

(* ----- op handlers (run on pool workers) ----- *)

let load_ispec man = function
  | Protocol.Store_text text -> begin
      match Bdd.Store.load man text with
      | Error msg -> Error ("bad bdd payload: " ^ msg)
      | Ok roots ->
        (match List.assoc_opt "f" roots with
         | None -> Error "bdd payload has no root named \"f\""
         | Some f ->
           let c = Option.value ~default:(Bdd.one man) (List.assoc_opt "c" roots) in
           Ok (Minimize.Ispec.make ~f ~c))
    end
  | Protocol.Pla_text text -> begin
      match Logic.Pla.parse text with
      | Error msg -> Error ("bad pla payload: " ^ msg)
      | Ok pla ->
        (match Logic.Pla.functions man pla with
         | [] -> Error "pla has no outputs"
         | (_, (f, c)) :: _ -> Ok (Minimize.Ispec.make ~f ~c))
    end

let handle_minimize conn budget_spec ~source ~heuristic =
  let man = Bdd.new_man () in
  match load_ispec man source with
  | Error msg -> Error msg
  | Ok spec ->
    let budget = make_budget conn budget_spec in
    let ctx = Minimize.Ctx.make ~budget man in
    let name, cover =
      if heuristic = "best" then
        Minimize.Registry.best ctx Minimize.Registry.all spec
      else
        match Minimize.Registry.find heuristic with
        | None ->
          let names =
            String.concat ", "
              (Minimize.Registry.names Minimize.Registry.extended)
          in
          invalid_arg
            (Printf.sprintf "unknown heuristic %S (try one of: %s, best)"
               heuristic names)
        | Some entry -> (heuristic, Minimize.Registry.run entry ctx spec)
    in
    Ok
      (Json.Obj
         [ ("heuristic", Json.Str name);
           ("size", Json.int (Bdd.size man cover));
           ("input_size", Json.int (Bdd.size man spec.Minimize.Ispec.f));
           ("cover", Json.Str (Bdd.Store.save man [ ("g", cover) ])) ])

let netlist_of = function
  | Protocol.Bench name -> begin
      match Circuits.Registry.find name with
      | None ->
        let names =
          String.concat ", " (Circuits.Registry.names Circuits.Registry.all)
        in
        Error (Printf.sprintf "unknown bench %S (have: %s)" name names)
      | Some b -> Ok (b.Circuits.Registry.build ())
    end
  | Protocol.Blif_text text -> begin
      match Fsm.Blif.parse text with
      | Error msg -> Error ("bad blif payload: " ^ msg)
      | Ok nl -> Ok nl
    end

let reach_result (stats : Fsm.Reach.stats) =
  Json.Obj
    [ ("iterations", Json.int stats.iterations);
      ("reached_states", Json.Num stats.reached_states);
      ("minimization_calls", Json.int stats.minimization_calls) ]

let handle_reach conn ~id budget_spec machine =
  match netlist_of machine with
  | Error msg -> Error (Protocol.error_reply ~id msg)
  | Ok nl ->
    let man = Bdd.new_man () in
    let budget = make_budget conn budget_spec in
    let sym = Fsm.Symbolic.of_netlist man nl in
    let _reached, stats =
      Bdd.with_budget man budget (fun () -> Fsm.Reach.reachable sym)
    in
    (match stats.Fsm.Reach.fixpoint with
     | Fsm.Reach.Complete -> Ok (Protocol.ok_reply ~id (reach_result stats))
     | Fsm.Reach.Partial { reason; _ } ->
       Ok (Protocol.partial_reply ~id reason (reach_result stats)))

let handle_equiv conn budget_spec a b =
  match netlist_of a, netlist_of b with
  | Error msg, _ | _, Error msg -> Error msg
  | Ok na, Ok nb ->
    let man = Bdd.new_man () in
    let budget = make_budget conn budget_spec in
    let verdict =
      Bdd.with_budget man budget (fun () -> Fsm.Equiv.check man na nb)
    in
    (match verdict with
     | Fsm.Equiv.Equivalent stats ->
       Ok
         (Json.Obj
            [ ("equivalent", Json.Bool true);
              ("iterations", Json.int stats.Fsm.Reach.iterations) ])
     | Fsm.Equiv.Not_equivalent { stats; _ } ->
       Ok
         (Json.Obj
            [ ("equivalent", Json.Bool false);
              ("iterations", Json.int stats.Fsm.Reach.iterations) ]))

let metrics_json srv =
  let uptime_s =
    Int64.to_float (Int64.sub (Obs.Clock.now_ns ()) srv.started_ns) /. 1e9
  in
  Json.Obj
    [ ("uptime_s", Json.Num uptime_s);
      ("workers", Json.int srv.workers);
      ("in_flight", Json.int (Atomic.get srv.in_flight));
      ( "counters",
        Json.Obj
          (List.map (fun (k, v) -> (k, Json.int v)) (Obs.Probe.counters ())) );
      ( "histograms",
        Json.Obj
          (List.map
             (fun (k, buckets) ->
                (k, Json.Arr (List.map Json.int (Array.to_list buckets))))
             (Obs.Probe.histograms ())) ) ]

(* ----- request execution ----- *)

let reply_status j =
  match Json.string_field "status" j with Some s -> s | None -> "error"

let run_compute conn (req : Protocol.request) =
  let t0 = Obs.Clock.now_ns () in
  let id = req.id in
  let reply =
    try
      match req.op with
      | Protocol.Minimize { source; heuristic } -> begin
          match handle_minimize conn req.budget ~source ~heuristic with
          | Ok result -> Protocol.ok_reply ~id result
          | Error msg -> Protocol.error_reply ~id msg
        end
      | Protocol.Reach machine -> begin
          match handle_reach conn ~id req.budget machine with
          | Ok reply -> reply
          | Error reply -> reply
        end
      | Protocol.Equiv (a, b) -> begin
          match handle_equiv conn req.budget a b with
          | Ok result -> Protocol.ok_reply ~id result
          | Error msg -> Protocol.error_reply ~id msg
        end
      | Protocol.Ping | Protocol.Metrics | Protocol.Shutdown ->
        assert false (* handled inline by the reader *)
    with
    | Bdd.Budget_exhausted reason -> Protocol.dnf_reply ~id reason
    | e -> Protocol.error_reply ~id (Printexc.to_string e)
  in
  let dt_us =
    Int64.to_int (Int64.div (Int64.sub (Obs.Clock.now_ns ()) t0) 1000L)
  in
  Obs.Probe.observe ("serve.latency_us." ^ Protocol.op_label req.op) dt_us;
  Obs.Probe.incr ("serve.replies." ^ reply_status reply);
  conn_send conn reply

let submit_compute srv conn req =
  conn_retain conn;
  Atomic.incr srv.in_flight;
  let finish () =
    Atomic.decr srv.in_flight;
    conn_release conn
  in
  let submitted =
    try
      Exec.Pool.submit srv.pool
        ~on_abort:(fun () ->
          (* discarded at shutdown without running: tell the client *)
          Obs.Probe.incr "serve.replies.dnf";
          conn_send conn (Protocol.dnf_reply ~id:req.Protocol.id Bdd.Budget.Cancelled);
          finish ())
        (fun () ->
           (try run_compute conn req
            with _ -> () (* run_compute already catches; belt and braces *));
           finish ());
      true
    with Invalid_argument _ -> false (* pool already shut down *)
  in
  if not submitted then begin
    conn_send conn
      (Protocol.error_reply ~id:req.Protocol.id "server is shutting down");
    finish ()
  end

let reader_loop srv conn =
  let rec loop () =
    match Protocol.read_frame conn.fd with
    | Ok `Eof | Error _ -> ()
    | Ok (`Frame payload) ->
      (match Protocol.parse_request payload with
       | Error msg ->
         Obs.Probe.incr "serve.requests.malformed";
         conn_send conn (Protocol.error_reply ~id:0 msg)
       | Ok req ->
         Obs.Probe.incr "serve.requests";
         (match req.op with
          | Protocol.Ping ->
            conn_send conn
              (Protocol.ok_reply ~id:req.id (Json.Obj [ ("pong", Json.Bool true) ]))
          | Protocol.Metrics ->
            conn_send conn (Protocol.ok_reply ~id:req.id (metrics_json srv))
          | Protocol.Shutdown ->
            conn_send conn
              (Protocol.ok_reply ~id:req.id
                 (Json.Obj [ ("stopping", Json.Bool true) ]));
            Atomic.set srv.stop_flag true
          | Protocol.Minimize _ | Protocol.Reach _ | Protocol.Equiv _ ->
            submit_compute srv conn req));
      if not (Atomic.get srv.stop_flag) then loop ()
      else () (* stop reading; teardown will half-close the socket *)
  in
  loop ();
  (* reader is done: cancel whatever this connection still has in
     flight, then drop the reader's reference *)
  Exec.Cancel.cancel conn.cancel;
  conn_release conn

(* ----- lifecycle ----- *)

let bind_listen = function
  | Tcp port ->
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
    Unix.listen fd 64;
    let bound =
      match Unix.getsockname fd with
      | Unix.ADDR_INET (_, p) -> p
      | _ -> port
    in
    (fd, Printf.sprintf "127.0.0.1:%d" bound, Some bound, None)
  | Unix_path path ->
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind fd (Unix.ADDR_UNIX path);
    Unix.listen fd 64;
    (fd, path, None, Some path)

let accept_loop srv =
  let readers = ref [] in
  let conns = ref [] in
  while not (Atomic.get srv.stop_flag) do
    match Unix.select [ srv.listen_fd ] [] [] 0.2 with
    | [], _, _ -> ()
    | _ :: _, _, _ ->
      (match Unix.accept srv.listen_fd with
       | fd, _ ->
         let conn =
           { fd; wlock = Mutex.create (); cancel = Exec.Cancel.create ();
             refs = 1 }
         in
         conns := conn :: !conns;
         readers := Domain.spawn (fun () -> reader_loop srv conn) :: !readers
       | exception Unix.Unix_error _ -> ())
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  (try Unix.close srv.listen_fd with Unix.Unix_error _ -> ());
  (match srv.unix_path with
   | Some path -> (try Unix.unlink path with Unix.Unix_error _ -> ())
   | None -> ());
  (* abort the queue (their on_abort replies dnf), drain running jobs *)
  Exec.Pool.shutdown ~mode:`Abort srv.pool;
  (* unblock readers stuck in read(2), then join them *)
  List.iter
    (fun conn ->
       try Unix.shutdown conn.fd Unix.SHUTDOWN_ALL
       with Unix.Unix_error _ -> ())
    !conns;
  List.iter Domain.join !readers

let start ?(workers = Exec.recommended_jobs ()) listen =
  if workers < 1 then invalid_arg "Serve.Server.start: workers must be >= 1";
  (* a client vanishing mid-reply must not kill the daemon *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let listen_fd, address, port, unix_path = bind_listen listen in
  let srv =
    {
      listen_fd;
      address;
      port;
      unix_path;
      pool = Exec.Pool.create ~jobs:workers;
      workers;
      stop_flag = Atomic.make false;
      in_flight = Atomic.make 0;
      started_ns = Obs.Clock.now_ns ();
      lock = Mutex.create ();
      finished = Condition.create ();
      accept_domain = None;
      is_finished = false;
    }
  in
  srv.accept_domain <- Some (Domain.spawn (fun () -> accept_loop srv));
  srv

let address srv = srv.address
let port srv = srv.port
let in_flight srv = Atomic.get srv.in_flight

(* Async-signal-safe stop request: just flips the flag the accept loop
   polls (within ~0.2 s).  Pair with {!wait} to actually tear down. *)
let request_stop srv = Atomic.set srv.stop_flag true
let stopping srv = Atomic.get srv.stop_flag

(* First caller joins the accept domain (which joins readers and the
   pool); latecomers block until that join completes. *)
let wait srv =
  Mutex.lock srv.lock;
  (match srv.accept_domain with
   | Some d ->
     srv.accept_domain <- None;
     Mutex.unlock srv.lock;
     Domain.join d;
     Mutex.lock srv.lock;
     srv.is_finished <- true;
     Condition.broadcast srv.finished;
     Mutex.unlock srv.lock
   | None ->
     while not srv.is_finished do
       Condition.wait srv.finished srv.lock
     done;
     Mutex.unlock srv.lock)

let stop srv =
  Atomic.set srv.stop_flag true;
  wait srv
