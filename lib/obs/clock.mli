(** Monotonic time.

    All of [Obs] stamps with [CLOCK_MONOTONIC] (via bechamel's clock
    stub), never with the wall clock: NTP steps and leap seconds must not
    corrupt span durations or the experiment harness's runtime columns. *)

val now_ns : unit -> int64
(** Nanoseconds on the monotonic clock; the epoch is unspecified (only
    differences are meaningful). *)

val since_start_ns : unit -> int64
(** Nanoseconds elapsed since this module was initialized (roughly,
    process start).  Trace timestamps use this base. *)

val ns_to_s : int64 -> float
val ns_to_us : int64 -> float

val timed : (unit -> 'a) -> 'a * float
(** [timed f] runs [f ()] and also returns its monotonic duration in
    seconds. *)
