(** Flight recorder: a bounded, lock-striped ring of the most recent
    request records, kept cheaply at all times and dumped as JSON when
    something goes wrong (a request errors, SIGUSR1, an operator asks
    over the wire).

    Each record is one served request: its id, the client-propagated
    trace id (if any), the operation, free-form integer measurements
    (payload/result sizes), per-phase timings in microseconds and a
    final outcome string.

    {b Concurrency.}  Writers are striped: a global atomic sequence
    number both orders records and picks the stripe ([seq mod stripes]),
    so concurrent writers contend only on the sequence counter and on
    [1/stripes] of the mutexes.  Because stripes are filled round-robin,
    each stripe's ring independently holds its share of the {e most
    recent} records — collecting all stripes and sorting by sequence
    reconstructs exactly the last [capacity] records, no matter how many
    domains were writing.  {!records} and {!to_json} take every stripe
    mutex (one at a time) and are meant for dump paths, not hot ones. *)

type record = {
  seq : int;  (** global allocation order, starting at 0 *)
  ts_ns : int64;  (** {!Clock.now_ns} at record time *)
  id : int;  (** request id *)
  trace_id : string;  (** [""] when the client sent none *)
  op : string;
  sizes : (string * int) list;  (** e.g. [("input_nodes", 41)] *)
  phases_us : (string * int) list;  (** e.g. [("queue", 12)] *)
  outcome : string;  (** reply status: ok / dnf / partial / error *)
}

type t

val create : ?stripes:int -> capacity:int -> unit -> t
(** A recorder holding (at least) the last [capacity] records across
    [stripes] independently locked rings (default 8, clamped to
    [capacity]).  The effective capacity rounds [capacity] up to a
    multiple of the stripe count.
    @raise Invalid_argument when [capacity < 1] or [stripes < 1]. *)

val capacity : t -> int
(** The effective (rounded-up) capacity. *)

val record :
  t ->
  ?trace_id:string ->
  ?sizes:(string * int) list ->
  ?phases_us:(string * int) list ->
  id:int ->
  op:string ->
  outcome:string ->
  unit ->
  unit
(** Append one record, evicting the oldest in its stripe when full. *)

val written : t -> int
(** Records ever written. *)

val dropped : t -> int
(** Records evicted so far ([max 0 (written - capacity)]). *)

val records : t -> record list
(** The retained records, oldest first (globally ordered by [seq]). *)

val to_json : t -> string
(** The ring as one JSON document:
    [{"capacity":C,"written":W,"dropped":D,"records":[…]}], each record
    an object with [seq], [ts_ns], [id], [trace_id], [op], [sizes],
    [phases_us] and [outcome] fields.  Self-contained rendering (no
    JSON dependency); strings are escaped. *)

val clear : t -> unit
(** Drop every retained record and reset the counters. *)
