(* Lock-striped flight-recorder ring.

   One global atomic sequence counter orders records and assigns them to
   stripes round-robin ([seq mod stripes]); each stripe is a fixed
   circular buffer behind its own mutex.  Round-robin assignment means
   the union of the stripes' retained slots is exactly the last
   [capacity] records by sequence number — reconstruction is a collect
   and sort, with no cross-stripe coordination on the write path. *)

type record = {
  seq : int;
  ts_ns : int64;
  id : int;
  trace_id : string;
  op : string;
  sizes : (string * int) list;
  phases_us : (string * int) list;
  outcome : string;
}

type stripe = { lock : Mutex.t; slots : record option array }

type t = {
  stripes : stripe array;
  per_stripe : int;
  next_seq : int Atomic.t;
}

let create ?(stripes = 8) ~capacity () =
  if capacity < 1 then invalid_arg "Obs.Flight.create: capacity must be >= 1";
  if stripes < 1 then invalid_arg "Obs.Flight.create: stripes must be >= 1";
  let stripes = min stripes capacity in
  let per_stripe = (capacity + stripes - 1) / stripes in
  {
    stripes =
      Array.init stripes (fun _ ->
          { lock = Mutex.create (); slots = Array.make per_stripe None });
    per_stripe;
    next_seq = Atomic.make 0;
  }

let capacity t = Array.length t.stripes * t.per_stripe

let locked m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let record t ?(trace_id = "") ?(sizes = []) ?(phases_us = []) ~id ~op ~outcome
    () =
  let seq = Atomic.fetch_and_add t.next_seq 1 in
  let r =
    { seq; ts_ns = Clock.now_ns (); id; trace_id; op; sizes; phases_us;
      outcome }
  in
  let stripe = t.stripes.(seq mod Array.length t.stripes) in
  let slot = seq / Array.length t.stripes mod t.per_stripe in
  locked stripe.lock (fun () -> stripe.slots.(slot) <- Some r)

let written t = Atomic.get t.next_seq

let dropped t = max 0 (written t - capacity t)

let records t =
  Array.to_list t.stripes
  |> List.concat_map (fun s ->
      locked s.lock (fun () ->
          Array.to_list s.slots |> List.filter_map Fun.id))
  |> List.sort (fun a b -> compare a.seq b.seq)

let clear t =
  Array.iter
    (fun s -> locked s.lock (fun () -> Array.fill s.slots 0 t.per_stripe None))
    t.stripes;
  Atomic.set t.next_seq 0

(* ----- JSON dump (self-contained, like the bench baseline writer) ----- *)

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string b "\\\""
       | '\\' -> Buffer.add_string b "\\\\"
       | '\n' -> Buffer.add_string b "\\n"
       | '\r' -> Buffer.add_string b "\\r"
       | '\t' -> Buffer.add_string b "\\t"
       | c when Char.code c < 0x20 ->
         Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let assoc_json kvs =
  "{"
  ^ String.concat ","
      (List.map (fun (k, v) -> Printf.sprintf "\"%s\":%d" (escape k) v) kvs)
  ^ "}"

let record_json r =
  Printf.sprintf
    "{\"seq\":%d,\"ts_ns\":%Ld,\"id\":%d,\"trace_id\":\"%s\",\"op\":\"%s\",\
     \"sizes\":%s,\"phases_us\":%s,\"outcome\":\"%s\"}"
    r.seq r.ts_ns r.id (escape r.trace_id) (escape r.op) (assoc_json r.sizes)
    (assoc_json r.phases_us) (escape r.outcome)

let to_json t =
  let rs = records t in
  Printf.sprintf
    "{\"capacity\":%d,\"written\":%d,\"dropped\":%d,\"records\":[%s]}"
    (capacity t) (written t) (dropped t)
    (String.concat "," (List.map record_json rs))
