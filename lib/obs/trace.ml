type attr = Int of int | Float of float | Str of string | Bool of bool

type attrs = (string * attr) list

type phase = Begin | End | Instant

type event = {
  name : string;
  phase : phase;
  ts_ns : int64;
  attrs : attrs;
}

type memory_state = {
  capacity : int;
  q : event Queue.t;
  mutable mem_dropped : int;
}

type chrome_state = {
  write : string -> unit;
  mutable first : bool;
  mutable closed : bool;
}

type sink =
  | Null
  | Memory of memory_state
  | Chrome of chrome_state

let null = Null

let memory ?(capacity = 262_144) () =
  if capacity <= 0 then invalid_arg "Obs.Trace.memory: capacity";
  Memory { capacity; q = Queue.create (); mem_dropped = 0 }

(* ----- chrome trace-event JSON ----- *)

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string b "\\\""
       | '\\' -> Buffer.add_string b "\\\\"
       | '\n' -> Buffer.add_string b "\\n"
       | '\r' -> Buffer.add_string b "\\r"
       | '\t' -> Buffer.add_string b "\\t"
       | c when Char.code c < 0x20 ->
         Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let attr_json = function
  | Int i -> string_of_int i
  | Float f ->
    if Float.is_finite f then Printf.sprintf "%.17g" f else "null"
  | Str s -> "\"" ^ escape s ^ "\""
  | Bool b -> if b then "true" else "false"

let chrome_writer write =
  write "[";
  Chrome { write; first = true; closed = false }

let chrome_channel oc = chrome_writer (output_string oc)

let phase_str = function Begin -> "B" | End -> "E" | Instant -> "i"

let chrome_emit c ev =
  if not c.closed then begin
    let b = Buffer.create 160 in
    if c.first then begin
      c.first <- false;
      Buffer.add_string b "\n "
    end
    else Buffer.add_string b ",\n ";
    Buffer.add_string b "{\"name\":\"";
    Buffer.add_string b (escape ev.name);
    Buffer.add_string b "\",\"ph\":\"";
    Buffer.add_string b (phase_str ev.phase);
    Buffer.add_string b "\",\"ts\":";
    Buffer.add_string b (Printf.sprintf "%.3f" (Clock.ns_to_us ev.ts_ns));
    Buffer.add_string b ",\"pid\":1,\"tid\":1";
    if ev.phase = Instant then Buffer.add_string b ",\"s\":\"t\"";
    (match ev.attrs with
     | [] -> ()
     | attrs ->
       Buffer.add_string b ",\"args\":{";
       List.iteri
         (fun i (k, v) ->
            if i > 0 then Buffer.add_char b ',';
            Buffer.add_char b '"';
            Buffer.add_string b (escape k);
            Buffer.add_string b "\":";
            Buffer.add_string b (attr_json v))
         attrs;
       Buffer.add_char b '}');
    Buffer.add_char b '}';
    c.write (Buffer.contents b)
  end

let close = function
  | Chrome c when not c.closed ->
    c.closed <- true;
    c.write "\n]\n"
  | Chrome _ | Null | Memory _ -> ()

(* ----- the process-wide tracer ----- *)

let current = ref Null

let set_sink s = current := s
let sink () = !current
let enabled () = !current != Null

let with_sink s f =
  let prev = !current in
  current := s;
  Fun.protect ~finally:(fun () -> current := prev) f

let emit ev =
  match !current with
  | Null -> ()
  | Memory m ->
    if Queue.length m.q >= m.capacity then begin
      ignore (Queue.pop m.q);
      m.mem_dropped <- m.mem_dropped + 1
    end;
    Queue.push ev m.q
  | Chrome c -> chrome_emit c ev

type span = { mutable extra : attrs; live : bool }

let inert = { extra = []; live = false }

let add sp k v = if sp.live then sp.extra <- (k, v) :: sp.extra

let with_span ?(attrs = []) name f =
  if not (enabled ()) then f inert
  else begin
    emit { name; phase = Begin; ts_ns = Clock.since_start_ns (); attrs };
    let sp = { extra = []; live = true } in
    match f sp with
    | r ->
      emit
        {
          name;
          phase = End;
          ts_ns = Clock.since_start_ns ();
          attrs = List.rev sp.extra;
        };
      r
    | exception e ->
      emit
        {
          name;
          phase = End;
          ts_ns = Clock.since_start_ns ();
          attrs = ("unwound", Bool true) :: List.rev sp.extra;
        };
      raise e
  end

let instant ?(attrs = []) name =
  if enabled () then
    emit { name; phase = Instant; ts_ns = Clock.since_start_ns (); attrs }

let events = function
  | Memory m -> List.of_seq (Queue.to_seq m.q)
  | Null | Chrome _ -> []

let dropped = function
  | Memory m -> m.mem_dropped
  | Null | Chrome _ -> 0
