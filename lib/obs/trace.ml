type attr = Int of int | Float of float | Str of string | Bool of bool

type attrs = (string * attr) list

type phase = Begin | End | Instant

type event = {
  name : string;
  phase : phase;
  ts_ns : int64;
  tid : int;
  attrs : attrs;
}

(* Events are stamped with the emitting domain's id, so a trace merged
   from several domains keeps its spans apart (one Chrome "thread" per
   domain). *)
let self_tid () = (Domain.self () :> int)

type memory_state = {
  capacity : int;
  q : event Queue.t;
  mutable mem_dropped : int;
  mem_lock : Mutex.t;
}

type chrome_state = {
  write : string -> unit;
  mutable first : bool;
  mutable closed : bool;
  chrome_lock : Mutex.t;
}

type sink =
  | Null
  | Memory of memory_state
  | Chrome of chrome_state

let null = Null

let memory ?(capacity = 262_144) () =
  if capacity <= 0 then invalid_arg "Obs.Trace.memory: capacity";
  Memory
    {
      capacity;
      q = Queue.create ();
      mem_dropped = 0;
      mem_lock = Mutex.create ();
    }

let locked m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

(* ----- chrome trace-event JSON ----- *)

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string b "\\\""
       | '\\' -> Buffer.add_string b "\\\\"
       | '\n' -> Buffer.add_string b "\\n"
       | '\r' -> Buffer.add_string b "\\r"
       | '\t' -> Buffer.add_string b "\\t"
       | c when Char.code c < 0x20 ->
         Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let attr_json = function
  | Int i -> string_of_int i
  | Float f ->
    if Float.is_finite f then Printf.sprintf "%.17g" f else "null"
  | Str s -> "\"" ^ escape s ^ "\""
  | Bool b -> if b then "true" else "false"

let chrome_writer write =
  write "[";
  Chrome { write; first = true; closed = false; chrome_lock = Mutex.create () }

let chrome_channel oc = chrome_writer (output_string oc)

let phase_str = function Begin -> "B" | End -> "E" | Instant -> "i"

let chrome_emit c ev =
  locked c.chrome_lock @@ fun () ->
  if not c.closed then begin
    let b = Buffer.create 160 in
    if c.first then begin
      c.first <- false;
      Buffer.add_string b "\n "
    end
    else Buffer.add_string b ",\n ";
    Buffer.add_string b "{\"name\":\"";
    Buffer.add_string b (escape ev.name);
    Buffer.add_string b "\",\"ph\":\"";
    Buffer.add_string b (phase_str ev.phase);
    Buffer.add_string b "\",\"ts\":";
    Buffer.add_string b (Printf.sprintf "%.3f" (Clock.ns_to_us ev.ts_ns));
    Buffer.add_string b ",\"pid\":1,\"tid\":";
    Buffer.add_string b (string_of_int ev.tid);
    if ev.phase = Instant then Buffer.add_string b ",\"s\":\"t\"";
    (match ev.attrs with
     | [] -> ()
     | attrs ->
       Buffer.add_string b ",\"args\":{";
       List.iteri
         (fun i (k, v) ->
            if i > 0 then Buffer.add_char b ',';
            Buffer.add_char b '"';
            Buffer.add_string b (escape k);
            Buffer.add_string b "\":";
            Buffer.add_string b (attr_json v))
         attrs;
       Buffer.add_char b '}');
    Buffer.add_char b '}';
    c.write (Buffer.contents b)
  end

let close = function
  | Chrome c ->
    locked c.chrome_lock (fun () ->
        if not c.closed then begin
          c.closed <- true;
          c.write "\n]\n"
        end)
  | Null | Memory _ -> ()

(* ----- the current tracer -----

   The current sink is domain-local: a freshly spawned domain starts at
   [Null] and is never implicitly affected by the parent's sink, so a
   worker traces only when its job explicitly installs a sink (see
   [Exec.map], which records into a per-domain memory buffer and lets
   the submitting domain merge).  A sink value itself may be shared by
   several domains; [Memory] and [Chrome] sinks serialize internally. *)

let current = Domain.DLS.new_key (fun () -> Null)

let set_sink s = Domain.DLS.set current s
let sink () = Domain.DLS.get current
let enabled () = Domain.DLS.get current != Null

let with_sink s f =
  let prev = Domain.DLS.get current in
  Domain.DLS.set current s;
  Fun.protect ~finally:(fun () -> Domain.DLS.set current prev) f

(* Process-wide total of ring-dropped events, across every memory sink
   that ever existed — the number a metrics endpoint can export without
   holding a reference to each sink. *)
let all_dropped = Atomic.make 0

let forward ev =
  match Domain.DLS.get current with
  | Null -> ()
  | Memory m ->
    locked m.mem_lock (fun () ->
        if Queue.length m.q >= m.capacity then begin
          ignore (Queue.pop m.q);
          m.mem_dropped <- m.mem_dropped + 1;
          Atomic.incr all_dropped
        end;
        Queue.push ev m.q)
  | Chrome c -> chrome_emit c ev

let emit ev = forward ev

type span = { mutable extra : attrs; live : bool }

let inert = { extra = []; live = false }

let add sp k v = if sp.live then sp.extra <- (k, v) :: sp.extra

let with_span ?(attrs = []) name f =
  if not (enabled ()) then f inert
  else begin
    let tid = self_tid () in
    emit { name; phase = Begin; ts_ns = Clock.since_start_ns (); tid; attrs };
    let sp = { extra = []; live = true } in
    match f sp with
    | r ->
      emit
        {
          name;
          phase = End;
          ts_ns = Clock.since_start_ns ();
          tid;
          attrs = List.rev sp.extra;
        };
      r
    | exception e ->
      emit
        {
          name;
          phase = End;
          ts_ns = Clock.since_start_ns ();
          tid;
          attrs = ("unwound", Bool true) :: List.rev sp.extra;
        };
      raise e
  end

let instant ?(attrs = []) name =
  if enabled () then
    emit
      {
        name;
        phase = Instant;
        ts_ns = Clock.since_start_ns ();
        tid = self_tid ();
        attrs;
      }

let events = function
  | Memory m -> locked m.mem_lock (fun () -> List.of_seq (Queue.to_seq m.q))
  | Null | Chrome _ -> []

let dropped = function
  | Memory m -> locked m.mem_lock (fun () -> m.mem_dropped)
  | Null | Chrome _ -> 0

let total_dropped () = Atomic.get all_dropped
