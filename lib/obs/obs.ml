(** Observability: monotonic timing ({!Clock}), span tracing with
    pluggable sinks ({!Trace}), named counters and histograms
    ({!Probe}), a typed labeled metrics registry with Prometheus
    exposition ({!Metrics}), a lock-striped flight recorder
    ({!Flight}), self/total-time profiles ({!Report}) and [Logs]
    wiring ({!Logging}).

    The package is dependency-light (no BDD knowledge) so every layer —
    engine, minimizers, FSM traversal, harness, CLI, benches — can emit
    into the same trace. *)

module Clock = Clock
module Trace = Trace
module Probe = Probe
module Metrics = Metrics
module Flight = Flight
module Report = Report
module Logging = Logging
