let nbuckets = 32

(* Probes are process-global and may be bumped from several domains at
   once (parallel capture jobs).  One mutex over both tables keeps every
   operation atomic; the sites are far too coarse-grained (per pass, per
   window) for the lock to be contended. *)
let lock = Mutex.create ()

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let counters_tbl : (string, int ref) Hashtbl.t = Hashtbl.create 64
let hists_tbl : (string, int array) Hashtbl.t = Hashtbl.create 64

let count name n =
  locked @@ fun () ->
  match Hashtbl.find_opt counters_tbl name with
  | Some r -> r := !r + n
  | None -> Hashtbl.add counters_tbl name (ref n)

let incr name = count name 1

(* Bucket 0: v <= 1; bucket i >= 1: 2^i <= v < 2^(i+1). *)
let bucket_of v =
  if v <= 1 then 0
  else begin
    let rec go v i = if v <= 1 then i else go (v lsr 1) (i + 1) in
    min (nbuckets - 1) (go v 0)
  end

let observe name v =
  locked @@ fun () ->
  let h =
    match Hashtbl.find_opt hists_tbl name with
    | Some h -> h
    | None ->
      let h = Array.make nbuckets 0 in
      Hashtbl.add hists_tbl name h;
      h
  in
  let i = bucket_of v in
  h.(i) <- h.(i) + 1

let counter_value name =
  locked @@ fun () ->
  match Hashtbl.find_opt counters_tbl name with Some r -> !r | None -> 0

let sorted_bindings tbl f =
  Hashtbl.fold (fun k v acc -> (k, f v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let counters () = locked @@ fun () -> sorted_bindings counters_tbl ( ! )

let histograms () =
  locked @@ fun () -> sorted_bindings hists_tbl (fun h -> Array.copy h)

let bucket_label i =
  if i = 0 then "0-1"
  else if i = nbuckets - 1 then Printf.sprintf "%d+" (1 lsl i)
  else Printf.sprintf "%d-%d" (1 lsl i) ((1 lsl (i + 1)) - 1)

let reset () =
  locked @@ fun () ->
  Hashtbl.reset counters_tbl;
  Hashtbl.reset hists_tbl

let pp ppf () =
  let counters = counters () in
  if counters <> [] then begin
    Format.fprintf ppf "@[<v>counters:@,";
    List.iter
      (fun (n, v) -> Format.fprintf ppf "  %-40s %d@," n v)
      counters;
    Format.fprintf ppf "@]"
  end;
  let hists = histograms () in
  if hists <> [] then begin
    Format.fprintf ppf "@[<v>histograms (log2 buckets):@,";
    List.iter
      (fun (n, h) ->
         Format.fprintf ppf "  %s:@," n;
         Array.iteri
           (fun i c ->
              if c > 0 then
                Format.fprintf ppf "    %-12s %d@," (bucket_label i) c)
           h)
      hists;
    Format.fprintf ppf "@]"
  end
