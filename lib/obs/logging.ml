let setup ?(default = Logs.Warning) () =
  Logs.set_reporter (Logs_fmt.reporter ());
  let level =
    match Sys.getenv_opt "BDDMIN_LOG" with
    | Some ("quiet" | "none") -> None
    | Some s -> (
        match Logs.level_of_string s with
        | Ok l -> l
        | Error _ -> Some default)
    | None -> Some default
  in
  Logs.set_level level
