(* Typed, labeled metrics with Prometheus text exposition.

   Layout: one process-global table of families; each family holds its
   series as an ordered assoc of label-value vectors to cells.  Cells
   are plain [Atomic.t]s (histograms: one per bucket plus sum and
   count), so the registry mutex guards only registration and label
   resolution — the per-update fast path is a single fetch-and-add with
   no lock, safe from any domain. *)

type kind = Counter | Gauge | Histogram

let nbuckets = 32

(* Same scheme as [Probe]: bucket 0 holds v <= 1, bucket i >= 1 holds
   2^i <= v < 2^(i+1). *)
let bucket_of v =
  if v <= 1 then 0
  else begin
    let rec go v i = if v <= 1 then i else go (v lsr 1) (i + 1) in
    min (nbuckets - 1) (go v 0)
  end

type hist = {
  buckets : int Atomic.t array;
  sum : int Atomic.t;
  count : int Atomic.t;
}

type cell = Ccell of int Atomic.t | Gcell of int Atomic.t | Hcell of hist

type fam = {
  name : string;
  help : string;
  kind : kind;
  label_names : string list;
  mutable series : (string list * cell) list;  (* creation order *)
}

type 'a family = { fam : fam; inj : cell -> 'a }

type counter = int Atomic.t
type gauge = int Atomic.t
type histogram = hist

(* ----- registry ----- *)

let lock = Mutex.create ()

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let families : (string, fam) Hashtbl.t = Hashtbl.create 32

let valid_metric_name n =
  n <> ""
  && (match n.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true
               | _ -> false)
       n

let valid_label_name n =
  n <> ""
  && (match n.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true
               | _ -> false)
       n

let register ~kind ~help ~labels name inj =
  if not (valid_metric_name name) then
    invalid_arg (Printf.sprintf "Obs.Metrics: invalid metric name %S" name);
  List.iter
    (fun l ->
       if not (valid_label_name l) then
         invalid_arg
           (Printf.sprintf "Obs.Metrics: invalid label name %S (metric %s)" l
              name))
    labels;
  locked @@ fun () ->
  match Hashtbl.find_opt families name with
  | Some f ->
    if f.kind <> kind || f.help <> help || f.label_names <> labels then
      invalid_arg
        (Printf.sprintf
           "Obs.Metrics: %s already registered with a different \
            kind/help/label set"
           name);
    { fam = f; inj }
  | None ->
    let f = { name; help; kind; label_names = labels; series = [] } in
    Hashtbl.add families name f;
    { fam = f; inj }

let counter ?(help = "") ?(labels = []) name =
  register ~kind:Counter ~help ~labels name (function
    | Ccell a -> a
    | _ -> assert false)

let gauge ?(help = "") ?(labels = []) name =
  register ~kind:Gauge ~help ~labels name (function
    | Gcell a -> a
    | _ -> assert false)

let histogram ?(help = "") ?(labels = []) name =
  register ~kind:Histogram ~help ~labels name (function
    | Hcell h -> h
    | _ -> assert false)

let new_cell = function
  | Counter -> Ccell (Atomic.make 0)
  | Gauge -> Gcell (Atomic.make 0)
  | Histogram ->
    Hcell
      {
        buckets = Array.init nbuckets (fun _ -> Atomic.make 0);
        sum = Atomic.make 0;
        count = Atomic.make 0;
      }

let labels { fam; inj } values =
  if List.length values <> List.length fam.label_names then
    invalid_arg
      (Printf.sprintf "Obs.Metrics: %s expects %d label value(s), got %d"
         fam.name
         (List.length fam.label_names)
         (List.length values));
  locked @@ fun () ->
  match List.assoc_opt values fam.series with
  | Some cell -> inj cell
  | None ->
    let cell = new_cell fam.kind in
    fam.series <- fam.series @ [ (values, cell) ];
    inj cell

let handle f = labels f []

(* ----- updates ----- *)

let inc (c : counter) = Atomic.incr c

let add (c : counter) n =
  if n < 0 then invalid_arg "Obs.Metrics.add: counters only go up";
  ignore (Atomic.fetch_and_add c n)

let counter_value (c : counter) = Atomic.get c

let set (g : gauge) v = Atomic.set g v
let gauge_add (g : gauge) d = ignore (Atomic.fetch_and_add g d)
let gauge_value (g : gauge) = Atomic.get g

let observe (h : histogram) v =
  ignore (Atomic.fetch_and_add h.buckets.(bucket_of v) 1);
  ignore (Atomic.fetch_and_add h.sum (max v 0));
  ignore (Atomic.fetch_and_add h.count 1)

(* ----- scraping ----- *)

type value =
  | Counter_v of int
  | Gauge_v of int
  | Histogram_v of { buckets : int array; sum : int; count : int }

type series = { labels : (string * string) list; value : value }

type family_snapshot = {
  name : string;
  help : string;
  kind : kind;
  series : series list;
}

let cell_value = function
  | Ccell a -> Counter_v (Atomic.get a)
  | Gcell a -> Gauge_v (Atomic.get a)
  | Hcell h ->
    Histogram_v
      {
        buckets = Array.map Atomic.get h.buckets;
        sum = Atomic.get h.sum;
        count = Atomic.get h.count;
      }

let snapshot () =
  let fams =
    locked @@ fun () ->
    Hashtbl.fold (fun _ (f : fam) acc -> (f, f.series) :: acc) families []
    |> List.sort (fun ((a : fam), _) (b, _) -> compare a.name b.name)
  in
  List.map
    (fun ((f : fam), series) ->
       {
         name = f.name;
         help = f.help;
         kind = f.kind;
         series =
           List.map
             (fun (values, cell) ->
                {
                  labels = List.combine f.label_names values;
                  value = cell_value cell;
                })
             series;
       })
    fams

(* ----- Prometheus text exposition (v0.0.4) ----- *)

let escape_label_value s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
       match c with
       | '\\' -> Buffer.add_string b "\\\\"
       | '"' -> Buffer.add_string b "\\\""
       | '\n' -> Buffer.add_string b "\\n"
       | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let escape_help s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
       match c with
       | '\\' -> Buffer.add_string b "\\\\"
       | '\n' -> Buffer.add_string b "\\n"
       | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let label_str labels =
  match labels with
  | [] -> ""
  | ls ->
    "{"
    ^ String.concat ","
        (List.map
           (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label_value v))
           ls)
    ^ "}"

let kind_str = function
  | Counter -> "counter"
  | Gauge -> "gauge"
  | Histogram -> "histogram"

(* The upper bound of log2 bucket i as an inclusive integer le: bucket 0
   is <= 1, bucket i is < 2^(i+1) i.e. <= 2^(i+1)-1; the last bucket is
   open-ended (+Inf). *)
let le_of_bucket i = (1 lsl (i + 1)) - 1

let expose () =
  let b = Buffer.create 4096 in
  List.iter
    (fun f ->
       if f.help <> "" then
         Buffer.add_string b
           (Printf.sprintf "# HELP %s %s\n" f.name (escape_help f.help));
       Buffer.add_string b
         (Printf.sprintf "# TYPE %s %s\n" f.name (kind_str f.kind));
       List.iter
         (fun s ->
            match s.value with
            | Counter_v v | Gauge_v v ->
              Buffer.add_string b
                (Printf.sprintf "%s%s %d\n" f.name (label_str s.labels) v)
            | Histogram_v { buckets; sum; count } ->
              let cum = ref 0 in
              Array.iteri
                (fun i c ->
                   cum := !cum + c;
                   let le =
                     if i = nbuckets - 1 then "+Inf"
                     else string_of_int (le_of_bucket i)
                   in
                   Buffer.add_string b
                     (Printf.sprintf "%s_bucket%s %d\n" f.name
                        (label_str (s.labels @ [ ("le", le) ]))
                        !cum))
                buckets;
              Buffer.add_string b
                (Printf.sprintf "%s_sum%s %d\n" f.name (label_str s.labels)
                   sum);
              Buffer.add_string b
                (Printf.sprintf "%s_count%s %d\n" f.name (label_str s.labels)
                   count))
         f.series)
    (snapshot ());
  Buffer.contents b

let reset () = locked @@ fun () -> Hashtbl.reset families
