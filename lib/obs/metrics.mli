(** A typed, labeled metrics registry with Prometheus text exposition.

    Where {!Probe} is a stringly scratchpad ("bump whatever name you
    compose"), this module is the production surface: metric families
    are {e registered once} with a name, help text and a fixed set of
    label names, and updated through typed handles — a counter cannot be
    set backwards, a gauge can, a histogram only observes.  Families are
    process-global and scrape-ready: {!expose} renders the whole
    registry in Prometheus text exposition format (v0.0.4), and
    {!snapshot} hands the same data to programmatic consumers (the serve
    daemon's [metrics] wire op, [serve-ctl watch]).

    {b Domain-safety contract.}  Registration (creating a family or
    resolving a label set to a handle) takes a process-wide mutex —
    do it once, at module init or server start, not per request.
    {e Updates} on a resolved handle are lock-free ([Atomic] increments;
    one fetch-and-add per counter bump, two per histogram observation),
    so many domains can bump the same handle concurrently without
    contention beyond cache-line traffic.  Snapshots read the same
    atomics; a scrape concurrent with updates sees each series at some
    recent value (histogram bucket counts may be momentarily ahead of
    the sum — buckets are updated first — but every value is monotone
    and no tearing beyond that is possible).

    Histogram buckets are the same log2 scheme as {!Probe}: bucket 0
    holds observations [<= 1], bucket [i >= 1] holds [[2{^i}, 2{^i+1})].
    Exposed upper bounds are therefore 1, 3, 7, …, [2{^i+1}-1], +Inf.

    Metric names must match [[a-zA-Z_:][a-zA-Z0-9_:]*] and label names
    [[a-zA-Z_][a-zA-Z0-9_]*]; violations raise [Invalid_argument], as
    does re-registering a name with a different kind, help text or label
    set (the same registration is idempotent and returns the original
    family). *)

type kind = Counter | Gauge | Histogram

(** {1 Families and handles} *)

type 'a family
(** A registered metric family; ['a] is the handle type its label sets
    resolve to. *)

type counter
type gauge
type histogram

val counter :
  ?help:string -> ?labels:string list -> string -> counter family

val gauge : ?help:string -> ?labels:string list -> string -> gauge family

val histogram :
  ?help:string -> ?labels:string list -> string -> histogram family

val labels : 'a family -> string list -> 'a
(** Resolve one label-value vector to its series handle (creating the
    series on first use; cached thereafter).  The vector length must
    match the family's label names.  Takes the registry mutex — resolve
    once and keep the handle on hot paths.
    @raise Invalid_argument on arity mismatch. *)

val handle : 'a family -> 'a
(** [labels fam []] for label-less families. *)

(** {1 Updates (lock-free)} *)

val inc : counter -> unit
val add : counter -> int -> unit
(** Bump a counter (by 1 / by [n >= 0]; negative [n] raises). *)

val counter_value : counter -> int

val set : gauge -> int -> unit
val gauge_add : gauge -> int -> unit
(** Set / adjust a gauge ([gauge_add] accepts negative deltas). *)

val gauge_value : gauge -> int

val observe : histogram -> int -> unit
(** Record one observation (negative values clamp to bucket 0). *)

(** {1 Scraping} *)

type value =
  | Counter_v of int
  | Gauge_v of int
  | Histogram_v of { buckets : int array; sum : int; count : int }
      (** [buckets] are per-bucket (not cumulative) log2 counts. *)

type series = { labels : (string * string) list; value : value }

type family_snapshot = {
  name : string;
  help : string;
  kind : kind;
  series : series list;  (** in label-resolution order *)
}

val snapshot : unit -> family_snapshot list
(** Every registered family, sorted by name. *)

val expose : unit -> string
(** The registry in Prometheus text exposition format: one [# HELP] and
    [# TYPE] comment per family, cumulative [_bucket{le="…"}] /
    [_sum] / [_count] series per histogram. *)

val reset : unit -> unit
(** Unregister everything (tests; a handle kept across [reset] still
    updates but is no longer scraped). *)
