(** Self/total-time profile from a memory sink's event stream.

    Replays the span stream with one stack {e per emitting domain}
    (events carry the domain id, so streams merged from parallel
    workers pair correctly): a span's {e total} time is its
    [Begin]→[End] interval; its {e self} time is the total minus the
    totals of its direct children.  Instants contribute occurrence
    counts only.  Streams truncated by the ring buffer degrade
    gracefully: an [End] with no open span is dropped, and spans left
    open at the end of the stream are ignored. *)

type row = {
  name : string;
  count : int;  (** completed spans (or instants) of this name *)
  total_ns : int64;
  self_ns : int64;
}

val of_events : Trace.event list -> row list
(** Aggregate per span name, sorted by decreasing total time. *)

val pp : Format.formatter -> row list -> unit
(** Render as a table: phase, count, total s, self s, self %%. *)
