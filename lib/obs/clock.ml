let now_ns () = Monotonic_clock.now ()

let epoch_ns = now_ns ()

let since_start_ns () = Int64.sub (now_ns ()) epoch_ns

let ns_to_s ns = Int64.to_float ns /. 1e9
let ns_to_us ns = Int64.to_float ns /. 1e3

let timed f =
  let t0 = now_ns () in
  let r = f () in
  (r, ns_to_s (Int64.sub (now_ns ()) t0))
