type row = {
  name : string;
  count : int;
  total_ns : int64;
  self_ns : int64;
}

let of_events events =
  let rows : (string, row ref) Hashtbl.t = Hashtbl.create 32 in
  let record name total self =
    match Hashtbl.find_opt rows name with
    | Some r ->
      r :=
        {
          !r with
          count = !r.count + 1;
          total_ns = Int64.add !r.total_ns total;
          self_ns = Int64.add !r.self_ns self;
        }
    | None ->
      Hashtbl.add rows name (ref { name; count = 1; total_ns = total; self_ns = self })
  in
  (* per-domain stacks of open spans: (name, begin ts, children's total).
     Merged multi-domain streams interleave B/E pairs from different
     domains, so pairing must follow the event's [tid]. *)
  let stacks : (int, (string * int64 * int64 ref) Stack.t) Hashtbl.t =
    Hashtbl.create 4
  in
  let stack_of tid =
    match Hashtbl.find_opt stacks tid with
    | Some s -> s
    | None ->
      let s = Stack.create () in
      Hashtbl.add stacks tid s;
      s
  in
  List.iter
    (fun (ev : Trace.event) ->
       let stack = stack_of ev.Trace.tid in
       match ev.Trace.phase with
       | Trace.Begin -> Stack.push (ev.name, ev.ts_ns, ref 0L) stack
       | Trace.Instant -> record ev.name 0L 0L
       | Trace.End ->
         (match Stack.pop_opt stack with
          | None -> () (* begin lost to ring truncation *)
          | Some (name, t0, children) ->
            let total = Int64.sub ev.ts_ns t0 in
            let self = Int64.sub total !children in
            record name total self;
            (match Stack.top_opt stack with
             | Some (_, _, parent_children) ->
               parent_children := Int64.add !parent_children total
             | None -> ())))
    events;
  Hashtbl.fold (fun _ r acc -> !r :: acc) rows []
  |> List.sort (fun a b -> compare b.total_ns a.total_ns)

let pp ppf rows =
  let grand_self =
    List.fold_left (fun acc r -> Int64.add acc r.self_ns) 0L rows
  in
  let pct self =
    if Int64.equal grand_self 0L then 0.0
    else 100.0 *. Int64.to_float self /. Int64.to_float grand_self
  in
  Format.fprintf ppf "@[<v>%-28s %8s %12s %12s %7s@,"
    "phase" "count" "total(s)" "self(s)" "self%";
  List.iter
    (fun r ->
       Format.fprintf ppf "%-28s %8d %12.4f %12.4f %6.1f%%@," r.name r.count
         (Clock.ns_to_s r.total_ns)
         (Clock.ns_to_s r.self_ns)
         (pct r.self_ns))
    rows;
  Format.fprintf ppf "@]"
