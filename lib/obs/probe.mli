(** Lightweight named metrics: monotone counters and log2-bucketed
    histograms.

    Probes are process-global and always on — each observation is one
    hashtable lookup and an integer bump, cheap enough for the per-pass
    and per-iteration call sites that use them.  Typical series:
    matching-graph sizes, clique-cover degrees, sibling recursion
    depths.

    {b Thread-safety contract.}  Unlike {!Trace}'s domain-local sink,
    the probe tables are shared by every domain: all operations
    (including {!counters} / {!histograms} snapshots and {!reset}) take
    one process-wide mutex, so concurrent bumps from parallel capture
    jobs merge losslessly into the same counters.  The call sites are
    coarse-grained (per pass, per window), so contention is nil; callers
    needing per-job attribution should snapshot {!counters} before and
    after a {e sequential} run instead. *)

val incr : string -> unit
val count : string -> int -> unit
(** Bump a named counter (by 1 / by [n]). *)

val observe : string -> int -> unit
(** Record a sample in the named histogram.  Bucket 0 holds samples
    [<= 1]; bucket [i >= 1] holds samples in [[2{^i}, 2{^i+1})]. *)

val counter_value : string -> int
(** Current value of a counter (0 if never bumped). *)

val counters : unit -> (string * int) list
(** All counters, sorted by name. *)

val histograms : unit -> (string * int array) list
(** All histograms (bucket counts, index = log2 bucket), sorted by
    name. *)

val bucket_label : int -> string
(** Human-readable value range of a bucket index, e.g. ["8-15"]. *)

val reset : unit -> unit
(** Drop all counters and histograms (tests, repeated CLI runs). *)

val pp : Format.formatter -> unit -> unit
(** Render every counter and histogram. *)
