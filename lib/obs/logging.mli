(** One-call [Logs] setup for executables outside the CLI (which has
    its own [Logs_cli] handling): installs the [Fmt] reporter and sets
    the level, so the library sources ([bddmin.reach],
    [bddmin.capture], …) are visible from the benches and examples.

    The [BDDMIN_LOG] environment variable overrides the level:
    ["debug"], ["info"], ["warning"], ["error"], ["app"], or ["quiet"]
    to disable reporting entirely. *)

val setup : ?default:Logs.level -> unit -> unit
(** Install the reporter; level from [BDDMIN_LOG], else [default]
    (itself defaulting to [Logs.Warning]). *)
