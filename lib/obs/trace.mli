(** Span-based tracing.

    A {e span} is a named, nested interval of monotonic time with
    key/value attributes; an {e instant} is a point event.  Events flow
    to the current {e sink}:

    - {!null} — the default; everything compiles down to one branch on
      {!enabled} and no allocation, so instrumented hot paths cost
      nothing when tracing is off;
    - {!memory} — a bounded ring buffer of decoded events (oldest
      dropped first), the substrate of {!Report} and of tests;
    - {!chrome_writer} / {!chrome_channel} — streaming Chrome
      trace-event JSON ("B"/"E"/"i" phases), loadable in Perfetto or
      chrome://tracing.

    {b Thread-safety contract.}  The current sink is {e domain-local}
    ([Domain.DLS]): a newly spawned domain starts with {!null} and
    installing a sink in one domain never affects another, so parallel
    workers are untraced unless their job installs a sink of its own
    (the [Exec] layer records each job into a per-domain {!memory}
    buffer and merges into the submitter's sink afterwards, via
    {!forward}).  Sink {e values} may nevertheless be shared across
    domains — {!memory} and chrome sinks serialize all mutation behind
    an internal mutex, so concurrent emission is safe, merely
    interleaved.  Every event is stamped with the id of the emitting
    domain ([tid]); the chrome writer maps it to the trace "thread",
    and {!Report} keeps a separate span stack per [tid].

    [with_sink] scopes a sink to a call and restores the previous one
    on exit or exception. *)

type attr = Int of int | Float of float | Str of string | Bool of bool

type attrs = (string * attr) list

type phase = Begin | End | Instant

type event = {
  name : string;
  phase : phase;
  ts_ns : int64;  (** monotonic, relative to process start *)
  tid : int;  (** id of the emitting domain *)
  attrs : attrs;
}

(** {1 Sinks} *)

type sink

val null : sink

val memory : ?capacity:int -> unit -> sink
(** A ring buffer holding the most recent [capacity] events (default
    262144); older events are dropped oldest-first and counted. *)

val chrome_writer : (string -> unit) -> sink
(** Stream Chrome trace-event JSON through the given writer.  The
    opening ["["] is written immediately; {!close} writes the closing
    ["]"] (without it the file is still loadable by Chrome but is not
    well-formed JSON).  The writer is only ever called with the sink's
    mutex held, so it need not be thread-safe itself. *)

val chrome_channel : out_channel -> sink
(** [chrome_writer] over an [out_channel] (the caller closes the
    channel after {!close}). *)

val close : sink -> unit
(** Finish a chrome sink's JSON document; a no-op on other sinks and on
    second calls. *)

val set_sink : sink -> unit
(** Install the sink for the calling domain. *)

val sink : unit -> sink
(** The calling domain's current sink. *)

val enabled : unit -> bool
(** [true] iff the calling domain's current sink is not {!null}. *)

val with_sink : sink -> (unit -> 'a) -> 'a
(** Install the sink for the duration of the call, restoring the
    previous sink afterwards (also on exceptions).  Domain-local, like
    {!set_sink}. *)

(** {1 Recording} *)

type span
(** A handle to an open span, used to attach attributes discovered
    before the span closes (result sizes, match counts, …).  Inert when
    tracing is disabled. *)

val with_span : ?attrs:attrs -> string -> (span -> 'a) -> 'a
(** [with_span name f] emits a [Begin] event carrying [attrs], runs
    [f], and emits the balancing [End] event carrying the attributes
    added through {!add} — also when [f] raises, with an extra
    [("unwound", Bool true)] attribute, so B/E events always balance. *)

val add : span -> string -> attr -> unit
(** Attach an attribute to the span's [End] event.  Cheap, but callers
    computing expensive attribute {e values} (e.g. BDD sizes) should
    guard on {!enabled}. *)

val instant : ?attrs:attrs -> string -> unit
(** Emit a point event. *)

val forward : event -> unit
(** Re-emit an already-recorded event into the calling domain's current
    sink, preserving its timestamp and [tid] — the merge primitive for
    per-domain buffers collected by a parallel run. *)

val self_tid : unit -> int
(** The calling domain's id, as stamped into events. *)

(** {1 Memory-sink access} *)

val events : sink -> event list
(** Retained events of a memory sink, oldest first; [[]] on other
    sinks. *)

val dropped : sink -> int
(** Events dropped by a memory sink's ring; [0] on other sinks. *)

val total_dropped : unit -> int
(** Events dropped by {e every} memory sink over the process lifetime —
    the exportable aggregate for metrics endpoints, which cannot poll
    each sink individually. *)
