type result = {
  covers : Bdd.t list;
  shared_before : int;
  shared_after : int;
}

let bits_needed n =
  let rec go k = if 1 lsl k >= n then k else go (k + 1) in
  go 0

let selector_cube man ~bits j =
  let rec go v acc =
    if v < 0 then acc
    else
      let lit = Bdd.ithvar man v in
      let lit = if (j lsr v) land 1 = 1 then lit else Bdd.compl lit in
      go (v - 1) (Bdd.dand man lit acc)
  in
  go (bits - 1) (Bdd.one man)

let minimize ?par man ~minimizer instances =
  (match instances with
   | [] -> invalid_arg "Vector.minimize: empty vector"
   | _ -> ());
  List.iter
    (fun (s : Ispec.t) ->
       if Bdd.is_zero s.c then
         invalid_arg "Vector.minimize: empty care set")
    instances;
  let n = List.length instances in
  let bits = bits_needed n in
  let min_support =
    List.fold_left
      (fun acc (s : Ispec.t) ->
         List.fold_left min acc (Bdd.support man s.f @ Bdd.support man s.c))
      max_int instances
  in
  if bits > 0 && min_support < bits then
    invalid_arg
      (Printf.sprintf
         "Vector.minimize: instance supports must start at variable %d \
          (selector variables need the top of the order); use \
          minimize_renamed"
         bits);
  let shared_before =
    Bdd.shared_size man (List.map (fun (s : Ispec.t) -> s.Ispec.f) instances)
  in
  let combined =
    List.fold_left
      (fun (j, acc_f, acc_c) (s : Ispec.t) ->
         let sel = selector_cube man ~bits j in
         ( j + 1,
           Bdd.dor man acc_f (Bdd.dand man sel s.f),
           Bdd.dor man acc_c (Bdd.dand man sel s.c) ))
      (0, Bdd.zero man, Bdd.zero man)
      instances
  in
  let _, big_f, big_c = combined in
  let cover = minimizer man (Ispec.make ~f:big_f ~c:big_c) in
  let extract man j =
    let rec go v g =
      if v >= bits then g else go (v + 1) (Bdd.cofactor man g ~var:v ((j lsr v) land 1 = 1))
    in
    go 0 cover
  in
  let covers =
    (* per-output cover recovery is independent cofactoring of the joint
       cover; with a context each output extracts on its own view of the
       shared store, producing the same canonical edges in any order *)
    match par with
    | Some par when n > 1 ->
      Par.map par extract (List.mapi (fun j _ -> j) instances)
    | _ -> List.mapi (fun j _ -> extract man j) instances
  in
  {
    covers;
    shared_before;
    shared_after = Bdd.shared_size man covers;
  }

let minimize_renamed ?par man ~minimizer instances =
  (match instances with
   | [] -> invalid_arg "Vector.minimize_renamed: empty vector"
   | _ -> ());
  let n = List.length instances in
  let bits = bits_needed n in
  if bits = 0 then minimize ?par man ~minimizer instances
  else begin
    let union_support (s : Ispec.t) =
      List.sort_uniq compare (Bdd.support man s.f @ Bdd.support man s.c)
    in
    let vars =
      List.sort_uniq compare (List.concat_map union_support instances)
    in
    let up = List.map (fun v -> (v, v + bits)) vars in
    let down = List.map (fun (a, b) -> (b, a)) up in
    let shift mapping g = Bdd.rename man g mapping in
    let shifted =
      List.map
        (fun (s : Ispec.t) ->
           Ispec.make ~f:(shift up s.f) ~c:(shift up s.c))
        instances
    in
    let r = minimize ?par man ~minimizer shifted in
    let covers = List.map (shift down) r.covers in
    {
      covers;
      shared_before =
        Bdd.shared_size man (List.map (fun (s : Ispec.t) -> s.Ispec.f) instances);
      shared_after = Bdd.shared_size man covers;
    }
  end
