(** Sibling-matching heuristics: the paper's generic top-down algorithm
    (Figure 2) and its eight distinct named instances (Table 2).

    The algorithm traverses [f] and [c] in lock-step, attempting to match
    the two children ("siblings") of each visited node under a matching
    criterion; on success the parent node is eliminated.  Three parameters
    select a heuristic: the criterion, the match-complement flag (try
    matching one sibling against the complement of the other) and the
    no-new-vars flag (never introduce [c]'s top variable into the support
    of an [f] that is independent of it). *)

type config = {
  criterion : Matching.criterion;
  match_compl : bool;
  no_new_vars : bool;
}

(** The eight distinct rows of Table 2 (rows 3, 4, 10, 12 coincide with
    1, 2, 9, 11). *)
type heuristic =
  | Constrain  (** row 1: [osdm] *)
  | Restrict  (** row 2: [osdm] + no-new-vars *)
  | Osm_td  (** row 5: [osm] *)
  | Osm_nv  (** row 6: [osm] + no-new-vars *)
  | Osm_cp  (** row 7: [osm] + match-complement *)
  | Osm_bt  (** row 8: [osm] + both flags *)
  | Tsm_td  (** row 9: [tsm] *)
  | Tsm_cp  (** row 11: [tsm] + match-complement *)

val all_heuristics : heuristic list
val heuristic_name : heuristic -> string
val heuristic_of_name : string -> heuristic option
val config_of_heuristic : heuristic -> config

val run : Bdd.man -> config -> Ispec.t -> Bdd.t
(** [run man cfg s] is the paper's [generic_td].  Requires [s.c ≠ 0].
    The result is always a cover of [s] and never has a variable outside
    the supports of [s.f] and [s.c]. *)

val run_heuristic : Bdd.man -> heuristic -> Ispec.t -> Bdd.t

val run_clamped : Bdd.man -> config -> Ispec.t -> Bdd.t
(** [run] followed by the Proposition 6 fallback: return [s.f] itself when
    the heuristic's answer is larger. *)

val transform_window : Bdd.man -> config -> lo:int -> hi:int -> Ispec.t -> Ispec.t
(** Sibling matching as a {e transformation}, for the §3.4 scheduler:
    matches are only attempted at nodes whose level lies in [\[lo, hi)];
    the subgraph below the window is left untouched.  The result is an
    i-cover of the input (its care set only grows), not yet a cover. *)
