type params = {
  window_size : int;
  stop_top_down : int;
  use_level_matching : bool;
  osm_config : Sibling.config;
  tsm_config : Sibling.config;
  level_params : Level.params;
}

let default_params =
  {
    window_size = 4;
    stop_top_down = 6;
    use_level_matching = false;
    osm_config = Sibling.config_of_heuristic Sibling.Osm_bt;
    tsm_config = Sibling.config_of_heuristic Sibling.Tsm_cp;
    level_params = Level.default_params;
  }

let run man ?(params = default_params) (s : Ispec.t) =
  if Bdd.is_zero s.Ispec.c then invalid_arg "Schedule.run: empty care set";
  if params.window_size <= 0 then invalid_arg "Schedule.run: window_size";
  let nlevels = Level.max_level man s + 1 in
  Obs.Trace.with_span "minimize.schedule"
    ~attrs:
      [
        ("nlevels", Obs.Trace.Int nlevels);
        ("window_size", Obs.Trace.Int params.window_size);
        ("stop_top_down", Obs.Trace.Int params.stop_top_down);
        ("level_matching", Obs.Trace.Bool params.use_level_matching);
      ]
  @@ fun sched_sp ->
  let windows = ref 0 in
  let apply_levels lo hi spec =
    let rec go level crit spec =
      if level >= hi then spec
      else
        go (level + 1) crit
          (Level.minimize_at_level man ~params:params.level_params crit ~level
             spec)
    in
    let spec = go lo Matching.Osm spec in
    go lo Matching.Tsm spec
  in
  let window lo hi spec =
    incr windows;
    Obs.Probe.incr "schedule.windows";
    Obs.Trace.with_span "schedule.window"
      ~attrs:[ ("lo", Obs.Trace.Int lo); ("hi", Obs.Trace.Int hi) ]
    @@ fun sp ->
    (* the sizes are only worth their traversals when someone records
       them *)
    let traced = Obs.Trace.enabled () in
    let before = if traced then Bdd.size man spec.Ispec.f else 0 in
    let spec = Sibling.transform_window man params.osm_config ~lo ~hi spec in
    let spec = Sibling.transform_window man params.tsm_config ~lo ~hi spec in
    let spec =
      if params.use_level_matching then apply_levels lo hi spec else spec
    in
    if traced then begin
      let after = Bdd.size man spec.Ispec.f in
      Obs.Trace.add sp "f_nodes_before" (Obs.Trace.Int before);
      Obs.Trace.add sp "f_nodes_after" (Obs.Trace.Int after);
      Obs.Trace.add sp "nodes_removed" (Obs.Trace.Int (before - after))
    end;
    spec
  in
  (* The schedule is anytime by construction: every completed window
     leaves [spec.f] a cover of the original instance, so on budget
     exhaustion the partially transformed window is discarded and the
     best-so-far cover is kept.  The final [constrain] gets the same
     treatment — if even it cannot finish, [spec.f] itself stands. *)
  let final spec =
    try Bdd.constrain man spec.Ispec.f spec.Ispec.c
    with Bdd.Budget_exhausted _ -> spec.Ispec.f
  in
  let rec loop lo spec =
    if Bdd.is_one spec.Ispec.c then spec.Ispec.f
    else if nlevels - lo < params.stop_top_down || lo >= nlevels then
      final spec
    else begin
      let hi = min nlevels (lo + params.window_size) in
      match window lo hi spec with
      | spec' -> loop hi spec'
      | exception Bdd.Budget_exhausted _ -> final spec
    end
  in
  let r = loop 0 s in
  Obs.Trace.add sched_sp "windows" (Obs.Trace.Int !windows);
  r
