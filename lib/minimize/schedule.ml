type params = {
  window_size : int;
  stop_top_down : int;
  use_level_matching : bool;
  osm_config : Sibling.config;
  tsm_config : Sibling.config;
  level_params : Level.params;
}

let default_params =
  {
    window_size = 4;
    stop_top_down = 6;
    use_level_matching = false;
    osm_config = Sibling.config_of_heuristic Sibling.Osm_bt;
    tsm_config = Sibling.config_of_heuristic Sibling.Tsm_cp;
    level_params = Level.default_params;
  }

let run man ?(params = default_params) (s : Ispec.t) =
  if Bdd.is_zero s.Ispec.c then invalid_arg "Schedule.run: empty care set";
  if params.window_size <= 0 then invalid_arg "Schedule.run: window_size";
  let nlevels = Level.max_level man s + 1 in
  let apply_levels lo hi spec =
    let rec go level crit spec =
      if level >= hi then spec
      else
        go (level + 1) crit
          (Level.minimize_at_level man ~params:params.level_params crit ~level
             spec)
    in
    let spec = go lo Matching.Osm spec in
    go lo Matching.Tsm spec
  in
  let rec loop lo spec =
    if Bdd.is_one spec.Ispec.c then spec.Ispec.f
    else if nlevels - lo < params.stop_top_down || lo >= nlevels then
      Bdd.constrain man spec.Ispec.f spec.Ispec.c
    else begin
      let hi = min nlevels (lo + params.window_size) in
      let spec = Sibling.transform_window man params.osm_config ~lo ~hi spec in
      let spec = Sibling.transform_window man params.tsm_config ~lo ~hi spec in
      let spec =
        if params.use_level_matching then apply_levels lo hi spec else spec
      in
      loop hi spec
    end
  in
  loop 0 s
