type t = { cubes : Bdd.Cube.cube list; cover : Bdd.t }

(* Minato-Morreale recursion on the interval (l, u), l <= u invariant.
   Returns the cube list and its function.  Cubes are built root-first. *)
let of_interval man ~lower ~upper =
  if not (Bdd.leq man lower upper) then
    invalid_arg "Isop.of_interval: empty interval";
  let memo = Hashtbl.create 256 in
  let rec go l u =
    if Bdd.is_zero l then ([], Bdd.zero man)
    else if Bdd.is_one u then ([ [] ], Bdd.one man)
    else
      let key = (Bdd.uid l, Bdd.uid u) in
      match Hashtbl.find_opt memo key with
      | Some r -> r
      | None ->
        let v = min (Bdd.topvar l) (Bdd.topvar u) in
        let l1, l0 = Bdd.branches man l v and u1, u0 = Bdd.branches man u v in
        (* Minterms that can only be covered with the ¬v literal, resp. v. *)
        let lneg = Bdd.diff man l0 u1 in
        let lpos = Bdd.diff man l1 u0 in
        let c0, f0 = go lneg u0 in
        let c1, f1 = go lpos u1 in
        (* What remains must be covered by cubes independent of v. *)
        let ld =
          Bdd.dor man (Bdd.diff man l0 f0) (Bdd.diff man l1 f1)
        in
        let cd, fd = go ld (Bdd.dand man u0 u1) in
        let var = Bdd.ithvar man v in
        let cubes =
          List.map (fun c -> (v, false) :: c) c0
          @ List.map (fun c -> (v, true) :: c) c1
          @ cd
        in
        let f =
          Bdd.dor man
            (Bdd.ite man var f1 f0)
            fd
        in
        let r = (cubes, f) in
        Hashtbl.add memo key r;
        r
  in
  let cubes, cover = go lower upper in
  { cubes; cover }

(* Same recursion, cover function only — avoids materializing cube lists
   that can be exponentially larger than their BDDs. *)
let cover_only man (s : Ispec.t) =
  let lower = Ispec.onset man s in
  let upper = Bdd.dor man s.f (Bdd.compl s.c) in
  let memo = Hashtbl.create 256 in
  let rec go l u =
    if Bdd.is_zero l then Bdd.zero man
    else if Bdd.is_one u then Bdd.one man
    else
      let key = (Bdd.uid l, Bdd.uid u) in
      match Hashtbl.find_opt memo key with
      | Some r -> r
      | None ->
        let v = min (Bdd.topvar l) (Bdd.topvar u) in
        let l1, l0 = Bdd.branches man l v and u1, u0 = Bdd.branches man u v in
        let f0 = go (Bdd.diff man l0 u1) u0 in
        let f1 = go (Bdd.diff man l1 u0) u1 in
        let ld = Bdd.dor man (Bdd.diff man l0 f0) (Bdd.diff man l1 f1) in
        let fd = go ld (Bdd.dand man u0 u1) in
        let r = Bdd.dor man (Bdd.ite man (Bdd.ithvar man v) f1 f0) fd in
        Hashtbl.add memo key r;
        r
  in
  go lower upper

let compute man (s : Ispec.t) =
  of_interval man ~lower:(Ispec.onset man s)
    ~upper:(Bdd.dor man s.f (Bdd.compl s.c))

let literal_count t =
  List.fold_left (fun acc c -> acc + List.length c) 0 t.cubes

let is_irredundant man ~lower t =
  let fns = List.map (Bdd.Cube.of_cube man) t.cubes in
  let rec check prefix = function
    | [] -> true
    | cube :: rest ->
      let others = Bdd.disj man (prefix @ rest) in
      (* dropping [cube] must leave part of [lower] uncovered *)
      (not (Bdd.leq man lower others)) && check (cube :: prefix) rest
  in
  check [] fns

(* Literal encoding for ZDD cube sets: +v -> 2v, -v -> 2v+1. *)
let literal_element (v, phase) = if phase then 2 * v else (2 * v) + 1

let cube_of_set set =
  List.map
    (fun e -> (e / 2, e mod 2 = 0))
    (List.sort compare set)

let cubes_to_zdd zman cubes =
  Bdd.Zdd.of_list zman (List.map (List.map literal_element) cubes)

let zdd_of_cover zman t = cubes_to_zdd zman t.cubes
