let dag_sinks ~n ~edge =
  let is_sink v =
    let rec no_edge w = w >= n || ((w = v || not (edge v w)) && no_edge (w + 1)) in
    no_edge 0
  in
  List.filter is_sink (List.init n (fun v -> v))

let dag_assignment ~n ~edge =
  let assigned = Array.make n (-1) in
  let visiting = Array.make n false in
  let rec rep v =
    if assigned.(v) >= 0 then assigned.(v)
    else if visiting.(v) then v (* defensive cycle break *)
    else begin
      visiting.(v) <- true;
      let rec first_succ w =
        if w >= n then v
        else if w <> v && edge v w then rep w
        else first_succ (w + 1)
      in
      let r = first_succ 0 in
      visiting.(v) <- false;
      assigned.(v) <- r;
      r
    end
  in
  Array.init n rep

let clique_cover ~n ~adjacent ?(order_by_degree = true) ?edge_weight () =
  let adj = Array.init n (fun i -> Array.init n (fun j -> i <> j && adjacent i j)) in
  let degree v = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 adj.(v) in
  let seeds =
    let vs = List.init n (fun v -> v) in
    if order_by_degree then
      List.stable_sort (fun a b -> compare (degree b) (degree a)) vs
    else vs
  in
  let covered = Array.make n false in
  let weight u w = match edge_weight with Some f -> f u w | None -> 0.0 in
  let grow_clique seed =
    covered.(seed) <- true;
    let cur = ref [ seed ] in
    let adjacent_to_all w = List.for_all (fun u -> adj.(u).(w)) !cur in
    let changed = ref true in
    while !changed do
      changed := false;
      (* Outgoing edges of the current clique to uncovered vertices, in
         ascending weight. *)
      let candidates =
        List.concat_map
          (fun u ->
             let rec collect w acc =
               if w < 0 then acc
               else
                 collect (w - 1)
                   (if adj.(u).(w) && not covered.(w) then (weight u w, w) :: acc
                    else acc)
             in
             collect (n - 1) [])
          !cur
        |> List.stable_sort (fun (a, _) (b, _) -> compare a b)
      in
      List.iter
        (fun (_, w) ->
           if (not covered.(w)) && adjacent_to_all w then begin
             covered.(w) <- true;
             cur := w :: !cur;
             changed := true
           end)
        candidates
    done;
    List.rev !cur
  in
  List.filter_map
    (fun seed -> if covered.(seed) then None else Some (grow_clique seed))
    seeds
