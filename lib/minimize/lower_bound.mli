(** The §4.1.1 lower bound on the size of a minimum cover.

    By Theorem 7, for any cube [p ≤ c], [constrain f p] is a minimum cover
    of [[f; p]]; since every cover of [[f; c]] also covers [[f; p]], its
    size is at least [|constrain f p|].  Maximizing over cubes of [c]
    yields a lower bound on the EBM optimum. *)

val compute :
  Bdd.man -> ?cube_limit:int -> ?include_short_cube:bool -> Ispec.t -> int
(** [compute man s] enumerates up to [cube_limit] (default 1000) cubes of
    [s.c] in DFS order — plus, when [include_short_cube] (default [true]),
    one cube with the fewest literals, following the paper's suggestion to
    also look for large cubes — and returns the largest [|constrain f p|].
    Requires [s.c ≠ 0]. *)

val witness :
  Bdd.man -> ?cube_limit:int -> ?include_short_cube:bool -> Ispec.t ->
  int * Bdd.Cube.cube
(** The bound together with a maximizing cube. *)
