type criterion = Osdm | Osm | Tsm

let name = function Osdm -> "osdm" | Osm -> "osm" | Tsm -> "tsm"

let of_name = function
  | "osdm" -> Some Osdm
  | "osm" -> Some Osm
  | "tsm" -> Some Tsm
  | _ -> None

let all = [ Osdm; Osm; Tsm ]

let matches man crit (s1 : Ispec.t) (s2 : Ispec.t) =
  match crit with
  | Osdm -> Bdd.is_zero s1.c
  | Osm ->
    Bdd.leq man s1.c s2.c
    && Bdd.is_zero (Bdd.conj man [ Bdd.dxor man s1.f s2.f; s1.c ])
  | Tsm ->
    Bdd.is_zero (Bdd.conj man [ Bdd.dxor man s1.f s2.f; s1.c; s2.c ])

let i_cover man crit (s1 : Ispec.t) (s2 : Ispec.t) =
  if not (matches man crit s1 s2) then None
  else
    match crit with
    | Osdm | Osm -> Some s2
    | Tsm ->
      Some
        (Ispec.make
           ~f:(Bdd.dor man (Bdd.dand man s1.f s1.c) (Bdd.dand man s2.f s2.c))
           ~c:(Bdd.dor man s1.c s2.c))

let match_either man crit s1 s2 =
  match i_cover man crit s1 s2 with
  | Some _ as r -> r
  | None -> ( match crit with Tsm -> None | Osdm | Osm -> i_cover man crit s2 s1)

let implies a b =
  match (a, b) with
  | (Osdm, (Osdm | Osm | Tsm)) | (Osm, (Osm | Tsm)) | (Tsm, Tsm) -> true
  | (Osm, Osdm) | (Tsm, (Osdm | Osm)) -> false

(* Table 1. *)
let reflexive = function Osdm -> false | Osm -> true | Tsm -> true
let symmetric = function Osdm -> false | Osm -> false | Tsm -> true
let transitive = function Osdm -> true | Osm -> true | Tsm -> false
