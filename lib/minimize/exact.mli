(** Exhaustive exact BDD minimization (EBM) for small instances.

    Enumerates every assignment of the don't-care points on a dense truth
    table over the instance's union support and keeps a cover of minimum
    BDD size — the ground truth for the optimality theorems and for
    measuring heuristic quality.  Candidate covers are built in a scratch
    manager; only the winner is rebuilt in the caller's manager. *)

type result = {
  cover : Bdd.t;  (** a minimum-size cover, over the original variables *)
  size : int;  (** its node count (terminal included) *)
  covers_tried : int;
}

val minimize :
  Bdd.man -> ?max_support:int -> ?max_dc:int -> Ispec.t -> result option
(** [None] when the instance exceeds the exhaustive-search budget:
    more than [max_support] (default 8) variables in the union support, or
    more than [max_dc] (default 16) don't-care minterms. *)

val minimum_size : Bdd.man -> ?max_support:int -> ?max_dc:int -> Ispec.t -> int option
(** Size of a minimum cover, when within budget. *)
