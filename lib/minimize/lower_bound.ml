let witness man ?(cube_limit = 1000) ?(include_short_cube = true)
    (s : Ispec.t) =
  if Bdd.is_zero s.Ispec.c then
    invalid_arg "Lower_bound.witness: empty care set";
  let best = ref 0 in
  let best_cube = ref [] in
  let try_cube cube =
    let p = Bdd.Cube.of_cube man cube in
    let sz = Bdd.size man (Bdd.constrain man s.Ispec.f p) in
    if sz > !best then begin
      best := sz;
      best_cube := cube
    end
  in
  Bdd.Cube.iter_cubes ~limit:cube_limit man s.Ispec.c try_cube;
  if include_short_cube then
    Option.iter try_cube (Bdd.Cube.short_cube man s.Ispec.c);
  (!best, !best_cube)

let compute man ?cube_limit ?include_short_cube s =
  fst (witness man ?cube_limit ?include_short_cube s)
