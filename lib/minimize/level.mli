(** Minimization at a level (§3.3): match as many subfunctions as possible
    among those pointed to from a given level or above.

    The procedure: gather the incompletely specified subfunctions
    [[fj; cj]] below level [i] that are pointed to from level [i] or above
    (lock-step DFS of [f] and [c] stopping when both nodes lie below the
    level); build the matching graph of the chosen criterion; solve FMM
    ({!Graph}); replace each matched function by its i-cover, rebuilding
    the superstructure. *)

type params = {
  set_limit : int option;
  (** §3.3.1 method 1: process the gathered set in chunks of this size
      ([None] = unbounded, the paper's configuration). *)
  only_rooted_at_next : bool;
  (** §3.3.1 method 2: keep only subfunctions whose [f] part is rooted at
      level [i+1], minimizing the node count of that level. *)
  order_by_degree : bool;
  (** First clique-cover optimization of §3.3.2. *)
  use_distance_weights : bool;
  (** Second clique-cover optimization of §3.3.2: prefer matches of nearby
      functions, weighting edges by the paper's path-distance measure. *)
}

val default_params : params
(** Unbounded set, all subfunctions, both clique optimizations on. *)

val gather :
  Bdd.man -> level:int -> only_rooted_at_next:bool -> Ispec.t ->
  (Ispec.t * (int * bool) list) list
(** The gathered subfunction pairs with the first DFS path reaching each
    (variable, branch taken), for inspection and distance weighting. *)

val max_level : Bdd.man -> Ispec.t -> int
(** Deepest level occurring in the union support of the instance
    ([-1] for constants). *)

val minimize_at_level :
  ?par:Par.t ->
  Bdd.man -> ?params:params -> Matching.criterion -> level:int -> Ispec.t ->
  Ispec.t
(** One application of level matching.  The result is an i-cover of the
    argument (care set only grows).  With criterion [Osm], the optimum
    below the level is preserved (Theorem 12).

    [par] materializes the matching-graph adjacency matrix in parallel —
    one pool task per graph vertex probes its row of match criteria on a
    checked-out view of the shared store the manager must then belong
    to.  Edge answers, clique covers and the resulting i-cover are
    identical to a sequential run; the only behavioural difference is
    that DMG edges the lazy sink-assignment would have skipped are
    evaluated eagerly. *)

val minimize_all_levels :
  ?par:Par.t ->
  Bdd.man -> ?params:params -> Matching.criterion -> Ispec.t -> Ispec.t
(** Apply {!minimize_at_level} at every level in increasing order. *)

val opt_lv : ?par:Par.t -> Bdd.man -> ?params:params -> Ispec.t -> Bdd.t
(** The paper's [opt_lv] heuristic: [tsm] level matching at every level in
    increasing order; the final [f] part is returned (a valid cover, since
    each step yields an i-cover and [f' ] covers [[f'; c']]).  Requires a
    non-empty care set. *)

val distance : level:int -> (int * bool) list -> (int * bool) list -> float
(** The §3.3.2 path distance between two functions rooted below [level],
    given their access paths: [Σ |xg_i − xh_i|·2^(level−i)] over variables
    assigned on both paths (siblings are at distance 1). *)
