type t = {
  man : Bdd.man;
  budget : Bdd.Budget.t option;
  scope : string option;
}

let make ?budget ?scope man = { man; budget; scope }
let of_man man = { man; budget = None; scope = None }
let man t = t.man
let budget t = t.budget
let scope t = t.scope
let with_budget budget t = { t with budget = Some budget }
let with_scope scope t = { t with scope = Some scope }

let protect t k =
  match t.budget with
  | None -> k ()
  | Some b -> Bdd.with_budget t.man b k
