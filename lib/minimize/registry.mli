(** The catalogue of minimizers compared in the paper's experiments
    (§4.1.2): the eight sibling-matching heuristics, the level-matching
    heuristic [opt_lv], the three reference "heuristics" [f_orig],
    [f_and_c], [f_or_nc] — plus, as an extension, the §3.4 schedule. *)

type kind =
  | Sibling_matching of Sibling.heuristic
  | Level_matching  (** [opt_lv] *)
  | Reference  (** [f_orig], [f_and_c], [f_or_nc] *)
  | Scheduled  (** the windowed schedule (this library's extension) *)
  | Two_level  (** the ISOP-based cover (extension baseline) *)

type entry = {
  name : string;
  kind : kind;
  run : Ctx.t -> Ispec.t -> Bdd.t;
      (** prefer {!run}, which honours the context's budget and scope *)
}

val paper : entry list
(** The twelve minimizers of Table 3, in the paper's naming: [const],
    [restr], [osm_td], [osm_nv], [osm_cp], [osm_bt], [tsm_td], [tsm_cp],
    [opt_lv], [f_orig], [f_and_c], [f_or_nc]. *)

val all : entry list
(** [paper] plus the [sched] extension. *)

val extended : entry list
(** [all] plus the extension baselines ([isop]); not used by the
    paper-reproduction harness, whose [min] must range over the paper's
    own catalogue. *)

val proper : entry list
(** [all] without the [Reference] entries (the actual minimizers). *)

val find : string -> entry option
val names : entry list -> string list

val run : entry -> Ctx.t -> Ispec.t -> Bdd.t
(** Run one entry under a context: the context's budget (if any) is
    installed on the manager for the duration, and when the context has
    a scope a ["<scope>:<name>"] trace span is recorded around the run.
    @raise Bdd.Budget_exhausted when the budget trips. *)

val best : Ctx.t -> entry list -> Ispec.t -> string * Bdd.t
(** The paper's [min]: run every entry and keep a smallest result (first
    listed wins ties); returns its name and cover.  Entries that exhaust
    the context's budget are skipped; if {e every} entry exhausts it,
    the first [Bdd.Budget_exhausted] is re-raised. *)
