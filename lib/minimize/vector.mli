(** Joint minimization of a vector of incompletely specified functions.

    FSM applications (the paper's §1) minimize whole next-state vectors;
    what matters there is the {e shared} BDD size, not the sum of
    individual sizes.  This module extends the sibling/level framework to
    vectors by the classical output-encoding construction: auxiliary
    selection variables are prepended to the order, the vector is folded
    into the single instance
    [[Σ_k sel=k · f_k ; Σ_k sel=k · c_k]], any scalar minimizer is
    applied, and the per-output covers are recovered by cofactoring.
    Matches made across outputs translate into node sharing between the
    recovered covers. *)

type result = {
  covers : Bdd.t list;  (** one cover per input instance, in order *)
  shared_before : int;  (** shared node count of the [f] parts *)
  shared_after : int;  (** shared node count of the covers *)
}

val minimize :
  ?par:Par.t ->
  Bdd.man ->
  minimizer:(Bdd.man -> Ispec.t -> Bdd.t) ->
  Ispec.t list ->
  result
(** [minimize man ~minimizer instances] jointly minimizes the vector.
    Every returned cover is a cover of its instance.  Requires every care
    set to be non-empty and at least one instance.

    The selection variables are allocated {e above} the instances'
    variables; because the instances' supports must sit strictly below
    them in the fixed order, this call requires all instance supports to
    use variables [>= ceil(log2 n)] where [n] is the vector length — the
    function raises [Invalid_argument] otherwise.  (FSM encodings from
    {!Fsm.Symbolic} satisfy this when built with a fresh manager whose
    low variables are reserved, or by renaming; see
    {!minimize_renamed}.)

    [par] recovers the per-output covers in parallel — one pool task per
    output, each cofactoring the joint cover on a checked-out view of
    the shared store the manager must then belong to.  The covers are
    the same canonical edges a sequential run produces. *)

val minimize_renamed :
  ?par:Par.t ->
  Bdd.man ->
  minimizer:(Bdd.man -> Ispec.t -> Bdd.t) ->
  Ispec.t list ->
  result
(** Like {!minimize} but first renames the instances' variables upward to
    make room for the selection variables, and renames the covers back —
    usable with any instances at the cost of the two renames. *)
