type t = { f : Bdd.t; c : Bdd.t }

let make ~f ~c = { f; c }

let of_interval man ~lower ~upper =
  if not (Bdd.leq man lower upper) then
    invalid_arg "Ispec.of_interval: empty interval";
  { f = lower; c = Bdd.dor man lower (Bdd.compl upper) }

let onset man s = Bdd.dand man s.f s.c
let offset man s = Bdd.dand man (Bdd.compl s.f) s.c
let dc _man s = Bdd.compl s.c

let is_cover man s g =
  Bdd.leq man (onset man s) g && Bdd.leq man g (Bdd.dor man s.f (Bdd.compl s.c))

let is_i_cover man s1 s2 =
  Bdd.leq man s2.c s1.c
  && Bdd.is_zero (Bdd.dand man (Bdd.dxor man s1.f s2.f) s2.c)

let equal_ispec man s1 s2 = is_i_cover man s1 s2 && is_i_cover man s2 s1

let canonical_key man s = (Bdd.uid (onset man s), Bdd.uid s.c)

let compl s = { s with f = Bdd.compl s.f }

let care_is_cube man s = Bdd.Cube.is_cube man s.c
let care_implies_onset man s = Bdd.leq man s.c s.f
let care_implies_offset man s = Bdd.leq man s.c (Bdd.compl s.f)

let trivial man s =
  care_is_cube man s || care_implies_onset man s || care_implies_offset man s

let c_onset_fraction man s =
  let vars =
    List.sort_uniq compare (Bdd.support man s.f @ Bdd.support man s.c)
  in
  let n = List.length vars in
  if n = 0 then if Bdd.is_one s.c then 1.0 else 0.0
  else Bdd.sat_count man s.c ~nvars:n /. (2.0 ** float_of_int n)
  (* The care set's support is within [vars], so counting over the union
     support space yields the paper's percentage. *)

let pp man ppf s =
  let vars =
    List.sort_uniq compare (Bdd.support man s.f @ Bdd.support man s.c)
  in
  let n = List.length vars in
  if n > 8 then
    Format.fprintf ppf "<ispec over %d vars, |f|=%d |c|=%d>" n
      (Bdd.size man s.f) (Bdd.size man s.c)
  else begin
    let arr = Array.of_list vars in
    (* Leaf order: variable [arr.(0)] is the most significant decision. *)
    for leaf = 0 to (1 lsl n) - 1 do
      let assign v =
        let rec idx i = if arr.(i) = v then i else idx (i + 1) in
        match Array.length arr with
        | 0 -> false
        | _ -> (leaf lsr (n - 1 - idx 0)) land 1 = 1
      in
      let ch =
        if not (Bdd.eval s.c assign) then 'd'
        else if Bdd.eval s.f assign then '1'
        else '0'
      in
      Format.pp_print_char ppf ch
    done
  end
