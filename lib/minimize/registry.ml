type kind =
  | Sibling_matching of Sibling.heuristic
  | Level_matching
  | Reference
  | Scheduled
  | Two_level

type entry = {
  name : string;
  kind : kind;
  run : Ctx.t -> Ispec.t -> Bdd.t;
}

let sibling_entry h =
  let run =
    match h with
    | Sibling.Restrict ->
      (* The generic sibling matcher with the [restr] configuration
         computes exactly [Bdd.restrict] (the qcheck differential
         [generic_equals_classical] pins this), but never touches the
         engine's restrict kernel — so the bench timed the slow generic
         path and [restrict_recursions] stayed 0.  Dispatch to the
         kernel; the generic matcher remains available through
         [Sibling.run_heuristic]. *)
      fun (ctx : Ctx.t) (s : Ispec.t) ->
        Bdd.restrict ctx.Ctx.man s.Ispec.f s.Ispec.c
    | _ -> fun (ctx : Ctx.t) s -> Sibling.run_heuristic ctx.Ctx.man h s
  in
  { name = Sibling.heuristic_name h; kind = Sibling_matching h; run }

let paper =
  List.map sibling_entry Sibling.all_heuristics
  @ [
      {
        name = "opt_lv";
        kind = Level_matching;
        run =
          (fun (ctx : Ctx.t) s ->
             (* §3.3.1 set-limit method, at the largest set size the paper
                reports encountering; bounds the quadratic matching work on
                instances far larger than the paper's. *)
             let params =
               { Level.default_params with Level.set_limit = Some 512 }
             in
             Level.opt_lv ctx.Ctx.man ~params s);
      };
      { name = "f_orig"; kind = Reference; run = (fun _ s -> s.Ispec.f) };
      {
        name = "f_and_c";
        kind = Reference;
        run = (fun (ctx : Ctx.t) s -> Ispec.onset ctx.Ctx.man s);
      };
      {
        name = "f_or_nc";
        kind = Reference;
        run =
          (fun (ctx : Ctx.t) s ->
             Bdd.dor ctx.Ctx.man s.Ispec.f (Bdd.compl s.Ispec.c));
      };
    ]

let all =
  paper
  @ [
      {
        name = "sched";
        kind = Scheduled;
        run = (fun (ctx : Ctx.t) s -> Schedule.run ctx.Ctx.man s);
      };
    ]

let extended =
  all
  @ [
      {
        name = "isop";
        kind = Two_level;
        run = (fun (ctx : Ctx.t) s -> Isop.cover_only ctx.Ctx.man s);
      };
    ]

let proper = List.filter (fun e -> e.kind <> Reference) all

let find name = List.find_opt (fun e -> e.name = name) extended
let names entries = List.map (fun e -> e.name) entries

(* Run one entry under its context: the context's budget is installed on
   the manager for the duration, and a trace span is recorded when the
   context carries a scope. *)
let run e (ctx : Ctx.t) s =
  let body () = Ctx.protect ctx (fun () -> e.run ctx s) in
  match ctx.Ctx.scope with
  | None -> body ()
  | Some scope ->
    Obs.Trace.with_span (scope ^ ":" ^ e.name) (fun _ -> body ())

let best ctx entries s =
  if entries = [] then invalid_arg "Registry.best: no entries";
  let man = Ctx.man ctx in
  (* [Error] accumulates the first exhaustion reason so that when every
     entry dies the caller still learns why. *)
  let step acc e =
    match run e ctx s with
    | g ->
      let sz = Bdd.size man g in
      (match acc with
       | Ok (_, _, best_sz) when best_sz <= sz -> acc
       | _ -> Ok (e.name, g, sz))
    | exception Bdd.Budget_exhausted r ->
      (match acc with Error None -> Error (Some r) | _ -> acc)
  in
  match List.fold_left step (Error None) entries with
  | Ok (n, g, _) -> (n, g)
  | Error (Some r) -> raise (Bdd.Budget_exhausted r)
  | Error None -> assert false
