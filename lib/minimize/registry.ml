type kind =
  | Sibling_matching of Sibling.heuristic
  | Level_matching
  | Reference
  | Scheduled
  | Two_level

type entry = {
  name : string;
  kind : kind;
  run : Bdd.man -> Ispec.t -> Bdd.t;
}

let sibling_entry h =
  let run =
    match h with
    | Sibling.Restrict ->
      (* The generic sibling matcher with the [restr] configuration
         computes exactly [Bdd.restrict] (the qcheck differential
         [generic_equals_classical] pins this), but never touches the
         engine's restrict kernel — so the bench timed the slow generic
         path and [restrict_recursions] stayed 0.  Dispatch to the
         kernel; the generic matcher remains available through
         [Sibling.run_heuristic]. *)
      fun man (s : Ispec.t) -> Bdd.restrict man s.Ispec.f s.Ispec.c
    | _ -> fun man s -> Sibling.run_heuristic man h s
  in
  { name = Sibling.heuristic_name h; kind = Sibling_matching h; run }

let paper =
  List.map sibling_entry Sibling.all_heuristics
  @ [
      {
        name = "opt_lv";
        kind = Level_matching;
        run =
          (fun man s ->
             (* §3.3.1 set-limit method, at the largest set size the paper
                reports encountering; bounds the quadratic matching work on
                instances far larger than the paper's. *)
             let params =
               { Level.default_params with Level.set_limit = Some 512 }
             in
             Level.opt_lv man ~params s);
      };
      { name = "f_orig"; kind = Reference; run = (fun _ s -> s.Ispec.f) };
      {
        name = "f_and_c";
        kind = Reference;
        run = (fun man s -> Ispec.onset man s);
      };
      {
        name = "f_or_nc";
        kind = Reference;
        run = (fun man s -> Bdd.dor man s.Ispec.f (Bdd.compl s.Ispec.c));
      };
    ]

let all =
  paper
  @ [
      {
        name = "sched";
        kind = Scheduled;
        run = (fun man s -> Schedule.run man s);
      };
    ]

let extended =
  all
  @ [
      {
        name = "isop";
        kind = Two_level;
        run = (fun man s -> Isop.cover_only man s);
      };
    ]

let proper = List.filter (fun e -> e.kind <> Reference) all

let find name = List.find_opt (fun e -> e.name = name) extended
let names entries = List.map (fun e -> e.name) entries

let best man entries s =
  match entries with
  | [] -> invalid_arg "Registry.best: no entries"
  | first :: rest ->
    let score e =
      let g = e.run man s in
      (e.name, g, Bdd.size man g)
    in
    let keep (bn, bg, bs) e =
      let n, g, sz = score e in
      if sz < bs then (n, g, sz) else (bn, bg, bs)
    in
    let n, g, _ = List.fold_left keep (score first) rest in
    (n, g)
