type result = { cover : Bdd.t; size : int; covers_tried : int }

module Tt = Logic.Truth_table

let minimize man ?(max_support = 8) ?(max_dc = 16) (s : Ispec.t) =
  let vars =
    List.sort_uniq compare (Bdd.support man s.f @ Bdd.support man s.c)
  in
  let k = List.length vars in
  if k > max_support then None
  else begin
    let var_arr = Array.of_list vars in
    (* Tabulate [f] and [c] over compact variables 0..k-1 (order
       preserved, so BDD sizes are unchanged). *)
    let assign m v =
      let rec idx i = if var_arr.(i) = v then i else idx (i + 1) in
      (m lsr idx 0) land 1 = 1
    in
    let tt_f = Tt.create k (fun m -> Bdd.eval s.f (assign m)) in
    let tt_c = Tt.create k (fun m -> Bdd.eval s.c (assign m)) in
    let dc_points =
      List.filter (fun m -> not (Tt.get tt_c m)) (List.init (1 lsl k) Fun.id)
    in
    let d = List.length dc_points in
    if d > max_dc then None
    else begin
      let dc_arr = Array.of_list dc_points in
      let scratch = ref (Bdd.create ~nvars:k ()) in
      let onset = Array.init (1 lsl k) (fun m -> Tt.get tt_f m && Tt.get tt_c m) in
      let best_size = ref max_int in
      let best_mask = ref 0 in
      for mask = 0 to (1 lsl d) - 1 do
        (* Bound scratch-manager growth during long enumerations. *)
        if mask land 0xfff = 0xfff then scratch := Bdd.create ~nvars:k ();
        let value m =
          if Tt.get tt_c m then onset.(m)
          else
            let rec idx i = if dc_arr.(i) = m then i else idx (i + 1) in
            (mask lsr idx 0) land 1 = 1
        in
        let g = Tt.to_bdd !scratch (Tt.create k value) in
        let sz = Bdd.size !scratch g in
        if sz < !best_size then begin
          best_size := sz;
          best_mask := mask
        end
      done;
      (* Rebuild the winning cover in the caller's manager over the
         original variables. *)
      let mask = !best_mask in
      let value m =
        if Tt.get tt_c m then onset.(m)
        else
          let rec idx i = if dc_arr.(i) = m then i else idx (i + 1) in
          (mask lsr idx 0) land 1 = 1
      in
      let compact = Tt.to_bdd man (Tt.create k value) in
      let cover =
        Bdd.rename man compact (List.mapi (fun i v -> (i, v)) vars)
      in
      Some { cover; size = !best_size; covers_tried = 1 lsl d }
    end
  end

let minimum_size man ?max_support ?max_dc s =
  Option.map (fun r -> r.size) (minimize man ?max_support ?max_dc s)
