(** Irredundant sum-of-products covers from BDD intervals
    (Minato–Morreale ISOP).

    Given an instance [[f; c]] — equivalently the interval
    [(f·c, f + ¬c)] — the algorithm produces a cube cover whose function
    lies in the interval and from which no cube can be dropped.  This is
    the classic two-level use of don't cares; as a BDD-size heuristic it
    is a natural extension baseline: the BDD of the recovered SOP is a
    cover of the instance, sometimes smaller than [f], and the cube list
    itself is the input to PLA-style synthesis. *)

type t = {
  cubes : Bdd.Cube.cube list;
  cover : Bdd.t;  (** the function of the cube cover *)
}

val compute : Bdd.man -> Ispec.t -> t
(** [compute man s] returns an irredundant SOP between [onset s] and
    [s.f + ¬s.c].  The empty interval yields the empty cover. *)

val of_interval : Bdd.man -> lower:Bdd.t -> upper:Bdd.t -> t
(** Direct interval form.  Requires [lower ≤ upper]. *)

val cover_only : Bdd.man -> Ispec.t -> Bdd.t
(** The cover function without materializing the cube list (the cube list
    can be exponentially larger than its BDD). *)

val literal_count : t -> int
(** Total number of literals over all cubes. *)

val is_irredundant : Bdd.man -> lower:Bdd.t -> t -> bool
(** Check that every cube is necessary: dropping any one uncovers part of
    [lower] (exposed for testing and for downstream assertions). *)

val cubes_to_zdd : Bdd.Zdd.man -> Bdd.Cube.cube list -> Bdd.Zdd.t
(** Represent a cube list as a ZDD family over literal elements
    (positive literal of variable [v] ↦ element [2v], negative ↦
    [2v + 1]) — the standard cube-set encoding for two-level algebra. *)

val zdd_of_cover : Bdd.Zdd.man -> t -> Bdd.Zdd.t
(** {!cubes_to_zdd} of the cover's cubes. *)

val cube_of_set : int list -> Bdd.Cube.cube
(** Inverse of the literal encoding (sorted input). *)
