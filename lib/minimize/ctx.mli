(** Minimization context: everything a registry entry needs besides the
    problem instance — the manager, an optional resource budget and an
    optional trace scope.

    The context is what lets new knobs reach every minimizer without
    registry-wide signature churn: [Registry.entry.run] takes a [Ctx.t],
    and callers build one with {!make} (or {!of_man} for the plain
    case). *)

type t = {
  man : Bdd.man;
  budget : Bdd.Budget.t option;
      (** installed around the entry by [Registry.run] *)
  scope : string option;
      (** trace-span prefix; [Some "min"] makes [Registry.run] record a
          ["min:<entry>"] span around each run *)
}

val make : ?budget:Bdd.Budget.t -> ?scope:string -> Bdd.man -> t
val of_man : Bdd.man -> t
(** A context with no budget and no scope. *)

val man : t -> Bdd.man
val budget : t -> Bdd.Budget.t option
val scope : t -> string option

val with_budget : Bdd.Budget.t -> t -> t
val with_scope : string -> t -> t

val protect : t -> (unit -> 'a) -> 'a
(** Run the thunk with the context's budget installed on the context's
    manager (restoring the previous budget on exit); the identity when
    the context carries no budget. *)
