(** The §3.4 windowed schedule: safer transformations first.

    Levels are processed top-down in windows of [window_size] levels.
    Within each window the schedule applies, in order: [osm] sibling
    matching, [tsm] sibling matching, and (optionally, being expensive)
    [osm] then [tsm] level matching.  When fewer than [stop_top_down]
    levels remain, the residual don't cares are spent locally by a final
    [constrain].  The theoretical justification is Theorem 12: [osm]
    matching near the top can only lose optimality in the (small)
    superstructure above. *)

type params = {
  window_size : int;
  stop_top_down : int;
  use_level_matching : bool;
  osm_config : Sibling.config;  (** config for the sibling [osm] passes *)
  tsm_config : Sibling.config;  (** config for the sibling [tsm] passes *)
  level_params : Level.params;
}

val default_params : params
(** [window_size = 4], [stop_top_down = 6], level matching off (the
    runtime-conscious choice the paper suggests), [osm_bt] / [tsm_cp]
    sibling configurations. *)

val run : Bdd.man -> ?params:params -> Ispec.t -> Bdd.t
(** Run the schedule; requires a non-empty care set.  Always returns a
    cover of the instance.

    The schedule is {e anytime}: under an installed [Bdd.Budget] it
    traps [Bdd.Budget_exhausted] at window boundaries and returns the
    best-so-far cover instead of raising (every completed window leaves
    a cover).  Callers that need to distinguish a degraded result can
    inspect [Bdd.Budget.exhausted] on their budget afterwards. *)
