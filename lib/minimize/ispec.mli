(** Incompletely specified Boolean functions [[f; c]].

    Following the paper's §2: [c] is the {e care} function — [f·c] is the
    onset, [¬f·c] the offset, and [¬c] the don't-care set.  A completely
    specified [g] is a {e cover} when [f·c ≤ g ≤ f + ¬c].  [[f1; c1]] is an
    {e i-cover} of [[f2; c2]] when every cover of the former covers the
    latter. *)

type t = { f : Bdd.t; c : Bdd.t }

val make : f:Bdd.t -> c:Bdd.t -> t

val of_interval : Bdd.man -> lower:Bdd.t -> upper:Bdd.t -> t
(** Reduce the interval-of-functions problem [(f_m, f_M)] to an EBM
    instance, as in §2: [c = f_m + ¬f_M] and [f = f_m].
    Requires [lower ≤ upper]. *)

val onset : Bdd.man -> t -> Bdd.t
val offset : Bdd.man -> t -> Bdd.t
val dc : Bdd.man -> t -> Bdd.t

val is_cover : Bdd.man -> t -> Bdd.t -> bool
(** [is_cover man s g] iff [g] is a cover of [s]. *)

val is_i_cover : Bdd.man -> t -> t -> bool
(** [is_i_cover man s1 s2] iff [s1] i-covers [s2], i.e. [c2 ≤ c1] and
    [f1 = f2] on [c2]. *)

val equal_ispec : Bdd.man -> t -> t -> bool
(** Semantic equality: same care set and same values on it. *)

val canonical_key : Bdd.man -> t -> int * int
(** A key identifying the {e semantic} function: two ispecs with equal keys
    are [equal_ispec].  (The pair of uids of [f·c] and [c].) *)

val compl : t -> t
(** The complement ispec [[¬f; c]]; covers are complements of covers. *)

val care_is_cube : Bdd.man -> t -> bool
val care_implies_onset : Bdd.man -> t -> bool
(** [c ≤ f]: the minimum cover is the constant 1 (when [c ≠ 0]). *)

val care_implies_offset : Bdd.man -> t -> bool
(** [c ≤ ¬f]: the minimum cover is the constant 0. *)

val trivial : Bdd.man -> t -> bool
(** The §4.1.2 filter: [c] is a cube, or [c ≤ f], or [c ≤ ¬f] — cases in
    which (almost) every heuristic finds a minimum. *)

val c_onset_fraction : Bdd.man -> t -> float
(** Fraction (in [0, 1]) of onset points of [c] over the space spanned by
    the union of the supports of [f] and [c] — the paper's
    [c_onset_size]. *)

val pp : Bdd.man -> Format.formatter -> t -> unit
(** Print as truth vectors in the paper's {0,1,d} leaf notation (only for
    small supports). *)
