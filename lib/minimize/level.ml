type params = {
  set_limit : int option;
  only_rooted_at_next : bool;
  order_by_degree : bool;
  use_distance_weights : bool;
}

let default_params =
  {
    set_limit = None;
    only_rooted_at_next = false;
    order_by_degree = true;
    use_distance_weights = true;
  }

let gather man ~level ~only_rooted_at_next (s : Ispec.t) =
  ignore man;
  let visited = Hashtbl.create 512 in
  let out = ref [] in
  let rec go f c path =
    let key = (Bdd.uid f, Bdd.uid c) in
    if not (Hashtbl.mem visited key) then begin
      Hashtbl.add visited key ();
      let top = min (Bdd.topvar f) (Bdd.topvar c) in
      if top > level then begin
        if (not only_rooted_at_next) || Bdd.topvar f = level + 1 then
          out := (Ispec.make ~f ~c, List.rev path) :: !out
      end
      else begin
        let ft, fe = Bdd.branches man f top and ct, ce = Bdd.branches man c top in
        go ft ct ((top, true) :: path);
        go fe ce ((top, false) :: path)
      end
    end
  in
  go s.Ispec.f s.Ispec.c [];
  List.rev !out

let distance ~level pg ph =
  let bits p =
    let a = Array.make (level + 1) (-1) in
    List.iter (fun (v, b) -> if v <= level then a.(v) <- Bool.to_int b) p;
    a
  in
  let bg = bits pg and bh = bits ph in
  let d = ref 0.0 in
  for v = 0 to level do
    if bg.(v) >= 0 && bh.(v) >= 0 && bg.(v) <> bh.(v) then
      d := !d +. (2.0 ** float_of_int (level - v))
  done;
  !d

(* Split [xs] into chunks of at most [k] elements, preserving order (the
   §3.3.1 set-limit method: nearby subfunctions stay grouped). *)
let chunk k xs =
  let rec go acc cur n = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | x :: rest ->
      if n = k then go (List.rev cur :: acc) [ x ] 1 rest
      else go acc (x :: cur) (n + 1) rest
  in
  go [] [] 0 xs

(* Matching-graph statistics accumulated across the chunks of one
   level pass, for the "level.pass" trace span and the probes.  The
   edge counters wrap the criterion closures handed to [Graph]:
   [clique_cover] materializes the whole adjacency matrix, so for the
   UMG (tsm) the probed count is the exact edge-slot count; the DMG
   sink-assignment evaluates edges lazily, so for osm/osdm the counts
   cover only the edges actually examined. *)
type graph_stats = {
  mutable vertices : int;  (** graph vertices (deduplicated groups) *)
  mutable edges_probed : int;
  mutable edges_matched : int;
  mutable cliques : int;
}

let fresh_graph_stats () =
  { vertices = 0; edges_probed = 0; edges_matched = 0; cliques = 0 }

(* Solve FMM on one chunk of gathered pairs and record the replacements in
   [subst] (keyed by the (f, c) edge uids of each original pair). *)
let solve_chunk ?par man crit params ~level ~gstats subst pairs =
  (* Semantic deduplication: the matching graphs are defined over distinct
     incompletely specified functions, and BDD pairs differing only on
     don't-care values of [f] denote the same function (keeping duplicates
     would create the two-cycles excluded by Proposition 10). *)
  let index = Hashtbl.create 64 in
  let groups = ref [] in
  let ngroups = ref 0 in
  List.iter
    (fun ((sp : Ispec.t), path) ->
       let key = Ispec.canonical_key man sp in
       match Hashtbl.find_opt index key with
       | Some i ->
         let rep, path0, members = List.nth !groups (!ngroups - 1 - i) in
         ignore rep;
         ignore path0;
         members := sp :: !members
       | None ->
         Hashtbl.add index key !ngroups;
         groups := (sp, path, ref [ sp ]) :: !groups;
         incr ngroups)
    pairs;
  let groups = Array.of_list (List.rev !groups) in
  let m = Array.length groups in
  let rep i = let (sp, _, _) = groups.(i) in sp in
  let rep_path i = let (_, p, _) = groups.(i) in p in
  let members i = let (_, _, ms) = groups.(i) in List.rev !ms in
  let add_subst (sp : Ispec.t) (cover : Ispec.t) =
    if not (Bdd.equal sp.f cover.f && Bdd.equal sp.c cover.c) then
      Hashtbl.replace subst (Bdd.uid sp.f, Bdd.uid sp.c) cover
  in
  (* Replace every member of group [i] by [target].  Members denote the
     same function as the representative, so the replacement is itself a
     match under any reflexive criterion; under [osdm] it is only a match
     when the care set is empty. *)
  let merge_group i target =
    if Matching.reflexive crit || Bdd.is_zero (rep i).Ispec.c then
      List.iter (fun sp -> add_subst sp target) (members i)
  in
  gstats.vertices <- gstats.vertices + m;
  (* With a parallel context the whole adjacency matrix is materialized
     up front, one row per pool task on a checked-out view of the shared
     store, and [probe] degrades to a lookup.  [matches] is a pure
     function of two canonical specs, so the matrix holds exactly the
     answers the sequential lazy probes would compute — the clique cover
     and the DAG assignment see identical edges and produce identical
     covers.  The counters still tick per {e lookup}, so the probe
     telemetry matches a sequential run; the trade is eager evaluation
     of the DMG edges the lazy sink-assignment might have skipped. *)
  let lookup =
    match par with
    | Some par when m > 1 ->
      let rows =
        Par.map par
          (fun view j ->
             Array.init m (fun k ->
                 j = k || Matching.matches view crit (rep j) (rep k)))
          (List.init m Fun.id)
      in
      let matrix = Array.of_list rows in
      Some (fun j k -> matrix.(j).(k))
    | _ -> None
  in
  let probe j k =
    gstats.edges_probed <- gstats.edges_probed + 1;
    let r =
      match lookup with
      | Some look -> look j k
      | None -> Matching.matches man crit (rep j) (rep k)
    in
    if r then gstats.edges_matched <- gstats.edges_matched + 1;
    r
  in
  if m > 1 then
    match crit with
    | Matching.Osdm | Matching.Osm ->
      let edge j k = j <> k && probe j k in
      let assignment = Graph.dag_assignment ~n:m ~edge in
      for i = 0 to m - 1 do
        merge_group i (rep assignment.(i))
      done
    | Matching.Tsm ->
      let adjacent = probe in
      let edge_weight =
        if params.use_distance_weights then
          Some (fun j k -> distance ~level (rep_path j) (rep_path k))
        else None
      in
      let cliques =
        Graph.clique_cover ~n:m ~adjacent
          ~order_by_degree:params.order_by_degree ?edge_weight ()
      in
      gstats.cliques <- gstats.cliques + List.length cliques;
      let solve_clique = function
        | [ i ] -> merge_group i (rep i)
        | clique ->
          Obs.Probe.observe "level.clique_size" (List.length clique);
          (* Maximal-DC common i-cover of the whole clique (Lemma 14). *)
          let cover =
            List.fold_left
              (fun acc i ->
                 Ispec.make
                   ~f:(Bdd.dor man acc.Ispec.f (Ispec.onset man (rep i)))
                   ~c:(Bdd.dor man acc.Ispec.c (rep i).Ispec.c))
              (Ispec.make ~f:(Bdd.zero man) ~c:(Bdd.zero man))
              clique
          in
          List.iter (fun i -> merge_group i cover) clique
      in
      List.iter solve_clique cliques
  else if m = 1 then merge_group 0 (rep 0)

let rebuild man ~level subst (s : Ispec.t) =
  let memo = Hashtbl.create 512 in
  let rec go f c =
    let top = min (Bdd.topvar f) (Bdd.topvar c) in
    if top > level then
      match Hashtbl.find_opt subst (Bdd.uid f, Bdd.uid c) with
      | Some (s' : Ispec.t) -> (s'.f, s'.c)
      | None -> (f, c)
    else
      let key = (Bdd.uid f, Bdd.uid c) in
      match Hashtbl.find_opt memo key with
      | Some r -> r
      | None ->
        let ft, fe = Bdd.branches man f top and ct, ce = Bdd.branches man c top in
        let tf, tc = go ft ct in
        let ef, ec = go fe ce in
        let v = Bdd.ithvar man top in
        let r = (Bdd.ite man v tf ef, Bdd.ite man v tc ec) in
        Hashtbl.add memo key r;
        r
  in
  let f, c = go s.Ispec.f s.Ispec.c in
  Ispec.make ~f ~c

let minimize_at_level ?par man ?(params = default_params) crit ~level
    (s : Ispec.t) =
  Obs.Trace.with_span "level.pass"
    ~attrs:
      [
        ("level", Obs.Trace.Int level);
        ("criterion", Obs.Trace.Str (Matching.name crit));
        (* the matching graph of §3.3: directed (DMG) for the one-sided
           criteria, undirected (UMG) for tsm *)
        ( "graph",
          Obs.Trace.Str (match crit with Matching.Tsm -> "umg" | _ -> "dmg")
        );
      ]
  @@ fun sp ->
  let gathered =
    gather man ~level ~only_rooted_at_next:params.only_rooted_at_next s
  in
  Obs.Trace.add sp "pairs_gathered" (Obs.Trace.Int (List.length gathered));
  match gathered with
  | [] | [ _ ] -> s
  | _ ->
    let chunks =
      match params.set_limit with
      | None -> [ gathered ]
      | Some k -> chunk k gathered
    in
    let gstats = fresh_graph_stats () in
    let subst = Hashtbl.create 64 in
    List.iter
      (fun ch -> solve_chunk ?par man crit params ~level ~gstats subst ch)
      chunks;
    Obs.Trace.add sp "graph_vertices" (Obs.Trace.Int gstats.vertices);
    Obs.Trace.add sp "edges_probed" (Obs.Trace.Int gstats.edges_probed);
    Obs.Trace.add sp "edges_matched" (Obs.Trace.Int gstats.edges_matched);
    if gstats.cliques > 0 then
      Obs.Trace.add sp "cliques" (Obs.Trace.Int gstats.cliques);
    Obs.Trace.add sp "replacements" (Obs.Trace.Int (Hashtbl.length subst));
    Obs.Probe.observe "level.graph_vertices" gstats.vertices;
    Obs.Probe.count "level.edges_probed" gstats.edges_probed;
    if Hashtbl.length subst = 0 then s else rebuild man ~level subst s

let max_level man (s : Ispec.t) =
  let sup =
    List.sort_uniq compare (Bdd.support man s.f @ Bdd.support man s.c)
  in
  List.fold_left max (-1) sup

let minimize_all_levels ?par man ?params crit (s : Ispec.t) =
  let top = max_level man s in
  let rec go level spec =
    if level > top then spec
    else go (level + 1) (minimize_at_level ?par man ?params crit ~level spec)
  in
  go 0 s

let opt_lv ?par man ?params (s : Ispec.t) =
  if Bdd.is_zero s.Ispec.c then invalid_arg "Level.opt_lv: empty care set";
  (minimize_all_levels ?par man ?params Matching.Tsm s).Ispec.f
