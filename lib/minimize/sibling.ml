type config = {
  criterion : Matching.criterion;
  match_compl : bool;
  no_new_vars : bool;
}

type heuristic =
  | Constrain
  | Restrict
  | Osm_td
  | Osm_nv
  | Osm_cp
  | Osm_bt
  | Tsm_td
  | Tsm_cp

let all_heuristics =
  [ Constrain; Restrict; Osm_td; Osm_nv; Osm_cp; Osm_bt; Tsm_td; Tsm_cp ]

let heuristic_name = function
  | Constrain -> "const"
  | Restrict -> "restr"
  | Osm_td -> "osm_td"
  | Osm_nv -> "osm_nv"
  | Osm_cp -> "osm_cp"
  | Osm_bt -> "osm_bt"
  | Tsm_td -> "tsm_td"
  | Tsm_cp -> "tsm_cp"

let heuristic_of_name = function
  | "const" | "constrain" -> Some Constrain
  | "restr" | "restrict" -> Some Restrict
  | "osm_td" -> Some Osm_td
  | "osm_nv" -> Some Osm_nv
  | "osm_cp" -> Some Osm_cp
  | "osm_bt" -> Some Osm_bt
  | "tsm_td" -> Some Tsm_td
  | "tsm_cp" -> Some Tsm_cp
  | _ -> None

let config_of_heuristic h =
  let mk criterion match_compl no_new_vars =
    { criterion; match_compl; no_new_vars }
  in
  match h with
  | Constrain -> mk Matching.Osdm false false
  | Restrict -> mk Matching.Osdm false true
  | Osm_td -> mk Matching.Osm false false
  | Osm_nv -> mk Matching.Osm false true
  | Osm_cp -> mk Matching.Osm true false
  | Osm_bt -> mk Matching.Osm true true
  | Tsm_td -> mk Matching.Tsm false false
  | Tsm_cp -> mk Matching.Tsm true false

(* The paper's [is_match] on the two siblings: try the criterion in both
   directions; with [compl] set, match the then-sibling against the
   complement of the else-sibling (the caller then rebuilds the parent as
   [top·t + ¬top·¬t]). *)
let sibling_match man crit ~compl st se =
  let target = if compl then Ispec.compl se else se in
  Matching.match_either man crit st target

(* Trace attributes shared by [run] and [transform_window]: both emit a
   "sibling.pass" span so profiles aggregate standalone and windowed
   passes per criterion. *)
let pass_attrs cfg =
  [
    ("criterion", Obs.Trace.Str (Matching.name cfg.criterion));
    ("match_compl", Obs.Trace.Bool cfg.match_compl);
    ("no_new_vars", Obs.Trace.Bool cfg.no_new_vars);
  ]

let finish_pass sp ~matches ~compl_matches ~recursions ~max_depth =
  Obs.Trace.add sp "matches" (Obs.Trace.Int matches);
  Obs.Trace.add sp "compl_matches" (Obs.Trace.Int compl_matches);
  Obs.Trace.add sp "recursions" (Obs.Trace.Int recursions);
  Obs.Probe.count "sibling.matches" (matches + compl_matches);
  Obs.Probe.observe "sibling.recursion_depth" max_depth

(* [generic_td] of Figure 2.  The recursion maintains [c ≠ 0]: whenever a
   child's care set is 0, every criterion matches the siblings, so the
   no-match branch only ever recurses on non-empty care sets. *)
let run man cfg (s : Ispec.t) =
  if Bdd.is_zero s.c then invalid_arg "Sibling.run: empty care set";
  Obs.Trace.with_span "sibling.pass" ~attrs:(pass_attrs cfg) @@ fun sp ->
  let cache = Hashtbl.create 512 in
  let matches = ref 0 and compl_matches = ref 0 in
  let recursions = ref 0 and max_depth = ref 0 in
  let rec go depth f c =
    if depth > !max_depth then max_depth := depth;
    if Bdd.is_one c || Bdd.is_const f then f
    else
      let key = (Bdd.uid f, Bdd.uid c) in
      match Hashtbl.find_opt cache key with
      | Some r -> r
      | None ->
        incr recursions;
        let fid = Bdd.topvar f and cid = Bdd.topvar c in
        let top = min fid cid in
        let ft, fe = Bdd.branches man f top and ct, ce = Bdd.branches man c top in
        let r =
          if cfg.no_new_vars && fid > cid then
            go (depth + 1) f (Bdd.dor man ct ce)
          else begin
            let st = Ispec.make ~f:ft ~c:ct and se = Ispec.make ~f:fe ~c:ce in
            match sibling_match man cfg.criterion ~compl:false st se with
            | Some m ->
              incr matches;
              go (depth + 1) m.Ispec.f m.Ispec.c
            | None ->
              let compl_match =
                if cfg.match_compl then
                  sibling_match man cfg.criterion ~compl:true st se
                else None
              in
              (match compl_match with
               | Some m ->
                 incr compl_matches;
                 let tmp = go (depth + 1) m.Ispec.f m.Ispec.c in
                 Bdd.ite man (Bdd.ithvar man top) tmp (Bdd.compl tmp)
               | None ->
                 let tt = go (depth + 1) ft ct in
                 let te = go (depth + 1) fe ce in
                 Bdd.ite man (Bdd.ithvar man top) tt te)
          end
        in
        Hashtbl.add cache key r;
        r
  in
  let r = go 0 s.f s.c in
  finish_pass sp ~matches:!matches ~compl_matches:!compl_matches
    ~recursions:!recursions ~max_depth:!max_depth;
  r

let run_heuristic man h s = run man (config_of_heuristic h) s

let run_clamped man cfg s =
  let r = run man cfg s in
  if Bdd.size man r > Bdd.size man s.Ispec.f then s.Ispec.f else r

let transform_window man cfg ~lo ~hi (s : Ispec.t) =
  if Bdd.is_zero s.Ispec.c then
    invalid_arg "Sibling.transform_window: empty care set";
  Obs.Trace.with_span "sibling.pass"
    ~attrs:
      (pass_attrs cfg
       @ [ ("lo", Obs.Trace.Int lo); ("hi", Obs.Trace.Int hi) ])
  @@ fun sp ->
  let cache = Hashtbl.create 512 in
  let matches = ref 0 and compl_matches = ref 0 in
  let recursions = ref 0 and max_depth = ref 0 in
  let rec go depth f c =
    if depth > !max_depth then max_depth := depth;
    if Bdd.is_one c || Bdd.is_const f then (f, c)
    else
      let fid = Bdd.topvar f and cid = Bdd.topvar c in
      let top = min fid cid in
      if top >= hi then (f, c)
      else
        let key = (Bdd.uid f, Bdd.uid c) in
        match Hashtbl.find_opt cache key with
        | Some r -> r
        | None ->
          incr recursions;
          let ft, fe = Bdd.branches man f top and ct, ce = Bdd.branches man c top in
          let rebuild () =
            let tf, tc = go (depth + 1) ft ct in
            let ef, ec = go (depth + 1) fe ce in
            let v = Bdd.ithvar man top in
            (Bdd.ite man v tf ef, Bdd.ite man v tc ec)
          in
          let r =
            if top < lo then rebuild ()
            else if cfg.no_new_vars && fid > cid then
              go (depth + 1) f (Bdd.dor man ct ce)
            else begin
              let st = Ispec.make ~f:ft ~c:ct
              and se = Ispec.make ~f:fe ~c:ce in
              match sibling_match man cfg.criterion ~compl:false st se with
              | Some m ->
                incr matches;
                go (depth + 1) m.Ispec.f m.Ispec.c
              | None ->
                let compl_match =
                  if cfg.match_compl then
                    sibling_match man cfg.criterion ~compl:true st se
                  else None
                in
                (match compl_match with
                 | Some m ->
                   incr compl_matches;
                   let tf, tc = go (depth + 1) m.Ispec.f m.Ispec.c in
                   (Bdd.ite man (Bdd.ithvar man top) tf (Bdd.compl tf), tc)
                 | None -> rebuild ())
            end
          in
          Hashtbl.add cache key r;
          r
  in
  let f, c = go 0 s.Ispec.f s.Ispec.c in
  finish_pass sp ~matches:!matches ~compl_matches:!compl_matches
    ~recursions:!recursions ~max_depth:!max_depth;
  Ispec.make ~f ~c
