(** Matching-graph solvers for the function matching minimization (FMM)
    problem of §3.3.2.

    For transitive, antisymmetric criteria ([osm], [osdm]) the matching
    graph is a DAG (the DMG) and FMM is solved exactly by collecting sink
    vertices (Proposition 10).  For [tsm] the graph is undirected (the UMG)
    and FMM reduces to minimum clique cover (Theorem 15), solved here by
    the paper's greedy heuristic with its two proposed optimizations:
    seeds processed in decreasing degree order, and candidate edges in
    ascending distance weight. *)

val dag_sinks : n:int -> edge:(int -> int -> bool) -> int list
(** Vertices with no outgoing edge.  [edge] must describe a DAG. *)

val dag_assignment : n:int -> edge:(int -> int -> bool) -> int array
(** Map every vertex to a sink reachable from it (sinks map to
    themselves).  Cycles — which cannot arise from a transitive
    antisymmetric relation over distinct functions — are broken defensively
    by treating the first revisited vertex as a sink. *)

val clique_cover :
  n:int ->
  adjacent:(int -> int -> bool) ->
  ?order_by_degree:bool ->
  ?edge_weight:(int -> int -> float) ->
  unit ->
  int list list
(** Partition the vertices into cliques of the given undirected adjacency
    (self-adjacency is ignored).  Greedy: repeatedly seed a clique with an
    uncovered vertex and grow it with uncovered vertices adjacent to every
    current member; candidate edges are tried in ascending [edge_weight]
    (insertion order when absent), and seeds in decreasing degree when
    [order_by_degree] (default [true]). *)
