(* Parallel execution context for shared-store workloads: an [Exec]
   worker pool plus the [Bdd.Shared] store whose views the workers
   check out per task.  One context serves every parallel hot loop —
   per-cluster image merges, per-output vector minimization, matching
   graph construction — so a driver builds it once next to its pool. *)

type t = { pool : Exec.Pool.t; store : Bdd.Shared.store }

let make ~pool ~store = { pool; store }

let for_man ?pool man =
  match (Bdd.Shared.store_of man, pool) with
  | Some store, Some pool -> Some { pool; store }
  | _ -> None

(* Deterministic parallel map: results in list order, each task on a
   checked-out view.  The closure must combine only edges of this
   store. *)
let map t f xs =
  Exec.map_on t.pool
    (fun x -> Bdd.Shared.with_view t.store (fun view -> f view x))
    xs
