(** Heuristic minimization of BDDs using don't cares — the paper's
    contribution.

    Entry points: {!Ispec} for problem instances, {!Sibling} and {!Level}
    for the two heuristic classes, {!Schedule} for the combined schedule,
    {!Exact} and {!Lower_bound} for ground truth and bounds, and
    {!Registry} for the named catalogue used by the experiments. *)

module Ispec = Ispec
module Ctx = Ctx
module Par = Par
module Matching = Matching
module Sibling = Sibling
module Graph = Graph
module Level = Level
module Schedule = Schedule
module Vector = Vector
module Isop = Isop
module Exact = Exact
module Lower_bound = Lower_bound
module Registry = Registry
