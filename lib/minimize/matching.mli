(** The paper's three matching criteria (Definition 5, Table 1).

    A criterion relates two incompletely specified functions; when it
    holds, the pair has a common i-cover, and {!i_cover} returns the one
    with maximal don't-care part, as prescribed in §3.1.1:
    - [osdm] (one-sided DC match): [c1 = 0]; i-cover [[f2; c2]].
    - [osm]  (one-sided match): [(f1 ⊕ f2)·c1 = 0] and [c1 ≤ c2];
      i-cover [[f2; c2]].
    - [tsm]  (two-sided match): [(f1 ⊕ f2)·c1·c2 = 0];
      i-cover [[f1·c1 + f2·c2; c1 + c2]]. *)

type criterion = Osdm | Osm | Tsm

val name : criterion -> string
val of_name : string -> criterion option

val matches : Bdd.man -> criterion -> Ispec.t -> Ispec.t -> bool
(** [matches man crit s1 s2]: does [s1] match [s2] under [crit]?  (A
    directed question for [osdm] and [osm].) *)

val i_cover : Bdd.man -> criterion -> Ispec.t -> Ispec.t -> Ispec.t option
(** The maximal-DC common i-cover when the criterion holds, [None]
    otherwise. *)

val match_either :
  Bdd.man -> criterion -> Ispec.t -> Ispec.t -> Ispec.t option
(** Try the criterion in both directions (as the paper's [is_match] does
    for [osdm] and [osm]; [tsm] is symmetric). *)

val implies : criterion -> criterion -> bool
(** Strength hierarchy: [osdm ⇒ osm ⇒ tsm]. *)

(** Relation properties, as listed in Table 1. *)

val reflexive : criterion -> bool
val symmetric : criterion -> bool
val transitive : criterion -> bool

val all : criterion list
