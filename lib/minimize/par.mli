(** Parallel execution context for shared-store workloads.

    Bundles an [Exec.Pool] with the {!Bdd.Shared.store} the operands
    live in.  Parallel hot loops ({!Vector.minimize}, {!Level} matching
    graph construction, [Fsm.Image]) take an optional context and
    dispatch their independent sub-problems onto the pool, each task on
    a view checked out with {!Bdd.Shared.with_view}.  Results are
    deterministic: task lists and submission order are fixed by the
    caller, and BDD results are canonical store-wide, so a parallel run
    returns the same edges as the sequential one. *)

type t = { pool : Exec.Pool.t; store : Bdd.Shared.store }

val make : pool:Exec.Pool.t -> store:Bdd.Shared.store -> t

val for_man : ?pool:Exec.Pool.t -> Bdd.man -> t option
(** [Some] context iff [pool] is given {e and} the manager is a
    shared-store view — the usual guard when plumbing a [-j] flag. *)

val map : t -> (Bdd.man -> 'a -> 'b) -> 'a list -> 'b list
(** [map t f xs] runs [f view x] for each element on the pool, results
    in list order.  [f] must keep the view inside the call. *)
