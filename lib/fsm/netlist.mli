(** Gate-level sequential netlists.

    A netlist is a DAG of two-input gates over primary inputs and latch
    outputs, plus named primary outputs.  Netlists are built through the
    {!builder} API (latches close cycles through a deferred next-state
    connection) and consumed by {!Symbolic} for BDD encoding and by
    {!Blif} for I/O. *)

type signal
(** A net of the circuit under construction (or of a finished netlist). *)

type gate =
  | Input of string
  | Const of bool
  | Not of signal
  | And of signal * signal
  | Or of signal * signal
  | Xor of signal * signal
  | Latch of { name : string; init : bool; next : signal }

type t
(** A finished netlist. *)

type builder

(** {1 Building} *)

val create : string -> builder
(** [create name] starts an empty netlist. *)

val input : builder -> string -> signal
val const_signal : builder -> bool -> signal
val not_gate : builder -> signal -> signal
val and_gate : builder -> signal -> signal -> signal
val or_gate : builder -> signal -> signal -> signal
val xor_gate : builder -> signal -> signal -> signal
val nand_gate : builder -> signal -> signal -> signal
val nor_gate : builder -> signal -> signal -> signal
val xnor_gate : builder -> signal -> signal -> signal

val mux : builder -> sel:signal -> t1:signal -> e0:signal -> signal
(** Multiplexer: [sel ? t1 : e0]. *)

val and_list : builder -> signal list -> signal
val or_list : builder -> signal list -> signal

val latch : builder -> ?name:string -> init:bool -> unit -> signal * (signal -> unit)
(** [latch b ~init ()] returns the latch output and a one-shot setter for
    its next-state input, to be called before {!finalize}. *)

val output : builder -> string -> signal -> unit
(** Declare a named primary output. *)

val finalize : builder -> t
(** Check that every latch got its next-state connection and freeze.
    @raise Invalid_argument on dangling latches or duplicate names. *)

(** {1 Word-level helpers}

    Words are little-endian signal arrays (index 0 = LSB). *)

val word_const : builder -> width:int -> int -> signal array
val word_not : builder -> signal array -> signal array
val word_and : builder -> signal array -> signal array -> signal array
val word_or : builder -> signal array -> signal array -> signal array
val word_xor : builder -> signal array -> signal array -> signal array

val word_add : builder -> ?carry_in:signal -> signal array -> signal array -> signal array * signal
(** Ripple-carry adder; returns sum and carry-out. *)

val word_inc : builder -> signal array -> signal array * signal
val word_eq : builder -> signal array -> signal array -> signal
val word_lt : builder -> signal array -> signal array -> signal
(** Unsigned comparison. *)

val word_mux : builder -> sel:signal -> t1:signal array -> e0:signal array -> signal array

val word_latch :
  builder -> ?name:string -> width:int -> init:int -> unit ->
  signal array * (signal array -> unit)
(** A register: per-bit latches with a word-level next-state setter. *)

(** {1 Inspection} *)

val name : t -> string
val gates : t -> gate array
(** Topologically ordered: a gate's operands precede it, except latch
    next-state references which may point anywhere. *)

val signal_index : signal -> int
val signal_of_index : t -> int -> signal

val inputs : t -> (string * signal) list
val latches : t -> (string * signal) list
val outputs : t -> (string * signal) list
val gate_of : t -> signal -> gate

val num_gates : t -> int
val num_latches : t -> int
val num_inputs : t -> int

val stats : t -> string

(** {1 Simulation} *)

type sim_state
(** Concrete-valued simulator state (latch values). *)

val sim_initial : t -> sim_state
val sim_step : t -> sim_state -> (string -> bool) -> (string * bool) list * sim_state
(** [sim_step nl st inputs] evaluates one clock cycle: returns the primary
    output values and the next state. *)

val sim_latch_values : t -> sim_state -> (string * bool) list
(** Current latch values, in latch order. *)
