(** BFS depth maps: for every reachable state, the first iteration at
    which it is reached, represented as an ADD over the current-state
    variables.  The maximum finite depth is the machine's sequential
    diameter; the {!Bdd.Add.to_bdd} threshold abstraction recovers the
    onion rings. *)

type t = {
  map : Bdd.Add.t;  (** depth per state; [unreachable] elsewhere *)
  add_man : Bdd.Add.man;
  diameter : int;  (** max finite depth *)
  unreachable : int;  (** the sentinel value used for unreachable states *)
}

val compute : ?max_iterations:int -> Symbolic.t -> t
(** Run BFS reachability recording first-visit depths. *)

val depth_of_state : t -> bool array -> Symbolic.t -> int option
(** Depth of one concrete state ([None] if unreachable). *)

val ring : t -> Symbolic.t -> int -> Bdd.t
(** The set of states at exactly the given depth (a BDD in the symbolic
    machine's manager). *)
