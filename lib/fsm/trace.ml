(* Complete a path cube over [vars] into a full assignment (missing
   variables pulled low) and return its characteristic cube. *)
let complete_state man vars cube =
  let assign v =
    match List.assoc_opt v cube with Some b -> b | None -> false
  in
  List.fold_left
    (fun acc v ->
       let lit = Bdd.ithvar man v in
       Bdd.dand man acc (if assign v then lit else Bdd.compl lit))
    (Bdd.one man) vars

let pick_full man vars set =
  match Bdd.Cube.any_cube man set with
  | None -> None
  | Some cube -> Some (complete_state man vars cube)

let input_assignment man (sym : Symbolic.t) condition =
  let cube =
    match Bdd.Cube.any_cube man condition with Some c -> c | None -> []
  in
  List.map
    (fun (name, v) ->
       (name, match List.assoc_opt v cube with Some b -> b | None -> false))
    sym.input_vars

let to_states ?(max_iterations = max_int) ?final_condition man
    (sym : Symbolic.t) ~bad =
  let state_vars = Symbolic.state_support sym in
  (* Forward rings until one touches a bad state. *)
  let rec forward rings reached frontier n =
    if Bdd.is_zero frontier || n > max_iterations then None
    else if not (Bdd.is_zero (Bdd.dand man frontier bad)) then
      Some (List.rev (frontier :: rings))
    else
      let successors = Image.image sym frontier in
      let frontier' = Bdd.diff man successors reached in
      let reached' = Bdd.dor man reached successors in
      forward (frontier :: rings) reached' frontier' (n + 1)
  in
  match forward [] sym.init sym.init 0 with
  | None -> None
  | Some rings ->
    let rings = Array.of_list rings in
    let k = Array.length rings - 1 in
    (* Concrete states backwards from the failing ring. *)
    let states = Array.make (k + 1) (Bdd.zero man) in
    (match pick_full man state_vars (Bdd.dand man rings.(k) bad) with
     | Some s -> states.(k) <- s
     | None -> assert false);
    let trans = Symbolic.transition_relation sym in
    for j = k - 1 downto 0 do
      let succ_next =
        Bdd.rename man states.(j + 1) (Symbolic.current_to_next sym)
      in
      let preds =
        Bdd.and_exists man
          (Array.to_list sym.next_vars @ Symbolic.input_support sym)
          trans succ_next
      in
      match pick_full man state_vars (Bdd.dand man preds rings.(j)) with
      | Some s -> states.(j) <- s
      | None -> assert false
    done;
    (* Inputs along the spine. *)
    let step_input j =
      let succ_next =
        Bdd.rename man states.(j + 1) (Symbolic.current_to_next sym)
      in
      let condition =
        Bdd.exists man
          (state_vars @ Array.to_list sym.next_vars)
          (Bdd.conj man [ trans; states.(j); succ_next ])
      in
      input_assignment man sym condition
    in
    let spine = List.init k step_input in
    (match final_condition with
     | None -> Some spine
     | Some cond ->
       let final =
         input_assignment man sym
           (Bdd.exists man state_vars (Bdd.dand man cond states.(k)))
       in
       Some (spine @ [ final ]))
