exception Malformed of string

let fail fmt = Printf.ksprintf (fun s -> raise (Malformed s)) fmt

(* Split BLIF text into logical lines: strip comments, join continuations,
   drop blanks. *)
let logical_lines text =
  let raw = String.split_on_char '\n' text in
  let strip_comment line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  let rec join acc pending = function
    | [] -> List.rev (if pending = "" then acc else pending :: acc)
    | line :: rest ->
      let line = strip_comment line in
      let line = String.trim line in
      if line = "" then join (if pending = "" then acc else pending :: acc) "" rest
      else if String.length line > 0 && line.[String.length line - 1] = '\\'
      then
        join acc (pending ^ String.sub line 0 (String.length line - 1) ^ " ") rest
      else join ((pending ^ line) :: acc) "" rest
  in
  join [] "" raw

let tokens line =
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun t -> t <> "")

type raw_names = { deps : string list; out : string; rows : string list }

type raw_latch = { d : string; q : string; init : bool }

type raw_model = {
  mutable model : string;
  mutable m_inputs : string list;
  mutable m_outputs : string list;
  mutable names : raw_names list;
  mutable latches : raw_latch list;
}

let parse_raw text =
  let m =
    { model = "blif"; m_inputs = []; m_outputs = []; names = []; latches = [] }
  in
  let current_cover = ref None in
  let flush_cover () =
    match !current_cover with
    | Some (deps, out, rows) ->
      m.names <- { deps; out; rows = List.rev rows } :: m.names;
      current_cover := None
    | None -> ()
  in
  let handle line =
    match tokens line with
    | [] -> ()
    | cmd :: args when String.length cmd > 0 && cmd.[0] = '.' -> begin
        flush_cover ();
        match (cmd, args) with
        | (".model", [ n ]) -> m.model <- n
        | (".model", _) -> fail ".model expects one name"
        | (".inputs", ins) -> m.m_inputs <- m.m_inputs @ ins
        | (".outputs", outs) -> m.m_outputs <- m.m_outputs @ outs
        | (".names", args) -> begin
            match List.rev args with
            | out :: rev_deps ->
              current_cover := Some (List.rev rev_deps, out, [])
            | [] -> fail ".names expects at least an output"
          end
        | (".latch", args) -> begin
            let d, q, init =
              match args with
              | [ d; q ] -> (d, q, "0")
              | [ d; q; init ] -> (d, q, init)
              | [ d; q; _type; _clock; init ] -> (d, q, init)
              | _ -> fail ".latch expects 2, 3 or 5 arguments"
            in
            let init =
              match init with
              | "1" -> true
              | "0" | "2" | "3" -> false
              | s -> fail ".latch: bad initial value %s" s
            in
            m.latches <- { d; q; init } :: m.latches
          end
        | (".end", _) -> ()
        | (".exdc", _) | (".wire_load_slope", _) | (".clock", _) -> ()
        | (c, _) -> fail "unsupported BLIF construct %s" c
      end
    | row -> begin
        match !current_cover with
        | Some (deps, out, rows) ->
          let row_str = String.concat " " row in
          current_cover := Some (deps, out, row_str :: rows)
        | None -> fail "cover row outside .names: %s" line
      end
  in
  List.iter handle (logical_lines text);
  flush_cover ();
  m.names <- List.rev m.names;
  m.latches <- List.rev m.latches;
  m

(* Build the netlist: create inputs and latches first, then elaborate each
   .names cover in dependency order. *)
let elaborate (m : raw_model) =
  let b = Netlist.create m.model in
  let env : (string, Netlist.signal) Hashtbl.t = Hashtbl.create 64 in
  let define name s =
    if Hashtbl.mem env name then fail "signal %s defined twice" name;
    Hashtbl.add env name s
  in
  List.iter (fun n -> define n (Netlist.input b n)) m.m_inputs;
  let latch_setters =
    List.map
      (fun { d; q; init } ->
         let sig_q, set = Netlist.latch b ~name:q ~init () in
         define q sig_q;
         (d, set))
      m.latches
  in
  (* Elaborate covers in an order where dependencies are available. *)
  let pending = ref m.names in
  let progress = ref true in
  let elaborate_cover { deps; out; rows } =
    let dep_signals = List.map (Hashtbl.find env) deps in
    let row_signal row =
      let pattern, out_val =
        match tokens row with
        | [ p; v ] -> (p, v)
        | [ v ] when deps = [] -> ("", v)
        | _ -> fail "bad cover row %S for %s" row out
      in
      if out_val <> "1" then
        fail "only ON-set covers are supported (output %s)" out;
      if String.length pattern <> List.length deps then
        fail "cover row %S arity mismatch for %s" row out;
      let lit_list =
        List.concat
          (List.mapi
             (fun i s ->
                match pattern.[i] with
                | '1' -> [ s ]
                | '0' -> [ Netlist.not_gate b s ]
                | '-' -> []
                | ch -> fail "bad cover character %c" ch)
             dep_signals)
      in
      Netlist.and_list b lit_list
    in
    let value =
      match rows with
      | [] -> Netlist.const_signal b false
      | rows -> Netlist.or_list b (List.map row_signal rows)
    in
    define out value
  in
  while !progress && !pending <> [] do
    progress := false;
    let still = ref [] in
    List.iter
      (fun cover ->
         if List.for_all (Hashtbl.mem env) cover.deps then begin
           elaborate_cover cover;
           progress := true
         end
         else still := cover :: !still)
      !pending;
    pending := List.rev !still
  done;
  (match !pending with
   | [] -> ()
   | { out; _ } :: _ ->
     fail "combinational cycle or undefined dependency at %s" out);
  List.iter
    (fun (d, set) ->
       match Hashtbl.find_opt env d with
       | Some s -> set s
       | None -> fail "latch input %s undefined" d)
    latch_setters;
  List.iter
    (fun n ->
       match Hashtbl.find_opt env n with
       | Some s -> Netlist.output b n s
       | None -> fail "output %s undefined" n)
    m.m_outputs;
  Netlist.finalize b

let parse text =
  match elaborate (parse_raw text) with
  | nl -> Ok nl
  | exception Malformed msg -> Error msg
  | exception Invalid_argument msg -> Error msg

let parse_exn text =
  match parse text with
  | Ok nl -> nl
  | Error msg -> invalid_arg ("Blif.parse_exn: " ^ msg)

let parse_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  parse text

(* ----- printing ----- *)

let print nl =
  let buf = Buffer.create 1024 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let gates = Netlist.gates nl in
  let sig_name i =
    match gates.(i) with
    | Netlist.Input n -> n
    | Netlist.Latch { name; _ } -> name
    | _ -> Printf.sprintf "n%d" i
  in
  let name_of s = sig_name (Netlist.signal_index s) in
  pr ".model %s\n" (Netlist.name nl);
  pr ".inputs%s\n"
    (String.concat "" (List.map (fun (n, _) -> " " ^ n) (Netlist.inputs nl)));
  pr ".outputs%s\n"
    (String.concat ""
       (List.map (fun (n, _) -> " " ^ n) (Netlist.outputs nl)));
  Array.iteri
    (fun i g ->
       match g with
       | Netlist.Input _ -> ()
       | Netlist.Const v ->
         pr ".names n%d\n" i;
         if v then pr "1\n"
       | Netlist.Not a -> pr ".names %s n%d\n0 1\n" (name_of a) i
       | Netlist.And (a, b) ->
         pr ".names %s %s n%d\n11 1\n" (name_of a) (name_of b) i
       | Netlist.Or (a, b) ->
         pr ".names %s %s n%d\n1- 1\n-1 1\n" (name_of a) (name_of b) i
       | Netlist.Xor (a, b) ->
         pr ".names %s %s n%d\n10 1\n01 1\n" (name_of a) (name_of b) i
       | Netlist.Latch { name; init; next } ->
         pr ".latch %s %s %d\n" (name_of next) name (Bool.to_int init))
    gates;
  (* Primary outputs may alias internal nets; emit buffers. *)
  List.iter
    (fun (n, s) ->
       if name_of s <> n then pr ".names %s %s\n1 1\n" (name_of s) n)
    (Netlist.outputs nl);
  pr ".end\n";
  Buffer.contents buf

let write_file path nl =
  let oc = open_out path in
  output_string oc (print nl);
  close_out oc
