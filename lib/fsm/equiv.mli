(** Product-machine equivalence checking — the analogue of SIS's
    [verify_fsm -m product] used for the paper's experiments.

    Two machines over the same primary inputs are combined into a product
    netlist whose single output ([neq]) is the OR of the XORs of
    same-named outputs; they are equivalent iff no reachable product state
    activates [neq] under some input. *)

type verdict =
  | Equivalent of Reach.stats
  | Not_equivalent of {
      stats : Reach.stats;
      distinguishing_state : Bdd.Cube.cube;
      (** one reachable product state violating output equality *)
    }

val product : Netlist.t -> Netlist.t -> Netlist.t
(** The product machine.  Latch names are prefixed [a./b.]; the machines
    must have identical input-name sets and at least one output name in
    common.  @raise Invalid_argument otherwise. *)

val check :
  ?strategy:Image.strategy ->
  ?cluster_bound:int ->
  ?minimize:Reach.minimizer ->
  ?max_iterations:int ->
  ?on_instance:(iteration:int -> Minimize.Ispec.t -> unit) ->
  ?on_image_constrain:(iteration:int -> Minimize.Ispec.t -> unit) ->
  Bdd.man ->
  Netlist.t ->
  Netlist.t ->
  verdict
(** Breadth-first equivalence check; [on_instance] sees every frontier
    minimization instance, as in the paper's instrumented runs.

    Verdicts are only ever rendered on a complete fixpoint: if an
    installed [Bdd.Budget] runs out mid-traversal, the partial reached
    set supports no sound answer and [Bdd.Budget_exhausted] is raised
    instead. *)

val counterexample_trace :
  ?max_iterations:int ->
  Bdd.man ->
  Netlist.t ->
  Netlist.t ->
  (string * bool) list list option
(** When the machines differ, an input {e trace} demonstrating it: one
    assignment of the primary inputs per clock cycle such that, driving
    both machines from reset, some common output differs at the last
    cycle (and {!Simcheck.replay} confirms it).  [None] when the machines
    are equivalent.  Built by the classic onion-ring method: keep the BFS
    rings, find the first ring touching a distinguishing state, then walk
    backwards through preimages picking one concrete state and input per
    step. *)

val check_self :
  ?strategy:Image.strategy ->
  ?cluster_bound:int ->
  ?minimize:Reach.minimizer ->
  ?max_iterations:int ->
  ?on_instance:(iteration:int -> Minimize.Ispec.t -> unit) ->
  ?on_image_constrain:(iteration:int -> Minimize.Ispec.t -> unit) ->
  Bdd.man ->
  Netlist.t ->
  verdict
(** The paper's experimental setup: compare a machine to itself. *)
