(** Safety (AG) checking: prove that a predicate holds in every reachable
    state, or produce a concrete input trace violating it. *)

type verdict =
  | Holds of Reach.stats
  | Violated of (string * bool) list list
      (** input trace from reset; replaying it in the simulator reaches
          the violation at the last step *)

val check_state :
  ?max_iterations:int -> Bdd.man -> Symbolic.t -> invariant:Bdd.t -> verdict
(** AG [invariant], where [invariant] is a predicate over the machine's
    current-state variables.  A violating trace drives the machine into a
    state falsifying it (the trace's length equals the violation depth;
    it is empty when the initial state already violates). *)

val check_output_never :
  ?max_iterations:int -> Bdd.man -> Symbolic.t -> output:string -> verdict
(** AG ¬output: no reachable state activates the named output under any
    input.  A violating trace ends with an input assignment that raises
    the output in the reached state.
    @raise Invalid_argument on unknown output names. *)
