(** FSM substrate: gate-level netlists, BLIF I/O, symbolic encoding,
    image computation, reachability with frontier minimization, and
    product-machine equivalence checking. *)

module Netlist = Netlist
module Blif = Blif
module Symbolic = Symbolic
module Qsched = Qsched
module Image = Image
module Reach = Reach
module Equiv = Equiv
module Explicit = Explicit
module Synth = Synth
module Simcheck = Simcheck
module Depth = Depth
module Trace = Trace
module Invariant = Invariant
