type strategy = Monolithic | Partitioned | Clustered | Range

let strategy_name = function
  | Monolithic -> "monolithic"
  | Partitioned -> "partitioned"
  | Clustered -> "clustered"
  | Range -> "range"

let strategy_of_name = function
  | "monolithic" -> Some Monolithic
  | "partitioned" -> Some Partitioned
  | "clustered" -> Some Clustered
  | "range" -> Some Range
  | _ -> None

let image_monolithic (sym : Symbolic.t) s =
  let man = sym.man in
  let t = Symbolic.transition_relation sym in
  let quantified = Symbolic.state_support sym @ Symbolic.input_support sym in
  let img_next = Bdd.and_exists man quantified t s in
  Bdd.rename man img_next (Symbolic.next_to_current sym)

(* Conjoin clusters into the accumulated product in schedule order,
   existentially quantifying each current-state/input variable at its
   last occurrence via the fused [and_exists] kernel.  The schedule —
   clusters, supports, per-cluster quantification lists — is memoized in
   the machine, so a call does no support recomputation at all. *)
let image_scheduled ?cluster_bound (sym : Symbolic.t) s =
  let man = sym.man in
  let sched = Symbolic.schedule ?cluster_bound sym in
  let acc =
    match sched.Qsched.pre_quantify with
    | [] -> s
    | vars -> Bdd.exists man vars s
  in
  let img_next =
    Array.fold_left
      (fun acc (c : Qsched.cluster) ->
         Bdd.and_exists man c.Qsched.quantify acc c.Qsched.rel)
      acc sched.Qsched.clusters
  in
  Bdd.rename man img_next (Symbolic.next_to_current sym)

(* A cluster bound of 1 keeps every per-latch conjunct separate: the
   historical partitioned strategy, now driven by the same schedule. *)
let image_partitioned sym s = image_scheduled ~cluster_bound:1 sym s
let image_clustered ?cluster_bound sym s = image_scheduled ?cluster_bound sym s

(* Coudert–Madre range computation: the image of S under the function
   vector δ is the range of the vector (δ_j constrained by S).  Recursive
   output splitting; sound precisely because [constrain] distributes over
   vector composition. *)
let image_by_range ?(on_constrain = fun _ -> ()) (sym : Symbolic.t) s =
  let man = sym.man in
  if Bdd.is_zero s then Bdd.zero man
  else begin
    let constrained =
      Array.to_list
        (Array.map
           (fun d ->
              on_constrain (Minimize.Ispec.make ~f:d ~c:s);
              Bdd.constrain man d s)
           sym.next_fns)
    in
    let vars = Array.to_list sym.state_vars in
    let rec range fns vars =
      match (fns, vars) with
      | ([], _) -> Bdd.one man
      | (f :: rest, v :: vrest) ->
        let var = Bdd.ithvar man v in
        if Bdd.is_one f then Bdd.dand man var (range rest vrest)
        else if Bdd.is_zero f then
          Bdd.dand man (Bdd.compl var) (range rest vrest)
        else begin
          let on = List.map (fun g -> Bdd.constrain man g f) rest in
          let off =
            List.map (fun g -> Bdd.constrain man g (Bdd.compl f)) rest
          in
          Bdd.dor man
            (Bdd.dand man var (range on vrest))
            (Bdd.dand man (Bdd.compl var) (range off vrest))
        end
      | (_ :: _, []) -> assert false
    in
    range constrained vars
  end

let image ?(strategy = Partitioned) ?cluster_bound ?on_constrain sym s =
  Obs.Trace.with_span "fsm.image"
    ~attrs:[ ("strategy", Obs.Trace.Str (strategy_name strategy)) ]
  @@ fun sp ->
  let r =
    match strategy with
    | Monolithic -> image_monolithic sym s
    | Partitioned -> image_partitioned sym s
    | Clustered -> image_clustered ?cluster_bound sym s
    | Range -> image_by_range ?on_constrain sym s
  in
  if Obs.Trace.enabled () then begin
    Obs.Trace.add sp "source_nodes"
      (Obs.Trace.Int (Bdd.size sym.Symbolic.man s));
    Obs.Trace.add sp "image_nodes"
      (Obs.Trace.Int (Bdd.size sym.Symbolic.man r))
  end;
  r

let preimage (sym : Symbolic.t) s =
  let man = sym.man in
  let t = Symbolic.transition_relation sym in
  let s_next = Bdd.rename man s (Symbolic.current_to_next sym) in
  let next_and_inputs =
    Array.to_list sym.next_vars @ Symbolic.input_support sym
  in
  Bdd.and_exists man next_and_inputs t s_next
