type strategy = Monolithic | Partitioned | Range

let strategy_name = function
  | Monolithic -> "monolithic"
  | Partitioned -> "partitioned"
  | Range -> "range"

let image_monolithic (sym : Symbolic.t) s =
  let man = sym.man in
  let t = Symbolic.transition_relation sym in
  let quantified = Symbolic.state_support sym @ Symbolic.input_support sym in
  let img_next = Bdd.and_exists man quantified t s in
  Bdd.rename man img_next (Symbolic.next_to_current sym)

(* Conjoin per-latch conjuncts into the accumulated product, existentially
   quantifying each current-state/input variable as soon as no remaining
   conjunct mentions it. *)
let image_partitioned (sym : Symbolic.t) s =
  let man = sym.man in
  let parts = Array.to_list (Symbolic.partitioned_relation sym) in
  let to_quantify =
    List.sort_uniq compare
      (Symbolic.state_support sym @ Symbolic.input_support sym)
  in
  let rec go acc pending vars =
    match pending with
    | [] -> Bdd.exists man vars acc
    | part :: rest ->
      let rest_supports =
        List.concat_map (fun p -> Bdd.support man p) rest
      in
      let dead, alive =
        List.partition
          (fun v -> not (List.mem v rest_supports))
          vars
      in
      let acc = Bdd.and_exists man dead acc part in
      go acc rest alive
  in
  let img_next = go s parts to_quantify in
  Bdd.rename man img_next (Symbolic.next_to_current sym)

(* Coudert–Madre range computation: the image of S under the function
   vector δ is the range of the vector (δ_j constrained by S).  Recursive
   output splitting; sound precisely because [constrain] distributes over
   vector composition. *)
let image_by_range ?(on_constrain = fun _ -> ()) (sym : Symbolic.t) s =
  let man = sym.man in
  if Bdd.is_zero s then Bdd.zero man
  else begin
    let constrained =
      Array.to_list
        (Array.map
           (fun d ->
              on_constrain (Minimize.Ispec.make ~f:d ~c:s);
              Bdd.constrain man d s)
           sym.next_fns)
    in
    let vars = Array.to_list sym.state_vars in
    let rec range fns vars =
      match (fns, vars) with
      | ([], _) -> Bdd.one man
      | (f :: rest, v :: vrest) ->
        let var = Bdd.ithvar man v in
        if Bdd.is_one f then Bdd.dand man var (range rest vrest)
        else if Bdd.is_zero f then
          Bdd.dand man (Bdd.compl var) (range rest vrest)
        else begin
          let on = List.map (fun g -> Bdd.constrain man g f) rest in
          let off =
            List.map (fun g -> Bdd.constrain man g (Bdd.compl f)) rest
          in
          Bdd.dor man
            (Bdd.dand man var (range on vrest))
            (Bdd.dand man (Bdd.compl var) (range off vrest))
        end
      | (_ :: _, []) -> assert false
    in
    range constrained vars
  end

let image ?(strategy = Partitioned) ?on_constrain sym s =
  Obs.Trace.with_span "fsm.image"
    ~attrs:[ ("strategy", Obs.Trace.Str (strategy_name strategy)) ]
  @@ fun sp ->
  let r =
    match strategy with
    | Monolithic -> image_monolithic sym s
    | Partitioned -> image_partitioned sym s
    | Range -> image_by_range ?on_constrain sym s
  in
  if Obs.Trace.enabled () then begin
    Obs.Trace.add sp "source_nodes"
      (Obs.Trace.Int (Bdd.size sym.Symbolic.man s));
    Obs.Trace.add sp "image_nodes"
      (Obs.Trace.Int (Bdd.size sym.Symbolic.man r))
  end;
  r

let preimage (sym : Symbolic.t) s =
  let man = sym.man in
  let t = Symbolic.transition_relation sym in
  let s_next = Bdd.rename man s (Symbolic.current_to_next sym) in
  let next_and_inputs =
    Array.to_list sym.next_vars @ Symbolic.input_support sym
  in
  Bdd.and_exists man next_and_inputs t s_next
