type strategy = Monolithic | Partitioned | Clustered | Range

(* Parallel execution context: a worker pool plus the shared node store
   the machine's manager is a view of (see [Minimize.Par]).  Worker
   tasks check out idle views of the same store, so every edge they
   produce is canonical across the whole machine. *)
type par = Minimize.Par.t

let par ~pool ~store = Minimize.Par.make ~pool ~store

let par_for ?pool (sym : Symbolic.t) =
  Minimize.Par.for_man ?pool sym.Symbolic.man

let strategy_name = function
  | Monolithic -> "monolithic"
  | Partitioned -> "partitioned"
  | Clustered -> "clustered"
  | Range -> "range"

let strategy_of_name = function
  | "monolithic" -> Some Monolithic
  | "partitioned" -> Some Partitioned
  | "clustered" -> Some Clustered
  | "range" -> Some Range
  | _ -> None

let image_monolithic (sym : Symbolic.t) s =
  let man = sym.man in
  let t = Symbolic.transition_relation sym in
  let quantified = Symbolic.state_support sym @ Symbolic.input_support sym in
  let img_next = Bdd.and_exists man quantified t s in
  Bdd.rename man img_next (Symbolic.next_to_current sym)

(* Conjoin clusters into the accumulated product in schedule order,
   existentially quantifying each current-state/input variable at its
   last occurrence via the fused [and_exists] kernel.  The schedule —
   clusters, supports, per-cluster quantification lists — is memoized in
   the machine, so a call does no support recomputation at all. *)
let image_scheduled ?cluster_bound (sym : Symbolic.t) s =
  let man = sym.man in
  let sched = Symbolic.schedule ?cluster_bound sym in
  let acc =
    match sched.Qsched.pre_quantify with
    | [] -> s
    | vars -> Bdd.exists man vars s
  in
  let img_next =
    Array.fold_left
      (fun acc (c : Qsched.cluster) ->
         Bdd.and_exists man c.Qsched.quantify acc c.Qsched.rel)
      acc sched.Qsched.clusters
  in
  Bdd.rename man img_next (Symbolic.next_to_current sym)

(* A cluster bound of 1 keeps every per-latch conjunct separate: the
   historical partitioned strategy, now driven by the same schedule. *)
let image_partitioned sym s = image_scheduled ~cluster_bound:1 sym s
let image_clustered ?cluster_bound sym s = image_scheduled ?cluster_bound sym s

(* ----- parallel conjoin-and-quantify ----- *)

(* Sorted-int-list set helpers (supports are small). *)
let iset_union a b = List.sort_uniq compare (List.rev_append a b)
let iset_mem v l = List.mem v l
let iset_diff a b = List.filter (fun v -> not (List.mem v b)) a

(* Pairwise tree reduction of the quantification schedule.  The
   sequential walk computes [∃Q. S · ∧ rels] by folding left; any merge
   tree computes the same function provided a variable is only
   quantified once no conjunct {e outside} the merged subtree still
   mentions it.  Each round pairs adjacent items, derives every pair's
   sound quantification set from the tracked supports of all other
   items, and dispatches the [and_exists] merges onto pool workers, each
   on a checked-out view of the shared store.  Tracked supports are
   over-approximations (quantified variables are removed, vanished ones
   are not) — that only ever {e delays} a quantification, never loses
   one, so the result is the exact image; a final [exists] sweeps any
   variables still pending when one item remains.

   Determinism: the pairing, the quantification sets and the
   submission order are all functions of the schedule alone, and BDD
   results are canonical store-wide, so the computed image is the same
   edge the sequential walk produces. *)
let image_scheduled_par ~(par : par) ?cluster_bound (sym : Symbolic.t) s =
  let man = sym.man in
  let sched = Symbolic.schedule ?cluster_bound sym in
  let acc =
    match sched.Qsched.pre_quantify with
    | [] -> s
    | vars -> Bdd.exists man vars s
  in
  let clusters = sched.Qsched.clusters in
  if Array.length clusters = 0 then
    Bdd.rename man acc (Symbolic.next_to_current sym)
  else begin
    let quantifiable =
      Array.fold_left
        (fun q (c : Qsched.cluster) -> iset_union q c.Qsched.quantify)
        [] clusters
    in
    let items =
      ref
        ((acc, Bdd.support man acc)
         :: Array.to_list
              (Array.map
                 (fun (c : Qsched.cluster) -> (c.Qsched.rel, c.Qsched.support))
                 clusters))
    in
    while List.length !items > 1 do
      let arr = Array.of_list !items in
      let m = Array.length arr in
      let rec pairs k acc =
        if (2 * k) + 1 >= m then List.rev acc else pairs (k + 1) (k :: acc)
      in
      let pair_ids = pairs 0 [] in
      let merge_plan =
        List.map
          (fun k ->
             let i = 2 * k in
             let a, sa = arr.(i) and b, sb = arr.(i + 1) in
             let combined = iset_union sa sb in
             let elsewhere = ref [] in
             Array.iteri
               (fun j (_, sj) ->
                  if j <> i && j <> i + 1 then
                    elsewhere := iset_union !elsewhere sj)
               arr;
             let q =
               List.filter
                 (fun v ->
                    iset_mem v quantifiable && not (iset_mem v !elsewhere))
                 combined
             in
             (a, b, q, iset_diff combined q))
          pair_ids
      in
      let merged =
        Minimize.Par.map par
          (fun view (a, b, q, _) -> Bdd.and_exists view q a b)
          merge_plan
      in
      let leftover = if m land 1 = 1 then [ arr.(m - 1) ] else [] in
      items :=
        List.map2 (fun r (_, _, _, sup) -> (r, sup)) merged merge_plan
        @ leftover
    done;
    let result, sup = List.hd !items in
    let pending = List.filter (fun v -> iset_mem v sup) quantifiable in
    let img_next =
      match pending with [] -> result | vars -> Bdd.exists man vars result
    in
    Bdd.rename man img_next (Symbolic.next_to_current sym)
  end

(* Coudert–Madre range computation: the image of S under the function
   vector δ is the range of the vector (δ_j constrained by S).  Recursive
   output splitting; sound precisely because [constrain] distributes over
   vector composition. *)
let image_by_range ?(on_constrain = fun _ -> ()) (sym : Symbolic.t) s =
  let man = sym.man in
  if Bdd.is_zero s then Bdd.zero man
  else begin
    let constrained =
      Array.to_list
        (Array.map
           (fun d ->
              on_constrain (Minimize.Ispec.make ~f:d ~c:s);
              Bdd.constrain man d s)
           sym.next_fns)
    in
    let vars = Array.to_list sym.state_vars in
    let rec range fns vars =
      match (fns, vars) with
      | ([], _) -> Bdd.one man
      | (f :: rest, v :: vrest) ->
        let var = Bdd.ithvar man v in
        if Bdd.is_one f then Bdd.dand man var (range rest vrest)
        else if Bdd.is_zero f then
          Bdd.dand man (Bdd.compl var) (range rest vrest)
        else begin
          let on = List.map (fun g -> Bdd.constrain man g f) rest in
          let off =
            List.map (fun g -> Bdd.constrain man g (Bdd.compl f)) rest
          in
          Bdd.dor man
            (Bdd.dand man var (range on vrest))
            (Bdd.dand man (Bdd.compl var) (range off vrest))
        end
      | (_ :: _, []) -> assert false
    in
    range constrained vars
  end

let image ?(strategy = Partitioned) ?cluster_bound ?on_constrain ?par sym s =
  Obs.Trace.with_span "fsm.image"
    ~attrs:[ ("strategy", Obs.Trace.Str (strategy_name strategy)) ]
  @@ fun sp ->
  let r =
    match (strategy, par) with
    | (Monolithic, _) -> image_monolithic sym s
    | (Partitioned, None) -> image_partitioned sym s
    | (Partitioned, Some par) ->
      image_scheduled_par ~par ~cluster_bound:1 sym s
    | (Clustered, None) -> image_clustered ?cluster_bound sym s
    | (Clustered, Some par) -> image_scheduled_par ~par ?cluster_bound sym s
    | (Range, _) -> image_by_range ?on_constrain sym s
  in
  if Obs.Trace.enabled () then begin
    Obs.Trace.add sp "source_nodes"
      (Obs.Trace.Int (Bdd.size sym.Symbolic.man s));
    Obs.Trace.add sp "image_nodes"
      (Obs.Trace.Int (Bdd.size sym.Symbolic.man r))
  end;
  r

let preimage (sym : Symbolic.t) s =
  let man = sym.man in
  let t = Symbolic.transition_relation sym in
  let s_next = Bdd.rename man s (Symbolic.current_to_next sym) in
  let next_and_inputs =
    Array.to_list sym.next_vars @ Symbolic.input_support sym
  in
  Bdd.and_exists man next_and_inputs t s_next
