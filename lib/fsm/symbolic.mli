(** Symbolic (BDD) encoding of a netlist.

    Variable order: current- and next-state variables interleaved
    (latch [j] gets current variable [2j] and next variable [2j + 1]),
    primary inputs after all state variables — reached-set and frontier
    BDDs then live in the top of the order, where minimization acts. *)

(** Static variable-ordering strategy (the order is fixed for the
    manager's lifetime, as the paper assumes; choosing it well is a
    separate concern from minimization). *)
type ordering =
  | Interleaved
  (** latch declaration order, current/next interleaved, inputs last
      (the default) *)
  | Topological
  (** latches in first-visit order of a DFS through the next-state
      logic, so structurally related latches sit near each other;
      interleaved, inputs last *)
  | Inputs_first  (** primary inputs above all state variables *)

type t = {
  man : Bdd.man;
  netlist : Netlist.t;
  state_vars : int array;  (** current-state variable of each latch *)
  next_vars : int array;  (** next-state variable of each latch *)
  input_vars : (string * int) list;
  next_fns : Bdd.t array;  (** [δ_j (x, i)] *)
  output_fns : (string * Bdd.t) list;  (** [λ (x, i)] *)
  init : Bdd.t;  (** characteristic function of the initial state *)
  mutable rel_parts : Bdd.t array option;
  (** memoized {!partitioned_relation} (rooted); don't touch directly *)
  mutable rel_mono : Bdd.t option;
  (** memoized {!transition_relation} (rooted); don't touch directly *)
  mutable qsched : (int * Qsched.t) option;
  (** memoized {!schedule} with the cluster bound it was built under;
      don't touch directly *)
}

val of_netlist : ?ordering:ordering -> Bdd.man -> Netlist.t -> t

val latch_rank : Netlist.t -> ordering -> int array
(** The latch permutation a strategy induces: entry [j] is the rank of
    the [j]-th declared latch (identity for {!Interleaved} and
    {!Inputs_first}). *)

val state_support : t -> int list
val input_support : t -> int list

val transition_relation : t -> Bdd.t
(** Monolithic [T(x, i, x') = ∏_j (x'_j ⟺ δ_j(x, i))].  Built on first
    use, rooted against GC and memoized in the record — repeated calls
    (one per image, formerly) are free. *)

val partitioned_relation : t -> Bdd.t array
(** The per-latch conjuncts of {!transition_relation}; memoized and
    rooted like it.  Callers must not mutate the returned array. *)

val schedule : ?cluster_bound:int -> t -> Qsched.t
(** The machine's quantification schedule (see {!Qsched}), built once
    per cluster bound (default {!Qsched.default_cluster_bound}) and
    memoized; asking for a different bound rebuilds and replaces the
    memo. *)

val next_to_current : t -> (int * int) list
(** Renaming pairs [x'_j → x_j]. *)

val current_to_next : t -> (int * int) list

val eval_outputs : t -> state:Bdd.t -> (string * Bdd.t) list
(** Outputs with state variables constrained to the given state set
    (existentially abstracted over states satisfying it is left to the
    caller; this just conjoins). *)

val num_state_vars : t -> int

val restrict_to_care_states :
  ?par:Minimize.Par.t ->
  t ->
  care:Bdd.t ->
  minimize:(Bdd.man -> Minimize.Ispec.t -> Bdd.t) ->
  t
(** The paper's second application (§1): re-encode every next-state and
    output function with the states outside [care] (typically the
    reachable set) as don't cares, shrinking the machine's BDDs while
    preserving its behaviour on [care].  Each function [g] is replaced by
    [minimize man [g; care]].  [par] shrinks the functions in parallel,
    one pool task per function, each on a checked-out view of the shared
    store the machine's manager must then belong to — the results are
    the same canonical edges as a sequential run. *)

val shared_node_count : t -> int
(** Size of the shared BDD DAG of all next-state and output functions —
    the natural measure of a machine's symbolic representation size. *)

val state_cube_of_ints : t -> bool array -> Bdd.t
(** Characteristic function of one concrete state (per-latch values in
    latch order). *)
