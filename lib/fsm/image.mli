(** Image and preimage computation.

    Three implementations are provided:
    - {!image_monolithic}: [∃x,i. T(x,i,x')·S(x)] against the monolithic
      transition relation;
    - {!image_partitioned}: conjoin-and-quantify over the per-latch
      conjuncts with early quantification of dead variables;
    - {!image_by_range}: Coudert–Madre output splitting over the
      next-state functions constrained by the state set — the technique
      (footnote 1 of the paper) whose correctness rests on the special
      property of [constrain].

    All three return the successor set over {e current}-state
    variables. *)

type strategy = Monolithic | Partitioned | Range

val strategy_name : strategy -> string
(** ["monolithic"], ["partitioned"] or ["range"] (CLI and trace
    labels). *)

val image :
  ?strategy:strategy ->
  ?on_constrain:(Minimize.Ispec.t -> unit) ->
  Symbolic.t ->
  Bdd.t ->
  Bdd.t
(** Successors of the given state set (default {!Partitioned}).
    [on_constrain] observes the generalized-cofactor calls of the {!Range}
    strategy (it is ignored by the other strategies) — these are the
    incompletely specified functions the paper's instrumented [verify_fsm]
    intercepts besides the frontier minimizations. *)

val image_monolithic : Symbolic.t -> Bdd.t -> Bdd.t
val image_partitioned : Symbolic.t -> Bdd.t -> Bdd.t

val image_by_range :
  ?on_constrain:(Minimize.Ispec.t -> unit) -> Symbolic.t -> Bdd.t -> Bdd.t
(** [on_constrain] sees each [[δ_j; S]] vector-cofactor instance (one per
    next-state function per call), before the range recursion. *)

val preimage : Symbolic.t -> Bdd.t -> Bdd.t
(** Predecessors of the given state set: [∃x',i. T(x,i,x')·S(x')]. *)
