(** Image and preimage computation.

    Four implementations are provided:
    - {!image_monolithic}: [∃x,i. T(x,i,x')·S(x)] against the (memoized)
      monolithic transition relation;
    - {!image_partitioned}: conjoin-and-quantify over the per-latch
      conjuncts with each variable quantified at its last occurrence —
      the machine's precomputed {!Qsched} schedule at cluster bound 1;
    - {!image_clustered}: the same walk over IWLS95-style clusters merged
      under a node bound and greedily ordered for early quantification;
    - {!image_by_range}: Coudert–Madre output splitting over the
      next-state functions constrained by the state set — the technique
      (footnote 1 of the paper) whose correctness rests on the special
      property of [constrain].

    All four return the {e same} successor set (images are exact under
    any schedule), over {e current}-state variables. *)

type strategy = Monolithic | Partitioned | Clustered | Range

type par = Minimize.Par.t
(** Parallel execution context: an [Exec.Pool] plus the shared node
    store ({!Bdd.Shared.store}) the machine's manager is a view of.
    With a context, the scheduled conjoin-and-quantify walk runs as a
    pairwise merge tree whose [and_exists] merges are dispatched onto
    pool workers (each on a checked-out view of the store).  The merge
    tree quantifies each variable only once no conjunct outside the
    merged subtree mentions it, so the computed image is the {e same
    canonical edge} the sequential walk produces — parallelism never
    changes results, only wall time.  Worker views carry no budget;
    combine budgets with sequential images. *)

val par : pool:Exec.Pool.t -> store:Bdd.Shared.store -> par

val par_for : ?pool:Exec.Pool.t -> Symbolic.t -> par option
(** [par_for ?pool sym] is [Some] context iff [pool] is given {e and}
    the machine's manager is a shared-store view — the convenient guard
    for CLI [-j] plumbing. *)

val strategy_name : strategy -> string
(** ["monolithic"], ["partitioned"], ["clustered"] or ["range"] (CLI and
    trace labels). *)

val strategy_of_name : string -> strategy option
(** Inverse of {!strategy_name} (CLI parsing). *)

val image :
  ?strategy:strategy ->
  ?cluster_bound:int ->
  ?on_constrain:(Minimize.Ispec.t -> unit) ->
  ?par:par ->
  Symbolic.t ->
  Bdd.t ->
  Bdd.t
(** Successors of the given state set (default {!Partitioned}).
    [cluster_bound] only affects {!Clustered} (default
    {!Qsched.default_cluster_bound}).  [on_constrain] observes the
    generalized-cofactor calls of the {!Range} strategy (it is ignored by
    the other strategies) — these are the incompletely specified
    functions the paper's instrumented [verify_fsm] intercepts besides
    the frontier minimizations.  [par] parallelizes the
    {!Partitioned}/{!Clustered} walks over its pool (see {!type-par});
    it is ignored by the other strategies. *)

val image_monolithic : Symbolic.t -> Bdd.t -> Bdd.t
val image_partitioned : Symbolic.t -> Bdd.t -> Bdd.t

val image_clustered : ?cluster_bound:int -> Symbolic.t -> Bdd.t -> Bdd.t
(** Walk the machine's quantification schedule (computing it on first
    use), conjoining each cluster with the fused [and_exists] kernel. *)

val image_by_range :
  ?on_constrain:(Minimize.Ispec.t -> unit) -> Symbolic.t -> Bdd.t -> Bdd.t
(** [on_constrain] sees each [[δ_j; S]] vector-cofactor instance (one per
    next-state function per call), before the range recursion. *)

val preimage : Symbolic.t -> Bdd.t -> Bdd.t
(** Predecessors of the given state set: [∃x',i. T(x,i,x')·S(x')]. *)
