type signal = int

type gate =
  | Input of string
  | Const of bool
  | Not of signal
  | And of signal * signal
  | Or of signal * signal
  | Xor of signal * signal
  | Latch of { name : string; init : bool; next : signal }

(* Builder-side gate with a patchable latch next pointer. *)
type bgate =
  | B_fixed of gate
  | B_latch of { name : string; init : bool; mutable next : signal option }

type builder = {
  bname : string;
  mutable bgates : bgate array;
  mutable count : int;
  mutable bouts : (string * signal) list;
  mutable anon : int;
}

type t = {
  name : string;
  gates : gate array;
  outs : (string * signal) list;
  ins : (string * signal) list;
  lats : (string * signal) list;
}

let create name =
  { bname = name; bgates = Array.make 64 (B_fixed (Const false)); count = 0;
    bouts = []; anon = 0 }

let push b g =
  if b.count = Array.length b.bgates then begin
    let bigger = Array.make (2 * b.count) (B_fixed (Const false)) in
    Array.blit b.bgates 0 bigger 0 b.count;
    b.bgates <- bigger
  end;
  b.bgates.(b.count) <- g;
  b.count <- b.count + 1;
  b.count - 1

let input b name = push b (B_fixed (Input name))
let const_signal b v = push b (B_fixed (Const v))
let not_gate b a = push b (B_fixed (Not a))
let and_gate b a c = push b (B_fixed (And (a, c)))
let or_gate b a c = push b (B_fixed (Or (a, c)))
let xor_gate b a c = push b (B_fixed (Xor (a, c)))
let nand_gate b a c = not_gate b (and_gate b a c)
let nor_gate b a c = not_gate b (or_gate b a c)
let xnor_gate b a c = not_gate b (xor_gate b a c)

let mux b ~sel ~t1 ~e0 =
  or_gate b (and_gate b sel t1) (and_gate b (not_gate b sel) e0)

let and_list b = function
  | [] -> const_signal b true
  | s :: rest -> List.fold_left (and_gate b) s rest

let or_list b = function
  | [] -> const_signal b false
  | s :: rest -> List.fold_left (or_gate b) s rest

let latch b ?name ~init () =
  let name =
    match name with
    | Some n -> n
    | None ->
      b.anon <- b.anon + 1;
      Printf.sprintf "l%d" b.anon
  in
  let idx = push b (B_latch { name; init; next = None }) in
  let set next =
    match b.bgates.(idx) with
    | B_latch l ->
      if l.next <> None then
        invalid_arg ("Netlist.latch: next already set for " ^ name);
      l.next <- Some next
    | B_fixed _ -> assert false
  in
  (idx, set)

let output b name s = b.bouts <- (name, s) :: b.bouts

let finalize b =
  let gates =
    Array.init b.count (fun i ->
        match b.bgates.(i) with
        | B_fixed g -> g
        | B_latch { name; init; next = Some next } -> Latch { name; init; next }
        | B_latch { name; _ } ->
          invalid_arg ("Netlist.finalize: latch " ^ name ^ " has no next state"))
  in
  let collect f =
    Array.to_list gates
    |> List.mapi (fun i g -> (i, g))
    |> List.filter_map (fun (i, g) -> Option.map (fun n -> (n, i)) (f g))
  in
  let ins = collect (function Input n -> Some n | _ -> None) in
  let lats = collect (function Latch { name; _ } -> Some name | _ -> None) in
  let dup l =
    let sorted = List.sort compare (List.map fst l) in
    let rec find = function
      | a :: (b :: _ as rest) -> if a = b then Some a else find rest
      | [ _ ] | [] -> None
    in
    find sorted
  in
  (match dup ins with
   | Some n -> invalid_arg ("Netlist.finalize: duplicate input " ^ n)
   | None -> ());
  (match dup lats with
   | Some n -> invalid_arg ("Netlist.finalize: duplicate latch " ^ n)
   | None -> ());
  (match dup b.bouts with
   | Some n -> invalid_arg ("Netlist.finalize: duplicate output " ^ n)
   | None -> ());
  { name = b.bname; gates; outs = List.rev b.bouts; ins; lats }

(* ----- word helpers ----- *)

let word_const b ~width v =
  Array.init width (fun i -> const_signal b ((v lsr i) land 1 = 1))

let word_not b w = Array.map (not_gate b) w

let word_map2 name op b x y =
  if Array.length x <> Array.length y then
    invalid_arg ("Netlist." ^ name ^ ": width mismatch");
  Array.init (Array.length x) (fun i -> op b x.(i) y.(i))

let word_and b = word_map2 "word_and" and_gate b
let word_or b = word_map2 "word_or" or_gate b
let word_xor b = word_map2 "word_xor" xor_gate b

let full_adder b a c cin =
  let s1 = xor_gate b a c in
  let sum = xor_gate b s1 cin in
  let carry = or_gate b (and_gate b a c) (and_gate b s1 cin) in
  (sum, carry)

let word_add b ?carry_in x y =
  if Array.length x <> Array.length y then
    invalid_arg "Netlist.word_add: width mismatch";
  let cin = match carry_in with Some s -> s | None -> const_signal b false in
  let carry = ref cin in
  let sum =
    Array.init (Array.length x) (fun i ->
        let s, c = full_adder b x.(i) y.(i) !carry in
        carry := c;
        s)
  in
  (sum, !carry)

let word_inc b x =
  word_add b ~carry_in:(const_signal b true) x
    (word_const b ~width:(Array.length x) 0)

let word_eq b x y =
  and_list b (Array.to_list (word_map2 "word_eq" xnor_gate b x y))

let word_lt b x y =
  (* x < y unsigned: borrow out of x - y *)
  if Array.length x <> Array.length y then
    invalid_arg "Netlist.word_lt: width mismatch";
  let lt = ref (const_signal b false) in
  Array.iteri
    (fun i xi ->
       let yi = y.(i) in
       (* lt' = (xi < yi) or (xi = yi and lt) *)
       let less = and_gate b (not_gate b xi) yi in
       let eq = xnor_gate b xi yi in
       lt := or_gate b less (and_gate b eq !lt))
    x;
  !lt

let word_mux b ~sel ~t1 ~e0 =
  word_map2 "word_mux" (fun b a c -> mux b ~sel ~t1:a ~e0:c) b t1 e0

let word_latch b ?name ~width ~init () =
  let base = match name with Some n -> n | None -> "r" in
  let cells =
    Array.init width (fun i ->
        latch b
          ~name:(Printf.sprintf "%s[%d]" base i)
          ~init:((init lsr i) land 1 = 1)
          ())
  in
  let q = Array.map fst cells in
  let set next =
    if Array.length next <> width then
      invalid_arg "Netlist.word_latch: width mismatch";
    Array.iteri (fun i (_, set_cell) -> set_cell next.(i)) cells
  in
  (q, set)

(* ----- inspection ----- *)

let name t = t.name
let gates t = t.gates
let signal_index s = s

let signal_of_index t i =
  if i < 0 || i >= Array.length t.gates then
    invalid_arg "Netlist.signal_of_index";
  i

let inputs t = t.ins
let latches t = t.lats
let outputs t = t.outs
let gate_of t s = t.gates.(s)
let num_gates t = Array.length t.gates
let num_latches t = List.length t.lats
let num_inputs t = List.length t.ins

let stats t =
  Printf.sprintf "%s: %d gates, %d inputs, %d latches, %d outputs" t.name
    (num_gates t) (num_inputs t) (num_latches t) (List.length t.outs)

(* ----- simulation ----- *)

type sim_state = bool array (* indexed like gates; meaningful at latches *)

let sim_initial t =
  Array.map (function Latch { init; _ } -> init | _ -> false) t.gates

let eval_gates t st in_env =
  let values = Array.make (Array.length t.gates) false in
  Array.iteri
    (fun i g ->
       values.(i) <-
         (match g with
          | Input n -> in_env n
          | Const v -> v
          | Not a -> not values.(a)
          | And (a, b) -> values.(a) && values.(b)
          | Or (a, b) -> values.(a) || values.(b)
          | Xor (a, b) -> values.(a) <> values.(b)
          | Latch _ -> st.(i)))
    t.gates;
  values

let sim_latch_values t st = List.map (fun (n, s) -> (n, st.(s))) t.lats

let sim_step t st in_env =
  let values = eval_gates t st in_env in
  let outs = List.map (fun (n, s) -> (n, values.(s))) t.outs in
  let st' =
    Array.mapi
      (fun i g ->
         match g with Latch { next; _ } -> values.(next) | _ -> st.(i))
      t.gates
  in
  (outs, st')
