(** Reader and writer for a BLIF subset (Berkeley Logic Interchange
    Format) — the exchange format the paper's benchmark circuits
    (ISCAS'89 / MCNC) are customarily distributed in.

    Supported constructs: [.model], [.inputs], [.outputs], [.names] with
    ON-set single-output covers, [.latch] (with optional type/clock and
    initial value), comments, line continuations, [.end].  Logic covers
    are decomposed into the two-input gates of {!Netlist}. *)

val parse : string -> (Netlist.t, string) result
(** Parse BLIF text. *)

val parse_exn : string -> Netlist.t
(** @raise Invalid_argument on malformed input. *)

val parse_file : string -> (Netlist.t, string) result

val print : Netlist.t -> string
(** Render as BLIF ([.names] per gate). *)

val write_file : string -> Netlist.t -> unit
