type shared = {
  man : Bdd.man;
  builder : Netlist.builder;
  var_signal : int -> Netlist.signal;
  (* node id -> signal computing the node's REGULAR function *)
  memo : (int, Netlist.signal) Hashtbl.t;
  (* complemented signals already built, keyed by node id *)
  compl_memo : (int, Netlist.signal) Hashtbl.t;
}

let make_shared man builder ~var_signal =
  {
    man;
    builder;
    var_signal;
    memo = Hashtbl.create 64;
    compl_memo = Hashtbl.create 64;
  }

let is_complemented e = Bdd.uid e land 1 = 1

(* Synthesize the regular (uncomplemented) function of [e]'s node. *)
let rec node_signal ctx e =
  let reg = if is_complemented e then Bdd.compl e else e in
  if Bdd.is_one reg then Netlist.const_signal ctx.builder true
  else
    let id = Bdd.node_id reg in
    match Hashtbl.find_opt ctx.memo id with
    | Some s -> s
    | None ->
      let v = Bdd.topvar reg in
      let t1 = shared_signal ctx (Bdd.hi ctx.man reg) in
      let e0 = shared_signal ctx (Bdd.lo ctx.man reg) in
      let s = Netlist.mux ctx.builder ~sel:(ctx.var_signal v) ~t1 ~e0 in
      Hashtbl.add ctx.memo id s;
      s

and shared_signal ctx e =
  let reg_signal = node_signal ctx e in
  if not (is_complemented e) then reg_signal
  else
    let id = Bdd.node_id e in
    match Hashtbl.find_opt ctx.compl_memo id with
    | Some s -> s
    | None ->
      let s = Netlist.not_gate ctx.builder reg_signal in
      Hashtbl.add ctx.compl_memo id s;
      s

let signal_of_bdd man builder ~var_signal e =
  shared_signal (make_shared man builder ~var_signal) e

let netlist_of_symbolic ?name (sym : Symbolic.t) =
  let nl = sym.netlist in
  let name =
    match name with Some n -> n | None -> Netlist.name nl ^ ".synth"
  in
  let b = Netlist.create name in
  (* Primary inputs, keeping names. *)
  let input_signals =
    List.map (fun (n, _) -> (n, Netlist.input b n)) (Netlist.inputs nl)
  in
  (* Latches, keeping names and initial values. *)
  let latches =
    List.map
      (fun (n, s) ->
         match Netlist.gate_of nl s with
         | Netlist.Latch { init; _ } ->
           let q, set = Netlist.latch b ~name:n ~init () in
           (q, set)
         | _ -> assert false)
      (Netlist.latches nl)
  in
  let latch_q = Array.of_list (List.map fst latches) in
  let var_signal v =
    (* state variable? *)
    let rec find_state j =
      if j >= Array.length sym.state_vars then None
      else if sym.state_vars.(j) = v then Some latch_q.(j)
      else find_state (j + 1)
    in
    match find_state 0 with
    | Some s -> s
    | None -> (
        match List.find_opt (fun (_, iv) -> iv = v) sym.input_vars with
        | Some (n, _) -> List.assoc n input_signals
        | None ->
          invalid_arg
            (Printf.sprintf
               "Synth.netlist_of_symbolic: function depends on variable %d \
                which is neither a current-state variable nor an input"
               v))
  in
  let ctx = make_shared sym.man b ~var_signal in
  List.iteri
    (fun j (_, set) -> set (shared_signal ctx sym.next_fns.(j)))
    latches;
  List.iter
    (fun (n, g) -> Netlist.output b n (shared_signal ctx g))
    sym.output_fns;
  Netlist.finalize b

let default_minimizer man (i : Minimize.Ispec.t) =
  Minimize.Sibling.run_clamped man
    (Minimize.Sibling.config_of_heuristic Minimize.Sibling.Osm_bt)
    i

let resynthesize ?name ?(minimize = default_minimizer) man nl =
  let sym = Symbolic.of_netlist man nl in
  let reached, _ = Reach.reachable sym in
  let sym' = Symbolic.restrict_to_care_states sym ~care:reached ~minimize in
  let name = match name with Some n -> n | None -> Netlist.name nl ^ ".opt" in
  (netlist_of_symbolic ~name sym', reached)
