type stats = { states : int; transitions : int; depth : int }

let key_of_state bits =
  (* latch valuations fit a string key; machines here are small *)
  String.init (Array.length bits) (fun i -> if bits.(i) then '1' else '0')

let latch_bits nl st =
  Array.of_list (List.map snd (Netlist.sim_latch_values nl st))

let input_envs nl =
  let inputs = List.map fst (Netlist.inputs nl) in
  let n = List.length inputs in
  if n > 20 then failwith "Explicit: too many inputs";
  List.init (1 lsl n) (fun m ->
      let table = Hashtbl.create 8 in
      List.iteri
        (fun i name -> Hashtbl.replace table name ((m lsr i) land 1 = 1))
        inputs;
      fun name -> Hashtbl.find table name)

let bfs ?(max_states = 1 lsl 20) nl visit =
  let envs = input_envs nl in
  let seen = Hashtbl.create 1024 in
  let transitions = ref 0 in
  let depth = ref 0 in
  let states = ref [] in
  let frontier = ref [ Netlist.sim_initial nl ] in
  let add st =
    let bits = latch_bits nl st in
    let key = key_of_state bits in
    if Hashtbl.mem seen key then false
    else begin
      if Hashtbl.length seen >= max_states then
        failwith "Explicit: state limit exceeded";
      Hashtbl.add seen key ();
      states := bits :: !states;
      visit st bits;
      true
    end
  in
  ignore (add (Netlist.sim_initial nl));
  let rec loop d =
    match !frontier with
    | [] -> d
    | sts ->
      frontier := [];
      List.iter
        (fun st ->
           List.iter
             (fun env ->
                incr transitions;
                let _, st' = Netlist.sim_step nl st env in
                if add st' then frontier := st' :: !frontier)
             envs)
        sts;
      if !frontier = [] then d else loop (d + 1)
  in
  depth := loop 0;
  ( List.rev !states,
    { states = Hashtbl.length seen; transitions = !transitions; depth = !depth } )

let reachable_states ?max_states nl = bfs ?max_states nl (fun _ _ -> ())

let reachable ?max_states nl = snd (reachable_states ?max_states nl)

let equivalent ?max_states nl1 nl2 =
  let prod = Equiv.product nl1 nl2 in
  let bad = ref None in
  let envs = input_envs prod in
  let n1 = Netlist.num_latches nl1 in
  let check st bits =
    if !bad = None then
      List.iter
        (fun env ->
           let outs, _ = Netlist.sim_step prod st env in
           if List.assoc "neq" outs && !bad = None then
             bad :=
               Some
                 ( Array.sub bits 0 n1,
                   Array.sub bits n1 (Array.length bits - n1) ))
        envs
  in
  let _ = bfs ?max_states prod check in
  match !bad with None -> Ok true | Some pair -> Error pair
