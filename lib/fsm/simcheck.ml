type counterexample = {
  run : int;
  step : int;
  inputs : (string * bool) list list;
  output : string;
}

let common_interface nl1 nl2 =
  let names l = List.sort compare (List.map fst l) in
  if names (Netlist.inputs nl1) <> names (Netlist.inputs nl2) then
    invalid_arg "Simcheck: input sets differ";
  let common =
    List.filter
      (fun (n, _) -> List.mem_assoc n (Netlist.outputs nl2))
      (Netlist.outputs nl1)
  in
  if common = [] then invalid_arg "Simcheck: no common outputs";
  (names (Netlist.inputs nl1), List.map fst common)

let diff_outputs common outs1 outs2 =
  List.find_opt
    (fun n -> List.assoc n outs1 <> List.assoc n outs2)
    common

let replay nl1 nl2 stimulus =
  let _, common = common_interface nl1 nl2 in
  let rec go step st1 st2 = function
    | [] -> None
    | assignment :: rest ->
      let env name =
        match List.assoc_opt name assignment with
        | Some b -> b
        | None -> false
      in
      let outs1, st1' = Netlist.sim_step nl1 st1 env in
      let outs2, st2' = Netlist.sim_step nl2 st2 env in
      (match diff_outputs common outs1 outs2 with
       | Some output -> Some (output, step)
       | None -> go (step + 1) st1' st2' rest)
  in
  go 0 (Netlist.sim_initial nl1) (Netlist.sim_initial nl2) stimulus

let compare_machines ?(runs = 32) ?(steps = 64) ?(seed = 0) nl1 nl2 =
  let input_names, common = common_interface nl1 nl2 in
  let rng = Random.State.make [| seed; runs; steps |] in
  let result = ref (Ok ()) in
  (try
     for run = 0 to runs - 1 do
       let st1 = ref (Netlist.sim_initial nl1) in
       let st2 = ref (Netlist.sim_initial nl2) in
       let history = ref [] in
       for step = 0 to steps - 1 do
         let assignment =
           List.map (fun n -> (n, Random.State.bool rng)) input_names
         in
         history := assignment :: !history;
         let env name = List.assoc name assignment in
         let outs1, st1' = Netlist.sim_step nl1 !st1 env in
         let outs2, st2' = Netlist.sim_step nl2 !st2 env in
         (match diff_outputs common outs1 outs2 with
          | Some output ->
            result :=
              Error { run; step; inputs = List.rev !history; output };
            raise Exit
          | None -> ());
         st1 := st1';
         st2 := st2'
       done
     done
   with Exit -> ());
  !result
