(* IWLS95-style quantification scheduling (Ranjan, Aziz, Brayton,
   Plessier, Pixley: "Efficient BDD algorithms for FSM synthesis and
   verification").  The per-latch conjuncts of the transition relation
   are merged into clusters under a node-count bound, the clusters are
   ordered greedily by an early-quantification benefit metric, and each
   quantifiable variable is assigned to the cluster of its last
   occurrence — so the conjoin-and-quantify image walk abstracts every
   variable at the earliest exact point.  The schedule depends only on
   the machine, never on the state set, so it is computed once and
   memoized in [Symbolic.t]. *)

type cluster = {
  rel : Bdd.t;
  support : int list;
  quantify : int list;
}

type t = {
  clusters : cluster array;
  pre_quantify : int list;
  cluster_bound : int;
  vars_early : int;
}

let default_cluster_bound = 2000

(* Fixed-width bitsets over variable levels: support membership tests in
   the ordering loop are O(1) instead of [List.mem]. *)
let bits_create words = Array.make (max 1 words) 0
let bits_set b v = b.(v / 63) <- b.(v / 63) lor (1 lsl (v mod 63))
let bits_mem b v = b.(v / 63) land (1 lsl (v mod 63)) <> 0

let build man ~parts ~quantified ~cluster_bound =
  Obs.Trace.with_span "fsm.qsched" @@ fun sp ->
  let quantified = List.sort_uniq compare quantified in
  (* 1. Merge conjuncts in declaration order while the running product
     stays under the node bound; a bound of [<= 1] keeps them apart
     (that is exactly the partitioned strategy). *)
  let rels =
    if cluster_bound <= 1 then Array.copy parts
    else begin
      let closed = ref [] in
      let cur = ref None in
      Array.iter
        (fun part ->
           match !cur with
           | None -> cur := Some part
           | Some c ->
             let cand = Bdd.dand man c part in
             if Bdd.size man cand <= cluster_bound then cur := Some cand
             else begin
               closed := c :: !closed;
               cur := Some part
             end)
        parts;
      (match !cur with Some c -> closed := c :: !closed | None -> ());
      Array.of_list (List.rev !closed)
    end
  in
  let n = Array.length rels in
  let supports = Array.map (Bdd.support man) rels in
  let width =
    let m = List.fold_left max (-1) quantified in
    1 + Array.fold_left (fun m s -> List.fold_left max m s) m supports
  in
  let words = (width + 62) / 63 in
  let bits_of l =
    let b = bits_create words in
    List.iter (bits_set b) l;
    b
  in
  let qbits = bits_of quantified in
  let sup_bits = Array.map bits_of supports in
  (* 2. Greedy ordering: pick next the cluster whose conjunction lets the
     most quantifiable variables die (they occur in no other remaining
     cluster) while introducing the fewest variables new to the product;
     ties break on the lowest original index, so the schedule is
     deterministic for a given machine. *)
  let selected = Array.make n false in
  let product = Array.copy qbits in
  let order = Array.make n 0 in
  for k = 0 to n - 1 do
    let best = ref (-1) and best_score = ref min_int in
    for i = 0 to n - 1 do
      if not selected.(i) then begin
        let dead = ref 0 and fresh = ref 0 in
        List.iter
          (fun v ->
             if bits_mem qbits v then begin
               let elsewhere = ref false in
               for j = 0 to n - 1 do
                 if j <> i && not selected.(j) && bits_mem sup_bits.(j) v then
                   elsewhere := true
               done;
               if not !elsewhere then incr dead
             end
             else if not (bits_mem product v) then incr fresh)
          supports.(i);
        let score = (2 * !dead) - !fresh in
        if score > !best_score then begin
          best_score := score;
          best := i
        end
      end
    done;
    selected.(!best) <- true;
    List.iter (bits_set product) supports.(!best);
    order.(k) <- !best
  done;
  (* 3. Assign every quantifiable variable to the position of its last
     occurrence; variables no cluster mentions are abstracted from the
     state set before the walk even starts. *)
  let occurs = bits_create words in
  Array.iter
    (fun s -> List.iter (fun v -> if bits_mem qbits v then bits_set occurs v) s)
    supports;
  let pre_quantify = List.filter (fun v -> not (bits_mem occurs v)) quantified in
  let later = bits_create words in
  let quantify_at = Array.make n [] in
  for k = n - 1 downto 0 do
    let s = supports.(order.(k)) in
    quantify_at.(k) <-
      List.filter (fun v -> bits_mem qbits v && not (bits_mem later v)) s;
    List.iter (bits_set later) s
  done;
  let vars_early =
    let total = ref (List.length pre_quantify) in
    for k = 0 to n - 2 do
      total := !total + List.length quantify_at.(k)
    done;
    !total
  in
  let clusters =
    Array.init n (fun k ->
        let i = order.(k) in
        { rel = rels.(i); support = supports.(i); quantify = quantify_at.(k) })
  in
  Obs.Trace.add sp "clusters" (Obs.Trace.Int n);
  Obs.Trace.add sp "cluster_bound" (Obs.Trace.Int cluster_bound);
  Obs.Trace.add sp "vars_early" (Obs.Trace.Int vars_early);
  Obs.Probe.observe "qsched.clusters" n;
  Obs.Probe.observe "qsched.vars_early" vars_early;
  { clusters; pre_quantify; cluster_bound; vars_early }
