(** Breadth-first symbolic reachability with frontier minimization.

    This is the application of §1 and §4: at each iteration the frontier
    [U] may be replaced by any set [S] with [U ≤ S ≤ U + R] — an EBM
    instance [[U; U + ¬R]] — before computing its image.  The instances
    are exposed through [on_instance], which is how the experiment harness
    intercepts them (the analogue of the paper's instrumented [constrain]
    calls inside [verify_fsm]). *)

type fixpoint =
  | Complete  (** the frontier emptied: the returned set is exact *)
  | Partial of { frontier : Bdd.t; reason : Bdd.Budget.reason }
      (** an installed [Bdd.Budget] was exhausted: the returned set is a
          sound under-approximation of the reachable states, and
          [frontier] is the still-unexplored frontier — pass both back
          through [?resume] to continue *)

type stats = {
  iterations : int;
  reached_states : float;  (** satisfying assignments of the final [R] *)
  peak_frontier_nodes : int;
  (** 0 unless node statistics were collected — pass [~node_stats:true],
      enable tracing, or set the [bddmin.reach] log source to debug *)
  peak_reached_nodes : int;  (** likewise *)
  minimization_calls : int;
  fixpoint : fixpoint;
}

type minimizer = Bdd.man -> Minimize.Ispec.t -> Bdd.t

val constrain_minimizer : minimizer
(** The default used by the paper's application: [constrain f c]. *)

val no_minimizer : minimizer
(** Uses the frontier unchanged ([f_orig]). *)

val reachable :
  ?strategy:Image.strategy ->
  ?cluster_bound:int ->
  ?par:Image.par ->
  ?node_stats:bool ->
  ?minimize:minimizer ->
  ?max_iterations:int ->
  ?on_instance:(iteration:int -> Minimize.Ispec.t -> unit) ->
  ?on_image_constrain:(iteration:int -> Minimize.Ispec.t -> unit) ->
  ?resume:Bdd.t * Bdd.t ->
  Symbolic.t ->
  Bdd.t * stats
(** Fixed-point reachability from the initial state.  The returned set is
    exact when [stats.fixpoint = Complete] (independent of the minimizer
    — any cover contains the frontier and only adds already-reached
    states).  [cluster_bound] tunes the {!Image.Clustered} strategy.
    [par] dispatches each iteration's image merges onto a worker pool
    (see {!Image.type-par}) — results are bit-identical to a sequential
    run; it requires the machine's manager to be a shared-store view.
    [node_stats] (default [false]) opts in to the per-iteration
    frontier/reached node counts behind the peak statistics — a full
    traversal of both sets per iteration, otherwise skipped unless
    tracing or debug logging already wants them.  [on_image_constrain]
    observes the vector-cofactor instances [[δ_j; S]] that a
    constrain-based image computation hands to [constrain] (emitted for
    every strategy, so interception does not force the exponential-prone
    {!Image.Range} recursion).

    When the manager has a [Bdd.Budget] installed and it runs out, the
    fixpoint stops at the last completed iteration and returns a
    {!Partial} fixpoint instead of raising; [resume] (the [reached] set
    and [frontier] of a previous partial run) continues the traversal
    from there — [stats.iterations] then counts only the resumed
    segment's iterations.
    @raise Failure if [max_iterations] (default unlimited) is exceeded. *)
