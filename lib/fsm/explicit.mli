(** Explicit-state enumeration by concrete simulation — an independent
    oracle for the symbolic engine.

    Performs breadth-first search over concrete latch valuations, driving
    the {!Netlist} simulator with every input combination.  Exponential in
    inputs and states; intended for cross-validation on small machines and
    for counterexample replay. *)

type stats = {
  states : int;  (** number of reachable states *)
  transitions : int;  (** explored (state, input) edges *)
  depth : int;  (** BFS depth at the fixed point *)
}

val reachable : ?max_states:int -> Netlist.t -> stats
(** BFS from the initial state.  @raise Failure when [max_states]
    (default 1 lsl 20) is exceeded or the machine has more than 20
    inputs. *)

val reachable_states : ?max_states:int -> Netlist.t -> bool array list * stats
(** Also return the reachable latch valuations (in latch order). *)

val equivalent :
  ?max_states:int -> Netlist.t -> Netlist.t -> (bool, bool array * bool array) result
(** Explicit product-machine equivalence over the shared inputs:
    [Ok true] when no reachable product state distinguishes the machines,
    [Error (s1, s2)] with the distinguishing pair otherwise.  An
    independent oracle for {!Equiv.check}. *)
