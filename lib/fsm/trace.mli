(** Onion-ring trace generation: concrete input sequences leading from
    reset into a given set of states — the machinery behind
    {!Equiv.counterexample_trace} and {!Invariant.check}. *)

val to_states :
  ?max_iterations:int ->
  ?final_condition:Bdd.t ->
  Bdd.man ->
  Symbolic.t ->
  bad:Bdd.t ->
  (string * bool) list list option
(** [to_states man sym ~bad] finds a shortest-in-rings input trace
    driving the machine from reset into [bad] (a predicate over
    current-state variables), or [None] when [bad] is unreachable.

    The trace has one primary-input assignment per cycle.  Without
    [final_condition] the trace {e ends in} a bad state: it has [k]
    entries where the state after applying all [k] inputs is bad (an
    empty list when the initial state is already bad).  With
    [final_condition] — a predicate over state and input variables — one
    more assignment is appended that satisfies it in the reached bad
    state (e.g. an input exposing an output difference). *)
