(** Random-simulation equivalence refutation.

    Drives two machines in lock-step with pseudo-random inputs and
    compares their common outputs — the cheap pre-check run before a full
    symbolic proof.  Can only refute equivalence, never establish it. *)

type counterexample = {
  run : int;  (** which random run *)
  step : int;  (** clock cycle of the first divergence *)
  inputs : (string * bool) list list;  (** stimulus up to the divergence *)
  output : string;  (** a differing output *)
}

val compare_machines :
  ?runs:int ->
  ?steps:int ->
  ?seed:int ->
  Netlist.t ->
  Netlist.t ->
  (unit, counterexample) result
(** [Ok ()] when no divergence was observed over [runs] (default 32)
    random stimuli of [steps] (default 64) cycles each.  The machines
    must share input names and have at least one common output.
    @raise Invalid_argument on mismatched interfaces. *)

val replay :
  Netlist.t -> Netlist.t -> (string * bool) list list -> (string * int) option
(** Replay a stimulus (one input assignment per cycle) on both machines:
    [Some (output, step)] identifies the first divergence, [None] means
    the machines agreed throughout — so a {!counterexample}'s [inputs]
    always replays to [Some _]. *)
