type t = {
  map : Bdd.Add.t;
  add_man : Bdd.Add.man;
  diameter : int;
  unreachable : int;
}

let unreachable_sentinel = max_int / 2

let compute ?max_iterations (sym : Symbolic.t) =
  let man = sym.man in
  let add_man = Bdd.Add.new_man () in
  let depth_map = ref (Bdd.Add.const add_man unreachable_sentinel) in
  let diameter = ref 0 in
  let record ~iteration frontier =
    (* first-visit: min with (frontier ? iteration : ∞) *)
    let layer =
      Bdd.Add.of_bdd add_man man frontier ~high:iteration
        ~low:unreachable_sentinel
    in
    depth_map := Bdd.Add.min2 add_man !depth_map layer;
    diameter := max !diameter iteration
  in
  (* Re-run the BFS, recording each frontier. *)
  let rec go iteration reached frontier =
    if Bdd.is_zero frontier then ()
    else begin
      (match max_iterations with
       | Some m when iteration >= m ->
         failwith "Depth.compute: max_iterations exceeded"
       | _ -> ());
      record ~iteration frontier;
      let successors = Image.image sym frontier in
      let frontier' = Bdd.diff man successors reached in
      let reached' = Bdd.dor man reached successors in
      go (iteration + 1) reached' frontier'
    end
  in
  go 0 sym.init sym.init;
  {
    map = !depth_map;
    add_man;
    diameter = !diameter;
    unreachable = unreachable_sentinel;
  }

let depth_of_state t bits (sym : Symbolic.t) =
  if Array.length bits <> Array.length sym.state_vars then
    invalid_arg "Depth.depth_of_state";
  let assign v =
    let rec find j =
      if j >= Array.length sym.state_vars then false
      else if sym.state_vars.(j) = v then bits.(j)
      else find (j + 1)
    in
    find 0
  in
  let d = Bdd.Add.eval t.map assign in
  if d >= t.unreachable then None else Some d

let ring t (sym : Symbolic.t) k =
  Bdd.Add.to_bdd t.add_man t.map ~pred:(fun v -> v = k) sym.man
