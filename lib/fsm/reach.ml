let src = Logs.Src.create "bddmin.reach" ~doc:"symbolic reachability"

module Log = (val Logs.src_log src)

type fixpoint =
  | Complete
  | Partial of { frontier : Bdd.t; reason : Bdd.Budget.reason }

type stats = {
  iterations : int;
  reached_states : float;
  peak_frontier_nodes : int;
  peak_reached_nodes : int;
  minimization_calls : int;
  fixpoint : fixpoint;
}

type minimizer = Bdd.man -> Minimize.Ispec.t -> Bdd.t

let constrain_minimizer man (s : Minimize.Ispec.t) =
  Bdd.constrain man s.Minimize.Ispec.f s.Minimize.Ispec.c

let no_minimizer _man (s : Minimize.Ispec.t) = s.Minimize.Ispec.f

let reachable ?strategy ?cluster_bound ?par ?(node_stats = false)
    ?(minimize = constrain_minimizer)
    ?(max_iterations = max_int) ?(on_instance = fun ~iteration:_ _ -> ())
    ?(on_image_constrain = fun ~iteration:_ _ -> ()) ?resume
    (sym : Symbolic.t) =
  let man = sym.man in
  Obs.Trace.with_span "fsm.reach" @@ fun reach_sp ->
  let calls = ref 0 in
  let peak_frontier = ref 0 in
  let peak_reached = ref 0 in
  let debug_on =
    match Logs.Src.level src with Some Logs.Debug -> true | _ -> false
  in
  let rec go iteration reached frontier =
    if Bdd.is_zero frontier then (reached, iteration, Complete)
    else if iteration >= max_iterations then
      failwith "Reach.reachable: max_iterations exceeded"
    else begin
      (* Node counts cost a full traversal of both sets every iteration;
         only pay for them when someone is looking (opt-in peak stats,
         tracing, or debug logging). *)
      let want_sizes = node_stats || debug_on || Obs.Trace.enabled () in
      let frontier_nodes = if want_sizes then Bdd.size man frontier else 0 in
      let reached_nodes = if want_sizes then Bdd.size man reached else 0 in
      peak_frontier := max !peak_frontier frontier_nodes;
      peak_reached := max !peak_reached reached_nodes;
      Log.debug (fun m ->
          m "iteration %d: |U| = %d nodes, |R| = %d nodes" iteration
            frontier_nodes reached_nodes);
      let step () =
        Obs.Trace.with_span "reach.iteration"
          ~attrs:
            [
              ("iteration", Obs.Trace.Int iteration);
              ("frontier_nodes", Obs.Trace.Int frontier_nodes);
              ("reached_nodes", Obs.Trace.Int reached_nodes);
            ]
        @@ fun sp ->
        (* The EBM instance of the paper: f = U, c = U + ¬R. *)
        let care = Bdd.dor man frontier (Bdd.compl reached) in
        let inst = Minimize.Ispec.make ~f:frontier ~c:care in
        on_instance ~iteration inst;
        incr calls;
        let chosen = minimize man inst in
        (* The vector-cofactor instances [δ_j; S] that a constrain-based
           image computation hands to [constrain] (footnote 1 of the
           paper); emitted here so interception is independent of how the
           image is actually computed. *)
        Array.iter
          (fun delta ->
             on_image_constrain ~iteration
               (Minimize.Ispec.make ~f:delta ~c:chosen))
          sym.next_fns;
        let successors = Image.image ?strategy ?cluster_bound ?par sym chosen in
        let frontier' = Bdd.diff man successors reached in
        let reached' = Bdd.dor man reached successors in
        if Obs.Trace.enabled () then begin
          Obs.Trace.add sp "minimized_nodes"
            (Obs.Trace.Int (Bdd.size man chosen));
          Obs.Trace.add sp "new_frontier_nodes"
            (Obs.Trace.Int (Bdd.size man frontier'))
        end;
        (reached', frontier')
      in
      (* Budget exhaustion is caught at the iteration boundary: the
         partially computed iteration is discarded, and the last
         completed (reached, frontier) pair — a sound under-approximation
         plus its unexplored frontier — is returned as an explicit
         [Partial] fixpoint, so callers can resume from it. *)
      match step () with
      | reached', frontier' -> go (iteration + 1) reached' frontier'
      | exception Bdd.Budget_exhausted reason ->
        (reached, iteration, Partial { frontier; reason })
    end
  in
  (* The evolving reached/frontier sets live on un-rooted edges, while
     the machine's memoized relations hold long-lived roots; suspend the
     automatic GC trigger for the fixpoint or every unique-table growth
     would sweep the working set (and the now-persistent quantification
     cache entries with it). *)
  let init_reached, init_frontier =
    match resume with None -> (sym.init, sym.init) | Some (r, u) -> (r, u)
  in
  let reached, iterations, fixpoint =
    Bdd.without_auto_gc man @@ fun () -> go 0 init_reached init_frontier
  in
  Obs.Trace.add reach_sp "iterations" (Obs.Trace.Int iterations);
  Obs.Trace.add reach_sp "peak_frontier_nodes" (Obs.Trace.Int !peak_frontier);
  Obs.Trace.add reach_sp "peak_reached_nodes" (Obs.Trace.Int !peak_reached);
  Obs.Probe.observe "reach.iterations" iterations;
  let stats =
    {
      iterations;
      reached_states =
        Bdd.sat_count man reached ~nvars:(Symbolic.num_state_vars sym);
      peak_frontier_nodes = !peak_frontier;
      peak_reached_nodes = !peak_reached;
      minimization_calls = !calls;
      fixpoint;
    }
  in
  (reached, stats)
