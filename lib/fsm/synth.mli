(** Synthesis of netlists back from BDDs: one 2:1 multiplexer per BDD
    node, with structural sharing (the mapping style of the paper's FPGA
    application [7]).

    Together with {!Symbolic.restrict_to_care_states} this closes the
    loop of the paper's second application: compute the reachable states,
    re-express the next-state and output logic with the unreachable
    states as don't cares, and rebuild a (often smaller) circuit that is
    sequentially equivalent to the original. *)

val signal_of_bdd :
  Bdd.man ->
  Netlist.builder ->
  var_signal:(int -> Netlist.signal) ->
  Bdd.t ->
  Netlist.signal
(** Build gates computing the function of the BDD inside the given
    builder; [var_signal] maps BDD levels to driver signals (the
    manager is needed to expand chain nodes into their per-level
    cofactors).  Nodes shared inside one call are shared structurally;
    pass the same memo across calls with {!make_shared}. *)

type shared
(** A synthesis context sharing gates across several {!shared_signal}
    calls within one builder. *)

val make_shared :
  Bdd.man -> Netlist.builder -> var_signal:(int -> Netlist.signal) -> shared

val shared_signal : shared -> Bdd.t -> Netlist.signal

val netlist_of_symbolic : ?name:string -> Symbolic.t -> Netlist.t
(** Rebuild a gate-level machine from a symbolic one: primary inputs and
    latch names (and initial values) are taken from the underlying
    netlist; the next-state and output functions are synthesized as a
    shared mux network.  The result is sequentially equivalent to the
    symbolic machine. *)

val resynthesize :
  ?name:string ->
  ?minimize:Reach.minimizer ->
  Bdd.man ->
  Netlist.t ->
  Netlist.t * Bdd.t
(** The full don't-care optimization flow: encode, compute the reachable
    set [R], minimize every function against care [R] (default minimizer:
    size-clamped [osm_bt]), synthesize back.  Returns the new netlist and
    [R].  The result is sequentially equivalent to the input (unreachable
    behaviour may differ, which no input sequence can expose). *)
