type ordering = Interleaved | Topological | Inputs_first

type t = {
  man : Bdd.man;
  netlist : Netlist.t;
  state_vars : int array;
  next_vars : int array;
  input_vars : (string * int) list;
  next_fns : Bdd.t array;
  output_fns : (string * Bdd.t) list;
  init : Bdd.t;
  (* memoized derived structures, rooted against GC on first use *)
  mutable rel_parts : Bdd.t array option;
  mutable rel_mono : Bdd.t option;
  mutable qsched : (int * Qsched.t) option;     (* (cluster bound, schedule) *)
}

(* First-visit order of latches in a DFS through the next-state logic:
   latches feeding common cones end up adjacent in the order. *)
let topological_rank nl =
  let lats = Netlist.latches nl in
  let nlat = List.length lats in
  let latch_of_index = Hashtbl.create 16 in
  List.iteri
    (fun j (_, s) -> Hashtbl.add latch_of_index (Netlist.signal_index s) j)
    lats;
  let rank = Array.make nlat (-1) in
  let next_rank = ref 0 in
  let seen = Hashtbl.create 64 in
  let rec visit i =
    if not (Hashtbl.mem seen i) then begin
      Hashtbl.add seen i ();
      match Netlist.gate_of nl (Netlist.signal_of_index nl i) with
      | Netlist.Input _ | Netlist.Const _ -> ()
      | Netlist.Not a -> visit (Netlist.signal_index a)
      | Netlist.And (a, b) | Netlist.Or (a, b) | Netlist.Xor (a, b) ->
        visit (Netlist.signal_index a);
        visit (Netlist.signal_index b)
      | Netlist.Latch _ ->
        let j = Hashtbl.find latch_of_index i in
        if rank.(j) < 0 then begin
          rank.(j) <- !next_rank;
          incr next_rank
        end
    end
  in
  (* Seed the DFS from each latch's next-state cone, in declaration
     order, then from the primary outputs. *)
  List.iter
    (fun (_, s) ->
       match Netlist.gate_of nl s with
       | Netlist.Latch { next; _ } -> visit (Netlist.signal_index next)
       | _ -> assert false)
    lats;
  List.iter (fun (_, s) -> visit (Netlist.signal_index s)) (Netlist.outputs nl);
  (* Unvisited latches (dead state) keep declaration order at the end. *)
  Array.iteri
    (fun j r ->
       if r < 0 then begin
         rank.(j) <- !next_rank;
         incr next_rank
       end)
    rank;
  rank

let latch_rank nl = function
  | Interleaved | Inputs_first ->
    Array.init (List.length (Netlist.latches nl)) Fun.id
  | Topological -> topological_rank nl

let of_netlist ?(ordering = Interleaved) man nl =
  let lats = Netlist.latches nl in
  let nlat = List.length lats in
  let nin = List.length (Netlist.inputs nl) in
  let base = Bdd.nvars man in
  let rank = latch_rank nl ordering in
  let state_base =
    match ordering with Inputs_first -> base + nin | Interleaved | Topological -> base
  in
  let state_vars = Array.init nlat (fun j -> state_base + (2 * rank.(j))) in
  let next_vars = Array.init nlat (fun j -> state_base + (2 * rank.(j)) + 1) in
  let input_base =
    match ordering with
    | Inputs_first -> base
    | Interleaved | Topological -> base + (2 * nlat)
  in
  let input_vars =
    List.mapi (fun k (n, _) -> (n, input_base + k)) (Netlist.inputs nl)
  in
  (* Map each latch gate index to its current-state variable. *)
  let latch_var = Hashtbl.create 16 in
  List.iteri
    (fun j (_, s) -> Hashtbl.add latch_var (Netlist.signal_index s) j)
    lats;
  let gates = Netlist.gates nl in
  let values = Array.make (Array.length gates) (Bdd.zero man) in
  let value s = values.(Netlist.signal_index s) in
  Array.iteri
    (fun i g ->
       values.(i) <-
         (match g with
          | Netlist.Input n -> Bdd.ithvar man (List.assoc n input_vars)
          | Netlist.Const true -> Bdd.one man
          | Netlist.Const false -> Bdd.zero man
          | Netlist.Not a -> Bdd.compl (value a)
          | Netlist.And (a, b) -> Bdd.dand man (value a) (value b)
          | Netlist.Or (a, b) -> Bdd.dor man (value a) (value b)
          | Netlist.Xor (a, b) -> Bdd.dxor man (value a) (value b)
          | Netlist.Latch _ ->
            Bdd.ithvar man state_vars.(Hashtbl.find latch_var i)))
    gates;
  let next_fns =
    Array.of_list
      (List.map
         (fun (_, s) ->
            match Netlist.gate_of nl s with
            | Netlist.Latch { next; _ } -> value next
            | _ -> assert false)
         lats)
  in
  let output_fns =
    List.map (fun (n, s) -> (n, values.(Netlist.signal_index s))) (Netlist.outputs nl)
  in
  let init =
    List.fold_left
      (fun acc (j, (_, s)) ->
         let v = Bdd.ithvar man state_vars.(j) in
         let lit =
           match Netlist.gate_of nl s with
           | Netlist.Latch { init = true; _ } -> v
           | Netlist.Latch { init = false; _ } -> Bdd.compl v
           | _ -> assert false
         in
         Bdd.dand man acc lit)
      (Bdd.one man)
      (List.mapi (fun j l -> (j, l)) lats)
  in
  { man; netlist = nl; state_vars; next_vars; input_vars; next_fns;
    output_fns; init; rel_parts = None; rel_mono = None; qsched = None }

let state_support t = Array.to_list t.state_vars
let input_support t = List.map snd t.input_vars

(* The derived relation structures are machine constants, but image
   computation used to rebuild them on every call.  They are built on
   first use, rooted (auto-GC would otherwise sweep them between
   images), and cached in the record. *)
let partitioned_relation t =
  match t.rel_parts with
  | Some parts -> parts
  | None ->
    let parts =
      Array.mapi
        (fun j delta ->
           Bdd.dxnor t.man (Bdd.ithvar t.man t.next_vars.(j)) delta)
        t.next_fns
    in
    Array.iter (Bdd.ref_ t.man) parts;
    t.rel_parts <- Some parts;
    parts

let transition_relation t =
  match t.rel_mono with
  | Some rel -> rel
  | None ->
    let rel =
      Array.fold_left (Bdd.dand t.man) (Bdd.one t.man)
        (partitioned_relation t)
    in
    Bdd.ref_ t.man rel;
    t.rel_mono <- Some rel;
    rel

let schedule ?(cluster_bound = Qsched.default_cluster_bound) t =
  match t.qsched with
  | Some (bound, sched) when bound = cluster_bound -> sched
  | prev ->
    let sched =
      Qsched.build t.man
        ~parts:(partitioned_relation t)
        ~quantified:(state_support t @ input_support t)
        ~cluster_bound
    in
    Array.iter
      (fun (c : Qsched.cluster) -> Bdd.ref_ t.man c.Qsched.rel)
      sched.Qsched.clusters;
    (match prev with
     | Some (_, old) ->
       Array.iter
         (fun (c : Qsched.cluster) -> Bdd.deref t.man c.Qsched.rel)
         old.Qsched.clusters
     | None -> ());
    t.qsched <- Some (cluster_bound, sched);
    sched

let next_to_current t =
  Array.to_list (Array.mapi (fun j y -> (y, t.state_vars.(j))) t.next_vars)

let current_to_next t =
  Array.to_list (Array.mapi (fun j y -> (t.state_vars.(j), y)) t.next_vars)

let eval_outputs t ~state =
  List.map (fun (n, f) -> (n, Bdd.dand t.man f state)) t.output_fns

let num_state_vars t = Array.length t.state_vars

let restrict_to_care_states ?par t ~care ~minimize =
  let shrink man g = minimize man (Minimize.Ispec.make ~f:g ~c:care) in
  let next_fns, output_fns =
    match par with
    | None ->
      ( Array.map (shrink t.man) t.next_fns,
        List.map (fun (n, g) -> (n, shrink t.man g)) t.output_fns )
    | Some par ->
      (* every function shrinks independently; each task checks out a
         view of the shared store, so the edges land in the same store
         as a sequential run and are the same canonical results *)
      let nexts =
        Minimize.Par.map par shrink (Array.to_list t.next_fns)
      in
      let outs =
        Minimize.Par.map par
          (fun man (n, g) -> (n, shrink man g))
          t.output_fns
      in
      (Array.of_list nexts, outs)
  in
  {
    t with
    next_fns;
    output_fns;
    (* the memoized relations describe the old next-state functions *)
    rel_parts = None;
    rel_mono = None;
    qsched = None;
  }

let shared_node_count t =
  Bdd.shared_size t.man
    (Array.to_list t.next_fns @ List.map snd t.output_fns)

let state_cube_of_ints t bits =
  if Array.length bits <> Array.length t.state_vars then
    invalid_arg "Symbolic.state_cube_of_ints";
  let acc = ref (Bdd.one t.man) in
  Array.iteri
    (fun j b ->
       let v = Bdd.ithvar t.man t.state_vars.(j) in
       acc := Bdd.dand t.man !acc (if b then v else Bdd.compl v))
    bits;
  !acc
