type verdict =
  | Equivalent of Reach.stats
  | Not_equivalent of {
      stats : Reach.stats;
      distinguishing_state : Bdd.Cube.cube;
    }

(* Copy [nl]'s gates into builder [b], resolving inputs through the shared
   [input_of] table and prefixing latch names; returns the signal map. *)
let copy_into b ~prefix ~input_of nl =
  let gates = Netlist.gates nl in
  let map = Array.make (Array.length gates) (Netlist.const_signal b false) in
  let latch_setters = ref [] in
  Array.iteri
    (fun i g ->
       map.(i) <-
         (match g with
          | Netlist.Input n -> input_of n
          | Netlist.Const v -> Netlist.const_signal b v
          | Netlist.Not a -> Netlist.not_gate b map.(Netlist.signal_index a)
          | Netlist.And (x, y) ->
            Netlist.and_gate b map.(Netlist.signal_index x) map.(Netlist.signal_index y)
          | Netlist.Or (x, y) ->
            Netlist.or_gate b map.(Netlist.signal_index x) map.(Netlist.signal_index y)
          | Netlist.Xor (x, y) ->
            Netlist.xor_gate b map.(Netlist.signal_index x) map.(Netlist.signal_index y)
          | Netlist.Latch { name; init; next } ->
            let q, set = Netlist.latch b ~name:(prefix ^ name) ~init () in
            latch_setters := (set, next) :: !latch_setters;
            q))
    gates;
  List.iter
    (fun (set, next) -> set map.(Netlist.signal_index next))
    !latch_setters;
  map

let product nl1 nl2 =
  let names l = List.sort compare (List.map fst l) in
  if names (Netlist.inputs nl1) <> names (Netlist.inputs nl2) then
    invalid_arg "Equiv.product: input sets differ";
  let common_outputs =
    List.filter
      (fun (n, _) -> List.mem_assoc n (Netlist.outputs nl2))
      (Netlist.outputs nl1)
  in
  if common_outputs = [] then
    invalid_arg "Equiv.product: no common outputs";
  let b =
    Netlist.create
      (Printf.sprintf "product(%s,%s)" (Netlist.name nl1) (Netlist.name nl2))
  in
  let input_table = Hashtbl.create 8 in
  let input_of n =
    match Hashtbl.find_opt input_table n with
    | Some s -> s
    | None ->
      let s = Netlist.input b n in
      Hashtbl.add input_table n s;
      s
  in
  let map1 = copy_into b ~prefix:"a." ~input_of nl1 in
  let map2 = copy_into b ~prefix:"b." ~input_of nl2 in
  let diffs =
    List.map
      (fun (n, s1) ->
         let s2 = List.assoc n (Netlist.outputs nl2) in
         Netlist.xor_gate b
           map1.(Netlist.signal_index s1)
           map2.(Netlist.signal_index s2))
      common_outputs
  in
  Netlist.output b "neq" (Netlist.or_list b diffs);
  Netlist.finalize b

let check ?strategy ?cluster_bound ?minimize ?max_iterations ?on_instance
    ?on_image_constrain man nl1 nl2 =
  let prod = product nl1 nl2 in
  let sym = Symbolic.of_netlist man prod in
  let reached, stats =
    Reach.reachable ?strategy ?cluster_bound ?minimize ?max_iterations
      ?on_instance ?on_image_constrain sym
  in
  (* A partial reached set cannot support a verdict in either direction
     (an unexplored state could still activate [neq]); surface the
     exhaustion instead of guessing. *)
  (match stats.Reach.fixpoint with
   | Reach.Partial { reason; _ } -> raise (Bdd.Budget_exhausted reason)
   | Reach.Complete -> ());
  let neq = List.assoc "neq" sym.output_fns in
  let bad_states = Bdd.exists man (Symbolic.input_support sym) neq in
  let witness = Bdd.dand man reached bad_states in
  if Bdd.is_zero witness then Equivalent stats
  else
    match Bdd.Cube.any_cube man witness with
    | Some cube -> Not_equivalent { stats; distinguishing_state = cube }
    | None -> assert false

let check_self ?strategy ?cluster_bound ?minimize ?max_iterations ?on_instance
    ?on_image_constrain man nl =
  check ?strategy ?cluster_bound ?minimize ?max_iterations ?on_instance
    ?on_image_constrain man nl nl

(* ----- counterexample traces ----- *)

let counterexample_trace ?max_iterations man nl1 nl2 =
  let prod = product nl1 nl2 in
  let sym = Symbolic.of_netlist man prod in
  let neq = List.assoc "neq" sym.output_fns in
  let bad_states = Bdd.exists man (Symbolic.input_support sym) neq in
  Trace.to_states ?max_iterations ~final_condition:neq man sym
    ~bad:bad_states
