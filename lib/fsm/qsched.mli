(** Quantification scheduling for partitioned image computation.

    Following the IWLS95 technique of Ranjan et al., the per-latch
    conjuncts of a partitioned transition relation are merged into
    {e clusters} under a node-count bound and ordered so that
    current-state and input variables can be existentially quantified as
    early as possible during the conjoin-and-quantify image walk — each
    variable at the cluster of its last occurrence, which is the earliest
    exact point.  A schedule depends only on the machine (never on the
    state set being imaged), so [Symbolic.t] computes it once and
    memoizes it. *)

type cluster = {
  rel : Bdd.t;  (** conjunction of the merged per-latch conjuncts *)
  support : int list;  (** [Bdd.support] of [rel], increasing *)
  quantify : int list;
  (** quantifiable variables whose last occurrence is this cluster:
      abstracted by the fused [and_exists] that conjoins [rel] *)
}

type t = {
  clusters : cluster array;  (** in execution order *)
  pre_quantify : int list;
  (** quantifiable variables no cluster mentions — abstracted from the
      state set before the walk *)
  cluster_bound : int;  (** the bound the schedule was built under *)
  vars_early : int;
  (** variables quantified strictly before the last cluster,
      [pre_quantify] included — the benefit the ordering bought *)
}

val default_cluster_bound : int
(** Node-count bound used when callers don't specify one (2000). *)

val build :
  Bdd.man -> parts:Bdd.t array -> quantified:int list -> cluster_bound:int -> t
(** Cluster [parts] (in order, merging neighbours while the product stays
    within [cluster_bound] nodes; a bound [<= 1] keeps every conjunct
    separate, which is exactly the partitioned strategy), then order the
    clusters greedily: highest [2·dead − fresh] first, where [dead] counts
    quantifiable variables occurring in no other remaining cluster and
    [fresh] counts variables new to the accumulated product.  Ties break
    on the lowest original index, so the schedule is deterministic.
    Emits an [fsm.qsched] trace span and [qsched.*] probes. *)
