type verdict =
  | Holds of Reach.stats
  | Violated of (string * bool) list list

let check_states_bad ?max_iterations man sym ~bad ~final_condition =
  let reached, stats = Reach.reachable ?max_iterations sym in
  if Bdd.is_zero (Bdd.dand man reached bad) then Holds stats
  else
    match Trace.to_states ?max_iterations ?final_condition man sym ~bad with
    | Some trace -> Violated trace
    | None -> assert false (* the state is reachable *)

let check_state ?max_iterations man (sym : Symbolic.t) ~invariant =
  check_states_bad ?max_iterations man sym
    ~bad:(Bdd.compl invariant)
    ~final_condition:None

let check_output_never ?max_iterations man (sym : Symbolic.t) ~output =
  let f =
    match List.assoc_opt output sym.output_fns with
    | Some f -> f
    | None -> invalid_arg ("Invariant.check_output_never: no output " ^ output)
  in
  let bad = Bdd.exists man (Symbolic.input_support sym) f in
  check_states_bad ?max_iterations man sym ~bad ~final_condition:(Some f)
