(** Public face of the BDD substrate: the core engine plus cube and
    Graphviz helpers.  See {!Core_dd} for the engine documentation. *)

include Core_dd

module Cube = Cube
module Reorder = Reorder
module Store = Store
module Zdd = Zdd
module Add = Add
module Dot = Dot
