(** Public face of the BDD substrate: the core engine plus cube and
    Graphviz helpers.  See {!Core_dd} for the engine documentation. *)

include Core_dd

(* The one front door for manager construction.  Lives here rather than
   in [Core_dd] because installing a reordering policy needs [Reorder],
   which itself depends on [Core_dd]. *)
let create ?nvars ?(repr : Core_dd.repr = `Bdd) ?cache_bits ?cache_bytes
    ?auto_gc ?budget ?(reorder_policy = Reorder.Policy.Manual) () =
  let man =
    Core_dd.new_man ?nvars ?cache_bits ?cache_budget:cache_bytes ?auto_gc
      ~chain:(repr = `Cbdd) ()
  in
  Core_dd.set_budget man budget;
  Reorder.Policy.install man reorder_policy;
  man

module Cube = Cube
module Reorder = Reorder
module Store = Store
module Zdd = Zdd
module Add = Add
module Dot = Dot
