(** Zero-suppressed binary decision diagrams (Minato): canonical
    representations of families of sets over integer elements — the
    natural data structure for cube covers (each cube a set of literals),
    complementing the function-oriented {!Core_dd}.

    Canonical form: a node's [hi] child (subsets containing the node's
    element) is never the empty family; elements increase along every
    path.  Two families are equal iff their handles are {!equal}. *)

type man
type t

val new_man : unit -> man

val empty : man -> t
(** The empty family [∅]. *)

val base : man -> t
(** The family containing only the empty set [{∅}]. *)

val is_empty : t -> bool
val is_base : t -> bool
val equal : t -> t -> bool

val singleton : man -> int list -> t
(** The family containing exactly the given set. *)

val elem : man -> int -> t
(** [{{v}}]. *)

val union : man -> t -> t -> t
val inter : man -> t -> t -> t
val diff : man -> t -> t -> t

val join : man -> t -> t -> t
(** Minato's product: [{ s ∪ t | s ∈ a, t ∈ b }]. *)

val change : man -> t -> int -> t
(** Toggle element [v] in every member set. *)

val subset1 : man -> t -> int -> t
(** Members containing [v], with [v] removed. *)

val subset0 : man -> t -> int -> t
(** Members not containing [v]. *)

val mem : man -> t -> int list -> bool
(** Membership of one set. *)

val count : man -> t -> int
(** Number of member sets. *)

val node_count : man -> t -> int
(** Nodes of the shared DAG (terminals excluded). *)

val iter_sets : man -> t -> (int list -> unit) -> unit
(** Apply to every member set (elements ascending), in lexicographic
    DFS order. *)

val to_list : man -> t -> int list list
val of_list : man -> int list list -> t

val pp : man -> Format.formatter -> t -> unit
(** Print as [{ {1,3}, {2}, ... }] (small families only). *)
