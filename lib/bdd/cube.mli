(** Cubes (conjunctions of literals) and cube enumeration over BDDs.

    Cube enumeration drives the paper's lower-bound computation (§4.1.1):
    cubes of the care set are produced by depth-first traversal, returning a
    cube each time the constant 1 is reached. *)

type literal = int * bool
(** A variable paired with its phase ([true] = positive). *)

type cube = literal list
(** A conjunction of literals, sorted by variable, each variable at most
    once.  The empty cube is the constant 1. *)

val of_cube : Core_dd.man -> cube -> Core_dd.t
(** BDD of the conjunction. *)

val to_cube : Core_dd.man -> Core_dd.t -> cube option
(** [Some c] when the function is exactly the cube [c] (in particular
    [Some []] for the constant 1), [None] otherwise. *)

val is_cube : Core_dd.man -> Core_dd.t -> bool
(** Whether the function is a non-zero cube (the constant 1 counts). *)

val any_cube : Core_dd.man -> Core_dd.t -> cube option
(** Some satisfying path-cube of the function, [None] iff it is 0. *)

val iter_cubes : ?limit:int -> Core_dd.man -> Core_dd.t -> (cube -> unit) -> unit
(** Apply the callback to the path-cubes of the function, in DFS order
    (then-branch first), stopping after [limit] cubes when given.  Each
    path-cube is implied by the function's onset and implies the function. *)

val all_cubes : ?limit:int -> Core_dd.man -> Core_dd.t -> cube list
(** The path-cubes as a list, DFS order. *)

val short_cube : Core_dd.man -> Core_dd.t -> cube option
(** A path-cube with the fewest literals (a "large" cube in the paper's
    sense — covering the most minterms), found by shortest-path search. *)

val literal_count : cube -> int

val pp : Format.formatter -> cube -> unit
(** Print as e.g. [x0·¬x2·x5]; the empty cube prints as [1]. *)
