(** Graphviz export of BDDs (complement edges drawn as dotted lines). *)

val to_dot :
  ?name:string ->
  ?var_name:(int -> string) ->
  Core_dd.man ->
  (string * Core_dd.t) list ->
  string
(** [to_dot man roots] renders the shared DAG of the labelled [roots] as a
    Graphviz [digraph].  [var_name] maps levels to labels (default
    [x<level>]). *)

val dump_file :
  ?name:string ->
  ?var_name:(int -> string) ->
  string ->
  Core_dd.man ->
  (string * Core_dd.t) list ->
  unit
(** Write {!to_dot} output to the given path. *)
