let is_neg f = Core_dd.uid f land 1 = 1

let to_dot ?(name = "bdd") ?(var_name = fun v -> Printf.sprintf "x%d" v) man
    roots =
  let buf = Buffer.create 1024 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr "digraph %s {\n" name;
  pr "  rankdir=TB;\n";
  pr "  node [shape=circle];\n";
  pr "  t1 [shape=box, label=\"1\"];\n";
  let seen = Hashtbl.create 64 in
  let node_name id = if id = 0 then "t1" else Printf.sprintf "n%d" id in
  let edges = ref [] in
  (* Walk the regular (uncomplemented) view of every node so each physical
     node is drawn once; complement bits are drawn on edges. *)
  let rec visit f =
    let id = Core_dd.node_id f in
    if id <> 0 && not (Hashtbl.mem seen id) then begin
      Hashtbl.add seen id ();
      pr "  n%d [label=\"%s\"];\n" id (var_name (Core_dd.topvar f));
      let reg = if is_neg f then Core_dd.compl f else f in
      let hi = Core_dd.hi man reg and lo = Core_dd.lo man reg in
      edges :=
        (id, Core_dd.node_id hi, false, is_neg hi)
        :: (id, Core_dd.node_id lo, true, is_neg lo)
        :: !edges;
      visit hi;
      visit lo
    end
  in
  List.iter (fun (_, f) -> visit f) roots;
  List.iter
    (fun (src, dst, is_else, complemented) ->
       pr "  %s -> %s [style=%s%s];\n" (node_name src) (node_name dst)
         (if is_else then "dashed" else "solid")
         (if complemented then ", color=red, arrowhead=odot" else ""))
    !edges;
  List.iteri
    (fun i (label, f) ->
       pr "  r%d [shape=plaintext, label=\"%s\"];\n" i (String.escaped label);
       pr "  r%d -> %s%s;\n" i
         (node_name (Core_dd.node_id f))
         (if is_neg f then " [color=red, arrowhead=odot]" else ""))
    roots;
  pr "}\n";
  Buffer.contents buf

let dump_file ?name ?var_name path man roots =
  let oc = open_out path in
  output_string oc (to_dot ?name ?var_name man roots);
  close_out oc
