(* Zero-suppressed decision diagrams.  Canonical form: [hi] is never the
   empty family; variables strictly increase along paths.  No complement
   edges (the zero-suppression rule is incompatible with them). *)

type node = {
  id : int;
  var : int;  (* max_int for terminals *)
  hi : node;  (* member sets containing var; never the empty family *)
  lo : node;
}

type t = node

type man = {
  unique : (int * int * int, node) Hashtbl.t;
  cache : (int * int * int, node) Hashtbl.t;
  mutable next_id : int;
  bot : node;  (* empty family *)
  top : node;  (* {∅} *)
}

let new_man () =
  let rec bot = { id = 0; var = max_int; hi = bot; lo = bot } in
  let rec top = { id = 1; var = max_int; hi = top; lo = top } in
  {
    unique = Hashtbl.create 1024;
    cache = Hashtbl.create 1024;
    next_id = 2;
    bot;
    top;
  }

let empty man = man.bot
let base man = man.top
let is_empty z = z.var = max_int && z.id = 0
let is_base z = z.var = max_int && z.id = 1
let equal a b = a == b

let mk man v ~hi ~lo =
  assert (v < hi.var && v < lo.var);
  if is_empty hi then lo
  else
    let key = (v, hi.id, lo.id) in
    match Hashtbl.find_opt man.unique key with
    | Some n -> n
    | None ->
      let n = { id = man.next_id; var = v; hi; lo } in
      man.next_id <- man.next_id + 1;
      Hashtbl.add man.unique key n;
      n

let singleton man vs =
  let vs = List.sort_uniq compare vs in
  if List.exists (fun v -> v < 0) vs then
    invalid_arg "Zdd.singleton: negative element";
  List.fold_right (fun v acc -> mk man v ~hi:acc ~lo:man.bot) vs man.top

let elem man v = singleton man [ v ]

let tag_union = 0
let tag_inter = 1
let tag_diff = 2
let tag_join = 3

let cached man tag a b compute =
  let key = (tag, a.id, b.id) in
  match Hashtbl.find_opt man.cache key with
  | Some r -> r
  | None ->
    let r = compute () in
    Hashtbl.add man.cache key r;
    r

let rec union man a b =
  if equal a b || is_empty b then a
  else if is_empty a then b
  else
    (* commutative: canonicalize the cache key *)
    let a, b = if a.id <= b.id then (a, b) else (b, a) in
    cached man tag_union a b (fun () ->
        if a.var < b.var then mk man a.var ~hi:a.hi ~lo:(union man a.lo b)
        else if b.var < a.var then mk man b.var ~hi:b.hi ~lo:(union man a b.lo)
        else if a.var = max_int then
          (* distinct terminals: bot ∪ top handled above; only {∅} vs ∅ *)
          if is_empty a then b else a
        else
          mk man a.var ~hi:(union man a.hi b.hi) ~lo:(union man a.lo b.lo))

let rec inter man a b =
  if equal a b then a
  else if is_empty a || is_empty b then man.bot
  else
    let a, b = if a.id <= b.id then (a, b) else (b, a) in
    cached man tag_inter a b (fun () ->
        if a.var < b.var then inter man a.lo b
        else if b.var < a.var then inter man a b.lo
        else if a.var = max_int then man.bot (* base vs bot handled above *)
        else
          mk man a.var ~hi:(inter man a.hi b.hi) ~lo:(inter man a.lo b.lo))

let rec diff man a b =
  if equal a b || is_empty a then man.bot
  else if is_empty b then a
  else
    cached man tag_diff a b (fun () ->
        if a.var < b.var then mk man a.var ~hi:a.hi ~lo:(diff man a.lo b)
        else if b.var < a.var then diff man a b.lo
        else if a.var = max_int then
          (* distinct terminals with neither empty cannot happen *)
          assert false
        else
          mk man a.var ~hi:(diff man a.hi b.hi) ~lo:(diff man a.lo b.lo))

let rec join man a b =
  if is_empty a || is_empty b then man.bot
  else if is_base a then b
  else if is_base b then a
  else
    let a, b = if a.id <= b.id then (a, b) else (b, a) in
    cached man tag_join a b (fun () ->
        if a.var < b.var then
          mk man a.var ~hi:(join man a.hi b) ~lo:(join man a.lo b)
        else if b.var < a.var then
          mk man b.var ~hi:(join man a b.hi) ~lo:(join man a b.lo)
        else
          let hi =
            union man
              (join man a.hi b.hi)
              (union man (join man a.hi b.lo) (join man a.lo b.hi))
          in
          mk man a.var ~hi ~lo:(join man a.lo b.lo))

let rec change man z v =
  if v < 0 then invalid_arg "Zdd.change: negative element";
  if z.var > v then
    (* no member mentions v: all gain it *)
    if is_empty z then z else mk man v ~hi:z ~lo:man.bot
  else if z.var = v then mk man v ~hi:z.lo ~lo:z.hi
  else mk man z.var ~hi:(change man z.hi v) ~lo:(change man z.lo v)

let rec subset1 man z v =
  if z.var > v then man.bot
  else if z.var = v then z.hi
  else mk man z.var ~hi:(subset1 man z.hi v) ~lo:(subset1 man z.lo v)

let rec subset0 man z v =
  if z.var > v then z
  else if z.var = v then z.lo
  else mk man z.var ~hi:(subset0 man z.hi v) ~lo:(subset0 man z.lo v)

let mem man z vs =
  let vs = List.sort_uniq compare vs in
  let rec go z vs =
    match vs with
    | [] ->
      let rec down z = if z.var = max_int then is_base z else down z.lo in
      down z
    | v :: rest ->
      if z.var > v then false
      else if z.var = v then go z.hi rest
      else go z.lo vs
  in
  ignore man;
  go z vs

let count man z =
  let memo = Hashtbl.create 64 in
  let rec go z =
    if is_empty z then 0
    else if z.var = max_int then 1
    else
      match Hashtbl.find_opt memo z.id with
      | Some n -> n
      | None ->
        let n = go z.hi + go z.lo in
        Hashtbl.add memo z.id n;
        n
  in
  ignore man;
  go z

let node_count man z =
  let seen = Hashtbl.create 64 in
  let rec go z =
    if z.var <> max_int && not (Hashtbl.mem seen z.id) then begin
      Hashtbl.add seen z.id ();
      go z.hi;
      go z.lo
    end
  in
  ignore man;
  go z;
  Hashtbl.length seen

let iter_sets man z k =
  ignore man;
  let rec go acc z =
    if is_base z then k (List.rev acc)
    else if not (is_empty z) then begin
      go (z.var :: acc) z.hi;
      go acc z.lo
    end
  in
  go [] z

let to_list man z =
  let out = ref [] in
  iter_sets man z (fun s -> out := s :: !out);
  List.rev !out

let of_list man sets =
  List.fold_left (fun acc s -> union man acc (singleton man s)) man.bot sets

let pp man ppf z =
  let sets = to_list man z in
  if List.length sets > 64 then
    Format.fprintf ppf "<family of %d sets>" (List.length sets)
  else begin
    Format.pp_print_string ppf "{ ";
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
      (fun ppf s ->
         Format.fprintf ppf "{%a}"
           (Format.pp_print_list
              ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ',')
              Format.pp_print_int)
           s)
      ppf sets;
    Format.pp_print_string ppf " }"
  end
