let union_support man fs =
  List.sort_uniq compare (List.concat_map (Core_dd.support man) fs)

let check_placement placement vars =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun v ->
       if v >= Array.length placement then
         invalid_arg "Reorder: placement too short for the support";
       let p = placement.(v) in
       if p < 0 then invalid_arg "Reorder: negative level in placement";
       if Hashtbl.mem seen p then
         invalid_arg "Reorder: placement is not injective on the support";
       Hashtbl.add seen p ())
    vars

(* Rebuild each function in [target] with variable [v] living at level
   [placement.(v)].  The target manager's ITE performs the actual
   reordering work; memoized per source edge.  Every memoized result is
   rooted in [target] while the rebuild runs (and the final results stay
   rooted), so a garbage collection of the target manager — automatic or
   explicit — cannot sweep the intermediate cones out from under us. *)
let rebuild_into target man ~placement fs =
  check_placement placement (union_support man fs);
  let memo = Hashtbl.create 1024 in
  let rooted = ref [] in
  let rec go e =
    if Core_dd.is_one e then Core_dd.one target
    else if Core_dd.is_zero e then Core_dd.zero target
    else
      match Hashtbl.find_opt memo (Core_dd.uid e) with
      | Some r -> r
      | None ->
        let v = Core_dd.topvar e in
        let t = go (Core_dd.hi man e) and l = go (Core_dd.lo man e) in
        let r = Core_dd.ite target (Core_dd.ithvar target placement.(v)) t l in
        Core_dd.ref_ target r;
        rooted := r :: !rooted;
        Hashtbl.add memo (Core_dd.uid e) r;
        r
  in
  let out = List.map go fs in
  List.iter (Core_dd.ref_ target) out;
  List.iter (Core_dd.deref target) !rooted;
  out

let rebuild man ~placement fs =
  (* The rebuilt manager keeps the source representation: a chain
     manager's functions re-absorb into chains under the new order. *)
  let target = Core_dd.new_man ~chain:(Core_dd.repr man = `Cbdd) () in
  (target, rebuild_into target man ~placement fs)

let shared_size_under man ~placement fs =
  let target, rebuilt = rebuild man ~placement fs in
  Core_dd.shared_size target rebuilt

(* Placement induced by an order (list of variables, topmost first). *)
let placement_of_order n order =
  let placement = Array.make n 0 in
  List.iteri (fun level v -> placement.(v) <- level) order;
  placement

(* Sifting reads the whole source cone over and over while other domains
   of a shared store may be interning and triggering collections; with
   more than one registered view the measurement walks would race the
   collector's sweeps.  Refuse loudly instead of corrupting anything:
   the caller must quiesce to a single attached view first. *)
let check_siftable man =
  match Core_dd.Shared.store_of man with
  | None -> ()
  | Some store ->
    let views = Core_dd.Shared.view_count store in
    if views > 1 then
      invalid_arg
        (Printf.sprintf
           "Reorder.sift: manager is a view of a shared store with %d \
            registered views; detach down to one before reordering"
           views)

let sift ?(max_rounds = 2) man fs =
  check_siftable man;
  let vars = union_support man fs in
  match vars with
  | [] | [ _ ] ->
    let n = List.fold_left max (-1) vars + 1 in
    (Array.init (max n 1) Fun.id, Core_dd.shared_size man fs)
  | _ ->
    let n = List.fold_left max 0 vars + 1 in
    (* Variables not in the support keep identity positions; only the
       support participates in the order being permuted.  Each distinct
       order is measured (one full rebuild) at most once. *)
    let size_cache = Hashtbl.create 64 in
    let size_of order =
      match Hashtbl.find_opt size_cache order with
      | Some s -> s
      | None ->
        let s =
          shared_size_under man ~placement:(placement_of_order n order) fs
        in
        Hashtbl.add size_cache order s;
        s
    in
    (* level population, to process the most populous variables first *)
    let population = Hashtbl.create 16 in
    List.iter
      (fun f ->
         Core_dd.iter_nodes man f (fun _ v ->
             if v <> Core_dd.const_var then
               Hashtbl.replace population v
                 (1 + Option.value ~default:0 (Hashtbl.find_opt population v))))
      fs;
    let by_population =
      List.stable_sort
        (fun a b ->
           compare
             (Option.value ~default:0 (Hashtbl.find_opt population b))
             (Option.value ~default:0 (Hashtbl.find_opt population a)))
        vars
    in
    let best_order = ref vars in
    let best_size = ref (size_of vars) in
    let improved = ref true in
    let round = ref 0 in
    while !improved && !round < max_rounds do
      improved := false;
      incr round;
      List.iter
        (fun v ->
           let base = !best_order in
           let rest = List.filter (( <> ) v) base in
           (* try inserting v at every position of the current order;
              re-inserting it where it already sits reproduces [base],
              whose size is known — skip that rebuild *)
           let m = List.length rest in
           for pos = 0 to m do
             let candidate =
               List.concat
                 [
                   List.filteri (fun i _ -> i < pos) rest;
                   [ v ];
                   List.filteri (fun i _ -> i >= pos) rest;
                 ]
             in
             if candidate <> base then begin
               let sz = size_of candidate in
               if sz < !best_size then begin
                 best_size := sz;
                 best_order := candidate;
                 improved := true
               end
             end
           done)
        by_population
    done;
    (placement_of_order n !best_order, !best_size)

let sift_apply ?max_rounds man fs =
  let placement, _ = sift ?max_rounds man fs in
  let target, rebuilt = rebuild man ~placement fs in
  (placement, target, rebuilt)

(* Interned quantification cubes (Core_dd.cube_id) are variable-NAME
   sets, and a rebuild renames variable [v] to [placement.(v)]; cube ids
   from the old manager are meaningless against the new one and must be
   re-interned under the renamed variables. *)
let remap_cube ~placement vars =
  List.map
    (fun v ->
       if v < 0 || v >= Array.length placement then
         invalid_arg
           (Printf.sprintf
              "Reorder.remap_cube: variable %d outside the placement" v)
       else placement.(v))
    vars

module Policy = struct
  type t =
    | Manual
    | On_growth of { factor : int; max_passes : int }

  let install man policy =
    match policy with
    | Manual -> Core_dd.set_reorder_state man None
    | On_growth { factor; max_passes } ->
      if factor < 2 then
        invalid_arg "Reorder.Policy.install: factor must be >= 2";
      if max_passes < 1 then
        invalid_arg "Reorder.Policy.install: max_passes must be >= 1";
      let st =
        {
          Core_dd.rp_factor = factor;
          rp_max_passes = max_passes;
          rp_passes = 0;
          rp_baseline = 0;
          rp_pending = false;
        }
      in
      Core_dd.set_reorder_state man (Some st);
      (* The listener fires from inside interning, so it only records
         state; the actual sift runs from [check] at a clean boundary. *)
      Core_dd.on_event man (fun ev ->
          match (ev, Core_dd.reorder_state man) with
          | (Core_dd.Table_grown { old_capacity; new_capacity }, Some st) ->
            if st.Core_dd.rp_baseline = 0 then
              st.Core_dd.rp_baseline <- old_capacity;
            if
              st.Core_dd.rp_passes < st.Core_dd.rp_max_passes
              && new_capacity >= st.Core_dd.rp_factor * st.Core_dd.rp_baseline
            then st.Core_dd.rp_pending <- true
          | _ -> ())

  let installed man =
    match Core_dd.reorder_state man with
    | None -> Manual
    | Some st ->
      On_growth
        { factor = st.Core_dd.rp_factor; max_passes = st.Core_dd.rp_max_passes }

  let pending man =
    match Core_dd.reorder_state man with
    | Some st -> st.Core_dd.rp_pending
    | None -> false

  let check ?max_rounds man fs =
    match Core_dd.reorder_state man with
    | None -> None
    | Some st ->
      if not st.Core_dd.rp_pending then None
      else begin
        st.Core_dd.rp_pending <- false;
        let multi_view =
          match Core_dd.Shared.store_of man with
          | Some store -> Core_dd.Shared.view_count store > 1
          | None -> false
        in
        if multi_view || st.Core_dd.rp_passes >= st.Core_dd.rp_max_passes then
          None
        else
          match
            (* An expired deadline or cancelled token aborts the sift
               before any rebuild work starts. *)
            Core_dd.check_budget man;
            sift_apply ?max_rounds man fs
          with
          | (placement, target, rebuilt) ->
            install target (installed man);
            (match Core_dd.reorder_state target with
             | Some st' -> st'.Core_dd.rp_passes <- st.Core_dd.rp_passes + 1
             | None -> ());
            Core_dd.set_budget target (Core_dd.current_budget man);
            Some (placement, target, rebuilt)
          | exception Core_dd.Budget_exhausted _ -> None
      end
end
