(* ADDs: hash-consed decision nodes over integer terminals.  Canonical
   form: no node has equal children; terminals are interned per value. *)

type node = {
  id : int;
  var : int;  (* max_int for terminals *)
  value : int;  (* meaningful for terminals only *)
  hi : node;
  lo : node;
}

type t = node

type man = {
  unique : (int * int * int, node) Hashtbl.t;  (* (var, hi id, lo id) *)
  constants : (int, node) Hashtbl.t;
  mutable next_id : int;
}

let new_man () =
  { unique = Hashtbl.create 1024; constants = Hashtbl.create 64; next_id = 0 }

let const man v =
  match Hashtbl.find_opt man.constants v with
  | Some n -> n
  | None ->
    let rec n = { id = man.next_id; var = max_int; value = v; hi = n; lo = n } in
    man.next_id <- man.next_id + 1;
    Hashtbl.add man.constants v n;
    n

let is_const a = a.var = max_int
let value a = if is_const a then Some a.value else None
let equal a b = a == b

let mk man v ~hi ~lo =
  assert (v < hi.var && v < lo.var);
  if hi == lo then hi
  else
    let key = (v, hi.id, lo.id) in
    match Hashtbl.find_opt man.unique key with
    | Some n -> n
    | None ->
      let n = { id = man.next_id; var = v; value = 0; hi; lo } in
      man.next_id <- man.next_id + 1;
      Hashtbl.add man.unique key n;
      n

let ite_var man v t e = mk man v ~hi:t ~lo:e

let of_bdd man bman bdd ~high ~low =
  let memo = Hashtbl.create 256 in
  let rec go e =
    if Core_dd.is_one e then const man high
    else if Core_dd.is_zero e then const man low
    else
      match Hashtbl.find_opt memo (Core_dd.uid e) with
      | Some r -> r
      | None ->
        let r =
          mk man (Core_dd.topvar e) ~hi:(go (Core_dd.hi bman e))
            ~lo:(go (Core_dd.lo bman e))
        in
        Hashtbl.add memo (Core_dd.uid e) r;
        r
  in
  go bdd

let to_bdd man a ~pred bman =
  ignore man;
  let memo = Hashtbl.create 256 in
  let rec go a =
    if is_const a then
      if pred a.value then Core_dd.one bman else Core_dd.zero bman
    else
      match Hashtbl.find_opt memo a.id with
      | Some r -> r
      | None ->
        let r =
          Core_dd.ite bman
            (Core_dd.ithvar bman a.var)
            (go a.hi) (go a.lo)
        in
        Hashtbl.add memo a.id r;
        r
  in
  go a

let branches a v =
  if a.var = v then (a.hi, a.lo) else (a, a)

let apply2 man f a b =
  let memo = Hashtbl.create 256 in
  let rec go a b =
    if is_const a && is_const b then const man (f a.value b.value)
    else
      match Hashtbl.find_opt memo (a.id, b.id) with
      | Some r -> r
      | None ->
        let v = min a.var b.var in
        let at, ae = branches a v and bt, be = branches b v in
        let r = mk man v ~hi:(go at bt) ~lo:(go ae be) in
        Hashtbl.add memo (a.id, b.id) r;
        r
  in
  go a b

let map man f a =
  let memo = Hashtbl.create 256 in
  let rec go a =
    if is_const a then const man (f a.value)
    else
      match Hashtbl.find_opt memo a.id with
      | Some r -> r
      | None ->
        let r = mk man a.var ~hi:(go a.hi) ~lo:(go a.lo) in
        Hashtbl.add memo a.id r;
        r
  in
  go a

let add man a b = apply2 man ( + ) a b
let min2 man a b = apply2 man min a b
let max2 man a b = apply2 man max a b

let eval a assign =
  let rec go a =
    if is_const a then a.value
    else if assign a.var then go a.hi
    else go a.lo
  in
  go a

let fold_terminals man a f init =
  ignore man;
  let seen = Hashtbl.create 64 in
  let acc = ref init in
  let rec go a =
    if not (Hashtbl.mem seen a.id) then begin
      Hashtbl.add seen a.id ();
      if is_const a then acc := f !acc a.value
      else begin
        go a.hi;
        go a.lo
      end
    end
  in
  go a;
  !acc

let min_value man a = fold_terminals man a min max_int
let max_value man a = fold_terminals man a max min_int

let size man a =
  ignore man;
  let seen = Hashtbl.create 64 in
  let count = ref 0 in
  let rec go a =
    if not (Hashtbl.mem seen a.id) then begin
      Hashtbl.add seen a.id ();
      incr count;
      if not (is_const a) then begin
        go a.hi;
        go a.lo
      end
    end
  in
  go a;
  !count

let terminals man a =
  List.sort compare (fold_terminals man a (fun acc v -> v :: acc) [])
