(** Reduced ordered binary decision diagrams with output-complement edges.

    The engine follows Brace, Rudell and Bryant, "Efficient implementation
    of a BDD package" (DAC 1990), the package the paper builds on: nodes are
    hash-consed in a unique table, every edge carries a complement bit, and
    the canonical form keeps the {e then} edge of every node regular
    (non-complemented).  There is a single terminal node; the constant zero
    is the complemented edge to it.

    Variables are identified by integer {e levels}: variable [0] is the
    topmost variable of the order, larger levels sit deeper.  The order is
    fixed for the lifetime of a manager, as in the paper.

    Managers come in two representations (see {!repr}): plain BDDs, and
    chain-reduced BDDs (CBDDs, after Bryant's chain reduction) where a
    node carries a [(top, bottom)] level pair encoding the OR-chain
    [x_top \/ ... \/ x_{bottom-1} \/ (x_bottom ? hi : lo)] in a single
    node — the long one-armed chains of sparse functions and cube sets
    collapse to O(1) nodes.  Complement edges give the dual
    (conjunctions of negated literals) for free.  Both representations
    are canonical, so [equal] decides semantic equality in either; all
    operations work uniformly on both.  Prefer creating managers through
    [Bdd.create ~repr] rather than {!new_man}. *)

type man
(** A BDD manager: owns the unique table and the operation caches.  All
    edges combined by an operation must belong to the same manager — or,
    for shared-store views, to views of the same store (see {!Shared}).

    A manager created by {!new_man} is {e domain-local by design}: there
    is no internal locking, so it (and every edge it owns) must stay
    confined to one domain at a time.  Parallel workloads either give
    each worker its own private manager — the experiment matrix is
    embarrassingly parallel across managers (see [Exec] and
    [Harness.Capture.run_suite]) — or attach per-domain {e views} of one
    {!Shared.store} so workers cooperate on a single node space.  A view
    is still single-domain state (its computed cache and counters are
    unsynchronized); only the underlying store is concurrent. *)

type t
(** An edge (a possibly complemented pointer to a node).  Two edges of the
    same manager represent the same function iff they are [equal]. *)

type repr = [ `Bdd | `Cbdd ]
(** The node representation of a manager: plain BDDs, or chain-reduced
    BDDs ([`Cbdd]). *)

val new_man :
  ?nvars:int ->
  ?cache_bits:int ->
  ?cache_budget:int ->
  ?auto_gc:bool ->
  ?chain:bool ->
  unit ->
  man
(** [new_man ()] creates a fresh manager.  [nvars] merely preallocates the
    variable count; variables are created on demand by {!ithvar}.

    {b Deprecated entry point}: prefer [Bdd.create], which selects the
    representation with [~repr], installs budgets and reordering
    policies, and names the cache byte budget consistently.  [new_man]
    remains for low-level use; [chain] (default [false]) selects the
    chain-reduced representation directly.

    [cache_bits] is the log2 of the initial computed-cache capacity
    (default 15, i.e. 32768 entries; clamped to [1, 24]).  The cache is
    direct-mapped and lossy: a colliding store simply overwrites (an
    {e eviction}).  When conflict evictions since the last resize exceed
    the capacity, the cache doubles, up to [cache_budget] bytes
    (default 32 MiB at 32 bytes per entry).

    [auto_gc] (default [true]) lets the manager run {!gc} on its own at
    operation boundaries once the unique table has grown — but only when
    at least one external reference is registered (see {!ref_}), since
    otherwise every node would be swept. *)

val repr : man -> repr
(** The manager's node representation. *)

val repr_label : repr -> string
(** ["bdd"] or ["cbdd"] — the stable wire/CLI spelling. *)

val repr_of_string : string -> repr option
(** Inverse of {!repr_label}. *)

val nvars : man -> int
(** Number of variables created so far. *)

val clear_caches : man -> unit
(** Flush all operation caches (the unique table is kept).  Used to time
    heuristics fairly, as in §4.1.1 of the paper. *)

(** {1 External references and garbage collection}

    The unique table is garbage-collected by mark-and-sweep.  Roots are
    the projection functions (always), the edges registered through
    {!ref_}, and any [roots] passed to {!gc} explicitly.  Edges held by
    plain OCaml values across a collection remain structurally valid and
    all operations on them stay {e semantically} correct, but they can
    lose {e canonicity}: a semantically equal function rebuilt afterwards
    may get a fresh node, so [equal] no longer implies physical identity
    between pre- and post-GC results.  Root anything you keep. *)

val ref_ : man -> t -> unit
(** Register an external reference: the edge's cone survives {!gc}.
    References count, so [ref_] twice needs {!deref} twice. *)

val deref : man -> t -> unit
(** Drop one external reference ([deref] without a matching {!ref_} is
    ignored). *)

val with_root : man -> t -> (t -> 'a) -> 'a
(** [with_root man e k] runs [k e] with [e] rooted, dereferencing on exit
    (also on exceptions). *)

val gc : ?roots:t list -> man -> int
(** Mark-and-sweep collection: sweep every node not reachable from the
    registered references, the projection functions, or [roots]; flush
    the computed cache (its entries may mention swept nodes).  Returns
    the number of nodes reclaimed. *)

val set_auto_gc : man -> bool -> unit
(** Enable or disable the automatic collection trigger (see {!new_man}). *)

val without_auto_gc : man -> (unit -> 'a) -> 'a
(** Run with the automatic trigger suspended, restoring it on exit (also
    on exceptions).  For long fixpoint loops whose working set lives on
    un-rooted edges: an automatic collection would sweep the in-flight
    sets (costing canonicity and the computed cache) every time the
    table grows past a long-lived root. *)

(** {1 Resource budgets}

    A budget bounds the work a manager may perform: a ceiling on live
    unique-table nodes, a ceiling on cache-missing kernel recursion
    steps, a monotonic wall-clock deadline, and an optional cooperative
    cancellation callback.  Every kernel ({!ite}, {!and_}, {!xor},
    {!exists}, {!and_exists}, {!constrain}, {!restrict},
    {!vector_compose}) consults the installed budget with a single cheap
    check in its cache-miss preamble and raises {!Budget_exhausted}
    there — a {e clean recursion boundary}: node interning and cache
    stores are individually atomic and only completed results are ever
    cached, so after the exception unwinds the unique table, the
    computed cache and the GC roots are all consistent.  Aborted work is
    merely discarded; re-running the same operation without a budget
    yields the canonical result.

    The wall clock and the cancellation callback are additionally polled
    once at every public operation's {e entry} — so an already-expired
    deadline (or an already-cancelled token) aborts the very next
    operation immediately, even one that would be answered entirely from
    the computed cache.  Inside a running operation they are then polled
    once every 1024 cache-missing steps, so mid-operation deadlines
    resolve with that granularity.  This entry check is what makes
    server-side deadline enforcement cheap: a request whose deadline
    passed while it queued dies on its first kernel call, not thousands
    of steps later. *)

module Budget : sig
  type reason =
    | Nodes of { limit : int; live : int }
    (** live unique-table nodes exceeded [limit] *)
    | Steps of { limit : int }
    (** cache-missing recursion steps exceeded [limit] *)
    | Time of { seconds : float }
    (** the monotonic deadline passed *)
    | Cancelled  (** the cancellation callback returned [true] *)

  type t
  (** A budget.  Mutable: the step count accumulates across every
      operation run while it is installed, so one [t] governs a whole
      task, not a single call.  Budgets are manager-local state — do not
      share one [t] across domains. *)

  val create :
    ?max_nodes:int ->
    ?max_steps:int ->
    ?timeout_s:float ->
    ?cancelled:(unit -> bool) ->
    unit ->
    t
  (** All limits are optional; omitted ones are unlimited.  [timeout_s]
      is converted to an absolute monotonic deadline at creation time.
      @raise Invalid_argument on non-positive [max_nodes]/[max_steps] or
      negative [timeout_s]. *)

  val steps : t -> int
  (** Recursion steps counted so far. *)

  val exhausted : t -> reason option
  (** The first reason this budget tripped, if it ever did (sticky).
      Lets callers that trap {!Budget_exhausted} internally — e.g. the
      anytime minimization schedule — report partiality afterwards. *)

  val reason_label : reason -> string
  (** Short stable label: ["nodes"], ["steps"], ["time"] or
      ["cancelled"] (used in DNF table rows). *)

  val reason_message : reason -> string
  (** Human-readable one-line description. *)
end

exception Budget_exhausted of Budget.reason
(** Raised by the kernels at a cache-miss boundary when the installed
    budget is exhausted.  The manager remains fully consistent. *)

val set_budget : man -> Budget.t option -> unit
(** Install (or clear, with [None]) the manager's budget. *)

val current_budget : man -> Budget.t option

val with_budget : man -> Budget.t -> (unit -> 'a) -> 'a
(** Run with the given budget installed, restoring the previously
    installed one on exit (also on exceptions). *)

val check_budget : man -> unit
(** Manually consult the installed budget (counts as one step, and polls
    the deadline and cancellation callback immediately).  For
    long-running loops outside the kernels — e.g. a reachability
    fixpoint — that want deadline and cancellation responsiveness even
    when individual operations keep hitting the cache. *)

(** {1 Engine events}

    Rare structural events — garbage collections and computed-cache
    growth — are published both to registered listeners and, when
    tracing is enabled, as [bdd.gc] / [bdd.cache_grow] instant events
    on the current {!Obs.Trace} sink, so they appear amid the spans of
    whatever operation triggered them. *)

type engine_event =
  | Gc_run of { reclaimed : int; live_nodes : int }
  (** A mark-and-sweep collection finished ([live_nodes] includes the
      terminal, matching {!Stats.t.live_nodes}). *)
  | Cache_grown of { old_capacity : int; new_capacity : int }
  (** The computed cache doubled (entry counts). *)
  | Table_grown of { old_capacity : int; new_capacity : int }
  (** The unique table doubled (slot counts).  Emitted by private
      managers only — shared-store stripes grow under their stripe lock
      and publish no per-view events.  This is the trigger
      [Reorder.Policy.On_growth] subscribes to. *)

val on_event : man -> (engine_event -> unit) -> unit
(** Register a listener, called after each event for the lifetime of
    the manager (listeners cannot be removed).  Listeners can fire {e in
    the middle of a kernel recursion} ({!engine_event.Cache_grown} and
    {!engine_event.Table_grown} are emitted from inside interning), so
    they must only record state — never run manager operations. *)

type reorder_policy_state = {
  rp_factor : int;
  rp_max_passes : int;
  mutable rp_passes : int;
  mutable rp_baseline : int;
  mutable rp_pending : bool;
}
(** Listener-side state of a dynamic-reordering policy.  Owned by
    [Reorder.Policy]; exposed here only so a rebuilt manager can inherit
    the installed policy.  Not for general use. *)

val reorder_state : man -> reorder_policy_state option
val set_reorder_state : man -> reorder_policy_state option -> unit

(** {1 Statistics} *)

(** Engine counters, all cumulative since manager creation except the
    occupancy figures. *)
module Stats : sig
  type t = {
    vars : int;
    live_nodes : int;  (** currently interned nodes, terminal included *)
    peak_live_nodes : int;
    interned_total : int;  (** nodes ever interned *)
    unique_capacity : int;
    external_refs : int;
    cache_entries : int;  (** occupied computed-cache slots *)
    cache_capacity : int;
    cache_lookups : int;
    cache_hits : int;
    cache_stores : int;
    cache_evictions : int;  (** overwrites of a different live entry *)
    ite_recursions : int;  (** cache-missing 3-operand ITE steps *)
    and_recursions : int;  (** cache-missing AND-kernel steps *)
    xor_recursions : int;  (** cache-missing XOR-kernel steps *)
    constrain_recursions : int;
    restrict_recursions : int;
    quantify_recursions : int;  (** cache-missing exists/forall steps *)
    and_exists_recursions : int;
    (** cache-missing fused conjoin-and-quantify steps *)
    interned_cubes : int;
    (** interned variable sets and substitution signatures (see
        {!cube_id}); the empty set is always present *)
    gc_runs : int;
    gc_reclaimed : int;  (** nodes swept over all runs *)
  }

  val hit_rate : t -> float
  (** Computed-cache hits per lookup, in [0, 1]. *)

  val delta : before:t -> after:t -> t
  (** Attribute engine work to one task: every monotone counter
      (recursions, cache traffic, interned totals, GC tallies) is
      [after - before]; level quantities (vars, live/peak nodes,
      capacities, occupancy, external refs) are taken from [after]
      unchanged.  With [before] and [after] bracketing a task on one
      manager, all counter fields are non-negative, and zero when the
      bracketed work was fully served from the computed cache. *)

  val pp : Format.formatter -> t -> unit
  val to_string : t -> string
end

val snapshot : man -> Stats.t
(** Current engine statistics. *)

val stats : man -> string
(** One-line human-readable manager statistics (a condensed
    {!snapshot}). *)

(** {1 Constants, variables and structure} *)

val one : man -> t
val zero : man -> t

val ithvar : man -> int -> t
(** [ithvar man i] is the projection function of variable [i] ([i >= 0]);
    creates intermediate variables as needed. *)

val is_one : t -> bool
val is_zero : t -> bool
val is_const : t -> bool

val equal : t -> t -> bool
(** Constant-time function equality (canonicity). *)

val compl : t -> t
(** Complement (constant time, flips the edge's complement bit). *)

val is_compl_pair : t -> t -> bool
(** [is_compl_pair f g] iff [g] is the complement of [f] (constant time). *)

val topvar : t -> int
(** Level of the root variable; [max_int] for constants. *)

val bot : t -> int
(** Bottom level of the root node's chain; equals {!topvar} on plain
    nodes (always, on a [`Bdd] manager) and [max_int] for constants. *)

val const_var : int
(** The pseudo-level of the terminal node ([max_int]). *)

val hi : man -> t -> t
(** Then-cofactor of the root with respect to its {e top} variable
    (complement bit of the edge pushed through).  For a constant, the
    edge itself.  On a chain node this is a constant — setting the top
    variable satisfies the OR chain.  Takes the manager because the
    else-cofactor of a chain node re-roots (interns) the chain suffix. *)

val lo : man -> t -> t
(** Else-cofactor of the root with respect to its top variable,
    likewise.  On a chain node this is the chain shortened by one
    level. *)

val branches : man -> t -> int -> t * t
(** [branches man f v] is the paper's [bdd_get_branches]: [(then, else)]
    cofactors of [f] with respect to variable [v] when [topvar f = v], and
    [(f, f)] when [f] is independent of [v] (i.e. [topvar f > v]).
    Requires [topvar f >= v]. *)

val uid : t -> int
(** Stable integer identifier of the edge, unique within its manager
    (complement bit included); usable as a hash key. *)

val node_id : t -> int
(** Identifier of the underlying node, ignoring the complement bit. *)

(** {1 Boolean operations} *)

val ite : man -> t -> t -> t -> t
(** If-then-else: [ite man f g h = f·g + ¬f·h].  Calls whose arms make
    it a binary connective (a constant [g] or [h], or [h = ¬g]) are
    dispatched to the specialized kernels below, after the standard
    collapses. *)

val and_ : man -> t -> t -> t
(** Conjunction, by a specialized two-operand kernel: direct recursion
    with its own terminal rules and a tagged two-operand computed-cache
    opcode, rather than 3-operand ITE normalization. *)

val or_ : man -> t -> t -> t
(** Disjunction; De Morgan over {!and_}, so both share one cache. *)

val xor : man -> t -> t -> t
(** Exclusive or, likewise specialized; operand complement bits are
    factored into a result sign, so all four complement combinations
    of the operands share one cache entry. *)

(** [dand]/[dor]/[dxor] are aliases of {!and_}/{!or_}/{!xor} (the
    historical names). *)

val dand : man -> t -> t -> t

val dor : man -> t -> t -> t

val dxor : man -> t -> t -> t
val dxnor : man -> t -> t -> t
val dnand : man -> t -> t -> t
val dnor : man -> t -> t -> t
val imply : man -> t -> t -> t
val diff : man -> t -> t -> t
(** [diff man f g = f·¬g]. *)

val conj : man -> t list -> t
val disj : man -> t list -> t

val leq : man -> t -> t -> bool
(** Containment: [leq man f g] iff [f ≤ g] as functions. *)

val cofactor : man -> t -> var:int -> bool -> t
(** Shannon cofactor of [f] with respect to variable [var] set to the given
    phase (works for any position of [var] in the order). *)

val cube_id : man -> int list -> int
(** Stable identifier of the sorted, deduplicated variable set, interned
    in the manager's cube table.  Two lists denoting the same set get the
    same id; quantification keys its computed-cache entries on these ids,
    so results persist across calls that quantify the same set.  Mostly
    useful for tests and diagnostics. *)

val interned_sets : man -> int
(** Number of interned variable sets / substitution signatures, the empty
    set included (equals {!Stats.t.interned_cubes}). *)

val exists : man -> int list -> t -> t
(** Existential quantification over the listed variables.  Results are
    memoized in the manager's computed cache keyed by the interned
    variable-set suffix still to quantify, so repeated quantifications of
    the same set (reachability images) hit across calls. *)

val forall : man -> int list -> t -> t
(** Universal quantification over the listed variables (memoized like
    {!exists}). *)

val and_exists : man -> int list -> t -> t -> t
(** [and_exists man vars f g = ∃ vars. f·g], computed without building the
    full conjunction first (the image-computation workhorse).  Operands
    are canonicalized by commutativity and results persist in the
    computed cache like {!exists}. *)

val compose : man -> t -> var:int -> t -> t
(** [compose man f ~var g] substitutes function [g] for variable [var]
    in [f]. *)

val vector_compose : man -> t -> (int * t) list -> t
(** Simultaneous substitution of several variables (the substituted
    functions see the original variable values).  When a variable is
    bound more than once, the last binding wins.  The substitution is
    interned as a signature so results persist in the computed cache
    across calls — renaming with the same pairs every image is a cache
    hit. *)

val rename : man -> t -> (int * int) list -> t
(** [rename man f pairs] renames variable [a] to [b] for each [(a, b)];
    a simultaneous substitution by projection functions. *)

(** {1 Generalized cofactors} *)

val constrain : man -> t -> t -> t
(** Coudert/Madre's [constrain] (generalized cofactor) of [f] by care set
    [c].  Requires [c <> zero].  The result is a cover of [[f; c]]. *)

val restrict : man -> t -> t -> t
(** Coudert/Madre's [restrict] of [f] by care set [c].  Requires
    [c <> zero].  The result is a cover of [[f; c]] whose support never
    gains variables absent from [f]. *)

(** {1 Inspection} *)

val size : man -> t -> int
(** Number of distinct {e physical} nodes reachable from the edge,
    {e including} the terminal node — the paper's [|f|] on a plain
    manager, the chain-compressed count on a [`Cbdd] one ( =
    {!Metric.nodes}).  [size] of a constant is 1. *)

val shared_size : man -> t list -> int
(** Node count of the shared DAG of several functions (terminal included
    once). *)

val support : man -> t -> int list
(** Variables the function depends on, in increasing level order. *)

val eval : t -> (int -> bool) -> bool
(** Evaluate under an assignment given as a predicate on variables. *)

val sat_count : man -> t -> nvars:int -> float
(** Number of satisfying assignments over a space of [nvars] variables.
    [nvars] must be at least the number of variables in the function's
    support (the count, not the highest index — supports need not be
    contiguous); otherwise the scaled density would be a silent
    undercount, so @raise Invalid_argument instead. *)

val iter_nodes : man -> t -> (int -> int -> unit) -> unit
(** [iter_nodes man f k] calls [k node_id var] once per reachable
    physical node, terminal included (with [var = const_var]).  On a
    chain node [var] is the {e top} level. *)

(** {1 Size metrics}

    The single entry point for size accounting: every table, CSV and
    JSON size column should come from here.  On a plain manager all
    three metrics coincide with {!size}. *)
module Metric : sig
  val nodes : man -> t -> int
  (** Physical (representation-dependent) node count, terminal included;
      always equals {!size}. *)

  val chain_nodes : man -> t -> int
  (** How many of those physical nodes are compressed chains
      ([bot > var]); [0] on a plain manager. *)

  val plain_equivalent : man -> t -> int
  (** The node count the same function has as a {e plain} BDD — the
      representation-independent metric minimization verdicts are judged
      on.  Exact: chain nodes are expanded into virtual plain nodes and
      deduplicated globally (shared chain tails and coincident physical
      nodes are counted once). *)

  val shared_nodes : man -> t list -> int
  val shared_chain_nodes : man -> t list -> int

  val shared_plain_equivalent : man -> t list -> int
  (** The same three metrics over the shared DAG of several functions. *)
end

val nodes_at_level : man -> t -> int -> int
(** Number of distinct nodes rooted at the given level. *)

val count_below : man -> t -> int -> int
(** The paper's [N_i(g)]: number of distinct nodes rooted strictly below
    level [i] (terminal included). *)

(** {1 Concurrent manager tier}

    A {!Shared.store} is a node space several domains can safely share:
    a striped open-addressed unique table (the stripe is chosen from
    hash bits disjoint from the in-stripe probe bits, so concurrent
    interns rarely contend on a lock) plus a stop-the-world
    mark-and-sweep collector.  Each participating domain {!Shared.attach}es
    a {e view} — an ordinary {!man} whose interning is routed to the
    store while its computed cache, cube tables, external roots, budget
    and statistics stay domain-local, eliminating cache-line ping-pong
    on the apply hot path.

    Safety contract:
    - a view is used by at most one domain at a time (views may migrate
      between domains, e.g. through {!Shared.with_view}, but never
      concurrently);
    - edges are freely shareable across views of the same store —
      canonicity is store-wide, so [equal] works between results
      produced by different domains;
    - public operations on views participate in the GC barrier; a
      collection stops the world, marks from {e every} view's registered
      roots and projection functions, sweeps the stripes and resets
      every view's computed cache;
    - automatic collection needs unanimous consent: any view inside
      {!without_auto_gc} vetoes the trigger store-wide, so fixpoint
      loops keep their un-rooted working sets canonical even while other
      domains keep operating;
    - read-only inspection ({!size}, {!support}, {!eval}, {!iter_nodes})
      is safe concurrently with interning, but as in the private engine
      un-rooted edges may lose canonicity across a collection. *)

module Shared : sig
  type store
  (** A shared node store.  Thread-safe; create once, attach a view per
      worker domain. *)

  val create : ?nvars:int -> ?stripes:int -> ?repr:repr -> unit -> store
  (** [create ()] builds an empty store.  [stripes] (default 64, rounded
      up to a power of two, clamped to [1, 1024]) is the unique-table
      stripe count: each stripe is an independently locked and
      independently grown open-addressed table.  [repr] (default
      [`Bdd]) fixes the node representation of every view. *)

  val attach :
    ?cache_bits:int -> ?cache_budget:int -> ?auto_gc:bool -> store -> man
  (** Attach a fresh view for the calling domain (parameters as in
      {!new_man}, governing the view's private computed cache).  The
      view is registered as a GC root source until {!detach}. *)

  val detach : man -> unit
  (** Deregister a view: its external roots stop protecting nodes at
      the next collection.  @raise Invalid_argument on a private
      manager. *)

  val with_view : store -> (man -> 'a) -> 'a
  (** [with_view store f] checks out an idle view (reusing previously
      returned ones, so a worker pool pays the view's cache allocation
      only once per concurrency level), runs [f] and returns the view
      to the idle pool (also on exceptions).  The caller must not leak
      the view outside [f]. *)

  val store_of : man -> store option
  (** The store a view is attached to; [None] for private managers. *)

  val is_shared : man -> bool

  val view_count : store -> int
  (** Number of currently attached views ({!Reorder.sift} refuses a
      manager whose store has more than one). *)

  val stripes : store -> int

  val live_nodes : store -> int
  (** Store-wide live node count, terminal excluded. *)

  type telemetry = {
    stripes : int;
    views : int;
    live_nodes : int;
    peak_live_nodes : int;
    interned_total : int;
    intern_retries : int;
    (** interns that found their stripe lock already held *)
    gc_runs : int;
    gc_reclaimed : int;
    barrier_waits : int;
    (** times any domain blocked at the GC barrier (mutators parking
        plus collectors awaiting quiescence) *)
    barrier_wait_ns : int;  (** total nanoseconds spent in those waits *)
  }

  val telemetry : store -> telemetry

  val self_check : store -> int
  (** Audit the store: canonical-form invariants on every interned node
      and store-wide uniqueness of [(var, then, else)] triples.  Returns
      the live node count.  Stops no clocks but takes every stripe lock;
      meant for tests.  @raise Failure on any violation. *)
end
