type literal = int * bool
type cube = literal list

let of_cube man c =
  let add acc (v, phase) =
    let lit = Core_dd.ithvar man v in
    let lit = if phase then lit else Core_dd.compl lit in
    Core_dd.dand man acc lit
  in
  List.fold_left add (Core_dd.one man) c

let to_cube man f =
  let rec go acc f =
    if Core_dd.is_one f then Some (List.rev acc)
    else if Core_dd.is_zero f then None
    else
      let v = Core_dd.topvar f in
      let t = Core_dd.hi man f and e = Core_dd.lo man f in
      if Core_dd.is_zero e then go ((v, true) :: acc) t
      else if Core_dd.is_zero t then go ((v, false) :: acc) e
      else None
  in
  go [] f

let is_cube man f = to_cube man f <> None

exception Stop

let iter_cubes ?limit man f k =
  let remaining = ref (match limit with Some n -> n | None -> max_int) in
  let rec go acc f =
    if Core_dd.is_one f then begin
      if !remaining <= 0 then raise Stop;
      decr remaining;
      k (List.rev acc)
    end
    else if not (Core_dd.is_zero f) then begin
      let v = Core_dd.topvar f in
      go ((v, true) :: acc) (Core_dd.hi man f);
      go ((v, false) :: acc) (Core_dd.lo man f)
    end
  in
  match limit with
  | Some n when n <= 0 -> ()
  | _ -> ( try go [] f with Stop -> ())

let all_cubes ?limit man f =
  let acc = ref [] in
  iter_cubes ?limit man f (fun c -> acc := c :: !acc);
  List.rev !acc

let any_cube man f =
  let found = ref None in
  iter_cubes ~limit:1 man f (fun c -> found := Some c);
  ignore man;
  !found

let literal_count c = List.length c

(* Fewest-literal path to the 1 terminal: dynamic programming on nodes. *)
let short_cube man f =
  if Core_dd.is_zero f then None
  else begin
    let memo = Hashtbl.create 64 in
    (* best path (length, reversed literals) from edge to constant one *)
    let rec best f =
      if Core_dd.is_one f then Some (0, [])
      else if Core_dd.is_zero f then None
      else
        match Hashtbl.find_opt memo (Core_dd.uid f) with
        | Some r -> r
        | None ->
          let v = Core_dd.topvar f in
          let via phase child =
            match best child with
            | None -> None
            | Some (n, lits) -> Some (n + 1, (v, phase) :: lits)
          in
          let r =
            match (via true (Core_dd.hi man f), via false (Core_dd.lo man f)) with
            | (Some (a, la), Some (b, lb)) ->
              if a <= b then Some (a, la) else Some (b, lb)
            | (Some r, None) | (None, Some r) -> Some r
            | (None, None) -> None
          in
          Hashtbl.add memo (Core_dd.uid f) r;
          r
    in
    ignore man;
    match best f with
    | None -> None
    | Some (_, lits) -> Some lits
  end

let pp ppf c =
  match c with
  | [] -> Format.pp_print_string ppf "1"
  | _ ->
    let pp_lit ppf (v, phase) =
      Format.fprintf ppf "%sx%d" (if phase then "" else "\xc2\xac") v
    in
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "\xc2\xb7")
      pp_lit ppf c
