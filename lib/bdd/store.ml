let edge_syntax id complemented =
  if complemented then "!" ^ string_of_int id else string_of_int id

let is_complemented e = Core_dd.uid e land 1 = 1

(* A root name round-trips iff [load]'s space-splitting line parser can
   recover it: non-empty and free of any whitespace (space, tab, newline,
   carriage return — the latter two would also corrupt the line
   structure, and a CR would be silently eaten by [String.trim] on the
   way back in). *)
let root_name_roundtrips name =
  name <> ""
  && not
       (String.exists
          (fun c -> c = ' ' || c = '\t' || c = '\n' || c = '\r')
          name)

let save man roots =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "bdd 1\n";
  let emitted = Hashtbl.create 64 in
  let edge_ref e = edge_syntax (Core_dd.node_id e) (is_complemented e) in
  (* Emit nodes children-first.  [visit] walks the regular view. *)
  let rec visit e =
    let id = Core_dd.node_id e in
    if id <> 0 && not (Hashtbl.mem emitted id) then begin
      let reg = if is_complemented e then Core_dd.compl e else e in
      (* Chain nodes serialize through their cofactors: the lo cofactor
         of a chain is its interned one-level-shorter suffix, so the
         "bdd 1" format stays representation-agnostic. *)
      let hi = Core_dd.hi man reg and lo = Core_dd.lo man reg in
      visit hi;
      visit lo;
      Hashtbl.add emitted id ();
      Buffer.add_string buf
        (Printf.sprintf "node %d %d %s %s\n" id (Core_dd.topvar reg)
           (edge_ref hi) (edge_ref lo))
    end
  in
  List.iter (fun (_, e) -> visit e) roots;
  let seen_names = Hashtbl.create 8 in
  List.iter
    (fun (name, e) ->
       if not (root_name_roundtrips name) then
         invalid_arg
           (Printf.sprintf
              "Store.save: root name %S cannot round-trip (must be \
               non-empty and contain no whitespace)"
              name);
       if Hashtbl.mem seen_names name then
         invalid_arg
           (Printf.sprintf "Store.save: duplicate root name %S" name);
       Hashtbl.add seen_names name ();
       Buffer.add_string buf (Printf.sprintf "root %s %s\n" name (edge_ref e)))
    roots;
  Buffer.contents buf

let save_file path man roots =
  let oc = open_out path in
  output_string oc (save man roots);
  close_out oc

exception Bad of string

let load man text =
  let table : (int, Core_dd.t) Hashtbl.t = Hashtbl.create 64 in
  Hashtbl.add table 0 (Core_dd.one man);
  let parse_edge s =
    let complemented = String.length s > 0 && s.[0] = '!' in
    let id_str = if complemented then String.sub s 1 (String.length s - 1) else s in
    match int_of_string_opt id_str with
    | None -> raise (Bad ("bad edge " ^ s))
    | Some id -> (
        match Hashtbl.find_opt table id with
        | None -> raise (Bad (Printf.sprintf "unknown node id %d" id))
        | Some e -> if complemented then Core_dd.compl e else e)
  in
  let roots = ref [] in
  let root_names = Hashtbl.create 8 in
  (* The header is the first non-blank line, wherever that falls: leading
     blank lines (or trailing ones a transport appended) must not shift a
     valid document into a parse error. *)
  let header_seen = ref false in
  let handle lineno line =
    match String.split_on_char ' ' (String.trim line) with
    | [ "" ] -> ()
    | [ "bdd"; "1" ] when not !header_seen -> header_seen := true
    | [ "bdd"; v ] when not !header_seen ->
      raise (Bad ("unsupported version " ^ v))
    | _ when not !header_seen ->
      raise
        (Bad
           (Printf.sprintf "line %d: expected the \"bdd 1\" header, got %S"
              (lineno + 1) line))
    | [ "node"; id; var; hi; lo ] -> begin
        match (int_of_string_opt id, int_of_string_opt var) with
        | (Some id, Some var) when id > 0 && var >= 0 ->
          if Hashtbl.mem table id then
            raise (Bad (Printf.sprintf "duplicate node id %d" id));
          let hi = parse_edge hi and lo = parse_edge lo in
          if var >= Core_dd.topvar hi || var >= Core_dd.topvar lo then
            raise (Bad (Printf.sprintf "node %d violates the order" id));
          (* Re-canonicalize through ITE (also tolerates redundant nodes). *)
          let e = Core_dd.ite man (Core_dd.ithvar man var) hi lo in
          Hashtbl.add table id e
        | _ -> raise (Bad ("bad node line: " ^ line))
      end
    | [ "root"; name; edge ] ->
      if Hashtbl.mem root_names name then
        raise (Bad (Printf.sprintf "duplicate root name %S" name));
      Hashtbl.add root_names name ();
      roots := (name, parse_edge edge) :: !roots
    | _ -> raise (Bad (Printf.sprintf "line %d: cannot parse %S" (lineno + 1) line))
  in
  match
    List.iteri handle (String.split_on_char '\n' text);
    List.rev !roots
  with
  | roots ->
    if roots = [] then Error "no roots in input" else Ok roots
  | exception Bad msg -> Error msg

let load_file man path =
  match
    let ic = open_in path in
    let len = in_channel_length ic in
    let text = really_input_string ic len in
    close_in ic;
    text
  with
  | text -> load man text
  | exception Sys_error e -> Error e
