(** Variable reordering.

    The paper's problem statement fixes the variable order, but choosing
    that order well is the complementary lever on BDD size, so the package
    provides it.  Nodes here are immutable and hash-consed, so reordering
    is {e rebuild-based}: functions are reconstructed in a fresh manager
    whose levels correspond to a permuted variable order, rather than by
    in-place level swaps.

    Terminology: a {e placement} maps each original variable [v] to its
    new level [placement.(v)].  The rebuilt function over the new manager
    satisfies [new_f(y_{placement.(v)} := b_v) = old_f(x_v := b_v)]. *)

val rebuild :
  Core_dd.man -> placement:int array -> Core_dd.t list ->
  Core_dd.man * Core_dd.t list
(** Rebuild the functions into a fresh manager under the placement.
    [placement] must be injective on the union support (checked).  The
    originals are untouched.  The rebuilt results are left rooted in the
    target manager (see {!Core_dd.ref_}), and intermediate results are
    rooted for the duration of the rebuild, so target-manager garbage
    collections are safe throughout. *)

val shared_size_under :
  Core_dd.man -> placement:int array -> Core_dd.t list -> int
(** Shared node count the functions would have under the placement
    (computed in a scratch manager). *)

val sift :
  ?max_rounds:int ->
  Core_dd.man ->
  Core_dd.t list ->
  int array * int
(** Greedy sifting: repeatedly take each variable (most populous level
    first) and move it to the position in the current order that
    minimizes the shared node count, until a round yields no improvement
    or [max_rounds] (default 2) rounds are done.  Candidate orders are
    memoized, and the no-op insertion (putting a variable back where it
    is) is skipped, so each distinct order costs at most one rebuild.
    Returns the best placement found (never worse than the identity) and
    its shared size.

    @raise Invalid_argument when [man] is a view of a
    {!Core_dd.Shared.store} with more than one registered view: the
    repeated measurement walks would race other domains' collections.
    Detach down to a single view before reordering. *)

val sift_apply :
  ?max_rounds:int ->
  Core_dd.man ->
  Core_dd.t list ->
  int array * Core_dd.man * Core_dd.t list
(** {!sift} followed by {!rebuild} under the winning placement. *)

val remap_cube : placement:int array -> int list -> int list
(** Rename a quantification-cube variable set under a placement.

    A rebuild renames variable [v] to [placement.(v)], but interned
    cubes ({!Core_dd.cube_id}) are variable-{e name} sets interned in
    the {e source} manager: their ids are meaningless against the
    rebuilt manager, and even the raw variable lists point at the old
    names.  Any cube carried across {!rebuild}/{!sift_apply} (or a
    {!Policy.check} swap) must be passed through this function and
    re-interned in the target manager.
    @raise Invalid_argument when a variable falls outside the
    placement. *)

(** Event-driven dynamic reordering.

    A policy installed on a manager watches
    {!Core_dd.engine_event.Table_grown} events (emitted when the
    private unique table doubles) and latches a {e pending} flag once
    the table has grown by the configured factor over its size at
    installation.  Listeners fire mid-kernel, so the sift itself never
    runs from the event: callers invoke {!check} at clean operation
    boundaries, where a pending flag triggers one sifting pass. *)
module Policy : sig
  type t =
    | Manual  (** never reorder automatically (the default) *)
    | On_growth of { factor : int; max_passes : int }
    (** arm a sift once the unique table grows [factor]x beyond its
        capacity at installation, at most [max_passes] times over the
        manager's lifetime (counted across rebuilds) *)

  val install : Core_dd.man -> t -> unit
  (** Install the policy (replacing any previous one; [Manual] clears).
      @raise Invalid_argument on [factor < 2] or [max_passes < 1]. *)

  val installed : Core_dd.man -> t
  (** The currently installed policy. *)

  val pending : Core_dd.man -> bool
  (** Whether a growth event has armed a reordering pass. *)

  val check :
    ?max_rounds:int ->
    Core_dd.man ->
    Core_dd.t list ->
    (int array * Core_dd.man * Core_dd.t list) option
  (** Run the armed pass, if any: [None] when nothing is pending, when
      the pass allowance is spent, when the manager is a multi-view
      shared store (see {!sift}'s restriction — checked, not raised),
      or when the installed budget is already exhausted
      ({!Core_dd.Budget_exhausted} is trapped and reported as [None],
      with the pending flag consumed).  On success, behaves like
      {!sift_apply}; the rebuilt manager inherits the representation,
      the policy (with one more pass spent) and the source's budget.
      Remember {!remap_cube} for any interned cubes. *)
end
