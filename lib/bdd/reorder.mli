(** Variable reordering.

    The paper's problem statement fixes the variable order, but choosing
    that order well is the complementary lever on BDD size, so the package
    provides it.  Nodes here are immutable and hash-consed, so reordering
    is {e rebuild-based}: functions are reconstructed in a fresh manager
    whose levels correspond to a permuted variable order, rather than by
    in-place level swaps.

    Terminology: a {e placement} maps each original variable [v] to its
    new level [placement.(v)].  The rebuilt function over the new manager
    satisfies [new_f(y_{placement.(v)} := b_v) = old_f(x_v := b_v)]. *)

val rebuild :
  Core_dd.man -> placement:int array -> Core_dd.t list ->
  Core_dd.man * Core_dd.t list
(** Rebuild the functions into a fresh manager under the placement.
    [placement] must be injective on the union support (checked).  The
    originals are untouched.  The rebuilt results are left rooted in the
    target manager (see {!Core_dd.ref_}), and intermediate results are
    rooted for the duration of the rebuild, so target-manager garbage
    collections are safe throughout. *)

val shared_size_under :
  Core_dd.man -> placement:int array -> Core_dd.t list -> int
(** Shared node count the functions would have under the placement
    (computed in a scratch manager). *)

val sift :
  ?max_rounds:int ->
  Core_dd.man ->
  Core_dd.t list ->
  int array * int
(** Greedy sifting: repeatedly take each variable (most populous level
    first) and move it to the position in the current order that
    minimizes the shared node count, until a round yields no improvement
    or [max_rounds] (default 2) rounds are done.  Candidate orders are
    memoized, and the no-op insertion (putting a variable back where it
    is) is skipped, so each distinct order costs at most one rebuild.
    Returns the best placement found (never worse than the identity) and
    its shared size.

    @raise Invalid_argument when [man] is a view of a
    {!Core_dd.Shared.store} with more than one registered view: the
    repeated measurement walks would race other domains' collections.
    Detach down to a single view before reordering. *)

val sift_apply :
  ?max_rounds:int ->
  Core_dd.man ->
  Core_dd.t list ->
  int array * Core_dd.man * Core_dd.t list
(** {!sift} followed by {!rebuild} under the winning placement. *)
