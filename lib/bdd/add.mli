(** Algebraic decision diagrams (MTBDDs) with integer terminals: maps
    from Boolean assignments to integers, hash-consed like {!Core_dd}
    (without complement edges — they have no canonical meaning over
    arbitrary terminals).

    Variables are shared conceptually with a BDD manager: variable [v]
    here means the same level-[v] decision.  The classic uses in this
    package are counting and distance maps (see {!Fsm.Depth}). *)

type man
type t

val new_man : unit -> man

val const : man -> int -> t
val is_const : t -> bool

val value : t -> int option
(** [Some k] for the constant [k]. *)

val equal : t -> t -> bool

val ite_var : man -> int -> t -> t -> t
(** [ite_var man v t e]: variable test at level [v]; requires [v] above
    the tops of [t] and [e]. *)

val of_bdd : man -> Core_dd.man -> Core_dd.t -> high:int -> low:int -> t
(** Map a BDD to the ADD sending its onset to [high] and offset to
    [low]. *)

val to_bdd : man -> t -> pred:(int -> bool) -> Core_dd.man -> Core_dd.t
(** Threshold abstraction: the BDD (over the same variables) of the
    assignments whose value satisfies [pred]. *)

val apply2 : man -> (int -> int -> int) -> t -> t -> t
(** Pointwise combination (memoized per call). *)

val map : man -> (int -> int) -> t -> t
(** Pointwise transformation. *)

val add : man -> t -> t -> t
val min2 : man -> t -> t -> t
val max2 : man -> t -> t -> t

val eval : t -> (int -> bool) -> int

val min_value : man -> t -> int
val max_value : man -> t -> int
(** Extremal terminal values reachable in the ADD. *)

val size : man -> t -> int
(** Distinct nodes, terminals included. *)

val terminals : man -> t -> int list
(** Sorted distinct terminal values. *)
