(** Textual serialization of shared BDD DAGs.

    Format (line-oriented, human-diffable):
    {v
      bdd 1                          header, format version
      node <id> <var> <hi> <lo>      one line per internal node,
                                     children before parents;
                                     edge syntax: <id> or !<id>, 0 = terminal
      root <name> <edge>             one line per named root
    v}
    Node ids are arbitrary positive integers unique within the file; the
    terminal is id 0 (so the constant one is edge [0] and zero is [!0]).
    The header must be the first non-blank line (blank lines are ignored
    anywhere).  Loading reconstructs the functions in any manager,
    re-establishing maximal sharing through the unique table. *)

val save : Core_dd.man -> (string * Core_dd.t) list -> string
(** Serialize the shared DAG of the named roots.
    @raise Invalid_argument on a root name that would not round-trip
    through {!load} — empty, containing whitespace (space, tab, newline,
    carriage return), or duplicated. *)

val save_file : string -> Core_dd.man -> (string * Core_dd.t) list -> unit

val load : Core_dd.man -> string -> ((string * Core_dd.t) list, string) result
(** Parse and rebuild in the given manager.  Fails on malformed input,
    a missing header, unknown ids, duplicate node ids or root names, or
    order violations ([var] must be strictly smaller than the children's
    variables).  Never raises on malformed input: every syntax problem
    is an [Error]. *)

val load_file : Core_dd.man -> string -> ((string * Core_dd.t) list, string) result
