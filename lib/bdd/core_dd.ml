(* ROBDDs with output-complement edges, hash-consed in a unique table.
   Canonical form invariants:
   - every node's [n_hi] (then) edge is regular (complement bit clear);
   - a node's variable level is strictly smaller than its children's;
   - no node has [n_hi == n_lo];
   hence two edges denote the same function iff node pointers and complement
   bits coincide.

   Chain reduction (CBDD, Bryant 2018): a manager created with
   [chain = true] additionally compresses OR-chains.  Every node carries a
   [bot] level with [var <= bot]; a node [(t, b, h, l)] denotes

     x_t \/ x_{t+1} \/ ... \/ x_{b-1} \/ (if x_b then h else l)

   so a plain node is the [var = bot] special case and a linear chain of
   [b - t] one-armed nodes collapses to a single node.  Complement edges
   give the dual for free: a complemented chain edge is a conjunction of
   negated literals (the don't-care chains of sparse functions and
   cube sets).  Chain canonical form, on top of the plain invariants:
   - [var <= bot < topvar n_hi] and [bot < topvar n_lo];
   - for [var < bot], [n_hi != n_lo] (the redundant [(t,b,g,g)] form is
     rewritten to [(t,b-1,one,g)]);
   - absorption: no node has [n_hi = one] with a {e regular} [n_lo]
     rooted exactly at level [bot + 1] — such a pair merges into the
     longer chain [(var, bot(n_lo), hi(n_lo), lo(n_lo))].
   Under these rules each Boolean function keeps a unique representation,
   so hash-consed equality still decides semantic equality.  Managers
   with [chain = false] never create [var < bot] nodes and behave exactly
   as before.

   Storage layer (CUDD-style):
   - the unique table is a custom open-addressed (linear-probing) array of
     nodes, grown at 75% load and garbage-collected by mark-and-sweep from
     the external roots registered through [ref_]/[deref]/[with_root] (plus
     the projection functions, which are permanent);
   - the computed cache is a fixed-size, power-of-two, direct-mapped lossy
     cache keyed by packed integers: a probe allocates nothing, a store
     simply overwrites (evictions are counted), and the cache adaptively
     doubles up to a byte budget when conflict evictions are heavy.

   Garbage collection removes dead nodes from the unique table so the OCaml
   GC can reclaim them.  Edges still held by un-rooted OCaml values remain
   structurally valid after a collection — operations on them stay
   semantically correct — but they may lose canonicity (an equal function
   rebuilt later gets a fresh node), so code that keeps edges across
   operations and wants physical equality must root them. *)

type node = {
  id : int;
  var : int;                    (* top level; [max_int] for the terminal *)
  bot : int;                    (* chain bottom level; [= var] when plain *)
  n_hi : t;                     (* invariant: regular *)
  n_lo : t;
  mutable mark : bool;          (* mark-and-sweep bit; clear outside GC *)
}

and t = { neg : bool; node : node }

type engine_event =
  | Gc_run of { reclaimed : int; live_nodes : int }
  | Cache_grown of { old_capacity : int; new_capacity : int }
  | Table_grown of { old_capacity : int; new_capacity : int }

type repr = [ `Bdd | `Cbdd ]

(* Listener-side state of an [On_growth] reordering policy (owned by
   [Reorder.Policy]; the engine only stores it so a rebuilt manager can
   inherit the installed policy). *)
type reorder_policy_state = {
  rp_factor : int;
  rp_max_passes : int;
  mutable rp_passes : int;
  mutable rp_baseline : int;            (* capacity the factor is judged against *)
  mutable rp_pending : bool;            (* set by the listener, consumed at a
                                           clean operation boundary *)
}

(* Resource budgets.  A budget is installed per manager and consulted by
   the kernels exactly at their cache-missing recursion steps (where the
   per-operation counters increment) — a clean boundary: interning and
   cache stores are atomic and only completed results are ever cached, so
   unwinding [Budget_exhausted] from there leaves the unique table, the
   computed cache and the GC roots consistent. *)
type budget_reason =
  | Nodes of { limit : int; live : int }
  | Steps of { limit : int }
  | Time of { seconds : float }
  | Cancelled

type budget = {
  b_max_nodes : int;            (* max_int = unlimited *)
  b_max_steps : int;            (* max_int = unlimited *)
  b_deadline_ns : int64;        (* Int64.max_int = none *)
  b_seconds : float;            (* original timeout, for the reason *)
  b_cancelled : unit -> bool;
  mutable b_steps : int;
  mutable b_exhausted : budget_reason option;   (* sticky: first trip *)
}

(* A manager is either private (the historical domain-local design: its
   own unique table in [uslots]) or a per-domain *view* of a shared node
   store ([shared = Some _]): interning then goes to the store's striped
   table and the view keeps only domain-local state — the computed
   cache, the cube/signature interning tables, the external roots, the
   budget and the statistics counters.  Dispatch is a single match on
   the immutable [shared] field, so the private hot paths are
   unchanged. *)
type man = {
  chain : bool;                 (* chain-reduced (CBDD) representation *)
  mutable vars : int;
  (* unique table: open-addressed, [terminal] is the empty-slot sentinel *)
  mutable uslots : node array;
  mutable umask : int;                            (* capacity - 1 *)
  mutable ucount : int;                           (* live nodes, terminal excluded *)
  (* computed cache: direct-mapped, parallel arrays, [min_int] = empty key *)
  mutable ck0 : int array;                        (* packed (op tag, uid a) *)
  mutable ck1 : int array;
  mutable ck2 : int array;
  mutable cres : t array;
  mutable cmask : int;
  mutable centries : int;
  cache_max_entries : int;
  mutable evict_since_resize : int;
  mutable next_id : int;
  terminal : node;
  top : t;                                        (* the [one] edge *)
  mutable made : int;                             (* nodes ever interned *)
  (* interned integer arrays: sorted variable sets ("cubes") and
     substitution signatures get a stable small id, so quantification and
     composition can use the packed computed cache across calls *)
  iarr_ids : (int array, int) Hashtbl.t;
  mutable next_iarr : int;
  cube_suffixes : (int, int array) Hashtbl.t;     (* cube id -> suffix ids *)
  (* external roots *)
  mutable var_edges : t option array;             (* projection functions *)
  refs : (int, node * int ref) Hashtbl.t;         (* node id -> refcount *)
  mutable auto_gc : bool;
  mutable gc_wanted : bool;
  mutable budget : budget option;
  (* statistics *)
  mutable n_ite : int;
  mutable n_and : int;
  mutable n_xor : int;
  mutable n_constrain : int;
  mutable n_restrict : int;
  mutable n_quantify : int;
  mutable n_and_exists : int;
  mutable c_lookups : int;
  mutable c_hits : int;
  mutable c_stores : int;
  mutable c_evicts : int;
  mutable gc_runs : int;
  mutable gc_nodes : int;
  mutable peak_live : int;
  (* observability: engine-event listeners (GC runs, cache growth) *)
  mutable listeners : (engine_event -> unit) list;
  (* dynamic-reordering policy installed by [Reorder.Policy] *)
  mutable reorder_state : reorder_policy_state option;
  (* concurrent tier: Some store makes this manager a per-domain view *)
  shared : shared option;
  mutable op_depth : int;       (* nesting of barrier-bracketed operations *)
}

(* Shared node store: a striped open-addressed unique table plus the
   stop-the-world GC barrier.  The stripe index comes from hash bits
   well above the in-stripe probe bits, so two concurrent interns of
   different nodes rarely meet on a lock; within a stripe the probe
   sequence is the classical linear one.  All global quantities (node
   ids, live count, telemetry) are atomics. *)
and shared = {
  sh_chain : bool;                                (* representation of every view *)
  sh_stripes : stripe array;                      (* length is a power of two *)
  sh_terminal : node;
  sh_top : t;
  sh_next_id : int Atomic.t;
  sh_made : int Atomic.t;                         (* nodes ever interned *)
  sh_live : int Atomic.t;                         (* live across all stripes *)
  sh_peak : int Atomic.t;
  sh_vars : int Atomic.t;                         (* max over views *)
  sh_ext_refs : int Atomic.t;                     (* distinct rooted nodes, all views *)
  sh_gc_wanted : bool Atomic.t;
  sh_no_auto : int Atomic.t;                      (* views with auto-GC suspended *)
  (* stop-the-world barrier: mutators hold [sh_active] while inside an
     operation; a collector raises [sh_gc_pending], waits for the count
     to drain to zero, and new entrants park on [sh_cv] *)
  sh_active : int Atomic.t;
  sh_gc_pending : bool Atomic.t;
  sh_lock : Mutex.t;                              (* views list + barrier waits *)
  sh_cv : Condition.t;
  sh_gc_lock : Mutex.t;                           (* serializes collectors *)
  mutable sh_views : man list;                    (* under sh_lock *)
  mutable sh_free : man list;                     (* reusable views, under sh_lock *)
  (* telemetry *)
  sh_intern_retries : int Atomic.t;               (* contended stripe locks *)
  sh_barrier_waits : int Atomic.t;
  sh_barrier_wait_ns : int Atomic.t;
  sh_gc_runs : int Atomic.t;
  sh_gc_reclaimed : int Atomic.t;
}

and stripe = {
  st_lock : Mutex.t;
  mutable st_slots : node array;
  mutable st_mask : int;
  mutable st_count : int;
}

let const_var = max_int

let min_unique_capacity = 4096
let default_cache_bits = 15
let default_cache_budget = 32 * 1024 * 1024
let bytes_per_cache_entry = 32                    (* 3 boxed-free ints + 1 pointer *)

let rec next_pow2 n k = if k >= n then k else next_pow2 n (k * 2)

let new_man ?(nvars = 0) ?(cache_bits = default_cache_bits)
    ?(cache_budget = default_cache_budget) ?(auto_gc = true)
    ?(chain = false) () =
  let rec terminal =
    { id = 0; var = const_var; bot = const_var; n_hi = self; n_lo = self;
      mark = false }
  and self = { neg = false; node = terminal } in
  let cache_bits = max 1 (min 24 cache_bits) in
  let ccap = 1 lsl cache_bits in
  (* byte budget, rounded down to a power of two of entries, but never
     below the initial size *)
  let cache_max_entries =
    let budget_entries = max 1 (cache_budget / bytes_per_cache_entry) in
    let rec down k = if k * 2 <= budget_entries then down (k * 2) else k in
    max ccap (down 1)
  in
  {
    chain;
    vars = nvars;
    uslots = Array.make min_unique_capacity terminal;
    umask = min_unique_capacity - 1;
    ucount = 0;
    ck0 = Array.make ccap min_int;
    ck1 = Array.make ccap 0;
    ck2 = Array.make ccap 0;
    cres = Array.make ccap self;
    cmask = ccap - 1;
    centries = 0;
    cache_max_entries;
    evict_since_resize = 0;
    next_id = 1;
    terminal;
    top = self;
    made = 0;
    iarr_ids =
      (let t = Hashtbl.create 64 in
       Hashtbl.add t [||] 0;
       t);
    next_iarr = 1;
    cube_suffixes = Hashtbl.create 64;
    var_edges = Array.make (max 16 nvars) None;
    refs = Hashtbl.create 64;
    auto_gc;
    gc_wanted = false;
    budget = None;
    n_ite = 0;
    n_and = 0;
    n_xor = 0;
    n_constrain = 0;
    n_restrict = 0;
    n_quantify = 0;
    n_and_exists = 0;
    c_lookups = 0;
    c_hits = 0;
    c_stores = 0;
    c_evicts = 0;
    gc_runs = 0;
    gc_nodes = 0;
    peak_live = 0;
    listeners = [];
    reorder_state = None;
    shared = None;
    op_depth = 0;
  }

let on_event man f = man.listeners <- f :: man.listeners

let repr man : repr = if man.chain then `Cbdd else `Bdd

let repr_label = function `Bdd -> "bdd" | `Cbdd -> "cbdd"

let repr_of_string = function
  | "bdd" -> Some `Bdd
  | "cbdd" -> Some `Cbdd
  | _ -> None

let reorder_state man = man.reorder_state
let set_reorder_state man s = man.reorder_state <- s

(* Events also show up as instant events in the current trace, so a GC
   run or a cache resize is visible amid the spans it interrupts. *)
let emit_event man ev =
  if Obs.Trace.enabled () then begin
    match ev with
    | Gc_run { reclaimed; live_nodes } ->
      Obs.Trace.instant "bdd.gc"
        ~attrs:
          [
            ("reclaimed", Obs.Trace.Int reclaimed);
            ("live_nodes", Obs.Trace.Int live_nodes);
          ]
    | Cache_grown { old_capacity; new_capacity } ->
      Obs.Trace.instant "bdd.cache_grow"
        ~attrs:
          [
            ("old_capacity", Obs.Trace.Int old_capacity);
            ("new_capacity", Obs.Trace.Int new_capacity);
          ]
    | Table_grown { old_capacity; new_capacity } ->
      Obs.Trace.instant "bdd.table_grow"
        ~attrs:
          [
            ("old_capacity", Obs.Trace.Int old_capacity);
            ("new_capacity", Obs.Trace.Int new_capacity);
          ]
  end;
  List.iter (fun f -> f ev) man.listeners

let nvars man = man.vars

let one man = man.top
let zero man = { neg = true; node = man.terminal }

let is_const e = e.node.var = const_var
let is_one e = is_const e && not e.neg
let is_zero e = is_const e && e.neg
let equal a b = a.node == b.node && a.neg = b.neg
let compl e = { e with neg = not e.neg }
let is_compl_pair a b = a.node == b.node && a.neg <> b.neg
let topvar e = e.node.var
let uid e = (2 * e.node.id) + Bool.to_int e.neg
let node_id e = e.node.id

let bot e = e.node.bot

(* Cofactors ([hi]/[lo]/[branches]) are defined after [intern]: taking
   the else-branch of a chain node re-roots the chain one level down,
   which interns the suffix node — they need the manager. *)

(* ----- computed cache ----- *)

let c_slot man k0 k1 k2 =
  let h = (k0 * 0x9e3779b1) lxor (k1 * 0x85ebca6b) lxor (k2 * 0xc2b2ae35) in
  let h = h lxor (h lsr 17) in
  h land man.cmask

let cache_find man k0 k1 k2 =
  man.c_lookups <- man.c_lookups + 1;
  let i = c_slot man k0 k1 k2 in
  if man.ck0.(i) = k0 && man.ck1.(i) = k1 && man.ck2.(i) = k2 then begin
    man.c_hits <- man.c_hits + 1;
    Some man.cres.(i)
  end
  else None

let cache_grow man =
  let ok0 = man.ck0 and ok1 = man.ck1 and ok2 = man.ck2 and ores = man.cres in
  let ocap = man.cmask + 1 in
  let ncap = (man.cmask + 1) * 2 in
  man.ck0 <- Array.make ncap min_int;
  man.ck1 <- Array.make ncap 0;
  man.ck2 <- Array.make ncap 0;
  man.cres <- Array.make ncap man.top;
  man.cmask <- ncap - 1;
  man.centries <- 0;
  man.evict_since_resize <- 0;
  Array.iteri
    (fun j k ->
       if k <> min_int then begin
         let i = c_slot man k ok1.(j) ok2.(j) in
         if man.ck0.(i) = min_int then man.centries <- man.centries + 1;
         man.ck0.(i) <- k;
         man.ck1.(i) <- ok1.(j);
         man.ck2.(i) <- ok2.(j);
         man.cres.(i) <- ores.(j)
       end)
    ok0;
  emit_event man (Cache_grown { old_capacity = ocap; new_capacity = ncap })

let cache_store man k0 k1 k2 r =
  man.c_stores <- man.c_stores + 1;
  if
    man.evict_since_resize > man.cmask + 1
    && man.cmask + 1 < man.cache_max_entries
  then cache_grow man;
  let i = c_slot man k0 k1 k2 in
  if man.ck0.(i) = min_int then man.centries <- man.centries + 1
  else if
    not (man.ck0.(i) = k0 && man.ck1.(i) = k1 && man.ck2.(i) = k2)
  then begin
    man.c_evicts <- man.c_evicts + 1;
    man.evict_since_resize <- man.evict_since_resize + 1
  end;
  man.ck0.(i) <- k0;
  man.ck1.(i) <- k1;
  man.ck2.(i) <- k2;
  man.cres.(i) <- r

let cache_reset man =
  Array.fill man.ck0 0 (Array.length man.ck0) min_int;
  (* release result edges so the OCaml GC can reclaim swept nodes *)
  Array.fill man.cres 0 (Array.length man.cres) man.top;
  man.centries <- 0;
  man.evict_since_resize <- 0

let clear_caches man = cache_reset man

(* ----- unique table ----- *)

let u_hash var bt hid luid =
  let h =
    (var * 0x9e3779b1) lxor (bt * 0x7feb352d) lxor (hid * 0x85ebca6b)
    lxor (luid * 0xc2b2ae35)
  in
  (h lxor (h lsr 15)) land max_int

(* Insert a node known to be absent (used on growth and GC rebuild). *)
let u_insert_fresh man n =
  let mask = man.umask in
  let i = ref (u_hash n.var n.bot n.n_hi.node.id (uid n.n_lo) land mask) in
  while man.uslots.(!i) != man.terminal do
    i := (!i + 1) land mask
  done;
  man.uslots.(!i) <- n

let u_rebuild man newcap keep =
  let old = man.uslots in
  man.uslots <- Array.make newcap man.terminal;
  man.umask <- newcap - 1;
  Array.iter
    (fun n -> if n != man.terminal && keep n then u_insert_fresh man n)
    old

(* ----- shared store: stripes and the stop-the-world barrier ----- *)

let min_stripe_capacity = 1024

(* Stripe selection uses bits 30.. of the node hash; in-stripe probing
   uses the low bits.  Stripes would need to exceed 2^30 slots before
   the two ranges overlap. *)
let stripe_shift = 30

let[@inline] stripe_of sh h =
  sh.sh_stripes.((h lsr stripe_shift) land (Array.length sh.sh_stripes - 1))

let stripe_insert_fresh terminal st n =
  let mask = st.st_mask in
  let i = ref (u_hash n.var n.bot n.n_hi.node.id (uid n.n_lo) land mask) in
  while st.st_slots.(!i) != terminal do
    i := (!i + 1) land mask
  done;
  st.st_slots.(!i) <- n

let stripe_rebuild terminal st newcap keep =
  let old = st.st_slots in
  st.st_slots <- Array.make newcap terminal;
  st.st_mask <- newcap - 1;
  let count = ref 0 in
  Array.iter
    (fun n ->
       if n != terminal && keep n then begin
         incr count;
         stripe_insert_fresh terminal st n
       end)
    old;
  st.st_count <- !count

let rec bump_shared_peak sh live =
  let p = Atomic.get sh.sh_peak in
  if live > p && not (Atomic.compare_and_set sh.sh_peak p live) then
    bump_shared_peak sh live

(* Barrier entry: the fast path is one atomic increment and one atomic
   load.  When a collection is pending the entrant backs out (waking the
   collector if it was the last active mutator), parks until the world
   restarts, and retries.  [op_depth] makes the bracket re-entrant per
   view, so a public operation implemented with other public operations
   never deadlocks against its own domain. *)
let rec barrier_enter sh =
  Atomic.incr sh.sh_active;
  if Atomic.get sh.sh_gc_pending then begin
    if Atomic.fetch_and_add sh.sh_active (-1) = 1 then begin
      Mutex.lock sh.sh_lock;
      Condition.broadcast sh.sh_cv;
      Mutex.unlock sh.sh_lock
    end;
    let t0 = Obs.Clock.now_ns () in
    Mutex.lock sh.sh_lock;
    while Atomic.get sh.sh_gc_pending do
      Condition.wait sh.sh_cv sh.sh_lock
    done;
    Mutex.unlock sh.sh_lock;
    Atomic.incr sh.sh_barrier_waits;
    ignore
      (Atomic.fetch_and_add sh.sh_barrier_wait_ns
         (Int64.to_int (Int64.sub (Obs.Clock.now_ns ()) t0)));
    barrier_enter sh
  end

let barrier_exit sh =
  if
    Atomic.fetch_and_add sh.sh_active (-1) = 1
    && Atomic.get sh.sh_gc_pending
  then begin
    Mutex.lock sh.sh_lock;
    Condition.broadcast sh.sh_cv;
    Mutex.unlock sh.sh_lock
  end

let[@inline] op_enter man =
  match man.shared with
  | None -> ()
  | Some sh ->
    man.op_depth <- man.op_depth + 1;
    if man.op_depth = 1 then barrier_enter sh

let[@inline] op_exit man =
  match man.shared with
  | None -> ()
  | Some sh ->
    man.op_depth <- man.op_depth - 1;
    if man.op_depth = 0 then barrier_exit sh

(* Bracket a whole public operation.  The closure allocation is per
   operation entry, not per recursion step, and only matters at all on
   shared views ([Fun.protect] must release the barrier when a budget
   trips mid-kernel). *)
let[@inline] shared_op man k =
  match man.shared with
  | None -> k ()
  | Some _ ->
    op_enter man;
    Fun.protect ~finally:(fun () -> op_exit man) k

let intern_shared sh var ~bot:bt ~hi:h ~lo:l =
  assert (not h.neg);
  let hid = h.node.id and luid = uid l in
  let h0 = u_hash var bt hid luid in
  let st = stripe_of sh h0 in
  if not (Mutex.try_lock st.st_lock) then begin
    Atomic.incr sh.sh_intern_retries;
    Mutex.lock st.st_lock
  end;
  if (st.st_count + 1) * 4 > (st.st_mask + 1) * 3 then begin
    stripe_rebuild sh.sh_terminal st ((st.st_mask + 1) * 2) (fun _ -> true);
    (* as in the private engine, a growing table arms a collection at
       the next operation boundary — but only if something is rooted *)
    if Atomic.get sh.sh_ext_refs > 0 then Atomic.set sh.sh_gc_wanted true
  end;
  let mask = st.st_mask in
  let rec probe i =
    let n = st.st_slots.(i) in
    if n == sh.sh_terminal then begin
      let id = Atomic.fetch_and_add sh.sh_next_id 1 in
      let n = { id; var; bot = bt; n_hi = h; n_lo = l; mark = false } in
      Atomic.incr sh.sh_made;
      let live = 1 + Atomic.fetch_and_add sh.sh_live 1 in
      bump_shared_peak sh live;
      st.st_count <- st.st_count + 1;
      st.st_slots.(i) <- n;
      Mutex.unlock st.st_lock;
      { neg = false; node = n }
    end
    else if
      n.var = var && n.bot = bt && n.n_hi.node.id = hid && uid n.n_lo = luid
    then begin
      Mutex.unlock st.st_lock;
      { neg = false; node = n }
    end
    else probe ((i + 1) land mask)
  in
  probe (h0 land mask)

let[@inline] live_count man =
  match man.shared with
  | None -> man.ucount
  | Some sh -> Atomic.get sh.sh_live

(* Intern a node whose then-edge is already regular.  The growth path
   additionally publishes a [Table_grown] event: listeners run mid-intern
   (inside the operation bracket), so they must only record state — the
   [Reorder.Policy] listener sets a pending flag that is consumed at a
   clean operation boundary. *)
let intern_private man var ~bot:bt ~hi:h ~lo:l =
  assert (not h.neg);
  if (man.ucount + 1) * 4 > (man.umask + 1) * 3 then begin
    let old_capacity = man.umask + 1 in
    u_rebuild man (old_capacity * 2) (fun _ -> true);
    (* A growing table is the GC trigger: if external roots are in use,
       request a collection at the next operation boundary. *)
    if man.auto_gc && Hashtbl.length man.refs > 0 then man.gc_wanted <- true;
    emit_event man
      (Table_grown { old_capacity; new_capacity = man.umask + 1 })
  end;
  let hid = h.node.id and luid = uid l in
  let mask = man.umask in
  let rec probe i =
    let n = man.uslots.(i) in
    if n == man.terminal then begin
      let n =
        { id = man.next_id; var; bot = bt; n_hi = h; n_lo = l; mark = false }
      in
      man.next_id <- man.next_id + 1;
      man.made <- man.made + 1;
      man.ucount <- man.ucount + 1;
      if man.ucount > man.peak_live then man.peak_live <- man.ucount;
      man.uslots.(i) <- n;
      { neg = false; node = n }
    end
    else if
      n.var = var && n.bot = bt && n.n_hi.node.id = hid && uid n.n_lo = luid
    then { neg = false; node = n }
    else probe ((i + 1) land mask)
  in
  probe (u_hash var bt hid luid land mask)

let[@inline] intern man var ~bot ~hi ~lo =
  match man.shared with
  | None -> intern_private man var ~bot ~hi ~lo
  | Some sh -> intern_shared sh var ~bot ~hi ~lo

(* Intern [(var, bot, h, l)] with [h] already regular, applying the
   chain absorption rule on chain managers: a one-armed node whose
   else-edge is a regular node rooted exactly one level below the bottom
   swallows that node's chain, so OR-chains built one [mk] at a time by
   the generic kernels collapse back to single nodes.  Absorption never
   needs to recurse — the absorbed node is canonical, so its own then-arm
   cannot trigger the rule again. *)
let intern_canon man var ~bot:bt ~hi:h ~lo:l =
  if
    man.chain && is_one h && not l.neg
    && l.node.var = bt + 1
  then
    let n = l.node in
    intern man var ~bot:n.bot ~hi:n.n_hi ~lo:n.n_lo
  else intern man var ~bot:bt ~hi:h ~lo:l

(* [mk] is itself barrier-bracketed: external callers (Store loading,
   netlist synthesis) construct nodes with it outside any public
   operation, and on a shared view such a bare intern must not race a
   collection.  Inside kernels the bracket is already held and the
   re-entrant [op_depth] makes this two plain integer writes. *)
let mk man var ~hi:h ~lo:l =
  assert (var < topvar h && var < topvar l);
  if equal h l then h
  else begin
    op_enter man;
    let r =
      if h.neg then
        compl (intern_canon man var ~bot:var ~hi:(compl h) ~lo:(compl l))
      else intern_canon man var ~bot:var ~hi:h ~lo:l
    in
    op_exit man;
    r
  end

(* The chain [x_t \/ ... \/ x_m \/ r] as an edge ([t <= m < topvar r]).
   On a chain manager this is one node (or an absorption into [r]'s own
   chain); on a plain manager it is built one level at a time. *)
let mk_or_chain man t m r =
  assert (t <= m && m < topvar r);
  if is_one r then r
  else if man.chain then begin
    op_enter man;
    let e =
      if (not r.neg) && r.node.var = m + 1 then
        let n = r.node in
        intern man t ~bot:n.bot ~hi:n.n_hi ~lo:n.n_lo
      else intern man t ~bot:m ~hi:(one man) ~lo:r
    in
    op_exit man;
    e
  end
  else begin
    op_enter man;
    let e = ref r in
    for i = m downto t do
      if not (equal !e (one man)) then
        e := intern_canon man i ~bot:i ~hi:(one man) ~lo:!e
    done;
    op_exit man;
    !e
  end

(* Re-root a chain edge at level [v] ([topvar e < v <= bot e]): the
   suffix [x_v \/ ... \/ (x_b ? h : l)], with the edge's sign kept.  The
   suffix of a canonical chain node is itself canonical. *)
let chain_suffix man e v =
  let n = e.node in
  assert (n.var < v && v <= n.bot);
  op_enter man;
  let s = intern man v ~bot:n.bot ~hi:n.n_hi ~lo:n.n_lo in
  op_exit man;
  { neg = e.neg; node = s.node }

(* Cofactors push the edge's complement bit through the node.  At the
   top level of a chain node the then-cofactor is a constant (the OR
   chain fires) and the else-cofactor is the re-rooted suffix. *)
let hi man e =
  let n = e.node in
  if n.var = const_var then e
  else if n.bot = n.var then { neg = e.neg; node = n.n_hi.node }
  else { neg = e.neg; node = man.terminal }

let lo man e =
  let n = e.node in
  if n.var = const_var then e
  else if n.bot = n.var then { neg = e.neg <> n.n_lo.neg; node = n.n_lo.node }
  else chain_suffix man e (n.var + 1)

let branches man e v =
  assert (topvar e >= v);
  if topvar e = v then (hi man e, lo man e) else (e, e)

let ithvar man i =
  if i < 0 then invalid_arg "Core_dd.ithvar: negative variable";
  if i >= man.vars then man.vars <- i + 1;
  (match man.shared with
   | None -> ()
   | Some sh ->
     let rec bump () =
       let v = Atomic.get sh.sh_vars in
       if man.vars > v && not (Atomic.compare_and_set sh.sh_vars v man.vars)
       then bump ()
     in
     bump ());
  if i >= Array.length man.var_edges then begin
    let bigger = Array.make (next_pow2 (i + 1) 16) None in
    Array.blit man.var_edges 0 bigger 0 (Array.length man.var_edges);
    man.var_edges <- bigger
  end;
  match man.var_edges.(i) with
  | Some e -> e
  | None ->
    let e = mk man i ~hi:(one man) ~lo:(zero man) in
    man.var_edges.(i) <- Some e;
    e

(* ----- external references and garbage collection ----- *)

(* Roots are registered per view.  On a shared view the mutation is
   barrier-bracketed: the collector reads every view's root table while
   the world is stopped, so no root update may be in flight. *)
let ref_ man e =
  let n = e.node in
  if n.var <> const_var then begin
    op_enter man;
    (match Hashtbl.find_opt man.refs n.id with
     | Some (_, c) -> incr c
     | None ->
       Hashtbl.add man.refs n.id (n, ref 1);
       (match man.shared with
        | None -> ()
        | Some sh -> Atomic.incr sh.sh_ext_refs));
    op_exit man
  end

let deref man e =
  let n = e.node in
  if n.var <> const_var then begin
    op_enter man;
    (match Hashtbl.find_opt man.refs n.id with
     | Some (_, c) ->
       decr c;
       if !c <= 0 then begin
         Hashtbl.remove man.refs n.id;
         match man.shared with
         | None -> ()
         | Some sh -> Atomic.decr sh.sh_ext_refs
       end
     | None -> ());
    op_exit man
  end

let with_root man e k =
  ref_ man e;
  Fun.protect ~finally:(fun () -> deref man e) (fun () -> k e)

let rec gc_mark n =
  if n.var <> const_var && not n.mark then begin
    n.mark <- true;
    gc_mark n.n_hi.node;
    gc_mark n.n_lo.node
  end

let gc_internal man roots =
  Hashtbl.iter (fun _ (n, _) -> gc_mark n) man.refs;
  Array.iter
    (function Some e -> gc_mark e.node | None -> ())
    man.var_edges;
  List.iter (fun e -> gc_mark e.node) roots;
  let before = man.ucount in
  let live =
    Array.fold_left
      (fun acc n -> if n != man.terminal && n.mark then acc + 1 else acc)
      0 man.uslots
  in
  (* Rebuild at most the old capacity (growth is [intern]'s business);
     shrink when the survivors rattle around in it. *)
  let wanted = next_pow2 (max min_unique_capacity (live * 2)) min_unique_capacity in
  let newcap = min (man.umask + 1) wanted in
  u_rebuild man newcap
    (fun n ->
       if n.mark then begin
         n.mark <- false;
         true
       end
       else false);
  man.ucount <- live;
  (* cached results may point at swept nodes; drop them all *)
  cache_reset man;
  let reclaimed = before - live in
  man.gc_runs <- man.gc_runs + 1;
  man.gc_nodes <- man.gc_nodes + reclaimed;
  emit_event man (Gc_run { reclaimed; live_nodes = live + 1 });
  reclaimed

(* Stop-the-world collection over a shared store.  The requesting
   domain must be *outside* any bracketed operation (collections only
   start at operation boundaries, exactly as in the private engine).
   Protocol: serialize collectors on [sh_gc_lock], raise
   [sh_gc_pending], wait until every active mutator drains, then — with
   every domain parked — mark from all views' roots and projection
   edges, rebuild each stripe keeping marked nodes, and reset every
   view's computed cache (cached results may reference swept nodes).
   Stripe locks are taken during the rebuild purely as belt and braces;
   no mutator can hold one while the world is stopped. *)
let shared_gc man sh roots =
  Mutex.lock sh.sh_gc_lock;
  Atomic.set sh.sh_gc_wanted false;
  Atomic.set sh.sh_gc_pending true;
  let t0 = Obs.Clock.now_ns () in
  Mutex.lock sh.sh_lock;
  while Atomic.get sh.sh_active > 0 do
    Condition.wait sh.sh_cv sh.sh_lock
  done;
  let views = sh.sh_views in
  Mutex.unlock sh.sh_lock;
  Atomic.incr sh.sh_barrier_waits;
  ignore
    (Atomic.fetch_and_add sh.sh_barrier_wait_ns
       (Int64.to_int (Int64.sub (Obs.Clock.now_ns ()) t0)));
  List.iter
    (fun v ->
       Hashtbl.iter (fun _ (n, _) -> gc_mark n) v.refs;
       Array.iter
         (function Some e -> gc_mark e.node | None -> ())
         v.var_edges)
    views;
  List.iter (fun e -> gc_mark e.node) roots;
  let before = Atomic.get sh.sh_live in
  let live = ref 0 in
  Array.iter
    (fun st ->
       Mutex.lock st.st_lock;
       let marked =
         Array.fold_left
           (fun acc n ->
              if n != sh.sh_terminal && n.mark then acc + 1 else acc)
           0 st.st_slots
       in
       let wanted =
         next_pow2 (max min_stripe_capacity (marked * 2)) min_stripe_capacity
       in
       let newcap = min (st.st_mask + 1) wanted in
       stripe_rebuild sh.sh_terminal st newcap
         (fun n ->
            if n.mark then begin
              n.mark <- false;
              true
            end
            else false);
       live := !live + st.st_count;
       Mutex.unlock st.st_lock)
    sh.sh_stripes;
  Atomic.set sh.sh_live !live;
  List.iter cache_reset views;
  let reclaimed = before - !live in
  man.gc_runs <- man.gc_runs + 1;
  man.gc_nodes <- man.gc_nodes + reclaimed;
  Atomic.incr sh.sh_gc_runs;
  ignore (Atomic.fetch_and_add sh.sh_gc_reclaimed reclaimed);
  Atomic.set sh.sh_gc_pending false;
  Mutex.lock sh.sh_lock;
  Condition.broadcast sh.sh_cv;
  Mutex.unlock sh.sh_lock;
  Mutex.unlock sh.sh_gc_lock;
  emit_event man (Gc_run { reclaimed; live_nodes = !live + 1 });
  reclaimed

let gc ?(roots = []) man =
  match man.shared with
  | None ->
    man.gc_wanted <- false;
    gc_internal man roots
  | Some sh -> shared_gc man sh roots

(* Auto-GC on a shared store requires unanimous consent: any view that
   suspended it (a fixpoint loop holding un-rooted working sets) vetoes
   collection store-wide via the [sh_no_auto] count. *)
let set_auto_gc man b =
  (match man.shared with
   | Some sh when man.auto_gc <> b ->
     if b then Atomic.decr sh.sh_no_auto else Atomic.incr sh.sh_no_auto
   | _ -> ());
  man.auto_gc <- b

(* Long fixpoint computations (symbolic traversal) hold their evolving
   working set only on un-rooted OCaml edges; an automatic collection
   armed by some long-lived root would sweep it every time the table
   grows — costing canonicity of every in-flight set and flushing the
   computed cache over and over.  Such loops suspend the trigger and
   collect (or let the pending trigger fire) when they are done. *)
let without_auto_gc man k =
  let prev = man.auto_gc in
  set_auto_gc man false;
  Fun.protect ~finally:(fun () -> set_auto_gc man prev) k

(* Collection only ever runs at operation boundaries: recursions in flight
   hold un-rooted intermediate edges on the OCaml stack, and sweeping them
   would cost canonicity (never correctness, but still).  On a shared
   view the trigger additionally requires unanimous auto-GC consent, and
   a compare-and-set elects a single collecting domain. *)
let maybe_gc man =
  match man.shared with
  | None ->
    if man.gc_wanted then begin
      man.gc_wanted <- false;
      ignore (gc_internal man [])
    end
  | Some sh ->
    if
      man.auto_gc
      && Atomic.get sh.sh_gc_wanted
      && Atomic.get sh.sh_no_auto = 0
      && Atomic.compare_and_set sh.sh_gc_wanted true false
    then ignore (shared_gc man sh [])

(* ----- Resource budgets ----- *)

exception Budget_exhausted of budget_reason

module Budget = struct
  type reason = budget_reason =
    | Nodes of { limit : int; live : int }
    | Steps of { limit : int }
    | Time of { seconds : float }
    | Cancelled

  type t = budget

  let never_cancelled () = false

  let create ?max_nodes ?max_steps ?timeout_s ?(cancelled = never_cancelled)
      () =
    let b_max_nodes =
      match max_nodes with
      | None -> max_int
      | Some n ->
        if n <= 0 then invalid_arg "Budget.create: max_nodes";
        n
    in
    let b_max_steps =
      match max_steps with
      | None -> max_int
      | Some n ->
        if n <= 0 then invalid_arg "Budget.create: max_steps";
        n
    in
    let b_seconds, b_deadline_ns =
      match timeout_s with
      | None -> (infinity, Int64.max_int)
      | Some s ->
        if s < 0.0 then invalid_arg "Budget.create: timeout_s";
        ( s,
          Int64.add (Obs.Clock.now_ns ())
            (Int64.of_float (s *. 1e9)) )
    in
    {
      b_max_nodes;
      b_max_steps;
      b_deadline_ns;
      b_seconds;
      b_cancelled = cancelled;
      b_steps = 0;
      b_exhausted = None;
    }

  let steps b = b.b_steps
  let exhausted b = b.b_exhausted

  (* Short machine-ish label, stable for tables, CSVs and cram tests. *)
  let reason_label = function
    | Nodes _ -> "nodes"
    | Steps _ -> "steps"
    | Time _ -> "time"
    | Cancelled -> "cancelled"

  let reason_message = function
    | Nodes { limit; live } ->
      Printf.sprintf "node budget exhausted (%d live > %d)" live limit
    | Steps { limit } ->
      Printf.sprintf "step budget exhausted (> %d recursion steps)" limit
    | Time { seconds } ->
      Printf.sprintf "time budget exhausted (> %gs)" seconds
    | Cancelled -> "cancelled"
end

let budget_fail b r =
  b.b_exhausted <- Some r;
  raise (Budget_exhausted r)

(* Slow path of the kernel check: count a step, compare against the
   limits.  The wall clock and the cancellation callback are polled only
   once every 1024 steps (and on the very first step) to keep the
   per-recursion cost at a few integer compares. *)
let budget_step man b =
  let steps = b.b_steps + 1 in
  b.b_steps <- steps;
  let live = live_count man in
  if live > b.b_max_nodes then
    budget_fail b (Nodes { limit = b.b_max_nodes; live });
  if steps > b.b_max_steps then budget_fail b (Steps { limit = b.b_max_steps });
  if steps land 1023 = 1 then begin
    if b.b_cancelled () then budget_fail b Cancelled;
    if
      b.b_deadline_ns <> Int64.max_int
      && Obs.Clock.now_ns () > b.b_deadline_ns
    then budget_fail b (Time { seconds = b.b_seconds })
  end

(* The single cheap check in every kernel preamble: one load and a
   branch when no budget is installed. *)
let[@inline] budget_tick man =
  match man.budget with None -> () | Some b -> budget_step man b

(* Immediate poll of the externally-driven limits (wall clock,
   cancellation), bypassing the 1024-step cadence.  Run once at every
   public operation's entry: an already-expired deadline must abort
   before any work — in particular before a run of cache hits, which
   never reach [budget_step] at all.  This is what lets a server enforce
   per-request deadlines: a request whose deadline passed while it sat
   in the queue dies on its first operation, not 1024 cache misses
   later. *)
let budget_poll b =
  if b.b_cancelled () then budget_fail b Cancelled;
  if
    b.b_deadline_ns <> Int64.max_int
    && Obs.Clock.now_ns () > b.b_deadline_ns
  then budget_fail b (Time { seconds = b.b_seconds })

let[@inline] budget_entry man =
  match man.budget with None -> () | Some b -> budget_poll b

let set_budget man b = man.budget <- b
let current_budget man = man.budget

let with_budget man b k =
  let prev = man.budget in
  man.budget <- Some b;
  Fun.protect ~finally:(fun () -> man.budget <- prev) k

let check_budget man =
  budget_entry man;
  budget_tick man

(* ----- Boolean operation kernels ----- *)

let tag_ite = 0
let tag_constrain = 1
let tag_restrict = 2
let tag_and = 3
let tag_xor = 4
let tag_exists = 5
let tag_forall = 6
let tag_and_exists = 7
let tag_compose = 8

let pack_tag tag u = (u lsl 4) lor tag

(* Specialized binary kernels.  AND and XOR recurse directly with their
   own terminal rules and a tagged two-operand cache key instead of
   routing through the 3-operand ITE standard-triple normalization: the
   apply hot path drops one edge comparison cascade per step, packs a
   denser cache (k2 is always 0), and both operands canonicalize by a
   single commutativity swap.  The remaining two-operand connectives are
   complements of these (De Morgan), so every [dand]/[dor]/... call
   shares one AND cache and one XOR cache. *)

let rec and_rec man f g =
  if equal f g then f
  else if is_compl_pair f g then zero man
  else if is_one f then g
  else if is_one g then f
  else if is_zero f || is_zero g then zero man
  else begin
    (* AND is commutative: canonical operand order for the cache. *)
    let f, g = if uid f <= uid g then (f, g) else (g, f) in
    let k0 = pack_tag tag_and (uid f) and k1 = uid g in
    match cache_find man k0 k1 0 with
    | Some r -> r
    | None ->
      budget_tick man;
      man.n_and <- man.n_and + 1;
      let v = min (topvar f) (topvar g) in
      let r =
        (* Chain fast path: both operands are chains rooted at [v], so
           the shared chain prefix [X = x_v \/ ... \/ x_{m-1}] factors
           out in one step instead of one recursion per level:
           (X ∨ A)(X ∨ B) = X ∨ AB, and when either operand is
           complemented the product is ¬X ∧ (A'B') = ¬(X ∨ ¬(A'B')). *)
        let m = min f.node.bot g.node.bot in
        if topvar f = v && topvar g = v && m > v then begin
          let fs = chain_suffix man f m and gs = chain_suffix man g m in
          let c = and_rec man fs gs in
          if (not f.neg) && not g.neg then mk_or_chain man v (m - 1) c
          else compl (mk_or_chain man v (m - 1) (compl c))
        end
        else begin
          let ft, fe = branches man f v and gt, ge = branches man g v in
          let t = and_rec man ft gt in
          let e = and_rec man fe ge in
          mk man v ~hi:t ~lo:e
        end
      in
      cache_store man k0 k1 0 r;
      r
  end

let or_rec man f g = compl (and_rec man (compl f) (compl g))

let rec xor_rec man f g =
  if equal f g then zero man
  else if is_compl_pair f g then one man
  else if is_one f then compl g
  else if is_zero f then g
  else if is_one g then compl f
  else if is_zero g then f
  else begin
    (* XOR ignores operand complements up to a sign: strip both bits,
       order the regular edges, and re-apply the sign to the result, so
       all four complement combinations of (f, g) share one entry. *)
    let sign = f.neg <> g.neg in
    let f = { f with neg = false } and g = { g with neg = false } in
    let f, g = if f.node.id <= g.node.id then (f, g) else (g, f) in
    let k0 = pack_tag tag_xor (uid f) and k1 = uid g in
    let r =
      match cache_find man k0 k1 0 with
      | Some r -> r
      | None ->
        budget_tick man;
        man.n_xor <- man.n_xor + 1;
        let v = min (topvar f) (topvar g) in
        let r =
          (* Chain fast path (operands regular here): the shared prefix
             cancels — (X ∨ A) ⊕ (X ∨ B) = ¬X ∧ (A ⊕ B). *)
          let m = min f.node.bot g.node.bot in
          if topvar f = v && topvar g = v && m > v then begin
            let fs = chain_suffix man f m and gs = chain_suffix man g m in
            compl (mk_or_chain man v (m - 1) (compl (xor_rec man fs gs)))
          end
          else begin
            let ft, fe = branches man f v and gt, ge = branches man g v in
            let t = xor_rec man ft gt in
            let e = xor_rec man fe ge in
            mk man v ~hi:t ~lo:e
          end
        in
        cache_store man k0 k1 0 r;
        r
    in
    if sign then compl r else r
  end

(* ----- ITE with standard-triple normalization ----- *)

let rec ite_norm man f g h =
  if is_one f then g
  else if is_zero f then h
  else if equal g h then g
  else begin
    (* Collapse arguments equal (or complementary) to the test. *)
    let g = if equal f g then one man else if is_compl_pair f g then zero man else g in
    let h = if equal f h then zero man else if is_compl_pair f h then one man else h in
    (* Constant arms mean the ITE is really a binary connective; hand it
       to the specialized kernels (this also subsumes the old canonical
       argument-order normalization of the commutative cases). *)
    if is_one g && is_zero h then f
    else if is_zero g && is_one h then compl f
    else if is_zero h then and_rec man f g
    else if is_one g then or_rec man f h
    else if is_zero g then and_rec man (compl f) h
    else if is_one h then or_rec man (compl f) g
    else if is_compl_pair g h then xor_rec man f h
    else begin
      (* Regular test edge, then regular then-edge. *)
      let f, g, h = if f.neg then (compl f, h, g) else (f, g, h) in
      if g.neg then compl (ite_aux man f (compl g) (compl h))
      else ite_aux man f g h
    end
  end

and ite_aux man f g h =
  let k0 = pack_tag tag_ite (uid f) and k1 = uid g and k2 = uid h in
  match cache_find man k0 k1 k2 with
  | Some r -> r
  | None ->
    budget_tick man;
    man.n_ite <- man.n_ite + 1;
    let v = min (topvar f) (min (topvar g) (topvar h)) in
    let ft, fe = branches man f v
    and gt, ge = branches man g v
    and ht, he = branches man h v in
    let t = ite_norm man ft gt ht in
    let e = ite_norm man fe ge he in
    let r = mk man v ~hi:t ~lo:e in
    cache_store man k0 k1 k2 r;
    r

let ite man f g h =
  maybe_gc man;
  budget_entry man;
  shared_op man (fun () -> ite_norm man f g h)

let and_ man f g =
  maybe_gc man;
  budget_entry man;
  shared_op man (fun () -> and_rec man f g)

let or_ man f g =
  maybe_gc man;
  budget_entry man;
  shared_op man (fun () -> or_rec man f g)

let xor man f g =
  maybe_gc man;
  budget_entry man;
  shared_op man (fun () -> xor_rec man f g)

let dand = and_
let dor = or_
let dxor = xor
let dxnor man f g = compl (xor man f g)
let dnand man f g = compl (and_ man f g)
let dnor man f g = compl (or_ man f g)
let imply man f g = or_ man (compl f) g
let diff man f g = and_ man f (compl g)

let conj man fs = List.fold_left (dand man) (one man) fs
let disj man fs = List.fold_left (dor man) (zero man) fs

let leq man f g = is_zero (diff man f g)

(* ----- Cofactor with respect to an arbitrary variable ----- *)

let cofactor man f ~var phase =
  maybe_gc man;
  budget_entry man;
  shared_op man @@ fun () ->
  let memo = Hashtbl.create 64 in
  let rec go f =
    if topvar f > var then f
    else if topvar f = var then if phase then hi man f else lo man f
    else
      match Hashtbl.find_opt memo (uid f) with
      | Some r -> r
      | None ->
        let r = mk man (topvar f) ~hi:(go (hi man f)) ~lo:(go (lo man f)) in
        Hashtbl.add memo (uid f) r;
        r
  in
  go f

(* ----- Interned integer arrays (variable sets, substitution keys) ----- *)

(* Sorted int arrays get a stable small id.  Quantification and
   composition key the packed computed cache on these ids, so their
   results survive across calls — a reachability run asks for the same
   variable sets hundreds of times.  Ids are never reused; the table is
   tiny (one entry per distinct set, not per BDD node). *)
let intern_iarr man a =
  match Hashtbl.find_opt man.iarr_ids a with
  | Some id -> id
  | None ->
    let id = man.next_iarr in
    man.next_iarr <- id + 1;
    Hashtbl.add man.iarr_ids (Array.copy a) id;
    id

(* A quantification cube is the sorted deduplicated variable set plus the
   ids of all its suffixes: the recursion over [vars.(i..)] memoizes under
   the id of exactly the suffix it still has to quantify, so partial
   results are shared with any later call whose cube has the same tail. *)
let cube_of_list man vars =
  let vars = Array.of_list (List.sort_uniq compare vars) in
  let id = intern_iarr man vars in
  let suffix =
    match Hashtbl.find_opt man.cube_suffixes id with
    | Some s -> s
    | None ->
      let n = Array.length vars in
      let s = Array.make (n + 1) 0 in
      for i = n - 1 downto 0 do
        s.(i) <- intern_iarr man (Array.sub vars i (n - i))
      done;
      Hashtbl.add man.cube_suffixes id s;
      s
  in
  (vars, suffix)

let cube_id man vars =
  let _, suffix = cube_of_list man vars in
  suffix.(0)

let interned_sets man = man.next_iarr

(* ----- Quantification ----- *)

(* The recursion carries an index into the sorted variable array; the
   cache key is (tag, uid f, id of the unquantified suffix), all packed
   ints, stored in the manager's bounded computed cache so results
   persist across calls.  [combine] must be the recursion-level kernel
   ([or_rec]/[and_rec]), not the public entry points: those run
   [maybe_gc], and a collection mid-recursion would sweep un-rooted
   intermediates. *)
let quantify_rec man tag combine vars suffix i0 f0 =
  let nv = Array.length vars in
  (* [x_v] is a chain-OR level of [f]'s root ([t < v < b]): dropping the
     literal leaves the rest of the chain, [x_t../x_{v-1} \/ x_{v+1}.. \/
     (x_b ? h : l)], as a regular function. *)
  let drop_chain_level f v =
    let n = f.node in
    let s = chain_suffix man { neg = false; node = n } (v + 1) in
    mk_or_chain man n.var (v - 1) s
  in
  let rec go i f =
    if i >= nv then f
    else if is_const f then f
    else if topvar f > vars.(i) then go (i + 1) f
    else
      let k0 = pack_tag tag (uid f) and k1 = suffix.(i) in
      match cache_find man k0 k1 0 with
      | Some r -> r
      | None ->
        budget_tick man;
        man.n_quantify <- man.n_quantify + 1;
        let v = vars.(i) in
        let r =
          if v > topvar f && v < f.node.bot then
            (* Chain fast path: [x_v] sits strictly inside the root's OR
               chain.  A regular edge is [X ∨ A]: exists gives [one]
               (set [x_v]), forall drops the literal.  A complemented
               edge is [¬x.. ∧ ¬A]: exists drops the literal, forall
               gives [zero]. *)
            if tag = tag_forall then
              if f.neg then zero man else go (i + 1) (drop_chain_level f v)
            else if f.neg then go (i + 1) (compl (drop_chain_level f v))
            else one man
          else begin
            let i' = if topvar f = v then i + 1 else i in
            let t = go i' (hi man f) and e = go i' (lo man f) in
            if topvar f = v then combine man t e
            else mk man (topvar f) ~hi:t ~lo:e
          end
        in
        cache_store man k0 k1 0 r;
        r
  in
  go i0 f0

let exists man vars f =
  maybe_gc man;
  budget_entry man;
  shared_op man @@ fun () ->
  let vars, suffix = cube_of_list man vars in
  quantify_rec man tag_exists or_rec vars suffix 0 f

let forall man vars f =
  maybe_gc man;
  budget_entry man;
  shared_op man @@ fun () ->
  let vars, suffix = cube_of_list man vars in
  quantify_rec man tag_forall and_rec vars suffix 0 f

let and_exists man vars f g =
  maybe_gc man;
  budget_entry man;
  shared_op man @@ fun () ->
  let vars, suffix = cube_of_list man vars in
  let nv = Array.length vars in
  let rec go i f g =
    if is_zero f || is_zero g then zero man
    else if is_one f && is_one g then one man
    else if i >= nv then and_rec man f g
    else if is_one f then quantify_rec man tag_exists or_rec vars suffix i g
    else if is_one g then quantify_rec man tag_exists or_rec vars suffix i f
    else
      let top = min (topvar f) (topvar g) in
      if top > vars.(i) then go (i + 1) f g
      else begin
        (* conjunction is commutative: canonical operand order *)
        let f, g = if uid f <= uid g then (f, g) else (g, f) in
        let k0 = pack_tag tag_and_exists (uid f)
        and k1 = uid g
        and k2 = suffix.(i) in
        match cache_find man k0 k1 k2 with
        | Some r -> r
        | None ->
          budget_tick man;
          man.n_and_exists <- man.n_and_exists + 1;
          let ft, fe = branches man f top and gt, ge = branches man g top in
          let i' = if top = vars.(i) then i + 1 else i in
          let r =
            if top = vars.(i) then or_rec man (go i' ft gt) (go i' fe ge)
            else mk man top ~hi:(go i' ft gt) ~lo:(go i' fe ge)
          in
          cache_store man k0 k1 k2 r;
          r
      end
  in
  go 0 f g

(* ----- Composition ----- *)

(* One cache for every substitution shape: the (variable, uid of
   replacement) pairs flatten to a sorted signature interned like a cube,
   and the key is (tag, uid f, signature id).  Later duplicate bindings
   for a variable win, as documented. *)
let vector_compose man f subs =
  match subs with
  | [] -> f
  | _ ->
    maybe_gc man;
    budget_entry man;
    shared_op man @@ fun () ->
    let table = Hashtbl.create 16 in
    List.iter (fun (v, g) -> Hashtbl.replace table v g) subs;
    let bindings =
      List.sort
        (fun (a, _) (b, _) -> compare a b)
        (Hashtbl.fold (fun v g acc -> (v, g) :: acc) table [])
    in
    let sig_arr = Array.make (2 * List.length bindings) 0 in
    List.iteri
      (fun k (v, g) ->
         sig_arr.(2 * k) <- v;
         sig_arr.((2 * k) + 1) <- uid g)
      bindings;
    let sid = intern_iarr man sig_arr in
    let last = List.fold_left (fun acc (v, _) -> max acc v) 0 bindings in
    let rec go f =
      if topvar f > last then f
      else
        let k0 = pack_tag tag_compose (uid f) in
        match cache_find man k0 sid 0 with
        | Some r -> r
        | None ->
          budget_tick man;
          let v = topvar f in
          let test =
            match Hashtbl.find_opt table v with
            | Some g -> g
            | None -> ithvar man v
          in
          let r = ite_norm man test (go (hi man f)) (go (lo man f)) in
          cache_store man k0 sid 0 r;
          r
    in
    go f

let compose man f ~var g = vector_compose man f [ (var, g) ]

let rename man f pairs =
  vector_compose man f (List.map (fun (a, b) -> (a, ithvar man b)) pairs)

(* ----- Generalized cofactors ----- *)

let rec constrain_rec man f c =
  if is_one c || is_const f then f
  else
    let k0 = pack_tag tag_constrain (uid f) and k1 = uid c in
    match cache_find man k0 k1 0 with
    | Some r -> r
    | None ->
      budget_tick man;
      man.n_constrain <- man.n_constrain + 1;
      let v = min (topvar f) (topvar c) in
      let ft, fe = branches man f v and ct, ce = branches man c v in
      let r =
        if is_zero ce then constrain_rec man ft ct
        else if is_zero ct then constrain_rec man fe ce
        else
          mk man v ~hi:(constrain_rec man ft ct) ~lo:(constrain_rec man fe ce)
      in
      cache_store man k0 k1 0 r;
      r

let constrain man f c =
  if is_zero c then invalid_arg "Core_dd.constrain: empty care set";
  maybe_gc man;
  budget_entry man;
  shared_op man (fun () -> constrain_rec man f c)

let rec restrict_rec man f c =
  if is_one c || is_const f then f
  else
    let k0 = pack_tag tag_restrict (uid f) and k1 = uid c in
    match cache_find man k0 k1 0 with
    | Some r -> r
    | None ->
      budget_tick man;
      man.n_restrict <- man.n_restrict + 1;
      let fv = topvar f and cv = topvar c in
      let r =
        if cv < fv then restrict_rec man f (or_rec man (hi man c) (lo man c))
        else
          let ft, fe = branches man f fv and ct, ce = branches man c fv in
          if is_zero ce then restrict_rec man ft ct
          else if is_zero ct then restrict_rec man fe ce
          else
            mk man fv ~hi:(restrict_rec man ft ct) ~lo:(restrict_rec man fe ce)
      in
      cache_store man k0 k1 0 r;
      r

let restrict man f c =
  if is_zero c then invalid_arg "Core_dd.restrict: empty care set";
  maybe_gc man;
  budget_entry man;
  shared_op man (fun () -> restrict_rec man f c)

(* ----- Inspection ----- *)

let iter_nodes _man f k =
  let seen = Hashtbl.create 64 in
  let rec go n =
    if not (Hashtbl.mem seen n.id) then begin
      Hashtbl.add seen n.id ();
      k n.id n.var;
      if n.var <> const_var then begin
        go n.n_hi.node;
        go n.n_lo.node
      end
    end
  in
  go f.node

let size man f =
  let n = ref 0 in
  iter_nodes man f (fun _ _ -> incr n);
  !n

let shared_size _man fs =
  let seen = Hashtbl.create 64 in
  let count = ref 0 in
  let rec go n =
    if not (Hashtbl.mem seen n.id) then begin
      Hashtbl.add seen n.id ();
      incr count;
      if n.var <> const_var then begin
        go n.n_hi.node;
        go n.n_lo.node
      end
    end
  in
  List.iter (fun e -> go e.node) fs;
  !count

(* Every chain level is in the support: [h = one, l = one] chains are
   forbidden by canonical form, so flipping any chained variable always
   changes the function's value somewhere. *)
let support _man f =
  let seen = Hashtbl.create 64 in
  let vars = Hashtbl.create 16 in
  let rec go n =
    if n.var <> const_var && not (Hashtbl.mem seen n.id) then begin
      Hashtbl.add seen n.id ();
      for v = n.var to n.bot do
        Hashtbl.replace vars v ()
      done;
      go n.n_hi.node;
      go n.n_lo.node
    end
  in
  go f.node;
  List.sort compare (Hashtbl.fold (fun v () acc -> v :: acc) vars [])

let eval f assign =
  let rec chain_hit v b = v < b && (assign v || chain_hit (v + 1) b) in
  let rec go e =
    if is_const e then not e.neg
    else
      let n = e.node in
      if chain_hit n.var n.bot then not e.neg
      else if assign n.bot then go { neg = e.neg; node = n.n_hi.node }
      else go { neg = e.neg <> n.n_lo.neg; node = n.n_lo.node }
  in
  go f

let sat_count man f ~nvars =
  (* Density of the onset under the uniform measure; independent of which
     variables actually occur, so a per-function memo is sound — provided
     the target space has at least as many dimensions as the support.
     With fewer, the scaled density is a fractional undercount, so that
     case is an error rather than a silently wrong answer. *)
  (* The support is a subset of the manager's variables, so when [nvars]
     covers them all the arity check is vacuous and the support walk —
     a full traversal of [f] — can be skipped. *)
  if nvars < man.vars then begin
    let support_size = List.length (support man f) in
    if nvars < support_size then
      invalid_arg
        (Printf.sprintf
           "Core_dd.sat_count: nvars = %d but the function depends on %d \
            variables"
           nvars support_size)
  end;
  let memo = Hashtbl.create 64 in
  let rec density e =
    if is_one e then 1.0
    else if is_zero e then 0.0
    else
      match Hashtbl.find_opt memo (uid e) with
      | Some d -> d
      | None ->
        let n = e.node in
        let h = { neg = e.neg; node = n.n_hi.node }
        and l = { neg = e.neg <> n.n_lo.neg; node = n.n_lo.node } in
        let db = 0.5 *. (density h +. density l) in
        (* [m] chained levels scale the branch density: a regular chain
           edge is [X ∨ A] with P = 1 - 2^-m + 2^-m P(A); a complemented
           one is [¬X ∧ ¬A] with P = 2^-m P(¬A) — and [db] already
           carries the sign. *)
        let m = n.bot - n.var in
        let d =
          if m = 0 then db
          else
            let p = Float.ldexp 1.0 (-m) in
            if e.neg then p *. db else (1.0 -. p) +. (p *. db)
        in
        Hashtbl.add memo (uid e) d;
        d
  in
  density f *. (2.0 ** float_of_int nvars)

let nodes_at_level man f level =
  let n = ref 0 in
  iter_nodes man f (fun _ v -> if v = level then incr n);
  !n

let count_below man f level =
  let n = ref 0 in
  iter_nodes man f (fun _ v -> if v > level then incr n);
  !n

(* ----- Size metrics ----- *)

(* The single entry point for size accounting.  [nodes] is the physical
   (representation-dependent) count, [chain_nodes] counts how many of
   those are compressed chains, and [plain_equivalent] is the size the
   same function has as a plain BDD — the representation-independent
   metric the minimization verdicts are judged on.

   [plain_equivalent] is exact: expanding a chain node [(t,b,h,l)] into
   plain form creates one virtual node per level [i] in [t..b], each
   fully determined by the key [(i, b, id h, uid l)] — distinct chain
   nodes sharing a tail share the corresponding virtual nodes, and a
   virtual node at level [b] coincides with a physical plain node
   [(b,h,l)] when one exists, so keys are deduplicated globally. *)
module Metric = struct
  let fold_physical fs k =
    let seen = Hashtbl.create 64 in
    let rec go n =
      if not (Hashtbl.mem seen n.id) then begin
        Hashtbl.add seen n.id ();
        k n;
        if n.var <> const_var then begin
          go n.n_hi.node;
          go n.n_lo.node
        end
      end
    in
    List.iter (fun e -> go e.node) fs

  let shared_nodes _man fs =
    let count = ref 0 in
    fold_physical fs (fun _ -> incr count);
    !count

  let nodes man f = shared_nodes man [ f ]

  let shared_chain_nodes _man fs =
    let count = ref 0 in
    fold_physical fs (fun n ->
        if n.var <> const_var && n.bot > n.var then incr count);
    !count

  let chain_nodes man f = shared_chain_nodes man [ f ]

  let shared_plain_equivalent _man fs =
    let keys = Hashtbl.create 64 in
    fold_physical fs (fun n ->
        if n.var <> const_var then begin
          let hid = n.n_hi.node.id and luid = uid n.n_lo in
          for i = n.var to n.bot do
            Hashtbl.replace keys (i, n.bot, hid, luid) ()
          done
        end);
    Hashtbl.length keys + 1 (* the terminal *)

  let plain_equivalent man f = shared_plain_equivalent man [ f ]
end

(* ----- Statistics ----- *)

module Stats = struct
  type t = {
    vars : int;
    live_nodes : int;
    peak_live_nodes : int;
    interned_total : int;
    unique_capacity : int;
    external_refs : int;
    cache_entries : int;
    cache_capacity : int;
    cache_lookups : int;
    cache_hits : int;
    cache_stores : int;
    cache_evictions : int;
    ite_recursions : int;
    and_recursions : int;
    xor_recursions : int;
    constrain_recursions : int;
    restrict_recursions : int;
    quantify_recursions : int;
    and_exists_recursions : int;
    interned_cubes : int;
    gc_runs : int;
    gc_reclaimed : int;
  }

  let hit_rate s =
    if s.cache_lookups = 0 then 0.0
    else float_of_int s.cache_hits /. float_of_int s.cache_lookups

  let pp ppf s =
    Format.fprintf ppf
      "@[<v>vars            : %d@,\
       live nodes      : %d (peak %d, interned total %d)@,\
       unique capacity : %d slots@,\
       external refs   : %d@,\
       computed cache  : %d/%d entries@,\
       cache traffic   : %d lookups, %d hits (%.1f%%), %d stores, %d evictions@,\
       recursions      : ite %d, and %d, xor %d, constrain %d, restrict %d, \
       quantify %d, and-exists %d@,\
       interned cubes  : %d@,\
       garbage collect : %d runs, %d nodes reclaimed@]"
      s.vars s.live_nodes s.peak_live_nodes s.interned_total s.unique_capacity
      s.external_refs s.cache_entries s.cache_capacity s.cache_lookups
      s.cache_hits
      (100.0 *. hit_rate s)
      s.cache_stores s.cache_evictions s.ite_recursions s.and_recursions
      s.xor_recursions s.constrain_recursions
      s.restrict_recursions s.quantify_recursions s.and_exists_recursions
      s.interned_cubes s.gc_runs s.gc_reclaimed

  let to_string s = Format.asprintf "%a" pp s

  (* Per-task attribution: monotone work counters are subtracted, level
     quantities (sizes, capacities, occupancy) are taken from [after] —
     a delta of "how much the table grew" is less useful to a telemetry
     consumer than "how big it is now". *)
  let delta ~(before : t) ~(after : t) =
    {
      vars = after.vars;
      live_nodes = after.live_nodes;
      peak_live_nodes = after.peak_live_nodes;
      interned_total = after.interned_total - before.interned_total;
      unique_capacity = after.unique_capacity;
      external_refs = after.external_refs;
      cache_entries = after.cache_entries;
      cache_capacity = after.cache_capacity;
      cache_lookups = after.cache_lookups - before.cache_lookups;
      cache_hits = after.cache_hits - before.cache_hits;
      cache_stores = after.cache_stores - before.cache_stores;
      cache_evictions = after.cache_evictions - before.cache_evictions;
      ite_recursions = after.ite_recursions - before.ite_recursions;
      and_recursions = after.and_recursions - before.and_recursions;
      xor_recursions = after.xor_recursions - before.xor_recursions;
      constrain_recursions =
        after.constrain_recursions - before.constrain_recursions;
      restrict_recursions =
        after.restrict_recursions - before.restrict_recursions;
      quantify_recursions =
        after.quantify_recursions - before.quantify_recursions;
      and_exists_recursions =
        after.and_exists_recursions - before.and_exists_recursions;
      interned_cubes = after.interned_cubes - before.interned_cubes;
      gc_runs = after.gc_runs - before.gc_runs;
      gc_reclaimed = after.gc_reclaimed - before.gc_reclaimed;
    }
end

(* On a shared view the store-wide quantities (live nodes, peak,
   interned total, table capacity) come from the store's atomics; the
   cache and recursion counters stay the view's own. *)
let snapshot man : Stats.t =
  let live_nodes, peak_live_nodes, interned_total, unique_capacity =
    match man.shared with
    | None -> (man.ucount + 1, man.peak_live + 1, man.made, man.umask + 1)
    | Some sh ->
      ( Atomic.get sh.sh_live + 1,
        Atomic.get sh.sh_peak + 1,
        Atomic.get sh.sh_made,
        Array.fold_left (fun acc st -> acc + st.st_mask + 1) 0 sh.sh_stripes )
  in
  {
    Stats.vars = man.vars;
    live_nodes;
    peak_live_nodes;
    interned_total;
    unique_capacity;
    external_refs = Hashtbl.length man.refs;
    cache_entries = man.centries;
    cache_capacity = man.cmask + 1;
    cache_lookups = man.c_lookups;
    cache_hits = man.c_hits;
    cache_stores = man.c_stores;
    cache_evictions = man.c_evicts;
    ite_recursions = man.n_ite;
    and_recursions = man.n_and;
    xor_recursions = man.n_xor;
    constrain_recursions = man.n_constrain;
    restrict_recursions = man.n_restrict;
    quantify_recursions = man.n_quantify;
    and_exists_recursions = man.n_and_exists;
    interned_cubes = man.next_iarr;
    gc_runs = man.gc_runs;
    gc_reclaimed = man.gc_nodes;
  }

let stats man =
  let s = snapshot man in
  Printf.sprintf
    "vars=%d live=%d peak=%d interned=%d cache=%d/%d hits=%.1f%% gc_runs=%d \
     reclaimed=%d"
    s.Stats.vars s.Stats.live_nodes s.Stats.peak_live_nodes
    s.Stats.interned_total s.Stats.cache_entries s.Stats.cache_capacity
    (100.0 *. Stats.hit_rate s)
    s.Stats.gc_runs s.Stats.gc_reclaimed

(* ----- Concurrent manager tier: the shared store's public face ----- *)

module Shared = struct
  type store = shared

  type telemetry = {
    stripes : int;
    views : int;
    live_nodes : int;
    peak_live_nodes : int;
    interned_total : int;
    intern_retries : int;
    gc_runs : int;
    gc_reclaimed : int;
    barrier_waits : int;
    barrier_wait_ns : int;
  }

  let create ?(nvars = 0) ?(stripes = 64) ?(repr : repr = `Bdd) () =
    if stripes < 1 then invalid_arg "Shared.create: stripes";
    let nstripes = min 1024 (next_pow2 stripes 1) in
    let rec terminal =
      { id = 0; var = const_var; bot = const_var; n_hi = self; n_lo = self;
        mark = false }
    and self = { neg = false; node = terminal } in
    {
      sh_chain = (repr = `Cbdd);
      sh_stripes =
        Array.init nstripes (fun _ ->
            {
              st_lock = Mutex.create ();
              st_slots = Array.make min_stripe_capacity terminal;
              st_mask = min_stripe_capacity - 1;
              st_count = 0;
            });
      sh_terminal = terminal;
      sh_top = self;
      sh_next_id = Atomic.make 1;
      sh_made = Atomic.make 0;
      sh_live = Atomic.make 0;
      sh_peak = Atomic.make 0;
      sh_vars = Atomic.make nvars;
      sh_ext_refs = Atomic.make 0;
      sh_gc_wanted = Atomic.make false;
      sh_no_auto = Atomic.make 0;
      sh_active = Atomic.make 0;
      sh_gc_pending = Atomic.make false;
      sh_lock = Mutex.create ();
      sh_cv = Condition.create ();
      sh_gc_lock = Mutex.create ();
      sh_views = [];
      sh_free = [];
      sh_intern_retries = Atomic.make 0;
      sh_barrier_waits = Atomic.make 0;
      sh_barrier_wait_ns = Atomic.make 0;
      sh_gc_runs = Atomic.make 0;
      sh_gc_reclaimed = Atomic.make 0;
    }

  (* A view: domain-local computed cache, cube tables, roots, budget and
     counters over the shared node store.  The private unique-table
     fields are left as one-slot stubs — every intern dispatches to the
     store.  Registration makes the view a GC root source, so attach it
     before rooting anything through it. *)
  let attach ?(cache_bits = default_cache_bits)
      ?(cache_budget = default_cache_budget) ?(auto_gc = true) sh =
    let terminal = sh.sh_terminal in
    let cache_bits = max 1 (min 24 cache_bits) in
    let ccap = 1 lsl cache_bits in
    let cache_max_entries =
      let budget_entries = max 1 (cache_budget / bytes_per_cache_entry) in
      let rec down k = if k * 2 <= budget_entries then down (k * 2) else k in
      max ccap (down 1)
    in
    let nvars = Atomic.get sh.sh_vars in
    let view =
      {
        chain = sh.sh_chain;
        vars = nvars;
        uslots = Array.make 1 terminal;
        umask = 0;
        ucount = 0;
        ck0 = Array.make ccap min_int;
        ck1 = Array.make ccap 0;
        ck2 = Array.make ccap 0;
        cres = Array.make ccap sh.sh_top;
        cmask = ccap - 1;
        centries = 0;
        cache_max_entries;
        evict_since_resize = 0;
        next_id = 1;
        terminal;
        top = sh.sh_top;
        made = 0;
        iarr_ids =
          (let t = Hashtbl.create 64 in
           Hashtbl.add t [||] 0;
           t);
        next_iarr = 1;
        cube_suffixes = Hashtbl.create 64;
        var_edges = Array.make (max 16 nvars) None;
        refs = Hashtbl.create 64;
        auto_gc;
        gc_wanted = false;
        budget = None;
        n_ite = 0;
        n_and = 0;
        n_xor = 0;
        n_constrain = 0;
        n_restrict = 0;
        n_quantify = 0;
        n_and_exists = 0;
        c_lookups = 0;
        c_hits = 0;
        c_stores = 0;
        c_evicts = 0;
        gc_runs = 0;
        gc_nodes = 0;
        peak_live = 0;
        listeners = [];
        reorder_state = None;
        shared = Some sh;
        op_depth = 0;
      }
    in
    if not auto_gc then Atomic.incr sh.sh_no_auto;
    Mutex.lock sh.sh_lock;
    sh.sh_views <- view :: sh.sh_views;
    Mutex.unlock sh.sh_lock;
    view

  let store_of man = man.shared
  let is_shared man = Option.is_some man.shared

  (* Deregistration drops the view's roots: nodes only it kept alive
     become garbage at the next collection. *)
  let detach man =
    match man.shared with
    | None -> invalid_arg "Shared.detach: private manager"
    | Some sh ->
      Mutex.lock sh.sh_lock;
      sh.sh_views <- List.filter (fun v -> v != man) sh.sh_views;
      sh.sh_free <- List.filter (fun v -> v != man) sh.sh_free;
      Mutex.unlock sh.sh_lock;
      if not man.auto_gc then Atomic.decr sh.sh_no_auto;
      let dropped = Hashtbl.length man.refs in
      if dropped > 0 then
        ignore (Atomic.fetch_and_add sh.sh_ext_refs (-dropped));
      Hashtbl.reset man.refs

  let view_count sh =
    Mutex.lock sh.sh_lock;
    let n = List.length sh.sh_views in
    Mutex.unlock sh.sh_lock;
    n

  (* Check out a view for the calling domain, reusing detachable idle
     views so worker pools don't pay a fresh cache allocation per task.
     The same view may serve different domains over time — never two at
     once — which is exactly the manager thread-safety contract. *)
  let with_view sh f =
    let view =
      Mutex.lock sh.sh_lock;
      match sh.sh_free with
      | v :: rest ->
        sh.sh_free <- rest;
        Mutex.unlock sh.sh_lock;
        v
      | [] ->
        Mutex.unlock sh.sh_lock;
        attach sh
    in
    Fun.protect
      ~finally:(fun () ->
        Mutex.lock sh.sh_lock;
        sh.sh_free <- view :: sh.sh_free;
        Mutex.unlock sh.sh_lock)
      (fun () -> f view)

  let stripes sh = Array.length sh.sh_stripes
  let live_nodes sh = Atomic.get sh.sh_live

  let telemetry sh =
    {
      stripes = Array.length sh.sh_stripes;
      views = view_count sh;
      live_nodes = Atomic.get sh.sh_live;
      peak_live_nodes = Atomic.get sh.sh_peak;
      interned_total = Atomic.get sh.sh_made;
      intern_retries = Atomic.get sh.sh_intern_retries;
      gc_runs = Atomic.get sh.sh_gc_runs;
      gc_reclaimed = Atomic.get sh.sh_gc_reclaimed;
      barrier_waits = Atomic.get sh.sh_barrier_waits;
      barrier_wait_ns = Atomic.get sh.sh_barrier_wait_ns;
    }

  (* Structural audit for tests: every stored node satisfies the
     canonical-form invariants and no (var, then, else) triple appears
     twice anywhere in the store.  Returns the live node count. *)
  let self_check sh =
    let seen = Hashtbl.create 4096 in
    let count = ref 0 in
    Array.iter
      (fun st ->
         Mutex.lock st.st_lock;
         Array.iter
           (fun n ->
              if n != sh.sh_terminal then begin
                incr count;
                if n.n_hi.neg then
                  failwith "Shared.self_check: complemented then-edge";
                if n.var > n.bot then
                  failwith "Shared.self_check: bot above var";
                if (not sh.sh_chain) && n.bot > n.var then
                  failwith "Shared.self_check: chain node in a plain store";
                if n.bot >= n.n_hi.node.var || n.bot >= n.n_lo.node.var then
                  failwith "Shared.self_check: level order violated";
                if n.n_hi.node == n.n_lo.node && n.n_hi.neg = n.n_lo.neg then
                  failwith "Shared.self_check: redundant node";
                if
                  sh.sh_chain
                  && n.n_hi.node.var = const_var && not n.n_hi.neg
                  && (not n.n_lo.neg)
                  && n.n_lo.node.var = n.bot + 1
                then failwith "Shared.self_check: unabsorbed chain";
                let key = (n.var, n.bot, n.n_hi.node.id, uid n.n_lo) in
                if Hashtbl.mem seen key then
                  failwith "Shared.self_check: duplicate node (canonicity)";
                Hashtbl.add seen key ()
              end)
           st.st_slots;
         Mutex.unlock st.st_lock)
      sh.sh_stripes;
    if !count <> Atomic.get sh.sh_live then
      failwith "Shared.self_check: live count drifted";
    !count
end
