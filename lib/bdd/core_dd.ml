(* ROBDDs with output-complement edges, hash-consed in a unique table.
   Canonical form invariants:
   - every node's [n_hi] (then) edge is regular (complement bit clear);
   - a node's variable level is strictly smaller than its children's;
   - no node has [n_hi == n_lo];
   hence two edges denote the same function iff node pointers and complement
   bits coincide. *)

type node = {
  id : int;
  var : int;                    (* level; [max_int] for the terminal *)
  n_hi : t;                     (* invariant: regular *)
  n_lo : t;
}

and t = { neg : bool; node : node }

type man = {
  mutable vars : int;
  unique : (int * int * int, node) Hashtbl.t;     (* (var, hi id, lo uid) *)
  cache : (int * int * int * int, t) Hashtbl.t;   (* (op tag, a, b, c) *)
  mutable next_id : int;
  terminal : node;
  mutable made : int;                             (* nodes ever interned *)
}

let const_var = max_int

let new_man ?(nvars = 0) () =
  let rec terminal =
    { id = 0; var = const_var; n_hi = self; n_lo = self }
  and self = { neg = false; node = terminal } in
  {
    vars = nvars;
    unique = Hashtbl.create 4096;
    cache = Hashtbl.create 4096;
    next_id = 1;
    terminal;
    made = 0;
  }

let nvars man = man.vars
let clear_caches man = Hashtbl.reset man.cache

let one man = { neg = false; node = man.terminal }
let zero man = { neg = true; node = man.terminal }

let is_const e = e.node.var = const_var
let is_one e = is_const e && not e.neg
let is_zero e = is_const e && e.neg
let equal a b = a.node == b.node && a.neg = b.neg
let compl e = { e with neg = not e.neg }
let is_compl_pair a b = a.node == b.node && a.neg <> b.neg
let topvar e = e.node.var
let uid e = (2 * e.node.id) + Bool.to_int e.neg
let node_id e = e.node.id

(* Cofactors push the edge's complement bit through the node. *)
let hi e =
  let n = e.node in
  if n.var = const_var then e
  else { neg = e.neg; node = n.n_hi.node }

let lo e =
  let n = e.node in
  if n.var = const_var then e
  else { neg = e.neg <> n.n_lo.neg; node = n.n_lo.node }

let branches e v =
  assert (topvar e >= v);
  if topvar e = v then (hi e, lo e) else (e, e)

(* Intern a node whose then-edge is already regular. *)
let intern man var ~hi:h ~lo:l =
  assert (not h.neg);
  let key = (var, h.node.id, uid l) in
  match Hashtbl.find_opt man.unique key with
  | Some n -> { neg = false; node = n }
  | None ->
    let n = { id = man.next_id; var; n_hi = h; n_lo = l } in
    man.next_id <- man.next_id + 1;
    man.made <- man.made + 1;
    Hashtbl.add man.unique key n;
    { neg = false; node = n }

let mk man var ~hi:h ~lo:l =
  assert (var < topvar h && var < topvar l);
  if equal h l then h
  else if h.neg then compl (intern man var ~hi:(compl h) ~lo:(compl l))
  else intern man var ~hi:h ~lo:l

let ithvar man i =
  if i < 0 then invalid_arg "Core_dd.ithvar: negative variable";
  if i >= man.vars then man.vars <- i + 1;
  mk man i ~hi:(one man) ~lo:(zero man)

(* ----- ITE with standard-triple normalization ----- *)

let tag_ite = 0

let rec ite man f g h =
  if is_one f then g
  else if is_zero f then h
  else if equal g h then g
  else if is_one g && is_zero h then f
  else if is_zero g && is_one h then compl f
  else begin
    (* Collapse arguments equal (or complementary) to the test. *)
    let g = if equal f g then one man else if is_compl_pair f g then zero man else g in
    let h = if equal f h then zero man else if is_compl_pair f h then one man else h in
    if is_one g && is_zero h then f
    else begin
      (* Canonical argument order for the commutative cases. *)
      let f, g, h =
        if is_one g && uid f > uid h then (h, g, f)
        else if is_zero h && uid f > uid g then (g, f, h)
        else if is_zero g && uid f > uid h then (compl h, g, compl f)
        else if is_one h && uid f > uid g then (compl g, compl f, h)
        else if is_compl_pair g h && uid f > uid g then (g, f, compl f)
        else (f, g, h)
      in
      (* Regular test edge, then regular then-edge. *)
      let f, g, h = if f.neg then (compl f, h, g) else (f, g, h) in
      if g.neg then compl (ite_aux man f (compl g) (compl h))
      else ite_aux man f g h
    end
  end

and ite_aux man f g h =
  let key = (tag_ite, uid f, uid g, uid h) in
  match Hashtbl.find_opt man.cache key with
  | Some r -> r
  | None ->
    let v = min (topvar f) (min (topvar g) (topvar h)) in
    let ft, fe = branches f v and gt, ge = branches g v and ht, he = branches h v in
    let t = ite man ft gt ht in
    let e = ite man fe ge he in
    let r = mk man v ~hi:t ~lo:e in
    Hashtbl.add man.cache key r;
    r

let dand man f g = ite man f g (zero man)
let dor man f g = ite man f (one man) g
let dxor man f g = ite man f (compl g) g
let dxnor man f g = ite man f g (compl g)
let dnand man f g = compl (dand man f g)
let dnor man f g = compl (dor man f g)
let imply man f g = ite man f g (one man)
let diff man f g = dand man f (compl g)

let conj man fs = List.fold_left (dand man) (one man) fs
let disj man fs = List.fold_left (dor man) (zero man) fs

let leq man f g = is_zero (diff man f g)

(* ----- Cofactor with respect to an arbitrary variable ----- *)

let cofactor man f ~var phase =
  let memo = Hashtbl.create 64 in
  let rec go f =
    if topvar f > var then f
    else if topvar f = var then if phase then hi f else lo f
    else
      match Hashtbl.find_opt memo (uid f) with
      | Some r -> r
      | None ->
        let r = mk man (topvar f) ~hi:(go (hi f)) ~lo:(go (lo f)) in
        Hashtbl.add memo (uid f) r;
        r
  in
  go f

(* ----- Quantification ----- *)

let quantify man combine vars f =
  let vars = List.sort_uniq compare vars in
  let memo = Hashtbl.create 64 in
  let rec go vars f =
    match vars with
    | [] -> f
    | v :: rest ->
      if is_const f then f
      else if topvar f > v then go rest f
      else
        let key = (uid f, List.length vars) in
        match Hashtbl.find_opt memo key with
        | Some r -> r
        | None ->
          let vars' = if topvar f = v then rest else vars in
          let t = go vars' (hi f) and e = go vars' (lo f) in
          let r =
            if topvar f = v then combine t e
            else mk man (topvar f) ~hi:t ~lo:e
          in
          Hashtbl.add memo key r;
          r
  in
  go vars f

let exists man vars f = quantify man (dor man) vars f
let forall man vars f = quantify man (dand man) vars f

let and_exists man vars f g =
  let vars = List.sort_uniq compare vars in
  let memo = Hashtbl.create 256 in
  let rec go vars f g =
    if is_zero f || is_zero g then zero man
    else if is_one f && is_one g then one man
    else
      match vars with
      | [] -> dand man f g
      | v :: rest ->
        let tf = topvar f and tg = topvar g in
        let top = min tf tg in
        if top > v then go rest f g
        else
          let key = (uid f, uid g, List.length vars) in
          (match Hashtbl.find_opt memo key with
           | Some r -> r
           | None ->
             let ft, fe = branches f top and gt, ge = branches g top in
             let vars' = if top = v then rest else vars in
             let r =
               if top = v then dor man (go vars' ft gt) (go vars' fe ge)
               else mk man top ~hi:(go vars' ft gt) ~lo:(go vars' fe ge)
             in
             Hashtbl.add memo key r;
             r)
  in
  go vars f g

(* ----- Composition ----- *)

let compose man f ~var g =
  let memo = Hashtbl.create 64 in
  let rec go f =
    if topvar f > var then f
    else
      match Hashtbl.find_opt memo (uid f) with
      | Some r -> r
      | None ->
        let r =
          if topvar f = var then ite man g (hi f) (lo f)
          else
            (* [g] may reach above this level, so rebuild with ITE. *)
            ite man (ithvar man (topvar f)) (go (hi f)) (go (lo f))
        in
        Hashtbl.add memo (uid f) r;
        r
  in
  go f

let vector_compose man f subs =
  match subs with
  | [] -> f
  | _ ->
    let table = Hashtbl.create 16 in
    List.iter (fun (v, g) -> Hashtbl.replace table v g) subs;
    let last = List.fold_left (fun acc (v, _) -> max acc v) 0 subs in
    let memo = Hashtbl.create 64 in
    let rec go f =
      if topvar f > last then f
      else
        match Hashtbl.find_opt memo (uid f) with
        | Some r -> r
        | None ->
          let v = topvar f in
          let test =
            match Hashtbl.find_opt table v with
            | Some g -> g
            | None -> ithvar man v
          in
          let r = ite man test (go (hi f)) (go (lo f)) in
          Hashtbl.add memo (uid f) r;
          r
    in
    go f

let rename man f pairs =
  vector_compose man f (List.map (fun (a, b) -> (a, ithvar man b)) pairs)

(* ----- Generalized cofactors ----- *)

let tag_constrain = 1
let tag_restrict = 2

let rec constrain_rec man f c =
  if is_one c || is_const f then f
  else
    let key = (tag_constrain, uid f, uid c, 0) in
    match Hashtbl.find_opt man.cache key with
    | Some r -> r
    | None ->
      let v = min (topvar f) (topvar c) in
      let ft, fe = branches f v and ct, ce = branches c v in
      let r =
        if is_zero ce then constrain_rec man ft ct
        else if is_zero ct then constrain_rec man fe ce
        else
          mk man v ~hi:(constrain_rec man ft ct) ~lo:(constrain_rec man fe ce)
      in
      Hashtbl.add man.cache key r;
      r

let constrain man f c =
  if is_zero c then invalid_arg "Core_dd.constrain: empty care set";
  constrain_rec man f c

let rec restrict_rec man f c =
  if is_one c || is_const f then f
  else
    let key = (tag_restrict, uid f, uid c, 0) in
    match Hashtbl.find_opt man.cache key with
    | Some r -> r
    | None ->
      let fv = topvar f and cv = topvar c in
      let r =
        if cv < fv then restrict_rec man f (dor man (hi c) (lo c))
        else
          let ft, fe = branches f fv and ct, ce = branches c fv in
          if is_zero ce then restrict_rec man ft ct
          else if is_zero ct then restrict_rec man fe ce
          else
            mk man fv ~hi:(restrict_rec man ft ct) ~lo:(restrict_rec man fe ce)
      in
      Hashtbl.add man.cache key r;
      r

let restrict man f c =
  if is_zero c then invalid_arg "Core_dd.restrict: empty care set";
  restrict_rec man f c

(* ----- Inspection ----- *)

let iter_nodes _man f k =
  let seen = Hashtbl.create 64 in
  let rec go n =
    if not (Hashtbl.mem seen n.id) then begin
      Hashtbl.add seen n.id ();
      k n.id n.var;
      if n.var <> const_var then begin
        go n.n_hi.node;
        go n.n_lo.node
      end
    end
  in
  go f.node

let size man f =
  let n = ref 0 in
  iter_nodes man f (fun _ _ -> incr n);
  !n

let shared_size _man fs =
  let seen = Hashtbl.create 64 in
  let count = ref 0 in
  let rec go n =
    if not (Hashtbl.mem seen n.id) then begin
      Hashtbl.add seen n.id ();
      incr count;
      if n.var <> const_var then begin
        go n.n_hi.node;
        go n.n_lo.node
      end
    end
  in
  List.iter (fun e -> go e.node) fs;
  !count

let support man f =
  let vars = Hashtbl.create 16 in
  iter_nodes man f (fun _ v -> if v <> const_var then Hashtbl.replace vars v ());
  List.sort compare (Hashtbl.fold (fun v () acc -> v :: acc) vars [])

let eval f assign =
  let rec go e =
    if is_const e then not e.neg
    else if assign (topvar e) then go (hi e)
    else go (lo e)
  in
  go f

let sat_count man f ~nvars =
  (* Density of the onset under the uniform measure; independent of which
     variables actually occur, so a per-function memo is sound. *)
  let memo = Hashtbl.create 64 in
  let rec density e =
    if is_one e then 1.0
    else if is_zero e then 0.0
    else
      match Hashtbl.find_opt memo (uid e) with
      | Some d -> d
      | None ->
        let d = 0.5 *. (density (hi e) +. density (lo e)) in
        Hashtbl.add memo (uid e) d;
        d
  in
  ignore man;
  density f *. (2.0 ** float_of_int nvars)

let nodes_at_level man f level =
  let n = ref 0 in
  iter_nodes man f (fun _ v -> if v = level then incr n);
  !n

let count_below man f level =
  let n = ref 0 in
  iter_nodes man f (fun _ v -> if v > level then incr n);
  !n

let stats man =
  Printf.sprintf "vars=%d live_nodes=%d interned=%d cache=%d" man.vars
    (Hashtbl.length man.unique + 1)
    man.made
    (Hashtbl.length man.cache)
