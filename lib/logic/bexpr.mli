(** Boolean expression AST with a textual syntax.

    Grammar (loosest to tightest binding):
    {v
      expr  ::= iff
      iff   ::= imp ( "<=>" imp )*
      imp   ::= or  ( "=>" or )*          (right associative)
      or    ::= xor ( ("|" | "+") xor )*
      xor   ::= and ( "^" and )*
      and   ::= unary ( ("&" | "*") unary )*
      unary ::= ("!" | "~") unary | atom
      atom  ::= "0" | "1" | ident | "(" expr ")"
    v}
    Identifiers are [A-Za-z_][A-Za-z0-9_]* . *)

type t =
  | Const of bool
  | Var of string
  | Not of t
  | And of t * t
  | Or of t * t
  | Xor of t * t
  | Imply of t * t
  | Iff of t * t

val parse : string -> (t, string) result
(** Parse the textual syntax; [Error msg] carries a position-annotated
    message. *)

val parse_exn : string -> t
(** @raise Invalid_argument on syntax errors. *)

val vars : t -> string list
(** Free variables in first-appearance order (depth-first, left to right). *)

val eval : t -> (string -> bool) -> bool

val to_bdd : Bdd.man -> env:(string -> Bdd.t) -> t -> Bdd.t
(** Build the BDD, resolving variables through [env]. *)

val to_bdd_auto : Bdd.man -> t -> Bdd.t * (string * int) list
(** Build the BDD, assigning BDD variables to names in first-appearance
    order starting from the manager's current variable count; returns the
    mapping used. *)

val pp : Format.formatter -> t -> unit
(** Print in the textual syntax with minimal parentheses. *)

val to_string : t -> string
