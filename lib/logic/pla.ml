type plane = On | Off | Dc

type row = { input : string; output : string }

type t = {
  num_inputs : int;
  num_outputs : int;
  input_labels : string list;
  output_labels : string list;
  typ : string;
  rows : row list;
}

exception Malformed of string

let fail fmt = Printf.ksprintf (fun s -> raise (Malformed s)) fmt

let tokens line =
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun s -> s <> "")

let parse text =
  let ni = ref (-1) and no = ref (-1) in
  let ilb = ref [] and ob = ref [] in
  let typ = ref "fd" in
  let rows = ref [] in
  let handle line =
    let line = String.trim line in
    if line = "" || line.[0] = '#' then ()
    else if line.[0] = '.' then begin
      match tokens line with
      | ".i" :: [ n ] -> ni := int_of_string n
      | ".o" :: [ n ] -> no := int_of_string n
      | ".ilb" :: labels -> ilb := labels
      | ".ob" :: labels -> ob := labels
      | ".type" :: [ t ] ->
        if not (List.mem t [ "f"; "fd"; "fr"; "fdr" ]) then
          fail "unsupported .type %s" t;
        typ := t
      | ".p" :: _ | ".e" :: _ | ".end" :: _ -> ()
      | d :: _ -> fail "unsupported directive %s" d
      | [] -> ()
    end
    else begin
      match tokens line with
      | [ input; output ] -> rows := { input; output } :: !rows
      | [ combined ] when !ni > 0 && String.length combined = !ni + !no ->
        rows :=
          { input = String.sub combined 0 !ni;
            output = String.sub combined !ni !no }
          :: !rows
      | _ -> fail "cannot parse row %S" line
    end
  in
  match
    List.iter handle (String.split_on_char '\n' text);
    if !ni <= 0 then fail ".i missing or not positive";
    if !no <= 0 then fail ".o missing or not positive";
    let default_labels prefix n = List.init n (Printf.sprintf "%s%d" prefix) in
    let input_labels =
      if !ilb = [] then default_labels "x" !ni
      else if List.length !ilb <> !ni then fail ".ilb arity mismatch"
      else !ilb
    in
    let output_labels =
      if !ob = [] then default_labels "f" !no
      else if List.length !ob <> !no then fail ".ob arity mismatch"
      else !ob
    in
    let check_row r =
      if String.length r.input <> !ni then
        fail "input plane %S has wrong width" r.input;
      if String.length r.output <> !no then
        fail "output plane %S has wrong width" r.output;
      String.iter
        (fun ch ->
           if not (List.mem ch [ '0'; '1'; '-' ]) then
             fail "bad input character %c" ch)
        r.input;
      String.iter
        (fun ch ->
           if not (List.mem ch [ '0'; '1'; '-'; '~'; '2'; '4' ]) then
             fail "bad output character %c" ch)
        r.output
    in
    List.iter check_row !rows;
    {
      num_inputs = !ni;
      num_outputs = !no;
      input_labels;
      output_labels;
      typ = !typ;
      rows = List.rev !rows;
    }
  with
  | pla -> Ok pla
  | exception Malformed m -> Error m
  | exception Failure _ -> Error "malformed number"

let parse_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  parse text

let print pla =
  let buf = Buffer.create 1024 in
  Printf.bprintf buf ".i %d\n.o %d\n" pla.num_inputs pla.num_outputs;
  Printf.bprintf buf ".ilb %s\n" (String.concat " " pla.input_labels);
  Printf.bprintf buf ".ob %s\n" (String.concat " " pla.output_labels);
  if pla.typ <> "fd" then Printf.bprintf buf ".type %s\n" pla.typ;
  Printf.bprintf buf ".p %d\n" (List.length pla.rows);
  List.iter
    (fun r -> Printf.bprintf buf "%s %s\n" r.input r.output)
    pla.rows;
  Buffer.add_string buf ".e\n";
  Buffer.contents buf

let input_cube man input =
  let acc = ref (Bdd.one man) in
  String.iteri
    (fun v ch ->
       match ch with
       | '1' -> acc := Bdd.dand man !acc (Bdd.ithvar man v)
       | '0' -> acc := Bdd.dand man !acc (Bdd.compl (Bdd.ithvar man v))
       | _ -> ())
    input;
  !acc

(* Which plane a given output character contributes to, per PLA type. *)
let plane_of typ ch =
  match (typ, ch) with
  | (_, ('0' | '~')) -> None
  | (_, '1') -> Some On
  | (("fd" | "fdr"), ('-' | '2')) -> Some Dc
  | (("fr" | "fdr"), '4') -> Some Off
  | (("f" | "fr"), ('-' | '2')) -> None
  | (("f" | "fd"), '4') -> None
  | _ -> None

let functions man pla =
  let zero = Bdd.zero man in
  let on = Array.make pla.num_outputs zero in
  let off = Array.make pla.num_outputs zero in
  let dc = Array.make pla.num_outputs zero in
  List.iter
    (fun r ->
       let cube = input_cube man r.input in
       String.iteri
         (fun o ch ->
            match plane_of pla.typ ch with
            | Some On -> on.(o) <- Bdd.dor man on.(o) cube
            | Some Off -> off.(o) <- Bdd.dor man off.(o) cube
            | Some Dc -> dc.(o) <- Bdd.dor man dc.(o) cube
            | None -> ())
         r.output)
    pla.rows;
  List.mapi
    (fun o label ->
       if not (Bdd.is_zero (Bdd.dand man on.(o) off.(o))) then
         invalid_arg
           (Printf.sprintf "Pla.functions: output %s has ON ∩ OFF ≠ ∅" label);
       let care =
         match pla.typ with
         | "f" -> Bdd.one man
         | "fd" -> Bdd.compl dc.(o)
         | "fr" -> Bdd.dor man on.(o) off.(o)
         | "fdr" -> Bdd.compl dc.(o)
         | _ -> assert false
       in
       (label, (on.(o), care)))
    pla.output_labels

let of_covers ~num_inputs ?input_labels covers =
  let input_labels =
    match input_labels with
    | Some l ->
      if List.length l <> num_inputs then
        invalid_arg "Pla.of_covers: label arity mismatch";
      l
    | None -> List.init num_inputs (Printf.sprintf "x%d")
  in
  let num_outputs = List.length covers in
  if num_outputs = 0 then invalid_arg "Pla.of_covers: no outputs";
  let row_of o cube =
    let input =
      String.init num_inputs (fun v ->
          match List.assoc_opt v cube with
          | Some true -> '1'
          | Some false -> '0'
          | None -> '-')
    in
    let output =
      String.init num_outputs (fun i -> if i = o then '1' else '0')
    in
    { input; output }
  in
  {
    num_inputs;
    num_outputs;
    input_labels;
    output_labels = List.map fst covers;
    typ = "fd";
    rows =
      List.concat
        (List.mapi (fun o (_, cubes) -> List.map (row_of o) cubes) covers);
  }
