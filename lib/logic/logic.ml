(** Boolean-function toolkit: dense truth tables (ground truth for the
    exact minimizer and for cross-validation) and a Boolean expression
    language. *)

module Truth_table = Truth_table
module Bexpr = Bexpr
module Pla = Pla
