type t =
  | Const of bool
  | Var of string
  | Not of t
  | And of t * t
  | Or of t * t
  | Xor of t * t
  | Imply of t * t
  | Iff of t * t

(* ----- Lexer ----- *)

type token =
  | Tconst of bool
  | Tident of string
  | Tnot
  | Tand
  | Tor
  | Txor
  | Timply
  | Tiff
  | Tlparen
  | Trparen
  | Teof

exception Syntax of string

let is_ident_start ch = (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') || ch = '_'
let is_ident ch = is_ident_start ch || (ch >= '0' && ch <= '9')

let tokenize s =
  let n = String.length s in
  let toks = ref [] in
  let emit t = toks := t :: !toks in
  let rec go i =
    if i >= n then emit Teof
    else
      match s.[i] with
      | ' ' | '\t' | '\n' | '\r' -> go (i + 1)
      | '0' -> emit (Tconst false); go (i + 1)
      | '1' -> emit (Tconst true); go (i + 1)
      | '!' | '~' -> emit Tnot; go (i + 1)
      | '&' | '*' -> emit Tand; go (i + 1)
      | '|' | '+' -> emit Tor; go (i + 1)
      | '^' -> emit Txor; go (i + 1)
      | '(' -> emit Tlparen; go (i + 1)
      | ')' -> emit Trparen; go (i + 1)
      | '=' ->
        if i + 1 < n && s.[i + 1] = '>' then begin emit Timply; go (i + 2) end
        else raise (Syntax (Printf.sprintf "char %d: expected => " i))
      | '<' ->
        if i + 2 < n && s.[i + 1] = '=' && s.[i + 2] = '>' then begin
          emit Tiff;
          go (i + 3)
        end
        else raise (Syntax (Printf.sprintf "char %d: expected <=>" i))
      | ch when is_ident_start ch ->
        let j = ref i in
        while !j < n && is_ident s.[!j] do incr j done;
        emit (Tident (String.sub s i (!j - i)));
        go !j
      | ch -> raise (Syntax (Printf.sprintf "char %d: unexpected '%c'" i ch))
  in
  go 0;
  List.rev !toks

(* ----- Recursive-descent parser ----- *)

type stream = { mutable toks : token list }

let peek st = match st.toks with [] -> Teof | t :: _ -> t
let advance st = match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let rec p_iff st =
  let lhs = p_imply st in
  if peek st = Tiff then begin
    advance st;
    Iff (lhs, p_iff st)
  end
  else lhs

and p_imply st =
  let lhs = p_or st in
  if peek st = Timply then begin
    advance st;
    Imply (lhs, p_imply st)
  end
  else lhs

and p_or st =
  let lhs = ref (p_xor st) in
  while peek st = Tor do
    advance st;
    lhs := Or (!lhs, p_xor st)
  done;
  !lhs

and p_xor st =
  let lhs = ref (p_and st) in
  while peek st = Txor do
    advance st;
    lhs := Xor (!lhs, p_and st)
  done;
  !lhs

and p_and st =
  let lhs = ref (p_unary st) in
  while peek st = Tand do
    advance st;
    lhs := And (!lhs, p_unary st)
  done;
  !lhs

and p_unary st =
  match peek st with
  | Tnot ->
    advance st;
    Not (p_unary st)
  | _ -> p_atom st

and p_atom st =
  match peek st with
  | Tconst b ->
    advance st;
    Const b
  | Tident name ->
    advance st;
    Var name
  | Tlparen ->
    advance st;
    let e = p_iff st in
    if peek st <> Trparen then raise (Syntax "expected )");
    advance st;
    e
  | _ -> raise (Syntax "expected a constant, identifier or (")

let parse s =
  match
    let st = { toks = tokenize s } in
    let e = p_iff st in
    if peek st <> Teof then raise (Syntax "trailing input");
    e
  with
  | e -> Ok e
  | exception Syntax msg -> Error msg

let parse_exn s =
  match parse s with
  | Ok e -> e
  | Error msg -> invalid_arg ("Bexpr.parse_exn: " ^ msg)

(* ----- Semantics ----- *)

let vars e =
  let seen = Hashtbl.create 8 in
  let acc = ref [] in
  let rec go = function
    | Const _ -> ()
    | Var v ->
      if not (Hashtbl.mem seen v) then begin
        Hashtbl.add seen v ();
        acc := v :: !acc
      end
    | Not a -> go a
    | And (a, b) | Or (a, b) | Xor (a, b) | Imply (a, b) | Iff (a, b) ->
      go a;
      go b
  in
  go e;
  List.rev !acc

let rec eval e env =
  match e with
  | Const b -> b
  | Var v -> env v
  | Not a -> not (eval a env)
  | And (a, b) -> eval a env && eval b env
  | Or (a, b) -> eval a env || eval b env
  | Xor (a, b) -> eval a env <> eval b env
  | Imply (a, b) -> (not (eval a env)) || eval b env
  | Iff (a, b) -> eval a env = eval b env

let rec to_bdd man ~env e =
  match e with
  | Const true -> Bdd.one man
  | Const false -> Bdd.zero man
  | Var v -> env v
  | Not a -> Bdd.compl (to_bdd man ~env a)
  | And (a, b) -> Bdd.dand man (to_bdd man ~env a) (to_bdd man ~env b)
  | Or (a, b) -> Bdd.dor man (to_bdd man ~env a) (to_bdd man ~env b)
  | Xor (a, b) -> Bdd.dxor man (to_bdd man ~env a) (to_bdd man ~env b)
  | Imply (a, b) -> Bdd.imply man (to_bdd man ~env a) (to_bdd man ~env b)
  | Iff (a, b) -> Bdd.dxnor man (to_bdd man ~env a) (to_bdd man ~env b)

let to_bdd_auto man e =
  let names = vars e in
  let base = Bdd.nvars man in
  let mapping = List.mapi (fun i name -> (name, base + i)) names in
  let env name = Bdd.ithvar man (List.assoc name mapping) in
  (to_bdd man ~env e, mapping)

(* ----- Printer ----- *)

let prec = function
  | Const _ | Var _ -> 7
  | Not _ -> 6
  | And _ -> 5
  | Xor _ -> 4
  | Or _ -> 3
  | Imply _ -> 2
  | Iff _ -> 1

let rec pp_prec level ppf e =
  let p = prec e in
  let wrap = p < level in
  if wrap then Format.pp_print_char ppf '(';
  (match e with
   | Const b -> Format.pp_print_char ppf (if b then '1' else '0')
   | Var v -> Format.pp_print_string ppf v
   | Not a -> Format.fprintf ppf "!%a" (pp_prec 6) a
   | And (a, b) -> Format.fprintf ppf "%a & %a" (pp_prec 5) a (pp_prec 6) b
   | Xor (a, b) -> Format.fprintf ppf "%a ^ %a" (pp_prec 4) a (pp_prec 5) b
   | Or (a, b) -> Format.fprintf ppf "%a | %a" (pp_prec 3) a (pp_prec 4) b
   | Imply (a, b) -> Format.fprintf ppf "%a => %a" (pp_prec 3) a (pp_prec 2) b
   | Iff (a, b) -> Format.fprintf ppf "%a <=> %a" (pp_prec 2) a (pp_prec 1) b);
  if wrap then Format.pp_print_char ppf ')'

let pp ppf e = pp_prec 0 ppf e
let to_string e = Format.asprintf "%a" pp e
