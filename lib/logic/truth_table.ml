type t = { n : int; bits : Bytes.t }

let max_vars = 20

let check_nvars n =
  if n < 0 || n > max_vars then
    invalid_arg (Printf.sprintf "Truth_table: %d variables unsupported" n)

let create n f =
  check_nvars n;
  let size = 1 lsl n in
  let bits = Bytes.create size in
  for m = 0 to size - 1 do
    Bytes.unsafe_set bits m (if f m then '\001' else '\000')
  done;
  { n; bits }

let nvars t = t.n
let points t = 1 lsl t.n
let get t m = Bytes.unsafe_get t.bits m <> '\000'

let const n b = create n (fun _ -> b)
let var n v =
  check_nvars n;
  if v < 0 || v >= n then invalid_arg "Truth_table.var: out of range";
  create n (fun m -> (m lsr v) land 1 = 1)

let lift1 op a = create a.n (fun m -> op (get a m))

let lift2 name op a b =
  if a.n <> b.n then invalid_arg ("Truth_table." ^ name ^ ": arity mismatch");
  create a.n (fun m -> op (get a m) (get b m))

let bnot a = lift1 not a
let band a b = lift2 "band" ( && ) a b
let bor a b = lift2 "bor" ( || ) a b
let bxor a b = lift2 "bxor" ( <> ) a b
let bdiff a b = lift2 "bdiff" (fun x y -> x && not y) a b

let equal a b = a.n = b.n && Bytes.equal a.bits b.bits

let is_const a =
  let v = get a 0 in
  let rec all m = m >= points a || (get a m = v && all (m + 1)) in
  if all 1 then Some v else None

let leq a b =
  if a.n <> b.n then invalid_arg "Truth_table.leq: arity mismatch";
  let rec go m = m >= points a || ((not (get a m) || get b m) && go (m + 1)) in
  go 0

let count_ones a =
  let c = ref 0 in
  for m = 0 to points a - 1 do
    if get a m then incr c
  done;
  !c

let of_bdd man ~nvars f =
  ignore man;
  create nvars (fun m -> Bdd.eval f (fun v -> (m lsr v) land 1 = 1))

let to_bdd man t =
  let rec go v fixed =
    if v = t.n then if get t fixed then Bdd.one man else Bdd.zero man
    else
      Bdd.ite man (Bdd.ithvar man v)
        (go (v + 1) (fixed lor (1 lsl v)))
        (go (v + 1) fixed)
  in
  go 0 0

(* Leaf order of the paper's figures: leftmost leaf takes the 0-branch
   everywhere, variable 0 is the most significant decision.  Leaf index [j]
   therefore assigns variable [v] the bit [ (j lsr (n-1-v)) land 1 ]. *)
let minterm_of_leaf n j =
  let m = ref 0 in
  for v = 0 to n - 1 do
    if (j lsr (n - 1 - v)) land 1 = 1 then m := !m lor (1 lsl v)
  done;
  !m

let nvars_of_length len =
  let rec go n = if 1 lsl n >= len then n else go (n + 1) in
  let n = go 0 in
  if 1 lsl n <> len then
    invalid_arg "Truth_table.of_bits: length is not a power of two";
  n

let strip s =
  String.to_seq s |> Seq.filter (fun ch -> ch <> ' ') |> String.of_seq

let of_bits s =
  let s = strip s in
  let n = nvars_of_length (String.length s) in
  let a = Array.make (1 lsl n) false in
  String.iteri
    (fun j ch ->
       match ch with
       | '0' -> ()
       | '1' -> a.(minterm_of_leaf n j) <- true
       | _ -> invalid_arg "Truth_table.of_bits: expected 0 or 1")
    s;
  create n (fun m -> a.(m))

let paper_instance s =
  let s = strip s in
  let n = nvars_of_length (String.length s) in
  let fa = Array.make (1 lsl n) false in
  let ca = Array.make (1 lsl n) false in
  String.iteri
    (fun j ch ->
       let m = minterm_of_leaf n j in
       match ch with
       | '0' -> ca.(m) <- true
       | '1' ->
         fa.(m) <- true;
         ca.(m) <- true
       | 'd' -> ()
       | _ -> invalid_arg "Truth_table.paper_instance: expected 0, 1 or d")
    s;
  (create n (fun m -> fa.(m)), create n (fun m -> ca.(m)))

let pp ppf t =
  for j = 0 to points t - 1 do
    Format.pp_print_char ppf
      (if get t (minterm_of_leaf t.n j) then '1' else '0')
  done
