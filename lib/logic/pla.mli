(** Espresso-style PLA files: the traditional carrier of incompletely
    specified two-level logic (and the paper's don't-care instances in
    their historical habitat).

    Supported: [.i]/[.o] (required), [.ilb]/[.ob] labels, [.p], [.type]
    with [f], [fd], [fr], [fdr] (default [fd]), comments, [.e]/[.end].
    Input plane characters: [0 1 -]; output plane: [1] (row in this
    output's ON/OFF/DC set according to its plane), [0]/[~] (no
    statement), [-]/[2] (don't care, type [fd]/[fdr]), [4] (OFF, types
    with an R plane). *)

type plane = On | Off | Dc

type row = { input : string; output : string }

type t = {
  num_inputs : int;
  num_outputs : int;
  input_labels : string list;  (** [x0 …] when no [.ilb] *)
  output_labels : string list;
  typ : string;  (** ["f"], ["fd"], ["fr"] or ["fdr"] *)
  rows : row list;
}

val parse : string -> (t, string) result
val parse_file : string -> (t, string) result

val print : t -> string

val functions : Bdd.man -> t -> (string * (Bdd.t * Bdd.t)) list
(** Per output, the pair [(f, care)] over BDD variables [0 ..
    num_inputs-1] (in label order): the incompletely specified function
    the PLA describes.  For type [f] the care set is 1; for [fd] don't
    cares come from the D-plane; for [fr] the care set is ON ∪ OFF; for
    [fdr] all three planes are read and checked for consistency.
    @raise Invalid_argument when ON and OFF intersect. *)

val of_covers :
  num_inputs:int ->
  ?input_labels:string list ->
  (string * Bdd.Cube.cube list) list ->
  t
(** Build a (type [fd]) PLA from per-output cube covers — e.g. the output
    of {!Minimize.Isop}. *)
