(** Dense truth tables for small variable counts.

    Truth tables are the ground truth the minimization framework is tested
    against: exact EBM enumerates covers on them, and every heuristic result
    is checked for semantic containment through them.  Variable [v] of a
    table is bit [v] of the minterm index, matching the BDD order (variable
    0 topmost). *)

type t

val create : int -> (int -> bool) -> t
(** [create n f] tabulates [f] over minterm indices [0 .. 2^n - 1]. *)

val nvars : t -> int

val points : t -> int
(** [2^nvars]. *)

val get : t -> int -> bool
(** Value at a minterm index. *)

val const : int -> bool -> t
val var : int -> int -> t
(** [var n v] is the projection of variable [v] over [n] variables. *)

val bnot : t -> t
val band : t -> t -> t
val bor : t -> t -> t
val bxor : t -> t -> t
val bdiff : t -> t -> t
(** [bdiff a b = a·¬b]. *)

val equal : t -> t -> bool
val is_const : t -> bool option
(** [Some b] when the table is constantly [b]. *)

val leq : t -> t -> bool
val count_ones : t -> int

val of_bdd : Bdd.man -> nvars:int -> Bdd.t -> t
val to_bdd : Bdd.man -> t -> Bdd.t

val of_bits : string -> t
(** [of_bits s] reads a table from a 0/1 string of length [2^n] in the
    paper's leaf order: the leftmost character is the leaf reached by taking
    the 0-branch of every variable, and variable 0 (topmost) is the most
    significant decision.  E.g. ["0111"] over [x0, x1] is [x0 + x1]. *)

val paper_instance : string -> t * t
(** [paper_instance s] reads the paper's instance notation over [{0,1,d}]
    (spaces ignored), e.g. ["d1 01"]: returns [(f, c)] where [c] is false
    exactly on the [d] leaves and [f] is the listed value on care leaves and
    false on don't-care leaves. *)

val pp : Format.formatter -> t -> unit
(** Print as a 0/1 string in the paper's leaf order. *)
