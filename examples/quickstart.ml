(* Quickstart: the paper's running example (Figure 1) end to end.

   We build the incompletely specified function of Figure 1, run every
   catalogued heuristic on it, compare against the exact minimum, and
   write Graphviz renderings of the inputs and one optimal cover. *)

let () =
  Obs.Logging.setup ();
  let man = Bdd.create () in
  (* Figure 1's instance has three variables; we use the leaf notation of
     the paper (§3.2): '1'/'0' are care values, 'd' is a don't care.  The
     vector below annotates the binary decision tree of Figure 1c. *)
  let f_tt, c_tt = Logic.Truth_table.paper_instance "d1d1 01dd" in
  let f = Logic.Truth_table.to_bdd man f_tt in
  let c = Logic.Truth_table.to_bdd man c_tt in
  let inst = Minimize.Ispec.make ~f ~c in

  Format.printf "Instance [f; c] over 3 variables:@.";
  Format.printf "  leaves (paper order): %a@." (Minimize.Ispec.pp man) inst;
  Format.printf "  |f| = %d nodes, |c| = %d nodes, c_onset = %.0f%%@.@."
    (Bdd.size man f) (Bdd.size man c)
    (100.0 *. Minimize.Ispec.c_onset_fraction man inst);

  (* Run every minimizer in the catalogue. *)
  Format.printf "%-8s %-5s  (cover found)@." "name" "size";
  List.iter
    (fun (e : Minimize.Registry.entry) ->
       let g = e.run (Minimize.Ctx.of_man man) inst in
       assert (Minimize.Ispec.is_cover man inst g);
       Format.printf "%-8s %-5d@." e.name (Bdd.size man g))
    Minimize.Registry.all;

  (* Ground truth. *)
  (match Minimize.Exact.minimize man inst with
   | Some r ->
     Format.printf "%-8s %-5d  (exhaustive, %d covers tried)@." "exact"
       r.Minimize.Exact.size r.Minimize.Exact.covers_tried;
     let lb = Minimize.Lower_bound.compute man inst in
     Format.printf "%-8s %-5d  (Theorem 7 cube bound)@.@." "low_bd" lb;
     Bdd.Dot.dump_file "quickstart.dot" man
       [ ("f", f); ("c", c); ("optimal cover", r.Minimize.Exact.cover) ];
     Format.printf "Wrote quickstart.dot (render with: dot -Tpng -O quickstart.dot)@."
   | None -> assert false)
