(* FSM equivalence checking — the paper's motivating application (§1).

   We verify that two differently implemented machines are equivalent: a
   binary counter and a re-implementation with an extra pipeline register
   on the carry output would NOT be equivalent, while a Gray-counter
   re-encoding of outputs is.  Along the way we show how much frontier
   minimization shrinks the BDDs the traversal carries around. *)

module N = Fsm.Netlist

(* An alternative 4-bit counter: same I/O behaviour as
   [Circuits.Counter.make ~width:4], implemented with toggle latches
   (ripple-style enable chain) instead of a ripple-carry incrementer. *)
let toggle_counter () =
  let b = N.create "counter4_toggle" in
  let en = N.input b "en" in
  let width = 4 in
  let q = Array.make width (N.const_signal b false) in
  let toggle = ref en in
  let cells =
    Array.init width (fun i ->
        let cell, set = N.latch b ~name:(Printf.sprintf "t%d" i) ~init:false () in
        q.(i) <- cell;
        (* bit i toggles when all lower bits are 1 and enable is on *)
        let t = !toggle in
        set (N.xor_gate b cell t);
        toggle := N.and_gate b t cell;
        (cell, t))
  in
  ignore cells;
  N.output b "carry" !toggle;
  Array.iteri (fun i qi -> N.output b (Printf.sprintf "q%d" i) qi) q;
  N.finalize b

(* A deliberately broken variant: the top bit's toggle condition drops the
   enable of bit 2 — detectable only after 11 steps. *)
let broken_counter () =
  let b = N.create "counter4_broken" in
  let en = N.input b "en" in
  let width = 4 in
  let cells =
    Array.init width (fun i ->
        N.latch b ~name:(Printf.sprintf "t%d" i) ~init:false ())
  in
  let q = Array.map fst cells in
  let toggle = ref en in
  Array.iteri
    (fun i (cell, set) ->
       let t =
         if i = 3 then N.and_gate b q.(1) (N.and_gate b q.(0) en)
           (* forgot q.(2)! *)
         else !toggle
       in
       set (N.xor_gate b cell t);
       toggle := N.and_gate b !toggle cell)
    cells;
  N.output b "carry" !toggle;
  Array.iteri (fun i qi -> N.output b (Printf.sprintf "q%d" i) qi) q;
  N.finalize b

let report name verdict =
  match verdict with
  | Fsm.Equiv.Equivalent st ->
    Format.printf "%-28s EQUIVALENT   (%d iterations, %.0f product states)@."
      name st.Fsm.Reach.iterations st.Fsm.Reach.reached_states
  | Fsm.Equiv.Not_equivalent { stats; distinguishing_state } ->
    Format.printf
      "%-28s NOT EQUIVALENT after %d iterations; state %a@."
      name stats.Fsm.Reach.iterations Bdd.Cube.pp distinguishing_state

let () =
  Obs.Logging.setup ();
  let reference = Circuits.Counter.make ~width:4 () in

  let man = Bdd.create () in
  report "ripple vs toggle:" (Fsm.Equiv.check man reference (toggle_counter ()));

  let man = Bdd.create () in
  report "ripple vs broken toggle:"
    (Fsm.Equiv.check man reference (broken_counter ()));

  (* Effect of frontier minimization on traversal BDD sizes: run the same
     reachability with and without minimization and compare the peak
     frontier representation. *)
  Format.printf "@.Frontier minimization during reachability of lfsr10:@.";
  let measure name minimize =
    let man = Bdd.create () in
    let sym =
      Fsm.Symbolic.of_netlist man (Circuits.Lfsr.make ~width:10 ())
    in
    let total_frontier = ref 0 in
    let on_instance ~iteration:_ (inst : Minimize.Ispec.t) =
      total_frontier := !total_frontier + Bdd.size man inst.Minimize.Ispec.f
    in
    let minimized_total = ref 0 in
    let counting_minimizer man inst =
      let g = minimize man inst in
      minimized_total := !minimized_total + Bdd.size man g;
      g
    in
    let _, st =
      Fsm.Reach.reachable ~minimize:counting_minimizer ~on_instance sym
    in
    Format.printf
      "  %-22s frontier nodes: %6d unminimized -> %6d carried (%d iterations)@."
      name !total_frontier !minimized_total st.Fsm.Reach.iterations
  in
  measure "no minimization" Fsm.Reach.no_minimizer;
  measure "constrain" Fsm.Reach.constrain_minimizer;
  measure "restrict" (fun man (i : Minimize.Ispec.t) ->
      Bdd.restrict man i.Minimize.Ispec.f i.Minimize.Ispec.c);
  measure "osm_bt" (fun man i ->
      Minimize.Sibling.run_heuristic man Minimize.Sibling.Osm_bt i)
