(* Two-level synthesis with don't cares: ISOP covers and ZDD cube sets.

   The same BCD 7-segment decoder as examples/fpga_mapping.ml, but mapped
   to a PLA: per-segment irredundant sum-of-products covers computed from
   the interval [onset, onset + dc] (Minato-Morreale), pooled into one ZDD
   cube set to measure sharing, and printed PLA-style. *)

let segments =
  [
    ('a', [ 0; 2; 3; 5; 6; 7; 8; 9 ]);
    ('b', [ 0; 1; 2; 3; 4; 7; 8; 9 ]);
    ('c', [ 0; 1; 3; 4; 5; 6; 7; 8; 9 ]);
    ('d', [ 0; 2; 3; 5; 6; 8; 9 ]);
    ('e', [ 0; 2; 6; 8 ]);
    ('f', [ 0; 4; 5; 6; 8; 9 ]);
    ('g', [ 2; 3; 4; 5; 6; 8; 9 ]);
  ]

let pla_row nvars cube =
  String.init nvars (fun v ->
      match List.assoc_opt v cube with
      | Some true -> '1'
      | Some false -> '0'
      | None -> '-')

let () =
  Obs.Logging.setup ();
  let man = Bdd.create () in
  let zman = Bdd.Zdd.new_man () in
  let care =
    Logic.Truth_table.to_bdd man (Logic.Truth_table.create 4 (fun m -> m < 10))
  in
  Format.printf "PLA covers for the BCD 7-segment decoder (inputs x0..x3):@.@.";
  let pooled = ref (Bdd.Zdd.empty zman) in
  let total_cubes = ref 0 in
  let total_literals = ref 0 in
  List.iter
    (fun (seg, on_digits) ->
       let f =
         Logic.Truth_table.to_bdd man
           (Logic.Truth_table.create 4 (fun m -> List.mem m on_digits))
       in
       let inst = Minimize.Ispec.make ~f ~c:care in
       let cover = Minimize.Isop.compute man inst in
       assert (Minimize.Ispec.is_cover man inst cover.Minimize.Isop.cover);
       assert (
         Minimize.Isop.is_irredundant man
           ~lower:(Minimize.Ispec.onset man inst)
           cover);
       total_cubes := !total_cubes + List.length cover.Minimize.Isop.cubes;
       total_literals := !total_literals + Minimize.Isop.literal_count cover;
       pooled :=
         Bdd.Zdd.union zman !pooled
           (Minimize.Isop.zdd_of_cover zman cover);
       Format.printf "segment %c (%d cubes, %d literals):@." seg
         (List.length cover.Minimize.Isop.cubes)
         (Minimize.Isop.literal_count cover);
       List.iter
         (fun cube -> Format.printf "  %s 1@." (pla_row 4 cube))
         cover.Minimize.Isop.cubes)
    segments;
  Format.printf
    "@.totals: %d cube instances, %d literals; %d distinct cubes pooled \
     (ZDD: %d nodes)@."
    !total_cubes !total_literals
    (Bdd.Zdd.count zman !pooled)
    (Bdd.Zdd.node_count zman !pooled);
  (* Round-trip sanity: the pooled ZDD reproduces each segment's cubes. *)
  let all_sets = Bdd.Zdd.to_list zman !pooled in
  let as_cubes = List.map Minimize.Isop.cube_of_set all_sets in
  Format.printf "round trip through the literal encoding: %d cubes decoded@."
    (List.length as_cubes)
