(* Mapping incompletely specified logic to multiplexer-based FPGAs —
   the paper's second motivating application (§1, ref [7]): some FPGA
   mappers work directly from the BDD, one 2-to-1 multiplexer cell per
   BDD node, so a smaller cover means a smaller implementation.

   The workload: a 7-segment display decoder whose input is a BCD digit —
   codes 10..15 never occur, so 6 of 16 input points of every segment
   function are don't cares.  We map each of the seven segment functions
   with f as-is, with each sibling heuristic, and with the exact optimum,
   and report multiplexer counts. *)

(* Segment truth tables for digits 0-9 (segments a-g). *)
let segments =
  [
    ('a', [ 0; 2; 3; 5; 6; 7; 8; 9 ]);
    ('b', [ 0; 1; 2; 3; 4; 7; 8; 9 ]);
    ('c', [ 0; 1; 3; 4; 5; 6; 7; 8; 9 ]);
    ('d', [ 0; 2; 3; 5; 6; 8; 9 ]);
    ('e', [ 0; 2; 6; 8 ]);
    ('f', [ 0; 4; 5; 6; 8; 9 ]);
    ('g', [ 2; 3; 4; 5; 6; 8; 9 ]);
  ]

(* A BDD maps to one 2:1 mux per internal node (the terminal is free):
   cell count = size - 1. *)
let mux_count man g = Bdd.size man g - 1

let () =
  Obs.Logging.setup ();
  let man = Bdd.create () in
  let care_tt =
    Logic.Truth_table.create 4 (fun m -> m < 10) (* BCD: 10..15 impossible *)
  in
  let care = Logic.Truth_table.to_bdd man care_tt in
  let heuristics =
    [ "f_orig"; "const"; "restr"; "osm_bt"; "tsm_cp"; "opt_lv"; "sched" ]
  in
  Format.printf "7-segment decoder on a mux-based FPGA (4 BCD inputs):@.@.";
  Format.printf "%-4s" "seg";
  List.iter (fun n -> Format.printf "%8s" n) heuristics;
  Format.printf "%8s@." "exact";
  let totals = Array.make (List.length heuristics + 1) 0 in
  List.iter
    (fun (seg, on_digits) ->
       let f_tt =
         Logic.Truth_table.create 4 (fun m -> List.mem m on_digits)
       in
       let f = Logic.Truth_table.to_bdd man f_tt in
       let inst = Minimize.Ispec.make ~f ~c:care in
       Format.printf "%-4s" (String.make 1 seg);
       List.iteri
         (fun i name ->
            let entry = Option.get (Minimize.Registry.find name) in
            let g =
              entry.Minimize.Registry.run (Minimize.Ctx.of_man man) inst
            in
            assert (Minimize.Ispec.is_cover man inst g);
            let n = mux_count man g in
            totals.(i) <- totals.(i) + n;
            Format.printf "%8d" n)
         heuristics;
       (match Minimize.Exact.minimize man inst with
        | Some r ->
          let n = r.Minimize.Exact.size - 1 in
          totals.(List.length heuristics) <- totals.(List.length heuristics) + n;
          Format.printf "%8d@." n
        | None -> Format.printf "%8s@." "-"))
    segments;
  Format.printf "%-4s" "sum";
  Array.iter (fun t -> Format.printf "%8d" t) totals;
  Format.printf "@.@.";
  let f_orig_total = totals.(0) and exact_total = totals.(List.length heuristics) in
  Format.printf
    "Exploiting the BCD don't cares shrinks the mapping from %d to %d muxes (%.0f%%).@."
    f_orig_total exact_total
    (100.0 *. float_of_int (f_orig_total - exact_total) /. float_of_int f_orig_total)
