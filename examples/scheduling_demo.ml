(* The §3.4 schedule in action: combining the two heuristic classes.

   We sweep the schedule's parameters (window size, stop-top-down
   threshold, level matching on/off) over a pool of minimization
   instances captured from the benchmark suite, and compare against the
   individual heuristics — the ablation the paper leaves as future
   experimental work ("Experimental verification of what values work well
   for window_size and stop_top_down remains"). *)

let capture_pool () =
  (* A man per bench keeps instances usable after capture. *)
  List.concat_map
    (fun bench_name ->
       let b = Option.get (Circuits.Registry.find bench_name) in
       let man = Bdd.create () in
       let nl = b.Circuits.Registry.build () in
       let pool = ref [] in
       let keep inst =
         if not (Minimize.Ispec.trivial man inst) then
           pool := (man, inst) :: !pool
       in
       (match
          Fsm.Equiv.check_self man ~strategy:Fsm.Image.Range
            ~on_instance:(fun ~iteration:_ i -> keep i)
            ~on_image_constrain:(fun ~iteration:_ i -> keep i)
            nl
        with
        | Fsm.Equiv.Equivalent _ -> ()
        | Fsm.Equiv.Not_equivalent _ -> assert false);
       !pool)
    [ "tlc"; "gray6"; "minmax4"; "rnd344"; "rndstyr" ]

let () =
  Obs.Logging.setup ();
  let pool = capture_pool () in
  Format.printf "Captured %d non-trivial instances.@.@." (List.length pool);
  let total name run =
    let sum, dt =
      Obs.Clock.timed (fun () ->
          List.fold_left
            (fun acc (man, inst) -> acc + Bdd.size man (run man inst))
            0 pool)
    in
    Format.printf "  %-34s total size %6d   (%.2fs)@." name sum dt
  in
  Format.printf "Baselines:@.";
  total "f_orig" (fun _ (i : Minimize.Ispec.t) -> i.Minimize.Ispec.f);
  total "constrain" (fun man (i : Minimize.Ispec.t) ->
      Bdd.constrain man i.Minimize.Ispec.f i.Minimize.Ispec.c);
  total "osm_bt" (fun man i ->
      Minimize.Sibling.run_heuristic man Minimize.Sibling.Osm_bt i);
  total "tsm_cp" (fun man i ->
      Minimize.Sibling.run_heuristic man Minimize.Sibling.Tsm_cp i);
  total "opt_lv" (fun man i -> Minimize.Level.opt_lv man i);

  Format.printf "@.Schedule parameter sweep:@.";
  List.iter
    (fun (window_size, stop_top_down, use_level_matching) ->
       let params =
         {
           Minimize.Schedule.default_params with
           window_size;
           stop_top_down;
           use_level_matching;
         }
       in
       total
         (Printf.sprintf "sched window=%d stop=%d levels=%b" window_size
            stop_top_down use_level_matching)
         (fun man i -> Minimize.Schedule.run man ~params i))
    [
      (2, 4, false);
      (4, 6, false);
      (8, 6, false);
      (4, 12, false);
      (2, 4, true);
      (4, 6, true);
    ]
