(* Safety checking with trace generation. *)

module N = Fsm.Netlist
module Sym = Fsm.Symbolic
module Inv = Fsm.Invariant

let counter_inv () =
  (* AG (q < 12) on a 4-bit counter is violated at depth 12. *)
  let man = Bdd.create () in
  let sym = Sym.of_netlist man (Circuits.Counter.make ~width:4 ()) in
  let q_lt_12 =
    (* states with value < 12 over the 4 interleaved state vars *)
    let states =
      List.filter_map
        (fun k ->
           if k < 12 then
             Some
               (Sym.state_cube_of_ints sym
                  (Array.init 4 (fun i -> (k lsr i) land 1 = 1)))
           else None)
        (List.init 16 Fun.id)
    in
    Bdd.disj man states
  in
  match Inv.check_state man sym ~invariant:q_lt_12 with
  | Inv.Violated trace ->
    Util.checki "depth 12" 12 (List.length trace);
    (* replay: after the trace, the counter reads 12 *)
    let nl = Circuits.Counter.make ~width:4 () in
    let st = ref (N.sim_initial nl) in
    List.iter
      (fun assignment ->
         let env name = List.assoc name assignment in
         let _, st' = N.sim_step nl !st env in
         st := st')
      trace;
    let value =
      List.fold_left
        (fun acc (n, b) ->
           if b then
             acc
             lor (1 lsl int_of_string (String.sub n 2 (String.length n - 3)))
           else acc)
        0
        (N.sim_latch_values nl !st)
    in
    Util.checki "counter reads 12" 12 value
  | Inv.Holds _ -> Alcotest.fail "expected a violation"

let counter_inv_holds () =
  (* AG (q <= 15) trivially holds. *)
  let man = Bdd.create () in
  let sym = Sym.of_netlist man (Circuits.Counter.make ~width:4 ()) in
  match Inv.check_state man sym ~invariant:(Bdd.one man) with
  | Inv.Holds st -> Util.checki "16 iterations" 16 st.Fsm.Reach.iterations
  | Inv.Violated _ -> Alcotest.fail "tautology violated"

let tlc_safety () =
  (* the traffic-light controller never shows green both ways:
     AG ¬(hl_green ∧ fl_green) over the symbolic outputs *)
  let nl = Circuits.Tlc.make () in
  let man = Bdd.create () in
  let sym = Sym.of_netlist man nl in
  let hg = List.assoc "hl_green" sym.Sym.output_fns in
  let fg = List.assoc "fl_green" sym.Sym.output_fns in
  (* build the monitor condition directly over the symbolic outputs *)
  let both = Bdd.dand man hg fg in
  let bad = Bdd.exists man (Sym.input_support sym) both in
  let reached, _ = Fsm.Reach.reachable sym in
  Util.checkb "never both green" (Bdd.is_zero (Bdd.dand man reached bad))

let johnson_one_hot_violation () =
  (* "exactly one bit set" is false for a Johnson counter (e.g. at reset
     all bits are 0): expect a violation at depth 0. *)
  let man = Bdd.create () in
  let nl = Circuits.Johnson.make ~width:4 in
  let sym = Sym.of_netlist man nl in
  let one_hot =
    Bdd.disj man
      (List.init 4 (fun j ->
           Sym.state_cube_of_ints sym (Array.init 4 (fun i -> i = j))))
  in
  match Inv.check_state man sym ~invariant:one_hot with
  | Inv.Violated trace -> Util.checki "violated at reset" 0 (List.length trace)
  | Inv.Holds _ -> Alcotest.fail "expected a violation"

let output_never =
  Util.qtest ~count:12 "check_output_never agrees with reach + replay"
    QCheck2.Gen.(int_bound 3000)
    (fun seed ->
       let nl =
         Circuits.Random_fsm.make
           { Circuits.Random_fsm.latches = 4; inputs = 2; depth = 2; seed }
       in
       let man = Bdd.create () in
       let sym = Sym.of_netlist man nl in
       match Inv.check_output_never man sym ~output:"o0" with
       | Inv.Holds _ ->
         (* the output must indeed never fire in simulation *)
         let st = ref (N.sim_initial nl) in
         let rng = Random.State.make [| seed; 3 |] in
         let fired = ref false in
         for _ = 1 to 64 do
           let inputs =
             List.map (fun (n, _) -> (n, Random.State.bool rng)) (N.inputs nl)
           in
           let outs, st' = N.sim_step nl !st (fun n -> List.assoc n inputs) in
           if List.assoc "o0" outs then fired := true;
           st := st'
         done;
         not !fired
       | Inv.Violated trace ->
         (* replay the trace; the last step must raise o0 *)
         let st = ref (N.sim_initial nl) in
         let last = ref false in
         List.iter
           (fun assignment ->
              let env name = List.assoc name assignment in
              let outs, st' = N.sim_step nl !st env in
              last := List.assoc "o0" outs;
              st := st')
           trace;
         !last)

let unknown_output () =
  let man = Bdd.create () in
  let sym = Sym.of_netlist man (Circuits.Tlc.make ()) in
  Util.checkb "raises"
    (match Inv.check_output_never man sym ~output:"nope" with
     | exception Invalid_argument _ -> true
     | _ -> false)

let suite =
  [
    Alcotest.test_case "counter bound violated at depth 12" `Quick counter_inv;
    Alcotest.test_case "tautology holds" `Quick counter_inv_holds;
    Alcotest.test_case "tlc never both green" `Quick tlc_safety;
    Alcotest.test_case "johnson not one-hot at reset" `Quick
      johnson_one_hot_violation;
    output_never;
    Alcotest.test_case "unknown output rejected" `Quick unknown_output;
  ]
