(* BDD serialization round trips and diagnostics. *)

module Tt = Logic.Truth_table

let roundtrip_random =
  Util.qtest ~count:120 "save/load round trip preserves functions"
    QCheck2.Gen.(
      let* n = int_range 0 6 in
      let* s1 = int_bound 0xFFFFF in
      let* s2 = int_bound 0xFFFFF in
      return (n, s1, s2))
    (fun (n, s1, s2) ->
       let man = Bdd.create () in
       let mk seed =
         let st = Random.State.make [| seed; n |] in
         Tt.to_bdd man (Tt.create n (fun _ -> Random.State.bool st))
       in
       let f = mk s1 and g = mk s2 in
       let text = Bdd.Store.save man [ ("f", f); ("g", g) ] in
       (* load into the same manager: must get the identical edges *)
       match Bdd.Store.load man text with
       | Ok [ ("f", f'); ("g", g') ] -> Bdd.equal f f' && Bdd.equal g g'
       | _ -> false)

let roundtrip_other_manager =
  Util.qtest ~count:80 "loading into a fresh manager preserves semantics"
    QCheck2.Gen.(
      let* n = int_range 0 5 in
      let* seed = int_bound 0xFFFFF in
      return (n, seed))
    (fun (n, seed) ->
       let man = Bdd.create () in
       let st = Random.State.make [| seed; n; 5 |] in
       let tt = Tt.create n (fun _ -> Random.State.bool st) in
       let f = Tt.to_bdd man tt in
       let text = Bdd.Store.save man [ ("f", f) ] in
       let man2 = Bdd.create () in
       match Bdd.Store.load man2 text with
       | Ok [ ("f", f') ] -> Tt.equal tt (Tt.of_bdd man2 ~nvars:n f')
       | _ -> false)

let sharing_preserved () =
  let man = Bdd.create () in
  let x i = Bdd.ithvar man i in
  let shared = Bdd.dxor man (x 2) (x 3) in
  let f = Bdd.dand man (x 0) shared in
  let g = Bdd.dor man (x 1) shared in
  let text = Bdd.Store.save man [ ("f", f); ("g", g) ] in
  let man2 = Bdd.create () in
  match Bdd.Store.load man2 text with
  | Ok [ (_, f'); (_, g') ] ->
    Util.checki "shared size preserved"
      (Bdd.shared_size man [ f; g ])
      (Bdd.shared_size man2 [ f'; g' ])
  | Ok _ | Error _ -> Alcotest.fail "load failed"

let constants () =
  let man = Bdd.create () in
  let text =
    Bdd.Store.save man [ ("one", Bdd.one man); ("zero", Bdd.zero man) ]
  in
  match Bdd.Store.load man text with
  | Ok [ ("one", a); ("zero", b) ] ->
    Util.checkb "one" (Bdd.is_one a);
    Util.checkb "zero" (Bdd.is_zero b)
  | Ok _ | Error _ -> Alcotest.fail "load failed"

let malformed () =
  let man = Bdd.create () in
  List.iter
    (fun (what, text) ->
       Util.checkb what (Result.is_error (Bdd.Store.load man text)))
    [
      ("empty", "");
      ("no roots", "bdd 1\nnode 1 0 0 !0\n");
      ("unknown id", "bdd 1\nroot f 7\n");
      ("bad version", "bdd 9\nroot f 0\n");
      ("duplicate id", "bdd 1\nnode 1 0 0 !0\nnode 1 1 0 !0\nroot f 1\n");
      ("order violation", "bdd 1\nnode 1 3 0 !0\nnode 2 5 1 !0\nroot f 2\n");
      ("garbage", "bdd 1\nblah\n");
    ]

let redundant_nodes_tolerated () =
  (* a node with equal children is not canonical but must load fine *)
  let man = Bdd.create () in
  match Bdd.Store.load man "bdd 1\nnode 1 2 0 0\nroot f 1\n" with
  | Ok [ ("f", f) ] -> Util.checkb "collapsed to one" (Bdd.is_one f)
  | Ok _ | Error _ -> Alcotest.fail "load failed"

let file_roundtrip () =
  let man = Bdd.create () in
  let f = Bdd.dxor man (Bdd.ithvar man 0) (Bdd.ithvar man 1) in
  let path = Filename.temp_file "bddmin" ".bdd" in
  Bdd.Store.save_file path man [ ("f", f) ];
  (match Bdd.Store.load_file man path with
   | Ok [ ("f", f') ] -> Util.checkb "same" (Bdd.equal f f')
   | Ok _ | Error _ -> Alcotest.fail "load failed");
  Sys.remove path;
  Util.checkb "missing file is an error"
    (Result.is_error (Bdd.Store.load_file man path))

let header_placement () =
  let man = Bdd.create () in
  (* blank lines (including leading ones) are ignored; the header is the
     first non-blank line *)
  (match Bdd.Store.load man "\n\n   \nbdd 1\n\nroot f 0\n" with
   | Ok [ ("f", f) ] -> Util.checkb "one" (Bdd.is_one f)
   | Ok _ | Error _ -> Alcotest.fail "leading blank lines must be tolerated");
  Util.checkb "content before header is an error"
    (Result.is_error (Bdd.Store.load man "node 1 0 0 !0\nbdd 1\nroot f 1\n"));
  Util.checkb "second header is an error"
    (Result.is_error (Bdd.Store.load man "bdd 1\nbdd 1\nroot f 0\n"));
  Util.checkb "blank-only input still lacks a header"
    (Result.is_error (Bdd.Store.load man "\n\n\n"))

let duplicate_root_rejected () =
  let man = Bdd.create () in
  match Bdd.Store.load man "bdd 1\nroot f 0\nroot f !0\n" with
  | Error msg -> Util.checkb "mentions the name" (Util.contains msg "f")
  | Ok _ -> Alcotest.fail "duplicate root name must be rejected"

let save_rejects_non_roundtrippable_names () =
  let man = Bdd.create () in
  let f = Bdd.ithvar man 0 in
  let refuses what roots =
    match Bdd.Store.save man roots with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "save accepted %s" what
  in
  refuses "an empty name" [ ("", f) ];
  refuses "a space" [ ("a b", f) ];
  refuses "a tab" [ ("a\tb", f) ];
  refuses "a newline" [ ("a\nb", f) ];
  refuses "a carriage return" [ ("a\rb", f) ];
  refuses "a duplicate name" [ ("f", f); ("f", Bdd.compl f) ]

let roundtrip_complemented =
  (* complemented roots (and complement pairs) survive a round trip into
     a fresh manager *)
  Util.qtest ~count:80 "complemented roots round trip"
    QCheck2.Gen.(
      let* n = int_range 1 6 in
      let* seed = int_bound 0xFFFFF in
      return (n, seed))
    (fun (n, seed) ->
       let man = Bdd.create () in
       let st = Random.State.make [| seed; n; 11 |] in
       let tt = Tt.create n (fun _ -> Random.State.bool st) in
       let f = Tt.to_bdd man tt in
       let text = Bdd.Store.save man [ ("f", f); ("nf", Bdd.compl f) ] in
       let man2 = Bdd.create () in
       match Bdd.Store.load man2 text with
       | Ok [ ("f", f'); ("nf", nf') ] ->
         Tt.equal tt (Tt.of_bdd man2 ~nvars:n f')
         && Bdd.equal nf' (Bdd.compl f')
       | _ -> false)

let fuzz_mutations =
  (* mutating or truncating a valid file never makes [load] raise: it
     either still parses or reports an [Error] *)
  Util.qtest ~count:300 "mutated store text never raises"
    QCheck2.Gen.(
      let* seed = int_bound 0xFFFFF in
      let* pos_frac = float_bound_exclusive 1.0 in
      let* byte = int_bound 255 in
      let* mode = int_bound 2 in
      return (seed, pos_frac, byte, mode))
    (fun (seed, pos_frac, byte, mode) ->
       let man = Bdd.create () in
       let st = Random.State.make [| seed; 4; 17 |] in
       let tt = Tt.create 4 (fun _ -> Random.State.bool st) in
       let f = Tt.to_bdd man tt in
       let text = Bdd.Store.save man [ ("f", f) ] in
       let n = String.length text in
       let pos = min (n - 1) (int_of_float (pos_frac *. float_of_int n)) in
       let mutated =
         match mode with
         | 0 -> String.sub text 0 pos (* truncate *)
         | 1 ->
           let b = Bytes.of_string text in
           Bytes.set b pos (Char.chr byte);
           Bytes.to_string b
         | _ ->
           String.sub text 0 pos ^ Printf.sprintf " %d " byte
           ^ String.sub text pos (n - pos)
       in
       match Bdd.Store.load (Bdd.create ()) mutated with
       | Ok _ | Error _ -> true)

let suite =
  [
    roundtrip_random;
    roundtrip_other_manager;
    Alcotest.test_case "header placement" `Quick header_placement;
    Alcotest.test_case "duplicate root rejected" `Quick duplicate_root_rejected;
    Alcotest.test_case "save rejects non-round-trippable names" `Quick
      save_rejects_non_roundtrippable_names;
    roundtrip_complemented;
    fuzz_mutations;
    Alcotest.test_case "sharing preserved" `Quick sharing_preserved;
    Alcotest.test_case "constants" `Quick constants;
    Alcotest.test_case "malformed inputs" `Quick malformed;
    Alcotest.test_case "redundant nodes tolerated" `Quick
      redundant_nodes_tolerated;
    Alcotest.test_case "file round trip" `Quick file_roundtrip;
  ]
