(* ZDDs validated against a sets-of-sets oracle. *)

module Z = Bdd.Zdd

(* Oracle: canonical sorted list of sorted lists. *)
module Oracle = struct
  type t = int list list

  let norm family =
    List.sort_uniq compare (List.map (List.sort_uniq compare) family)

  let union a b = norm (a @ b)
  let inter a b = norm (List.filter (fun s -> List.mem s b) a)
  let diff a b = norm (List.filter (fun s -> not (List.mem s b)) a)

  let join a b =
    norm
      (List.concat_map
         (fun s -> List.map (fun t -> List.sort_uniq compare (s @ t)) b)
         a)

  let change f v =
    norm
      (List.map
         (fun s ->
            if List.mem v s then List.filter (( <> ) v) s
            else List.sort compare (v :: s))
         f)

  let subset1 f v =
    norm
      (List.filter_map
         (fun s -> if List.mem v s then Some (List.filter (( <> ) v) s) else None)
         f)

  let subset0 f v = norm (List.filter (fun s -> not (List.mem v s)) f)
end

let gen_family =
  QCheck2.Gen.(
    let* nsets = int_range 0 8 in
    let* sets =
      list_size (return nsets) (list_size (int_range 0 4) (int_range 0 5))
    in
    return (Oracle.norm sets))

let man = Z.new_man ()

let build family = Z.of_list man family

(* to_list returns DFS order; compare as canonical families *)
let agree z family = List.sort compare (Z.to_list man z) = family

let roundtrip =
  Util.qtest ~count:300 "of_list / to_list round trip (canonical order)"
    gen_family
    (fun family -> agree (build family) family)

let set_ops =
  Util.qtest ~count:300 "union/inter/diff match the oracle"
    QCheck2.Gen.(
      let* a = gen_family in
      let* b = gen_family in
      return (a, b))
    (fun (a, b) ->
       let za = build a and zb = build b in
       agree (Z.union man za zb) (Oracle.union a b)
       && agree (Z.inter man za zb) (Oracle.inter a b)
       && agree (Z.diff man za zb) (Oracle.diff a b))

let join_op =
  Util.qtest ~count:200 "join matches the oracle"
    QCheck2.Gen.(
      let* a = gen_family in
      let* b = gen_family in
      return (a, b))
    (fun (a, b) ->
       agree (Z.join man (build a) (build b)) (Oracle.join a b))

let unary_ops =
  Util.qtest ~count:300 "change/subset0/subset1 match the oracle"
    QCheck2.Gen.(
      let* a = gen_family in
      let* v = int_range 0 5 in
      return (a, v))
    (fun (a, v) ->
       let za = build a in
       agree (Z.change man za v) (Oracle.change a v)
       && agree (Z.subset1 man za v) (Oracle.subset1 a v)
       && agree (Z.subset0 man za v) (Oracle.subset0 a v))

let canonicity =
  Util.qtest ~count:300 "equal families have identical handles"
    QCheck2.Gen.(
      let* a = gen_family in
      let* b = gen_family in
      return (a, b))
    (fun (a, b) ->
       Z.equal (build a) (build b) = (a = b))

let counts =
  Util.qtest ~count:300 "count and mem match the oracle" gen_family
    (fun family ->
       let z = build family in
       Z.count man z = List.length family
       && List.for_all (fun s -> Z.mem man z s) family
       && not (Z.mem man z [ 0; 1; 2; 3; 4; 5 ] && not (List.mem [0;1;2;3;4;5] family)))

let terminals () =
  Util.checkb "empty" (Z.is_empty (Z.empty man));
  Util.checkb "base" (Z.is_base (Z.base man));
  Util.checki "count empty" 0 (Z.count man (Z.empty man));
  Util.checki "count base" 1 (Z.count man (Z.base man));
  Util.checkb "base holds the empty set" (Z.mem man (Z.base man) []);
  Util.checkb "empty holds nothing" (not (Z.mem man (Z.empty man) []));
  Util.checki "no nodes" 0 (Z.node_count man (Z.base man))

let algebraic_laws =
  Util.qtest ~count:200 "distributivity of join over union"
    QCheck2.Gen.(
      let* a = gen_family in
      let* b = gen_family in
      let* c = gen_family in
      return (a, b, c))
    (fun (a, b, c) ->
       let za = build a and zb = build b and zc = build c in
       Z.equal
         (Z.join man za (Z.union man zb zc))
         (Z.union man (Z.join man za zb) (Z.join man za zc)))

let zero_suppression_compactness () =
  (* the family of all singletons over 0..k-1 has exactly k nodes *)
  let k = 10 in
  let z = Z.of_list man (List.init k (fun v -> [ v ])) in
  Util.checki "linear size" k (Z.node_count man z);
  Util.checki "k sets" k (Z.count man z)

let pp_smoke () =
  let z = Z.of_list man [ [ 0; 2 ]; [ 1 ] ] in
  Alcotest.(check string) "printed" "{ {0,2}, {1} }"
    (Format.asprintf "%a" (Z.pp man) z)

let suite =
  [
    roundtrip;
    set_ops;
    join_op;
    unary_ops;
    canonicity;
    counts;
    Alcotest.test_case "terminals" `Quick terminals;
    algebraic_laws;
    Alcotest.test_case "zero-suppression compactness" `Quick
      zero_suppression_compactness;
    Alcotest.test_case "pretty printing" `Quick pp_smoke;
  ]
