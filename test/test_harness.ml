(* Experiment harness: capture invariants, aggregation, and renderers. *)

let config =
  Harness.Capture.(
    default_config |> with_lower_bound_cubes 200 |> with_max_calls 60)

let names = Harness.Capture.minimizer_names config

(* One capture shared across the tests (a small but non-trivial bench). *)
let calls =
  lazy
    (Harness.Capture.run_suite ~config
       (List.filter_map Circuits.Registry.find [ "tlc"; "gray6"; "rnd344" ]))

let capture_nonempty () =
  Util.checkb "captured calls" (List.length (Lazy.force calls) > 10)

let per_call_invariants () =
  List.iter
    (fun (c : Harness.Capture.call) ->
       Util.checkb "min matches sizes"
         (List.exists (fun (_, s) -> s = c.min_size) c.sizes);
       List.iter
         (fun (n, s) ->
            Util.checkb (n ^ " >= min") (s >= c.min_size);
            Util.checkb (n ^ " >= low_bd or reference")
              (s >= c.low_bd
               || List.mem n [ "f_and_c"; "f_or_nc" ]))
         c.sizes;
       Util.checkb "onset fraction in range"
         (c.c_onset_fraction >= 0.0 && c.c_onset_fraction <= 1.0);
       Util.checkb "not a filtered (trivial) call"
         (c.c_onset_fraction > 0.0))
    (Lazy.force calls)

let buckets_partition () =
  let calls = Lazy.force calls in
  let count b =
    List.length (List.filter (Harness.Stats.in_bucket b) calls)
  in
  Util.checki "low+mid+high = all"
    (count Harness.Stats.All)
    (count Harness.Stats.Low + count Harness.Stats.Mid
     + count Harness.Stats.High)

let aggregate_consistent () =
  let calls = Lazy.force calls in
  let t = Harness.Stats.aggregate ~names Harness.Stats.All calls in
  Util.checki "ncalls" (List.length calls) t.Harness.Stats.ncalls;
  (* totals really are sums *)
  List.iter
    (fun (r : Harness.Stats.row) ->
       let expect =
         List.fold_left
           (fun acc c -> acc + Harness.Stats.size_of c r.Harness.Stats.name)
           0 calls
       in
       Util.checki ("total " ^ r.Harness.Stats.name) expect
         r.Harness.Stats.total_size;
       Util.checkb "pct >= 100"
         (r.Harness.Stats.pct_of_min >= 100.0 -. 1e-6))
    t.Harness.Stats.rows;
  (* rows sorted by total, ranks consistent *)
  let totals = List.map (fun r -> r.Harness.Stats.total_size) t.Harness.Stats.rows in
  Util.checkb "sorted" (List.sort compare totals = totals);
  let min_total_of_rows = List.fold_left min max_int totals in
  Util.checkb "min row has rank 1"
    (List.exists
       (fun (r : Harness.Stats.row) ->
          r.Harness.Stats.total_size = min_total_of_rows
          && r.Harness.Stats.rank = 1)
       t.Harness.Stats.rows)

let head_to_head_properties () =
  let calls = Lazy.force calls in
  let hnames = [ "f_orig"; "const"; "restr"; "min" ] in
  let m = Harness.Stats.head_to_head ~names:hnames calls in
  let n = List.length hnames in
  for i = 0 to n - 1 do
    Util.checkb "diagonal zero" (m.(i).(i) = 0.0);
    for j = 0 to n - 1 do
      Util.checkb "wins+losses <= 100" (m.(i).(j) +. m.(j).(i) <= 100.0 +. 1e-6)
    done
  done;
  (* nothing ever strictly beats min *)
  for i = 0 to n - 2 do
    Util.checkb "min unbeaten" (m.(i).(n - 1) = 0.0)
  done

let within_curve_properties () =
  let calls = Lazy.force calls in
  let series =
    Harness.Stats.within_curve ~name:"const"
      ~percents:[ 0; 10; 50; 100 ] calls
  in
  let values = List.map snd series in
  Util.checkb "monotone"
    (List.sort compare values = values);
  Util.checkb "bounded" (List.for_all (fun v -> v >= 0.0 && v <= 100.0) values);
  (* min's curve is pegged at 100 *)
  let min_series =
    Harness.Stats.within_curve ~name:"min" ~percents:[ 0 ] calls
  in
  Util.checkb "min at 100" (List.for_all (fun (_, v) -> v = 100.0) min_series)

let renderers_do_not_crash () =
  let calls = Lazy.force calls in
  List.iter
    (fun s -> Util.checkb "nonempty" (String.length s > 50))
    [
      Harness.Tables.render_table1 ();
      Harness.Tables.render_table2 ();
      Harness.Tables.render_table3 ~names calls;
      Harness.Tables.render_table4 calls;
      Harness.Tables.render_figure3 calls;
      Harness.Tables.render_lower_bound_summary ~names calls;
      Harness.Tables.calls_to_csv ~names calls;
      Harness.Tables.curve_to_csv ~names:[ "const"; "restr" ] calls;
    ]

let csv_shape () =
  let calls = Lazy.force calls in
  let csv = Harness.Tables.calls_to_csv ~names calls in
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' csv)
  in
  Util.checki "header + one row per call" (List.length calls + 1)
    (List.length lines);
  let cols s = List.length (String.split_on_char ',' s) in
  match lines with
  | header :: rows ->
    List.iter
      (fun r -> Util.checki "column count" (cols header) (cols r))
      rows
  | [] -> Alcotest.fail "empty csv"

let max_calls_respected () =
  let tight = Harness.Capture.with_max_calls 5 config in
  let calls =
    Harness.Capture.run_bench ~config:tight
      (Option.get (Circuits.Registry.find "gray6"))
  in
  Util.checkb "capped" (List.length calls <= 5)

let table2_mentions_all_heuristics () =
  let t = Harness.Tables.render_table2 () in
  List.iter
    (fun n -> Util.checkb ("mentions " ^ n) (Util.contains t n))
    [ "constrain"; "restrict"; "osm_td"; "osm_nv"; "osm_cp"; "osm_bt";
      "tsm_td"; "tsm_cp" ]

let suite =
  [
    Alcotest.test_case "capture nonempty" `Quick capture_nonempty;
    Alcotest.test_case "per-call invariants" `Quick per_call_invariants;
    Alcotest.test_case "buckets partition" `Quick buckets_partition;
    Alcotest.test_case "aggregation consistent" `Quick aggregate_consistent;
    Alcotest.test_case "head-to-head properties" `Quick head_to_head_properties;
    Alcotest.test_case "robustness curves" `Quick within_curve_properties;
    Alcotest.test_case "renderers" `Quick renderers_do_not_crash;
    Alcotest.test_case "csv shape" `Quick csv_shape;
    Alcotest.test_case "max_calls respected" `Quick max_calls_respected;
    Alcotest.test_case "table 2 complete" `Quick table2_mentions_all_heuristics;
  ]
