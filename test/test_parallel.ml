(* Concurrent manager tier and the parallel hot loops: shared-store
   interning from several domains, stop-the-world GC under load, and the
   bit-identity contract — every parallel code path must return the same
   canonical edges as its sequential twin. *)

module Tt = Logic.Truth_table

(* Build the same random function on any view of a shared store. *)
let random_fn view n seed =
  let st = Random.State.make [| seed; n; 0x5eed |] in
  Tt.to_bdd view (Tt.create n (fun _ -> Random.State.bool st))

(* ----- shared-store basics ----- *)

let shared_canonicity () =
  let store = Bdd.Shared.create () in
  let v1 = Bdd.Shared.attach store in
  let v2 = Bdd.Shared.attach store in
  (* the same function built through two different views must intern to
     the same edge: the unique table is store-wide *)
  for seed = 0 to 19 do
    let f1 = random_fn v1 5 seed and f2 = random_fn v2 5 seed in
    Util.checkb "same function, same edge across views" (Bdd.equal f1 f2)
  done;
  Util.checki "both views registered" 2 (Bdd.Shared.view_count store);
  ignore (Bdd.Shared.self_check store);
  Bdd.Shared.detach v2;
  Util.checki "detach deregisters" 1 (Bdd.Shared.view_count store)

(* ----- Par.map bit-identity (qcheck differential) ----- *)

let par_map_differential =
  Util.qtest ~count:25 "Par.map returns the sequential edges"
    QCheck2.Gen.(
      let* n = int_range 1 5 in
      let* seeds = list_size (int_range 1 12) (int_bound 0xFFFF) in
      return (n, seeds))
    (fun (n, seeds) ->
       let store = Bdd.Shared.create () in
       let man = Bdd.Shared.attach store in
       Exec.Pool.with_pool ~jobs:4 @@ fun pool ->
       let par = Minimize.Par.make ~pool ~store in
       let fns = List.map (fun s -> random_fn man n s) seeds in
       let g = random_fn man n 0xCAFE in
       let seq = List.map (fun f -> Bdd.dand man f g) fns in
       let parr = Minimize.Par.map par (fun view f -> Bdd.dand view f g) fns in
       (* canonical roots must be bit-identical, not just equivalent *)
       List.for_all2 Bdd.equal seq parr)

(* ----- parallel reachability differential, -j 2 and -j 4 ----- *)

let reach_par_differential () =
  List.iter
    (fun name ->
       let b = Option.get (Circuits.Registry.find name) in
       let store = Bdd.Shared.create () in
       let man = Bdd.Shared.attach store in
       let sym = Fsm.Symbolic.of_netlist man (b.Circuits.Registry.build ()) in
       let seq, seq_st =
         Fsm.Reach.reachable ~strategy:Fsm.Image.Clustered sym
       in
       List.iter
         (fun jobs ->
            Exec.Pool.with_pool ~jobs @@ fun pool ->
            let par = Fsm.Image.par ~pool ~store in
            let r, st =
              Fsm.Reach.reachable ~strategy:Fsm.Image.Clustered ~par sym
            in
            Util.checkb
              (Printf.sprintf "%s: -j %d reached set is the same edge" name
                 jobs)
              (Bdd.equal seq r);
            Util.checki
              (Printf.sprintf "%s: -j %d iterations" name jobs)
              seq_st.Fsm.Reach.iterations st.Fsm.Reach.iterations)
         [ 2; 4 ];
       ignore (Bdd.Shared.self_check store))
    [ "tlc"; "gray6"; "minmax4" ]

(* ----- parallel vector minimization and care-set restriction ----- *)

let vector_par_differential () =
  let store = Bdd.Shared.create () in
  let man = Bdd.Shared.attach store in
  Exec.Pool.with_pool ~jobs:3 @@ fun pool ->
  let par = Minimize.Par.make ~pool ~store in
  let n = 5 in
  let instances =
    List.init 6 (fun i ->
        let f = random_fn man n (100 + i) in
        let c = Bdd.dor man (random_fn man n (200 + i)) (random_fn man n i) in
        let c = if Bdd.is_zero c then Bdd.one man else c in
        Minimize.Ispec.make ~f ~c)
  in
  let minimizer m s = Bdd.restrict m s.Minimize.Ispec.f s.Minimize.Ispec.c in
  let seq = Minimize.Vector.minimize_renamed man ~minimizer instances in
  let parr =
    Minimize.Vector.minimize_renamed ~par man ~minimizer instances
  in
  Util.checkb "vector covers are the same edges"
    (List.for_all2 Bdd.equal seq.Minimize.Vector.covers
       parr.Minimize.Vector.covers);
  Util.checki "shared_after identical" seq.Minimize.Vector.shared_after
    parr.Minimize.Vector.shared_after

let restrict_to_care_par_differential () =
  let b = Option.get (Circuits.Registry.find "tlc") in
  let store = Bdd.Shared.create () in
  let man = Bdd.Shared.attach store in
  let sym = Fsm.Symbolic.of_netlist man (b.Circuits.Registry.build ()) in
  let care, _ = Fsm.Reach.reachable sym in
  let minimize m s = Bdd.constrain m s.Minimize.Ispec.f s.Minimize.Ispec.c in
  let seq = Fsm.Symbolic.restrict_to_care_states sym ~care ~minimize in
  Exec.Pool.with_pool ~jobs:3 @@ fun pool ->
  let par = Minimize.Par.make ~pool ~store in
  let parr = Fsm.Symbolic.restrict_to_care_states ~par sym ~care ~minimize in
  Util.checkb "next-state functions are the same edges"
    (Array.for_all2 Bdd.equal seq.Fsm.Symbolic.next_fns
       parr.Fsm.Symbolic.next_fns);
  Util.checkb "output functions are the same edges"
    (List.for_all2
       (fun (n1, f1) (n2, f2) -> n1 = n2 && Bdd.equal f1 f2)
       seq.Fsm.Symbolic.output_fns parr.Fsm.Symbolic.output_fns)

(* ----- level matching with a parallel adjacency matrix ----- *)

let level_par_differential () =
  let store = Bdd.Shared.create () in
  let man = Bdd.Shared.attach store in
  Exec.Pool.with_pool ~jobs:3 @@ fun pool ->
  let par = Minimize.Par.make ~pool ~store in
  List.iter
    (fun crit ->
       for seed = 0 to 7 do
         let f = random_fn man 6 (300 + seed) in
         let c = random_fn man 6 (400 + seed) in
         let c = if Bdd.is_zero c then Bdd.one man else c in
         let s = Minimize.Ispec.make ~f ~c in
         let seq = Minimize.Level.minimize_all_levels man crit s in
         let parr = Minimize.Level.minimize_all_levels ~par man crit s in
         Util.checkb "level matching result is the same edges"
           (Bdd.equal seq.Minimize.Ispec.f parr.Minimize.Ispec.f
            && Bdd.equal seq.Minimize.Ispec.c parr.Minimize.Ispec.c)
       done)
    [ Minimize.Matching.Tsm; Minimize.Matching.Osm; Minimize.Matching.Osdm ]

(* ----- suite CSV bytes at -j 1 / 2 / 4 ----- *)

let suite_csv_jobs_differential () =
  let base =
    Harness.Capture.(
      default_config |> with_max_calls 4 |> with_lower_bound_cubes 30)
  in
  let benches = [ Option.get (Circuits.Registry.find "tlc") ] in
  let names = Harness.Capture.minimizer_names base in
  let run jobs =
    let calls =
      Harness.Capture.run_suite
        ~config:(Harness.Capture.with_jobs jobs base)
        benches
    in
    Harness.Tables.calls_to_csv ~names calls
  in
  let csv1 = run 1 in
  Util.checkb "captured something" (String.length csv1 > 0);
  Util.check Alcotest.string "CSV identical at -j 2" csv1 (run 2);
  Util.check Alcotest.string "CSV identical at -j 4" csv1 (run 4)

(* ----- multi-domain intern stress, then GC, then audit ----- *)

let stress_domains = 4
let stress_applies = 10_000

let multi_domain_stress () =
  let store = Bdd.Shared.create () in
  let man = Bdd.Shared.attach store in
  (* every domain hammers the same store with random applies on its own
     view; each keeps its last result ref'd so collection has real roots
     to preserve *)
  let kept =
    Exec.map ~jobs:stress_domains
      (fun d ->
         Bdd.Shared.with_view store @@ fun view ->
         let st = Random.State.make [| d; 0xabcd |] in
         let nvars = 12 in
         let acc = ref (Bdd.ithvar view (d mod nvars)) in
         for _ = 1 to stress_applies do
           let v = Bdd.ithvar view (Random.State.int st nvars) in
           let w = Bdd.ithvar view (Random.State.int st nvars) in
           let part =
             match Random.State.int st 4 with
             | 0 -> Bdd.dand view v w
             | 1 -> Bdd.dor view (Bdd.compl v) w
             | 2 -> Bdd.dxor view v w
             | _ -> Bdd.ite view v w (Bdd.compl !acc)
           in
           acc :=
             (match Random.State.int st 3 with
              | 0 -> Bdd.dand view !acc part
              | 1 -> Bdd.dor view !acc part
              | _ -> Bdd.dxor view !acc part)
         done;
         Bdd.ref_ view !acc;
         (d, !acc))
      (List.init stress_domains Fun.id)
  in
  let live_before = Bdd.Shared.live_nodes store in
  Util.checkb "stress interned nodes" (live_before > 0);
  ignore (Bdd.Shared.self_check store);
  let reclaimed = Bdd.gc man in
  Util.checkb "gc ran" (reclaimed >= 0);
  (* the audit re-verifies canonical form, level order and store-wide
     uniqueness after collection rebuilt every stripe *)
  ignore (Bdd.Shared.self_check store);
  (* kept roots survive and rebuilding them yields the very same edges *)
  List.iter
    (fun (d, f) ->
       Bdd.Shared.with_view store @@ fun view ->
       let st = Random.State.make [| d; 0xabcd |] in
       let nvars = 12 in
       let acc = ref (Bdd.ithvar view (d mod nvars)) in
       for _ = 1 to stress_applies do
         let v = Bdd.ithvar view (Random.State.int st nvars) in
         let w = Bdd.ithvar view (Random.State.int st nvars) in
         let part =
           match Random.State.int st 4 with
           | 0 -> Bdd.dand view v w
           | 1 -> Bdd.dor view (Bdd.compl v) w
           | 2 -> Bdd.dxor view v w
           | _ -> Bdd.ite view v w (Bdd.compl !acc)
         in
         acc :=
           (match Random.State.int st 3 with
            | 0 -> Bdd.dand view !acc part
            | 1 -> Bdd.dor view !acc part
            | _ -> Bdd.dxor view !acc part)
       done;
       Util.checkb "replayed build returns the kept edge" (Bdd.equal f !acc);
       Bdd.deref man f)
    kept

(* ----- sift guard on shared managers ----- *)

let sift_refuses_multi_view () =
  let store = Bdd.Shared.create () in
  let v1 = Bdd.Shared.attach store in
  let v2 = Bdd.Shared.attach store in
  let f = random_fn v1 4 7 in
  Util.checkb "sift refuses a store with two views"
    (match Bdd.Reorder.sift v1 [ f ] with
     | exception Invalid_argument msg -> Util.contains msg "2 registered views"
     | _ -> false);
  Bdd.Shared.detach v2;
  (* one view left: reordering is domain-safe again *)
  let _, after = Bdd.Reorder.sift v1 [ f ] in
  Util.checkb "sift works once detached down to one view" (after > 0)

let suite =
  [
    Alcotest.test_case "shared-store canonicity across views" `Quick
      shared_canonicity;
    par_map_differential;
    Alcotest.test_case "parallel reach is bit-identical (-j 2/4)" `Quick
      reach_par_differential;
    Alcotest.test_case "parallel vector minimize is bit-identical" `Quick
      vector_par_differential;
    Alcotest.test_case "parallel care-set restriction is bit-identical"
      `Quick restrict_to_care_par_differential;
    Alcotest.test_case "parallel level matching is bit-identical" `Quick
      level_par_differential;
    Alcotest.test_case "suite CSV identical at -j 1/2/4" `Quick
      suite_csv_jobs_differential;
    Alcotest.test_case "multi-domain intern stress + gc + audit" `Slow
      multi_domain_stress;
    Alcotest.test_case "sift refuses shared multi-view manager" `Quick
      sift_refuses_multi_view;
  ]
