The bddmin CLI drives the library end to end.

Minimize a small instance with every heuristic and the exact minimizer:

  $ bddmin minimize -f "a & b | !a & c" -c "a | b" --exact
  |f| = 4   c_onset = 75.0%   lower bound = 2
  const    size 4     a & b | !a & c
  restr    size 4     a & b | !a & c
  osm_td   size 4     a & b | !a & c
  osm_nv   size 4     a & b | !a & c
  osm_cp   size 4     a & b | !a & c
  osm_bt   size 4     a & b | !a & c
  tsm_td   size 4     a & b | !a & c
  tsm_cp   size 4     a & b | !a & c
  opt_lv   size 4     a & b | !a & c
  f_orig   size 4     a & b | !a & c
  f_and_c  size 5     a & b | !a & b & c
  f_or_nc  size 5     a & b | !a & b & c | !a & !b
  sched    size 4     a & b | !a & c
  exact    size 4     a & b | !a & c   (4 covers tried)

A single heuristic, on an instance it can actually shrink:

  $ bddmin minimize -f "a & b | !a & !b & c" -c "a" -H const
  |f| = 5   c_onset = 50.0%   lower bound = 2
  const    size 2     b

With a full care set the lower bound is |f| itself:

  $ bddmin lower-bound -f "a ^ b ^ c" -c "1"
  lower bound = 4   (witness cube 1)

Syntax errors are reported:

  $ bddmin minimize -f "a &" -c "1"
  error: parsing f: expected a constant, identifier or (
  [1]

An empty care set is rejected:

  $ bddmin minimize -f "a" -c "0"
  error: empty care set
  [1]

Benchmark machines are checked for self-equivalence:

  $ bddmin equiv tlc
  EQUIVALENT  (20 iterations, 24 product states, 20 minimization calls)

  $ bddmin equiv johnson8 --strategy partitioned
  EQUIVALENT  (16 iterations, 16 product states, 16 minimization calls)

Reachability statistics:

  $ bddmin reach johnson8
  johnson8: 42 gates, 1 inputs, 8 latches, 8 outputs
  reachable states: 16 of 256   iterations: 16   |R| = 25 nodes

  $ bddmin reach bcd2
  mod10_counter4: 82 gates, 1 inputs, 4 latches, 5 outputs
  reachable states: 10 of 16   iterations: 10   |R| = 4 nodes

Unknown machines produce a helpful error:

  $ bddmin reach nosuchmachine 2>&1 | head -1
  error: unknown benchmark "nosuchmachine" (known: counter8, bcd2, gray6, johnson8, rnd953, lfsr10, tlc, minmax4, mult4b, cbp.6.2, arbiter4, rnd344, rnd1488, rndstyr, rndtbk) and no such file

Graphviz export:

  $ bddmin dot -f "a & b"
  digraph bdd {
    rankdir=TB;
    node [shape=circle];
    t1 [shape=box, label="1"];
    n3 [label="a"];
    n1 [label="b"];
    n1 -> t1 [style=solid];
    n1 -> t1 [style=dashed, color=red, arrowhead=odot];
    n3 -> n1 [style=solid];
    n3 -> t1 [style=dashed, color=red, arrowhead=odot];
    r0 [shape=plaintext, label="f"];
    r0 -> n3;
  }

The optimization flow (paper §1, second application): minimize the
machine's logic against its unreachable states and resynthesize.

  $ bddmin optimize bcd2
  mod10_counter4: 82 gates, 1 inputs, 4 latches, 5 outputs
  mod10_counter4.opt: 99 gates, 1 inputs, 4 latches, 5 outputs
  reachable states: 10   symbolic size: 24 -> 19 nodes

The optimized machine is written as BLIF and stays equivalent:

  $ bddmin optimize bcd2 -o opt.blif > /dev/null
  $ bddmin equiv bcd2 opt.blif | sed 's/ (.*//;s/ *$//'
  EQUIVALENT

The benchmark registry:

  $ bddmin benches | wc -l
  15

The espresso-lite PLA flow: minimize incompletely specified outputs.

  $ cat > seg_e.pla <<'PLA'
  > .i 4
  > .o 1
  > .ob e
  > 0000 1
  > 0010 1
  > 0110 1
  > 1000 1
  > 1010 -
  > 1100 -
  > 1110 -
  > 1001 -
  > 1011 -
  > 1111 -
  > .e
  > PLA
  $ bddmin pla seg_e.pla -o seg_e.min.pla
  4 inputs, 1 outputs, 10 rows (type fd)
  e        |f| = 7    best BDD cover = 4    isop: 2 cubes, 4 literals
  wrote seg_e.min.pla (2 rows)
  $ cat seg_e.min.pla
  .i 4
  .o 1
  .ilb x0 x1 x2 x3
  .ob e
  .p 2
  -0-0 1
  --10 1
  .e

The full experiment pipeline runs end to end (tiny budget):

  $ bddmin tables --quick --max-calls 3 2>/dev/null | head -9
  Table 1: Properties of the matching criteria.
  
    Criterion  Reflexive  Symmetric  Transitive
    osdm       no         no         yes       
    osm        yes        no         yes       
    tsm        yes        yes        no        
  
  Table 2: Heuristics based on matching siblings.
  

Tracing writes a Chrome trace-event JSON file: one array, balanced B/E
span events, the expected span names when the schedule minimizer drives
the frontier:

  $ bddmin equiv tlc --minimize sched --trace t.json
  EQUIVALENT  (20 iterations, 24 product states, 20 minimization calls)
  $ head -1 t.json
  [
  $ tail -1 t.json
  ]
  $ for s in fsm.reach reach.iteration fsm.image minimize.schedule schedule.window sibling.pass; do
  >   grep -q "\"name\":\"$s\"" t.json && echo "$s"
  > done
  fsm.reach
  reach.iteration
  fsm.image
  minimize.schedule
  schedule.window
  sibling.pass
  $ [ $(grep -c '"ph":"B"' t.json) -eq $(grep -c '"ph":"E"' t.json) ] && echo balanced
  balanced

The profiler prints a per-phase self/total-time table followed by the
probes (timings vary, so check the row labels only):

  $ bddmin profile tlc --max-calls 2 2>/dev/null | awk '{print $1}' \
  >   | grep -Ex 'phase|fsm.reach|capture.call|schedule.window|min:const|min:sched|counters:' | sort -u
  capture.call
  counters:
  fsm.reach
  min:const
  min:sched
  phase
  schedule.window

Unknown minimizer names print the catalogue and exit with a usage error:

  $ bddmin reach tlc --minimize nope
  unknown minimizer "nope"; valid minimizers are:
    const, restr, osm_td, osm_nv, osm_cp, osm_bt, tsm_td, tsm_cp, opt_lv, f_orig, f_and_c, f_or_nc, sched, isop
  [2]

Resource governance: step budgets are deterministic, so a starved
traversal reports the same partial result every run — with exit code 3
(did not finish) rather than a hard failure:

  $ bddmin reach johnson8 --step-budget 40
  johnson8: 42 gates, 1 inputs, 8 latches, 8 outputs
  reachable states: 1 of 256   iterations: 0   |R| = 9 nodes
  PARTIAL(steps): step budget exhausted (> 40 recursion steps); the count is a lower bound
  [3]

  $ bddmin equiv tlc --step-budget 40
  DNF(steps): step budget exhausted (> 40 recursion steps)
  [3]

A generous budget changes nothing:

  $ bddmin reach johnson8 --step-budget 10000000
  johnson8: 42 gates, 1 inputs, 8 latches, 8 outputs
  reachable states: 16 of 256   iterations: 16   |R| = 25 nodes
