(* BLIF reader/writer: parsing, elaboration, diagnostics, round trips. *)

let simple_blif = {|
# a tiny sequential circuit
.model toggle
.inputs en
.outputs q carry
.latch next q 0
.names en q next
10 1
01 1
.names en q carry
11 1
.end
|}

let parse_simple () =
  match Fsm.Blif.parse simple_blif with
  | Error e -> Alcotest.fail e
  | Ok nl ->
    Util.checki "latches" 1 (Fsm.Netlist.num_latches nl);
    Util.checki "inputs" 1 (Fsm.Netlist.num_inputs nl);
    (* simulate: q toggles while en *)
    let st = ref (Fsm.Netlist.sim_initial nl) in
    let qs = ref [] in
    for _ = 1 to 3 do
      let outs, st' = Fsm.Netlist.sim_step nl !st (fun _ -> true) in
      qs := List.assoc "q" outs :: !qs;
      st := st'
    done;
    Alcotest.(check (list bool)) "toggles" [ true; false ] (List.tl !qs)

let dont_care_cover () =
  let text = {|
.model mux
.inputs s a b
.outputs o
.names s a b o
1-1 1
01- 1
.end
|} in
  match Fsm.Blif.parse text with
  | Error e -> Alcotest.fail e
  | Ok nl ->
    (* o = s?b:a — wait: rows are s·b and ¬s·a *)
    let eval s a b =
      let env = function "s" -> s | "a" -> a | "b" -> b | _ -> false in
      List.assoc "o" (fst (Fsm.Netlist.sim_step nl (Fsm.Netlist.sim_initial nl) env))
    in
    Util.checkb "s=1 picks b" (eval true false true);
    Util.checkb "s=1 ignores a" (not (eval true true false));
    Util.checkb "s=0 picks a" (eval false true false)

let const_functions () =
  let text = {|
.model consts
.inputs x
.outputs t f buf
.names t
1
.names f
.names x buf
1 1
.end
|} in
  match Fsm.Blif.parse text with
  | Error e -> Alcotest.fail e
  | Ok nl ->
    let outs, _ =
      Fsm.Netlist.sim_step nl (Fsm.Netlist.sim_initial nl) (fun _ -> true)
    in
    Util.checkb "const 1" (List.assoc "t" outs);
    Util.checkb "const 0" (not (List.assoc "f" outs));
    Util.checkb "buffer" (List.assoc "buf" outs)

let out_of_order_names () =
  (* .names blocks in reverse dependency order must still elaborate. *)
  let text = {|
.model ooo
.inputs a b
.outputs o
.names mid a o
11 1
.names a b mid
11 1
.end
|} in
  Util.checkb "ok" (Result.is_ok (Fsm.Blif.parse text))

let latch_five_args () =
  let text = {|
.model l5
.inputs d
.outputs q
.latch d q re clk 1
.end
|} in
  match Fsm.Blif.parse text with
  | Error e -> Alcotest.fail e
  | Ok nl ->
    let outs, _ =
      Fsm.Netlist.sim_step nl (Fsm.Netlist.sim_initial nl) (fun _ -> false)
    in
    Util.checkb "init 1" (List.assoc "q" outs)

let continuation_and_comments () =
  let text =
    ".model c\n.inputs a \\\nb\n.outputs o # trailing comment\n.names a b o\n11 1\n.end\n"
  in
  match Fsm.Blif.parse text with
  | Error e -> Alcotest.fail e
  | Ok nl -> Util.checki "both inputs" 2 (Fsm.Netlist.num_inputs nl)

let errors () =
  let cases =
    [
      (".model m\n.inputs a\n.outputs o\n.names a o\n1 0\n.end", "offset cover");
      (".model m\n.outputs o\n.end", "undefined output");
      (".model m\n.inputs a\n.outputs o\n.names o o\n1 1\n.end", "cycle");
      (".model m\n.inputs a\n.outputs a\n.names a a2\nrow\n.end", "bad row");
    ]
  in
  List.iter
    (fun (text, what) ->
       Util.checkb what (Result.is_error (Fsm.Blif.parse text)))
    cases

let roundtrip_counter () =
  (* print then reparse a generated machine; must stay equivalent. *)
  let nl = Circuits.Counter.make ~width:3 () in
  let printed = Fsm.Blif.print nl in
  match Fsm.Blif.parse printed with
  | Error e -> Alcotest.fail e
  | Ok nl2 ->
    let man = Bdd.create () in
    (match Fsm.Equiv.check man nl nl2 with
     | Fsm.Equiv.Equivalent _ -> ()
     | Fsm.Equiv.Not_equivalent _ -> Alcotest.fail "round trip changed behaviour")

let roundtrip_random =
  Util.qtest ~count:20 "print/parse round trip preserves behaviour (random FSMs)"
    QCheck2.Gen.(int_bound 1000)
    (fun seed ->
       let nl =
         Circuits.Random_fsm.make
           { Circuits.Random_fsm.latches = 4; inputs = 2; depth = 2; seed }
       in
       let printed = Fsm.Blif.print nl in
       match Fsm.Blif.parse printed with
       | Error _ -> false
       | Ok nl2 ->
         let man = Bdd.create () in
         (match Fsm.Equiv.check man nl nl2 with
          | Fsm.Equiv.Equivalent _ -> true
          | Fsm.Equiv.Not_equivalent _ -> false))

let suite =
  [
    Alcotest.test_case "parse simple machine" `Quick parse_simple;
    Alcotest.test_case "cover with dashes" `Quick dont_care_cover;
    Alcotest.test_case "constants and buffers" `Quick const_functions;
    Alcotest.test_case "out-of-order .names" `Quick out_of_order_names;
    Alcotest.test_case "5-argument .latch" `Quick latch_five_args;
    Alcotest.test_case "continuations and comments" `Quick
      continuation_and_comments;
    Alcotest.test_case "malformed inputs rejected" `Quick errors;
    Alcotest.test_case "round trip counter" `Quick roundtrip_counter;
    roundtrip_random;
  ]
