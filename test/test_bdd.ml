(* BDD engine tests: canonicity, Boolean algebra, cofactors, quantifiers,
   composition, generalized cofactors, traversals, cubes. *)

module Tt = Logic.Truth_table

let man = Util.man

let x i = Bdd.ithvar man i

let canonicity () =
  (* Same function built two ways yields the same edge. *)
  let a =
    Bdd.dor man (Bdd.dand man (x 0) (x 1)) (Bdd.dand man (Bdd.compl (x 0)) (x 2))
  in
  let b = Bdd.ite man (x 0) (x 1) (x 2) in
  Util.checkb "ite = or-of-ands" (Bdd.equal a b);
  Util.checkb "not not f = f" (Bdd.equal (Bdd.compl (Bdd.compl a)) a);
  Util.checkb "physically equal uids" (Bdd.uid a = Bdd.uid b)

let canonicity_random =
  Util.qtest ~count:300 "random canonicity: equal tables <=> equal edges"
    QCheck2.Gen.(
      let* n = int_range 1 5 in
      let* s1 = int_bound 0xFFFF in
      let* s2 = int_bound 0xFFFF in
      return (n, s1, s2))
    (fun (n, s1, s2) ->
       let mk s =
         let st = Random.State.make [| s; n |] in
         Tt.create n (fun _ -> Random.State.bool st)
       in
       let t1 = mk s1 and t2 = mk s2 in
       let b1 = Tt.to_bdd man t1 and b2 = Tt.to_bdd man t2 in
       Bdd.equal b1 b2 = Tt.equal t1 t2)

let boolean_algebra =
  Util.qtest ~count:300 "random Boolean algebra laws" Util.gen_instance
    (fun desc ->
       let f, g = Util.build_instance desc in
       let open Bdd in
       equal (dand man f g) (compl (dor man (compl f) (compl g)))
       && equal (dxor man f g) (dor man (diff man f g) (diff man g f))
       && equal (dxnor man f g) (compl (dxor man f g))
       && equal (imply man f g) (dor man (compl f) g)
       && equal (dnand man f g) (compl (dand man f g))
       && equal (dnor man f g) (compl (dor man f g))
       && equal (ite man f g g) g
       && leq man (dand man f g) f
       && leq man f (dor man f g))

let cofactor_shannon =
  Util.qtest ~count:200 "Shannon expansion via cofactor" Util.gen_instance
    (fun desc ->
       let f, _ = Util.build_instance desc in
       let v = 0 in
       let fv = Bdd.cofactor man f ~var:v true
       and fnv = Bdd.cofactor man f ~var:v false in
       Bdd.equal f (Bdd.ite man (x v) fv fnv))

let quantifiers =
  Util.qtest ~count:200 "exists = or of cofactors; forall dual"
    Util.gen_instance
    (fun desc ->
       let f, _ = Util.build_instance desc in
       let v = 1 in
       let fv = Bdd.cofactor man f ~var:v true
       and fnv = Bdd.cofactor man f ~var:v false in
       Bdd.equal (Bdd.exists man [ v ] f) (Bdd.dor man fv fnv)
       && Bdd.equal (Bdd.forall man [ v ] f) (Bdd.dand man fv fnv)
       && Bdd.equal
            (Bdd.forall man [ v ] f)
            (Bdd.compl (Bdd.exists man [ v ] (Bdd.compl f))))

let and_exists_law =
  Util.qtest ~count:200 "and_exists f g = exists (f & g)" Util.gen_instance
    (fun desc ->
       let f, g = Util.build_instance desc in
       Bdd.equal
         (Bdd.and_exists man [ 0; 2 ] f g)
         (Bdd.exists man [ 0; 2 ] (Bdd.dand man f g)))

let compose_law =
  Util.qtest ~count:200 "compose = ite expansion" Util.gen_instance
    (fun desc ->
       let f, g = Util.build_instance desc in
       let v = 1 in
       let direct = Bdd.compose man f ~var:v g in
       let expected =
         Bdd.ite man g
           (Bdd.cofactor man f ~var:v true)
           (Bdd.cofactor man f ~var:v false)
       in
       Bdd.equal direct expected)

let vector_compose_simultaneous () =
  (* Swap x0 and x1 simultaneously: f(x0,x1) -> f(x1,x0). *)
  let f = Bdd.diff man (x 0) (x 1) in
  let swapped = Bdd.vector_compose man f [ (0, x 1); (1, x 0) ] in
  Util.checkb "swap" (Bdd.equal swapped (Bdd.diff man (x 1) (x 0)))

let rename_updown () =
  let f = Bdd.dand man (x 0) (Bdd.compl (x 3)) in
  let up = Bdd.rename man f [ (0, 5); (3, 7) ] in
  Util.checkb "rename up"
    (Bdd.equal up (Bdd.dand man (x 5) (Bdd.compl (x 7))));
  let down = Bdd.rename man up [ (5, 0); (7, 3) ] in
  Util.checkb "rename back" (Bdd.equal down f)

let constrain_is_cover =
  Util.qtest ~count:300 "constrain and restrict return covers"
    Util.gen_instance
    (fun desc ->
       let s = Util.build_ispec_nonzero desc in
       let n = 5 in
       Util.tt_is_cover ~nvars:n s (Bdd.constrain man s.f s.c)
       && Util.tt_is_cover ~nvars:n s (Bdd.restrict man s.f s.c))

let restrict_no_new_vars =
  Util.qtest ~count:300 "restrict never adds variables to f's support"
    Util.gen_instance
    (fun desc ->
       let s = Util.build_ispec_nonzero desc in
       let r = Bdd.restrict man s.f s.c in
       let sub a b = List.for_all (fun v -> List.mem v b) a in
       sub (Bdd.support man r) (Bdd.support man s.f))

let constrain_cube_is_cofactor =
  Util.qtest ~count:200 "constrain by a cube = Shannon cofactor"
    QCheck2.Gen.(
      let* desc = Util.gen_instance in
      let* v = int_range 0 4 in
      let* phase = bool in
      return (desc, v, phase))
    (fun (desc, v, phase) ->
       let f, _ = Util.build_instance desc in
       let cube = if phase then x v else Bdd.compl (x v) in
       Bdd.equal (Bdd.constrain man f cube) (Bdd.cofactor man f ~var:v phase))

let size_counts () =
  Util.checki "const" 1 (Bdd.size man (Bdd.one man));
  Util.checki "var" 2 (Bdd.size man (x 0));
  Util.checki "xor3" 4
    (Bdd.size man (Bdd.dxor man (x 0) (Bdd.dxor man (x 1) (x 2))));
  (* shared_size of f and its complement = size of f *)
  let f = Bdd.dor man (x 0) (Bdd.dand man (x 1) (x 2)) in
  Util.checki "shared with complement" (Bdd.size man f)
    (Bdd.shared_size man [ f; Bdd.compl f ])

let sat_count_checks =
  Util.qtest ~count:200 "sat_count matches truth table" Util.gen_instance
    (fun desc ->
       let f, _ = Util.build_instance desc in
       let n = 5 in
       let expected = Tt.count_ones (Tt.of_bdd man ~nvars:n f) in
       abs_float (Bdd.sat_count man f ~nvars:n -. float_of_int expected)
       < 1e-6)

let support_checks () =
  let f = Bdd.dand man (x 1) (Bdd.dor man (x 3) (x 4)) in
  Alcotest.(check (list int)) "support" [ 1; 3; 4 ] (Bdd.support man f);
  Alcotest.(check (list int)) "const support" [] (Bdd.support man (Bdd.one man))

let levels () =
  let f = Bdd.ite man (x 0) (x 1) (Bdd.compl (x 1)) in
  Util.checki "level 0" 1 (Bdd.nodes_at_level man f 0);
  Util.checki "level 1" 1 (Bdd.nodes_at_level man f 1);
  Util.checki "below 0" 2 (Bdd.count_below man f 0);
  Util.checki "below 5" 1 (Bdd.count_below man f 5)

let cube_roundtrip =
  Util.qtest ~count:200 "cube of_cube/to_cube round trip"
    QCheck2.Gen.(
      let* n = int_range 1 6 in
      let* mask = int_bound ((1 lsl n) - 1) in
      let* phases = int_bound ((1 lsl n) - 1) in
      return (n, mask, phases))
    (fun (n, mask, phases) ->
       let cube =
         List.filter_map
           (fun v ->
              if (mask lsr v) land 1 = 1 then
                Some (v, (phases lsr v) land 1 = 1)
              else None)
           (List.init n Fun.id)
       in
       let g = Bdd.Cube.of_cube man cube in
       Bdd.Cube.to_cube man g = Some cube && Bdd.Cube.is_cube man g)

let cube_enumeration () =
  let f = Bdd.dor man (Bdd.dand man (x 0) (x 1)) (Bdd.compl (x 0)) in
  let cubes = Bdd.Cube.all_cubes man f in
  Util.checki "two paths" 2 (List.length cubes);
  (* every enumerated cube implies f *)
  List.iter
    (fun c -> Util.checkb "cube implies f" (Bdd.leq man (Bdd.Cube.of_cube man c) f))
    cubes;
  (* disjunction of all path cubes equals f *)
  let disj =
    Bdd.disj man (List.map (Bdd.Cube.of_cube man) cubes)
  in
  Util.checkb "cubes cover f" (Bdd.equal disj f)

let cube_limit () =
  let f = Bdd.dxor man (x 0) (Bdd.dxor man (x 1) (x 2)) in
  Util.checki "limit respected" 2
    (List.length (Bdd.Cube.all_cubes ~limit:2 man f));
  Util.checkb "zero has no cube" (Bdd.Cube.any_cube man (Bdd.zero man) = None);
  Util.checkb "one has empty cube" (Bdd.Cube.any_cube man (Bdd.one man) = Some [])

let short_cube_shortest () =
  (* f = x0 + x1·x2·x3: shortest path cube has 1 literal *)
  let f =
    Bdd.dor man (x 0) (Bdd.dand man (x 1) (Bdd.dand man (x 2) (x 3)))
  in
  match Bdd.Cube.short_cube man f with
  | Some c -> Util.checki "shortest" 1 (Bdd.Cube.literal_count c)
  | None -> Alcotest.fail "expected a cube"

let eval_checks =
  Util.qtest ~count:200 "eval agrees with truth table" Util.gen_instance
    (fun desc ->
       let f, _ = Util.build_instance desc in
       let t = Tt.of_bdd man ~nvars:5 f in
       List.for_all
         (fun m -> Bdd.eval f (fun v -> (m lsr v) land 1 = 1) = Tt.get t m)
         (List.init 32 Fun.id))

let dot_output () =
  let f = Bdd.ite man (x 0) (x 1) (Bdd.compl (x 2)) in
  let s = Bdd.Dot.to_dot man [ ("f", f) ] in
  Util.checkb "digraph" (String.length s > 0 && String.sub s 0 7 = "digraph");
  Util.checkb "has terminal" (Util.contains s "t1")

let suite =
  [
    Alcotest.test_case "canonicity basic" `Quick canonicity;
    canonicity_random;
    boolean_algebra;
    cofactor_shannon;
    quantifiers;
    and_exists_law;
    compose_law;
    Alcotest.test_case "vector_compose swap" `Quick vector_compose_simultaneous;
    Alcotest.test_case "rename up and back" `Quick rename_updown;
    constrain_is_cover;
    restrict_no_new_vars;
    constrain_cube_is_cofactor;
    Alcotest.test_case "size counts" `Quick size_counts;
    sat_count_checks;
    Alcotest.test_case "support" `Quick support_checks;
    Alcotest.test_case "levels" `Quick levels;
    cube_roundtrip;
    Alcotest.test_case "cube enumeration" `Quick cube_enumeration;
    Alcotest.test_case "cube limits" `Quick cube_limit;
    Alcotest.test_case "short cube" `Quick short_cube_shortest;
    eval_checks;
    Alcotest.test_case "dot output" `Quick dot_output;
  ]
