(* Quantification scheduling: cluster structure, determinism, and the
   exactness guarantees the image walk relies on (clusters conjoin back
   to the transition relation; every quantifiable variable is abstracted
   exactly once). *)

module Sym = Fsm.Symbolic
module Q = Fsm.Qsched

let random_nl seed =
  Circuits.Random_fsm.make
    { Circuits.Random_fsm.latches = 5; inputs = 2; depth = 3; seed }

(* Manager-independent fingerprint of a schedule: BDD edges can't be
   compared across managers, but the variable structure can. *)
let fingerprint (s : Q.t) =
  ( Array.to_list
      (Array.map (fun c -> (c.Q.support, c.Q.quantify)) s.Q.clusters),
    s.Q.pre_quantify,
    s.Q.vars_early )

let schedule_of ?cluster_bound nl =
  let man = Bdd.create () in
  let sym = Sym.of_netlist man nl in
  (man, sym, Sym.schedule ?cluster_bound sym)

let deterministic_across_managers =
  Util.qtest ~count:20 "schedule identical on fresh managers and domains"
    QCheck2.Gen.(int_bound 1000)
    (fun seed ->
       let nl = random_nl seed in
       let _, _, reference = schedule_of nl in
       (* worker domains build their own managers; the schedule must not
          depend on which domain (or how many) did the work *)
       let prints =
         Exec.map ~jobs:2
           (fun nl ->
              let _, _, s = schedule_of nl in
              fingerprint s)
           [ nl; nl; nl ]
       in
       List.for_all (( = ) (fingerprint reference)) prints)

let clusters_conjoin_to_relation =
  Util.qtest ~count:20 "cluster conjunction = monolithic relation"
    QCheck2.Gen.(int_bound 1000)
    (fun seed ->
       let man, sym, sched = schedule_of (random_nl seed) in
       let product =
         Array.fold_left
           (fun acc c -> Bdd.dand man acc c.Q.rel)
           (Bdd.one man) sched.Q.clusters
       in
       Bdd.equal product (Sym.transition_relation sym))

let quantified_exactly_once =
  Util.qtest ~count:20 "each quantifiable variable scheduled exactly once"
    QCheck2.Gen.(int_bound 1000)
    (fun seed ->
       let _, sym, sched = schedule_of (random_nl seed) in
       let scheduled =
         sched.Q.pre_quantify
         @ List.concat_map
             (fun c -> c.Q.quantify)
             (Array.to_list sched.Q.clusters)
       in
       let expected =
         List.sort_uniq compare (Sym.state_support sym @ Sym.input_support sym)
       in
       List.sort compare scheduled = expected)

let bound_one_keeps_conjuncts_apart () =
  let man = Bdd.create () in
  let sym = Sym.of_netlist man (Circuits.Counter.make ~width:5 ()) in
  let sched = Sym.schedule ~cluster_bound:1 sym in
  Alcotest.(check int)
    "one cluster per latch" 5
    (Array.length sched.Q.clusters);
  (* a generous bound merges at least something on this tiny machine *)
  let merged = Sym.schedule ~cluster_bound:10_000 sym in
  Util.checkb "large bound clusters"
    (Array.length merged.Q.clusters < 5)

let schedule_is_memoized () =
  let man = Bdd.create () in
  let sym = Sym.of_netlist man (Circuits.Gray.make ~width:4) in
  let a = Sym.schedule sym in
  Util.checkb "same bound returns the memo" (a == Sym.schedule sym);
  let b = Sym.schedule ~cluster_bound:1 sym in
  Util.checkb "bound change rebuilds" (not (a == b));
  Util.checkb "new bound recorded" (b.Q.cluster_bound = 1);
  Util.checkb "rebuilt memo sticks" (b == Sym.schedule ~cluster_bound:1 sym)

let relations_are_memoized () =
  let man = Bdd.create () in
  let sym = Sym.of_netlist man (Circuits.Gray.make ~width:4) in
  let t1 = Sym.transition_relation sym in
  let t2 = Sym.transition_relation sym in
  Util.checkb "monolithic relation memoized" (Bdd.uid t1 = Bdd.uid t2);
  Util.checkb "partitioned relation memoized"
    (Sym.partitioned_relation sym == Sym.partitioned_relation sym);
  (* memoized roots survive a collection *)
  ignore (Bdd.gc sym.Sym.man);
  Util.checkb "relation survives gc"
    (Bdd.equal (Sym.transition_relation sym) t1)

let restrict_resets_memos =
  Util.qtest ~count:10 "restrict_to_care_states rebuilds relations"
    QCheck2.Gen.(int_bound 1000)
    (fun seed ->
       let man = Bdd.create () in
       let sym = Sym.of_netlist man (random_nl seed) in
       let t = Sym.transition_relation sym in
       let _ = Sym.schedule sym in
       let reached, _ = Fsm.Reach.reachable sym in
       let sym' =
         Sym.restrict_to_care_states sym ~care:reached
           ~minimize:Fsm.Reach.constrain_minimizer
       in
       (* the restricted machine's relation agrees with the original on
          the care states (not necessarily elsewhere) *)
       let t' = Sym.transition_relation sym' in
       Bdd.is_zero (Bdd.dand man (Bdd.dxor man t t') reached))

let suite =
  [
    deterministic_across_managers;
    clusters_conjoin_to_relation;
    quantified_exactly_once;
    Alcotest.test_case "cluster bound 1 = partitioned" `Quick
      bound_one_keeps_conjuncts_apart;
    Alcotest.test_case "schedule memoized per bound" `Quick
      schedule_is_memoized;
    Alcotest.test_case "relations memoized and rooted" `Quick
      relations_are_memoized;
    restrict_resets_memos;
  ]
