(* Explicit-state oracle vs. the symbolic engine. *)

let explicit_matches_symbolic =
  Util.qtest ~count:25 "explicit and symbolic reachability agree"
    QCheck2.Gen.(int_bound 2000)
    (fun seed ->
       let nl =
         Circuits.Random_fsm.make
           { Circuits.Random_fsm.latches = 5; inputs = 2; depth = 3; seed }
       in
       let explicit = Fsm.Explicit.reachable nl in
       let man = Bdd.create () in
       let sym = Fsm.Symbolic.of_netlist man nl in
       let _, st = Fsm.Reach.reachable sym in
       float_of_int explicit.Fsm.Explicit.states
       = st.Fsm.Reach.reached_states)

let explicit_matches_symbolic_suite () =
  List.iter
    (fun (name, expected) ->
       let b = Option.get (Circuits.Registry.find name) in
       let st = Fsm.Explicit.reachable (b.Circuits.Registry.build ()) in
       Util.checki name expected st.Fsm.Explicit.states)
    [ ("bcd2", 10); ("johnson8", 16); ("tlc", 24); ("arbiter4", 4) ]

let reachable_states_are_reachable () =
  (* each enumerated state's characteristic cube is inside symbolic R *)
  let nl = Circuits.Gray.make ~width:4 in
  let states, st = Fsm.Explicit.reachable_states nl in
  Util.checki "count matches list" st.Fsm.Explicit.states
    (List.length states);
  let man = Bdd.create () in
  let sym = Fsm.Symbolic.of_netlist man nl in
  let reached, _ = Fsm.Reach.reachable sym in
  List.iter
    (fun bits ->
       let cube = Fsm.Symbolic.state_cube_of_ints sym bits in
       Util.checkb "state in symbolic R" (Bdd.leq man cube reached))
    states

let depth_of_counter () =
  let st = Fsm.Explicit.reachable (Circuits.Counter.make ~width:4 ()) in
  Util.checki "16 states" 16 st.Fsm.Explicit.states;
  Util.checki "depth 15" 15 st.Fsm.Explicit.depth

let state_limit () =
  Util.checkb "limit enforced"
    (match
       Fsm.Explicit.reachable ~max_states:4 (Circuits.Counter.make ~width:5 ())
     with
     | exception Failure _ -> true
     | _ -> false)

let equivalence_oracle =
  Util.qtest ~count:15 "explicit equivalence agrees with symbolic"
    QCheck2.Gen.(int_bound 2000)
    (fun seed ->
       let p = { Circuits.Random_fsm.latches = 4; inputs = 2; depth = 2; seed } in
       let nl1 = Circuits.Random_fsm.make ~name:"m1" p in
       let nl2 =
         Circuits.Random_fsm.make ~name:"m2"
           { p with Circuits.Random_fsm.seed = seed + 1 }
       in
       let man = Bdd.create () in
       let symbolic_same =
         match Fsm.Equiv.check man nl1 nl2 with
         | Fsm.Equiv.Equivalent _ -> true
         | Fsm.Equiv.Not_equivalent _ -> false
       in
       let explicit_same =
         match Fsm.Explicit.equivalent nl1 nl2 with
         | Ok true -> true
         | Ok false | Error _ -> false
       in
       (* also sanity: a machine is explicitly equivalent to itself *)
       let self_same =
         match Fsm.Explicit.equivalent nl1 nl1 with
         | Ok true -> true
         | Ok false | Error _ -> false
       in
       symbolic_same = explicit_same && self_same)

let suite =
  [
    explicit_matches_symbolic;
    Alcotest.test_case "known machine state counts" `Quick
      explicit_matches_symbolic_suite;
    Alcotest.test_case "states inside symbolic R" `Quick
      reachable_states_are_reachable;
    Alcotest.test_case "counter depth" `Quick depth_of_counter;
    Alcotest.test_case "state limit" `Quick state_limit;
    equivalence_oracle;
  ]
