(* Execution-layer tests: the domain pool, futures, the ordered parallel
   map, and the determinism contract of the parallel capture suite — the
   same benchmarks run at [jobs:4] and [jobs:1] must produce identical
   result tables (wall-clock readings are the only permitted delta, and
   the CSV export carries none). *)

let pool_runs_jobs () =
  Exec.Pool.with_pool ~jobs:3 @@ fun pool ->
  let futures =
    List.init 20 (fun i -> Exec.Future.spawn pool (fun () -> i * i))
  in
  let results = List.map Exec.Future.await futures in
  Util.checkb "all jobs ran in order"
    (results = List.init 20 (fun i -> i * i))

let pool_survives_exceptions () =
  (* Raising jobs must neither wedge the pool nor poison later jobs; the
     exception resurfaces at await time, with its original payload. *)
  Exec.Pool.with_pool ~jobs:2 @@ fun pool ->
  let boom = List.init 8 (fun i ->
      Exec.Future.spawn pool (fun () ->
          if i mod 2 = 0 then failwith (Printf.sprintf "boom %d" i) else i))
  in
  let after = List.init 8 (fun i -> Exec.Future.spawn pool (fun () -> 10 * i)) in
  let outcomes =
    List.map
      (fun fut ->
         match Exec.Future.await fut with
         | v -> Ok v
         | exception Failure msg -> Error msg)
      boom
  in
  List.iteri
    (fun i outcome ->
       if i mod 2 = 0 then
         Util.checkb "failure propagated"
           (outcome = Error (Printf.sprintf "boom %d" i))
       else Util.checkb "interleaved successes unaffected" (outcome = Ok i))
    outcomes;
  Util.checkb "pool still serves jobs after failures"
    (List.map Exec.Future.await after = List.init 8 (fun i -> 10 * i))

let submit_after_shutdown () =
  let pool = Exec.Pool.create ~jobs:1 in
  let fut = Exec.Future.spawn pool (fun () -> 41 + 1) in
  Exec.Pool.shutdown pool;
  Util.checki "queued job drained before shutdown" 42 (Exec.Future.await fut);
  Util.checkb "submit after shutdown is refused"
    (match Exec.Pool.submit pool (fun () -> ()) with
     | exception Invalid_argument _ -> true
     | () -> false);
  (* idempotent *)
  Exec.Pool.shutdown pool

let abort_resolves_queued_futures () =
  (* `Abort discards the queue and resolves the discarded jobs' futures
     with Pool.Aborted, so awaiting them raises instead of hanging; the
     job already on a worker still completes normally. *)
  let pool = Exec.Pool.create ~jobs:1 in
  let release = Atomic.make false in
  let started = Atomic.make false in
  let blocker =
    Exec.Future.spawn pool (fun () ->
        Atomic.set started true;
        while not (Atomic.get release) do
          Domain.cpu_relax ()
        done;
        7)
  in
  while not (Atomic.get started) do
    Domain.cpu_relax ()
  done;
  (* the single worker is busy: these stay queued *)
  let queued = List.init 3 (fun i -> Exec.Future.spawn pool (fun () -> i)) in
  (* shutdown joins the (still-blocked) worker, so run it elsewhere; the
     queue is discarded and the futures resolved before the join *)
  let shut = Domain.spawn (fun () -> Exec.Pool.shutdown ~mode:`Abort pool) in
  List.iter
    (fun fut ->
       match Exec.Future.await fut with
       | _ -> Alcotest.fail "aborted job returned a value"
       | exception Exec.Pool.Aborted -> ())
    queued;
  Util.checkb "in-flight job not yet done" (not (Exec.Future.is_resolved blocker));
  Atomic.set release true;
  Domain.join shut;
  Util.checki "in-flight job completed normally" 7 (Exec.Future.await blocker);
  (* idempotent in either mode *)
  Exec.Pool.shutdown ~mode:`Abort pool;
  Exec.Pool.shutdown pool

let abort_empty_queue () =
  (* `Abort with nothing queued is just a join *)
  let pool = Exec.Pool.create ~jobs:2 in
  let fut = Exec.Future.spawn pool (fun () -> 5) in
  Util.checki "ran" 5 (Exec.Future.await fut);
  Exec.Pool.shutdown ~mode:`Abort pool;
  Util.checkb "submit refused after abort"
    (match Exec.Pool.submit pool (fun () -> ()) with
     | exception Invalid_argument _ -> true
     | () -> false)

let on_abort_runs_once () =
  let pool = Exec.Pool.create ~jobs:1 in
  let release = Atomic.make false in
  let started = Atomic.make false in
  ignore
    (Exec.Future.spawn pool (fun () ->
         Atomic.set started true;
         while not (Atomic.get release) do
           Domain.cpu_relax ()
         done));
  while not (Atomic.get started) do
    Domain.cpu_relax ()
  done;
  let aborts = Atomic.make 0 in
  Exec.Pool.submit pool
    ~on_abort:(fun () -> Atomic.incr aborts)
    (fun () -> Alcotest.fail "discarded job must not run");
  let shut = Domain.spawn (fun () -> Exec.Pool.shutdown ~mode:`Abort pool) in
  while Atomic.get aborts = 0 do
    Domain.cpu_relax ()
  done;
  Atomic.set release true;
  Domain.join shut;
  Exec.Pool.shutdown ~mode:`Abort pool;
  Util.checki "on_abort ran exactly once" 1 (Atomic.get aborts)

let priority_ordering () =
  (* While the single worker is pinned, queued jobs accumulate in the
     heap; on release they must run lowest priority value first, FIFO
     among equals — the property the serve layer's EDF scheduling
     stands on. *)
  let pool = Exec.Pool.create ~jobs:1 in
  let release = Atomic.make false in
  let started = Atomic.make false in
  let blocker =
    Exec.Future.spawn pool (fun () ->
        Atomic.set started true;
        while not (Atomic.get release) do
          Domain.cpu_relax ()
        done)
  in
  while not (Atomic.get started) do
    Domain.cpu_relax ()
  done;
  let order = ref [] in
  let lock = Mutex.create () in
  let tag name =
    Mutex.lock lock;
    order := name :: !order;
    Mutex.unlock lock
  in
  List.iter
    (fun (name, prio) ->
       Exec.Pool.submit pool ~priority:prio (fun () -> tag name))
    [ ("late", 30L); ("early", 10L); ("tie-a", 20L); ("mid", 20L);
      ("default", Int64.max_int) ];
  Atomic.set release true;
  Exec.Future.await blocker;
  Exec.Pool.shutdown pool;
  Util.checkb "EDF order with FIFO ties"
    (List.rev !order = [ "early"; "tie-a"; "mid"; "late"; "default" ])

let idle_workers_gauge () =
  let pool = Exec.Pool.create ~jobs:2 in
  let spin_until what pred =
    let tries = ref 0 in
    while not (pred ()) && !tries < 10_000_000 do
      incr tries;
      Domain.cpu_relax ()
    done;
    Util.checkb what (pred ())
  in
  spin_until "both workers idle at rest"
    (fun () -> Exec.Pool.idle_workers pool = 2);
  let release = Atomic.make false in
  let started = Atomic.make false in
  let blocker =
    Exec.Future.spawn pool (fun () ->
        Atomic.set started true;
        while not (Atomic.get release) do
          Domain.cpu_relax ()
        done)
  in
  while not (Atomic.get started) do
    Domain.cpu_relax ()
  done;
  spin_until "one worker busy" (fun () -> Exec.Pool.idle_workers pool = 1);
  Atomic.set release true;
  Exec.Future.await blocker;
  spin_until "both idle again" (fun () -> Exec.Pool.idle_workers pool = 2);
  Exec.Pool.shutdown pool;
  Util.checki "no idle workers after shutdown" 0 (Exec.Pool.idle_workers pool)

let map_matches_sequential =
  Util.qtest ~count:30 "Exec.map ~jobs is List.map"
    QCheck2.Gen.(list_size (int_bound 40) (int_bound 1000))
    (fun xs ->
       let f x = (x * 7919) mod 1003 in
       Exec.map ~jobs:4 f xs = List.map f xs)

let future_states () =
  let fut = Exec.Future.create () in
  Util.checkb "pending" (not (Exec.Future.is_resolved fut));
  Util.checkb "peek pending" (Exec.Future.peek fut = None);
  Exec.Future.fill fut 7;
  Util.checki "filled" 7 (Exec.Future.await fut);
  Util.checkb "double fill refused"
    (match Exec.Future.fill fut 8 with
     | exception Invalid_argument _ -> true
     | () -> false)

(* The tentpole's determinism guarantee, end to end: parallel capture of
   the quick suite must be indistinguishable from sequential capture in
   every recorded field except wall time.  [calls_to_csv] contains sizes,
   onset fractions, minimizer winners and lower bounds — no times — so
   string equality is the right oracle. *)
let suite_differential () =
  let base =
    Harness.Capture.(
      default_config |> with_max_calls 6 |> with_lower_bound_cubes 50)
  in
  let benches = Circuits.Registry.quick in
  let names = Harness.Capture.minimizer_names base in
  let progress_log = ref [] in
  let run jobs =
    progress_log := [];
    let calls =
      Harness.Capture.run_suite
        ~config:(Harness.Capture.with_jobs jobs base)
        ~progress:(fun m -> progress_log := m :: !progress_log)
        benches
    in
    (Harness.Tables.calls_to_csv ~names calls, List.rev !progress_log)
  in
  let csv1, log1 = run 1 in
  let csv4, log4 = run 4 in
  Util.checkb "captured something" (String.length csv1 > 0);
  Util.check Alcotest.string "CSV identical at jobs:4" csv1 csv4;
  Util.checkb "progress stream identical" (log1 = log4)

let suite =
  [
    Alcotest.test_case "pool runs jobs" `Quick pool_runs_jobs;
    Alcotest.test_case "pool survives exceptions" `Quick
      pool_survives_exceptions;
    Alcotest.test_case "submit after shutdown" `Quick submit_after_shutdown;
    Alcotest.test_case "abort resolves queued futures" `Quick
      abort_resolves_queued_futures;
    Alcotest.test_case "abort with empty queue" `Quick abort_empty_queue;
    Alcotest.test_case "on_abort runs exactly once" `Quick on_abort_runs_once;
    map_matches_sequential;
    Alcotest.test_case "future states" `Quick future_states;
    Alcotest.test_case "parallel capture is deterministic" `Quick
      suite_differential;
  ]
