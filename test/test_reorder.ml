(* Rebuild-based variable reordering and sifting. *)

module Tt = Logic.Truth_table

let fresh () = Bdd.create ()

(* The classic order-sensitive family: x0·x_k + x1·x_{k+1} + ... is linear
   under the interleaved order and exponential under the separated one. *)
let conjunction_pairs man k ~interleaved =
  let pair i =
    if interleaved then
      Bdd.dand man (Bdd.ithvar man (2 * i)) (Bdd.ithvar man ((2 * i) + 1))
    else Bdd.dand man (Bdd.ithvar man i) (Bdd.ithvar man (k + i))
  in
  Bdd.disj man (List.init k pair)

let rebuild_preserves_semantics =
  Util.qtest ~count:100 "rebuild: new function = old function modulo levels"
    QCheck2.Gen.(
      let* n = int_range 1 6 in
      let* seed = int_bound 0xFFFFF in
      let* pseed = int_bound 0xFFFF in
      return (n, seed, pseed))
    (fun (n, seed, pseed) ->
       let man = fresh () in
       let st = Random.State.make [| seed; n |] in
       let tt = Tt.create n (fun _ -> Random.State.bool st) in
       let f = Tt.to_bdd man tt in
       (* random permutation of 0..n-1 *)
       let placement = Array.init n Fun.id in
       let pst = Random.State.make [| pseed |] in
       for i = n - 1 downto 1 do
         let j = Random.State.int pst (i + 1) in
         let tmp = placement.(i) in
         placement.(i) <- placement.(j);
         placement.(j) <- tmp
       done;
       let target, rebuilt = Bdd.Reorder.rebuild man ~placement [ f ] in
       match rebuilt with
       | [ g ] ->
         List.for_all
           (fun m ->
              let old_assign v = (m lsr v) land 1 = 1 in
              let new_assign level =
                (* find the variable placed at this level *)
                let rec find v =
                  if placement.(v) = level then old_assign v else find (v + 1)
                in
                find 0
              in
              ignore target;
              Bdd.eval g new_assign = Tt.get tt m)
           (List.init (1 lsl n) Fun.id)
       | _ -> false)

let separated_vs_interleaved () =
  let k = 6 in
  let man = fresh () in
  let bad = conjunction_pairs man k ~interleaved:false in
  let good = conjunction_pairs man k ~interleaved:true in
  let bad_size = Bdd.size man bad and good_size = Bdd.size man good in
  Util.checkb "separated order blows up" (bad_size > 3 * good_size);
  (* sifting recovers (close to) the interleaved size *)
  let _, sifted_size = Bdd.Reorder.sift man [ bad ] in
  Util.checkb
    (Printf.sprintf "sifting recovers linear size (%d -> %d, target %d)"
       bad_size sifted_size good_size)
    (sifted_size <= good_size + 2)

let sift_never_worse =
  Util.qtest ~count:60 "sifting never increases the shared size"
    QCheck2.Gen.(
      let* n = int_range 1 6 in
      let* seed = int_bound 0xFFFFF in
      return (n, seed))
    (fun (n, seed) ->
       let man = fresh () in
       let st = Random.State.make [| seed; n; 3 |] in
       let fs =
         List.init 2 (fun _ ->
             Tt.to_bdd man (Tt.create n (fun _ -> Random.State.bool st)))
       in
       let before = Bdd.shared_size man fs in
       let placement, after = Bdd.Reorder.sift man fs in
       after <= before
       && after = Bdd.Reorder.shared_size_under man ~placement fs)

let sift_apply_consistent =
  Util.qtest ~count:40 "sift_apply returns functions of the promised size"
    QCheck2.Gen.(
      let* n = int_range 1 5 in
      let* seed = int_bound 0xFFFFF in
      return (n, seed))
    (fun (n, seed) ->
       let man = fresh () in
       let st = Random.State.make [| seed; n; 7 |] in
       let f = Tt.to_bdd man (Tt.create n (fun _ -> Random.State.bool st)) in
       let placement, target, rebuilt = Bdd.Reorder.sift_apply man [ f ] in
       let _, expected = Bdd.Reorder.sift man [ f ] in
       ignore placement;
       Bdd.shared_size target rebuilt = expected)

let bad_placements_rejected () =
  let man = fresh () in
  let f = Bdd.dand man (Bdd.ithvar man 0) (Bdd.ithvar man 1) in
  Util.checkb "non-injective"
    (match Bdd.Reorder.rebuild man ~placement:[| 0; 0 |] [ f ] with
     | exception Invalid_argument _ -> true
     | _ -> false);
  Util.checkb "too short"
    (match Bdd.Reorder.rebuild man ~placement:[| 0 |] [ f ] with
     | exception Invalid_argument _ -> true
     | _ -> false)

let constants_and_singletons () =
  let man = fresh () in
  let placement, size = Bdd.Reorder.sift man [ Bdd.one man ] in
  Util.checki "constant size" 1 size;
  Util.checkb "identity placement" (placement.(0) = 0);
  let v = Bdd.ithvar man 3 in
  let _, size = Bdd.Reorder.sift man [ v ] in
  Util.checki "single variable" 2 size

let suite =
  [
    rebuild_preserves_semantics;
    Alcotest.test_case "sifting fixes a separated order" `Quick
      separated_vs_interleaved;
    sift_never_worse;
    sift_apply_consistent;
    Alcotest.test_case "bad placements rejected" `Quick bad_placements_rejected;
    Alcotest.test_case "constants and singletons" `Quick
      constants_and_singletons;
  ]
