(* Matching-graph solvers: DAG sinks/assignment (Proposition 10) and the
   greedy clique cover (Theorem 15's heuristic). *)

module G = Minimize.Graph

let dag_of_edges edges i j = List.mem (i, j) edges

let sinks_basic () =
  (* 0 -> 1 -> 3, 2 -> 3: sinks = {3} *)
  let edge = dag_of_edges [ (0, 1); (1, 3); (2, 3); (0, 3) ] in
  Alcotest.(check (list int)) "sinks" [ 3 ] (G.dag_sinks ~n:4 ~edge);
  let a = G.dag_assignment ~n:4 ~edge in
  Alcotest.(check (list int)) "assignment" [ 3; 3; 3; 3 ]
    (Array.to_list a)

let sinks_multiple () =
  let edge = dag_of_edges [ (0, 1); (2, 3) ] in
  Alcotest.(check (list int)) "sinks" [ 1; 3; 4 ] (G.dag_sinks ~n:5 ~edge);
  let a = G.dag_assignment ~n:5 ~edge in
  Util.checki "0 -> 1" 1 a.(0);
  Util.checki "2 -> 3" 3 a.(2);
  Util.checki "4 -> itself" 4 a.(4)

let assignment_reaches_sink =
  Util.qtest ~count:200 "assignment always lands on a sink (random DAGs)"
    QCheck2.Gen.(
      let* n = int_range 1 12 in
      let* seed = int_bound 0xFFFF in
      return (n, seed))
    (fun (n, seed) ->
       let st = Random.State.make [| seed; n |] in
       (* random DAG: only edges i -> j with i < j *)
       let adj = Array.make_matrix n n false in
       for i = 0 to n - 1 do
         for j = i + 1 to n - 1 do
           adj.(i).(j) <- Random.State.int st 3 = 0
         done
       done;
       let edge i j = adj.(i).(j) in
       let sinks = G.dag_sinks ~n ~edge in
       let a = G.dag_assignment ~n ~edge in
       Array.for_all (fun s -> List.mem s sinks) a
       && List.for_all (fun s -> a.(s) = s) sinks)

let clique_cover_valid =
  Util.qtest ~count:200 "clique cover: partition into genuine cliques"
    QCheck2.Gen.(
      let* n = int_range 1 14 in
      let* seed = int_bound 0xFFFF in
      let* by_degree = bool in
      let* weighted = bool in
      return (n, seed, by_degree, weighted))
    (fun (n, seed, by_degree, weighted) ->
       let st = Random.State.make [| seed; n; 7 |] in
       let adj = Array.make_matrix n n false in
       for i = 0 to n - 1 do
         for j = i + 1 to n - 1 do
           let b = Random.State.int st 2 = 0 in
           adj.(i).(j) <- b;
           adj.(j).(i) <- b
         done
       done;
       let adjacent i j = adj.(i).(j) in
       let edge_weight =
         if weighted then Some (fun i j -> float_of_int ((i * 7 + j) mod 5))
         else None
       in
       let cliques =
         G.clique_cover ~n ~adjacent ~order_by_degree:by_degree ?edge_weight ()
       in
       let members = List.concat cliques in
       let covers_all =
         List.sort compare members = List.init n Fun.id
       in
       let all_cliques =
         List.for_all
           (fun clique ->
              List.for_all
                (fun i ->
                   List.for_all
                     (fun j -> i = j || adj.(i).(j))
                     clique)
                clique)
           cliques
       in
       covers_all && all_cliques)

let clique_cover_complete_graph () =
  let cliques =
    G.clique_cover ~n:6 ~adjacent:(fun i j -> i <> j) ()
  in
  Util.checki "complete graph = one clique" 1 (List.length cliques)

let clique_cover_empty_graph () =
  let cliques = G.clique_cover ~n:5 ~adjacent:(fun _ _ -> false) () in
  Util.checki "no edges = singletons" 5 (List.length cliques)

let degree_order_finds_big_clique () =
  (* The §3.3.2 motivating situation: vertex v in a 2-clique and a
     bigger clique; seeding by degree should recover the big clique. *)
  (* vertices 0..4 form K5; vertex 5 attaches only to 0. *)
  let adjacent i j =
    (i < 5 && j < 5 && i <> j) || (i = 5 && j = 0) || (i = 0 && j = 5)
  in
  let cliques = G.clique_cover ~n:6 ~adjacent ~order_by_degree:true () in
  let sizes = List.sort compare (List.map List.length cliques) in
  Alcotest.(check (list int)) "5-clique found" [ 1; 5 ] sizes

let zero_vertices () =
  Util.checki "empty" 0 (List.length (G.clique_cover ~n:0 ~adjacent:(fun _ _ -> true) ()));
  Alcotest.(check (list int)) "no sinks" [] (G.dag_sinks ~n:0 ~edge:(fun _ _ -> false))

let suite =
  [
    Alcotest.test_case "sinks basic" `Quick sinks_basic;
    Alcotest.test_case "multiple sinks" `Quick sinks_multiple;
    assignment_reaches_sink;
    clique_cover_valid;
    Alcotest.test_case "complete graph" `Quick clique_cover_complete_graph;
    Alcotest.test_case "empty graph" `Quick clique_cover_empty_graph;
    Alcotest.test_case "degree order finds the big clique" `Quick
      degree_order_finds_big_clique;
    Alcotest.test_case "zero vertices" `Quick zero_vertices;
  ]
