(* Symbolic encoding: BDD next-state/output functions agree with concrete
   simulation; transition relation; image computation strategies. *)

module N = Fsm.Netlist
module Sym = Fsm.Symbolic
module Img = Fsm.Image

let random_nl seed =
  Circuits.Random_fsm.make
    { Circuits.Random_fsm.latches = 4; inputs = 2; depth = 3; seed }

(* Drive the netlist [steps] cycles with pseudo-random inputs, checking at
   each step that the symbolic outputs and next state match the simulator. *)
let symbolic_matches_simulation =
  Util.qtest ~count:50 "symbolic functions = concrete simulation"
    QCheck2.Gen.(
      let* seed = int_bound 10000 in
      let* steps = int_range 1 8 in
      return (seed, steps))
    (fun (seed, steps) ->
       let nl = random_nl seed in
       let man = Bdd.create () in
       let sym = Sym.of_netlist man nl in
       let rng = Random.State.make [| seed; steps |] in
       let state = ref (N.sim_initial nl) in
       let ok = ref true in
       for _ = 1 to steps do
         let input_val =
           List.map (fun (n, _) -> (n, Random.State.bool rng)) (N.inputs nl)
         in
         let env name = List.assoc name input_val in
         (* Symbolic evaluation point: current state + inputs. *)
         let latch_bits =
           Array.of_list (List.map snd (N.sim_latch_values nl !state))
         in
         let assign v =
           (* state vars are interleaved with next vars; inputs after *)
           match
             List.find_opt (fun (_, iv) -> iv = v) sym.Sym.input_vars
           with
           | Some (n, _) -> env n
           | None ->
             let rec find j =
               if sym.Sym.state_vars.(j) = v then latch_bits.(j)
               else find (j + 1)
             in
             find 0
         in
         let outs, next = N.sim_step nl !state env in
         List.iter
           (fun (n, expected) ->
              let g = List.assoc n sym.Sym.output_fns in
              if Bdd.eval g assign <> expected then ok := false)
           outs;
         List.iteri
           (fun j (_, expected) ->
              if Bdd.eval sym.Sym.next_fns.(j) assign <> expected then
                ok := false)
           (N.sim_latch_values nl next);
         state := next
       done;
       !ok)

let init_is_initial_state () =
  let nl = Circuits.Counter.make ~width:4 () in
  let man = Bdd.create () in
  let sym = Sym.of_netlist man nl in
  Util.checkb "one state"
    (Bdd.sat_count man sym.Sym.init ~nvars:(Sym.num_state_vars sym) = 1.0);
  let zero_state = Sym.state_cube_of_ints sym (Array.make 4 false) in
  Util.checkb "counter starts at 0" (Bdd.equal sym.Sym.init zero_state)

let strategies_agree =
  Util.qtest ~count:40 "image strategies agree on random FSMs and state sets"
    QCheck2.Gen.(
      let* seed = int_bound 10000 in
      let* sseed = int_bound 10000 in
      return (seed, sseed))
    (fun (seed, sseed) ->
       let nl = random_nl seed in
       let man = Bdd.create () in
       let sym = Sym.of_netlist man nl in
       (* random non-empty state set over the state variables *)
       let st = Random.State.make [| sseed |] in
       let tt =
         Logic.Truth_table.create 4 (fun m -> m = 0 || Random.State.bool st)
       in
       let s =
         Bdd.rename man
           (Logic.Truth_table.to_bdd man tt)
           (List.init 4 (fun j -> (j, sym.Sym.state_vars.(j))))
       in
       let a = Img.image_monolithic sym s in
       let b = Img.image_partitioned sym s in
       let c = Img.image_by_range sym s in
       let d = Img.image_clustered sym s in
       (* a small bound forces several clusters; a huge one degenerates
          to the monolithic walk *)
       let e = Img.image_clustered ~cluster_bound:4 sym s in
       let f = Img.image_clustered ~cluster_bound:1_000_000 sym s in
       Bdd.equal a b && Bdd.equal b c && Bdd.equal c d && Bdd.equal d e
       && Bdd.equal e f)

let image_empty_and_total () =
  let nl = Circuits.Counter.make ~width:3 () in
  let man = Bdd.create () in
  let sym = Sym.of_netlist man nl in
  Util.checkb "image of empty is empty"
    (Bdd.is_zero (Img.image sym (Bdd.zero man)));
  (* successor of state 2 with enable free: {2, 3} *)
  let s2 = Sym.state_cube_of_ints sym [| false; true; false |] in
  let img = Img.image sym s2 in
  Util.checkb "2 stays or increments"
    (Bdd.equal img
       (Bdd.dor man s2 (Sym.state_cube_of_ints sym [| true; true; false |])))

let image_matches_simulation () =
  (* image of the initial state of the tlc contains exactly the concrete
     successors under both input values *)
  let nl = Circuits.Tlc.make () in
  let man = Bdd.create () in
  let sym = Sym.of_netlist man nl in
  let succ_states =
    List.map
      (fun car ->
         let _, next =
           N.sim_step nl (N.sim_initial nl) (fun _ -> car)
         in
         let bits =
           Array.of_list (List.map snd (N.sim_latch_values nl next))
         in
         Sym.state_cube_of_ints sym bits)
      [ false; true ]
  in
  let expected = Bdd.disj man succ_states in
  Util.checkb "tlc image" (Bdd.equal (Img.image sym sym.Sym.init) expected)

let preimage_duality =
  Util.qtest ~count:30 "s' in image(s) iff s intersects preimage(s')"
    QCheck2.Gen.(int_bound 10000)
    (fun seed ->
       let nl = random_nl seed in
       let man = Bdd.create () in
       let sym = Sym.of_netlist man nl in
       let img = Img.image sym sym.Sym.init in
       (* Every single successor state's preimage intersects init. *)
       let ok = ref true in
       Bdd.Cube.iter_cubes ~limit:8 man img (fun cube ->
           (* complete the cube to a full state *)
           let full =
             Array.init (Sym.num_state_vars sym) (fun j ->
                 match
                   List.assoc_opt sym.Sym.state_vars.(j) cube
                 with
                 | Some b -> b
                 | None -> false)
           in
           let state = Sym.state_cube_of_ints sym full in
           if Bdd.leq man state img then begin
             let pre = Img.preimage sym state in
             if Bdd.is_zero (Bdd.dand man pre sym.Sym.init) then ok := false
           end);
       !ok)


let orderings_agree =
  Util.qtest ~count:20 "variable orderings do not change semantics"
    QCheck2.Gen.(int_bound 10000)
    (fun seed ->
       let nl = random_nl seed in
       let count ordering =
         let man = Bdd.create () in
         let sym = Sym.of_netlist ~ordering man nl in
         let _, st = Fsm.Reach.reachable sym in
         st.Fsm.Reach.reached_states
       in
       let a = count Sym.Interleaved in
       a = count Sym.Topological && a = count Sym.Inputs_first)

let latch_rank_is_permutation =
  Util.qtest ~count:30 "latch_rank is a permutation"
    QCheck2.Gen.(int_bound 10000)
    (fun seed ->
       let nl = random_nl seed in
       List.for_all
         (fun ordering ->
            let rank = Sym.latch_rank nl ordering in
            List.sort compare (Array.to_list rank)
            = List.init (Array.length rank) Fun.id)
         [ Sym.Interleaved; Sym.Topological; Sym.Inputs_first ])

let suite =
  [
    symbolic_matches_simulation;
    Alcotest.test_case "initial state" `Quick init_is_initial_state;
    strategies_agree;
    Alcotest.test_case "image basics" `Quick image_empty_and_total;
    Alcotest.test_case "image = concrete successors (tlc)" `Quick
      image_matches_simulation;
    preimage_duality;
    orderings_agree;
    latch_rank_is_permutation;
  ]
