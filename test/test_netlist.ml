(* Netlists: builder integrity, word-level arithmetic against integer
   oracles, simulation. *)

module N = Fsm.Netlist

let word_width = 6
let mask = (1 lsl word_width) - 1

(* Build a purely combinational netlist computing a word function of two
   inputs, and check against an integer oracle via simulation. *)
let check_word_op name build oracle =
  Util.qtest ~count:150 name
    QCheck2.Gen.(
      let* a = int_bound mask in
      let* b = int_bound mask in
      return (a, b))
    (fun (a, b) ->
       let bld = N.create "t" in
       let ain =
         Array.init word_width (fun i -> N.input bld (Printf.sprintf "a%d" i))
       in
       let bin =
         Array.init word_width (fun i -> N.input bld (Printf.sprintf "b%d" i))
       in
       let result = build bld ain bin in
       Array.iteri
         (fun i s -> N.output bld (Printf.sprintf "r%d" i) s)
         result;
       let nl = N.finalize bld in
       let env name =
         let v = if name.[0] = 'a' then a else b in
         let idx = int_of_string (String.sub name 1 (String.length name - 1)) in
         (v lsr idx) land 1 = 1
       in
       let outs, _ = N.sim_step nl (N.sim_initial nl) env in
       let got =
         List.fold_left
           (fun acc (n, bit) ->
              if bit then
                acc
                lor (1 lsl int_of_string (String.sub n 1 (String.length n - 1)))
              else acc)
           0 outs
       in
       got = oracle a b)

let add = check_word_op "word_add = integer addition"
    (fun b x y -> fst (N.word_add b x y))
    (fun a b -> (a + b) land mask)

let inc = check_word_op "word_inc = +1"
    (fun b x _ -> fst (N.word_inc b x))
    (fun a _ -> (a + 1) land mask)

let band = check_word_op "word_and" N.word_and (fun a b -> a land b)
let bor = check_word_op "word_or" N.word_or (fun a b -> a lor b)
let bxor = check_word_op "word_xor" N.word_xor (fun a b -> a lxor b)

let bnot = check_word_op "word_not"
    (fun b x _ -> N.word_not b x)
    (fun a _ -> lnot a land mask)

let eq = check_word_op "word_eq"
    (fun b x y -> [| N.word_eq b x y |])
    (fun a b -> if a = b then 1 else 0)

let lt = check_word_op "word_lt (unsigned)"
    (fun b x y -> [| N.word_lt b x y |])
    (fun a b -> if a < b then 1 else 0)

let muxes = check_word_op "word_mux by a=0"
    (fun b x y ->
       let sel = N.word_eq b x (N.word_const b ~width:word_width 0) in
       N.word_mux b ~sel ~t1:y ~e0:x)
    (fun a b -> if a = 0 then b else a)

let carry_out () =
  let b = N.create "t" in
  let x = N.word_const b ~width:3 7 in
  let y = N.word_const b ~width:3 1 in
  let _, carry = N.word_add b x y in
  N.output b "c" carry;
  let nl = N.finalize b in
  let outs, _ = N.sim_step nl (N.sim_initial nl) (fun _ -> false) in
  Util.checkb "carry out of 7+1" (List.assoc "c" outs)

let dangling_latch () =
  let b = N.create "t" in
  let _q, _set = N.latch b ~name:"l" ~init:false () in
  Alcotest.check_raises "dangling"
    (Invalid_argument "Netlist.finalize: latch l has no next state")
    (fun () -> ignore (N.finalize b))

let double_set () =
  let b = N.create "t" in
  let q, set = N.latch b ~name:"l" ~init:false () in
  set q;
  Alcotest.check_raises "double set"
    (Invalid_argument "Netlist.latch: next already set for l")
    (fun () -> set q)

let duplicate_names () =
  let b = N.create "t" in
  let i1 = N.input b "x" in
  let _ = N.input b "x" in
  N.output b "o" i1;
  Alcotest.check_raises "dup input"
    (Invalid_argument "Netlist.finalize: duplicate input x")
    (fun () -> ignore (N.finalize b))

let latch_holds_state () =
  (* A latch fed by its own complement alternates. *)
  let b = N.create "t" in
  let q, set = N.latch b ~name:"l" ~init:false () in
  set (N.not_gate b q);
  N.output b "q" q;
  let nl = N.finalize b in
  let st = ref (N.sim_initial nl) in
  let seen = ref [] in
  for _ = 1 to 4 do
    let outs, st' = N.sim_step nl !st (fun _ -> false) in
    seen := List.assoc "q" outs :: !seen;
    st := st'
  done;
  Alcotest.(check (list bool)) "toggle" [ true; false; true; false ] !seen

let stats_inspection () =
  let nl = Circuits.Counter.make ~width:3 () in
  Util.checki "latches" 3 (N.num_latches nl);
  Util.checki "inputs" 1 (N.num_inputs nl);
  Util.checkb "stats mentions name" (Util.contains (N.stats nl) "counter3")

let suite =
  [
    add;
    inc;
    band;
    bor;
    bxor;
    bnot;
    eq;
    lt;
    muxes;
    Alcotest.test_case "carry out" `Quick carry_out;
    Alcotest.test_case "dangling latch rejected" `Quick dangling_latch;
    Alcotest.test_case "double next rejected" `Quick double_set;
    Alcotest.test_case "duplicate input rejected" `Quick duplicate_names;
    Alcotest.test_case "latch alternates" `Quick latch_holds_state;
    Alcotest.test_case "stats and inspection" `Quick stats_inspection;
  ]
