(* BDD -> netlist synthesis and the full don't-care resynthesis flow. *)

let man_for () = Bdd.create ()

let combinational_roundtrip =
  Util.qtest ~count:60 "signal_of_bdd computes the BDD's function"
    QCheck2.Gen.(
      let* n = int_range 1 5 in
      let* seed = int_bound 0xFFFFF in
      return (n, seed))
    (fun (n, seed) ->
       let man = man_for () in
       let st = Random.State.make [| seed; n |] in
       let tt = Logic.Truth_table.create n (fun _ -> Random.State.bool st) in
       let g = Logic.Truth_table.to_bdd man tt in
       let b = Fsm.Netlist.create "comb" in
       let ins =
         Array.init n (fun i -> Fsm.Netlist.input b (Printf.sprintf "x%d" i))
       in
       let s = Fsm.Synth.signal_of_bdd man b ~var_signal:(fun v -> ins.(v)) g in
       Fsm.Netlist.output b "o" s;
       let nl = Fsm.Netlist.finalize b in
       List.for_all
         (fun m ->
            let env name =
              let idx = int_of_string (String.sub name 1 (String.length name - 1)) in
              (m lsr idx) land 1 = 1
            in
            let outs, _ =
              Fsm.Netlist.sim_step nl (Fsm.Netlist.sim_initial nl) env
            in
            List.assoc "o" outs = Logic.Truth_table.get tt m)
         (List.init (1 lsl n) Fun.id))

let synth_equivalent =
  Util.qtest ~count:12 "netlist_of_symbolic is sequentially equivalent"
    QCheck2.Gen.(int_bound 2000)
    (fun seed ->
       let nl =
         Circuits.Random_fsm.make
           { Circuits.Random_fsm.latches = 4; inputs = 2; depth = 3; seed }
       in
       let man = man_for () in
       let sym = Fsm.Symbolic.of_netlist man nl in
       let nl2 = Fsm.Synth.netlist_of_symbolic sym in
       let man2 = man_for () in
       match Fsm.Equiv.check man2 nl nl2 with
       | Fsm.Equiv.Equivalent _ -> true
       | Fsm.Equiv.Not_equivalent _ -> false)

let resynthesize_equivalent =
  Util.qtest ~count:8 "resynthesize preserves sequential behaviour"
    QCheck2.Gen.(int_bound 2000)
    (fun seed ->
       let nl =
         Circuits.Random_fsm.make
           { Circuits.Random_fsm.latches = 5; inputs = 2; depth = 3; seed }
       in
       let man = man_for () in
       let nl2, _ = Fsm.Synth.resynthesize man nl in
       let man2 = man_for () in
       match Fsm.Equiv.check man2 nl nl2 with
       | Fsm.Equiv.Equivalent _ -> true
       | Fsm.Equiv.Not_equivalent _ -> false)

let resynthesize_shrinks_sparse_machines () =
  (* johnson8 has 16 of 256 states reachable: resynthesis against the
     reachable care set must not increase the symbolic representation *)
  let nl = Circuits.Johnson.make ~width:8 in
  let man = man_for () in
  let nl2, reached = Fsm.Synth.resynthesize man nl in
  Util.checkb "reached is 16 states"
    (Bdd.sat_count man reached ~nvars:8 = 16.0);
  let m1 = man_for () and m2 = man_for () in
  let s1 = Fsm.Symbolic.shared_node_count (Fsm.Symbolic.of_netlist m1 nl) in
  let s2 = Fsm.Symbolic.shared_node_count (Fsm.Symbolic.of_netlist m2 nl2) in
  Util.checkb "no growth in symbolic size" (s2 <= s1)

let resynthesized_blif_roundtrip () =
  let nl = Circuits.Counter.modulo ~width:4 ~modulus:10 in
  let man = man_for () in
  let nl2, _ = Fsm.Synth.resynthesize man nl in
  let text = Fsm.Blif.print nl2 in
  match Fsm.Blif.parse text with
  | Error e -> Alcotest.fail e
  | Ok nl3 ->
    let man2 = man_for () in
    (match Fsm.Equiv.check man2 nl nl3 with
     | Fsm.Equiv.Equivalent _ -> ()
     | Fsm.Equiv.Not_equivalent _ -> Alcotest.fail "flow broke the machine")

let suite =
  [
    combinational_roundtrip;
    synth_equivalent;
    resynthesize_equivalent;
    Alcotest.test_case "resynthesis shrinks sparse machines" `Quick
      resynthesize_shrinks_sparse_machines;
    Alcotest.test_case "optimize + BLIF round trip" `Quick
      resynthesized_blif_roundtrip;
  ]
