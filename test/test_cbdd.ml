(* Differential tests for the chain-reduced representation.

   A `Cbdd manager compresses OR-chains into single physical nodes but
   must stay observationally identical to a plain `Bdd manager: every
   kernel computes the same boolean function, [sat_count] the same
   density, ISOP the same cover, and {!Bdd.Metric.plain_equivalent} the
   same representation-independent size — that metric is what every
   minimization verdict is judged on.  Also covered here: the
   event-driven {!Bdd.Reorder.Policy} (armed by table growth, run only
   at the clean [check] boundary) and the {!Bdd.Reorder.remap_cube}
   contract for interned quantification cubes carried across a sift. *)

module Tt = Logic.Truth_table
module I = Minimize.Ispec
module Isop = Minimize.Isop

let plain () = Bdd.create ()
let chained () = Bdd.create ~repr:`Cbdd ()

(* Pointwise agreement over the whole [n]-cube.  [eval] needs no
   manager, so this compares edges living in different managers. *)
let agree n a b =
  List.for_all
    (fun m ->
       let assign v = (m lsr v) land 1 = 1 in
       Bdd.eval a assign = Bdd.eval b assign)
    (List.init (1 lsl n) Fun.id)

let random_tt st n p = Tt.create n (fun _ -> Random.State.int st 100 < p)

(* Every kernel, one random instance, both representations: identical
   functions, sat counts and plain-equivalent sizes. *)
let ops_differential =
  Util.qtest ~count:120 "every kernel agrees between `Bdd and `Cbdd"
    QCheck2.Gen.(
      let* n = int_range 1 6 in
      let* seed = int_bound 0xFFFFF in
      return (n, seed))
    (fun (n, seed) ->
       let st = Random.State.make [| seed; n; 0xcb |] in
       let tf = random_tt st n 50
       and tg = random_tt st n 50
       and th = random_tt st n 50 in
       let vars =
         List.filter (fun _ -> Random.State.bool st) (List.init n Fun.id)
       in
       let run man =
         let f = Tt.to_bdd man tf
         and g = Tt.to_bdd man tg
         and h = Tt.to_bdd man th in
         let rs =
           [ Bdd.dand man f g; Bdd.dor man f g; Bdd.xor man f g;
             Bdd.ite man f g h; Bdd.compl f; Bdd.exists man vars f;
             Bdd.and_exists man vars f g ]
         in
         (* restrict requires a nonzero care set *)
         (man, if Bdd.is_zero g then rs else rs @ [ Bdd.restrict man f g ])
       in
       let mp, rp = run (plain ()) in
       let mc, rc = run (chained ()) in
       List.for_all2
         (fun a b ->
            agree n a b
            && Bdd.sat_count mp a ~nvars:n = Bdd.sat_count mc b ~nvars:n
            && Bdd.Metric.plain_equivalent mp a
               = Bdd.Metric.plain_equivalent mc b)
         rp rc)

(* ISOP end to end: same cube list, same cover function, same verdict
   metric — the property the bench-level CBDD ablation gates on. *)
let isop_differential =
  Util.qtest ~count:80 "ISOP covers and verdicts agree between reprs"
    QCheck2.Gen.(
      let* n = int_range 2 6 in
      let* seed = int_bound 0xFFFFF in
      return (n, seed))
    (fun (n, seed) ->
       let st = Random.State.make [| seed; n; 0x150b |] in
       let tf = random_tt st n 50 and tc = random_tt st n 75 in
       let run man =
         let s = I.make ~f:(Tt.to_bdd man tf) ~c:(Tt.to_bdd man tc) in
         (man, s, Isop.compute man s)
       in
       let mp, sp, rp = run (plain ()) in
       if Bdd.is_zero sp.I.c then true (* empty care set: nothing to do *)
       else begin
         let mc, _, rc = run (chained ()) in
         rp.Isop.cubes = rc.Isop.cubes
         && agree n rp.Isop.cover rc.Isop.cover
         && Bdd.Metric.plain_equivalent mp rp.Isop.cover
            = Bdd.Metric.plain_equivalent mc rc.Isop.cover
       end)

(* Chains must actually pay: a long disjunction is the worst case for a
   plain BDD (one node per variable) and a single chain node here. *)
let chains_compress () =
  let k = 24 in
  let mc = chained () and mp = plain () in
  let chain = Bdd.disj mc (List.init k (fun i -> Bdd.ithvar mc i)) in
  let flat = Bdd.disj mp (List.init k (fun i -> Bdd.ithvar mp i)) in
  Util.checkb "physical nodes < plain equivalent"
    (Bdd.Metric.nodes mc chain < Bdd.Metric.plain_equivalent mc chain);
  Util.checkb "chain nodes present" (Bdd.Metric.chain_nodes mc chain > 0);
  Util.checki "plain equivalent matches an actual plain manager"
    (Bdd.size mp flat)
    (Bdd.Metric.plain_equivalent mc chain);
  (* complement edges: the negated chain (a cube of negative literals)
     compresses identically *)
  Util.checki "complement compresses identically"
    (Bdd.Metric.nodes mc chain)
    (Bdd.Metric.nodes mc (Bdd.compl chain));
  (* on a plain manager all metrics collapse onto [size] *)
  Util.checki "plain manager: nodes = size" (Bdd.size mp flat)
    (Bdd.Metric.nodes mp flat);
  Util.checki "plain manager: plain_equivalent = size" (Bdd.size mp flat)
    (Bdd.Metric.plain_equivalent mp flat);
  Util.checki "plain manager: no chain nodes" 0 (Bdd.Metric.chain_nodes mp flat);
  (* shared variants agree with the single-root ones on one root *)
  Util.checki "shared_plain_equivalent"
    (Bdd.Metric.plain_equivalent mc chain)
    (Bdd.Metric.shared_plain_equivalent mc [ chain ])

(* The On_growth policy: a doubling unique table arms the pending flag
   (from inside interning — listeners must not sift there), and the
   sift runs only when [check] is called at a clean boundary.  The
   rebuilt manager inherits representation and policy, with one pass
   spent. *)
let on_growth_policy repr () =
  let policy = Bdd.Reorder.Policy.On_growth { factor = 2; max_passes = 1 } in
  let man = Bdd.create ~repr ~reorder_policy:policy () in
  Util.checkb "installed" (Bdd.Reorder.Policy.installed man = policy);
  Util.checkb "not pending on creation"
    (not (Bdd.Reorder.Policy.pending man));
  Util.checkb "check before any growth is a no-op"
    (Bdd.Reorder.Policy.check man [] = None);
  (* a dense random 16-var function interns enough nodes to double the
     4096-entry initial table twice, crossing the 2x growth factor *)
  let n = 16 in
  let st = Random.State.make [| 0xcb; 0xdd; n |] in
  let tt = random_tt st n 50 in
  let f = Tt.to_bdd man tt in
  Util.checkb "table growth armed the policy"
    (Bdd.Reorder.Policy.pending man);
  match Bdd.Reorder.Policy.check ~max_rounds:1 man [ f ] with
  | None -> Alcotest.fail "armed policy did not sift"
  | Some (placement, target, rebuilt) ->
    let g = match rebuilt with [ g ] -> g | _ -> Alcotest.fail "arity" in
    Util.checkb "representation inherited" (Bdd.repr target = repr);
    Util.checkb "policy survives the rebuild"
      (Bdd.Reorder.Policy.installed target = policy);
    Util.checkb "pending consumed" (not (Bdd.Reorder.Policy.pending man));
    Util.checkb "sift never worse" (Bdd.size target g <= Bdd.size man f);
    (* the pass allowance is spent: a second growth cannot re-arm *)
    Util.checkb "allowance spent"
      (Bdd.Reorder.Policy.check target [ g ] = None);
    (* semantics preserved modulo the placement, spot-checked; invert
       the placement on the support only (non-support variables all
       collapse onto level 0) *)
    let inverse = Array.make (Array.length placement) (-1) in
    List.iter (fun v -> inverse.(placement.(v)) <- v) (Bdd.support man f);
    for _ = 1 to 200 do
      let m = Random.State.int st (1 lsl n) in
      let assign v = (m lsr v) land 1 = 1 in
      Util.checkb "rebuilt function agrees"
        (Bdd.eval g (fun level ->
             inverse.(level) >= 0 && assign inverse.(level))
         = Tt.get tt m)
    done

(* Regression for the sift/cube interaction: an interned quantification
   cube is a variable-NAME set in the source manager; carrying it across
   a sift without [remap_cube] quantifies the wrong variables.  The
   remapped, re-interned cube must reproduce the pre-sift quantification
   modulo the placement. *)
let remap_cube_after_sift =
  Util.qtest ~count:60 "cubes survive sift_apply via remap_cube"
    QCheck2.Gen.(
      let* n = int_range 2 6 in
      let* seed = int_bound 0xFFFFF in
      let* chain = bool in
      return (n, seed, chain))
    (fun (n, seed, chain) ->
       let man = if chain then chained () else plain () in
       let st = Random.State.make [| seed; n; 0x5f |] in
       let f = Tt.to_bdd man (random_tt st n 50) in
       (* quantify only over the support: sifting permutes support
          levels, so remap_cube is only defined there *)
       let support = Bdd.support man f in
       let vars = List.filter (fun _ -> Random.State.bool st) support in
       let before = Bdd.exists man vars f in
       let placement, target, rebuilt = Bdd.Reorder.sift_apply man [ f ] in
       let f' = List.hd rebuilt in
       let vars' = Bdd.Reorder.remap_cube ~placement vars in
       (* re-interning under the new names must be accepted *)
       let _ = Bdd.cube_id target vars' in
       let after = Bdd.exists target vars' f' in
       (* the placement is only meaningful on the support (non-support
          variables all collapse onto level 0), so invert it there *)
       let inverse = Array.make (Array.length placement) (-1) in
       List.iter (fun v -> inverse.(placement.(v)) <- v) support;
       List.for_all
         (fun m ->
            let assign v = (m lsr v) land 1 = 1 in
            Bdd.eval after (fun level ->
                inverse.(level) >= 0 && assign inverse.(level))
            = Bdd.eval before assign)
         (List.init (1 lsl n) Fun.id))

let remap_cube_rejects_out_of_range () =
  Util.checkb "out-of-placement variable rejected"
    (match Bdd.Reorder.remap_cube ~placement:[| 1; 0 |] [ 2 ] with
     | exception Invalid_argument _ -> true
     | _ -> false)

let suite =
  [
    ops_differential;
    isop_differential;
    Alcotest.test_case "chains compress" `Quick chains_compress;
    Alcotest.test_case "On_growth policy (plain)" `Quick
      (on_growth_policy `Bdd);
    Alcotest.test_case "On_growth policy (cbdd)" `Quick
      (on_growth_policy `Cbdd);
    remap_cube_after_sift;
    Alcotest.test_case "remap_cube rejects out-of-range" `Quick
      remap_cube_rejects_out_of_range;
  ]
