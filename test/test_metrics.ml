(* The observability primitives behind the serve daemon's telemetry:
   the typed metrics registry (semantics, label handling, Prometheus
   text exposition checked by a hand-rolled format validator) and the
   lock-striped flight recorder (the last-[capacity] invariant, alone
   and under concurrent writer domains). *)

module M = Obs.Metrics
module F = Obs.Flight

(* Every registration below happens against a clean registry so reruns
   and ordering cannot collide with the serve tests' families. *)
let fresh () = M.reset ()

(* ----- registry semantics ----- *)

let counter_semantics () =
  fresh ();
  let c = M.handle (M.counter ~help:"test counter" "tm_total") in
  Util.checki "starts at zero" 0 (M.counter_value c);
  M.inc c;
  M.add c 41;
  Util.checki "inc and add accumulate" 42 (M.counter_value c);
  Util.checkb "negative add raises"
    (match M.add c (-1) with
     | () -> false
     | exception Invalid_argument _ -> true)

let gauge_semantics () =
  fresh ();
  let g = M.handle (M.gauge "tm_gauge") in
  M.set g 7;
  M.gauge_add g (-10);
  Util.checki "gauges go down" (-3) (M.gauge_value g)

let histogram_semantics () =
  fresh ();
  let h = M.handle (M.histogram "tm_hist_us") in
  List.iter (M.observe h) [ 0; 1; 2; 3; 500; -5 ];
  match M.snapshot () with
  | [ { M.name = "tm_hist_us"; kind = M.Histogram;
        series = [ { M.value = M.Histogram_v { buckets; sum; count }; _ } ];
        _ } ] ->
    Util.checki "count" 6 count;
    Util.checki "negatives clamp to zero in the sum" 506 sum;
    (* log2 buckets: 0,1,-5 -> bucket 0 (<=1); 2,3 -> bucket 1; 500 ->
       bucket 8 ([256,512)) *)
    Util.checki "bucket 0" 3 buckets.(0);
    Util.checki "bucket 1" 2 buckets.(1);
    Util.checki "bucket 8" 1 buckets.(8);
    Util.checki "buckets account for every observation" count
      (Array.fold_left ( + ) 0 buckets)
  | _ -> Alcotest.fail "unexpected snapshot shape"

let registration_rules () =
  fresh ();
  let a = M.counter ~help:"h" ~labels:[ "op" ] "tm_reg_total" in
  let b = M.counter ~help:"h" ~labels:[ "op" ] "tm_reg_total" in
  M.inc (M.labels a [ "x" ]);
  M.inc (M.labels b [ "x" ]);
  Util.checki "re-registration is idempotent (same family)" 2
    (M.counter_value (M.labels a [ "x" ]));
  Util.checkb "kind conflict raises"
    (match M.gauge "tm_reg_total" with
     | _ -> false
     | exception Invalid_argument _ -> true);
  Util.checkb "label-set conflict raises"
    (match M.counter ~help:"h" ~labels:[ "other" ] "tm_reg_total" with
     | _ -> false
     | exception Invalid_argument _ -> true);
  Util.checkb "label arity mismatch raises"
    (match M.labels a [ "x"; "y" ] with
     | _ -> false
     | exception Invalid_argument _ -> true);
  Util.checkb "bad metric name raises"
    (match M.counter "0bad-name" with
     | _ -> false
     | exception Invalid_argument _ -> true)

let label_series_independent () =
  fresh ();
  let fam = M.counter ~labels:[ "op"; "status" ] "tm_lab_total" in
  M.inc (M.labels fam [ "a"; "ok" ]);
  M.inc (M.labels fam [ "a"; "ok" ]);
  M.inc (M.labels fam [ "b"; "err" ]);
  Util.checki "series are independent" 2
    (M.counter_value (M.labels fam [ "a"; "ok" ]));
  Util.checki "other series untouched" 1
    (M.counter_value (M.labels fam [ "b"; "err" ]))

(* ----- Prometheus text exposition: a hand-rolled format checker -----

   Validates the whole of [expose ()] structurally: every non-comment
   line is [name{labels} value] with a legal metric name; every sample
   belongs to the family declared by the preceding # TYPE (histogram
   samples via the _bucket/_sum/_count suffixes); histogram buckets are
   cumulative with a trailing le="+Inf" equal to _count. *)

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'

let is_name_char c = is_name_start c || (c >= '0' && c <= '9')

let split_sample line =
  (* "name value" or "name{labels} value" -> (name, labels, value) *)
  let n = String.length line in
  let rec name_end i =
    if i < n && is_name_char line.[i] then name_end (i + 1) else i
  in
  let stop = name_end 0 in
  if stop = 0 then Alcotest.failf "sample line with no name: %s" line;
  let name = String.sub line 0 stop in
  if stop < n && line.[stop] = '{' then begin
    match String.index_from_opt line stop '}' with
    | None -> Alcotest.failf "unterminated label set: %s" line
    | Some close ->
      let labels = String.sub line (stop + 1) (close - stop - 1) in
      if close + 1 >= n || line.[close + 1] <> ' ' then
        Alcotest.failf "no value after labels: %s" line;
      (name, labels, String.sub line (close + 2) (n - close - 2))
  end
  else begin
    if stop >= n || line.[stop] <> ' ' then
      Alcotest.failf "no value on sample line: %s" line;
    (name, "", String.sub line (stop + 1) (n - stop - 1))
  end

let base_of_sample name =
  List.fold_left
    (fun acc suffix ->
       match acc with
       | Some _ -> acc
       | None ->
         let ls = String.length suffix and ln = String.length name in
         if ln > ls && String.sub name (ln - ls) ls = suffix then
           Some (String.sub name 0 (ln - ls))
         else None)
    None [ "_bucket"; "_sum"; "_count" ]

let strip_le labels =
  (* drop the le="…" pair (with its separating comma) so bucket samples
     of one series share a key *)
  let n = String.length labels in
  let rec find i =
    if i + 4 > n then None
    else if String.sub labels i 4 = "le=\"" then Some i
    else find (i + 1)
  in
  match find 0 with
  | None -> labels
  | Some start ->
    let stop =
      match String.index_from_opt labels (start + 4) '"' with
      | Some close -> close + 1
      | None -> n
    in
    let start = if start > 0 && labels.[start - 1] = ',' then start - 1
      else start in
    let stop = if stop < n && labels.[stop] = ',' then stop + 1 else stop in
    String.sub labels 0 start ^ String.sub labels stop (n - stop)

let label_value labels key =
  (* minimal extraction of key="value" from a rendered label set *)
  let marker = key ^ "=\"" in
  let ml = String.length marker and n = String.length labels in
  let rec find i =
    if i + ml > n then None
    else if String.sub labels i ml = marker then begin
      match String.index_from_opt labels (i + ml) '"' with
      | Some close -> Some (String.sub labels (i + ml) (close - i - ml))
      | None -> None
    end
    else find (i + 1)
  in
  find 0

let check_exposition text =
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' text)
  in
  let declared = Hashtbl.create 8 in
  (* (family, non-le labels) -> cumulative bucket values in order *)
  let buckets = Hashtbl.create 8 in
  let counts = Hashtbl.create 8 in
  List.iter
    (fun line ->
       if String.length line > 0 && line.[0] = '#' then begin
         match String.split_on_char ' ' line with
         | "#" :: "TYPE" :: name :: [ kind ] ->
           Util.checkb ("legal kind in " ^ line)
             (List.mem kind [ "counter"; "gauge"; "histogram" ]);
           Hashtbl.replace declared name kind
         | "#" :: "HELP" :: name :: _ ->
           Util.checkb ("HELP names a legal metric: " ^ line)
             (String.length name > 0 && is_name_start name.[0])
         | _ -> Alcotest.failf "malformed comment line: %s" line
       end
       else begin
         let name, labels, value = split_sample line in
         Util.checkb ("numeric value on " ^ line)
           (float_of_string_opt value <> None);
         let family, kind =
           match Hashtbl.find_opt declared name with
           | Some kind -> (name, kind)
           | None -> begin
               match base_of_sample name with
               | Some base when Hashtbl.mem declared base ->
                 (base, Hashtbl.find declared base)
               | _ -> Alcotest.failf "sample before its # TYPE: %s" line
             end
         in
         if kind = "histogram" then begin
           Util.checkb ("histogram sample uses a suffix: " ^ line)
             (base_of_sample name <> None);
           let suffix =
             String.sub name (String.length family)
               (String.length name - String.length family)
           in
           match suffix with
           | "_bucket" ->
             let le =
               match label_value labels "le" with
               | Some le -> le
               | None -> Alcotest.failf "bucket without le: %s" line
             in
             let key = (family, strip_le labels) in
             let v = int_of_float (float_of_string value) in
             let prior =
               Option.value (Hashtbl.find_opt buckets key) ~default:[]
             in
             (match prior with
              | (_, last) :: _ ->
                Util.checkb ("buckets cumulative at " ^ line) (v >= last)
              | [] -> ());
             Hashtbl.replace buckets key ((le, v) :: prior)
           | "_count" ->
             Hashtbl.replace counts family
               (int_of_float (float_of_string value))
           | _ -> ()
         end
       end)
    lines;
  (* every bucket series ends at +Inf, agreeing with _count *)
  Hashtbl.iter
    (fun (family, _) series ->
       match series with
       | (le, v) :: _ ->
         Util.checkb (family ^ " last bucket is +Inf") (le = "+Inf");
         (match Hashtbl.find_opt counts family with
          | Some c -> Util.checki (family ^ " +Inf equals count") c v
          | None -> Alcotest.failf "%s has buckets but no _count" family)
       | [] -> ())
    buckets

let exposition_format () =
  fresh ();
  let c = M.counter ~help:"requests with \"quotes\" and \\ stuff"
      ~labels:[ "op" ] "tm_exp_total" in
  M.inc (M.labels c [ "min\"i\\mize\n" ]);
  M.add (M.labels c [ "reach" ]) 3;
  let g = M.handle (M.gauge ~help:"a level" "tm_exp_gauge") in
  M.set g (-4);
  let h = M.labels (M.histogram ~labels:[ "phase" ] "tm_exp_us") [ "exec" ] in
  List.iter (M.observe h) [ 1; 2; 900; 40_000 ];
  let text = M.expose () in
  check_exposition text;
  Util.checkb "counter sample rendered"
    (Util.contains text "tm_exp_total{op=\"reach\"} 3");
  Util.checkb "label value escaped"
    (Util.contains text "tm_exp_total{op=\"min\\\"i\\\\mize\\n\"} 1");
  Util.checkb "gauge sample rendered"
    (Util.contains text "tm_exp_gauge -4");
  Util.checkb "histogram exposes count"
    (Util.contains text "tm_exp_us_count{phase=\"exec\"} 4");
  Util.checkb "histogram exposes sum"
    (Util.contains text "tm_exp_us_sum{phase=\"exec\"} 40903")

let exposition_fuzz =
  (* arbitrary registries must always render to a structurally valid
     exposition *)
  Util.qtest ~count:50 "expose() is always well-formed"
    QCheck2.Gen.(
      list_size (int_range 1 5)
        (triple (int_range 0 2) (int_range 0 4)
           (list_size (int_range 0 4) (int_bound 100_000))))
    (fun fams ->
       fresh ();
       List.iteri
         (fun i (kind, series, observations) ->
            let name = Printf.sprintf "tm_fuzz_%d" i in
            match kind with
            | 0 ->
              let fam = M.counter ~labels:[ "k" ] name in
              List.iter
                (fun v -> M.add (M.labels fam [ string_of_int series ]) v)
                observations
            | 1 ->
              let fam = M.gauge ~labels:[ "k" ] name in
              List.iter
                (fun v -> M.set (M.labels fam [ string_of_int series ]) v)
                observations
            | _ ->
              let fam = M.histogram ~labels:[ "k" ] name in
              List.iter
                (fun v -> M.observe (M.labels fam [ string_of_int series ]) v)
                observations)
         fams;
       check_exposition (M.expose ());
       true)

(* ----- flight recorder ----- *)

let flight_last_capacity () =
  let t = F.create ~stripes:4 ~capacity:32 () in
  Util.checki "effective capacity" 32 (F.capacity t);
  for i = 0 to 99 do
    F.record t ~id:i ~op:"op" ~outcome:"ok" ()
  done;
  Util.checki "written" 100 (F.written t);
  Util.checki "dropped" 68 (F.dropped t);
  let records = F.records t in
  Util.checki "retains exactly capacity" 32 (List.length records);
  List.iteri
    (fun i (r : F.record) ->
       Util.checki "exactly the most recent seqs, in order" (68 + i) r.F.seq)
    records

let flight_concurrent_writers () =
  (* the union-of-stripes invariant must survive concurrent domains:
     after any interleaving, the ring holds exactly the last
     [capacity] sequence numbers *)
  let t = F.create ~stripes:4 ~capacity:16 () in
  let per_domain = 200 and domains = 4 in
  let writer k () =
    for i = 0 to per_domain - 1 do
      F.record t
        ~trace_id:(Printf.sprintf "d%d" k)
        ~sizes:[ ("i", i) ]
        ~phases_us:[ ("exec", i) ]
        ~id:((k * per_domain) + i)
        ~op:"op" ~outcome:"ok" ()
    done
  in
  let ds = List.init domains (fun k -> Domain.spawn (writer k)) in
  List.iter Domain.join ds;
  let total = domains * per_domain in
  Util.checki "all writes counted" total (F.written t);
  Util.checki "drops are total minus capacity" (total - 16) (F.dropped t);
  let records = F.records t in
  Util.checki "exactly capacity retained" 16 (List.length records);
  let seqs = List.map (fun (r : F.record) -> r.F.seq) records in
  Util.checkb "the last capacity seqs exactly"
    (seqs = List.init 16 (fun i -> total - 16 + i))

let flight_qcheck =
  Util.qtest ~count:30 "flight ring retains the last capacity records"
    QCheck2.Gen.(triple (int_range 1 5) (int_range 1 40) (int_range 0 120))
    (fun (stripes, capacity, writes) ->
       let t = F.create ~stripes ~capacity () in
       for i = 0 to writes - 1 do
         F.record t ~id:i ~op:"op" ~outcome:"ok" ()
       done;
       let cap = F.capacity t in
       let expected = min writes cap in
       let records = F.records t in
       List.length records = expected
       && F.written t = writes
       && F.dropped t = max 0 (writes - cap)
       && List.map (fun (r : F.record) -> r.F.seq) records
          = List.init expected (fun i -> writes - expected + i))

let flight_json_parses () =
  let t = F.create ~capacity:8 () in
  F.record t ~trace_id:"a \"quoted\" id" ~sizes:[ ("req_bytes", 10) ]
    ~phases_us:[ ("queue", 1); ("exec", 2) ]
    ~id:1 ~op:"minimize" ~outcome:"ok" ();
  F.record t ~id:2 ~op:"ping" ~outcome:"error" ();
  match Serve.Json.parse (F.to_json t) with
  | Error msg -> Alcotest.failf "flight JSON does not parse: %s" msg
  | Ok doc ->
    Util.checkb "written field"
      (Serve.Json.int_field "written" doc = Some 2);
    (match Serve.Json.mem "records" doc with
     | Some (Serve.Json.Arr [ r1; r2 ]) ->
       Util.checkb "escaped trace id survives"
         (Serve.Json.string_field "trace_id" r1 = Some "a \"quoted\" id");
       Util.checkb "outcome preserved"
         (Serve.Json.string_field "outcome" r2 = Some "error");
       (match Serve.Json.mem "phases_us" r1 with
        | Some phases ->
          Util.checkb "phases rendered"
            (Serve.Json.int_field "exec" phases = Some 2)
        | None -> Alcotest.fail "phases missing")
     | _ -> Alcotest.fail "records array missing");
    (* clear resets everything *)
    F.clear t;
    Util.checki "cleared" 0 (F.written t);
    Util.checkb "no records after clear" (F.records t = [])

let trace_total_dropped () =
  (* a tiny memory ring overflows; the process-wide drop aggregate and
     the per-sink count must both see it *)
  let before = Obs.Trace.total_dropped () in
  let sink = Obs.Trace.memory ~capacity:4 () in
  Obs.Trace.with_sink sink (fun () ->
      for _ = 1 to 50 do
        Obs.Trace.instant "tick"
      done);
  Util.checkb "sink counted drops" (Obs.Trace.dropped sink > 0);
  Util.checkb "process-wide aggregate grew"
    (Obs.Trace.total_dropped () >= before + Obs.Trace.dropped sink)

let suite =
  [
    Alcotest.test_case "counter semantics" `Quick counter_semantics;
    Alcotest.test_case "gauge semantics" `Quick gauge_semantics;
    Alcotest.test_case "histogram semantics" `Quick histogram_semantics;
    Alcotest.test_case "registration rules" `Quick registration_rules;
    Alcotest.test_case "label series independent" `Quick
      label_series_independent;
    Alcotest.test_case "prometheus exposition format" `Quick exposition_format;
    exposition_fuzz;
    Alcotest.test_case "flight ring last-capacity" `Quick flight_last_capacity;
    Alcotest.test_case "flight ring concurrent writers" `Quick
      flight_concurrent_writers;
    flight_qcheck;
    Alcotest.test_case "flight json parses" `Quick flight_json_parses;
    Alcotest.test_case "trace drop aggregate" `Quick trace_total_dropped;
  ]
