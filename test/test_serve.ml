(* The serve daemon end to end: protocol codec fuzzing, an in-process
   server driven over a unix socket (submit / budget-DNF / deadline-DNF
   with a concurrent healthy request / metrics / shutdown), and
   concurrent clients. *)

module J = Serve.Json
module P = Serve.Protocol
module C = Serve.Client

(* ----- JSON codec ----- *)

let json_roundtrip () =
  let cases =
    [
      J.Null;
      J.Bool true;
      J.int 42;
      J.Num (-0.5);
      J.Str "a \"quoted\"\nline\twith \\ stuff";
      J.Arr [ J.int 1; J.Str "x"; J.Null ];
      J.Obj [ ("a", J.int 1); ("b", J.Arr [ J.Bool false ]) ];
      J.Obj [];
    ]
  in
  List.iter
    (fun j ->
       match J.parse (J.print j) with
       | Ok j' -> Util.checkb "round trips" (j = j')
       | Error msg -> Alcotest.failf "printed JSON failed to parse: %s" msg)
    cases

let json_fuzz_never_raises =
  Util.qtest ~count:500 "Json.parse never raises"
    QCheck2.Gen.(string_size ~gen:(char_range '\000' '\255') (int_bound 80))
    (fun s -> match J.parse s with Ok _ | Error _ -> true)

let json_rejects () =
  List.iter
    (fun s -> Util.checkb s (Result.is_error (J.parse s)))
    [ ""; "{"; "[1,"; "{\"a\":}"; "tru"; "1.2.3"; "\"unterminated";
      "{\"a\":1,}"; "[1 2]"; "nan"; "01x"; "\"bad \\q escape\"" ]

(* ----- protocol codec ----- *)

let protocol_fuzz_never_raises =
  Util.qtest ~count:500 "parse_request never raises"
    QCheck2.Gen.(string_size ~gen:(char_range '\000' '\255') (int_bound 120))
    (fun s -> match P.parse_request s with Ok _ | Error _ -> true)

let protocol_parse () =
  (match P.parse_request {|{"id": 3, "op": "ping"}|} with
   | Ok { P.id = 3; op = P.Ping; _ } -> ()
   | _ -> Alcotest.fail "ping request");
  (match
     P.parse_request
       {|{"id": 1, "op": "minimize", "bdd": "bdd 1\nroot f 0\n",
          "budget": {"max_steps": 10, "timeout_ms": 1000}}|}
   with
   | Ok { P.op = P.Minimize { heuristic = "sched"; _ };
          budget = { max_steps = Some 10; deadline_ns = Some _; _ }; _ } -> ()
   | _ -> Alcotest.fail "minimize request with budget");
  List.iter
    (fun payload ->
       Util.checkb payload (Result.is_error (P.parse_request payload)))
    [
      {|{"op": "warp"}|};
      {|{"id": 1}|};
      {|{"op": "minimize"}|};
      {|{"op": "reach"}|};
      {|{"op": "reach", "bench": "tlc", "blif": "x"}|};
      {|{"op": "minimize", "bdd": "x", "budget": {"max_steps": 0}}|};
      {|{"op": "minimize", "bdd": "x", "budget": 3}|};
      "not json at all";
    ]

(* ----- in-process server ----- *)

let with_server ?(workers = 2) f =
  let path = Filename.temp_file "bddmin-test" ".sock" in
  Sys.remove path;
  let srv = Serve.Server.start ~workers (Serve.Server.Unix_path path) in
  Fun.protect
    ~finally:(fun () -> Serve.Server.stop srv)
    (fun () -> f srv (C.Unix_path path))

let payload = Serve.Loadgen.build_payload ~nvars:10 ~seed:42

(* a payload heavy enough that tiny budgets trip mid-minimization *)
let heavy_payload = Serve.Loadgen.build_payload ~nvars:14 ~seed:7

let expect_ok what = function
  | Ok { P.status = "ok"; result; _ } -> result
  | Ok r -> Alcotest.failf "%s: status %s (%s)" what r.P.status
              (Option.value ~default:"" r.P.message)
  | Error msg -> Alcotest.failf "%s: transport error %s" what msg

let serve_minimize_ok () =
  with_server @@ fun _srv addr ->
  let c = C.connect addr in
  Fun.protect ~finally:(fun () -> C.close c) @@ fun () ->
  (match C.ping c with
   | Ok { P.status = "ok"; _ } -> ()
   | _ -> Alcotest.fail "ping");
  let result = expect_ok "minimize" (C.minimize c (P.Store_text payload)) in
  let size = Option.get (J.int_field "size" result) in
  Util.checkb "positive cover size" (size > 0);
  (* the returned cover must actually cover the instance *)
  let cover_text = Option.get (J.string_field "cover" result) in
  let man = Bdd.new_man () in
  (match Bdd.Store.load man payload, Bdd.Store.load man cover_text with
   | Ok roots, Ok [ ("g", g) ] ->
     let f = List.assoc "f" roots and cc = List.assoc "c" roots in
     Util.checkb "is a cover"
       (Minimize.Ispec.is_cover man (Minimize.Ispec.make ~f ~c:cc) g)
   | _ -> Alcotest.fail "cover text failed to load")

let serve_pla_and_best () =
  with_server @@ fun _srv addr ->
  let c = C.connect addr in
  Fun.protect ~finally:(fun () -> C.close c) @@ fun () ->
  let pla = ".i 3\n.o 1\n.type fd\n110 1\n10- -\n001 1\n.e\n" in
  let result =
    expect_ok "pla minimize" (C.minimize c ~heuristic:"best" (P.Pla_text pla))
  in
  Util.checkb "best reports the winning heuristic"
    (J.string_field "heuristic" result <> None)

let serve_budget_dnf () =
  with_server @@ fun _srv addr ->
  let c = C.connect addr in
  Fun.protect ~finally:(fun () -> C.close c) @@ fun () ->
  (* restr is a pure kernel op that does not trap Budget_exhausted
     (unlike the anytime sched), so a tiny step budget surfaces as a
     structured dnf reply *)
  match
    C.minimize c ~heuristic:"restr" ~max_steps:2 (P.Store_text heavy_payload)
  with
  | Ok { P.status = "dnf"; reason = Some "steps"; _ } -> ()
  | Ok r -> Alcotest.failf "expected dnf/steps, got %s/%s" r.P.status
              (Option.value ~default:"-" r.P.reason)
  | Error msg -> Alcotest.failf "transport error %s" msg

let serve_deadline_dnf_isolated () =
  (* an expired deadline yields dnf(time) while a concurrent healthy
     request on another connection completes untouched *)
  with_server ~workers:2 @@ fun _srv addr ->
  let healthy =
    Domain.spawn (fun () ->
        let c = C.connect addr in
        Fun.protect ~finally:(fun () -> C.close c) @@ fun () ->
        C.minimize c (P.Store_text payload))
  in
  let c = C.connect addr in
  Fun.protect ~finally:(fun () -> C.close c) @@ fun () ->
  (match C.minimize c ~timeout_ms:0 (P.Store_text heavy_payload) with
   | Ok { P.status = "dnf"; reason = Some "time"; _ } -> ()
   | Ok r -> Alcotest.failf "expected dnf/time, got %s/%s" r.P.status
               (Option.value ~default:"-" r.P.reason)
   | Error msg -> Alcotest.failf "transport error %s" msg);
  ignore (expect_ok "concurrent healthy request" (Domain.join healthy))

let serve_error_replies () =
  with_server @@ fun _srv addr ->
  let c = C.connect addr in
  Fun.protect ~finally:(fun () -> C.close c) @@ fun () ->
  (match C.minimize c ~heuristic:"nope" (P.Store_text payload) with
   | Ok { P.status = "error"; message = Some m; _ } ->
     Util.checkb "lists known heuristics" (Util.contains m "sched")
   | _ -> Alcotest.fail "unknown heuristic must be an error reply");
  (match C.minimize c (P.Store_text "bdd 1\nroot g 0\n") with
   | Ok { P.status = "error"; message = Some m; _ } ->
     Util.checkb "explains the missing root" (Util.contains m "f")
   | _ -> Alcotest.fail "payload without f root must be an error reply");
  (match C.reach c (P.Bench "no-such-bench") with
   | Ok { P.status = "error"; _ } -> ()
   | _ -> Alcotest.fail "unknown bench must be an error reply");
  (* the connection survives malformed requests *)
  match C.ping c with
  | Ok { P.status = "ok"; _ } -> ()
  | _ -> Alcotest.fail "connection unusable after errors"

let serve_reach_equiv () =
  with_server @@ fun _srv addr ->
  let c = C.connect addr in
  Fun.protect ~finally:(fun () -> C.close c) @@ fun () ->
  let result = expect_ok "reach" (C.reach c (P.Bench "tlc")) in
  Util.checkb "iterations counted"
    (Option.get (J.int_field "iterations" result) > 0);
  let result = expect_ok "equiv" (C.equiv c (P.Bench "tlc") (P.Bench "tlc")) in
  Util.checkb "self-equivalent"
    (J.mem "equivalent" result = Some (J.Bool true));
  (* a strangled reach is a partial, with the frontier still pending *)
  match C.reach c ~max_steps:50 (P.Bench "johnson8") with
  | Ok { P.status = "partial"; reason = Some _; _ } | Ok { P.status = "dnf"; _ }
    -> ()
  | Ok r -> Alcotest.failf "expected partial/dnf, got %s" r.P.status
  | Error msg -> Alcotest.failf "transport error %s" msg

let serve_metrics () =
  with_server @@ fun _srv addr ->
  let c = C.connect addr in
  Fun.protect ~finally:(fun () -> C.close c) @@ fun () ->
  ignore (expect_ok "minimize" (C.minimize c (P.Store_text payload)));
  let m = expect_ok "metrics" (C.metrics c) in
  let counters = Option.get (J.mem "counters" m) in
  Util.checkb "request counter present"
    (match J.int_field "serve.requests" counters with
     | Some n -> n >= 1
     | None -> false);
  let histos = Option.get (J.mem "histograms" m) in
  Util.checkb "latency histogram present"
    (J.mem "serve.latency_us.minimize" histos <> None);
  Util.checkb "uptime present" (J.float_field "uptime_s" m <> None)

let serve_concurrent_clients () =
  with_server ~workers:3 @@ fun _srv addr ->
  let per_client = 5 in
  let client k () =
    let c = C.connect addr in
    Fun.protect ~finally:(fun () -> C.close c) @@ fun () ->
    List.init per_client (fun j ->
        let p = Serve.Loadgen.build_payload ~nvars:8 ~seed:((k * 17) + j) in
        match C.minimize c (P.Store_text p) with
        | Ok { P.status = "ok"; reply_id; _ } -> reply_id = j + 1
        | _ -> false)
  in
  let domains = List.init 4 (fun k -> Domain.spawn (client k)) in
  let all = List.concat_map Domain.join domains in
  Util.checkb "every request answered ok with its own id"
    (List.for_all (fun b -> b) all)

let serve_shutdown_op () =
  let path = Filename.temp_file "bddmin-test" ".sock" in
  Sys.remove path;
  let srv = Serve.Server.start ~workers:2 (Serve.Server.Unix_path path) in
  let c = C.connect (C.Unix_path path) in
  (match C.shutdown c with
   | Ok { P.status = "ok"; _ } -> ()
   | _ -> Alcotest.fail "shutdown must be acknowledged");
  C.close c;
  (* returns: the accept loop noticed the flag and tore everything down *)
  Serve.Server.wait srv;
  Util.checkb "socket removed" (not (Sys.file_exists path))

let loadgen_smoke () =
  let stats =
    Serve.Loadgen.run ~clients:2 ~requests:12 ~workers:2 ~nvars:8 ()
  in
  Util.checki "all requests accounted"
    stats.Serve.Loadgen.requests
    (stats.Serve.Loadgen.ok + stats.Serve.Loadgen.dnf
     + stats.Serve.Loadgen.partial + stats.Serve.Loadgen.errors);
  Util.checki "no errors" 0 stats.Serve.Loadgen.errors;
  Util.checkb "throughput measured" (stats.Serve.Loadgen.rps > 0.0);
  Util.checkb "percentiles ordered"
    (stats.Serve.Loadgen.p50_ms <= stats.Serve.Loadgen.p95_ms
     && stats.Serve.Loadgen.p95_ms <= stats.Serve.Loadgen.p99_ms)

let suite =
  [
    Alcotest.test_case "json round trip" `Quick json_roundtrip;
    json_fuzz_never_raises;
    Alcotest.test_case "json rejects malformed" `Quick json_rejects;
    protocol_fuzz_never_raises;
    Alcotest.test_case "protocol parse" `Quick protocol_parse;
    Alcotest.test_case "minimize over the wire" `Quick serve_minimize_ok;
    Alcotest.test_case "pla payload and best" `Quick serve_pla_and_best;
    Alcotest.test_case "budget dnf reply" `Quick serve_budget_dnf;
    Alcotest.test_case "deadline dnf does not disturb others" `Quick
      serve_deadline_dnf_isolated;
    Alcotest.test_case "error replies" `Quick serve_error_replies;
    Alcotest.test_case "reach and equiv ops" `Quick serve_reach_equiv;
    Alcotest.test_case "metrics endpoint" `Quick serve_metrics;
    Alcotest.test_case "concurrent clients" `Quick serve_concurrent_clients;
    Alcotest.test_case "shutdown op" `Quick serve_shutdown_op;
    Alcotest.test_case "loadgen smoke" `Quick loadgen_smoke;
  ]
