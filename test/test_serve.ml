(* The serve daemon end to end: protocol codec fuzzing, an in-process
   server driven over a unix socket (submit / budget-DNF / deadline-DNF
   with a concurrent healthy request / metrics / shutdown), and
   concurrent clients. *)

module J = Serve.Json
module P = Serve.Protocol
module C = Serve.Client

(* ----- JSON codec ----- *)

let json_roundtrip () =
  let cases =
    [
      J.Null;
      J.Bool true;
      J.int 42;
      J.Num (-0.5);
      J.Str "a \"quoted\"\nline\twith \\ stuff";
      J.Arr [ J.int 1; J.Str "x"; J.Null ];
      J.Obj [ ("a", J.int 1); ("b", J.Arr [ J.Bool false ]) ];
      J.Obj [];
    ]
  in
  List.iter
    (fun j ->
       match J.parse (J.print j) with
       | Ok j' -> Util.checkb "round trips" (j = j')
       | Error msg -> Alcotest.failf "printed JSON failed to parse: %s" msg)
    cases

let json_fuzz_never_raises =
  Util.qtest ~count:500 "Json.parse never raises"
    QCheck2.Gen.(string_size ~gen:(char_range '\000' '\255') (int_bound 80))
    (fun s -> match J.parse s with Ok _ | Error _ -> true)

let json_rejects () =
  List.iter
    (fun s -> Util.checkb s (Result.is_error (J.parse s)))
    [ ""; "{"; "[1,"; "{\"a\":}"; "tru"; "1.2.3"; "\"unterminated";
      "{\"a\":1,}"; "[1 2]"; "nan"; "01x"; "\"bad \\q escape\"" ]

(* ----- protocol codec ----- *)

let protocol_fuzz_never_raises =
  Util.qtest ~count:500 "parse_request never raises"
    QCheck2.Gen.(string_size ~gen:(char_range '\000' '\255') (int_bound 120))
    (fun s -> match P.parse_request s with Ok _ | Error _ -> true)

let protocol_parse () =
  (match P.parse_request {|{"id": 3, "op": "ping"}|} with
   | Ok { P.id = 3; op = P.Ping; _ } -> ()
   | _ -> Alcotest.fail "ping request");
  (match
     P.parse_request
       {|{"id": 1, "op": "minimize", "bdd": "bdd 1\nroot f 0\n",
          "budget": {"max_steps": 10, "timeout_ms": 1000}}|}
   with
   | Ok { P.op = P.Minimize { heuristic = "sched"; _ };
          budget = { max_steps = Some 10; deadline_ns = Some _; _ }; _ } -> ()
   | _ -> Alcotest.fail "minimize request with budget");
  (match P.parse_request {|{"id": 5, "op": "session_open", "bdd": "x"}|} with
   | Ok { P.id = 5; op = P.Session_open _; _ } -> ()
   | _ -> Alcotest.fail "session_open request");
  (match
     P.parse_request {|{"id": 6, "op": "minimize", "session": "s1"}|}
   with
   | Ok { P.op = P.Minimize { source = P.Session_ref "s1"; _ }; _ } -> ()
   | _ -> Alcotest.fail "minimize against a session");
  List.iter
    (fun payload ->
       Util.checkb payload (Result.is_error (P.parse_request payload)))
    [
      {|{"op": "warp"}|};
      {|{"id": 1}|};
      {|{"op": "minimize"}|};
      {|{"op": "reach"}|};
      {|{"op": "reach", "bench": "tlc", "blif": "x"}|};
      {|{"op": "minimize", "bdd": "x", "budget": {"max_steps": 0}}|};
      {|{"op": "minimize", "bdd": "x", "budget": 3}|};
      {|{"op": "minimize", "bdd": "x", "session": "s1"}|};
      {|{"op": "session_open"}|};
      {|{"op": "session_close"}|};
      "not json at all";
    ];
  (* the busy reply round-trips with its retry hint *)
  match P.parse_reply (J.print (P.busy_reply ~id:9 ~retry_after_ms:250)) with
  | Ok { P.status = "busy"; retry_after_ms = Some 250; _ } -> ()
  | _ -> Alcotest.fail "busy reply round trip"

(* ----- in-process server ----- *)

let with_server ?(workers = 2) ?queue_cap ?max_sessions ?batch_threshold
    ?cache_capacity f =
  let path = Filename.temp_file "bddmin-test" ".sock" in
  Sys.remove path;
  let srv =
    Serve.Server.start ~workers ?queue_cap ?max_sessions ?batch_threshold
      ?cache_capacity (Serve.Server.Unix_path path)
  in
  Fun.protect
    ~finally:(fun () -> Serve.Server.stop srv)
    (fun () -> f srv (C.Unix_path path))

(* Raw pipelined access: several frames written before any reply is
   read — the synchronous [Client] deliberately never does this, and
   the scheduling tests below need requests to pile up server-side. *)
let raw_connect = function
  | C.Unix_path path ->
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_UNIX path);
    fd
  | C.Tcp _ -> Alcotest.fail "raw_connect expects a unix socket"

let with_raw addr f =
  let fd = raw_connect addr in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () -> f fd)

let raw_minimize fd ~id ?timeout_ms text =
  let budget = P.render_budget ?timeout_ms () in
  P.write_frame fd
    (P.render_request ~id ?budget
       [ ("op", J.Str "minimize"); ("bdd", J.Str text);
         ("heuristic", J.Str "sched") ])

let raw_recv fd =
  match P.read_frame fd with
  | Ok (`Frame reply) -> begin
      match P.parse_reply reply with
      | Ok r -> r
      | Error msg -> Alcotest.failf "unparseable reply: %s" msg
    end
  | Ok `Eof -> Alcotest.fail "server closed the connection mid-test"
  | Error msg -> Alcotest.failf "transport error: %s" msg

let payload = Serve.Loadgen.build_payload ~nvars:10 ~seed:42

(* a payload heavy enough that tiny budgets trip mid-minimization *)
let heavy_payload = Serve.Loadgen.build_payload ~nvars:14 ~seed:7

let expect_ok what = function
  | Ok { P.status = "ok"; result; _ } -> result
  | Ok r -> Alcotest.failf "%s: status %s (%s)" what r.P.status
              (Option.value ~default:"" r.P.message)
  | Error msg -> Alcotest.failf "%s: transport error %s" what msg

let serve_minimize_ok () =
  with_server @@ fun _srv addr ->
  let c = C.connect addr in
  Fun.protect ~finally:(fun () -> C.close c) @@ fun () ->
  (match C.ping c with
   | Ok { P.status = "ok"; _ } -> ()
   | _ -> Alcotest.fail "ping");
  let result = expect_ok "minimize" (C.minimize c (P.Store_text payload)) in
  let size = Option.get (J.int_field "size" result) in
  Util.checkb "positive cover size" (size > 0);
  (* the returned cover must actually cover the instance *)
  let cover_text = Option.get (J.string_field "cover" result) in
  let man = Bdd.create () in
  (match Bdd.Store.load man payload, Bdd.Store.load man cover_text with
   | Ok roots, Ok [ ("g", g) ] ->
     let f = List.assoc "f" roots and cc = List.assoc "c" roots in
     Util.checkb "is a cover"
       (Minimize.Ispec.is_cover man (Minimize.Ispec.make ~f ~c:cc) g)
   | _ -> Alcotest.fail "cover text failed to load")

let serve_pla_and_best () =
  with_server @@ fun _srv addr ->
  let c = C.connect addr in
  Fun.protect ~finally:(fun () -> C.close c) @@ fun () ->
  let pla = ".i 3\n.o 1\n.type fd\n110 1\n10- -\n001 1\n.e\n" in
  let result =
    expect_ok "pla minimize" (C.minimize c ~heuristic:"best" (P.Pla_text pla))
  in
  Util.checkb "best reports the winning heuristic"
    (J.string_field "heuristic" result <> None)

let serve_budget_dnf () =
  with_server @@ fun _srv addr ->
  let c = C.connect addr in
  Fun.protect ~finally:(fun () -> C.close c) @@ fun () ->
  (* restr is a pure kernel op that does not trap Budget_exhausted
     (unlike the anytime sched), so a tiny step budget surfaces as a
     structured dnf reply *)
  match
    C.minimize c ~heuristic:"restr" ~max_steps:2 (P.Store_text heavy_payload)
  with
  | Ok { P.status = "dnf"; reason = Some "steps"; _ } -> ()
  | Ok r -> Alcotest.failf "expected dnf/steps, got %s/%s" r.P.status
              (Option.value ~default:"-" r.P.reason)
  | Error msg -> Alcotest.failf "transport error %s" msg

let serve_deadline_dnf_isolated () =
  (* an expired deadline yields dnf(time) while a concurrent healthy
     request on another connection completes untouched *)
  with_server ~workers:2 @@ fun _srv addr ->
  let healthy =
    Domain.spawn (fun () ->
        let c = C.connect addr in
        Fun.protect ~finally:(fun () -> C.close c) @@ fun () ->
        C.minimize c (P.Store_text payload))
  in
  let c = C.connect addr in
  Fun.protect ~finally:(fun () -> C.close c) @@ fun () ->
  (match C.minimize c ~timeout_ms:0 (P.Store_text heavy_payload) with
   | Ok { P.status = "dnf"; reason = Some "time"; _ } -> ()
   | Ok r -> Alcotest.failf "expected dnf/time, got %s/%s" r.P.status
               (Option.value ~default:"-" r.P.reason)
   | Error msg -> Alcotest.failf "transport error %s" msg);
  ignore (expect_ok "concurrent healthy request" (Domain.join healthy))

let serve_error_replies () =
  with_server @@ fun _srv addr ->
  let c = C.connect addr in
  Fun.protect ~finally:(fun () -> C.close c) @@ fun () ->
  (match C.minimize c ~heuristic:"nope" (P.Store_text payload) with
   | Ok { P.status = "error"; message = Some m; _ } ->
     Util.checkb "lists known heuristics" (Util.contains m "sched")
   | _ -> Alcotest.fail "unknown heuristic must be an error reply");
  (match C.minimize c (P.Store_text "bdd 1\nroot g 0\n") with
   | Ok { P.status = "error"; message = Some m; _ } ->
     Util.checkb "explains the missing root" (Util.contains m "f")
   | _ -> Alcotest.fail "payload without f root must be an error reply");
  (match C.reach c (P.Bench "no-such-bench") with
   | Ok { P.status = "error"; _ } -> ()
   | _ -> Alcotest.fail "unknown bench must be an error reply");
  (* the connection survives malformed requests *)
  match C.ping c with
  | Ok { P.status = "ok"; _ } -> ()
  | _ -> Alcotest.fail "connection unusable after errors"

let serve_reach_equiv () =
  with_server @@ fun _srv addr ->
  let c = C.connect addr in
  Fun.protect ~finally:(fun () -> C.close c) @@ fun () ->
  let result = expect_ok "reach" (C.reach c (P.Bench "tlc")) in
  Util.checkb "iterations counted"
    (Option.get (J.int_field "iterations" result) > 0);
  let result = expect_ok "equiv" (C.equiv c (P.Bench "tlc") (P.Bench "tlc")) in
  Util.checkb "self-equivalent"
    (J.mem "equivalent" result = Some (J.Bool true));
  (* a strangled reach is a partial, with the frontier still pending *)
  match C.reach c ~max_steps:50 (P.Bench "johnson8") with
  | Ok { P.status = "partial"; reason = Some _; _ } | Ok { P.status = "dnf"; _ }
    -> ()
  | Ok r -> Alcotest.failf "expected partial/dnf, got %s" r.P.status
  | Error msg -> Alcotest.failf "transport error %s" msg

(* Find one family snapshot by name in the metrics reply's "families". *)
let find_family m name =
  match J.mem "families" m with
  | Some (J.Arr fams) ->
    List.find_opt
      (fun f -> J.string_field "name" f = Some name)
      fams
  | _ -> None

let serve_metrics () =
  with_server @@ fun _srv addr ->
  let c = C.connect addr in
  Fun.protect ~finally:(fun () -> C.close c) @@ fun () ->
  ignore (expect_ok "minimize" (C.minimize c (P.Store_text payload)));
  let m = expect_ok "metrics" (C.metrics c) in
  Util.checkb "uptime present" (J.float_field "uptime_s" m <> None);
  Util.checkb "queue depth present" (J.int_field "queue_depth" m <> None);
  Util.checkb "connection count positive"
    (match J.int_field "connections" m with Some n -> n >= 1 | None -> false);
  Util.checkb "trace drop counter present"
    (J.int_field "trace_dropped" m <> None);
  (match J.mem "flight" m with
   | Some f ->
     Util.checkb "flight written counts the minimize"
       (match J.int_field "written" f with Some n -> n >= 1 | None -> false)
   | None -> Alcotest.fail "flight section missing");
  (* the typed registry: request counter labeled by op *)
  (match find_family m "bddmin_serve_requests_total" with
   | Some fam -> begin
       match J.mem "series" fam with
       | Some (J.Arr series) ->
         Util.checkb "minimize series counted"
           (List.exists
              (fun s ->
                 (match J.mem "labels" s with
                  | Some labels ->
                    J.string_field "op" labels = Some "minimize"
                  | None -> false)
                 && (match J.int_field "value" s with
                     | Some n -> n >= 1
                     | None -> false))
              series)
       | _ -> Alcotest.fail "request family has no series"
     end
   | None -> Alcotest.fail "bddmin_serve_requests_total not registered");
  Util.checkb "latency histogram family present"
    (find_family m "bddmin_serve_latency_us" <> None);
  (* the embedded Prometheus rendering agrees *)
  match J.mem "prometheus" m with
  | Some (J.Str text) ->
    Util.checkb "exposition carries the request counter"
      (Util.contains text "bddmin_serve_requests_total{op=\"minimize\"}")
  | _ -> Alcotest.fail "prometheus text missing"

let serve_trace_roundtrip () =
  (* a trace spec survives render -> parse byte-identically, including
     bytes that need JSON escaping *)
  let trace_id = "req-\xc3\xa9\"\\\n\t 0123456789abcdef" in
  let rendered =
    P.render_request ~id:7 ~trace:{ P.trace_id; sampled = false }
      ~explain:true
      [ ("op", J.Str "ping") ]
  in
  (match P.parse_request rendered with
   | Ok { P.id = 7; trace = Some t; explain = true; _ } ->
     Util.checkb "trace id byte-identical" (t.P.trace_id = trace_id);
     Util.checkb "sampled flag preserved" (t.P.sampled = false)
   | Ok _ -> Alcotest.fail "trace spec lost in round trip"
   | Error msg -> Alcotest.failf "round-tripped request rejected: %s" msg);
  (* and end to end: the id lands verbatim in the flight recorder *)
  with_server @@ fun _srv addr ->
  let c = C.connect addr in
  Fun.protect ~finally:(fun () -> C.close c) @@ fun () ->
  let tid = "e2e-trace-0001" in
  ignore
    (expect_ok "traced minimize"
       (C.minimize c ~trace:{ P.trace_id = tid; sampled = true }
          (P.Store_text payload)));
  let dump = expect_ok "dump" (C.dump c) in
  match J.mem "records" dump with
  | Some (J.Arr records) ->
    Util.checkb "flight record carries the trace id"
      (List.exists
         (fun r ->
            J.string_field "trace_id" r = Some tid
            && J.string_field "op" r = Some "minimize")
         records)
  | _ -> Alcotest.fail "dump has no records"

let serve_explain_telemetry () =
  with_server @@ fun _srv addr ->
  let c = C.connect addr in
  Fun.protect ~finally:(fun () -> C.close c) @@ fun () ->
  (* without explain the reply carries no telemetry at all *)
  (match C.minimize c (P.Store_text payload) with
   | Ok r -> Util.checkb "no telemetry unless asked" (r.P.telemetry = J.Null)
   | Error msg -> Alcotest.failf "transport error %s" msg);
  match C.minimize c ~explain:true ~max_steps:1_000_000 (P.Store_text payload)
  with
  | Error msg -> Alcotest.failf "transport error %s" msg
  | Ok r ->
    let tel = r.P.telemetry in
    let phase name =
      match J.int_field name tel with
      | Some v -> v
      | None -> Alcotest.failf "telemetry lacks %s" name
    in
    Util.checkb "queue_us non-negative" (phase "queue_us" >= 0);
    Util.checkb "exec_us non-negative" (phase "exec_us" >= 0);
    Util.checkb "write_us non-negative" (phase "write_us" >= 0);
    let budget = Option.get (J.mem "budget" tel) in
    Util.checkb "budget consumption reported"
      (match J.int_field "steps" budget with
       | Some s -> s >= 0
       | None -> false);
    let engine = Option.get (J.mem "engine" tel) in
    (* deltas of monotone counters over the request: never negative,
       and a minimize must have done some cache-visible work *)
    List.iter
      (fun key ->
         match J.int_field key engine with
         | Some v -> Util.checkb (key ^ " delta non-negative") (v >= 0)
         | None -> Alcotest.failf "engine delta lacks %s" key)
      [ "cache_lookups"; "cache_hits"; "cache_stores"; "ite_recursions";
        "and_recursions"; "interned" ];
    Util.checkb "the request did engine work"
      (Option.get (J.int_field "cache_lookups" engine) > 0)

let serve_dump_op () =
  with_server @@ fun _srv addr ->
  let c = C.connect addr in
  Fun.protect ~finally:(fun () -> C.close c) @@ fun () ->
  ignore (expect_ok "minimize" (C.minimize c (P.Store_text payload)));
  ignore (expect_ok "minimize" (C.minimize c (P.Store_text payload)));
  let dump = expect_ok "dump" (C.dump c) in
  Util.checkb "capacity positive"
    (Option.get (J.int_field "capacity" dump) > 0);
  Util.checkb "both requests recorded"
    (Option.get (J.int_field "written" dump) >= 2);
  match J.mem "records" dump with
  | Some (J.Arr records) ->
    Util.checkb "records present" (List.length records >= 2);
    List.iter
      (fun r ->
         Util.checkb "record has seq" (J.int_field "seq" r <> None);
         Util.checkb "record has outcome" (J.string_field "outcome" r <> None))
      records
  | _ -> Alcotest.fail "dump has no records"

(* Raw HTTP GET against the Prometheus listener. *)
let http_get ~port path =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  let req = Printf.sprintf "GET %s HTTP/1.0\r\n\r\n" path in
  ignore (Unix.write_substring fd req 0 (String.length req));
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 4096 in
  let rec drain () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> ()
    | n ->
      Buffer.add_subbytes buf chunk 0 n;
      drain ()
  in
  drain ();
  Buffer.contents buf

let serve_http_exposition () =
  let path = Filename.temp_file "bddmin-test" ".sock" in
  Sys.remove path;
  let srv =
    Serve.Server.start ~workers:2 ~metrics:(Serve.Server.Tcp 0)
      (Serve.Server.Unix_path path)
  in
  Fun.protect ~finally:(fun () -> Serve.Server.stop srv) @@ fun () ->
  let port = Option.get (Serve.Server.metrics_port srv) in
  let c = C.connect (C.Unix_path path) in
  Fun.protect ~finally:(fun () -> C.close c) @@ fun () ->
  ignore (expect_ok "minimize" (C.minimize c (P.Store_text payload)));
  let resp = http_get ~port "/metrics" in
  Util.checkb "200 OK" (Util.contains resp "HTTP/1.0 200");
  Util.checkb "prometheus content type"
    (Util.contains resp "text/plain; version=0.0.4");
  Util.checkb "request counter exposed"
    (Util.contains resp "bddmin_serve_requests_total{op=\"minimize\"} 1");
  Util.checkb "type comment present"
    (Util.contains resp "# TYPE bddmin_serve_latency_us histogram");
  Util.checkb "gauges refreshed at scrape time"
    (Util.contains resp "bddmin_serve_workers 2");
  let missing = http_get ~port "/nope" in
  Util.checkb "unknown path is a 404" (Util.contains missing "404")

let serve_concurrent_clients () =
  with_server ~workers:3 @@ fun _srv addr ->
  let per_client = 5 in
  let client k () =
    let c = C.connect addr in
    Fun.protect ~finally:(fun () -> C.close c) @@ fun () ->
    List.init per_client (fun j ->
        let p = Serve.Loadgen.build_payload ~nvars:8 ~seed:((k * 17) + j) in
        match C.minimize c (P.Store_text p) with
        | Ok { P.status = "ok"; reply_id; _ } -> reply_id = j + 1
        | _ -> false)
  in
  let domains = List.init 4 (fun k -> Domain.spawn (client k)) in
  let all = List.concat_map Domain.join domains in
  Util.checkb "every request answered ok with its own id"
    (List.for_all (fun b -> b) all)

let serve_shutdown_op () =
  let path = Filename.temp_file "bddmin-test" ".sock" in
  Sys.remove path;
  let srv = Serve.Server.start ~workers:2 (Serve.Server.Unix_path path) in
  let c = C.connect (C.Unix_path path) in
  (match C.shutdown c with
   | Ok { P.status = "ok"; _ } -> ()
   | _ -> Alcotest.fail "shutdown must be acknowledged");
  C.close c;
  (* returns: the accept loop noticed the flag and tore everything down *)
  Serve.Server.wait srv;
  Util.checkb "socket removed" (not (Sys.file_exists path))

(* ----- throughput machinery: backpressure, cache, sessions, batching,
   EDF ----- *)

let metrics_of addr =
  let c = C.connect addr in
  Fun.protect ~finally:(fun () -> C.close c) @@ fun () ->
  expect_ok "metrics" (C.metrics c)

let sub_field m obj field =
  match J.mem obj m with
  | Some o -> Option.value ~default:0 (J.int_field field o)
  | None -> Alcotest.failf "metrics lack the %s section" obj

let serve_backpressure_busy () =
  (* One worker, a single admission slot, cache and batching off: with
     the worker pinned by a heavy request, pipelined small requests
     overflow the queue and are refused with busy + retry_after_ms —
     yet every request still gets exactly one reply, and the admission
     gauge never exceeded its bound. *)
  with_server ~workers:1 ~queue_cap:1 ~cache_capacity:0 ~batch_threshold:0
  @@ fun _srv addr ->
  with_raw addr @@ fun fd ->
  raw_minimize fd ~id:1 heavy_payload;
  let flood = 6 in
  for id = 2 to flood + 1 do
    raw_minimize fd ~id payload
  done;
  let replies = List.init (flood + 1) (fun _ -> raw_recv fd) in
  let busy = List.filter (fun r -> r.P.status = "busy") replies in
  Util.checkb "overload refused with busy replies" (List.length busy >= 1);
  List.iter
    (fun r ->
       Util.checkb "busy reply carries a positive retry_after_ms"
         (match r.P.retry_after_ms with Some ms -> ms > 0 | None -> false))
    busy;
  Util.checkb "every request answered exactly once"
    (List.sort compare (List.map (fun r -> r.P.reply_id) replies)
     = List.init (flood + 1) (fun i -> i + 1));
  let m = metrics_of addr in
  Util.checkb "admission gauge within the bound"
    (match J.int_field "admission_queue" m with
     | Some d -> d >= 0 && d <= 1
     | None -> false);
  Util.checkb "queue_cap reported"
    (J.int_field "queue_cap" m = Some 1);
  Util.checkb "busy replies counted"
    (Option.value ~default:0 (J.int_field "busy_replies" m)
     >= List.length busy)

let serve_cache_single_flight () =
  (* Two identical requests queued behind a pinned worker collapse onto
     one execution (the follower is answered from the leader's result);
     a third identical request after completion is a straight cache
     hit. *)
  with_server ~workers:1 ~batch_threshold:0 @@ fun _srv addr ->
  with_raw addr @@ fun fd ->
  raw_minimize fd ~id:1 heavy_payload;
  raw_minimize fd ~id:2 payload;
  raw_minimize fd ~id:3 payload;
  let replies = List.init 3 (fun _ -> raw_recv fd) in
  List.iter
    (fun r ->
       Util.checkb "all three requests ok" (r.P.status = "ok"))
    replies;
  let result_of id =
    match List.find_opt (fun r -> r.P.reply_id = id) replies with
    | Some r -> r.P.result
    | None -> Alcotest.failf "no reply for id %d" id
  in
  Util.checkb "collapsed follower got the leader's result"
    (result_of 2 = result_of 3);
  raw_minimize fd ~id:4 payload;
  let r4 = raw_recv fd in
  Util.checkb "cached rerun ok" (r4.P.status = "ok");
  Util.checkb "cached rerun returns the same result"
    (r4.P.result = result_of 2);
  let m = metrics_of addr in
  Util.checkb "collapse counted" (sub_field m "cache" "collapsed" >= 1);
  Util.checkb "hit counted" (sub_field m "cache" "hits" >= 1);
  Util.checkb "cache holds entries" (sub_field m "cache" "entries" >= 1)

let serve_sessions () =
  (* Warm-manager sessions: open / minimize-against / close; an
     over-cap open evicts the least recently used; foreign connections
     cannot use another client's session. *)
  let p k = Serve.Loadgen.build_payload ~nvars:8 ~seed:(200 + k) in
  with_server ~workers:2 ~max_sessions:2 @@ fun _srv addr ->
  let c = C.connect addr in
  Fun.protect ~finally:(fun () -> C.close c) @@ fun () ->
  let open_session text =
    match C.session_open c text with
    | Ok (`Session sid) -> sid
    | Error msg -> Alcotest.failf "session_open: %s" msg
  in
  let sid1 = open_session (p 1) in
  let r = expect_ok "session minimize" (C.minimize c (P.Session_ref sid1)) in
  Util.checkb "session minimize returns a cover"
    (Option.get (J.int_field "size" r) > 0);
  let sid2 = open_session (p 2) in
  (* cap is 2: this open evicts sid1, the least recently used *)
  let sid3 = open_session (p 3) in
  (match C.minimize c (P.Session_ref sid1) with
   | Ok { P.status = "error"; message = Some m; _ } ->
     Util.checkb "eviction explained" (Util.contains m sid1)
   | _ -> Alcotest.fail "evicted session must be an error reply");
  ignore (expect_ok "survivor sid2" (C.minimize c (P.Session_ref sid2)));
  ignore (expect_ok "survivor sid3" (C.minimize c (P.Session_ref sid3)));
  (* a different connection must not see this client's sessions *)
  let c2 = C.connect addr in
  Fun.protect ~finally:(fun () -> C.close c2) @@ fun () ->
  (match C.minimize c2 (P.Session_ref sid3) with
   | Ok { P.status = "error"; _ } -> ()
   | _ -> Alcotest.fail "foreign session use must be an error reply");
  (match C.session_close c sid2 with
   | Ok { P.status = "ok"; result; _ } ->
     Util.checkb "close acknowledged" (J.mem "closed" result = Some (J.Bool true))
   | _ -> Alcotest.fail "session_close must be ok");
  (match C.minimize c (P.Session_ref sid2) with
   | Ok { P.status = "error"; _ } -> ()
   | _ -> Alcotest.fail "closed session must be an error reply");
  let m = metrics_of addr in
  Util.checki "three opens counted" 3 (sub_field m "sessions" "opened");
  Util.checki "one eviction counted" 1 (sub_field m "sessions" "evicted");
  Util.checkb "close counted" (sub_field m "sessions" "closed" >= 1);
  Util.checki "one session live" 1 (sub_field m "sessions" "live")

let serve_batch_isolation () =
  (* Small sessionless payloads queued behind a pinned worker coalesce
     onto one batch manager; a bad item inside the batch fails alone
     while its neighbours complete. *)
  let small k = Serve.Loadgen.build_payload ~nvars:6 ~seed:(300 + k) in
  let bad = "bdd 1\nroot g 0\n" in
  (* the batch route keys on payload size, so pin the sizes down *)
  Util.checkb "heavy payload rides above the batch threshold"
    (String.length heavy_payload > 4096);
  Util.checkb "small payloads ride below the batch threshold"
    (String.length (small 1) <= 4096 && String.length bad <= 4096);
  with_server ~workers:1 ~cache_capacity:0 @@ fun _srv addr ->
  with_raw addr @@ fun fd ->
  raw_minimize fd ~id:1 heavy_payload;
  raw_minimize fd ~id:2 (small 1);
  raw_minimize fd ~id:3 bad;
  raw_minimize fd ~id:4 (small 2);
  let replies = List.init 4 (fun _ -> raw_recv fd) in
  let status_of id =
    match List.find_opt (fun r -> r.P.reply_id = id) replies with
    | Some r -> r.P.status
    | None -> Alcotest.failf "no reply for id %d" id
  in
  Util.check Alcotest.string "good item before the bad one" "ok" (status_of 2);
  Util.check Alcotest.string "bad item fails alone" "error" (status_of 3);
  Util.check Alcotest.string "good item after the bad one" "ok" (status_of 4);
  let m = metrics_of addr in
  Util.checkb "batches counted" (sub_field m "batch" "batches" >= 1);
  Util.checkb "batched requests counted" (sub_field m "batch" "requests" >= 3)

let serve_edf_ordering () =
  (* With the single worker pinned, three queued requests with mixed
     deadlines must run earliest-deadline-first, not in arrival order.
     The deadlines are minutes out so nothing expires; only the order
     is under test. *)
  let p k = Serve.Loadgen.build_payload ~nvars:10 ~seed:(400 + k) in
  with_server ~workers:1 ~cache_capacity:0 ~batch_threshold:0
  @@ fun _srv addr ->
  with_raw addr @@ fun fd ->
  raw_minimize fd ~id:1 heavy_payload;
  raw_minimize fd ~id:2 ~timeout_ms:600_000 (p 1);
  raw_minimize fd ~id:3 ~timeout_ms:120_000 (p 2);
  raw_minimize fd ~id:4 ~timeout_ms:300_000 (p 3);
  let order = List.init 4 (fun _ -> (raw_recv fd).P.reply_id) in
  Util.checkb "completion order follows deadlines, not arrival"
    (order = [ 1; 3; 4; 2 ])

let loadgen_duplicates () =
  let stats =
    Serve.Loadgen.run ~clients:2 ~requests:16 ~workers:2 ~nvars:8
      ~duplicate_rate:1.0 ()
  in
  Util.checki "no errors" 0 stats.Serve.Loadgen.errors;
  Util.checki "all requests accounted"
    stats.Serve.Loadgen.requests
    (stats.Serve.Loadgen.ok + stats.Serve.Loadgen.dnf
     + stats.Serve.Loadgen.partial + stats.Serve.Loadgen.busy
     + stats.Serve.Loadgen.errors);
  match stats.Serve.Loadgen.server with
  | None -> Alcotest.fail "server counters not scraped"
  | Some s ->
    Util.checkb "duplicate traffic hit the result cache"
      (s.Serve.Loadgen.cache_hits + s.Serve.Loadgen.cache_collapsed
       + s.Serve.Loadgen.cache_canonical_hits > 0)

let loadgen_sessions () =
  let stats =
    Serve.Loadgen.run ~clients:2 ~requests:10 ~workers:2 ~nvars:8
      ~sessions:true ()
  in
  Util.checki "no errors" 0 stats.Serve.Loadgen.errors;
  match stats.Serve.Loadgen.server with
  | None -> Alcotest.fail "server counters not scraped"
  | Some s ->
    Util.checkb "each client opened a session"
      (s.Serve.Loadgen.sessions_opened >= 2)

let loadgen_smoke () =
  let stats =
    Serve.Loadgen.run ~clients:2 ~requests:12 ~workers:2 ~nvars:8
      ~explain:true ()
  in
  Util.checki "all requests accounted"
    stats.Serve.Loadgen.requests
    (stats.Serve.Loadgen.ok + stats.Serve.Loadgen.dnf
     + stats.Serve.Loadgen.partial + stats.Serve.Loadgen.busy
     + stats.Serve.Loadgen.errors);
  Util.checki "no errors" 0 stats.Serve.Loadgen.errors;
  Util.checkb "throughput measured" (stats.Serve.Loadgen.rps > 0.0);
  Util.checkb "percentiles ordered"
    (stats.Serve.Loadgen.p50_ms <= stats.Serve.Loadgen.p95_ms
     && stats.Serve.Loadgen.p95_ms <= stats.Serve.Loadgen.p99_ms);
  match stats.Serve.Loadgen.telemetry with
  | None -> Alcotest.fail "explain run must aggregate server telemetry"
  | Some t ->
    (* cache hits skip the phase telemetry (nothing was queued or
       executed), so explained counts the computed subset of ok *)
    Util.checkb "computed replies explained"
      (t.Serve.Loadgen.explained >= 1
       && t.Serve.Loadgen.explained <= stats.Serve.Loadgen.ok);
    Util.checkb "phase means non-negative"
      (t.Serve.Loadgen.queue_us_mean >= 0.0
       && t.Serve.Loadgen.exec_us_mean >= 0.0
       && t.Serve.Loadgen.write_us_mean >= 0.0)

let suite =
  [
    Alcotest.test_case "json round trip" `Quick json_roundtrip;
    json_fuzz_never_raises;
    Alcotest.test_case "json rejects malformed" `Quick json_rejects;
    protocol_fuzz_never_raises;
    Alcotest.test_case "protocol parse" `Quick protocol_parse;
    Alcotest.test_case "minimize over the wire" `Quick serve_minimize_ok;
    Alcotest.test_case "pla payload and best" `Quick serve_pla_and_best;
    Alcotest.test_case "budget dnf reply" `Quick serve_budget_dnf;
    Alcotest.test_case "deadline dnf does not disturb others" `Quick
      serve_deadline_dnf_isolated;
    Alcotest.test_case "error replies" `Quick serve_error_replies;
    Alcotest.test_case "reach and equiv ops" `Quick serve_reach_equiv;
    Alcotest.test_case "metrics endpoint" `Quick serve_metrics;
    Alcotest.test_case "trace id round trip" `Quick serve_trace_roundtrip;
    Alcotest.test_case "explain telemetry" `Quick serve_explain_telemetry;
    Alcotest.test_case "flight dump op" `Quick serve_dump_op;
    Alcotest.test_case "prometheus http exposition" `Quick
      serve_http_exposition;
    Alcotest.test_case "concurrent clients" `Quick serve_concurrent_clients;
    Alcotest.test_case "shutdown op" `Quick serve_shutdown_op;
    Alcotest.test_case "backpressure busy replies" `Quick
      serve_backpressure_busy;
    Alcotest.test_case "cache and single-flight collapse" `Quick
      serve_cache_single_flight;
    Alcotest.test_case "session lifecycle and eviction" `Quick serve_sessions;
    Alcotest.test_case "batch failure isolation" `Quick serve_batch_isolation;
    Alcotest.test_case "EDF ordering under mixed deadlines" `Quick
      serve_edf_ordering;
    Alcotest.test_case "loadgen smoke" `Quick loadgen_smoke;
    Alcotest.test_case "loadgen duplicate traffic" `Quick loadgen_duplicates;
    Alcotest.test_case "loadgen sessions" `Quick loadgen_sessions;
  ]
