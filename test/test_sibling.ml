(* The generic top-down sibling matcher (Figure 2) and its Table 2
   instances: cover soundness, equivalence with the classical operators,
   the paper's non-optimality counter-examples, the Table 2 collapses,
   Theorem 7, and the special cases of §3.1.1. *)

module Tt = Logic.Truth_table
module I = Minimize.Ispec
module S = Minimize.Sibling

let man = Util.man

let nvars = 5

let all_heuristics_cover =
  Util.qtest ~count:300 "every sibling heuristic returns a cover"
    Util.gen_instance
    (fun desc ->
       let s = Util.build_ispec_nonzero desc in
       List.for_all
         (fun h -> Util.tt_is_cover ~nvars s (S.run_heuristic man h s))
         S.all_heuristics)

let no_foreign_variables =
  Util.qtest ~count:300
    "results never use variables outside the supports of f and c"
    Util.gen_instance
    (fun desc ->
       let s = Util.build_ispec_nonzero desc in
       let allowed =
         List.sort_uniq compare
           (Bdd.support man s.I.f @ Bdd.support man s.I.c)
       in
       List.for_all
         (fun h ->
            let g = S.run_heuristic man h s in
            List.for_all (fun v -> List.mem v allowed) (Bdd.support man g))
         S.all_heuristics)

let generic_equals_classical =
  Util.qtest ~count:300
    "rows 1 and 2 of Table 2 coincide with classical constrain/restrict"
    Util.gen_instance
    (fun desc ->
       let s = Util.build_ispec_nonzero desc in
       Bdd.equal (S.run_heuristic man S.Constrain s)
         (Bdd.constrain man s.I.f s.I.c)
       && Bdd.equal (S.run_heuristic man S.Restrict s)
            (Bdd.restrict man s.I.f s.I.c))

let table2_collapse_osdm_compl =
  Util.qtest ~count:300
    "Table 2: match-complement has no effect on osdm (rows 3,4 = 1,2)"
    Util.gen_instance
    (fun desc ->
       let s = Util.build_ispec_nonzero desc in
       let run ~match_compl ~no_new_vars =
         S.run man
           { S.criterion = Minimize.Matching.Osdm; match_compl; no_new_vars }
           s
       in
       Bdd.equal
         (run ~match_compl:true ~no_new_vars:false)
         (run ~match_compl:false ~no_new_vars:false)
       && Bdd.equal
            (run ~match_compl:true ~no_new_vars:true)
            (run ~match_compl:false ~no_new_vars:true))

let table2_collapse_tsm_nnv =
  Util.qtest ~count:300
    "Table 2: no-new-vars has no effect on tsm (rows 10,12 = 9,11)"
    Util.gen_instance
    (fun desc ->
       let s = Util.build_ispec_nonzero desc in
       let run ~match_compl ~no_new_vars =
         S.run man
           { S.criterion = Minimize.Matching.Tsm; match_compl; no_new_vars }
           s
       in
       Bdd.equal
         (run ~match_compl:false ~no_new_vars:true)
         (run ~match_compl:false ~no_new_vars:false)
       && Bdd.equal
            (run ~match_compl:true ~no_new_vars:true)
            (run ~match_compl:true ~no_new_vars:false))

(* §3.2 counter-examples: on the listed instances, the heuristic's result
   is strictly larger than the listed minimum, which our exact minimizer
   confirms is optimal.  The instance notation leaves f's don't-care
   values free; the paper's reported outputs are reproduced with f = 0 on
   the DC leaves (paper_instance's convention). *)
let counter_example name h inst expected_heur expected_min () =
  let f_tt, c_tt = Tt.paper_instance inst in
  let s = I.make ~f:(Tt.to_bdd man f_tt) ~c:(Tt.to_bdd man c_tt) in
  let g = S.run_heuristic man h s in
  let n = Tt.nvars f_tt in
  (* The heuristic's output function is exactly the one listed. *)
  Util.checkb (name ^ " output")
    (Tt.equal (Tt.of_bdd man ~nvars:n g) (Tt.of_bits expected_heur));
  let min_cover = Tt.to_bdd man (Tt.of_bits expected_min) in
  Util.checkb (name ^ " paper minimum is a cover") (I.is_cover man s min_cover);
  (match Minimize.Exact.minimum_size man s with
   | Some m ->
     Util.checki (name ^ " exact = paper minimum") m (Bdd.size man min_cover);
     Util.checkb (name ^ " heuristic suboptimal") (Bdd.size man g > m)
   | None -> Alcotest.fail "exact minimizer should handle this size")

let special_case_care_implies_onset =
  Util.qtest ~count:300 "0 <> c <= f: every heuristic returns the constant 1"
    Util.gen_instance
    (fun desc ->
       let f, c0 = Util.build_instance desc in
       let c = Bdd.dand man c0 f in
       if Bdd.is_zero c then true
       else
         let s = I.make ~f ~c in
         List.for_all
           (fun h -> Bdd.is_one (S.run_heuristic man h s))
           S.all_heuristics)

let special_case_care_implies_offset =
  Util.qtest ~count:300 "0 <> c <= !f: every heuristic returns the constant 0"
    Util.gen_instance
    (fun desc ->
       let f, c0 = Util.build_instance desc in
       let c = Bdd.diff man c0 f in
       if Bdd.is_zero c then true
       else
         let s = I.make ~f ~c in
         List.for_all
           (fun h -> Bdd.is_zero (S.run_heuristic man h s))
           S.all_heuristics)

let full_care_is_identity =
  Util.qtest ~count:200 "c = 1: every heuristic returns f itself"
    Util.gen_instance
    (fun desc ->
       let f, _ = Util.build_instance desc in
       let s = I.make ~f ~c:(Bdd.one man) in
       List.for_all
         (fun h -> Bdd.equal (S.run_heuristic man h s) f)
         S.all_heuristics)

(* Theorem 7 for every sibling heuristic ("The theorem for the other
   heuristics can be argued similarly"). *)
let theorem7_cube_care =
  Util.qtest ~count:200 "c a cube: every sibling heuristic is optimal"
    QCheck2.Gen.(
      let* desc = Util.gen_instance in
      let* mask = int_bound 31 in
      let* phases = int_bound 31 in
      return (desc, mask, phases))
    (fun (desc, mask, phases) ->
       let f, _ = Util.build_instance desc in
       let cube =
         List.filter_map
           (fun v ->
              if (mask lsr v) land 1 = 1 then
                Some (v, (phases lsr v) land 1 = 1)
              else None)
           (List.init 5 Fun.id)
       in
       let c = Bdd.Cube.of_cube man cube in
       let s = I.make ~f ~c in
       match Minimize.Exact.minimum_size man s with
       | None -> true
       | Some m ->
         List.for_all
           (fun h -> Bdd.size man (S.run_heuristic man h s) = m)
           S.all_heuristics)

let proposition6_clamped =
  Util.qtest ~count:300 "run_clamped never exceeds |f| (Proposition 6)"
    Util.gen_instance
    (fun desc ->
       let s = Util.build_ispec_nonzero desc in
       List.for_all
         (fun h ->
            let g = S.run_clamped man (S.config_of_heuristic h) s in
            Bdd.size man g <= Bdd.size man s.I.f
            && Util.tt_is_cover ~nvars s g)
         S.all_heuristics)

let constrain_can_grow () =
  (* Proposition 6: any non-optimal matching heuristic must sometimes
     increase the size; the classic witness for constrain. *)
  let f_tt, c_tt = Tt.paper_instance "d1 01" in
  let f = Tt.to_bdd man f_tt and c = Tt.to_bdd man c_tt in
  let s = I.make ~f ~c in
  let g = S.run_heuristic man S.Constrain s in
  Util.checkb "constrain grew" (Bdd.size man g > Bdd.size man f)

let empty_care_rejected () =
  let s = I.make ~f:(Bdd.ithvar man 0) ~c:(Bdd.zero man) in
  Alcotest.check_raises "empty care"
    (Invalid_argument "Sibling.run: empty care set")
    (fun () -> ignore (S.run_heuristic man S.Constrain s))

let window_transform_sound =
  Util.qtest ~count:300 "transform_window yields an i-cover of the input"
    QCheck2.Gen.(
      let* desc = Util.gen_instance in
      let* lo = int_range 0 4 in
      let* len = int_range 0 5 in
      return (desc, lo, len))
    (fun (desc, lo, len) ->
       let s = Util.build_ispec_nonzero desc in
       List.for_all
         (fun h ->
            let cfg = S.config_of_heuristic h in
            let s' = S.transform_window man cfg ~lo ~hi:(lo + len) s in
            (* i-cover: covers of s' are covers of s; in particular the
               care set only grows and agrees with f on the old care. *)
            I.is_i_cover man s' s
            && Util.tt_is_cover ~nvars s
                 (Bdd.constrain man s'.I.f s'.I.c))
         S.all_heuristics)

let window_full_equals_run =
  Util.qtest ~count:200
    "transform over the whole order + constrain tail = a valid cover"
    Util.gen_instance
    (fun desc ->
       let s = Util.build_ispec_nonzero desc in
       let cfg = S.config_of_heuristic S.Osm_bt in
       let s' = S.transform_window man cfg ~lo:0 ~hi:nvars s in
       Util.tt_is_cover ~nvars s (Bdd.constrain man s'.I.f s'.I.c))

let heuristic_names () =
  List.iter
    (fun h ->
       Util.checkb "name round trip"
         (S.heuristic_of_name (S.heuristic_name h) = Some h))
    S.all_heuristics;
  Util.checkb "aliases"
    (S.heuristic_of_name "constrain" = Some S.Constrain
     && S.heuristic_of_name "restrict" = Some S.Restrict);
  Util.checki "eight heuristics" 8 (List.length S.all_heuristics)

let suite =
  [
    all_heuristics_cover;
    no_foreign_variables;
    generic_equals_classical;
    table2_collapse_osdm_compl;
    table2_collapse_tsm_nnv;
    Alcotest.test_case "§3.2 example 1 (constrain)" `Quick
      (counter_example "constrain" S.Constrain "d101" "1101" "0101");
    Alcotest.test_case "§3.2 example 2 (osm_td)" `Quick
      (counter_example "osm_td" S.Osm_td "d1011d01" "01011101" "11011101");
    Alcotest.test_case "§3.2 example 3 (tsm_td)" `Quick
      (counter_example "tsm_td" S.Tsm_td "1dd1d00d" "10011001" "11110000");
    special_case_care_implies_onset;
    special_case_care_implies_offset;
    full_care_is_identity;
    theorem7_cube_care;
    proposition6_clamped;
    Alcotest.test_case "constrain can grow |f|" `Quick constrain_can_grow;
    Alcotest.test_case "empty care rejected" `Quick empty_care_rejected;
    window_transform_sound;
    window_full_equals_run;
    Alcotest.test_case "heuristic names" `Quick heuristic_names;
  ]
