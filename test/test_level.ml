(* Level matching (§3.3): gathering, FMM solving, rebuild soundness,
   Theorem 12, opt_lv, and the distance measure. *)

module I = Minimize.Ispec
module L = Minimize.Level
module M = Minimize.Matching

let man = Util.man
let nvars = 5

let gather_terminates_below_level =
  Util.qtest ~count:200 "gathered pairs lie below the level, superstructure above"
    QCheck2.Gen.(
      let* desc = Util.gen_instance in
      let* level = int_range 0 4 in
      return (desc, level))
    (fun (desc, level) ->
       let s = Util.build_ispec_nonzero desc in
       let pairs = L.gather man ~level ~only_rooted_at_next:false s in
       List.for_all
         (fun ((p : I.t), path) ->
            min (Bdd.topvar p.I.f) (Bdd.topvar p.I.c) > level
            && List.for_all (fun (v, _) -> v <= level) path)
         pairs)

let gather_rooted_at_next =
  Util.qtest ~count:200 "only_rooted_at_next keeps f rooted at level+1"
    QCheck2.Gen.(
      let* desc = Util.gen_instance in
      let* level = int_range 0 4 in
      return (desc, level))
    (fun (desc, level) ->
       let s = Util.build_ispec_nonzero desc in
       let pairs = L.gather man ~level ~only_rooted_at_next:true s in
       List.for_all
         (fun ((p : I.t), _) -> Bdd.topvar p.I.f = level + 1)
         pairs)

let gather_unique =
  Util.qtest ~count:200 "gathered pairs are unique"
    Util.gen_instance
    (fun desc ->
       let s = Util.build_ispec_nonzero desc in
       let pairs = L.gather man ~level:2 ~only_rooted_at_next:false s in
       let keys =
         List.map (fun ((p : I.t), _) -> (Bdd.uid p.I.f, Bdd.uid p.I.c)) pairs
       in
       List.length keys = List.length (List.sort_uniq compare keys))

let minimize_at_level_sound =
  Util.qtest ~count:250 "minimize_at_level yields an i-cover, any criterion"
    QCheck2.Gen.(
      let* desc = Util.gen_instance in
      let* level = int_range 0 4 in
      return (desc, level))
    (fun (desc, level) ->
       let s = Util.build_ispec_nonzero desc in
       List.for_all
         (fun crit ->
            let s' = L.minimize_at_level man crit ~level s in
            I.is_i_cover man s' s
            && Util.tt_is_cover ~nvars s (Bdd.constrain man s'.I.f s'.I.c))
         M.all)

let care_only_grows =
  Util.qtest ~count:250 "care set grows monotonically"
    QCheck2.Gen.(
      let* desc = Util.gen_instance in
      let* level = int_range 0 4 in
      return (desc, level))
    (fun (desc, level) ->
       let s = Util.build_ispec_nonzero desc in
       List.for_all
         (fun crit ->
            let s' = L.minimize_at_level man crit ~level s in
            Bdd.leq man s.I.c s'.I.c)
         M.all)

let opt_lv_covers =
  Util.qtest ~count:250 "opt_lv returns a cover" Util.gen_instance
    (fun desc ->
       let s = Util.build_ispec_nonzero desc in
       Util.tt_is_cover ~nvars s (L.opt_lv man s))

let opt_lv_chunked_covers =
  Util.qtest ~count:150 "opt_lv with a set limit still returns a cover"
    Util.gen_instance
    (fun desc ->
       let s = Util.build_ispec_nonzero desc in
       let params = { L.default_params with L.set_limit = Some 3 } in
       Util.tt_is_cover ~nvars s (L.opt_lv man ~params s))

let opt_lv_variants_cover =
  Util.qtest ~count:150 "opt_lv parameter variants all return covers"
    Util.gen_instance
    (fun desc ->
       let s = Util.build_ispec_nonzero desc in
       List.for_all
         (fun params -> Util.tt_is_cover ~nvars s (L.opt_lv man ~params s))
         [
           { L.default_params with L.only_rooted_at_next = true };
           { L.default_params with L.order_by_degree = false };
           { L.default_params with L.use_distance_weights = false };
         ])

(* Theorem 12: after a set of osm matchings at level i, some cover of the
   result attains the minimum node count below level i.  We verify on
   exhaustively-minimizable instances: min over covers of N_i is computed
   from the exact enumeration of both the original and the transformed
   instance. *)
let min_below man ~level (s : I.t) =
  (* Enumerate all covers via truth tables (small n only). *)
  let module Tt = Logic.Truth_table in
  let vars =
    List.sort_uniq compare (Bdd.support man s.I.f @ Bdd.support man s.I.c)
  in
  ignore vars;
  let n = nvars in
  let f = Tt.of_bdd man ~nvars:n s.I.f and c = Tt.of_bdd man ~nvars:n s.I.c in
  let dc = List.filter (fun m -> not (Tt.get c m)) (List.init (1 lsl n) Fun.id) in
  let d = List.length dc in
  if d > 10 then None
  else begin
    let dc = Array.of_list dc in
    let best = ref max_int in
    for mask = 0 to (1 lsl d) - 1 do
      let value m =
        if Tt.get c m then Tt.get f m && Tt.get c m
        else
          let rec idx i = if dc.(i) = m then i else idx (i + 1) in
          (mask lsr idx 0) land 1 = 1
      in
      let g = Tt.to_bdd man (Tt.create n value) in
      best := min !best (Bdd.count_below man g level)
    done;
    Some !best
  end

let theorem12 =
  Util.qtest ~count:40
    "Theorem 12: osm level matching preserves the optimum below the level"
    QCheck2.Gen.(
      let* desc = Util.gen_instance in
      let* level = int_range 0 3 in
      return (desc, level))
    (fun (desc, level) ->
       let s = Util.build_ispec_nonzero desc in
       let s' = L.minimize_at_level man M.Osm ~level s in
       match (min_below man ~level s, min_below man ~level s') with
       | (Some before, Some after) -> after = before
       | _ -> true)

let distance_siblings () =
  (* siblings at the deepest position differ only at the level itself *)
  let pg = [ (0, true); (2, false); (3, true) ] in
  let ph = [ (0, true); (2, false); (3, false) ] in
  Alcotest.(check (float 1e-9)) "siblings" 1.0 (L.distance ~level:3 pg ph)

let distance_paper_example () =
  (* Paper's example: path 1000210 vs 1201111 (7 variables, "2" = absent):
     differences at positions 2, 4 (0-based: indices where both defined and
     bits differ), distance 9 with weights 2^(k-i-1). *)
  let parse s =
    List.filteri (fun _ _ -> true)
      (List.concat
         (List.mapi
            (fun i ch ->
               match ch with
               | '0' -> [ (i, false) ]
               | '1' -> [ (i, true) ]
               | _ -> [])
            (List.init (String.length s) (String.get s))))
  in
  let pg = parse "1000210" and ph = parse "1201111" in
  Alcotest.(check (float 1e-9)) "paper distance" 9.0
    (L.distance ~level:6 pg ph)

let suite =
  [
    gather_terminates_below_level;
    gather_rooted_at_next;
    gather_unique;
    minimize_at_level_sound;
    care_only_grows;
    opt_lv_covers;
    opt_lv_chunked_covers;
    opt_lv_variants_cover;
    theorem12;
    Alcotest.test_case "distance of siblings" `Quick distance_siblings;
    Alcotest.test_case "distance paper example" `Quick distance_paper_example;
  ]
