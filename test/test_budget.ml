(* Resource governance: Budget semantics, abort consistency, graceful
   degradation in the schedule/registry/reachability/capture layers. *)

module Tt = Logic.Truth_table
module I = Minimize.Ispec
module R = Minimize.Registry
module B = Bdd.Budget

(* A 5-variable instance that forces plenty of kernel recursion: parity
   onset against a non-cube care set. *)
let deep_instance man =
  let v = Bdd.ithvar man in
  let f =
    List.fold_left (fun acc i -> Bdd.dxor man acc (v i)) (v 0) [ 1; 2; 3; 4 ]
  in
  let c =
    Bdd.dor man
      (Bdd.dand man (v 0) (v 2))
      (Bdd.dor man (Bdd.dand man (v 1) (v 3)) (Bdd.dand man (v 2) (v 4)))
  in
  I.make ~f ~c

(* ----- Budget unit semantics ----- *)

let budget_basics () =
  let b = B.create ~max_steps:1000 () in
  Util.checki "fresh budget has no steps" 0 (B.steps b);
  Util.checkb "fresh budget not exhausted" (B.exhausted b = None);
  Util.checkb "create rejects non-positive nodes"
    (try ignore (B.create ~max_nodes:0 ()); false
     with Invalid_argument _ -> true);
  Util.checkb "create rejects non-positive steps"
    (try ignore (B.create ~max_steps:(-1) ()); false
     with Invalid_argument _ -> true);
  Util.checkb "create rejects negative timeout"
    (try ignore (B.create ~timeout_s:(-1.0) ()); false
     with Invalid_argument _ -> true);
  List.iter
    (fun (r, label) -> Util.check Alcotest.string "label" label (B.reason_label r))
    [
      (B.Nodes { limit = 1; live = 2 }, "nodes");
      (B.Steps { limit = 1 }, "steps");
      (B.Time { seconds = 1.0 }, "time");
      (B.Cancelled, "cancelled");
    ]

let step_budget_trips () =
  let man = Bdd.create () in
  let s = deep_instance man in
  let b = B.create ~max_steps:2 () in
  (match Bdd.with_budget man b (fun () -> Bdd.constrain man s.I.f s.I.c) with
   | _ -> Alcotest.fail "expected Budget_exhausted"
   | exception Bdd.Budget_exhausted (B.Steps { limit }) ->
     Util.checki "reason carries the limit" 2 limit);
  Util.checkb "budget is sticky-exhausted"
    (match B.exhausted b with Some (B.Steps _) -> true | _ -> false);
  Util.checkb "steps were counted" (B.steps b > 2);
  Util.checkb "with_budget uninstalled the budget on the way out"
    (Bdd.current_budget man = None)

let cancellation_trips () =
  let man = Bdd.create () in
  let s = deep_instance man in
  let t = Exec.Cancel.create () in
  Exec.Cancel.cancel t;
  let b = B.create ~cancelled:(fun () -> Exec.Cancel.cancelled t) () in
  Util.checkb "cancelled token aborts the first polled step"
    (match Bdd.with_budget man b (fun () -> Bdd.dand man s.I.f s.I.c) with
     | _ -> false
     | exception Bdd.Budget_exhausted B.Cancelled -> true)

let time_budget_trips () =
  let man = Bdd.create () in
  let s = deep_instance man in
  (* An already-expired deadline: the first polled step trips it. *)
  let b = B.create ~timeout_s:1e-9 () in
  Util.checkb "expired deadline aborts"
    (match Bdd.with_budget man b (fun () -> Bdd.dand man s.I.f s.I.c) with
     | _ -> false
     | exception Bdd.Budget_exhausted (B.Time _) -> true)

let deadline_checked_at_entry () =
  (* The entry-point poll: an expired deadline aborts the very next
     public operation even when that operation would do no cache-missing
     recursion at all (terminal rule or warm cache), which is what keeps
     a server's deadline latency bounded by one operation. *)
  let man = Bdd.create () in
  let x = Bdd.ithvar man 0 and y = Bdd.ithvar man 1 in
  let b = B.create ~timeout_s:0.005 () in
  Bdd.with_budget man b (fun () ->
      ignore (Bdd.and_ man x y) (* warm the cache while within budget *);
      let t0 = Obs.Clock.now_ns () in
      while Int64.to_float (Int64.sub (Obs.Clock.now_ns ()) t0) < 7e6 do
        ()
      done;
      (* fully-cached repeat: no recursion step will ever poll *)
      (match Bdd.and_ man x y with
       | _ -> Alcotest.fail "cached op must trip the entry deadline poll"
       | exception Bdd.Budget_exhausted (B.Time _) -> ());
      (* terminal-rule op: likewise no recursion *)
      match Bdd.and_ man x x with
      | _ -> Alcotest.fail "terminal op must trip the entry deadline poll"
      | exception Bdd.Budget_exhausted (B.Time _) -> ())

let cancel_checked_at_entry () =
  let man = Bdd.create () in
  let x = Bdd.ithvar man 0 in
  let flag = ref false in
  let b = B.create ~cancelled:(fun () -> !flag) () in
  Bdd.with_budget man b (fun () ->
      ignore (Bdd.or_ man x x);
      flag := true;
      match Bdd.or_ man x x with
      | _ -> Alcotest.fail "cancellation must trip at operation entry"
      | exception Bdd.Budget_exhausted B.Cancelled -> ())

let node_budget_trips () =
  let man = Bdd.create () in
  let s = deep_instance man in
  (* The instance already interned more nodes than the ceiling, so the
     first budgeted step sees live > limit. *)
  let b = B.create ~max_nodes:2 () in
  Util.checkb "node ceiling aborts"
    (match
       Bdd.with_budget man b (fun () ->
           Bdd.dand man s.I.f (Bdd.compl s.I.c))
     with
     | _ -> false
     | exception Bdd.Budget_exhausted (B.Nodes { limit = 2; live }) ->
       live > 2)

let unlimited_budget_never_trips () =
  let man = Bdd.create () in
  let s = deep_instance man in
  let b = B.create () in
  let g = Bdd.with_budget man b (fun () -> Bdd.constrain man s.I.f s.I.c) in
  Util.checkb "result computed" (Bdd.equal g (Bdd.constrain man s.I.f s.I.c));
  Util.checkb "not exhausted" (B.exhausted b = None)

(* ----- abort consistency: the tentpole's core guarantee -----

   Exhaustion may only surface at clean recursion boundaries, so an
   aborted operation must leave the manager fully consistent: retrying
   without a budget yields the canonical result (bit-identical truth
   table to a fresh manager's), and the unique table survives a GC. *)

let consistency_after_abort =
  Util.qtest ~count:100 "abort -> unbudgeted retry is canonical"
    Util.gen_instance
    (fun (n, fseed, cseed) ->
       let build man =
         let st = Random.State.make [| fseed; cseed; n |] in
         let f = Tt.to_bdd man (Tt.create n (fun _ -> Random.State.bool st)) in
         let c =
           Tt.to_bdd man (Tt.create n (fun _ -> Random.State.int st 4 > 0))
         in
         (* constrain/restrict reject an empty care set *)
         let c = if Bdd.is_zero c then Bdd.one man else c in
         (f, c)
       in
       let man = Bdd.create () in
       let f, c = build man in
       (* Abort a few different kernels mid-recursion. *)
       List.iter
         (fun op ->
            try
              ignore
                (Bdd.with_budget man (B.create ~max_steps:1 ()) (fun () ->
                     op ()))
            with Bdd.Budget_exhausted _ -> ())
         [
           (fun () -> Bdd.constrain man f c);
           (fun () -> Bdd.dand man f c);
           (fun () -> Bdd.dxor man f c);
           (fun () -> Bdd.restrict man f c);
         ];
       (* The manager still GCs cleanly after the aborts. *)
       ignore (Bdd.gc man);
       (* Unbudgeted retries on the aborted manager vs. a fresh manager. *)
       let man2 = Bdd.create () in
       let f2, c2 = build man2 in
       let same op op2 =
         Tt.equal (Tt.of_bdd man ~nvars:n (op f c))
           (Tt.of_bdd man2 ~nvars:n (op2 f2 c2))
       in
       same (Bdd.constrain man) (Bdd.constrain man2)
       && same (Bdd.dand man) (Bdd.dand man2)
       && same (Bdd.dxor man) (Bdd.dxor man2)
       && same (Bdd.restrict man) (Bdd.restrict man2))

(* ----- schedule: anytime behaviour ----- *)

let schedule_best_so_far =
  Util.qtest ~count:100 "budgeted schedule still returns a cover"
    Util.gen_instance
    (fun desc ->
       let s = Util.build_ispec_nonzero desc in
       let nvars = 5 in
       let run budget =
         match budget with
         | None -> Minimize.Schedule.run Util.man s
         | Some b ->
           Bdd.with_budget Util.man b (fun () -> Minimize.Schedule.run Util.man s)
       in
       let unbudgeted = run None in
       (* Even a 1-step budget must produce a cover (the window that
          trips is discarded, keeping the best-so-far spec). *)
       let starved = run (Some (B.create ~max_steps:1 ())) in
       let roomy = run (Some (B.create ~max_steps:10_000_000 ())) in
       Util.tt_is_cover ~nvars s starved
       && Util.tt_is_cover ~nvars s unbudgeted
       && Bdd.equal roomy unbudgeted)

(* ----- registry: run installs the context budget; best skips DNFs ----- *)

let registry_run_installs_budget () =
  let man = Bdd.create () in
  let s = deep_instance man in
  let e = Option.get (R.find "const") in
  let b = B.create ~max_steps:2 () in
  let ctx = Minimize.Ctx.make ~budget:b man in
  Util.checkb "entry aborts under the context budget"
    (match R.run e ctx s with
     | _ -> false
     | exception Bdd.Budget_exhausted (B.Steps _) -> true);
  (* A context without a budget runs to completion on the same manager. *)
  let g = R.run e (Minimize.Ctx.of_man man) s in
  Util.checkb "unbudgeted retry matches constrain"
    (Bdd.equal g (Bdd.constrain man s.I.f s.I.c))

let best_skips_exhausted () =
  let man = Bdd.create () in
  let s = deep_instance man in
  (* f_orig performs no kernel work, so it always completes: best must
     return even under a 1-step budget. *)
  let b = B.create ~max_steps:1 () in
  let ctx = Minimize.Ctx.make ~budget:b man in
  let name, g = R.best ctx R.all s in
  Util.checkb "winner is a completed entry" (R.find name <> None);
  Util.checkb "winner is a cover"
    (let nvars = 5 in
     let tt_f = Tt.of_bdd man ~nvars s.I.f
     and tt_c = Tt.of_bdd man ~nvars s.I.c
     and tt_g = Tt.of_bdd man ~nvars g in
     Tt.leq (Tt.band tt_f tt_c) tt_g
     && Tt.leq tt_g (Tt.bor tt_f (Tt.bnot tt_c)));
  Util.checkb "budget recorded the exhaustion" (B.exhausted b <> None)

let best_raises_when_all_exhaust () =
  let man = Bdd.create () in
  let s = deep_instance man in
  let b = B.create ~max_steps:1 () in
  let ctx = Minimize.Ctx.make ~budget:b man in
  (* Only proper minimizers (every one does kernel work on this
     instance): all exhaust, so the first reason is re-raised. *)
  let entries = [ Option.get (R.find "const"); Option.get (R.find "restr") ] in
  Util.checkb "all-DNF re-raises"
    (match R.best ctx entries s with
     | _ -> false
     | exception Bdd.Budget_exhausted _ -> true)

(* ----- reachability: partial fixpoints and resume ----- *)

let reach_partial_resume () =
  let nl =
    (Option.get (Circuits.Registry.find "gray6")).Circuits.Registry.build ()
  in
  (* Reference traversal on its own manager. *)
  let man_full = Bdd.create () in
  let _, st_full =
    Fsm.Reach.reachable (Fsm.Symbolic.of_netlist man_full nl)
  in
  Util.checkb "unbudgeted run completes"
    (st_full.Fsm.Reach.fixpoint = Fsm.Reach.Complete);
  (* Starve a cold traversal on a fresh manager (ticks fire on cache
     misses, so a warm manager might never trip): it stops somewhere in
     the middle with an explicit frontier. *)
  let man = Bdd.create () in
  let sym = Fsm.Symbolic.of_netlist man nl in
  Bdd.set_budget man (Some (B.create ~max_steps:25 ()));
  let partial, st_partial = Fsm.Reach.reachable sym in
  (match st_partial.Fsm.Reach.fixpoint with
   | Fsm.Reach.Complete -> Alcotest.fail "25 steps should not complete gray6"
   | Fsm.Reach.Partial { frontier; reason } ->
     Util.check Alcotest.string "reason" "steps" (B.reason_label reason);
     Util.checkb "stopped before the fixpoint"
       (st_partial.Fsm.Reach.iterations < st_full.Fsm.Reach.iterations);
     (* The exhausted budget keeps raising on every subsequent tick, so
        it must be cleared before resuming. *)
     Bdd.set_budget man None;
     let resumed, st_resumed =
       Fsm.Reach.reachable ~resume:(partial, frontier) sym
     in
     Util.checkb "resumed run completes"
       (st_resumed.Fsm.Reach.fixpoint = Fsm.Reach.Complete);
     Util.checkb "partial is an under-approximation"
       (Bdd.leq man partial resumed);
     Util.check (Alcotest.float 0.0) "resume reaches the same state count"
       st_full.Fsm.Reach.reached_states st_resumed.Fsm.Reach.reached_states;
     Util.checkb "iterations split across the two segments"
       (st_partial.Fsm.Reach.iterations + st_resumed.Fsm.Reach.iterations
        >= st_full.Fsm.Reach.iterations))

let equiv_refuses_partial_verdict () =
  let man = Bdd.create () in
  let nl =
    (Option.get (Circuits.Registry.find "tlc")).Circuits.Registry.build ()
  in
  Bdd.set_budget man (Some (B.create ~max_steps:10 ()));
  let r =
    match Fsm.Equiv.check_self man nl with
    | _ -> false
    | exception Bdd.Budget_exhausted _ -> true
  in
  Bdd.set_budget man None;
  Util.checkb "no verdict on a partial traversal" r;
  (* Unbudgeted, the same manager still reaches the right verdict. *)
  Util.checkb "clean retry is Equivalent"
    (match Fsm.Equiv.check_self man nl with
     | Fsm.Equiv.Equivalent _ -> true
     | _ -> false)

(* ----- capture: DNF rows instead of aborts ----- *)

let capture_dnf_differential () =
  let bench = Option.get (Circuits.Registry.find "gray6") in
  let base =
    Harness.Capture.(
      default_config |> with_max_calls 12 |> with_lower_bound_cubes 50)
  in
  let free = Harness.Capture.run_bench ~config:base bench in
  (* A 1-step budget starves every minimizer that does kernel work; the
     references (f_orig at least) always complete, so every call is
     still recorded — with DNF entries in place of the starved rows. *)
  let starved_cfg = Harness.Capture.with_step_budget (Some 1) base in
  let starved = Harness.Capture.run_bench ~config:starved_cfg bench in
  Util.checki "same calls captured" (List.length free) (List.length starved);
  Util.checkb "something DNF'd"
    (List.exists
       (fun (c : Harness.Capture.call) -> c.Harness.Capture.dnf <> [])
       starved);
  Util.checkb "nothing DNFs without a budget"
    (List.for_all
       (fun (c : Harness.Capture.call) -> c.Harness.Capture.dnf = [])
       free);
  List.iter2
    (fun (a : Harness.Capture.call) (b : Harness.Capture.call) ->
       Util.check Alcotest.string "bench" a.bench b.bench;
       Util.checki "iteration" a.iteration b.iteration;
       Util.checki "f_size" a.f_size b.f_size;
       (* every name is accounted for: a size row or a DNF row *)
       List.iter
         (fun (name, size) ->
            match List.assoc_opt name b.sizes with
            | Some s ->
              (* completed rows are byte-identical to the free run's *)
              Util.checki ("size of " ^ name) size s
            | None ->
              Util.checkb (name ^ " is a DNF row")
                (List.mem_assoc name b.dnf))
         a.sizes;
       Util.checki "rows + DNFs = catalogue"
         (List.length a.sizes)
         (List.length b.sizes + List.length b.dnf))
    free starved;
  (* Aggregation, rendering and the JSON baseline all tolerate DNFs. *)
  let names = Harness.Capture.minimizer_names base in
  let t = Harness.Stats.aggregate ~names Harness.Stats.All starved in
  Util.checkb "aggregate counts DNFs"
    (List.exists (fun (r : Harness.Stats.row) -> r.Harness.Stats.dnf > 0)
       t.Harness.Stats.rows);
  Util.checkb "table3 marks DNFs"
    (Util.contains (Harness.Tables.render_table3 ~names starved) "DNF:");
  Util.checkb "csv marks DNFs"
    (Util.contains (Harness.Tables.calls_to_csv ~names starved) ",DNF")

let capture_driver_dnf () =
  let bench = Option.get (Circuits.Registry.find "gray6") in
  let config =
    Harness.Capture.(
      default_config |> with_lower_bound_cubes 50
      |> with_node_budget (Some 16))
  in
  let r = Harness.Capture.run_bench_stats ~config bench in
  Util.checkb "driver DNF recorded"
    (r.Harness.Capture.dnf = Some "nodes");
  (* The suite keeps going and reports the row instead of aborting. *)
  let suite = Harness.Capture.run_suite_stats ~config [ bench ] in
  Util.checkb "suite DNF row"
    (suite.Harness.Capture.suite_dnf = [ ("gray6", "nodes") ])

let capture_unbudgeted_identical () =
  (* The no-budget acceptance criterion: a configuration with the
     budgets left at None produces byte-identical CSV to the seed
     harness path (same code path, no budget objects installed). *)
  let bench = Option.get (Circuits.Registry.find "bcd2") in
  let config =
    Harness.Capture.(
      default_config |> with_max_calls 10 |> with_lower_bound_cubes 50)
  in
  let names = Harness.Capture.minimizer_names config in
  let a = Harness.Capture.run_bench ~config bench in
  let b = Harness.Capture.run_bench ~config bench in
  Util.check Alcotest.string "two runs, same CSV"
    (Harness.Tables.calls_to_csv ~names a)
    (Harness.Tables.calls_to_csv ~names b)

let cancelled_bench_short_circuits () =
  let bench = Option.get (Circuits.Registry.find "gray6") in
  let t = Exec.Cancel.create () in
  Exec.Cancel.cancel t;
  let r = Harness.Capture.run_bench_stats ~cancel:t bench in
  Util.checkb "no calls" (r.Harness.Capture.calls = []);
  Util.checkb "marked cancelled" (r.Harness.Capture.dnf = Some "cancelled")

let suite =
  [
    Alcotest.test_case "budget basics" `Quick budget_basics;
    Alcotest.test_case "step budget trips" `Quick step_budget_trips;
    Alcotest.test_case "cancellation trips" `Quick cancellation_trips;
    Alcotest.test_case "time budget trips" `Quick time_budget_trips;
    Alcotest.test_case "deadline checked at entry" `Quick
      deadline_checked_at_entry;
    Alcotest.test_case "cancellation checked at entry" `Quick
      cancel_checked_at_entry;
    Alcotest.test_case "node budget trips" `Quick node_budget_trips;
    Alcotest.test_case "unlimited budget inert" `Quick
      unlimited_budget_never_trips;
    consistency_after_abort;
    schedule_best_so_far;
    Alcotest.test_case "registry run installs budget" `Quick
      registry_run_installs_budget;
    Alcotest.test_case "best skips exhausted entries" `Quick
      best_skips_exhausted;
    Alcotest.test_case "best re-raises when all exhaust" `Quick
      best_raises_when_all_exhaust;
    Alcotest.test_case "reach partial + resume" `Quick reach_partial_resume;
    Alcotest.test_case "equiv refuses partial verdicts" `Quick
      equiv_refuses_partial_verdict;
    Alcotest.test_case "capture DNF differential" `Quick
      capture_dnf_differential;
    Alcotest.test_case "capture driver DNF" `Quick capture_driver_dnf;
    Alcotest.test_case "capture unbudgeted identical" `Quick
      capture_unbudgeted_identical;
    Alcotest.test_case "cancelled bench short-circuits" `Quick
      cancelled_bench_short_circuits;
  ]
