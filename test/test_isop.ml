(* The Minato-Morreale ISOP extension: interval containment,
   irredundancy, agreement between the cube list and its function. *)

module I = Minimize.Ispec
module Isop = Minimize.Isop

let man = Util.man
let nvars = 5

let in_interval =
  Util.qtest ~count:250 "ISOP function lies in the interval (is a cover)"
    Util.gen_instance
    (fun desc ->
       let s = Util.build_ispec_nonzero desc in
       let r = Isop.compute man s in
       Util.tt_is_cover ~nvars s r.Isop.cover
       && Bdd.equal r.Isop.cover (Isop.cover_only man s))

let cubes_match_function =
  Util.qtest ~count:250 "the cube list's disjunction equals the function"
    Util.gen_instance
    (fun desc ->
       let s = Util.build_ispec_nonzero desc in
       let r = Isop.compute man s in
       let disj =
         Bdd.disj man (List.map (Bdd.Cube.of_cube man) r.Isop.cubes)
       in
       Bdd.equal disj r.Isop.cover)

let irredundant =
  Util.qtest ~count:250 "the cover is irredundant" Util.gen_instance
    (fun desc ->
       let s = Util.build_ispec_nonzero desc in
       let r = Isop.compute man s in
       Isop.is_irredundant man ~lower:(I.onset man s) r)

let prime_cubes =
  Util.qtest ~count:150 "every cube is prime with respect to the upper bound"
    Util.gen_instance
    (fun desc ->
       let s = Util.build_ispec_nonzero desc in
       let upper = Bdd.dor man s.I.f (Bdd.compl s.I.c) in
       let r = Isop.compute man s in
       List.for_all
         (fun cube ->
            (* dropping any literal must leave the interval *)
            List.for_all
              (fun lit ->
                 let expanded =
                   Bdd.Cube.of_cube man (List.filter (( <> ) lit) cube)
                 in
                 not (Bdd.leq man expanded upper))
              cube)
         r.Isop.cubes)

let exact_on_full_care =
  Util.qtest ~count:150 "c = 1: the cover is f itself" Util.gen_instance
    (fun desc ->
       let f, _ = Util.build_instance desc in
       let s = I.make ~f ~c:(Bdd.one man) in
       Bdd.equal (Isop.compute man s).Isop.cover f)

let degenerate_cases () =
  let zero = Bdd.zero man and one = Bdd.one man in
  let r = Isop.of_interval man ~lower:zero ~upper:zero in
  Util.checki "empty interval: no cubes" 0 (List.length r.Isop.cubes);
  Util.checkb "empty cover" (Bdd.is_zero r.Isop.cover);
  let r = Isop.of_interval man ~lower:one ~upper:one in
  Alcotest.(check (list (list (pair int bool)))) "tautology" [ [] ] r.Isop.cubes;
  Util.checkb "reversed interval rejected"
    (match Isop.of_interval man ~lower:one ~upper:zero with
     | exception Invalid_argument _ -> true
     | _ -> false)

let bcd_example () =
  (* Segment 'e' of the 7-segment decoder: with BCD don't cares the ISOP
     needs very few cubes. *)
  let on = [ 0; 2; 6; 8 ] in
  let f =
    Logic.Truth_table.to_bdd man
      (Logic.Truth_table.create 4 (fun m -> List.mem m on))
  in
  let c =
    Logic.Truth_table.to_bdd man (Logic.Truth_table.create 4 (fun m -> m < 10))
  in
  let s = I.make ~f ~c in
  let r = Isop.compute man s in
  Util.checkb "is cover" (I.is_cover man s r.Isop.cover);
  Util.checkb "few cubes" (List.length r.Isop.cubes <= 3)

let registry_entry =
  Util.qtest ~count:100 "the isop registry entry returns covers"
    Util.gen_instance
    (fun desc ->
       let s = Util.build_ispec_nonzero desc in
       match Minimize.Registry.find "isop" with
       | None -> false
       | Some e ->
         Util.tt_is_cover ~nvars s
           (e.Minimize.Registry.run (Minimize.Ctx.of_man man) s))

let zdd_bridge =
  Util.qtest ~count:150 "cube list <-> ZDD literal encoding round trip"
    Util.gen_instance
    (fun desc ->
       let s = Util.build_ispec_nonzero desc in
       let r = Isop.compute man s in
       let zman = Bdd.Zdd.new_man () in
       let z = Isop.zdd_of_cover zman r in
       (* distinct cubes in = sets out *)
       let distinct =
         List.sort_uniq compare (List.map (List.sort compare) r.Isop.cubes)
       in
       Bdd.Zdd.count zman z = List.length distinct
       && List.sort compare
            (List.map
               (fun set -> List.sort compare (Isop.cube_of_set set))
               (Bdd.Zdd.to_list zman z))
          = distinct)

let suite =
  [
    in_interval;
    cubes_match_function;
    irredundant;
    prime_cubes;
    exact_on_full_care;
    Alcotest.test_case "degenerate intervals" `Quick degenerate_cases;
    Alcotest.test_case "BCD decoder segment" `Quick bcd_example;
    registry_entry;
    zdd_bridge;
  ]
