(* Test entry point: one Alcotest run over all suites. *)

let () =
  Alcotest.run "bddmin"
    [
      ("bdd", Test_bdd.suite);
      ("bdd-laws", Test_bdd_laws.suite);
      ("bdd-engine", Test_bdd_engine.suite);
      ("logic", Test_logic.suite);
      ("pla", Test_pla.suite);
      ("reorder", Test_reorder.suite);
      ("cbdd", Test_cbdd.suite);
      ("store", Test_store.suite);
      ("zdd", Test_zdd.suite);
      ("add", Test_add.suite);
      ("ispec", Test_ispec.suite);
      ("matching", Test_matching.suite);
      ("sibling", Test_sibling.suite);
      ("level", Test_level.suite);
      ("graph", Test_graph.suite);
      ("exact+bounds", Test_exact_bounds.suite);
      ("schedule+registry", Test_schedule.suite);
      ("vector", Test_vector.suite);
      ("isop", Test_isop.suite);
      ("netlist", Test_netlist.suite);
      ("blif", Test_blif.suite);
      ("symbolic+image", Test_symbolic.suite);
      ("qsched", Test_qsched.suite);
      ("reach+equiv", Test_reach_equiv.suite);
      ("explicit", Test_explicit.suite);
      ("synth", Test_synth.suite);
      ("faults", Test_faults.suite);
      ("invariant", Test_invariant.suite);
      ("circuits", Test_circuits.suite);
      ("harness", Test_harness.suite);
      ("obs", Test_obs.suite);
      ("metrics+flight", Test_metrics.suite);
      ("exec", Test_exec.suite);
      ("parallel", Test_parallel.suite);
      ("budget", Test_budget.suite);
      ("serve", Test_serve.suite);
    ]
