(* Truth tables and the Boolean expression language. *)

module Tt = Logic.Truth_table
module Bx = Logic.Bexpr

let man = Util.man

let tt_basics () =
  let t = Tt.var 3 1 in
  Util.checki "nvars" 3 (Tt.nvars t);
  Util.checki "points" 8 (Tt.points t);
  Util.checki "ones" 4 (Tt.count_ones t);
  Util.checkb "get" (Tt.get t 2);
  Util.checkb "get" (not (Tt.get t 1));
  Util.checkb "const" (Tt.is_const (Tt.const 3 true) = Some true);
  Util.checkb "not const" (Tt.is_const t = None)

let tt_ops =
  Util.qtest ~count:200 "truth table ops are pointwise"
    QCheck2.Gen.(
      let* n = int_range 0 6 in
      let* s = int_bound 0xFFFF in
      return (n, s))
    (fun (n, s) ->
       let st = Random.State.make [| s |] in
       let a = Tt.create n (fun _ -> Random.State.bool st) in
       let b = Tt.create n (fun _ -> Random.State.bool st) in
       let ok op top =
         let r = top a b in
         List.for_all
           (fun m -> Tt.get r m = op (Tt.get a m) (Tt.get b m))
           (List.init (Tt.points a) Fun.id)
       in
       ok ( && ) Tt.band && ok ( || ) Tt.bor && ok ( <> ) Tt.bxor
       && ok (fun x y -> x && not y) Tt.bdiff
       && Tt.equal (Tt.bnot (Tt.bnot a)) a)

let tt_bdd_roundtrip =
  Util.qtest ~count:200 "truth table <-> BDD round trip"
    QCheck2.Gen.(
      let* n = int_range 0 6 in
      let* s = int_bound 0xFFFF in
      return (n, s))
    (fun (n, s) ->
       let st = Random.State.make [| s; n |] in
       let t = Tt.create n (fun _ -> Random.State.bool st) in
       Tt.equal t (Tt.of_bdd man ~nvars:n (Tt.to_bdd man t)))

let paper_leaf_order () =
  (* "0111" over two variables is x0 + x1 (leftmost leaf = both 0). *)
  let t = Tt.of_bits "0111" in
  let expected = Tt.bor (Tt.var 2 0) (Tt.var 2 1) in
  Util.checkb "x0+x1" (Tt.equal t expected);
  Alcotest.(check string) "pp round trip" "0111" (Format.asprintf "%a" Tt.pp t)

let paper_instance_parse () =
  let f, c = Tt.paper_instance "d1 01" in
  Util.checkb "care" (Tt.equal c (Tt.of_bits "0111"));
  Util.checkb "onset" (Tt.equal (Tt.band f c) (Tt.of_bits "0101"))

let bad_inputs () =
  Alcotest.check_raises "length" (Invalid_argument
    "Truth_table.of_bits: length is not a power of two")
    (fun () -> ignore (Tt.of_bits "011"));
  Alcotest.check_raises "chars" (Invalid_argument
    "Truth_table.of_bits: expected 0 or 1")
    (fun () -> ignore (Tt.of_bits "01d1"))

let parse_ok s expected () =
  match Bx.parse s with
  | Ok e -> Alcotest.(check string) s expected (Bx.to_string e)
  | Error m -> Alcotest.fail m

let parse_error () =
  Util.checkb "unbalanced" (Result.is_error (Bx.parse "(a & b"));
  Util.checkb "bad char" (Result.is_error (Bx.parse "a @ b"));
  Util.checkb "trailing" (Result.is_error (Bx.parse "a b"));
  Util.checkb "empty" (Result.is_error (Bx.parse ""))

let precedence () =
  let e = Bx.parse_exn "a | b & c ^ d" in
  (* & tighter than ^ tighter than | *)
  Alcotest.(check string) "prec" "a | b & c ^ d" (Bx.to_string e);
  match e with
  | Bx.Or (Bx.Var "a", Bx.Xor (Bx.And (Bx.Var "b", Bx.Var "c"), Bx.Var "d")) ->
    ()
  | _ -> Alcotest.fail "wrong parse tree"

let eval_vs_bdd =
  Util.qtest ~count:100 "expression eval agrees with its BDD"
    QCheck2.Gen.(int_bound 0xFFFF)
    (fun seed ->
       let st = Random.State.make [| seed |] in
       (* random expression over a,b,c *)
       let rec gen d =
         if d = 0 then
           match Random.State.int st 4 with
           | 0 -> Bx.Var "a"
           | 1 -> Bx.Var "b"
           | 2 -> Bx.Var "c"
           | _ -> Bx.Const (Random.State.bool st)
         else
           match Random.State.int st 6 with
           | 0 -> Bx.Not (gen (d - 1))
           | 1 -> Bx.And (gen (d - 1), gen (d - 1))
           | 2 -> Bx.Or (gen (d - 1), gen (d - 1))
           | 3 -> Bx.Xor (gen (d - 1), gen (d - 1))
           | 4 -> Bx.Imply (gen (d - 1), gen (d - 1))
           | _ -> Bx.Iff (gen (d - 1), gen (d - 1))
       in
       let e = gen 4 in
       let local = Bdd.create () in
       let names = [ "a"; "b"; "c" ] in
       let env name =
         let rec idx i = function
           | [] -> assert false
           | n :: rest -> if n = name then i else idx (i + 1) rest
         in
         Bdd.ithvar local (idx 0 names)
       in
       let g = Bx.to_bdd local ~env e in
       List.for_all
         (fun m ->
            let assign name =
              let rec idx i = function
                | [] -> assert false
                | n :: rest -> if n = name then i else idx (i + 1) rest
              in
              (m lsr idx 0 names) land 1 = 1
            in
            Bx.eval e assign = Bdd.eval g (fun v -> (m lsr v) land 1 = 1))
         (List.init 8 Fun.id))

let pp_parse_roundtrip =
  Util.qtest ~count:100 "printer output reparses to the same tree"
    QCheck2.Gen.(int_bound 0xFFFF)
    (fun seed ->
       let st = Random.State.make [| seed; 77 |] in
       let rec gen d =
         if d = 0 then
           match Random.State.int st 3 with
           | 0 -> Bx.Var "x"
           | 1 -> Bx.Var "y"
           | _ -> Bx.Const true
         else
           match Random.State.int st 6 with
           | 0 -> Bx.Not (gen (d - 1))
           | 1 -> Bx.And (gen (d - 1), gen (d - 1))
           | 2 -> Bx.Or (gen (d - 1), gen (d - 1))
           | 3 -> Bx.Xor (gen (d - 1), gen (d - 1))
           | 4 -> Bx.Imply (gen (d - 1), gen (d - 1))
           | _ -> Bx.Iff (gen (d - 1), gen (d - 1))
       in
       let e = gen 5 in
       Bx.parse_exn (Bx.to_string e) = e)

let vars_order () =
  let e = Bx.parse_exn "b & (a | b) ^ c" in
  Alcotest.(check (list string)) "first appearance" [ "b"; "a"; "c" ]
    (Bx.vars e)

let to_bdd_auto_mapping () =
  let e = Bx.parse_exn "p => q" in
  let local = Bdd.create () in
  let g, mapping = Bx.to_bdd_auto local e in
  Alcotest.(check (list (pair string int))) "mapping" [ ("p", 0); ("q", 1) ]
    mapping;
  Util.checkb "implication" (Bdd.equal g
    (Bdd.imply local (Bdd.ithvar local 0) (Bdd.ithvar local 1)))

let suite =
  [
    Alcotest.test_case "truth table basics" `Quick tt_basics;
    tt_ops;
    tt_bdd_roundtrip;
    Alcotest.test_case "paper leaf order" `Quick paper_leaf_order;
    Alcotest.test_case "paper instance" `Quick paper_instance_parse;
    Alcotest.test_case "of_bits errors" `Quick bad_inputs;
    Alcotest.test_case "parse imply" `Quick
      (parse_ok "a=>b | c" "a => b | c");
    Alcotest.test_case "parse not" `Quick (parse_ok "!(a&b)" "!(a & b)");
    Alcotest.test_case "parse errors" `Quick parse_error;
    Alcotest.test_case "precedence" `Quick precedence;
    eval_vs_bdd;
    pp_parse_roundtrip;
    Alcotest.test_case "vars order" `Quick vars_order;
    Alcotest.test_case "to_bdd_auto" `Quick to_bdd_auto_mapping;
  ]
