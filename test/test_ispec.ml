(* Incompletely specified functions: cover/i-cover algebra, the trivial
   filter, onset fractions, printing. *)

module I = Minimize.Ispec
module Tt = Logic.Truth_table

let man = Util.man
let nvars = 5

let cover_definition =
  Util.qtest ~count:300 "is_cover matches the truth-table definition"
    QCheck2.Gen.(
      let* a = Util.gen_instance in
      let* g = int_bound 0xFFFFF in
      return (a, g))
    (fun (desc, gseed) ->
       let s = Util.build_ispec_nonzero desc in
       let st = Random.State.make [| gseed |] in
       let g = Tt.to_bdd man (Tt.create nvars (fun _ -> Random.State.bool st)) in
       I.is_cover man s g = Util.tt_is_cover ~nvars s g)

let f_is_always_cover =
  Util.qtest ~count:200 "f, onset and f + !c all cover [f; c]"
    Util.gen_instance
    (fun desc ->
       let s = Util.build_ispec_nonzero desc in
       I.is_cover man s s.I.f
       && I.is_cover man s (I.onset man s)
       && I.is_cover man s (Bdd.dor man s.I.f (Bdd.compl s.I.c)))

let i_cover_reflexive_transitive =
  Util.qtest ~count:200 "i-cover is reflexive and transitive"
    QCheck2.Gen.(
      let* a = Util.gen_instance in
      let* b = Util.gen_instance in
      let* c = Util.gen_instance in
      return (a, b, c))
    (fun (a, b, c) ->
       let s1 = Util.build_ispec_nonzero a
       and s2 = Util.build_ispec_nonzero b
       and s3 = Util.build_ispec_nonzero c in
       I.is_i_cover man s1 s1
       && ((not (I.is_i_cover man s1 s2 && I.is_i_cover man s2 s3))
           || I.is_i_cover man s1 s3))

let i_cover_means_covers_transfer =
  Util.qtest ~count:200 "covers of an i-cover cover the i-covered"
    QCheck2.Gen.(
      let* a = Util.gen_instance in
      let* b = Util.gen_instance in
      let* g = int_bound 0xFFFFF in
      return (a, b, g))
    (fun (a, b, gseed) ->
       let s1 = Util.build_ispec_nonzero a
       and s2 = Util.build_ispec_nonzero b in
       if not (I.is_i_cover man s1 s2) then true
       else begin
         let st = Random.State.make [| gseed; 11 |] in
         (* a random cover of s1: onset plus random DC points *)
         let dc = I.dc man s1 in
         let noise =
           Tt.to_bdd man (Tt.create nvars (fun _ -> Random.State.bool st))
         in
         let g =
           Bdd.dor man (I.onset man s1) (Bdd.dand man dc noise)
         in
         I.is_cover man s1 g && I.is_cover man s2 g
       end)

let equal_ispec_and_keys =
  Util.qtest ~count:300 "canonical keys identify semantic equality"
    QCheck2.Gen.(
      let* a = Util.gen_instance in
      let* b = Util.gen_instance in
      return (a, b))
    (fun (a, b) ->
       let s1 = Util.build_ispec_nonzero a
       and s2 = Util.build_ispec_nonzero b in
       (I.canonical_key man s1 = I.canonical_key man s2)
       = I.equal_ispec man s1 s2)

let compl_covers =
  Util.qtest ~count:200 "covers of the complement are complements of covers"
    Util.gen_instance
    (fun desc ->
       let s = Util.build_ispec_nonzero desc in
       let g = Bdd.constrain man s.I.f s.I.c in
       I.is_cover man (I.compl s) (Bdd.compl g))

let interval_reduction =
  Util.qtest ~count:200 "of_interval: covers are exactly the interval members"
    QCheck2.Gen.(
      let* a = Util.gen_instance in
      let* b = Util.gen_instance in
      return (a, b))
    (fun (a, b) ->
       let f1, _ = Util.build_instance a and f2, _ = Util.build_instance b in
       let lower = Bdd.dand man f1 f2 and upper = Bdd.dor man f1 f2 in
       let s = I.of_interval man ~lower ~upper in
       I.is_cover man s lower && I.is_cover man s upper
       && I.is_cover man s f1 && I.is_cover man s f2
       && ((not (Bdd.is_zero (Bdd.diff man upper lower)))
           || Bdd.equal lower upper))

let interval_rejects_empty () =
  let v = Bdd.ithvar man 0 in
  Util.checkb "empty interval"
    (match I.of_interval man ~lower:v ~upper:(Bdd.compl v) with
     | exception Invalid_argument _ -> true
     | _ -> false)

let trivial_filter =
  Util.qtest ~count:300 "trivial = cube care or contained care"
    Util.gen_instance
    (fun desc ->
       let s = Util.build_ispec_nonzero desc in
       I.trivial man s
       = (Bdd.Cube.is_cube man s.I.c
          || Bdd.leq man s.I.c s.I.f
          || Bdd.leq man s.I.c (Bdd.compl s.I.f)))

let onset_fraction =
  Util.qtest ~count:200 "c_onset_fraction counts care minterms over the support"
    Util.gen_instance
    (fun desc ->
       let s = Util.build_ispec_nonzero desc in
       let vars =
         List.sort_uniq compare
           (Bdd.support man s.I.f @ Bdd.support man s.I.c)
       in
       let n = List.length vars in
       if n = 0 then true
       else
         let expected =
           Bdd.sat_count man s.I.c ~nvars:n /. (2.0 ** float_of_int n)
         in
         abs_float (I.c_onset_fraction man s -. expected) < 1e-9)

let pp_small () =
  let f, c = Tt.paper_instance "d1 01" in
  let s = I.make ~f:(Tt.to_bdd man f) ~c:(Tt.to_bdd man c) in
  Alcotest.(check string) "round trip" "d101"
    (Format.asprintf "%a" (I.pp man) s)

let suite =
  [
    cover_definition;
    f_is_always_cover;
    i_cover_reflexive_transitive;
    i_cover_means_covers_transfer;
    equal_ispec_and_keys;
    compl_covers;
    interval_reduction;
    Alcotest.test_case "interval rejects empty" `Quick interval_rejects_empty;
    trivial_filter;
    onset_fraction;
    Alcotest.test_case "paper-notation printing" `Quick pp_small;
  ]
