(* Benchmark circuit generators: behavioural checks via simulation and
   known reachable-set sizes. *)

module N = Fsm.Netlist

let word_of outs prefix =
  List.fold_left
    (fun acc (n, b) ->
       let pl = String.length prefix in
       if b && String.length n > pl && String.sub n 0 pl = prefix then
         match int_of_string_opt (String.sub n pl (String.length n - pl)) with
         | Some i -> acc lor (1 lsl i)
         | None -> acc
       else acc)
    0 outs

let gray_code_steps () =
  (* consecutive Gray outputs differ in exactly one bit *)
  let nl = Circuits.Gray.make ~width:5 in
  let st = ref (N.sim_initial nl) in
  let prev = ref None in
  for _ = 1 to 40 do
    let outs, st' = N.sim_step nl !st (fun _ -> true) in
    let g = word_of outs "g" in
    (match !prev with
     | Some p ->
       let diff = p lxor g in
       Util.checkb "one bit flips" (diff <> 0 && diff land (diff - 1) = 0)
     | None -> ());
    prev := Some g;
    st := st'
  done

let lfsr_period =
  Util.qtest ~count:6 "maximal LFSR has period 2^w - 1"
    QCheck2.Gen.(int_range 3 8)
    (fun width ->
       let nl = Circuits.Lfsr.make ~width () in
       let st = ref (N.sim_initial nl) in
       let step () =
         let outs, st' = N.sim_step nl !st (fun _ -> false) in
         st := st';
         word_of outs "q"
       in
       let start = step () in
       let rec go i =
         let v = step () in
         if v = start then i else if i > 1 lsl width then -1 else go (i + 1)
       in
       start = 1 && go 1 = (1 lsl width) - 1)

let multiplier_multiplies =
  Util.qtest ~count:60 "serial multiplier computes a*m"
    QCheck2.Gen.(
      let* a = int_bound 15 in
      let* m = int_bound 15 in
      return (a, m))
    (fun (a, m) ->
       let nl = Circuits.Mult.make ~width:4 in
       let st = ref (N.sim_initial nl) in
       let env ~start name =
         if name = "start" then start
         else
           let v = if name.[0] = 'a' then a else m in
           let idx = int_of_string (String.sub name 1 (String.length name - 1)) in
           (v lsr idx) land 1 = 1
       in
       (* pulse start, then run until not busy *)
       let _, st1 = N.sim_step nl !st (env ~start:true) in
       st := st1;
       let rec run i =
         let outs, st' = N.sim_step nl !st (env ~start:false) in
         st := st';
         if List.assoc "busy" outs && i < 20 then run (i + 1) else outs
       in
       let outs = run 0 in
       word_of outs "p" = a * m)

let minmax_tracks =
  Util.qtest ~count:40 "minmax tracks running extremes"
    QCheck2.Gen.(list_size (int_range 1 10) (int_bound 15))
    (fun stream ->
       let nl = Circuits.Minmax.make ~width:4 in
       let st = ref (N.sim_initial nl) in
       let feed d =
         let env name =
           if name = "clear" then false
           else
             let idx = int_of_string (String.sub name 1 (String.length name - 1)) in
             (d lsr idx) land 1 = 1
         in
         let outs, st' = N.sim_step nl !st env in
         st := st';
         outs
       in
       let final = List.fold_left (fun _ d -> feed d) [] stream in
       ignore final;
       (* read registers after the whole stream via one more step *)
       let outs = feed (List.hd stream) in
       let mn = word_of outs "min" and mx = word_of outs "max" in
       mn = List.fold_left min 15 stream && mx = List.fold_left max 0 stream)

let tlc_safety () =
  (* never both directions green; farm light eventually green when a car
     waits *)
  let nl = Circuits.Tlc.make () in
  let st = ref (N.sim_initial nl) in
  let farm_green = ref false in
  for _ = 1 to 60 do
    let outs, st' = N.sim_step nl !st (fun _ -> true) in
    st := st';
    let hg = List.assoc "hl_green" outs and fg = List.assoc "fl_green" outs in
    Util.checkb "not both green" (not (hg && fg));
    Util.checkb "red opposite green"
      ((not hg) || List.assoc "fl_red" outs);
    if fg then farm_green := true
  done;
  Util.checkb "farm served" !farm_green

let arbiter_properties =
  Util.qtest ~count:50 "arbiter: grants only requests, at most one"
    QCheck2.Gen.(int_bound 0xFFFF)
    (fun seed ->
       let nl = Circuits.Arbiter.make ~clients:4 in
       let rng = Random.State.make [| seed |] in
       let st = ref (N.sim_initial nl) in
       let ok = ref true in
       for _ = 1 to 12 do
         let reqs = Array.init 4 (fun _ -> Random.State.bool rng) in
         let env name =
           let idx = int_of_string (String.sub name 3 (String.length name - 3)) in
           reqs.(idx)
         in
         let outs, st' = N.sim_step nl !st env in
         st := st';
         let grants =
           List.filter
             (fun (n, b) -> b && String.length n > 3 && String.sub n 0 3 = "gnt")
             outs
         in
         (* at most one grant *)
         if List.length grants > 1 then ok := false;
         (* grants only to requesters *)
         List.iter
           (fun (n, _) ->
              let idx = int_of_string (String.sub n 3 (String.length n - 3)) in
              if not reqs.(idx) then ok := false)
           grants;
         (* some request implies some grant *)
         if Array.exists Fun.id reqs && grants = [] then ok := false
       done;
       !ok)

let cbp_adds =
  Util.qtest ~count:60 "pipelined adder produces a+b after the fill"
    QCheck2.Gen.(
      let* a = int_bound 255 in
      let* b = int_bound 255 in
      return (a, b))
    (fun (a, b) ->
       let nl = Circuits.Cbp.make ~width:8 ~stages:2 in
       let st = ref (N.sim_initial nl) in
       let env name =
         let v = if name.[0] = 'a' then a else b in
         let idx = int_of_string (String.sub name 1 (String.length name - 1)) in
         (v lsr idx) land 1 = 1
       in
       (* hold inputs steady for the pipeline depth *)
       let outs = ref [] in
       for _ = 1 to 2 do
         let o, st' = N.sim_step nl !st env in
         outs := o;
         st := st'
       done;
       let sum = word_of !outs "s" in
       let cout = List.assoc "cout" !outs in
       sum = (a + b) land 255 && cout = (a + b > 255))

let random_fsm_deterministic () =
  let p = { Circuits.Random_fsm.latches = 5; inputs = 2; depth = 3; seed = 7 } in
  let a = Circuits.Random_fsm.make p and b = Circuits.Random_fsm.make p in
  let man = Bdd.create () in
  match Fsm.Equiv.check man a b with
  | Fsm.Equiv.Equivalent _ -> ()
  | Fsm.Equiv.Not_equivalent _ -> Alcotest.fail "same seed, different FSM"

let registry_sane () =
  Util.checki "fifteen benchmarks" 15 (List.length Circuits.Registry.all);
  List.iter
    (fun (b : Circuits.Registry.bench) ->
       let nl = b.Circuits.Registry.build () in
       Util.checkb (b.Circuits.Registry.name ^ " nonempty")
         (N.num_latches nl > 0))
    Circuits.Registry.all;
  Util.checkb "quick subset"
    (List.for_all
       (fun (b : Circuits.Registry.bench) ->
          List.memq b Circuits.Registry.all)
       Circuits.Registry.quick)

let suite =
  [
    Alcotest.test_case "gray code single-bit steps" `Quick gray_code_steps;
    lfsr_period;
    multiplier_multiplies;
    minmax_tracks;
    Alcotest.test_case "tlc safety and liveness" `Quick tlc_safety;
    arbiter_properties;
    cbp_adds;
    Alcotest.test_case "random FSM deterministic" `Quick
      random_fsm_deterministic;
    Alcotest.test_case "registry sanity" `Quick registry_sane;
  ]
