(* The §3.4 windowed schedule and the minimizer registry. *)

module I = Minimize.Ispec
module Sch = Minimize.Schedule
module R = Minimize.Registry

let man = Util.man
let nvars = 5

let schedule_covers =
  Util.qtest ~count:250 "schedule returns a cover (default parameters)"
    Util.gen_instance
    (fun desc ->
       let s = Util.build_ispec_nonzero desc in
       Util.tt_is_cover ~nvars s (Sch.run man s))

let schedule_param_space =
  Util.qtest ~count:100 "schedule returns covers across parameter space"
    QCheck2.Gen.(
      let* desc = Util.gen_instance in
      let* window = int_range 1 6 in
      let* stop = int_range 0 8 in
      let* levels = bool in
      return (desc, window, stop, levels))
    (fun (desc, window, stop, levels) ->
       let s = Util.build_ispec_nonzero desc in
       let params =
         {
           Sch.default_params with
           Sch.window_size = window;
           stop_top_down = stop;
           use_level_matching = levels;
         }
       in
       Util.tt_is_cover ~nvars s (Sch.run man ~params s))

let schedule_rejects_bad_params () =
  let s = Util.random_ispec_nonzero 3 in
  Alcotest.check_raises "window_size 0"
    (Invalid_argument "Schedule.run: window_size")
    (fun () ->
       ignore
         (Sch.run man
            ~params:{ Sch.default_params with Sch.window_size = 0 }
            s));
  let s0 = I.make ~f:(Bdd.ithvar man 0) ~c:(Bdd.zero man) in
  Alcotest.check_raises "empty care"
    (Invalid_argument "Schedule.run: empty care set")
    (fun () -> ignore (Sch.run man s0))

let registry_complete () =
  let names = R.names R.paper in
  Alcotest.(check (list string)) "paper entries"
    [ "const"; "restr"; "osm_td"; "osm_nv"; "osm_cp"; "osm_bt"; "tsm_td";
      "tsm_cp"; "opt_lv"; "f_orig"; "f_and_c"; "f_or_nc" ]
    names;
  Util.checki "all = paper + sched" (List.length R.paper + 1)
    (List.length R.all);
  Util.checkb "find" (R.find "osm_bt" <> None);
  Util.checkb "find unknown" (R.find "nope" = None);
  Util.checkb "proper excludes references"
    (List.for_all
       (fun (e : R.entry) -> e.R.kind <> R.Reference)
       R.proper)

let registry_runs_cover =
  Util.qtest ~count:150 "every registry entry returns a cover"
    Util.gen_instance
    (fun desc ->
       let s = Util.build_ispec_nonzero desc in
       List.for_all
         (fun (e : R.entry) -> Util.tt_is_cover ~nvars s (e.run (Minimize.Ctx.of_man man) s))
         R.all)

let best_is_minimal =
  Util.qtest ~count:150 "Registry.best returns the smallest entry"
    Util.gen_instance
    (fun desc ->
       let s = Util.build_ispec_nonzero desc in
       let _, g = R.best (Minimize.Ctx.of_man man) R.all s in
       let sz = Bdd.size man g in
       List.for_all
         (fun (e : R.entry) -> Bdd.size man (e.run (Minimize.Ctx.of_man man) s) >= sz)
         R.all)

let restr_uses_engine_kernel () =
  (* The registry's [restr] entry must dispatch to the engine's restrict
     kernel (and so be visible in [restrict_recursions]) — it used to go
     through the generic sibling matcher, which computes the same
     function without ever touching the kernel, leaving the counter at 0
     while the bench charged seconds to "restr". *)
  let man = Bdd.create () in
  let st = Random.State.make [| 0x7e57 |] in
  let tt () =
    Logic.Truth_table.create 6 (fun _ -> Random.State.bool st)
  in
  let f = Logic.Truth_table.to_bdd man (tt ()) in
  let c = Bdd.dor man (Logic.Truth_table.to_bdd man (tt ())) (Bdd.ithvar man 0) in
  let s = I.make ~f ~c in
  let entry = Option.get (R.find "restr") in
  let before = (Bdd.snapshot man).Bdd.Stats.restrict_recursions in
  let g = entry.R.run (Minimize.Ctx.of_man man) s in
  let after = (Bdd.snapshot man).Bdd.Stats.restrict_recursions in
  Util.checkb "restrict kernel recursions counted" (after > before);
  Util.checkb "still computes Bdd.restrict"
    (Bdd.equal g (Bdd.restrict man f c));
  Util.checkb "still agrees with the generic matcher"
    (Bdd.equal g
       (Minimize.Sibling.run_heuristic man Minimize.Sibling.Restrict s))

let reference_entries () =
  let f = Util.random_bdd 4 and c = Util.random_bdd 4 in
  let s = I.make ~f ~c in
  let run name =
    (Option.get (R.find name)).R.run (Minimize.Ctx.of_man man) s
  in
  Util.checkb "f_orig" (Bdd.equal (run "f_orig") f);
  Util.checkb "f_and_c" (Bdd.equal (run "f_and_c") (Bdd.dand man f c));
  Util.checkb "f_or_nc"
    (Bdd.equal (run "f_or_nc") (Bdd.dor man f (Bdd.compl c)))

let suite =
  [
    schedule_covers;
    schedule_param_space;
    Alcotest.test_case "schedule parameter validation" `Quick
      schedule_rejects_bad_params;
    Alcotest.test_case "registry completeness" `Quick registry_complete;
    registry_runs_cover;
    best_is_minimal;
    Alcotest.test_case "restr drives the engine kernel" `Quick
      restr_uses_engine_kernel;
    Alcotest.test_case "reference entries" `Quick reference_entries;
  ]
