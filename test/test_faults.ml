(* Fault injection: the three verification engines (symbolic, explicit,
   simulation) must agree on every injected fault, and most faults must
   be caught. *)

let interface_preserved =
  Util.qtest ~count:30 "mutations preserve the machine interface"
    QCheck2.Gen.(int_bound 5000)
    (fun seed ->
       let nl =
         Circuits.Random_fsm.make
           { Circuits.Random_fsm.latches = 4; inputs = 2; depth = 3; seed }
       in
       match Circuits.Mutate.mutate ~seed nl with
       | None -> true
       | Some (nl', _) ->
         let names l = List.sort compare (List.map fst l) in
         names (Fsm.Netlist.inputs nl) = names (Fsm.Netlist.inputs nl')
         && names (Fsm.Netlist.outputs nl) = names (Fsm.Netlist.outputs nl')
         && names (Fsm.Netlist.latches nl) = names (Fsm.Netlist.latches nl'))

let mutate_deterministic () =
  let nl = Circuits.Tlc.make () in
  let d seed =
    match Circuits.Mutate.mutate ~seed nl with
    | Some (_, m) -> m.Circuits.Mutate.description
    | None -> ""
  in
  Alcotest.(check string) "same seed same mutation" (d 5) (d 5)

let engines_agree =
  Util.qtest ~count:25 "symbolic, explicit and simulation agree on faults"
    QCheck2.Gen.(int_bound 5000)
    (fun seed ->
       let nl =
         Circuits.Random_fsm.make
           { Circuits.Random_fsm.latches = 4; inputs = 2; depth = 2; seed }
       in
       match Circuits.Mutate.mutate ~seed nl with
       | None -> true
       | Some (nl', _) ->
         let man = Bdd.create () in
         let symbolic =
           match Fsm.Equiv.check man nl nl' with
           | Fsm.Equiv.Equivalent _ -> true
           | Fsm.Equiv.Not_equivalent _ -> false
         in
         let explicit =
           match Fsm.Explicit.equivalent nl nl' with
           | Ok true -> true
           | Ok false | Error _ -> false
         in
         (* simulation can only refute; when it refutes, the others must
            agree the machines differ *)
         let sim_refutes =
           match Fsm.Simcheck.compare_machines ~runs:16 ~steps:32 nl nl' with
           | Ok () -> false
           | Error _ -> true
         in
         symbolic = explicit && ((not sim_refutes) || not symbolic))

let counterexamples_replay =
  Util.qtest ~count:25 "simulation counterexamples replay to a divergence"
    QCheck2.Gen.(int_bound 5000)
    (fun seed ->
       let nl =
         Circuits.Random_fsm.make
           { Circuits.Random_fsm.latches = 4; inputs = 2; depth = 2; seed }
       in
       match Circuits.Mutate.mutate ~seed nl with
       | None -> true
       | Some (nl', _) -> (
           match Fsm.Simcheck.compare_machines ~runs:16 ~steps:32 nl nl' with
           | Ok () -> true
           | Error cex -> (
               match Fsm.Simcheck.replay nl nl' cex.Fsm.Simcheck.inputs with
               | Some (output, step) ->
                 output = cex.Fsm.Simcheck.output
                 && step = cex.Fsm.Simcheck.step
               | None -> false)))

let fault_campaign () =
  (* Exhaustive single faults on the BCD counter: the engines agree on
     every one, and a healthy majority is detected. *)
  let nl = Circuits.Counter.modulo ~width:4 ~modulus:10 in
  let faults = Circuits.Mutate.all_single_mutations nl in
  Util.checkb "enough faults" (List.length faults > 50);
  let detected = ref 0 in
  List.iter
    (fun (nl', m) ->
       let man = Bdd.create () in
       let symbolic =
         match Fsm.Equiv.check man nl nl' with
         | Fsm.Equiv.Equivalent _ -> true
         | Fsm.Equiv.Not_equivalent _ -> false
       in
       let explicit =
         match Fsm.Explicit.equivalent nl nl' with
         | Ok true -> true
         | Ok false | Error _ -> false
       in
       if symbolic <> explicit then
         Alcotest.failf "engines disagree on %s" m.Circuits.Mutate.description;
       if not symbolic then incr detected)
    faults;
  let rate = float_of_int !detected /. float_of_int (List.length faults) in
  Util.checkb
    (Printf.sprintf "detection rate %.0f%% above 50%%" (100. *. rate))
    (rate > 0.5)

let self_comparison_clean =
  Util.qtest ~count:15 "simulation never refutes a machine against itself"
    QCheck2.Gen.(int_bound 5000)
    (fun seed ->
       let nl =
         Circuits.Random_fsm.make
           { Circuits.Random_fsm.latches = 4; inputs = 2; depth = 3; seed }
       in
       Fsm.Simcheck.compare_machines ~runs:8 ~steps:32 nl nl = Ok ())

let traces_replay =
  Util.qtest ~count:20 "counterexample traces replay to a real divergence"
    QCheck2.Gen.(int_bound 5000)
    (fun seed ->
       let nl =
         Circuits.Random_fsm.make
           { Circuits.Random_fsm.latches = 4; inputs = 2; depth = 2; seed }
       in
       match Circuits.Mutate.mutate ~seed nl with
       | None -> true
       | Some (nl', _) ->
         let man = Bdd.create () in
         let differ =
           match Fsm.Equiv.check man nl nl' with
           | Fsm.Equiv.Equivalent _ -> false
           | Fsm.Equiv.Not_equivalent _ -> true
         in
         (match Fsm.Equiv.counterexample_trace man nl nl' with
          | None -> not differ
          | Some trace ->
            differ
            && (match Fsm.Simcheck.replay nl nl' trace with
                | Some (_, step) -> step = List.length trace - 1
                | None -> false)))

let trace_on_known_fault () =
  (* counters differing in initial value diverge at cycle 0 *)
  let mk init =
    let b = Fsm.Netlist.create "c" in
    let en = Fsm.Netlist.input b "en" in
    let q, set = Fsm.Netlist.word_latch b ~name:"q" ~width:2 ~init () in
    let inc, _ = Fsm.Netlist.word_inc b q in
    set (Fsm.Netlist.word_mux b ~sel:en ~t1:inc ~e0:q);
    Array.iteri (fun i qi -> Fsm.Netlist.output b (Printf.sprintf "q%d" i) qi) q;
    Fsm.Netlist.finalize b
  in
  let man = Bdd.create () in
  match Fsm.Equiv.counterexample_trace man (mk 0) (mk 1) with
  | Some trace ->
    Util.checki "length 1" 1 (List.length trace);
    (match Fsm.Simcheck.replay (mk 0) (mk 1) trace with
     | Some (_, 0) -> ()
     | _ -> Alcotest.fail "replay did not diverge at cycle 0")
  | None -> Alcotest.fail "expected a trace"

let no_trace_for_equivalent () =
  let nl = Circuits.Tlc.make () in
  let man = Bdd.create () in
  Util.checkb "no trace" (Fsm.Equiv.counterexample_trace man nl nl = None)

let suite =
  [
    interface_preserved;
    Alcotest.test_case "mutations deterministic" `Quick mutate_deterministic;
    engines_agree;
    counterexamples_replay;
    Alcotest.test_case "exhaustive fault campaign (bcd2)" `Quick fault_campaign;
    self_comparison_clean;
    traces_replay;
    Alcotest.test_case "trace on a known fault" `Quick trace_on_known_fault;
    Alcotest.test_case "no trace for equivalent machines" `Quick
      no_trace_for_equivalent;
  ]
