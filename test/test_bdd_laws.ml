(* Algebraic laws of the generalized cofactors and deeper engine stress:
   the identities that make constrain usable for image computation
   (footnote 1 of the paper) and the properties minimization relies on. *)

module Tt = Logic.Truth_table

let man = Util.man

let gen_pair =
  QCheck2.Gen.(
    let* n = int_range 1 6 in
    let* s1 = int_bound 0xFFFFF in
    let* s2 = int_bound 0xFFFFF in
    return (n, s1, s2))

let build (n, s1, s2) =
  let mk seed =
    let st = Random.State.make [| seed; n |] in
    Tt.to_bdd man (Tt.create n (fun _ -> Random.State.bool st))
  in
  (mk s1, mk s2)

let nonzero c = if Bdd.is_zero c then Bdd.one man else c

let constrain_agrees_on_care =
  Util.qtest ~count:300 "constrain(f,c) · c = f · c" gen_pair
    (fun desc ->
       let f, c = build desc in
       let c = nonzero c in
       Bdd.equal
         (Bdd.dand man (Bdd.constrain man f c) c)
         (Bdd.dand man f c))

let restrict_agrees_on_care =
  Util.qtest ~count:300 "restrict(f,c) · c = f · c" gen_pair
    (fun desc ->
       let f, c = build desc in
       let c = nonzero c in
       Bdd.equal
         (Bdd.dand man (Bdd.restrict man f c) c)
         (Bdd.dand man f c))

let constrain_distributes =
  Util.qtest ~count:300
    "constrain distributes over Boolean connectives (the vector property)"
    QCheck2.Gen.(
      let* p = gen_pair in
      let* s3 = int_bound 0xFFFFF in
      return (p, s3))
    (fun ((n, s1, s2), s3) ->
       let f, g = build (n, s1, s2) in
       let c =
         let st = Random.State.make [| s3; n |] in
         nonzero (Tt.to_bdd man (Tt.create n (fun _ -> Random.State.bool st)))
       in
       let co x = Bdd.constrain man x c in
       Bdd.equal (co (Bdd.dand man f g)) (Bdd.dand man (co f) (co g))
       && Bdd.equal (co (Bdd.dor man f g)) (Bdd.dor man (co f) (co g))
       && Bdd.equal (co (Bdd.compl f)) (Bdd.compl (co f))
       && Bdd.equal (co (Bdd.dxor man f g)) (Bdd.dxor man (co f) (co g)))

let constrain_idempotent =
  Util.qtest ~count:300 "constrain(constrain(f,c), c) = constrain(f,c)"
    gen_pair
    (fun desc ->
       let f, c = build desc in
       let c = nonzero c in
       let once = Bdd.constrain man f c in
       Bdd.equal (Bdd.constrain man once c) once)

let constrain_of_care_is_one =
  Util.qtest ~count:300 "constrain(c,c) = 1 and constrain(!c,c) = 0" gen_pair
    (fun desc ->
       let _, c = build desc in
       let c = nonzero c in
       Bdd.is_one (Bdd.constrain man c c)
       && Bdd.is_zero (Bdd.constrain man (Bdd.compl c) c))

let restrict_sibling_of_quantification =
  Util.qtest ~count:300
    "restrict ignores care variables outside f's support" gen_pair
    (fun desc ->
       let f, c = build desc in
       let c = nonzero c in
       (* quantifying a variable of c \\ supp(f) away first changes nothing *)
       let extra =
         List.filter
           (fun v -> not (List.mem v (Bdd.support man f)))
           (Bdd.support man c)
       in
       match extra with
       | [] -> true
       | v :: _ ->
         Bdd.equal
           (Bdd.restrict man f c)
           (Bdd.restrict man f (Bdd.exists man [ v ] c)))

let cache_clear_invariance =
  Util.qtest ~count:100 "clearing caches never changes results" gen_pair
    (fun desc ->
       let f, c = build desc in
       let a = Bdd.dand man f c in
       Bdd.clear_caches man;
       let b = Bdd.dand man f c in
       Bdd.equal a b
       &&
       (let c' = nonzero c in
        let r1 = Bdd.restrict man f c' in
        Bdd.clear_caches man;
        Bdd.equal r1 (Bdd.restrict man f c')))

let ite_consensus =
  Util.qtest ~count:300 "ite laws: consensus and complementation" gen_pair
    (fun desc ->
       let f, g = build desc in
       let h = Bdd.dxor man f g in
       let open Bdd in
       equal (ite man f g h) (compl (ite man f (compl g) (compl h)))
       && equal (ite man (compl f) g h) (ite man f h g)
       && leq man (dand man g h) (ite man f g h)
       && leq man (ite man f g h) (dor man g h))

let quantifier_distribution =
  Util.qtest ~count:300 "exists distributes over or, forall over and"
    gen_pair
    (fun desc ->
       let f, g = build desc in
       let vs = [ 0; 2 ] in
       Bdd.equal
         (Bdd.exists man vs (Bdd.dor man f g))
         (Bdd.dor man (Bdd.exists man vs f) (Bdd.exists man vs g))
       && Bdd.equal
            (Bdd.forall man vs (Bdd.dand man f g))
            (Bdd.dand man (Bdd.forall man vs f) (Bdd.forall man vs g)))

let stress_canonicity_n8 =
  Util.qtest ~count:40 "canonicity under n = 8 random constructions"
    QCheck2.Gen.(int_bound 0xFFFFF)
    (fun seed ->
       let n = 8 in
       let st = Random.State.make [| seed; n |] in
       let tt = Tt.create n (fun _ -> Random.State.bool st) in
       let direct = Tt.to_bdd man tt in
       (* rebuild through a different recursive decomposition: Shannon on
          the last variable first *)
       let rec build vars fixed =
         match vars with
         | [] ->
           if Tt.get tt fixed then Bdd.one man else Bdd.zero man
         | v :: rest ->
           Bdd.ite man (Bdd.ithvar man v)
             (build rest (fixed lor (1 lsl v)))
             (build rest fixed)
       in
       let reversed = build (List.rev (List.init n Fun.id)) 0 in
       Bdd.equal direct reversed)

let sibling_heuristics_insensitive_to_caches =
  Util.qtest ~count:80 "heuristic results do not depend on cache state"
    Util.gen_instance
    (fun desc ->
       let s = Util.build_ispec_nonzero desc in
       let r1 =
         Minimize.Sibling.run_heuristic man Minimize.Sibling.Tsm_cp s
       in
       Bdd.clear_caches man;
       let r2 =
         Minimize.Sibling.run_heuristic man Minimize.Sibling.Tsm_cp s
       in
       Bdd.equal r1 r2)

let suite =
  [
    constrain_agrees_on_care;
    restrict_agrees_on_care;
    constrain_distributes;
    constrain_idempotent;
    constrain_of_care_is_one;
    restrict_sibling_of_quantification;
    cache_clear_invariance;
    ite_consensus;
    quantifier_distribution;
    stress_canonicity_n8;
    sibling_heuristics_insensitive_to_caches;
  ]
