(* Reachability and product-machine equivalence. *)

module N = Fsm.Netlist
module Sym = Fsm.Symbolic

let reached_count name build expected () =
  let man = Bdd.create () in
  let sym = Sym.of_netlist man (build ()) in
  let _, st = Fsm.Reach.reachable sym in
  Alcotest.(check (float 0.01)) name expected st.Fsm.Reach.reached_states

let minimizer_independent =
  (* The reached set must not depend on the frontier minimizer. *)
  Util.qtest ~count:15 "reached set independent of the minimizer"
    QCheck2.Gen.(int_bound 1000)
    (fun seed ->
       let nl =
         Circuits.Random_fsm.make
           { Circuits.Random_fsm.latches = 5; inputs = 2; depth = 3; seed }
       in
       let run minimize =
         let man = Bdd.create () in
         let sym = Sym.of_netlist man nl in
         let _, st = Fsm.Reach.reachable ~minimize sym in
         st.Fsm.Reach.reached_states
       in
       let reference = run Fsm.Reach.constrain_minimizer in
       List.for_all
         (fun m -> run m = reference)
         [
           Fsm.Reach.no_minimizer;
           (fun man (i : Minimize.Ispec.t) ->
              Bdd.restrict man i.Minimize.Ispec.f i.Minimize.Ispec.c);
           (fun man i ->
              Minimize.Sibling.run_heuristic man Minimize.Sibling.Tsm_cp i);
           (fun man i -> Minimize.Schedule.run man i);
         ])

let strategy_independent =
  Util.qtest ~count:15
    "reached set and iteration count independent of the image strategy"
    QCheck2.Gen.(int_bound 1000)
    (fun seed ->
       let nl =
         Circuits.Random_fsm.make
           { Circuits.Random_fsm.latches = 5; inputs = 2; depth = 3; seed }
       in
       let run ?cluster_bound strategy =
         let man = Bdd.create () in
         let sym = Sym.of_netlist man nl in
         let _, st = Fsm.Reach.reachable ~strategy ?cluster_bound sym in
         (st.Fsm.Reach.reached_states, st.Fsm.Reach.iterations)
       in
       let a = run Fsm.Image.Monolithic in
       a = run Fsm.Image.Partitioned
       && a = run Fsm.Image.Range
       && a = run Fsm.Image.Clustered
       && a = run ~cluster_bound:8 Fsm.Image.Clustered)

let max_iterations_enforced () =
  let man = Bdd.create () in
  let sym = Sym.of_netlist man (Circuits.Counter.make ~width:6 ()) in
  Alcotest.check_raises "bounded"
    (Failure "Reach.reachable: max_iterations exceeded")
    (fun () -> ignore (Fsm.Reach.reachable ~max_iterations:5 sym))

let frontier_instances_sound () =
  (* Each reported instance satisfies f = U <= c and DC = previously
     reached minus the frontier. *)
  let man = Bdd.create () in
  let sym = Sym.of_netlist man (Circuits.Gray.make ~width:4) in
  let ok = ref true in
  let _ =
    Fsm.Reach.reachable
      ~on_instance:(fun ~iteration:_ (i : Minimize.Ispec.t) ->
          if not (Bdd.leq man i.Minimize.Ispec.f i.Minimize.Ispec.c) then
            ok := false)
      sym
  in
  Util.checkb "U <= U + !R" !ok

let self_equivalence () =
  List.iter
    (fun name ->
       let b = Option.get (Circuits.Registry.find name) in
       let man = Bdd.create () in
       match Fsm.Equiv.check_self man (b.Circuits.Registry.build ()) with
       | Fsm.Equiv.Equivalent _ -> ()
       | Fsm.Equiv.Not_equivalent _ -> Alcotest.fail (name ^ " != itself"))
    [ "bcd2"; "tlc"; "arbiter4"; "rnd344" ]

let latch_init_difference_detected () =
  (* Two counters differing in initial value are inequivalent. *)
  let mk init =
    let b = N.create "c" in
    let en = N.input b "en" in
    let q, set = N.word_latch b ~name:"q" ~width:3 ~init () in
    let inc, _ = N.word_inc b q in
    set (N.word_mux b ~sel:en ~t1:inc ~e0:q);
    Array.iteri (fun i qi -> N.output b (Printf.sprintf "q%d" i) qi) q;
    N.finalize b
  in
  let man = Bdd.create () in
  match Fsm.Equiv.check man (mk 0) (mk 1) with
  | Fsm.Equiv.Not_equivalent _ -> ()
  | Fsm.Equiv.Equivalent _ -> Alcotest.fail "should differ"

let product_rejects_mismatched_inputs () =
  let a = Circuits.Counter.make ~width:2 () in
  let b = Circuits.Lfsr.make ~width:4 () in
  (* counter has input en; lfsr has none *)
  Util.checkb "raises"
    (match Fsm.Equiv.product a b with
     | exception Invalid_argument _ -> true
     | _ -> false)

(* The paper's second application: minimizing a machine's functions with
   the unreachable states as don't cares. *)
let transition_minimization =
  Util.qtest ~count:12 "restrict_to_care_states preserves reachable behaviour"
    QCheck2.Gen.(int_bound 1000)
    (fun seed ->
       let nl =
         Circuits.Random_fsm.make
           { Circuits.Random_fsm.latches = 5; inputs = 2; depth = 3; seed }
       in
       let man = Bdd.create () in
       let sym = Sym.of_netlist man nl in
       let reached, _ = Fsm.Reach.reachable sym in
       let sym' =
         Sym.restrict_to_care_states sym ~care:reached
           ~minimize:Fsm.Reach.constrain_minimizer
       in
       (* functions agree on the reachable states *)
       let agree =
         List.for_all2
           (fun d d' ->
              Bdd.is_zero (Bdd.dand man (Bdd.dxor man d d') reached))
           (Array.to_list sym.Sym.next_fns)
           (Array.to_list sym'.Sym.next_fns)
       in
       (* hence the restricted machine explores the same state space *)
       let reached', _ = Fsm.Reach.reachable sym' in
       agree && Bdd.equal reached reached')

let transition_minimization_shrinks () =
  (* On a machine with a very sparse reachable set, minimization helps. *)
  let man = Bdd.create () in
  let sym = Sym.of_netlist man (Circuits.Johnson.make ~width:8) in
  let reached, _ = Fsm.Reach.reachable sym in
  let clamped man (i : Minimize.Ispec.t) =
    Minimize.Sibling.run_clamped man
      (Minimize.Sibling.config_of_heuristic Minimize.Sibling.Osm_bt) i
  in
  let sym' = Sym.restrict_to_care_states sym ~care:reached ~minimize:clamped in
  Util.checkb "no growth"
    (Sym.shared_node_count sym' <= Sym.shared_node_count sym)

let suite =
  [
    Alcotest.test_case "counter4 reaches 16 states" `Quick
      (reached_count "counter4" (fun () -> Circuits.Counter.make ~width:4 ()) 16.0);
    Alcotest.test_case "johnson6 reaches 12 states" `Quick
      (reached_count "johnson6" (fun () -> Circuits.Johnson.make ~width:6) 12.0);
    Alcotest.test_case "lfsr6 reaches 63 states" `Quick
      (reached_count "lfsr6" (fun () -> Circuits.Lfsr.make ~width:6 ()) 63.0);
    Alcotest.test_case "bcd reaches 10 states" `Quick
      (reached_count "bcd" (fun () -> Circuits.Counter.modulo ~width:4 ~modulus:10) 10.0);
    minimizer_independent;
    strategy_independent;
    Alcotest.test_case "max_iterations" `Quick max_iterations_enforced;
    Alcotest.test_case "frontier instances sound" `Quick frontier_instances_sound;
    Alcotest.test_case "self equivalence" `Quick self_equivalence;
    Alcotest.test_case "latch init difference" `Quick latch_init_difference_detected;
    Alcotest.test_case "mismatched inputs rejected" `Quick
      product_rejects_mismatched_inputs;
    transition_minimization;
    Alcotest.test_case "transition minimization shrinks (johnson8)" `Quick
      transition_minimization_shrinks;
  ]
